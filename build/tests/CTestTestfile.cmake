# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/order_test[1]_include.cmake")
include("/root/repo/build/tests/symbolic_test[1]_include.cmake")
include("/root/repo/build/tests/dkernel_test[1]_include.cmake")
include("/root/repo/build/tests/map_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/simul_test[1]_include.cmake")
include("/root/repo/build/tests/mf_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fanboth_test[1]_include.cmake")
include("/root/repo/build/tests/blocked_factor_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/suite_integration_test[1]_include.cmake")
include("/root/repo/build/tests/multilevel_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/llt_fanin_test[1]_include.cmake")
include("/root/repo/build/tests/hb_io_test[1]_include.cmake")
include("/root/repo/build/tests/solve_model_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/comm_plan_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_smp_test[1]_include.cmake")
