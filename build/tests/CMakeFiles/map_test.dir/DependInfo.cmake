
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/map_test.cpp" "tests/CMakeFiles/map_test.dir/map_test.cpp.o" "gcc" "tests/CMakeFiles/map_test.dir/map_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/map/CMakeFiles/pastix_map.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/pastix_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/pastix_order.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pastix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/pastix_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/pastix_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
