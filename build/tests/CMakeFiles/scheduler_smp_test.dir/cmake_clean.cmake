file(REMOVE_RECURSE
  "CMakeFiles/scheduler_smp_test.dir/scheduler_smp_test.cpp.o"
  "CMakeFiles/scheduler_smp_test.dir/scheduler_smp_test.cpp.o.d"
  "scheduler_smp_test"
  "scheduler_smp_test.pdb"
  "scheduler_smp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_smp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
