# Empty dependencies file for scheduler_smp_test.
# This may be replaced when dependencies are built.
