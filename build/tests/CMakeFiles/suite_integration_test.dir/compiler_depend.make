# Empty compiler generated dependencies file for suite_integration_test.
# This may be replaced when dependencies are built.
