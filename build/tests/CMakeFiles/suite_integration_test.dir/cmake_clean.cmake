file(REMOVE_RECURSE
  "CMakeFiles/suite_integration_test.dir/suite_integration_test.cpp.o"
  "CMakeFiles/suite_integration_test.dir/suite_integration_test.cpp.o.d"
  "suite_integration_test"
  "suite_integration_test.pdb"
  "suite_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
