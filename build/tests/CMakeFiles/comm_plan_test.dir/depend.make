# Empty dependencies file for comm_plan_test.
# This may be replaced when dependencies are built.
