file(REMOVE_RECURSE
  "CMakeFiles/fuzz_e2e_test.dir/fuzz_e2e_test.cpp.o"
  "CMakeFiles/fuzz_e2e_test.dir/fuzz_e2e_test.cpp.o.d"
  "fuzz_e2e_test"
  "fuzz_e2e_test.pdb"
  "fuzz_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
