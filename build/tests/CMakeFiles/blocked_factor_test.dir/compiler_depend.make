# Empty compiler generated dependencies file for blocked_factor_test.
# This may be replaced when dependencies are built.
