file(REMOVE_RECURSE
  "CMakeFiles/blocked_factor_test.dir/blocked_factor_test.cpp.o"
  "CMakeFiles/blocked_factor_test.dir/blocked_factor_test.cpp.o.d"
  "blocked_factor_test"
  "blocked_factor_test.pdb"
  "blocked_factor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocked_factor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
