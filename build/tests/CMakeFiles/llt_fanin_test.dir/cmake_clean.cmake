file(REMOVE_RECURSE
  "CMakeFiles/llt_fanin_test.dir/llt_fanin_test.cpp.o"
  "CMakeFiles/llt_fanin_test.dir/llt_fanin_test.cpp.o.d"
  "llt_fanin_test"
  "llt_fanin_test.pdb"
  "llt_fanin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llt_fanin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
