# Empty dependencies file for llt_fanin_test.
# This may be replaced when dependencies are built.
