# Empty dependencies file for solve_model_test.
# This may be replaced when dependencies are built.
