file(REMOVE_RECURSE
  "CMakeFiles/solve_model_test.dir/solve_model_test.cpp.o"
  "CMakeFiles/solve_model_test.dir/solve_model_test.cpp.o.d"
  "solve_model_test"
  "solve_model_test.pdb"
  "solve_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
