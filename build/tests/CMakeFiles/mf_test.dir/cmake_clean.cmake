file(REMOVE_RECURSE
  "CMakeFiles/mf_test.dir/mf_test.cpp.o"
  "CMakeFiles/mf_test.dir/mf_test.cpp.o.d"
  "mf_test"
  "mf_test.pdb"
  "mf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
