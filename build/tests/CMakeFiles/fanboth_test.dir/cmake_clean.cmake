file(REMOVE_RECURSE
  "CMakeFiles/fanboth_test.dir/fanboth_test.cpp.o"
  "CMakeFiles/fanboth_test.dir/fanboth_test.cpp.o.d"
  "fanboth_test"
  "fanboth_test.pdb"
  "fanboth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanboth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
