# Empty dependencies file for fanboth_test.
# This may be replaced when dependencies are built.
