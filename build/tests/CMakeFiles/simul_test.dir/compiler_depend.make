# Empty compiler generated dependencies file for simul_test.
# This may be replaced when dependencies are built.
