file(REMOVE_RECURSE
  "CMakeFiles/simul_test.dir/simul_test.cpp.o"
  "CMakeFiles/simul_test.dir/simul_test.cpp.o.d"
  "simul_test"
  "simul_test.pdb"
  "simul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
