# Empty dependencies file for dkernel_test.
# This may be replaced when dependencies are built.
