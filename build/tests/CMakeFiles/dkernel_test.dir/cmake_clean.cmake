file(REMOVE_RECURSE
  "CMakeFiles/dkernel_test.dir/dkernel_test.cpp.o"
  "CMakeFiles/dkernel_test.dir/dkernel_test.cpp.o.d"
  "dkernel_test"
  "dkernel_test.pdb"
  "dkernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
