file(REMOVE_RECURSE
  "CMakeFiles/hb_io_test.dir/hb_io_test.cpp.o"
  "CMakeFiles/hb_io_test.dir/hb_io_test.cpp.o.d"
  "hb_io_test"
  "hb_io_test.pdb"
  "hb_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
