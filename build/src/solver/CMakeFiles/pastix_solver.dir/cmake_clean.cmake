file(REMOVE_RECURSE
  "CMakeFiles/pastix_solver.dir/comm_plan.cpp.o"
  "CMakeFiles/pastix_solver.dir/comm_plan.cpp.o.d"
  "CMakeFiles/pastix_solver.dir/solve_model.cpp.o"
  "CMakeFiles/pastix_solver.dir/solve_model.cpp.o.d"
  "libpastix_solver.a"
  "libpastix_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastix_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
