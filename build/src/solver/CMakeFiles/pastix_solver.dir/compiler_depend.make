# Empty compiler generated dependencies file for pastix_solver.
# This may be replaced when dependencies are built.
