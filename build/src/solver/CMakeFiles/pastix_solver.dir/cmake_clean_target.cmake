file(REMOVE_RECURSE
  "libpastix_solver.a"
)
