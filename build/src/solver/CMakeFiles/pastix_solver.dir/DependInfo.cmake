
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/comm_plan.cpp" "src/solver/CMakeFiles/pastix_solver.dir/comm_plan.cpp.o" "gcc" "src/solver/CMakeFiles/pastix_solver.dir/comm_plan.cpp.o.d"
  "/root/repo/src/solver/solve_model.cpp" "src/solver/CMakeFiles/pastix_solver.dir/solve_model.cpp.o" "gcc" "src/solver/CMakeFiles/pastix_solver.dir/solve_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/map/CMakeFiles/pastix_map.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/pastix_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/pastix_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/pastix_order.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pastix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/pastix_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/pastix_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
