# CMake generated Testfile for 
# Source directory: /root/repo/src/simul
# Build directory: /root/repo/build/src/simul
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
