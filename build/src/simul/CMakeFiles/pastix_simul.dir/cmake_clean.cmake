file(REMOVE_RECURSE
  "CMakeFiles/pastix_simul.dir/simulate.cpp.o"
  "CMakeFiles/pastix_simul.dir/simulate.cpp.o.d"
  "CMakeFiles/pastix_simul.dir/trace.cpp.o"
  "CMakeFiles/pastix_simul.dir/trace.cpp.o.d"
  "libpastix_simul.a"
  "libpastix_simul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastix_simul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
