# Empty dependencies file for pastix_simul.
# This may be replaced when dependencies are built.
