file(REMOVE_RECURSE
  "libpastix_simul.a"
)
