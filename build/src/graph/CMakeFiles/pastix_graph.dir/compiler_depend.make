# Empty compiler generated dependencies file for pastix_graph.
# This may be replaced when dependencies are built.
