file(REMOVE_RECURSE
  "libpastix_graph.a"
)
