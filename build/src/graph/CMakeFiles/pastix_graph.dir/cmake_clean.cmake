file(REMOVE_RECURSE
  "CMakeFiles/pastix_graph.dir/graph.cpp.o"
  "CMakeFiles/pastix_graph.dir/graph.cpp.o.d"
  "CMakeFiles/pastix_graph.dir/multilevel.cpp.o"
  "CMakeFiles/pastix_graph.dir/multilevel.cpp.o.d"
  "CMakeFiles/pastix_graph.dir/separator.cpp.o"
  "CMakeFiles/pastix_graph.dir/separator.cpp.o.d"
  "libpastix_graph.a"
  "libpastix_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastix_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
