file(REMOVE_RECURSE
  "CMakeFiles/pastix_mf.dir/model.cpp.o"
  "CMakeFiles/pastix_mf.dir/model.cpp.o.d"
  "libpastix_mf.a"
  "libpastix_mf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastix_mf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
