file(REMOVE_RECURSE
  "libpastix_mf.a"
)
