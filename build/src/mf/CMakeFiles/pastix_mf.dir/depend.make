# Empty dependencies file for pastix_mf.
# This may be replaced when dependencies are built.
