file(REMOVE_RECURSE
  "libpastix_sparse.a"
)
