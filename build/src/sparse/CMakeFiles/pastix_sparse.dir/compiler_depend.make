# Empty compiler generated dependencies file for pastix_sparse.
# This may be replaced when dependencies are built.
