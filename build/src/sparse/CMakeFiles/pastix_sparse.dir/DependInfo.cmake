
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/gen.cpp" "src/sparse/CMakeFiles/pastix_sparse.dir/gen.cpp.o" "gcc" "src/sparse/CMakeFiles/pastix_sparse.dir/gen.cpp.o.d"
  "/root/repo/src/sparse/hb_io.cpp" "src/sparse/CMakeFiles/pastix_sparse.dir/hb_io.cpp.o" "gcc" "src/sparse/CMakeFiles/pastix_sparse.dir/hb_io.cpp.o.d"
  "/root/repo/src/sparse/io.cpp" "src/sparse/CMakeFiles/pastix_sparse.dir/io.cpp.o" "gcc" "src/sparse/CMakeFiles/pastix_sparse.dir/io.cpp.o.d"
  "/root/repo/src/sparse/suite.cpp" "src/sparse/CMakeFiles/pastix_sparse.dir/suite.cpp.o" "gcc" "src/sparse/CMakeFiles/pastix_sparse.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
