file(REMOVE_RECURSE
  "CMakeFiles/pastix_sparse.dir/gen.cpp.o"
  "CMakeFiles/pastix_sparse.dir/gen.cpp.o.d"
  "CMakeFiles/pastix_sparse.dir/hb_io.cpp.o"
  "CMakeFiles/pastix_sparse.dir/hb_io.cpp.o.d"
  "CMakeFiles/pastix_sparse.dir/io.cpp.o"
  "CMakeFiles/pastix_sparse.dir/io.cpp.o.d"
  "CMakeFiles/pastix_sparse.dir/suite.cpp.o"
  "CMakeFiles/pastix_sparse.dir/suite.cpp.o.d"
  "libpastix_sparse.a"
  "libpastix_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastix_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
