# Empty compiler generated dependencies file for pastix_model.
# This may be replaced when dependencies are built.
