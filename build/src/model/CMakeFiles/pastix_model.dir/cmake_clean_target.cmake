file(REMOVE_RECURSE
  "libpastix_model.a"
)
