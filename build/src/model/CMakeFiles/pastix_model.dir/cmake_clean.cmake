file(REMOVE_RECURSE
  "CMakeFiles/pastix_model.dir/cost_model.cpp.o"
  "CMakeFiles/pastix_model.dir/cost_model.cpp.o.d"
  "libpastix_model.a"
  "libpastix_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastix_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
