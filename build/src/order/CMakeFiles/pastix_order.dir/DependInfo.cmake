
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/order/etree.cpp" "src/order/CMakeFiles/pastix_order.dir/etree.cpp.o" "gcc" "src/order/CMakeFiles/pastix_order.dir/etree.cpp.o.d"
  "/root/repo/src/order/min_degree.cpp" "src/order/CMakeFiles/pastix_order.dir/min_degree.cpp.o" "gcc" "src/order/CMakeFiles/pastix_order.dir/min_degree.cpp.o.d"
  "/root/repo/src/order/nested_dissection.cpp" "src/order/CMakeFiles/pastix_order.dir/nested_dissection.cpp.o" "gcc" "src/order/CMakeFiles/pastix_order.dir/nested_dissection.cpp.o.d"
  "/root/repo/src/order/ordering.cpp" "src/order/CMakeFiles/pastix_order.dir/ordering.cpp.o" "gcc" "src/order/CMakeFiles/pastix_order.dir/ordering.cpp.o.d"
  "/root/repo/src/order/supernodes.cpp" "src/order/CMakeFiles/pastix_order.dir/supernodes.cpp.o" "gcc" "src/order/CMakeFiles/pastix_order.dir/supernodes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pastix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/pastix_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
