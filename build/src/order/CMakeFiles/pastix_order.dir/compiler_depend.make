# Empty compiler generated dependencies file for pastix_order.
# This may be replaced when dependencies are built.
