file(REMOVE_RECURSE
  "CMakeFiles/pastix_order.dir/etree.cpp.o"
  "CMakeFiles/pastix_order.dir/etree.cpp.o.d"
  "CMakeFiles/pastix_order.dir/min_degree.cpp.o"
  "CMakeFiles/pastix_order.dir/min_degree.cpp.o.d"
  "CMakeFiles/pastix_order.dir/nested_dissection.cpp.o"
  "CMakeFiles/pastix_order.dir/nested_dissection.cpp.o.d"
  "CMakeFiles/pastix_order.dir/ordering.cpp.o"
  "CMakeFiles/pastix_order.dir/ordering.cpp.o.d"
  "CMakeFiles/pastix_order.dir/supernodes.cpp.o"
  "CMakeFiles/pastix_order.dir/supernodes.cpp.o.d"
  "libpastix_order.a"
  "libpastix_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastix_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
