file(REMOVE_RECURSE
  "libpastix_order.a"
)
