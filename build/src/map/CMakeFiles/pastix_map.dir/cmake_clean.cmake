file(REMOVE_RECURSE
  "CMakeFiles/pastix_map.dir/candidates.cpp.o"
  "CMakeFiles/pastix_map.dir/candidates.cpp.o.d"
  "CMakeFiles/pastix_map.dir/scheduler.cpp.o"
  "CMakeFiles/pastix_map.dir/scheduler.cpp.o.d"
  "CMakeFiles/pastix_map.dir/task_graph.cpp.o"
  "CMakeFiles/pastix_map.dir/task_graph.cpp.o.d"
  "libpastix_map.a"
  "libpastix_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastix_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
