file(REMOVE_RECURSE
  "libpastix_map.a"
)
