# Empty dependencies file for pastix_map.
# This may be replaced when dependencies are built.
