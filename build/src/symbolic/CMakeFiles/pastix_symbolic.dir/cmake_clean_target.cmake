file(REMOVE_RECURSE
  "libpastix_symbolic.a"
)
