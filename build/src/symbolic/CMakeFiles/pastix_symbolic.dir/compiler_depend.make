# Empty compiler generated dependencies file for pastix_symbolic.
# This may be replaced when dependencies are built.
