file(REMOVE_RECURSE
  "CMakeFiles/pastix_symbolic.dir/split.cpp.o"
  "CMakeFiles/pastix_symbolic.dir/split.cpp.o.d"
  "CMakeFiles/pastix_symbolic.dir/symbol.cpp.o"
  "CMakeFiles/pastix_symbolic.dir/symbol.cpp.o.d"
  "libpastix_symbolic.a"
  "libpastix_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastix_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
