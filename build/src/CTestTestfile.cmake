# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sparse")
subdirs("graph")
subdirs("order")
subdirs("symbolic")
subdirs("dkernel")
subdirs("model")
subdirs("map")
subdirs("simul")
subdirs("rt")
subdirs("solver")
subdirs("mf")
subdirs("core")
