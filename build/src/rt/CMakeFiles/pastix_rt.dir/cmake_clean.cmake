file(REMOVE_RECURSE
  "CMakeFiles/pastix_rt.dir/comm.cpp.o"
  "CMakeFiles/pastix_rt.dir/comm.cpp.o.d"
  "libpastix_rt.a"
  "libpastix_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastix_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
