# Empty compiler generated dependencies file for pastix_rt.
# This may be replaced when dependencies are built.
