file(REMOVE_RECURSE
  "libpastix_rt.a"
)
