file(REMOVE_RECURSE
  "CMakeFiles/ablation_dist.dir/ablation_dist.cpp.o"
  "CMakeFiles/ablation_dist.dir/ablation_dist.cpp.o.d"
  "ablation_dist"
  "ablation_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
