# Empty dependencies file for ablation_dist.
# This may be replaced when dependencies are built.
