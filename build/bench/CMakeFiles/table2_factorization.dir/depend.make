# Empty dependencies file for table2_factorization.
# This may be replaced when dependencies are built.
