file(REMOVE_RECURSE
  "CMakeFiles/table2_factorization.dir/table2_factorization.cpp.o"
  "CMakeFiles/table2_factorization.dir/table2_factorization.cpp.o.d"
  "table2_factorization"
  "table2_factorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_factorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
