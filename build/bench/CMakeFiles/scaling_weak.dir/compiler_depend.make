# Empty compiler generated dependencies file for scaling_weak.
# This may be replaced when dependencies are built.
