# Empty dependencies file for scaling_weak.
# This may be replaced when dependencies are built.
