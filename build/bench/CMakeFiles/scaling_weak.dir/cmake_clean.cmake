file(REMOVE_RECURSE
  "CMakeFiles/scaling_weak.dir/scaling_weak.cpp.o"
  "CMakeFiles/scaling_weak.dir/scaling_weak.cpp.o.d"
  "scaling_weak"
  "scaling_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
