file(REMOVE_RECURSE
  "CMakeFiles/ablation_amalgamation.dir/ablation_amalgamation.cpp.o"
  "CMakeFiles/ablation_amalgamation.dir/ablation_amalgamation.cpp.o.d"
  "ablation_amalgamation"
  "ablation_amalgamation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_amalgamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
