# Empty dependencies file for ablation_amalgamation.
# This may be replaced when dependencies are built.
