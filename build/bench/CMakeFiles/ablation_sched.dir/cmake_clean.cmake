file(REMOVE_RECURSE
  "CMakeFiles/ablation_sched.dir/ablation_sched.cpp.o"
  "CMakeFiles/ablation_sched.dir/ablation_sched.cpp.o.d"
  "ablation_sched"
  "ablation_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
