# Empty dependencies file for ablation_sched.
# This may be replaced when dependencies are built.
