# Empty compiler generated dependencies file for solve_phase.
# This may be replaced when dependencies are built.
