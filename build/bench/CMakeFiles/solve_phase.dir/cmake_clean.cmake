file(REMOVE_RECURSE
  "CMakeFiles/solve_phase.dir/solve_phase.cpp.o"
  "CMakeFiles/solve_phase.dir/solve_phase.cpp.o.d"
  "solve_phase"
  "solve_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
