# Empty compiler generated dependencies file for kernels_dense.
# This may be replaced when dependencies are built.
