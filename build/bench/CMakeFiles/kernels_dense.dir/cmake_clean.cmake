file(REMOVE_RECURSE
  "CMakeFiles/kernels_dense.dir/kernels_dense.cpp.o"
  "CMakeFiles/kernels_dense.dir/kernels_dense.cpp.o.d"
  "kernels_dense"
  "kernels_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
