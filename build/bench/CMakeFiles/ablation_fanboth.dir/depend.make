# Empty dependencies file for ablation_fanboth.
# This may be replaced when dependencies are built.
