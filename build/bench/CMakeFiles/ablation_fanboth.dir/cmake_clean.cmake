file(REMOVE_RECURSE
  "CMakeFiles/ablation_fanboth.dir/ablation_fanboth.cpp.o"
  "CMakeFiles/ablation_fanboth.dir/ablation_fanboth.cpp.o.d"
  "ablation_fanboth"
  "ablation_fanboth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fanboth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
