file(REMOVE_RECURSE
  "CMakeFiles/complex_helmholtz.dir/complex_helmholtz.cpp.o"
  "CMakeFiles/complex_helmholtz.dir/complex_helmholtz.cpp.o.d"
  "complex_helmholtz"
  "complex_helmholtz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_helmholtz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
