# Empty compiler generated dependencies file for complex_helmholtz.
# This may be replaced when dependencies are built.
