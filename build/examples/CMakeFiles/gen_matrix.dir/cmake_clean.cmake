file(REMOVE_RECURSE
  "CMakeFiles/gen_matrix.dir/gen_matrix.cpp.o"
  "CMakeFiles/gen_matrix.dir/gen_matrix.cpp.o.d"
  "gen_matrix"
  "gen_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
