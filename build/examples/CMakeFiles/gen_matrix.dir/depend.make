# Empty dependencies file for gen_matrix.
# This may be replaced when dependencies are built.
