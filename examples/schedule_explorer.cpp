// Inspect what the partitioning/mapping/scheduling phases decided for a
// suite problem: the 1D/2D split by tree depth, the per-processor load
// balance of the static schedule, and the communication profile.
//
//   ./schedule_explorer [matrix-name] [nprocs]     (default: SHIPSEC5 16)
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/pastix.hpp"
#include "simul/simulate.hpp"
#include "simul/trace.hpp"
#include <fstream>
#include "sparse/suite.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pastix;
  const std::string name = argc > 1 ? argv[1] : "SHIPSEC5";
  const idx_t nprocs = argc > 2 ? std::atoi(argv[2]) : 16;

  const SymSparse<double> a = make_suite_matrix(suite_problem(name));
  SolverOptions opt;
  opt.nprocs = nprocs;
  Solver<double> solver(opt);
  solver.analyze(a);

  const auto& cand = solver.candidates();
  const auto& tg = solver.task_graph();
  const auto& sched = solver.schedule();

  std::cout << "=== " << name << " on " << nprocs << " processors ===\n\n";

  // 1D/2D distribution by block-elimination-tree depth.
  std::map<idx_t, std::pair<idx_t, idx_t>> by_depth;  // depth -> (n1d, n2d)
  for (const auto& c : cand.cblk) {
    auto& slot = by_depth[c.depth];
    (c.dist == DistType::k2D ? slot.second : slot.first)++;
  }
  TextTable dist({"tree depth", "1D cblks", "2D cblks"});
  for (const auto& [depth, counts] : by_depth)
    dist.add_row({std::to_string(depth), std::to_string(counts.first),
                  std::to_string(counts.second)});
  std::cout << "distribution choice by depth (2D near the root):\n";
  dist.print();

  // Task type census.
  idx_t n_by_type[4] = {0, 0, 0, 0};
  for (const auto& t : tg.tasks)
    n_by_type[static_cast<int>(t.type)]++;
  std::cout << "\ntasks: " << n_by_type[0] << " COMP1D, " << n_by_type[1]
            << " FACTOR, " << n_by_type[2] << " BDIV, " << n_by_type[3]
            << " BMOD\n\n";

  // Per-processor simulated load balance.
  const SimResult sim = simulate_schedule(tg, sched, solver.options().model);
  TextTable load({"proc", "tasks (|K_p|)", "busy (s)", "idle (s)", "busy %"});
  for (idx_t p = 0; p < nprocs; ++p)
    load.add_row({std::to_string(p),
                  std::to_string(sched.kp[static_cast<std::size_t>(p)].size()),
                  fmt_fixed(sim.busy[static_cast<std::size_t>(p)], 4),
                  fmt_fixed(sim.idle[static_cast<std::size_t>(p)], 4),
                  fmt_fixed(100.0 * sim.busy[static_cast<std::size_t>(p)] /
                                sim.makespan, 1)});
  std::cout << "static schedule load balance (simulated):\n";
  load.print();

  std::cout << "\nmakespan " << fmt_fixed(sim.makespan, 4) << " s,  "
            << sim.messages << " messages,  "
            << fmt_sci(sim.comm_entries) << " entries shipped,  fan-in "
            << "aggregation overcost " << fmt_fixed(sim.aggregate_seconds, 4)
            << " s\n";

  // Execution trace: terminal Gantt + CSV for external tooling.
  const ScheduleTrace trace =
      trace_schedule(tg, sched, solver.options().model);
  std::cout << "\nsimulated execution timeline:\n";
  render_gantt(std::cout, trace, 100);
  const std::string csv = "schedule_trace.csv";
  {
    std::ofstream os(csv);
    write_trace_csv(os, trace);
  }
  std::cout << "full trace written to ./" << csv << "\n";
  return 0;
}
