#pragma once
//
// A thin consumer-facing wrapper shaped after the amgcl coarse-solver
// interface (amgcl::mpi::PaStiX): a single template class that takes a
// symmetric matrix in plain CRS arrays, runs analysis + factorization in
// its constructor, and solves with operator().  This is the adoption path
// for a host code that has its own matrix format and just wants a direct
// solver object — no contact with the library's SymSparse / plan types.
//
//   std::vector<int>    ptr, col;   // CRS of the symmetric matrix
//   std::vector<double> val;        // (both triangles or just the lower)
//   PaStiXSolver<double> solve(n, ptr, col, val);
//   solve(b, x);                    // x = A^{-1} b
//   auto xs = solve.solve_batch(bs);// panel-batched multi-RHS solve
//
// Entries with column > row are ignored, so feeding a full symmetric CRS
// and feeding only the lower triangle produce the same matrix; duplicate
// entries are summed (finite-element assembly style).
//
#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "core/pastix.hpp"
#include "sparse/coo_builder.hpp"

namespace pastix {

template <typename value_type>
class PaStiXSolver {
  static_assert(std::is_same<value_type, double>::value ||
                    std::is_same<value_type, float>::value,
                "unsupported value type for the PaStiX wrapper");

public:
  struct params {
    idx_t nprocs = 0;      ///< solver ranks; 0 = pick from comm_size(n)
    int refine_steps = 0;  ///< iterative-refinement sweeps per solve
  };

  /// Rank-count heuristic mirroring the amgcl wrapper's comm_size():
  /// one rank per chunk of unknowns, at least one.
  static idx_t comm_size(idx_t n_rows) {
    const idx_t rows_per_rank = 5000;
    return std::max<idx_t>(1, (n_rows + rows_per_rank - 1) / rows_per_rank);
  }

  /// Build, analyze and factorize from CRS ranges (any random-access
  /// containers of integral ptr/col and value entries).
  template <class PRng, class CRng, class VRng>
  PaStiXSolver(idx_t n, const PRng& ptr, const CRng& col, const VRng& val,
               const params& prm = params())
      : solver_(make_options(n, prm)), prm_(prm) {
    CooBuilder<value_type> builder(n);
    for (idx_t i = 0; i < n; ++i)
      for (auto q = static_cast<std::size_t>(ptr[static_cast<std::size_t>(i)]);
           q < static_cast<std::size_t>(ptr[static_cast<std::size_t>(i) + 1]);
           ++q) {
        const auto j = static_cast<idx_t>(col[q]);
        if (j <= i) builder.add(i, j, static_cast<value_type>(val[q]));
      }
    solver_.analyze(builder.build());
    solver_.factorize();
  }

  /// x = A^{-1} rhs (sizes must equal the matrix order).
  void operator()(const std::vector<value_type>& rhs,
                  std::vector<value_type>& x) {
    x = prm_.refine_steps > 0 ? solver_.solve_refined(rhs, prm_.refine_steps)
                              : solver_.solve(rhs);
  }

  /// Batched multi-RHS solve through the scheduled panel path.
  [[nodiscard]] std::vector<std::vector<value_type>> solve_batch(
      const std::vector<std::vector<value_type>>& rhs) {
    return solver_.solve_many(rhs);
  }

  [[nodiscard]] const SolverStats& stats() const { return solver_.stats(); }
  [[nodiscard]] Solver<value_type>& solver() { return solver_; }

private:
  static SolverOptions make_options(idx_t n, const params& prm) {
    SolverOptions opt;
    opt.nprocs = prm.nprocs > 0 ? prm.nprocs : comm_size(n);
    return opt;
  }

  Solver<value_type> solver_;
  params prm_;
};

} // namespace pastix
