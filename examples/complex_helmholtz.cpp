// Complex-symmetric systems are the reason PaStiX factors LDL^t instead of
// Cholesky ("we use LDL^t factorization in order to solve sparse systems
// with complex coefficients", Section 1).  This example assembles a damped
// 2D Helmholtz-like operator (complex symmetric, *not* Hermitian) and
// solves it with the same pipeline.
//
//   ./complex_helmholtz [nprocs]
#include <cstdlib>
#include <iostream>

#include "core/pastix.hpp"
#include "sparse/coo_builder.hpp"

int main(int argc, char** argv) {
  using namespace pastix;
  using C = std::complex<double>;
  const idx_t nprocs = argc > 1 ? std::atoi(argv[1]) : 4;

  // (-Laplace - k^2 + i*damping) u = f on an nx x ny grid.  The absorption
  // term keeps the operator diagonally dominant, so factoring without
  // pivoting is stable (the regime the paper targets).
  const idx_t nx = 60, ny = 60;
  const double k2 = 0.5, damping = 1.5;
  CooBuilder<C> builder(nx * ny);
  auto node = [&](idx_t x, idx_t y) { return y * nx + x; };
  for (idx_t y = 0; y < ny; ++y)
    for (idx_t x = 0; x < nx; ++x) {
      const idx_t u = node(x, y);
      builder.add(u, u, C(4.0 - k2, damping));
      if (x + 1 < nx) builder.add(u, node(x + 1, y), C(-1.0, 0.0));
      if (y + 1 < ny) builder.add(u, node(x, y + 1), C(-1.0, 0.0));
    }
  const SymSparse<C> a = builder.build();
  std::cout << "damped Helmholtz operator: n = " << a.n()
            << " (complex symmetric)\n";

  SolverOptions opt;
  opt.nprocs = nprocs;
  Solver<C> solver(opt);
  solver.analyze(a);
  std::cout << "NNZ_L = " << solver.stats().nnz_l << ", tasks = "
            << solver.stats().ntask << "\n";
  solver.factorize();

  // A point source in the middle of the domain.
  std::vector<C> b(static_cast<std::size_t>(a.n()), C(0, 0));
  b[static_cast<std::size_t>(node(nx / 2, ny / 2))] = C(1.0, 0.0);
  const std::vector<C> u = solver.solve(b);

  std::cout << "relative residual = " << relative_residual(a, u, b) << "\n";
  std::cout << "field at source: " << u[static_cast<std::size_t>(
                                          node(nx / 2, ny / 2))]
            << ", at corner: " << u[0] << "\n";
  return 0;
}
