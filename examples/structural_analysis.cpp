// Structural-mechanics scenario: the workload family the paper's test suite
// (OILPAN, SHIP003, ...) comes from.  Builds a 3-dof-per-node finite-element
// shell, runs the full solver on several processor counts and prints the
// scaling table (simulated parallel times, as on the paper's SP2, plus the
// real wall time of the runtime execution).
//
//   ./structural_analysis [max_procs]
#include <cstdlib>
#include <iostream>

#include "core/pastix.hpp"
#include "sparse/suite.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pastix;
  const idx_t max_procs = argc > 1 ? std::atoi(argv[1]) : 16;

  const SuiteProblem& prob = suite_problem("OILPAN");
  const SymSparse<double> a = make_suite_matrix(prob);
  std::cout << "problem: " << prob.name << " (" << prob.family << " mesh), n = "
            << a.n() << ", " << prob.spec.dof << " dof/node\n\n";

  TextTable table({"procs", "tasks", "2D cblks", "predicted (s)", "speedup",
                   "Gflop/s", "wall (s)"});
  double t1 = 0;
  for (idx_t p = 1; p <= max_procs; p *= 2) {
    SolverOptions opt;
    opt.nprocs = p;
    Solver<double> solver(opt);
    solver.analyze(a);
    const double wall = solver.factorize();
    const SolverStats& st = solver.stats();
    if (p == 1) t1 = st.predicted_time;
    table.add_row({std::to_string(p), std::to_string(st.ntask),
                   std::to_string(st.n_2d_cblks), fmt_fixed(st.predicted_time, 4),
                   fmt_fixed(t1 / st.predicted_time, 2),
                   fmt_fixed(st.total_flops / st.predicted_time / 1e9, 2),
                   fmt_fixed(wall, 3)});

    // Verify the numerical result at every processor count.
    std::vector<double> b(static_cast<std::size_t>(a.n()), 1.0);
    const auto x = solver.solve(b);
    const double res = relative_residual(a, x, b);
    PASTIX_CHECK(res < 1e-10, "residual check failed");
  }
  table.print();
  std::cout << "\n(\"predicted\" = discrete-event simulation under the "
               "calibrated cost model;\n \"wall\" = real execution of the "
               "thread runtime on this host)\n";
  return 0;
}
