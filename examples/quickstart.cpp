// Quickstart: build a small 3D Poisson problem, analyze it with the full
// PaStiX pipeline (ordering -> block symbolic factorization -> 1D/2D
// proportional mapping -> static scheduling), factorize it in parallel over
// the message-passing runtime, and solve.
//
//   ./quickstart [nprocs]
#include <cstdlib>
#include <iostream>

#include "core/pastix.hpp"
#include "sparse/gen.hpp"

int main(int argc, char** argv) {
  using namespace pastix;
  const idx_t nprocs = argc > 1 ? std::atoi(argv[1]) : 4;

  // A 20 x 20 x 20 seven-point Laplacian: 8000 unknowns.
  const SymSparse<double> a = gen_grid_laplacian(20, 20, 20);
  std::cout << "matrix: n = " << a.n() << ", nnz(A) = " << a.nnz_offdiag()
            << " off-diagonal entries\n";

  SolverOptions opt;
  opt.nprocs = nprocs;
  Solver<double> solver(opt);

  solver.analyze(a);
  const SolverStats& st = solver.stats();
  std::cout << "analysis: NNZ_L = " << st.nnz_l << ", OPC = "
            << static_cast<double>(st.opc) << ", " << st.ncblk
            << " column blocks, " << st.ntask << " tasks ("
            << st.n_2d_cblks << " supernodes distributed 2D)\n";
  std::cout << "predicted parallel factorization time on " << nprocs
            << " procs: " << st.predicted_time << " s\n";

  const double wall = solver.factorize();
  std::cout << "numerical factorization (fan-in LDL^t, " << nprocs
            << " ranks): " << wall << " s wall\n";

  // Solve against a manufactured solution.
  std::vector<double> x_ref(static_cast<std::size_t>(a.n()));
  for (idx_t i = 0; i < a.n(); ++i)
    x_ref[static_cast<std::size_t>(i)] = 1.0 + 0.001 * i;
  std::vector<double> b(static_cast<std::size_t>(a.n()));
  spmv(a, x_ref.data(), b.data());

  const std::vector<double> x = solver.solve(b);
  std::cout << "relative residual ||Ax-b||/||b|| = "
            << relative_residual(a, x, b) << "\n";
  return 0;
}
