// Command-line solver: read a symmetric matrix in MatrixMarket format,
// factor it, solve against a generated (or all-ones) right-hand side, and
// report analysis statistics and the residual — the adoption path for a
// user with their own matrices.
//
//   ./solve_file <matrix.mtx> [nprocs] [--refine]
//
// Without arguments, writes a demo matrix to ./demo.mtx and solves it, so
// the example is runnable out of the box.
#include <cstring>
#include <iostream>

#include "core/pastix.hpp"
#include "sparse/gen.hpp"
#include "sparse/io.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pastix;
  std::string path = argc > 1 ? argv[1] : "";
  const idx_t nprocs = argc > 2 ? std::atoi(argv[2]) : 4;
  const bool refine =
      argc > 3 && std::strcmp(argv[3], "--refine") == 0;

  if (path.empty()) {
    path = "demo.mtx";
    save_matrix_market(path, gen_fe_mesh({12, 12, 4, 2, 1, 1}));
    std::cout << "no matrix given; wrote a demo problem to ./" << path
              << "\n";
  }

  SymSparse<double> a;
  try {
    a = load_matrix_market(path);
  } catch (const Error& e) {
    std::cerr << "cannot read " << path << ": " << e.what() << "\n";
    return 1;
  }
  std::cout << "matrix " << path << ": n = " << a.n() << ", nnz = "
            << a.nnz_offdiag() + a.n() << "\n";

  SolverOptions opt;
  opt.nprocs = nprocs;
  Solver<double> solver(opt);
  Timer t_analyze;
  solver.analyze(a);
  const double analyze_s = t_analyze.seconds();
  const double factor_s = solver.factorize();

  const auto& st = solver.stats();
  TextTable table({"phase / metric", "value"});
  table.add_row({"NNZ_L", fmt_sci(static_cast<double>(st.nnz_l))});
  table.add_row({"OPC", fmt_sci(static_cast<double>(st.opc))});
  table.add_row({"column blocks", std::to_string(st.ncblk)});
  table.add_row({"tasks", std::to_string(st.ntask)});
  table.add_row({"2D supernodes", std::to_string(st.n_2d_cblks)});
  table.add_row({"analysis time (s)", fmt_fixed(analyze_s, 3)});
  table.add_row({"factorization wall (s)", fmt_fixed(factor_s, 3)});
  table.add_row({"predicted parallel (s)", fmt_fixed(st.predicted_time, 4)});
  table.add_row({"effective Gflop/s",
                 fmt_fixed(st.total_flops / st.predicted_time / 1e9, 2)});
  table.print();

  if (!st.factor_status.clean())
    std::cout << "warning: degraded factorization ("
              << st.factor_status.to_string()
              << ") — solving via adaptive refinement\n";

  std::vector<double> b(static_cast<std::size_t>(a.n()), 1.0);
  if (!st.factor_status.clean()) {
    const auto res = solver.solve_adaptive(b);
    std::cout << "adaptive solve: " << res.steps << " refinement steps, "
              << (res.converged ? "converged" : "stalled")
              << ", componentwise backward error = " << res.backward_error
              << "\nrelative residual: " << relative_residual(a, res.x, b)
              << "\n";
    return 0;
  }
  const std::vector<double> x =
      refine ? solver.solve_refined(b, 2) : solver.solve(b);
  std::cout << "relative residual" << (refine ? " (2 refinement steps)" : "")
            << ": " << relative_residual(a, x, b) << "\n";
  return 0;
}
