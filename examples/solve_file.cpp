// Command-line solver: read a symmetric matrix in MatrixMarket format,
// factor it, solve against a generated (or all-ones) right-hand side, and
// report analysis statistics and the residual — the adoption path for a
// user with their own matrices.
//
//   ./solve_file <matrix.mtx> [nprocs] [--refine] [--plan <file>]
//                [--trace <out.json>] [--verify] [--scrub] [--nrhs N]
//                [--hybrid] [--hybrid-tail F] [--hybrid-pool N]
//
// --scrub re-verifies every committed factor block against its CRC32C seal
// after the factorization (DESIGN.md §15) and reports the count; a mismatch
// means silent data corruption (bad RAM, a rogue DMA) and exits with a
// dedicated code instead of solving against a poisoned factor.
//
// --nrhs N additionally solves a batch of N distinct right-hand sides
// through the scheduled panel solve (Solver::solve_many) and reports the
// batch throughput in solves/sec.
//
// --hybrid enables hybrid static/dynamic execution (DESIGN.md §14): the
// analysis picks a per-rank prefix/tail split from the cost model and the
// tail runs on an intra-rank work-stealing pool, bitwise identical to the
// fully static schedule.  --hybrid-tail F overrides the tail work fraction
// (default 0.25), --hybrid-pool N the pool workers per rank (default 2).
// A plan loaded via --plan keeps its own split (empty = static) — delete
// the plan file to re-analyze with hybrid settings.
//
// --plan <file> persists the analysis: if <file> exists and matches the
// matrix pattern it is loaded (skipping ordering/symbolic/scheduling
// entirely); otherwise the analysis runs once and is saved there for the
// next invocation.
//
// --trace <out.json> records the runtime execution timeline of the
// factorization and solve, writes it as Chrome trace-event JSON (open in
// chrome://tracing or https://ui.perfetto.dev), and prints the
// predicted-vs-actual schedule comparison.
//
// --verify runs the static plan verifier (deadlock/race/communication
// soundness, see DESIGN.md §11) on the analysis before any numeric work,
// prints its report and cost, and aborts if the plan is unsound.
//
// Without arguments, writes a demo matrix to ./demo.mtx and solves it, so
// the example is runnable out of the box.
//
// Exit codes (distinct per failure stage, for scripting around the tool):
//   0  solved
//   1  I/O failure (unreadable matrix, unwritable plan file)
//   2  analysis failure (ordering/symbolic/scheduling rejected the input)
//   3  verification failure (--verify found the plan unsound)
//   4  numeric failure (factorization blew up, or degraded and adaptive
//      refinement stalled short of an acceptable backward error)
//   5  integrity failure (--scrub found a factor block whose bytes no
//      longer match the checksum sealed at commit time)
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/pastix.hpp"
#include "core/plan_io.hpp"
#include "sparse/gen.hpp"
#include "sparse/io.hpp"
#include "support/table.hpp"

namespace {
enum ExitCode : int {
  kExitOk = 0,
  kExitIo = 1,
  kExitAnalysis = 2,
  kExitVerification = 3,
  kExitNumeric = 4,
  kExitIntegrity = 5,
};
} // namespace

int main(int argc, char** argv) {
  using namespace pastix;
  std::string path;
  std::string plan_path;
  std::string trace_path;
  idx_t nprocs = 4;
  idx_t nrhs = 1;
  bool refine = false;
  bool verify_plan = false;
  bool scrub = false;
  bool hybrid = false;
  double hybrid_tail = -1.0;
  int hybrid_pool = 0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--refine") == 0) {
      refine = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify_plan = true;
    } else if (std::strcmp(argv[i], "--scrub") == 0) {
      scrub = true;
    } else if (std::strcmp(argv[i], "--plan") == 0 && i + 1 < argc) {
      plan_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--nrhs") == 0 && i + 1 < argc) {
      nrhs = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--hybrid") == 0) {
      hybrid = true;
    } else if (std::strcmp(argv[i], "--hybrid-tail") == 0 && i + 1 < argc) {
      hybrid = true;
      hybrid_tail = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--hybrid-pool") == 0 && i + 1 < argc) {
      hybrid = true;
      hybrid_pool = std::max(1, std::atoi(argv[++i]));
    } else if (positional == 0) {
      path = argv[i];
      positional++;
    } else if (positional == 1) {
      nprocs = std::atoi(argv[i]);
      positional++;
    }
  }

  if (path.empty()) {
    path = "demo.mtx";
    save_matrix_market(path, gen_fe_mesh({12, 12, 4, 2, 1, 1}));
    std::cout << "no matrix given; wrote a demo problem to ./" << path
              << "\n";
  }

  SymSparse<double> a;
  try {
    a = load_matrix_market(path);
  } catch (const Error& e) {
    std::cerr << "cannot read " << path << ": " << e.what() << "\n";
    return kExitIo;
  }
  std::cout << "matrix " << path << ": n = " << a.n() << ", nnz = "
            << a.nnz_offdiag() + a.n() << "\n";

  SolverOptions opt;
  opt.nprocs = nprocs;
  if (hybrid) {
    opt.fanin.hybrid.enabled = true;
    if (hybrid_tail >= 0) opt.fanin.hybrid.tail_fraction = hybrid_tail;
    if (hybrid_pool > 0) opt.fanin.hybrid.pool_size = hybrid_pool;
  }
  Solver<double> solver(opt);

  // Warm-start from a saved plan when one is given and still valid for this
  // matrix pattern and processor count; fall back to a fresh analysis (and
  // refresh the plan file) otherwise.
  Timer t_analyze;
  bool plan_loaded = false;
  if (!plan_path.empty() && std::ifstream(plan_path).good()) {
    try {
      PlanPtr plan = load_plan(plan_path);
      solver.analyze(a, std::move(plan));
      plan_loaded = true;
      std::cout << "analysis loaded from " << plan_path << "\n";
    } catch (const Error& e) {
      std::cout << "saved plan not usable (" << e.what()
                << "); re-analyzing\n";
    }
  }
  if (!plan_loaded) {
    try {
      solver.analyze(a);
    } catch (const Error& e) {
      std::cerr << "analysis failed: " << e.what() << "\n";
      return kExitAnalysis;
    }
    if (!plan_path.empty()) {
      try {
        save_plan(*solver.plan(), plan_path);
        std::cout << "analysis saved to " << plan_path << "\n";
      } catch (const Error& e) {
        std::cerr << "cannot write plan to " << plan_path << ": " << e.what()
                  << "\n";
        return kExitIo;
      }
    }
  }
  const double analyze_s = t_analyze.seconds();

  if (hybrid) {
    const auto& sc = solver.plan()->sched;
    if (sc.hybrid()) {
      idx_t tail_tasks = 0;
      for (idx_t p = 0; p < sc.nprocs; ++p)
        tail_tasks += static_cast<idx_t>(
                          sc.kp[static_cast<std::size_t>(p)].size()) -
                      sc.split[static_cast<std::size_t>(p)];
      std::cout << "hybrid scheduling: " << tail_tasks
                << " tail tasks on a pool of "
                << opt.fanin.hybrid.pool_size << " workers/rank\n";
    } else {
      std::cout << "hybrid scheduling requested, but the plan has no split "
                   "points (loaded static plan?); running fully static\n";
    }
  }

  if (verify_plan) {
    Timer t_verify;
    const verify::Report rep = verify::check_plan(*solver.plan());
    const double verify_s = t_verify.seconds();
    std::cout << rep.to_string();
    big_t peak_entries = 0;
    for (const big_t e : rep.rank_peak_aub_entries)
      peak_entries = std::max(peak_entries, e);
    std::cout << "verification time: " << fmt_fixed(verify_s, 3) << " s ("
              << fmt_fixed(100.0 * verify_s / std::max(analyze_s, 1e-12), 1)
              << "% of analysis), static peak AUB memory: "
              << peak_entries * static_cast<big_t>(sizeof(double))
              << " bytes/rank max\n";
    if (!rep.ok()) {
      std::cerr << "plan is unsound; refusing to factorize\n";
      return kExitVerification;
    }
  }

  if (!trace_path.empty()) solver.enable_tracing(true);
  double factor_s = 0;
  try {
    factor_s = solver.factorize();
  } catch (const Error& e) {
    std::cerr << "factorization failed: " << e.what() << "\n";
    return kExitNumeric;
  }

  if (scrub) {
    try {
      const std::uint64_t n = solver.scrub();
      std::cout << "integrity scrub: " << n
                << " factor blocks verified against their CRC32C seals\n";
    } catch (const rt::IntegrityError& e) {
      std::cerr << "integrity failure: " << e.what() << "\n";
      return kExitIntegrity;
    }
  }

  const auto& st = solver.stats();
  TextTable table({"phase / metric", "value"});
  table.add_row({"NNZ_L", fmt_sci(static_cast<double>(st.nnz_l))});
  table.add_row({"OPC", fmt_sci(static_cast<double>(st.opc))});
  table.add_row({"column blocks", std::to_string(st.ncblk)});
  table.add_row({"tasks", std::to_string(st.ntask)});
  table.add_row({"2D supernodes", std::to_string(st.n_2d_cblks)});
  table.add_row({plan_loaded ? "analysis load time (s)" : "analysis time (s)",
                 fmt_fixed(analyze_s, 3)});
  table.add_row({"factorization wall (s)", fmt_fixed(factor_s, 3)});
  table.add_row({"predicted parallel (s)", fmt_fixed(st.predicted_time, 4)});
  table.add_row({"effective Gflop/s",
                 fmt_fixed(st.total_flops / st.predicted_time / 1e9, 2)});
  table.print();

  if (!st.factor_status.clean())
    std::cout << "warning: degraded factorization ("
              << st.factor_status.to_string()
              << ") — solving via adaptive refinement\n";

  const auto dump_trace = [&]() {
    if (trace_path.empty()) return;
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write trace to " << trace_path << "\n";
      return;
    }
    write_chrome_trace(out, solver.runtime_trace());
    std::cout << "execution trace written to " << trace_path
              << " (open in chrome://tracing or ui.perfetto.dev)\n"
              << "schedule validation: " << st.trace.to_string() << "\n";
  };

  std::vector<double> b(static_cast<std::size_t>(a.n()), 1.0);
  if (!st.factor_status.clean()) {
    const auto res = solver.solve_adaptive(b);
    std::cout << "adaptive solve: " << res.steps << " refinement steps, "
              << (res.converged ? "converged" : "stalled")
              << ", componentwise backward error = " << res.backward_error
              << "\nrelative residual: " << relative_residual(a, res.x, b)
              << "\n";
    dump_trace();
    if (!res.converged) {
      std::cerr << "numeric failure: adaptive refinement stalled at "
                << "backward error " << res.backward_error << "\n";
      return kExitNumeric;
    }
    return kExitOk;
  }
  const std::vector<double> x =
      refine ? solver.solve_refined(b, 2) : solver.solve(b);
  std::cout << "relative residual" << (refine ? " (2 refinement steps)" : "")
            << ": " << relative_residual(a, x, b) << "\n";

  if (nrhs > 1) {
    // A batch of distinct right-hand sides, pushed through the scheduled
    // panel solve in one go (DESIGN.md §13).
    std::vector<std::vector<double>> bs(static_cast<std::size_t>(nrhs));
    for (std::size_t r = 0; r < bs.size(); ++r) {
      bs[r].assign(static_cast<std::size_t>(a.n()), 1.0);
      for (std::size_t i = r; i < bs[r].size();
           i += static_cast<std::size_t>(nrhs))
        bs[r][i] = 2.0;
    }
    const auto xs = solver.solve_many(bs);
    double worst = 0;
    for (std::size_t r = 0; r < xs.size(); ++r)
      worst = std::max(worst, relative_residual(a, xs[r], bs[r]));
    const auto& sb = solver.stats();
    std::cout << "batched solve: " << sb.solve_many_rhs
              << " right-hand sides in panels of " << sb.solve_many_panel
              << ", " << fmt_fixed(sb.solve_many_per_second(), 1)
              << " solves/s, worst relative residual " << worst << "\n";
  }

  dump_trace();
  return kExitOk;
}
