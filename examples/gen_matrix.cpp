// Matrix export tool: generate any suite problem (or a custom FE mesh) and
// write it in MatrixMarket and/or Harwell-Boeing RSA format, so the
// synthetic test set can be consumed by other solvers for head-to-head
// comparisons.
//
//   ./gen_matrix <suite-name|custom> [out-prefix]
//   ./gen_matrix custom nx ny nz dof [out-prefix]
#include <cstdlib>
#include <iostream>

#include "sparse/hb_io.hpp"
#include "sparse/io.hpp"
#include "sparse/suite.hpp"

int main(int argc, char** argv) {
  using namespace pastix;
  if (argc < 2) {
    std::cout << "usage: gen_matrix <name> [out-prefix]\n"
                 "       gen_matrix custom <nx> <ny> <nz> <dof> [out-prefix]\n"
                 "available suite problems:";
    for (const auto& p : paper_suite()) std::cout << " " << p.name;
    std::cout << "\n";
    return 0;
  }

  const std::string name = argv[1];
  SymSparse<double> a;
  std::string prefix = name;
  try {
    if (name == "custom") {
      if (argc < 6) {
        std::cerr << "custom requires nx ny nz dof\n";
        return 1;
      }
      FeMeshSpec spec;
      spec.nx = std::atoi(argv[2]);
      spec.ny = std::atoi(argv[3]);
      spec.nz = std::atoi(argv[4]);
      spec.dof = std::atoi(argv[5]);
      a = gen_fe_mesh(spec);
      prefix = argc > 6 ? argv[6] : "custom";
    } else {
      a = make_suite_matrix(suite_problem(name));
      if (argc > 2) prefix = argv[2];
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  const std::string mtx = prefix + ".mtx";
  const std::string rsa = prefix + ".rsa";
  save_matrix_market(mtx, a);
  save_harwell_boeing(rsa, a);
  std::cout << "wrote " << mtx << " and " << rsa << " (n = " << a.n()
            << ", nnz = " << a.nnz_offdiag() + a.n() << ")\n";
  return 0;
}
