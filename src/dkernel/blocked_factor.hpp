#pragma once
//
// Blocked (right-looking) dense factorizations.  The unblocked kernels in
// kernels.hpp are column-oriented and bandwidth-bound beyond the cache; the
// blocked variants push the trailing update through GEMM, which is what a
// production solver (and ESSL in the paper) does.  dense_ldlt_auto /
// dense_llt_auto dispatch on size.
//
#include <vector>

#include "dkernel/kernels.hpp"

namespace pastix {

inline constexpr idx_t kFactorPanel = 48;      ///< panel width
inline constexpr idx_t kBlockedCutover = 128;  ///< switch to blocked above

/// In-place blocked LDL^t (unit L in the strict lower part, D on the
/// diagonal).  Semantically identical to dense_ldlt.
template <class T>
void dense_ldlt_blocked(idx_t n, T* a, idx_t lda, idx_t nb = kFactorPanel,
                        PivotContext* pc = nullptr) {
  std::vector<T> w;  // W = L21 * D1 (the scaled panel used by the update)
  std::vector<T> d(static_cast<std::size_t>(nb));
  for (idx_t k0 = 0; k0 < n; k0 += nb) {
    const idx_t kb = std::min(nb, n - k0);
    T* diag = a + k0 + static_cast<std::size_t>(k0) * lda;
    PivotContext sub;  // shift the global column base to this panel
    PivotContext* psub = nullptr;
    if (pc) {
      sub = *pc;
      sub.base_column += k0;
      psub = &sub;
    }
    dense_ldlt(kb, diag, lda, psub);
    const idx_t below = n - k0 - kb;
    if (below == 0) continue;

    // Panel solve: rows below the diagonal block.  trsm yields W = L21 * D1;
    // keep a copy, then scale the stored panel down to L21.
    T* panel = a + (k0 + kb) + static_cast<std::size_t>(k0) * lda;
    trsm_right_lt_unit(below, kb, diag, lda, panel, lda);
    w.assign(static_cast<std::size_t>(below) * kb, T{});
    for (idx_t j = 0; j < kb; ++j)
      std::copy(panel + static_cast<std::size_t>(j) * lda,
                panel + static_cast<std::size_t>(j) * lda + below,
                w.data() + static_cast<std::size_t>(j) * below);
    for (idx_t j = 0; j < kb; ++j)
      d[static_cast<std::size_t>(j)] = diag[j + static_cast<std::size_t>(j) * lda];
    scale_columns(below, kb, panel, lda, d.data(), /*invert=*/true);

    // Trailing update (lower triangle only), one GEMM per column block:
    // A22[j0:, j0:j0+jb] -= L21[j0:, :] * W[j0:, :]^t.
    for (idx_t j0 = k0 + kb; j0 < n; j0 += nb) {
      const idx_t jb = std::min(nb, n - j0);
      gemm_nt(n - j0, jb, kb, T(-1),
              a + j0 + static_cast<std::size_t>(k0) * lda, lda,
              w.data() + (j0 - k0 - kb), below,
              a + j0 + static_cast<std::size_t>(j0) * lda, lda);
    }
  }
}

/// In-place blocked Cholesky LL^t (lower).  Semantically identical to
/// dense_llt.
template <class T>
void dense_llt_blocked(idx_t n, T* a, idx_t lda, idx_t nb = kFactorPanel,
                       PivotContext* pc = nullptr) {
  for (idx_t k0 = 0; k0 < n; k0 += nb) {
    const idx_t kb = std::min(nb, n - k0);
    T* diag = a + k0 + static_cast<std::size_t>(k0) * lda;
    PivotContext sub;
    PivotContext* psub = nullptr;
    if (pc) {
      sub = *pc;
      sub.base_column += k0;
      psub = &sub;
    }
    dense_llt(kb, diag, lda, psub);
    const idx_t below = n - k0 - kb;
    if (below == 0) continue;

    T* panel = a + (k0 + kb) + static_cast<std::size_t>(k0) * lda;
    trsm_right_lt(below, kb, diag, lda, panel, lda);

    // A22[j0:, j0:j0+jb] -= L21[j0:, :] * L21[j0:j0+jb, :]^t; both operands
    // live in the panel columns, rows starting at j0.
    for (idx_t j0 = k0 + kb; j0 < n; j0 += nb) {
      const idx_t jb = std::min(nb, n - j0);
      const T* l21 = a + j0 + static_cast<std::size_t>(k0) * lda;
      gemm_nt(n - j0, jb, kb, T(-1), l21, lda, l21, lda,
              a + j0 + static_cast<std::size_t>(j0) * lda, lda);
    }
  }
}

/// Size-dispatching entry points used by the solvers.
template <class T>
void dense_ldlt_auto(idx_t n, T* a, idx_t lda, PivotContext* pc = nullptr) {
  if (n >= kBlockedCutover)
    dense_ldlt_blocked(n, a, lda, kFactorPanel, pc);
  else
    dense_ldlt(n, a, lda, pc);
}

template <class T>
void dense_llt_auto(idx_t n, T* a, idx_t lda, PivotContext* pc = nullptr) {
  if (n >= kBlockedCutover)
    dense_llt_blocked(n, a, lda, kFactorPanel, pc);
  else
    dense_llt(n, a, lda, pc);
}

} // namespace pastix
