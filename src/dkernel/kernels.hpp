#pragma once
//
// Dense kernels (the "BLAS" underneath the solver).
//
// All kernels are templated on the scalar type (double or complex<double>,
// the complex path being *symmetric*, never conjugated) and work on
// column-major storage with an explicit leading dimension.
//
// The GEMM uses outer-product register blocking (4 columns x 2 inner
// iterations) — enough to be compute-bound on one core, and the paper's
// scheduler only requires a *calibrated time model* of whatever kernels run
// underneath (src/model fits the same multi-variable polynomial regression
// the authors fitted on ESSL).
//
#include <cmath>
#include <complex>
#include <type_traits>

#include "dkernel/pivot.hpp"
#include "support/check.hpp"
#include "support/scalar.hpp"
#include "support/types.hpp"

namespace pastix {

/// C(m x n) += alpha * A(m x k) * B(n x k)^t   — the fan-in update kernel.
/// B is accessed as B(j, l), i.e. row j of B supplies column j of C.
template <class T>
void gemm_nt(idx_t m, idx_t n, idx_t k, T alpha, const T* a, idx_t lda,
             const T* b, idx_t ldb, T* c, idx_t ldc) {
  PASTIX_ASSERT(m >= 0 && n >= 0 && k >= 0);
  idx_t j = 0;
  for (; j + 4 <= n; j += 4) {
    T* c0 = c + static_cast<std::size_t>(j) * ldc;
    T* c1 = c0 + ldc;
    T* c2 = c1 + ldc;
    T* c3 = c2 + ldc;
    idx_t l = 0;
    for (; l + 2 <= k; l += 2) {
      const T* a0 = a + static_cast<std::size_t>(l) * lda;
      const T* a1 = a0 + lda;
      const T b00 = alpha * b[j + static_cast<std::size_t>(l) * ldb];
      const T b01 = alpha * b[j + static_cast<std::size_t>(l + 1) * ldb];
      const T b10 = alpha * b[j + 1 + static_cast<std::size_t>(l) * ldb];
      const T b11 = alpha * b[j + 1 + static_cast<std::size_t>(l + 1) * ldb];
      const T b20 = alpha * b[j + 2 + static_cast<std::size_t>(l) * ldb];
      const T b21 = alpha * b[j + 2 + static_cast<std::size_t>(l + 1) * ldb];
      const T b30 = alpha * b[j + 3 + static_cast<std::size_t>(l) * ldb];
      const T b31 = alpha * b[j + 3 + static_cast<std::size_t>(l + 1) * ldb];
      for (idx_t i = 0; i < m; ++i) {
        const T x0 = a0[i], x1 = a1[i];
        c0[i] += x0 * b00 + x1 * b01;
        c1[i] += x0 * b10 + x1 * b11;
        c2[i] += x0 * b20 + x1 * b21;
        c3[i] += x0 * b30 + x1 * b31;
      }
    }
    for (; l < k; ++l) {
      const T* a0 = a + static_cast<std::size_t>(l) * lda;
      const T b0 = alpha * b[j + static_cast<std::size_t>(l) * ldb];
      const T b1 = alpha * b[j + 1 + static_cast<std::size_t>(l) * ldb];
      const T b2 = alpha * b[j + 2 + static_cast<std::size_t>(l) * ldb];
      const T b3 = alpha * b[j + 3 + static_cast<std::size_t>(l) * ldb];
      for (idx_t i = 0; i < m; ++i) {
        const T x = a0[i];
        c0[i] += x * b0;
        c1[i] += x * b1;
        c2[i] += x * b2;
        c3[i] += x * b3;
      }
    }
  }
  for (; j < n; ++j) {
    T* cj = c + static_cast<std::size_t>(j) * ldc;
    for (idx_t l = 0; l < k; ++l) {
      const T* al = a + static_cast<std::size_t>(l) * lda;
      const T bjl = alpha * b[j + static_cast<std::size_t>(l) * ldb];
      for (idx_t i = 0; i < m; ++i) cj[i] += al[i] * bjl;
    }
  }
}

/// C(m x n) += alpha * A(m x k) * B(k x n)   — plain GEMM (solve phase).
/// Register-blocked over 4 columns of C so one load of an A column feeds
/// four right-hand sides — this is where the multi-RHS panel solve beats
/// the looped gemv path.  Each column's accumulation order matches the
/// single-column tail loop exactly.
template <class T>
void gemm_nn(idx_t m, idx_t n, idx_t k, T alpha, const T* a, idx_t lda,
             const T* b, idx_t ldb, T* c, idx_t ldc) {
  idx_t j = 0;
  for (; j + 4 <= n; j += 4) {
    T* c0 = c + static_cast<std::size_t>(j) * ldc;
    T* c1 = c0 + ldc;
    T* c2 = c1 + ldc;
    T* c3 = c2 + ldc;
    const T* b0 = b + static_cast<std::size_t>(j) * ldb;
    const T* b1 = b0 + ldb;
    const T* b2 = b1 + ldb;
    const T* b3 = b2 + ldb;
    for (idx_t l = 0; l < k; ++l) {
      const T* al = a + static_cast<std::size_t>(l) * lda;
      const T w0 = alpha * b0[l];
      const T w1 = alpha * b1[l];
      const T w2 = alpha * b2[l];
      const T w3 = alpha * b3[l];
      for (idx_t i = 0; i < m; ++i) {
        const T x = al[i];
        c0[i] += x * w0;
        c1[i] += x * w1;
        c2[i] += x * w2;
        c3[i] += x * w3;
      }
    }
  }
  for (; j < n; ++j) {
    T* cj = c + static_cast<std::size_t>(j) * ldc;
    const T* bj = b + static_cast<std::size_t>(j) * ldb;
    for (idx_t l = 0; l < k; ++l) {
      const T* al = a + static_cast<std::size_t>(l) * lda;
      const T blj = alpha * bj[l];
      for (idx_t i = 0; i < m; ++i) cj[i] += al[i] * blj;
    }
  }
}

/// C(n x w) += alpha * A(m x n)^t * B(m x w) — the backward panel-solve
/// update: one transposed-matrix sweep applied to every right-hand-side
/// column at once (the BLAS-3 form of gemv_t).
template <class T>
void gemm_tn(idx_t m, idx_t n, idx_t w, T alpha, const T* a, idx_t lda,
             const T* b, idx_t ldb, T* c, idx_t ldc) {
  idx_t r = 0;
  for (; r + 4 <= w; r += 4) {
    const T* b0 = b + static_cast<std::size_t>(r) * ldb;
    const T* b1 = b0 + ldb;
    const T* b2 = b1 + ldb;
    const T* b3 = b2 + ldb;
    T* c0 = c + static_cast<std::size_t>(r) * ldc;
    T* c1 = c0 + ldc;
    T* c2 = c1 + ldc;
    T* c3 = c2 + ldc;
    for (idx_t j = 0; j < n; ++j) {
      const T* aj = a + static_cast<std::size_t>(j) * lda;
      T a0{}, a1{}, a2{}, a3{};
      for (idx_t i = 0; i < m; ++i) {
        const T x = aj[i];
        a0 += x * b0[i];
        a1 += x * b1[i];
        a2 += x * b2[i];
        a3 += x * b3[i];
      }
      c0[j] += alpha * a0;
      c1[j] += alpha * a1;
      c2[j] += alpha * a2;
      c3[j] += alpha * a3;
    }
  }
  for (; r < w; ++r) {
    const T* br = b + static_cast<std::size_t>(r) * ldb;
    T* cr = c + static_cast<std::size_t>(r) * ldc;
    for (idx_t j = 0; j < n; ++j) {
      const T* aj = a + static_cast<std::size_t>(j) * lda;
      T acc{};
      for (idx_t i = 0; i < m; ++i) acc += aj[i] * br[i];
      cr[j] += alpha * acc;
    }
  }
}

/// C(m x n) = alpha * A(m x k) * B(k x n) — overwrite variant of gemm_nn for
/// the solve-phase contribution buffers.  Bitwise-identical to zero-filling C
/// and accumulating (0 + x*y == x*y exactly), but skips the zero-fill pass:
/// the first column of A seeds C, the rest accumulate through gemm_nn.
template <class T>
void gemm_nn_set(idx_t m, idx_t n, idx_t k, T alpha, const T* a, idx_t lda,
                 const T* b, idx_t ldb, T* c, idx_t ldc) {
  if (k == 0) {
    for (idx_t j = 0; j < n; ++j)
      for (idx_t i = 0; i < m; ++i) c[i + static_cast<std::size_t>(j) * ldc] = T{};
    return;
  }
  for (idx_t j = 0; j < n; ++j) {
    T* cj = c + static_cast<std::size_t>(j) * ldc;
    const T w0 = alpha * b[static_cast<std::size_t>(j) * ldb];
    for (idx_t i = 0; i < m; ++i) cj[i] = a[i] * w0;
  }
  gemm_nn(m, n, k - 1, alpha, a + lda, lda, b + 1, ldb, c, ldc);
}

/// C(n x w) = alpha * A(m x n)^t * B(m x w) — overwrite variant of gemm_tn
/// (each C entry is one full dot product, so writing instead of adding to a
/// zeroed C is bitwise-identical).
template <class T>
void gemm_tn_set(idx_t m, idx_t n, idx_t w, T alpha, const T* a, idx_t lda,
                 const T* b, idx_t ldb, T* c, idx_t ldc) {
  idx_t r = 0;
  for (; r + 4 <= w; r += 4) {
    const T* b0 = b + static_cast<std::size_t>(r) * ldb;
    const T* b1 = b0 + ldb;
    const T* b2 = b1 + ldb;
    const T* b3 = b2 + ldb;
    T* c0 = c + static_cast<std::size_t>(r) * ldc;
    T* c1 = c0 + ldc;
    T* c2 = c1 + ldc;
    T* c3 = c2 + ldc;
    for (idx_t j = 0; j < n; ++j) {
      const T* aj = a + static_cast<std::size_t>(j) * lda;
      T a0{}, a1{}, a2{}, a3{};
      for (idx_t i = 0; i < m; ++i) {
        const T x = aj[i];
        a0 += x * b0[i];
        a1 += x * b1[i];
        a2 += x * b2[i];
        a3 += x * b3[i];
      }
      c0[j] = alpha * a0;
      c1[j] = alpha * a1;
      c2[j] = alpha * a2;
      c3[j] = alpha * a3;
    }
  }
  for (; r < w; ++r) {
    const T* br = b + static_cast<std::size_t>(r) * ldb;
    T* cr = c + static_cast<std::size_t>(r) * ldc;
    for (idx_t j = 0; j < n; ++j) {
      const T* aj = a + static_cast<std::size_t>(j) * lda;
      T acc{};
      for (idx_t i = 0; i < m; ++i) acc += aj[i] * br[i];
      cr[j] = alpha * acc;
    }
  }
}

/// C(n x n, lower triangle only) += alpha * A(n x k) * A^t — symmetric rank-k
/// update used by the multifrontal LL^t baseline.
template <class T>
void syrk_lower_nt(idx_t n, idx_t k, T alpha, const T* a, idx_t lda, T* c,
                   idx_t ldc) {
  for (idx_t j = 0; j < n; ++j) {
    T* cj = c + static_cast<std::size_t>(j) * ldc;
    for (idx_t l = 0; l < k; ++l) {
      const T* al = a + static_cast<std::size_t>(l) * lda;
      const T ajl = alpha * al[j];
      for (idx_t i = j; i < n; ++i) cj[i] += al[i] * ajl;
    }
  }
}

/// A(m x n) := A * L^{-t} where L (n x n) is *unit* lower triangular —
/// the LDL^t panel solve (division by D is applied separately).
template <class T>
void trsm_right_lt_unit(idx_t m, idx_t n, const T* l, idx_t ldl, T* a,
                        idx_t lda) {
  // Column j of the result depends on columns < j: X(:,j) = A(:,j) -
  // sum_{p<j} X(:,p) * L(j,p).
  for (idx_t j = 0; j < n; ++j) {
    T* aj = a + static_cast<std::size_t>(j) * lda;
    for (idx_t p = 0; p < j; ++p) {
      const T ljp = l[j + static_cast<std::size_t>(p) * ldl];
      const T* ap = a + static_cast<std::size_t>(p) * lda;
      for (idx_t i = 0; i < m; ++i) aj[i] -= ap[i] * ljp;
    }
  }
}

/// A(m x n) := A * L^{-t} with L non-unit lower triangular (LL^t panel solve).
template <class T>
void trsm_right_lt(idx_t m, idx_t n, const T* l, idx_t ldl, T* a, idx_t lda) {
  for (idx_t j = 0; j < n; ++j) {
    T* aj = a + static_cast<std::size_t>(j) * lda;
    for (idx_t p = 0; p < j; ++p) {
      const T ljp = l[j + static_cast<std::size_t>(p) * ldl];
      const T* ap = a + static_cast<std::size_t>(p) * lda;
      for (idx_t i = 0; i < m; ++i) aj[i] -= ap[i] * ljp;
    }
    const T inv = T(1) / l[j + static_cast<std::size_t>(j) * ldl];
    for (idx_t i = 0; i < m; ++i) aj[i] *= inv;
  }
}

/// Scale columns: A(:, j) *= d[j] (or /= d[j] with invert = true).
template <class T>
void scale_columns(idx_t m, idx_t n, T* a, idx_t lda, const T* d, bool invert) {
  for (idx_t j = 0; j < n; ++j) {
    const T s = invert ? T(1) / d[j] : d[j];
    T* aj = a + static_cast<std::size_t>(j) * lda;
    for (idx_t i = 0; i < m; ++i) aj[i] *= s;
  }
}

/// In-place dense LDL^t without pivoting: on return the strict lower part of
/// A holds L (unit diagonal implicit) and the diagonal holds D.  With a null
/// pivot context (or threshold 0) a (near-)zero pivot throws — the
/// factorization targets SPD/diagonally dominant symmetric systems, as in
/// the paper; with a context carrying a positive threshold, tiny pivots are
/// statically perturbed to sign(d) * threshold and recorded (see pivot.hpp).
template <class T>
void dense_ldlt(idx_t n, T* a, idx_t lda, PivotContext* pc = nullptr) {
  for (idx_t j = 0; j < n; ++j) {
    T* aj = a + static_cast<std::size_t>(j) * lda;
    // Update column j with previous columns: a(j:, j) -= sum_p L(j:,p) d(p) L(j,p).
    for (idx_t p = 0; p < j; ++p) {
      const T* ap = a + static_cast<std::size_t>(p) * lda;
      const T w = ap[j] * ap[p];  // L(j,p) * d(p)
      for (idx_t i = j; i < n; ++i) aj[i] -= ap[i] * w;
    }
    const T d = admit_pivot(aj[j], j, pc, "dense LDL^t");
    aj[j] = d;
    const T inv = T(1) / d;
    for (idx_t i = j + 1; i < n; ++i) aj[i] *= inv;
  }
}

/// In-place dense Cholesky LL^t (lower).  Used by the multifrontal baseline
/// (PSPASES factors LL^t) and the kernel benchmark of Section 3.  Pivot
/// admission follows dense_ldlt: non-positive pivots throw without a
/// context, or are lifted to the perturbation threshold with one.
template <class T>
void dense_llt(idx_t n, T* a, idx_t lda, PivotContext* pc = nullptr) {
  for (idx_t j = 0; j < n; ++j) {
    T* aj = a + static_cast<std::size_t>(j) * lda;
    for (idx_t p = 0; p < j; ++p) {
      const T* ap = a + static_cast<std::size_t>(p) * lda;
      const T w = ap[j];
      for (idx_t i = j; i < n; ++i) aj[i] -= ap[i] * w;
    }
    T d;
    if constexpr (std::is_same_v<T, double>) {
      d = std::sqrt(admit_pivot_llt(aj[j], j, pc, "dense LL^t"));
    } else {
      // principal branch; fine for dominant real parts
      d = std::sqrt(admit_pivot(aj[j], j, pc, "dense LL^t"));
    }
    aj[j] = d;
    const T inv = T(1) / d;
    for (idx_t i = j + 1; i < n; ++i) aj[i] *= inv;
  }
}

/// y(m) += alpha * A(m x n) * x(n)
template <class T>
void gemv_n(idx_t m, idx_t n, T alpha, const T* a, idx_t lda, const T* x,
            T* y) {
  for (idx_t j = 0; j < n; ++j) {
    const T w = alpha * x[j];
    const T* aj = a + static_cast<std::size_t>(j) * lda;
    for (idx_t i = 0; i < m; ++i) y[i] += aj[i] * w;
  }
}

/// y(n) += alpha * A(m x n)^t * x(m)
template <class T>
void gemv_t(idx_t m, idx_t n, T alpha, const T* a, idx_t lda, const T* x,
            T* y) {
  for (idx_t j = 0; j < n; ++j) {
    const T* aj = a + static_cast<std::size_t>(j) * lda;
    T acc{};
    for (idx_t i = 0; i < m; ++i) acc += aj[i] * x[i];
    y[j] += alpha * acc;
  }
}

/// Forward solve L x = b in place (L unit lower, n x n).
template <class T>
void trsv_lower_unit(idx_t n, const T* l, idx_t ldl, T* x) {
  for (idx_t j = 0; j < n; ++j) {
    const T xj = x[j];
    const T* lj = l + static_cast<std::size_t>(j) * ldl;
    for (idx_t i = j + 1; i < n; ++i) x[i] -= lj[i] * xj;
  }
}

/// Backward solve L^t x = b in place (L unit lower, n x n).
template <class T>
void trsv_lower_unit_t(idx_t n, const T* l, idx_t ldl, T* x) {
  for (idx_t j = n - 1; j >= 0; --j) {
    const T* lj = l + static_cast<std::size_t>(j) * ldl;
    T acc = x[j];
    for (idx_t i = j + 1; i < n; ++i) acc -= lj[i] * x[i];
    x[j] = acc;
  }
}

/// Forward solve L x = b (non-unit lower) in place.
template <class T>
void trsv_lower(idx_t n, const T* l, idx_t ldl, T* x) {
  for (idx_t j = 0; j < n; ++j) {
    const T* lj = l + static_cast<std::size_t>(j) * ldl;
    x[j] /= lj[j];
    const T xj = x[j];
    for (idx_t i = j + 1; i < n; ++i) x[i] -= lj[i] * xj;
  }
}

/// Backward solve L^t x = b (non-unit lower) in place.
template <class T>
void trsv_lower_t(idx_t n, const T* l, idx_t ldl, T* x) {
  for (idx_t j = n - 1; j >= 0; --j) {
    const T* lj = l + static_cast<std::size_t>(j) * ldl;
    T acc = x[j];
    for (idx_t i = j + 1; i < n; ++i) acc -= lj[i] * x[i];
    x[j] = acc / lj[j];
  }
}

// --- left-side panel triangular solves (multi-RHS solve phase) --------------
// X is an n x w column-major panel (one right-hand side per column); the
// panel variants replace one trsv per RHS with a single sweep over L that
// touches every column — same arithmetic per column as the trsv above, so
// the w = 1 case is bitwise-identical to the vector kernels.

/// X(n x w) := L^{-1} X, L unit lower triangular.
template <class T>
void trsm_left_lower_unit(idx_t n, idx_t w, const T* l, idx_t ldl, T* x,
                          idx_t ldx) {
  for (idx_t j = 0; j < n; ++j) {
    const T* lj = l + static_cast<std::size_t>(j) * ldl;
    idx_t r = 0;
    for (; r + 4 <= w; r += 4) {
      T* x0 = x + static_cast<std::size_t>(r) * ldx;
      T* x1 = x0 + ldx;
      T* x2 = x1 + ldx;
      T* x3 = x2 + ldx;
      const T w0 = x0[j], w1 = x1[j], w2 = x2[j], w3 = x3[j];
      for (idx_t i = j + 1; i < n; ++i) {
        const T lij = lj[i];
        x0[i] -= lij * w0;
        x1[i] -= lij * w1;
        x2[i] -= lij * w2;
        x3[i] -= lij * w3;
      }
    }
    for (; r < w; ++r) {
      T* xr = x + static_cast<std::size_t>(r) * ldx;
      const T xj = xr[j];
      for (idx_t i = j + 1; i < n; ++i) xr[i] -= lj[i] * xj;
    }
  }
}

/// X(n x w) := L^{-1} X, L non-unit lower triangular.
template <class T>
void trsm_left_lower(idx_t n, idx_t w, const T* l, idx_t ldl, T* x,
                     idx_t ldx) {
  for (idx_t j = 0; j < n; ++j) {
    const T* lj = l + static_cast<std::size_t>(j) * ldl;
    idx_t r = 0;
    for (; r + 4 <= w; r += 4) {
      T* x0 = x + static_cast<std::size_t>(r) * ldx;
      T* x1 = x0 + ldx;
      T* x2 = x1 + ldx;
      T* x3 = x2 + ldx;
      const T w0 = (x0[j] /= lj[j]);
      const T w1 = (x1[j] /= lj[j]);
      const T w2 = (x2[j] /= lj[j]);
      const T w3 = (x3[j] /= lj[j]);
      for (idx_t i = j + 1; i < n; ++i) {
        const T lij = lj[i];
        x0[i] -= lij * w0;
        x1[i] -= lij * w1;
        x2[i] -= lij * w2;
        x3[i] -= lij * w3;
      }
    }
    for (; r < w; ++r) {
      T* xr = x + static_cast<std::size_t>(r) * ldx;
      const T xj = (xr[j] /= lj[j]);
      for (idx_t i = j + 1; i < n; ++i) xr[i] -= lj[i] * xj;
    }
  }
}

/// X(n x w) := L^{-t} X, L unit lower triangular.
template <class T>
void trsm_left_lower_unit_t(idx_t n, idx_t w, const T* l, idx_t ldl, T* x,
                            idx_t ldx) {
  for (idx_t j = n - 1; j >= 0; --j) {
    const T* lj = l + static_cast<std::size_t>(j) * ldl;
    idx_t r = 0;
    for (; r + 4 <= w; r += 4) {
      T* x0 = x + static_cast<std::size_t>(r) * ldx;
      T* x1 = x0 + ldx;
      T* x2 = x1 + ldx;
      T* x3 = x2 + ldx;
      T a0 = x0[j], a1 = x1[j], a2 = x2[j], a3 = x3[j];
      for (idx_t i = j + 1; i < n; ++i) {
        const T lij = lj[i];
        a0 -= lij * x0[i];
        a1 -= lij * x1[i];
        a2 -= lij * x2[i];
        a3 -= lij * x3[i];
      }
      x0[j] = a0;
      x1[j] = a1;
      x2[j] = a2;
      x3[j] = a3;
    }
    for (; r < w; ++r) {
      T* xr = x + static_cast<std::size_t>(r) * ldx;
      T acc = xr[j];
      for (idx_t i = j + 1; i < n; ++i) acc -= lj[i] * xr[i];
      xr[j] = acc;
    }
  }
}

/// X(n x w) := L^{-t} X, L non-unit lower triangular.
template <class T>
void trsm_left_lower_t(idx_t n, idx_t w, const T* l, idx_t ldl, T* x,
                       idx_t ldx) {
  for (idx_t j = n - 1; j >= 0; --j) {
    const T* lj = l + static_cast<std::size_t>(j) * ldl;
    idx_t r = 0;
    for (; r + 4 <= w; r += 4) {
      T* x0 = x + static_cast<std::size_t>(r) * ldx;
      T* x1 = x0 + ldx;
      T* x2 = x1 + ldx;
      T* x3 = x2 + ldx;
      T a0 = x0[j], a1 = x1[j], a2 = x2[j], a3 = x3[j];
      for (idx_t i = j + 1; i < n; ++i) {
        const T lij = lj[i];
        a0 -= lij * x0[i];
        a1 -= lij * x1[i];
        a2 -= lij * x2[i];
        a3 -= lij * x3[i];
      }
      x0[j] = a0 / lj[j];
      x1[j] = a1 / lj[j];
      x2[j] = a2 / lj[j];
      x3[j] = a3 / lj[j];
    }
    for (; r < w; ++r) {
      T* xr = x + static_cast<std::size_t>(r) * ldx;
      T acc = xr[j];
      for (idx_t i = j + 1; i < n; ++i) acc -= lj[i] * xr[i];
      xr[j] = acc / lj[j];
    }
  }
}

} // namespace pastix
