#pragma once
//
// Static pivot perturbation and structured breakdown reporting.
//
// The paper's LDL^t runs without pivoting (Section 2), which is exact for
// SPD / diagonally dominant systems but breaks down on indefinite or
// (near-)singular input: a Schur-complement diagonal entry can land on
// (numerical) zero.  Instead of killing the factorization, the kernels can
// replace every pivot d with |d| < tau by sign(d) * tau, where
// tau = eps_rel * max|A| — the static pivoting strategy SuperLU_DIST
// popularized.  Each replacement is counted and recorded so callers can
// decide how hard to drive iterative refinement afterwards (see
// Solver::solve_adaptive), and non-finite values are reported with their
// location instead of propagating NaNs through the whole factor.
//
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/scalar.hpp"
#include "support/types.hpp"

namespace pastix {

/// Knobs of the graceful-degradation layer of the numerical factorization.
struct PivotOptions {
  /// Replace tiny pivots instead of throwing.  Off restores the historical
  /// hard failure (pastix::Error from the first bad pivot).
  bool perturb = true;
  /// Pivot admission threshold, relative to max|A_ij|: a pivot d with
  /// |d| < eps_rel * max|A| is replaced by sign(d) * eps_rel * max|A|.
  double eps_rel = 1e-12;
  /// At most this many perturbation events are recorded per rank (the
  /// counters are always exact; only the per-event list is capped).
  idx_t max_recorded = 64;
};

/// One recorded pivot replacement.
struct PivotEvent {
  idx_t column = kNone;      ///< global column index of the pivot
  double before_abs = 0;     ///< |d| before the replacement
};

/// Structured outcome of a numerical factorization: how far the input was
/// from the no-pivoting happy path, and where it first broke down.
struct FactorStatus {
  idx_t perturbations = 0;   ///< number of pivots statically perturbed
  double min_pivot_abs = std::numeric_limits<double>::infinity();
  idx_t first_breakdown = kNone;  ///< first perturbed / non-finite column
  idx_t nonfinite_at = kNone;     ///< column where a NaN/Inf guard tripped
  std::vector<PivotEvent> events; ///< first max_recorded perturbations
  idx_t max_recorded = 64;

  /// True when the factorization ran exactly as the paper assumes: every
  /// pivot admissible, no perturbation, no non-finite value.
  [[nodiscard]] bool clean() const {
    return perturbations == 0 && nonfinite_at == kNone;
  }

  void note_pivot(double mag) {
    if (mag < min_pivot_abs) min_pivot_abs = mag;
  }

  void note_perturbation(idx_t column, double before_abs) {
    perturbations++;
    if (first_breakdown == kNone || column < first_breakdown)
      first_breakdown = column;
    if (static_cast<idx_t>(events.size()) < max_recorded)
      events.push_back({column, before_abs});
  }

  void note_breakdown(idx_t column) {
    if (first_breakdown == kNone || column < first_breakdown)
      first_breakdown = column;
  }

  void note_nonfinite(idx_t column) {
    if (nonfinite_at == kNone || column < nonfinite_at) nonfinite_at = column;
    if (first_breakdown == kNone || column < first_breakdown)
      first_breakdown = column;
  }

  /// Fold another rank's status into this one (column-wise minima, summed
  /// counts; event lists concatenated up to the cap).
  void merge(const FactorStatus& o) {
    perturbations += o.perturbations;
    min_pivot_abs = std::min(min_pivot_abs, o.min_pivot_abs);
    if (o.first_breakdown != kNone &&
        (first_breakdown == kNone || o.first_breakdown < first_breakdown))
      first_breakdown = o.first_breakdown;
    if (o.nonfinite_at != kNone &&
        (nonfinite_at == kNone || o.nonfinite_at < nonfinite_at))
      nonfinite_at = o.nonfinite_at;
    for (const auto& e : o.events) {
      if (static_cast<idx_t>(events.size()) >= max_recorded) break;
      events.push_back(e);
    }
  }

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << "perturbations=" << perturbations;
    if (min_pivot_abs != std::numeric_limits<double>::infinity())
      os << " min|pivot|=" << min_pivot_abs;
    if (first_breakdown != kNone) os << " first_breakdown=" << first_breakdown;
    if (nonfinite_at != kNone) os << " nonfinite_at=" << nonfinite_at;
    return os.str();
  }
};

/// Per-call context threaded into the dense factorization kernels.  A null
/// context (or threshold == 0) keeps the historical behaviour: tiny pivots
/// throw pastix::Error.
struct PivotContext {
  double threshold = 0;    ///< absolute admission threshold (eps_rel * max|A|)
  idx_t base_column = 0;   ///< global column index of the kernel's column 0
  FactorStatus* status = nullptr;  ///< optional recording sink
};

namespace detail {

[[noreturn]] inline void throw_pivot_breakdown(const char* where, idx_t column,
                                               double mag) {
  std::ostringstream os;
  os << where << ": pivot breakdown at column " << column << " (|pivot| = "
     << mag << "); matrix is numerically singular / indefinite beyond the "
     << "no-pivoting factorization — enable static pivot perturbation "
     << "(PivotOptions::perturb) to degrade gracefully";
  throw Error(os.str());
}

[[noreturn]] inline void throw_nonfinite(const char* where, idx_t column) {
  std::ostringstream os;
  os << where << ": non-finite pivot at column " << column
     << " (NaN/Inf in the input or overflow during elimination)";
  throw Error(os.str());
}

} // namespace detail

/// Admit, perturb, or reject the pivot `d` of local column `j`.  Returns the
/// (possibly replaced) pivot to use.  Records magnitudes / perturbations into
/// the context's status and throws a located pastix::Error on breakdown when
/// perturbation is disabled, or on NaN/Inf always.
template <class T>
[[nodiscard]] T admit_pivot(T d, idx_t j, PivotContext* pc, const char* where) {
  const double mag = std::sqrt(abs2(d));
  const idx_t column = (pc ? pc->base_column : 0) + j;
  if (!std::isfinite(mag)) {
    if (pc && pc->status) pc->status->note_nonfinite(column);
    detail::throw_nonfinite(where, column);
  }
  if (pc && pc->status) pc->status->note_pivot(mag);
  if (pc && pc->threshold > 0) {
    if (mag >= pc->threshold) return d;
    if (pc->status) pc->status->note_perturbation(column, mag);
    // sign(d) * tau; an exact zero gets +tau.  For complex pivots the
    // "sign" is the unit-magnitude direction d / |d|.
    if (mag == 0) return T(pc->threshold);
    return d * T(pc->threshold / mag);
  }
  if (abs2(d) <= 1e-300) {
    if (pc && pc->status) pc->status->note_breakdown(column);
    detail::throw_pivot_breakdown(where, column, mag);
  }
  return d;
}

/// LL^t variant: the pre-square-root Schur diagonal must be positive.  With
/// perturbation enabled, any d < tau (including negative d — there is no
/// sign to keep under LL^t) is replaced by tau.
inline double admit_pivot_llt(double d, idx_t j, PivotContext* pc,
                              const char* where) {
  const idx_t column = (pc ? pc->base_column : 0) + j;
  if (!std::isfinite(d)) {
    if (pc && pc->status) pc->status->note_nonfinite(column);
    detail::throw_nonfinite(where, column);
  }
  if (pc && pc->status) pc->status->note_pivot(std::abs(d));
  if (pc && pc->threshold > 0) {
    if (d >= pc->threshold) return d;
    if (pc->status) pc->status->note_perturbation(column, std::abs(d));
    return pc->threshold;
  }
  if (!(d > 0)) {
    if (pc && pc->status) pc->status->note_breakdown(column);
    detail::throw_pivot_breakdown(where, column, std::abs(d));
  }
  return d;
}

/// NaN/Inf guard at a panel boundary: scan the m x n column-major block and
/// throw a located error (recording into `st`) on the first non-finite
/// value.  `gcol0` is the global column of the block's column 0.
template <class T>
void check_block_finite(const T* a, idx_t m, idx_t n, idx_t lda, idx_t gcol0,
                        const char* what, FactorStatus* st) {
  for (idx_t j = 0; j < n; ++j) {
    const T* aj = a + static_cast<std::size_t>(j) * lda;
    for (idx_t i = 0; i < m; ++i) {
      if (std::isfinite(abs2(aj[i]))) continue;
      if (st) st->note_nonfinite(gcol0 + j);
      std::ostringstream os;
      os << what << ": non-finite value at panel position (" << i << ", "
         << gcol0 + j << ")";
      throw Error(os.str());
    }
  }
}

} // namespace pastix
