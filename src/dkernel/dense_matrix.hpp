#pragma once
//
// Small owning column-major dense matrix, used by frontal matrices, test
// references and workspaces.  Not a linear-algebra type: just storage with
// a leading dimension equal to the row count.
//
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace pastix {

template <class T>
class DenseMatrix {
public:
  DenseMatrix() = default;
  DenseMatrix(idx_t rows, idx_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    PASTIX_CHECK(rows >= 0 && cols >= 0, "negative dimensions");
  }

  [[nodiscard]] idx_t rows() const { return rows_; }
  [[nodiscard]] idx_t cols() const { return cols_; }
  [[nodiscard]] idx_t ld() const { return rows_; }

  T& operator()(idx_t i, idx_t j) {
    PASTIX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  const T& operator()(idx_t i, idx_t j) const {
    PASTIX_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] T* col(idx_t j) { return data() + static_cast<std::size_t>(j) * rows_; }
  [[nodiscard]] const T* col(idx_t j) const {
    return data() + static_cast<std::size_t>(j) * rows_;
  }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

private:
  idx_t rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

} // namespace pastix
