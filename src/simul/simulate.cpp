#include "simul/simulate.hpp"

#include <algorithm>

namespace pastix {

SimResult simulate_schedule(const TaskGraph& tg, const Schedule& sched,
                            const CostModel& m) {
  const idx_t ntask = tg.ntask();
  SimResult res;
  res.busy.assign(static_cast<std::size_t>(sched.nprocs), 0.0);
  res.idle.assign(static_cast<std::size_t>(sched.nprocs), 0.0);

  std::vector<double> end(static_cast<std::size_t>(ntask), 0.0);
  std::vector<double> avail(static_cast<std::size_t>(sched.nprocs), 0.0);

  // Tasks in global priority order: every dependency has a smaller prio, and
  // a processor executes its K_p in exactly this relative order, so a single
  // pass is a valid event order.
  std::vector<idx_t> order(static_cast<std::size_t>(ntask));
  for (idx_t t = 0; t < ntask; ++t)
    order[static_cast<std::size_t>(sched.prio[static_cast<std::size_t>(t)])] = t;

  // Scratch for grouping contributions by source proc.
  std::vector<double> src_ready(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<double> src_entries(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<idx_t> src_stamp(static_cast<std::size_t>(sched.nprocs), -1);
  idx_t stamp = 0;

  for (const idx_t t : order) {
    const idx_t p = sched.proc[static_cast<std::size_t>(t)];
    double start = avail[static_cast<std::size_t>(p)];
    double agg_entries = 0;

    ++stamp;
    std::vector<idx_t> sources;
    for (const auto& c : tg.inputs[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      if (src_stamp[static_cast<std::size_t>(q)] != stamp) {
        src_stamp[static_cast<std::size_t>(q)] = stamp;
        src_ready[static_cast<std::size_t>(q)] = 0;
        src_entries[static_cast<std::size_t>(q)] = 0;
        sources.push_back(q);
      }
      src_ready[static_cast<std::size_t>(q)] =
          std::max(src_ready[static_cast<std::size_t>(q)],
                   end[static_cast<std::size_t>(c.source)]);
      src_entries[static_cast<std::size_t>(q)] += c.entries;
    }
    for (const idx_t q : sources) {
      if (q == p) {
        start = std::max(start, src_ready[static_cast<std::size_t>(q)]);
        agg_entries += src_entries[static_cast<std::size_t>(q)];
      } else {
        start = std::max(start,
                         src_ready[static_cast<std::size_t>(q)] +
                             m.comm_time_between(q, p, src_entries[static_cast<std::size_t>(q)]));
        agg_entries += 2 * src_entries[static_cast<std::size_t>(q)];
        res.comm_entries += src_entries[static_cast<std::size_t>(q)];
        res.messages++;
      }
    }
    for (const auto& c : tg.prec[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      const double e = end[static_cast<std::size_t>(c.source)];
      if (q == p || c.entries == 0) {
        start = std::max(start, e);
      } else {
        start = std::max(start, e + m.comm_time_between(q, p, c.entries));
        res.comm_entries += c.entries;
        res.messages++;
      }
    }

    const double agg = m.aggregate_time(agg_entries);
    const double work = tg.tasks[static_cast<std::size_t>(t)].cost + agg;
    end[static_cast<std::size_t>(t)] = start + work;
    avail[static_cast<std::size_t>(p)] = end[static_cast<std::size_t>(t)];
    res.busy[static_cast<std::size_t>(p)] += work;
    res.aggregate_seconds += agg;
  }

  res.makespan = *std::max_element(avail.begin(), avail.end());
  for (idx_t p = 0; p < sched.nprocs; ++p)
    res.idle[static_cast<std::size_t>(p)] =
        res.makespan - res.busy[static_cast<std::size_t>(p)];
  return res;
}

SimResult simulate_hybrid_schedule(const TaskGraph& tg, const Schedule& sched,
                                   const CostModel& m, idx_t pool_size) {
  if (sched.split.empty() || !sched.hybrid())
    return simulate_schedule(tg, sched, m);
  const idx_t ntask = tg.ntask();
  const std::size_t workers =
      static_cast<std::size_t>(pool_size < 1 ? 1 : pool_size);
  SimResult res;
  res.busy.assign(static_cast<std::size_t>(sched.nprocs), 0.0);
  res.idle.assign(static_cast<std::size_t>(sched.nprocs), 0.0);

  // Per task: the time its results become *visible* to consumers — task end
  // for prefix tasks, commit time for tail tasks.
  std::vector<double> visible(static_cast<std::size_t>(ntask), 0.0);
  // Per rank: the rank thread's clock (prefix progress, then the serialized
  // commit chain) and the tail pool's worker-unit clocks.
  std::vector<double> rank_avail(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<std::vector<double>> unit_avail(
      static_cast<std::size_t>(sched.nprocs),
      std::vector<double>(workers, 0.0));
  // Lazily captured when a rank's first tail task is reached: the pool only
  // starts once the whole prefix ran.
  std::vector<double> pool_start(static_cast<std::size_t>(sched.nprocs), -1.0);

  std::vector<unsigned char> tail(static_cast<std::size_t>(ntask), 0);
  for (idx_t p = 0; p < sched.nprocs; ++p) {
    const auto& kp = sched.kp[static_cast<std::size_t>(p)];
    const auto split =
        static_cast<std::size_t>(sched.split[static_cast<std::size_t>(p)]);
    for (std::size_t i = split; i < kp.size(); ++i)
      tail[static_cast<std::size_t>(kp[i])] = 1;
  }

  // Priority order is a valid event order here too: per rank, prefix tasks
  // precede tail tasks (the split is a K_p position), the commit chain
  // follows K_p order, and list-scheduling tail computes in priority order
  // IS the pool's ready-preference.
  std::vector<idx_t> order(static_cast<std::size_t>(ntask));
  for (idx_t t = 0; t < ntask; ++t)
    order[static_cast<std::size_t>(sched.prio[static_cast<std::size_t>(t)])] =
        t;

  std::vector<double> src_ready(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<double> src_entries(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<idx_t> src_stamp(static_cast<std::size_t>(sched.nprocs), -1);
  idx_t stamp = 0;

  for (const idx_t t : order) {
    const idx_t p = sched.proc[static_cast<std::size_t>(t)];
    double ready = 0;
    double agg_entries = 0;

    ++stamp;
    std::vector<idx_t> sources;
    for (const auto& c : tg.inputs[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      if (src_stamp[static_cast<std::size_t>(q)] != stamp) {
        src_stamp[static_cast<std::size_t>(q)] = stamp;
        src_ready[static_cast<std::size_t>(q)] = 0;
        src_entries[static_cast<std::size_t>(q)] = 0;
        sources.push_back(q);
      }
      src_ready[static_cast<std::size_t>(q)] =
          std::max(src_ready[static_cast<std::size_t>(q)],
                   visible[static_cast<std::size_t>(c.source)]);
      src_entries[static_cast<std::size_t>(q)] += c.entries;
    }
    for (const idx_t q : sources) {
      if (q == p) {
        ready = std::max(ready, src_ready[static_cast<std::size_t>(q)]);
        agg_entries += src_entries[static_cast<std::size_t>(q)];
      } else {
        ready = std::max(
            ready, src_ready[static_cast<std::size_t>(q)] +
                       m.comm_time_between(
                           q, p, src_entries[static_cast<std::size_t>(q)]));
        agg_entries += 2 * src_entries[static_cast<std::size_t>(q)];
        res.comm_entries += src_entries[static_cast<std::size_t>(q)];
        res.messages++;
      }
    }
    for (const auto& c : tg.prec[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      const double e = visible[static_cast<std::size_t>(c.source)];
      if (q == p || c.entries == 0) {
        ready = std::max(ready, e);
      } else {
        ready = std::max(ready, e + m.comm_time_between(q, p, c.entries));
        res.comm_entries += c.entries;
        res.messages++;
      }
    }

    const double agg = m.aggregate_time(agg_entries);
    const double work = tg.tasks[static_cast<std::size_t>(t)].cost + agg;
    res.busy[static_cast<std::size_t>(p)] += work;
    res.aggregate_seconds += agg;

    if (!tail[static_cast<std::size_t>(t)]) {
      const double start =
          std::max(ready, rank_avail[static_cast<std::size_t>(p)]);
      visible[static_cast<std::size_t>(t)] = start + work;
      rank_avail[static_cast<std::size_t>(p)] = start + work;
      continue;
    }
    // Tail: compute on the earliest-free pool unit (never before the
    // rank's prefix finished), then commit behind the rank's serialized
    // commit chain — only the commit is visible to consumers.
    if (pool_start[static_cast<std::size_t>(p)] < 0)
      pool_start[static_cast<std::size_t>(p)] =
          rank_avail[static_cast<std::size_t>(p)];
    auto& units = unit_avail[static_cast<std::size_t>(p)];
    std::size_t u = 0;
    for (std::size_t w = 1; w < units.size(); ++w)
      if (units[w] < units[u]) u = w;
    const double start = std::max(
        {ready, pool_start[static_cast<std::size_t>(p)], units[u]});
    const double compute_end = start + work;
    units[u] = compute_end;
    const double commit =
        std::max(compute_end, rank_avail[static_cast<std::size_t>(p)]);
    rank_avail[static_cast<std::size_t>(p)] = commit;
    visible[static_cast<std::size_t>(t)] = commit;
  }

  res.makespan = *std::max_element(rank_avail.begin(), rank_avail.end());
  for (idx_t p = 0; p < sched.nprocs; ++p)
    res.idle[static_cast<std::size_t>(p)] =
        res.makespan - res.busy[static_cast<std::size_t>(p)];
  return res;
}

} // namespace pastix
