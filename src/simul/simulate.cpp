#include "simul/simulate.hpp"

#include <algorithm>

namespace pastix {

SimResult simulate_schedule(const TaskGraph& tg, const Schedule& sched,
                            const CostModel& m) {
  const idx_t ntask = tg.ntask();
  SimResult res;
  res.busy.assign(static_cast<std::size_t>(sched.nprocs), 0.0);
  res.idle.assign(static_cast<std::size_t>(sched.nprocs), 0.0);

  std::vector<double> end(static_cast<std::size_t>(ntask), 0.0);
  std::vector<double> avail(static_cast<std::size_t>(sched.nprocs), 0.0);

  // Tasks in global priority order: every dependency has a smaller prio, and
  // a processor executes its K_p in exactly this relative order, so a single
  // pass is a valid event order.
  std::vector<idx_t> order(static_cast<std::size_t>(ntask));
  for (idx_t t = 0; t < ntask; ++t)
    order[static_cast<std::size_t>(sched.prio[static_cast<std::size_t>(t)])] = t;

  // Scratch for grouping contributions by source proc.
  std::vector<double> src_ready(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<double> src_entries(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<idx_t> src_stamp(static_cast<std::size_t>(sched.nprocs), -1);
  idx_t stamp = 0;

  for (const idx_t t : order) {
    const idx_t p = sched.proc[static_cast<std::size_t>(t)];
    double start = avail[static_cast<std::size_t>(p)];
    double agg_entries = 0;

    ++stamp;
    std::vector<idx_t> sources;
    for (const auto& c : tg.inputs[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      if (src_stamp[static_cast<std::size_t>(q)] != stamp) {
        src_stamp[static_cast<std::size_t>(q)] = stamp;
        src_ready[static_cast<std::size_t>(q)] = 0;
        src_entries[static_cast<std::size_t>(q)] = 0;
        sources.push_back(q);
      }
      src_ready[static_cast<std::size_t>(q)] =
          std::max(src_ready[static_cast<std::size_t>(q)],
                   end[static_cast<std::size_t>(c.source)]);
      src_entries[static_cast<std::size_t>(q)] += c.entries;
    }
    for (const idx_t q : sources) {
      if (q == p) {
        start = std::max(start, src_ready[static_cast<std::size_t>(q)]);
        agg_entries += src_entries[static_cast<std::size_t>(q)];
      } else {
        start = std::max(start,
                         src_ready[static_cast<std::size_t>(q)] +
                             m.comm_time_between(q, p, src_entries[static_cast<std::size_t>(q)]));
        agg_entries += 2 * src_entries[static_cast<std::size_t>(q)];
        res.comm_entries += src_entries[static_cast<std::size_t>(q)];
        res.messages++;
      }
    }
    for (const auto& c : tg.prec[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      const double e = end[static_cast<std::size_t>(c.source)];
      if (q == p || c.entries == 0) {
        start = std::max(start, e);
      } else {
        start = std::max(start, e + m.comm_time_between(q, p, c.entries));
        res.comm_entries += c.entries;
        res.messages++;
      }
    }

    const double agg = m.aggregate_time(agg_entries);
    const double work = tg.tasks[static_cast<std::size_t>(t)].cost + agg;
    end[static_cast<std::size_t>(t)] = start + work;
    avail[static_cast<std::size_t>(p)] = end[static_cast<std::size_t>(t)];
    res.busy[static_cast<std::size_t>(p)] += work;
    res.aggregate_seconds += agg;
  }

  res.makespan = *std::max_element(avail.begin(), avail.end());
  for (idx_t p = 0; p < sched.nprocs; ++p)
    res.idle[static_cast<std::size_t>(p)] =
        res.makespan - res.busy[static_cast<std::size_t>(p)];
  return res;
}

} // namespace pastix
