#pragma once
//
// Execution-trace export of a simulated schedule: per-task (processor,
// start, end, type) records, CSV export for external tooling and a compact
// text Gantt rendering for quick inspection in a terminal.
//
#include <iosfwd>
#include <string>

#include "simul/simulate.hpp"
#include "simul/timeline.hpp"

namespace pastix {

struct TraceEvent {
  idx_t task = kNone;
  idx_t proc = 0;
  TaskType type = TaskType::kComp1d;
  idx_t cblk = kNone;
  double start = 0, end = 0;
};

struct ScheduleTrace {
  std::vector<TraceEvent> events;  ///< sorted by (proc, start)
  double makespan = 0;
  idx_t nprocs = 0;

  /// Invariant check (shared timeline path): events of one processor never
  /// overlap; zero-duration and back-to-back events are legal.
  void validate() const;

  /// Lower to the shared timeline representation (simul/timeline.hpp).
  [[nodiscard]] std::vector<TimelineEvent> to_timeline() const;
};

/// Replay the schedule under `m` and record every task execution.
ScheduleTrace trace_schedule(const TaskGraph& tg, const Schedule& sched,
                             const CostModel& m);

/// CSV: task,proc,type,cblk,start,end
void write_trace_csv(std::ostream& os, const ScheduleTrace& trace);

/// Terminal Gantt chart: one row per processor, `width` character columns;
/// cells show the dominant task type in that time slice
/// (1 = COMP1D, F = FACTOR, d = BDIV, m = BMOD, '.' = idle).
void render_gantt(std::ostream& os, const ScheduleTrace& trace, int width = 100);

/// Chrome trace-event JSON of the *simulated* timeline (open in
/// chrome://tracing or Perfetto) — same format the runtime tracer exports,
/// so predicted and measured timelines can be eyeballed side by side.
void write_chrome_trace(std::ostream& os, const ScheduleTrace& trace);

} // namespace pastix
