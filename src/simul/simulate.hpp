#pragma once
//
// Discrete-event replay of a static schedule under the machine model.
//
// The greedy scheduler already predicts a makespan while mapping; this
// module re-executes a *fixed* mapping and task order against a (possibly
// different) cost model, yielding the performance numbers of the
// experiment harness: factorization time for any processor count (the host
// has one core, the paper's SP2 had 64 — see DESIGN.md), per-processor
// busy/idle breakdowns, and communication statistics.
//
#include "map/scheduler.hpp"

namespace pastix {

struct SimResult {
  double makespan = 0;
  std::vector<double> busy;        ///< per proc: seconds computing
  std::vector<double> idle;        ///< per proc: makespan - busy
  double comm_entries = 0;         ///< total entries shipped between procs
  big_t messages = 0;              ///< number of inter-proc messages
  double aggregate_seconds = 0;    ///< fan-in aggregation overcost (summed)

  [[nodiscard]] double gflops(double flops) const {
    return makespan > 0 ? flops / makespan / 1e9 : 0.0;
  }
  [[nodiscard]] double efficiency(double seq_seconds) const {
    const auto p = static_cast<double>(busy.size());
    return makespan > 0 ? seq_seconds / (p * makespan) : 0.0;
  }
};

/// Replay `sched` (its mapping and K_p orders) under `m`.
SimResult simulate_schedule(const TaskGraph& tg, const Schedule& sched,
                            const CostModel& m);

/// Replay `sched` under the hybrid prefix/tail execution model (DESIGN.md
/// §14): per rank, positions [0, split[p]) run sequentially on the rank
/// thread exactly as in simulate_schedule; the tail's *computes* are
/// list-scheduled onto `pool_size` worker units (ready order = static K_p
/// priority), while their *commits* — the point a task's results become
/// visible to its consumers — stay serialized in K_p order on the rank
/// thread.  A schedule without split points degenerates to
/// simulate_schedule.  This is the model bench/hybrid_tail uses to compare
/// hybrid against static makespans on a single-core host.
SimResult simulate_hybrid_schedule(const TaskGraph& tg, const Schedule& sched,
                                   const CostModel& m, idx_t pool_size);

} // namespace pastix
