#pragma once
//
// Shared event/timeline substrate of the two trace types — the simulated
// ScheduleTrace (simul/trace.hpp) and the measured RuntimeTrace
// (simul/runtime_trace.hpp) both lower to this representation, so the
// overlap invariant, the terminal Gantt renderer and the Chrome
// trace-event JSON writer exist exactly once.
//
#include <iosfwd>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace pastix {

/// One span on one lane (lane = processor/rank).  Zero-duration events are
/// legal (instantaneous markers); `name`/`cat`/`args` feed the Chrome
/// exporter and stay empty for validation-only uses.
struct TimelineEvent {
  idx_t lane = 0;
  double start = 0, end = 0;
  char glyph = '.';   ///< Gantt cell character
  std::string name;   ///< Chrome event name (e.g. "COMP1D")
  std::string cat;    ///< Chrome category (e.g. "task", "comm")
  std::string args;   ///< extra Chrome args as a JSON-object body
};

/// Sort by (lane, start, end) — the order every consumer below expects.
void sort_timeline(std::vector<TimelineEvent>& events);

/// Invariant check shared by both trace types: events must be sorted by
/// (lane, start), every span needs end >= start (zero duration allowed),
/// and spans of one lane must not overlap (back-to-back is allowed, with a
/// 1e-12 tolerance for replay arithmetic).  Throws Error mentioning `what`.
void validate_timeline(const std::vector<TimelineEvent>& events,
                       const char* what);

/// Terminal Gantt chart over `nlanes` rows and `width` columns; cells show
/// the glyph of the covering span ('.' = idle).  A zero/negative makespan
/// renders all-idle rows instead of dividing by zero.
void render_timeline_gantt(std::ostream& os,
                           const std::vector<TimelineEvent>& events,
                           idx_t nlanes, double makespan, int width,
                           const std::string& legend);

/// Chrome trace-event JSON ("X" complete events, microsecond timestamps):
/// open the file in chrome://tracing or https://ui.perfetto.dev.  One pid,
/// one tid per lane.
void write_chrome_trace_json(std::ostream& os,
                             const std::vector<TimelineEvent>& events);

} // namespace pastix
