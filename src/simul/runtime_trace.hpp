#pragma once
//
// Measured execution timeline of a parallel factorization — the runtime
// counterpart of the simulated ScheduleTrace, built from the per-rank
// event lanes the rt::TraceRecorder collected (rt/trace.hpp).
//
// This is the paper's missing validation loop: the static schedule is a
// *prediction* produced by replaying the calibrated cost model; the
// runtime trace is what the threaded ranks actually did.  compare_traces()
// quantifies the gap per task and per rank, and the recorded kernel spans
// feed CostModel::recalibrated() so a re-analyze produces a schedule
// informed by the machine the solver actually ran on (DESIGN.md §9).
//
#include <iosfwd>

#include "model/cost_model.hpp"
#include "rt/trace.hpp"
#include "simul/trace.hpp"

namespace pastix {

/// One executed task: wall span plus the measured breakdown inside it.
struct RuntimeTaskEvent {
  idx_t task = kNone;
  idx_t proc = 0;
  TaskType type = TaskType::kComp1d;
  idx_t cblk = kNone;
  double start = 0, end = 0;       ///< seconds since the trace origin
  double kernel_seconds = 0;       ///< dense kernel time inside the task
  double recv_wait_seconds = 0;    ///< blocked in Comm::recv inside the task
  bool replayed = false;           ///< re-executed after a crash recovery
  /// Hybrid execution (DESIGN.md §14): pool worker whose lane recorded the
  /// compute span, -1 for the rank thread (every prefix task, plus tail
  /// tasks the committer computed inline).  Spans of different workers of
  /// one rank may legitimately overlap.
  int worker = -1;

  /// Task wall time with the receive waits removed — the number a
  /// cost-model prediction is comparable to.
  [[nodiscard]] double work_seconds() const {
    return std::max(0.0, (end - start) - recv_wait_seconds);
  }
};

/// One message endpoint event (send or blocking receive).
struct RuntimeCommEvent {
  idx_t proc = 0;
  bool is_send = false;
  int peer = -1;            ///< destination (send) / source (recv)
  std::uint64_t tag = 0;
  std::uint64_t bytes = 0;
  double start = 0, end = 0;  ///< recv: the full blocked interval
};

/// One solve-phase section of a rank (forward / diagonal / backward).
struct RuntimePhaseEvent {
  idx_t proc = 0;
  int phase = 0;  ///< 0 = forward, 1 = diagonal, 2 = backward
  double start = 0, end = 0;
};

/// One executed solve-plan item (scheduled triangular-solve work unit).
/// `kind` is the solver's SolveItemKind stored as a plain int (0 = forward
/// diagonal solve, 1 = forward update, 2 = backward update, 3 = backward
/// diagonal solve) so this layer stays independent of the solver headers.
struct RuntimeSolveEvent {
  idx_t item = kNone;  ///< solve-plan task id (SolveIdLayout numbering)
  idx_t proc = 0;
  int kind = 0;
  idx_t cblk = kNone;  ///< owning column block (kNone for update items)
  idx_t blok = kNone;  ///< off-diagonal block (kNone for diagonal items)
  double start = 0, end = 0;     ///< seconds since the trace origin
  double recv_wait_seconds = 0;  ///< blocked in Comm::recv inside the item
};

/// One crash recovery: a rank restarted from its checkpoint (DESIGN.md §10).
struct RuntimeRestartEvent {
  idx_t proc = 0;
  idx_t position = 0;  ///< K_p index the rank resumed from
  double at = 0;       ///< when the restarted rank came back up
};

/// One work-steal: a hybrid pool worker claimed a tail task (DESIGN.md §14).
struct RuntimeStealEvent {
  idx_t task = kNone;
  idx_t position = 0;  ///< K_p index of the stolen task
  int worker = -1;     ///< claiming pool worker
  idx_t proc = 0;
  double at = 0;       ///< claim time, seconds since the trace origin
};

/// The merged, time-shifted (origin = first task start) runtime trace.
///
/// Crash recovery and the merge: a restarted rank records a kRestart marker
/// carrying its resume position.  The lane's task records beyond that
/// position belong to the dead attempt — the restarted rank re-executes
/// them — so build_runtime_trace drops the dead attempt's records and keeps
/// the re-executions, marked `replayed`.  The merged task list is therefore
/// exactly one execution of K_p per rank, and validate_against(Schedule)
/// holds on a recovered run just as on a fault-free one.
///
/// Hybrid worker lanes: tail computes recorded on a rank's pool-worker
/// lanes merge into the same per-rank task list (tagged with their worker).
/// The kRestart marker lands on the rank lane *after* the dead attempt's
/// workers joined, so every worker-lane record of a dead attempt ends
/// before the restart time — build_runtime_trace drops exactly those.
struct RuntimeTrace {
  std::vector<RuntimeTaskEvent> tasks;   ///< sorted by (proc, start)
  std::vector<RuntimeCommEvent> comm;    ///< sorted by (proc, start)
  std::vector<RuntimePhaseEvent> phases; ///< solve sections, if any ran
  std::vector<RuntimeSolveEvent> solve_items;  ///< sorted by (proc, start)
  std::vector<RuntimeRestartEvent> restarts;  ///< crash recoveries, if any
  std::vector<RuntimeStealEvent> steals;  ///< hybrid pool claims, if any
  KernelSampleSet kernels;               ///< measured spans for recalibration
  double makespan = 0;                   ///< last task end - first task start
  idx_t nprocs = 0;

  /// Tasks re-executed after checkpoint restores (0 on a fault-free run).
  [[nodiscard]] idx_t replayed_count() const {
    idx_t n = 0;
    for (const auto& t : tasks) n += t.replayed ? 1 : 0;
    return n;
  }

  /// Tasks computed on pool workers rather than the rank thread.
  [[nodiscard]] idx_t stolen_count() const {
    idx_t n = 0;
    for (const auto& t : tasks) n += t.worker >= 0 ? 1 : 0;
    return n;
  }

  /// Shared-timeline invariant: task spans of one execution lane (a rank
  /// thread, or one pool worker of a rank) never overlap.  Distinct workers
  /// of one rank run concurrently by design.
  void validate() const;

  /// Full property check against the plan.  Fully static schedule (no
  /// split): the overlap invariant, plus "every scheduled task of K_p
  /// appears exactly once and in schedule order" on every rank.  Hybrid
  /// schedule (split present, DESIGN.md §14): the prefix of each rank is
  /// checked exactly as before, position by position; the tail must be the
  /// same task *set* — any order a legal steal timing can produce is
  /// accepted.
  void validate_against(const Schedule& sched) const;

  /// Stricter hybrid acceptance: on top of validate_against(sched), every
  /// same-rank dependency edge between two tail tasks must be realized in
  /// time — the consumer's compute starts only after the producer's compute
  /// ended (the pool releases a task only when its predecessors committed,
  /// and a commit follows its compute).  Rejects traces whose tail order is
  /// NOT a linearization of the precedence graph.
  void validate_against(const Schedule& sched, const TaskGraph& tg) const;

  /// Solve-phase counterpart of validate_against: on every rank the
  /// executed solve items must be the solve schedule's K_p in order,
  /// repeated a whole number of times (one repetition per scheduled solve
  /// in the trace), with the same repetition count on every rank whose
  /// K_p is nonempty.
  void validate_solve_against(const Schedule& solve_sched) const;

  /// Lower tasks + comm + phases to the shared timeline representation.
  [[nodiscard]] std::vector<TimelineEvent> to_timeline() const;
};

/// Merge the recorder's per-rank lanes into a RuntimeTrace (call after the
/// factorization joined its rank threads).
RuntimeTrace build_runtime_trace(const rt::TraceRecorder& rec);

/// Chrome trace-event JSON of the measured timeline (chrome://tracing /
/// Perfetto), alongside the ScheduleTrace overload in simul/trace.hpp.
void write_chrome_trace(std::ostream& os, const RuntimeTrace& trace);

/// CSV: task,proc,type,cblk,start,end,kernel_s,recv_wait_s.
void write_runtime_trace_csv(std::ostream& os, const RuntimeTrace& trace);

// ------------------------------------------------------------------------
// Predicted-vs-actual schedule validation
// ------------------------------------------------------------------------

/// The gap between the simulated schedule and the measured execution.
struct TraceComparison {
  double predicted_makespan = 0;   ///< simulated seconds
  double actual_makespan = 0;      ///< measured seconds
  double makespan_ratio = 0;       ///< actual / predicted

  idx_t tasks_predicted = 0, tasks_actual = 0, tasks_matched = 0;
  bool task_sets_match = false;    ///< same task ids on both sides

  double total_predicted_seconds = 0;  ///< sum of simulated task spans
  double total_actual_work_seconds = 0;///< sum of measured work (waits removed)
  double mean_task_ratio = 0;          ///< mean of per-task actual/predicted
  double mean_abs_log10_ratio = 0;     ///< fidelity: 0 = perfect prediction
  double total_recv_wait_seconds = 0;  ///< blocked time across all ranks

  /// Per-task actual-work / predicted-time ratio, indexed by task id
  /// (0 for tasks missing on either side).
  std::vector<double> task_ratio;

  struct RankRow {
    idx_t tasks = 0;
    double predicted_busy = 0;  ///< simulated task seconds on this rank
    double busy = 0;            ///< measured task-span seconds
    double recv_wait = 0;       ///< blocked in recv (inside tasks)
    double idle = 0;            ///< actual makespan - busy
  };
  std::vector<RankRow> per_rank;

  /// One-paragraph summary for logs.
  [[nodiscard]] std::string to_string() const;
};

/// Compare the simulated timeline against the measured one.  Both sides
/// must come from the same schedule; the comparison is meaningful also
/// when a run degraded (pivot perturbation changes values, not tasks).
TraceComparison compare_traces(const ScheduleTrace& predicted,
                               const RuntimeTrace& actual);

/// Markdown table block of the comparison (used by the analysis report).
void write_trace_comparison(std::ostream& os, const TraceComparison& cmp);

/// Refit `base`'s kernel coefficients from the trace's measured spans —
/// sugar for base.recalibrated(trace.kernels).
[[nodiscard]] CostModel recalibrate(const CostModel& base,
                                    const RuntimeTrace& trace);

} // namespace pastix
