#include "simul/runtime_trace.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "rt/comm.hpp"
#include "support/table.hpp"

namespace pastix {

namespace {

const char* const kTypeNames[] = {"COMP1D", "FACTOR", "BDIV", "BMOD"};
const char kTypeGlyphs[] = {'1', 'F', 'd', 'm'};
const char* const kPhaseNames[] = {"forward-solve", "diagonal-solve",
                                   "backward-solve"};
const char kPhaseGlyphs[] = {'f', 'D', 'b'};
const char* const kSolveItemNames[] = {"fwd-diag", "fwd-upd", "bwd-upd",
                                       "bwd-diag"};
const char kSolveItemGlyphs[] = {'v', '>', '<', '^'};

} // namespace

RuntimeTrace build_runtime_trace(const rt::TraceRecorder& rec) {
  RuntimeTrace out;
  out.nprocs = rec.nranks();
  // Raw (pre-shift) time of each rank's *last* restart: worker-lane records
  // of a dead hybrid attempt all end before it (the rank joins its pool
  // before the crash propagates, and the restart marker is stamped when the
  // rank comes back up), so it is the exact splice point for worker lanes.
  std::vector<double> last_restart(static_cast<std::size_t>(rec.nranks()),
                                   -1.0);
  for (int rank = 0; rank < rec.nranks(); ++rank) {
    // Inner spans (kernels, receive waits) are recorded *before* their
    // enclosing task span finishes, so a forward sweep with running
    // accumulators attributes them to the right task.
    double kern_acc = 0, wait_acc = 0;
    // Lane-local task list so a kRestart marker can splice out the dead
    // attempt's records: the restarted rank re-executes everything from its
    // resume position, so those re-executions (flagged `replayed` up to the
    // dead attempt's reach) replace the originals and the merged lane holds
    // exactly one execution of K_p.
    std::vector<RuntimeTaskEvent> lane;
    std::size_t replay_until = 0;
    for (const rt::TraceRecord& r : rec.events(rank)) {
      switch (r.kind) {
        case rt::TraceKind::kTask: {
          RuntimeTaskEvent e;
          e.task = r.id1;
          e.proc = rank;
          e.type = static_cast<TaskType>(r.subtype);
          e.cblk = r.id2;
          e.start = r.start;
          e.end = r.end;
          e.kernel_seconds = kern_acc;
          e.recv_wait_seconds = wait_acc;
          e.replayed = lane.size() < replay_until;
          lane.push_back(e);
          kern_acc = wait_acc = 0;
          break;
        }
        case rt::TraceKind::kRestart: {
          const auto resume = static_cast<std::size_t>(r.id1);
          replay_until = std::max(replay_until, lane.size());
          if (resume < lane.size()) lane.resize(resume);
          out.restarts.push_back(
              {static_cast<idx_t>(rank), static_cast<idx_t>(r.id1), r.start});
          last_restart[static_cast<std::size_t>(rank)] =
              std::max(last_restart[static_cast<std::size_t>(rank)], r.start);
          // The killed task never recorded its span; drop its orphaned
          // kernel/wait accumulation instead of billing the next task.
          kern_acc = wait_acc = 0;
          break;
        }
        case rt::TraceKind::kKernel:
          kern_acc += r.end - r.start;
          out.kernels.add(static_cast<KernelOp>(r.subtype), r.id1, r.id2,
                          r.id3, r.end - r.start);
          break;
        case rt::TraceKind::kSend:
        case rt::TraceKind::kRecv: {
          RuntimeCommEvent e;
          e.proc = rank;
          e.is_send = (r.kind == rt::TraceKind::kSend);
          e.peer = r.peer;
          e.tag = r.tag;
          e.bytes = r.bytes;
          e.start = r.start;
          e.end = r.end;
          out.comm.push_back(e);
          if (!e.is_send) wait_acc += r.end - r.start;
          break;
        }
        case rt::TraceKind::kPhase:
          out.phases.push_back(
              {static_cast<idx_t>(rank), r.subtype, r.start, r.end});
          break;
        case rt::TraceKind::kSolveTask: {
          RuntimeSolveEvent e;
          e.item = r.id1;
          e.proc = rank;
          e.kind = r.subtype;
          e.cblk = r.id2 < 0 ? kNone : r.id2;
          e.blok = r.id3 < 0 ? kNone : r.id3;
          e.start = r.start;
          e.end = r.end;
          e.recv_wait_seconds = wait_acc;
          out.solve_items.push_back(e);
          wait_acc = 0;
          break;
        }
        case rt::TraceKind::kSteal:
          // Steals are claimed (and recorded) by pool workers; one landing
          // on a rank lane is still attributed correctly.
          out.steals.push_back({static_cast<idx_t>(r.id1),
                                static_cast<idx_t>(r.id2), r.id3,
                                static_cast<idx_t>(rank), r.start});
          break;
      }
    }
    out.tasks.insert(out.tasks.end(), lane.begin(), lane.end());
  }

  // Hybrid pool-worker lanes (DESIGN.md §14): tail computes, their kernel
  // and receive spans, and the steal markers.  Records of a dead attempt —
  // everything ending at or before the owning rank's last restart — are
  // dropped; what survives on a restarted rank is the recovery attempt's
  // re-execution.
  for (int lane_id = rec.nranks(); lane_id < rec.nlanes(); ++lane_id) {
    const int rank = rec.lane_proc(lane_id);
    const int worker = lane_id - rec.worker_lane(rank, 0);
    const double cutoff = last_restart[static_cast<std::size_t>(rank)];
    const bool restarted = cutoff >= 0;
    double kern_acc = 0, wait_acc = 0;
    for (const rt::TraceRecord& r : rec.events(lane_id)) {
      if (r.end <= cutoff) {
        // Dead attempt.  A task span resets the accumulators exactly as it
        // would have consumed them, so nothing leaks into the recovery run.
        if (r.kind == rt::TraceKind::kTask ||
            r.kind == rt::TraceKind::kSolveTask)
          kern_acc = wait_acc = 0;
        continue;
      }
      switch (r.kind) {
        case rt::TraceKind::kTask: {
          RuntimeTaskEvent e;
          e.task = r.id1;
          e.proc = rank;
          e.type = static_cast<TaskType>(r.subtype);
          e.cblk = r.id2;
          e.start = r.start;
          e.end = r.end;
          e.kernel_seconds = kern_acc;
          e.recv_wait_seconds = wait_acc;
          e.replayed = restarted;
          e.worker = worker;
          out.tasks.push_back(e);
          kern_acc = wait_acc = 0;
          break;
        }
        case rt::TraceKind::kKernel:
          kern_acc += r.end - r.start;
          out.kernels.add(static_cast<KernelOp>(r.subtype), r.id1, r.id2,
                          r.id3, r.end - r.start);
          break;
        case rt::TraceKind::kSend:
        case rt::TraceKind::kRecv: {
          RuntimeCommEvent e;
          e.proc = rank;
          e.is_send = (r.kind == rt::TraceKind::kSend);
          e.peer = r.peer;
          e.tag = r.tag;
          e.bytes = r.bytes;
          e.start = r.start;
          e.end = r.end;
          out.comm.push_back(e);
          if (!e.is_send) wait_acc += r.end - r.start;
          break;
        }
        case rt::TraceKind::kSteal:
          out.steals.push_back({static_cast<idx_t>(r.id1),
                                static_cast<idx_t>(r.id2), r.id3,
                                static_cast<idx_t>(rank), r.start});
          break;
        default:
          break;  // phase/restart/solve markers never land on worker lanes
      }
    }
  }

  // Shift the origin to the first task (or solve item, on a solve-only
  // trace) start so traces are comparable to the simulated timeline (which
  // starts at 0).  makespan stays a factorization-task quantity — that is
  // what compare_traces measures against the simulated schedule.
  double origin = 0;
  bool have_origin = false;
  for (const auto& t : out.tasks)
    if (!have_origin || t.start < origin) {
      origin = t.start;
      have_origin = true;
    }
  for (const auto& s : out.solve_items)
    if (!have_origin || s.start < origin) {
      origin = s.start;
      have_origin = true;
    }
  if (have_origin) {
    for (auto& t : out.tasks) {
      t.start -= origin;
      t.end -= origin;
      out.makespan = std::max(out.makespan, t.end);
    }
    for (auto& s : out.solve_items) {
      s.start -= origin;
      s.end -= origin;
    }
    for (auto& c : out.comm) {
      c.start -= origin;
      c.end -= origin;
    }
    for (auto& p : out.phases) {
      p.start -= origin;
      p.end -= origin;
    }
    for (auto& r : out.restarts) r.at -= origin;
    for (auto& s : out.steals) s.at -= origin;
  }

  const auto by_proc_start = [](const auto& a, const auto& b) {
    if (a.proc != b.proc) return a.proc < b.proc;
    if (a.start != b.start) return a.start < b.start;
    return a.end < b.end;
  };
  std::sort(out.tasks.begin(), out.tasks.end(), by_proc_start);
  std::sort(out.comm.begin(), out.comm.end(), by_proc_start);
  std::sort(out.solve_items.begin(), out.solve_items.end(), by_proc_start);
  std::sort(out.steals.begin(), out.steals.end(),
            [](const RuntimeStealEvent& a, const RuntimeStealEvent& b) {
              if (a.proc != b.proc) return a.proc < b.proc;
              return a.at < b.at;
            });
  return out;
}

void RuntimeTrace::validate() const {
  // One validation lane per execution thread: the rank thread plus each
  // pool worker of that rank.  Distinct workers overlap by design; within
  // one thread, task spans must not.
  int nworkers = 0;
  for (const RuntimeTaskEvent& e : tasks)
    nworkers = std::max(nworkers, e.worker + 1);
  std::vector<TimelineEvent> tl;
  tl.reserve(tasks.size());
  for (const RuntimeTaskEvent& e : tasks)
    tl.push_back({e.proc * (nworkers + 1) + static_cast<idx_t>(e.worker + 1),
                  e.start, e.end, '.', {}, {}, {}});
  // tasks is kept in (proc, start) order for validate_against's cursor, so
  // rank-thread and worker events of one rank interleave; regroup by lane
  // before checking the per-thread non-overlap invariant.
  sort_timeline(tl);
  validate_timeline(tl, "runtime trace");
}

void RuntimeTrace::validate_against(const Schedule& sched) const {
  validate();
  PASTIX_CHECK(nprocs == sched.nprocs,
               "runtime trace / schedule processor count mismatch");
  // tasks is sorted by (proc, start): per rank the executed task ids must
  // be exactly K_p, in K_p's order — except that a hybrid schedule's tail
  // (positions >= split[p], DESIGN.md §14) only promises the task *set*:
  // computes overlap and finish in steal order, and any order consistent
  // with the precedence graph is legal.  The prefix stays exact: it runs
  // sequentially on the rank thread before the pool starts.
  std::vector<idx_t> got, want;
  std::size_t cursor = 0;
  for (idx_t p = 0; p < sched.nprocs; ++p) {
    const auto& kp = sched.kp[static_cast<std::size_t>(p)];
    const std::size_t split =
        sched.split.empty()
            ? kp.size()
            : static_cast<std::size_t>(
                  sched.split[static_cast<std::size_t>(p)]);
    PASTIX_CHECK(split <= kp.size(), "schedule split outside its K_p");
    for (std::size_t i = 0; i < kp.size(); ++i, ++cursor) {
      PASTIX_CHECK(cursor < tasks.size() && tasks[cursor].proc == p,
                   "runtime trace is missing tasks of K_" + std::to_string(p));
      if (i < split)
        PASTIX_CHECK(tasks[cursor].task == kp[i] &&
                         tasks[cursor].worker < 0,
                     "runtime trace deviates from the static schedule order "
                     "(K_" + std::to_string(p) + ", task " +
                         std::to_string(kp[i]) + ")");
    }
    if (split < kp.size()) {
      got.assign(kp.size() - split, kNone);
      want.assign(kp.begin() + static_cast<std::ptrdiff_t>(split), kp.end());
      for (std::size_t i = 0; i < got.size(); ++i)
        got[i] = tasks[cursor - got.size() + i].task;
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      PASTIX_CHECK(got == want,
                   "runtime trace tail of K_" + std::to_string(p) +
                       " is not the scheduled task set");
    }
  }
  PASTIX_CHECK(cursor == tasks.size(),
               "runtime trace contains tasks not in the schedule");
}

void RuntimeTrace::validate_against(const Schedule& sched,
                                    const TaskGraph& tg) const {
  validate_against(sched);
  if (sched.split.empty()) return;
  // Same-rank precedence inside a tail must be realized in time: the pool
  // releases a task only once its predecessors committed, and a commit
  // happens after its compute — so consumer.start >= producer.end.
  std::vector<const RuntimeTaskEvent*> by_task(
      static_cast<std::size_t>(tg.ntask()), nullptr);
  for (const RuntimeTaskEvent& e : tasks)
    if (e.task >= 0 && e.task < tg.ntask())
      by_task[static_cast<std::size_t>(e.task)] = &e;
  std::vector<idx_t> rank_of(static_cast<std::size_t>(tg.ntask()), 0);
  std::vector<unsigned char> tail(static_cast<std::size_t>(tg.ntask()), 0);
  for (idx_t p = 0; p < sched.nprocs; ++p) {
    const auto& kp = sched.kp[static_cast<std::size_t>(p)];
    const auto split =
        static_cast<std::size_t>(sched.split[static_cast<std::size_t>(p)]);
    for (std::size_t i = 0; i < kp.size(); ++i) {
      rank_of[static_cast<std::size_t>(kp[i])] = p;
      tail[static_cast<std::size_t>(kp[i])] = i >= split ? 1 : 0;
    }
  }
  const auto check_edge = [&](idx_t src, idx_t dst) {
    if (!tail[static_cast<std::size_t>(src)] ||
        !tail[static_cast<std::size_t>(dst)] ||
        rank_of[static_cast<std::size_t>(src)] !=
            rank_of[static_cast<std::size_t>(dst)])
      return;
    const auto* a = by_task[static_cast<std::size_t>(src)];
    const auto* b = by_task[static_cast<std::size_t>(dst)];
    PASTIX_CHECK(a != nullptr && b != nullptr && b->start >= a->end,
                 "runtime trace tail order violates precedence: task " +
                     std::to_string(dst) + " computed before its same-rank "
                     "producer " + std::to_string(src) + " finished");
  };
  for (idx_t t = 0; t < tg.ntask(); ++t) {
    for (const auto& c : tg.inputs[static_cast<std::size_t>(t)])
      check_edge(c.source, t);
    for (const auto& c : tg.prec[static_cast<std::size_t>(t)])
      check_edge(c.source, t);
  }
}

void RuntimeTrace::validate_solve_against(const Schedule& solve_sched) const {
  PASTIX_CHECK(nprocs == solve_sched.nprocs,
               "runtime trace / solve schedule processor count mismatch");
  // solve_items is sorted by (proc, start): per rank the executed item ids
  // must be K_p repeated back to back, one repetition per scheduled solve,
  // and every rank with work must have seen the same number of solves.
  std::size_t cursor = 0;
  idx_t repeats = kNone;
  for (idx_t p = 0; p < solve_sched.nprocs; ++p) {
    const auto& kp = solve_sched.kp[static_cast<std::size_t>(p)];
    std::size_t pos = 0, executed = 0;
    while (cursor < solve_items.size() && solve_items[cursor].proc == p) {
      PASTIX_CHECK(!kp.empty() &&
                       solve_items[cursor].item == kp[pos],
                   "solve trace deviates from the solve schedule order "
                   "(K_" + std::to_string(p) + ", position " +
                       std::to_string(pos) + ")");
      ++cursor;
      ++executed;
      if (++pos == kp.size()) pos = 0;
    }
    PASTIX_CHECK(pos == 0,
                 "solve trace truncates K_" + std::to_string(p) +
                     " mid-repetition");
    if (kp.empty()) continue;
    const auto reps = static_cast<idx_t>(executed / kp.size());
    if (repeats == kNone)
      repeats = reps;
    else
      PASTIX_CHECK(repeats == reps,
                   "ranks executed differing numbers of scheduled solves");
  }
  PASTIX_CHECK(cursor == solve_items.size(),
               "solve trace contains items not in the solve schedule");
}

std::vector<TimelineEvent> RuntimeTrace::to_timeline() const {
  std::vector<TimelineEvent> tl;
  tl.reserve(tasks.size() + comm.size() + phases.size() + solve_items.size());
  for (const RuntimeTaskEvent& e : tasks) {
    TimelineEvent t;
    t.lane = e.proc;
    t.start = e.start;
    t.end = e.end;
    t.glyph = kTypeGlyphs[static_cast<int>(e.type)];
    t.name = kTypeNames[static_cast<int>(e.type)];
    t.cat = e.replayed ? "task-replay" : "task";
    std::ostringstream args;
    args << "\"task\":" << e.task << ",\"cblk\":" << e.cblk
         << ",\"kernel_s\":" << e.kernel_seconds
         << ",\"recv_wait_s\":" << e.recv_wait_seconds
         << ",\"replayed\":" << (e.replayed ? "true" : "false");
    t.args = args.str();
    tl.push_back(std::move(t));
  }
  for (const RuntimeRestartEvent& e : restarts) {
    TimelineEvent t;
    t.lane = e.proc;
    t.start = t.end = e.at;
    t.glyph = 'R';
    t.name = "restart";
    t.cat = "recovery";
    std::ostringstream args;
    args << "\"resumed_at\":" << e.position;
    t.args = args.str();
    tl.push_back(std::move(t));
  }
  for (const RuntimeStealEvent& e : steals) {
    TimelineEvent t;
    t.lane = e.proc;
    t.start = t.end = e.at;
    t.glyph = 'S';
    t.name = "steal";
    t.cat = "steal";
    std::ostringstream args;
    args << "\"task\":" << e.task << ",\"position\":" << e.position
         << ",\"worker\":" << e.worker;
    t.args = args.str();
    tl.push_back(std::move(t));
  }
  for (const RuntimeCommEvent& e : comm) {
    TimelineEvent t;
    t.lane = e.proc;
    t.start = e.start;
    t.end = e.end;
    t.glyph = e.is_send ? 's' : 'r';
    t.name = e.is_send ? "send" : "recv";
    t.cat = "comm";
    std::ostringstream args;
    args << "\"tag\":\"" << rt::describe_tag(e.tag) << "\",\"bytes\":"
         << e.bytes << ",\"peer\":" << e.peer;
    t.args = args.str();
    tl.push_back(std::move(t));
  }
  for (const RuntimePhaseEvent& e : phases) {
    TimelineEvent t;
    t.lane = e.proc;
    t.start = e.start;
    t.end = e.end;
    t.glyph = kPhaseGlyphs[e.phase % 3];
    t.name = kPhaseNames[e.phase % 3];
    t.cat = "solve";
    tl.push_back(std::move(t));
  }
  for (const RuntimeSolveEvent& e : solve_items) {
    TimelineEvent t;
    t.lane = e.proc;
    t.start = e.start;
    t.end = e.end;
    t.glyph = kSolveItemGlyphs[e.kind & 3];
    t.name = kSolveItemNames[e.kind & 3];
    t.cat = "solve-task";
    std::ostringstream args;
    args << "\"item\":" << e.item << ",\"cblk\":" << e.cblk
         << ",\"blok\":" << e.blok
         << ",\"recv_wait_s\":" << e.recv_wait_seconds;
    t.args = args.str();
    tl.push_back(std::move(t));
  }
  sort_timeline(tl);
  return tl;
}

void write_chrome_trace(std::ostream& os, const RuntimeTrace& trace) {
  write_chrome_trace_json(os, trace.to_timeline());
}

void write_runtime_trace_csv(std::ostream& os, const RuntimeTrace& trace) {
  os << "task,proc,type,cblk,start,end,kernel_s,recv_wait_s,replayed\n";
  os.precision(9);
  for (const RuntimeTaskEvent& e : trace.tasks)
    os << e.task << "," << e.proc << "," << kTypeNames[static_cast<int>(e.type)]
       << "," << e.cblk << "," << e.start << "," << e.end << ","
       << e.kernel_seconds << "," << e.recv_wait_seconds << ","
       << (e.replayed ? 1 : 0) << "\n";
}

TraceComparison compare_traces(const ScheduleTrace& predicted,
                               const RuntimeTrace& actual) {
  TraceComparison cmp;
  cmp.predicted_makespan = predicted.makespan;
  cmp.actual_makespan = actual.makespan;
  cmp.makespan_ratio =
      actual.makespan / std::max(predicted.makespan, 1e-300);
  cmp.tasks_predicted = static_cast<idx_t>(predicted.events.size());
  cmp.tasks_actual = static_cast<idx_t>(actual.tasks.size());

  idx_t ntask = 0;
  for (const auto& e : predicted.events) ntask = std::max(ntask, e.task + 1);
  for (const auto& e : actual.tasks) ntask = std::max(ntask, e.task + 1);
  std::vector<double> pred(static_cast<std::size_t>(ntask), -1.0);
  std::vector<double> act(static_cast<std::size_t>(ntask), -1.0);
  for (const auto& e : predicted.events)
    pred[static_cast<std::size_t>(e.task)] = e.end - e.start;
  for (const auto& e : actual.tasks)
    act[static_cast<std::size_t>(e.task)] = e.work_seconds();

  cmp.task_ratio.assign(static_cast<std::size_t>(ntask), 0.0);
  bool sets_match = cmp.tasks_predicted == cmp.tasks_actual;
  for (idx_t t = 0; t < ntask; ++t) {
    const double p = pred[static_cast<std::size_t>(t)];
    const double a = act[static_cast<std::size_t>(t)];
    if (p < 0 || a < 0) {
      sets_match &= (p < 0 && a < 0);
      continue;
    }
    ++cmp.tasks_matched;
    cmp.total_predicted_seconds += p;
    cmp.total_actual_work_seconds += a;
    const double ratio = a / std::max(p, 1e-300);
    cmp.task_ratio[static_cast<std::size_t>(t)] = ratio;
    cmp.mean_task_ratio += ratio;
    cmp.mean_abs_log10_ratio +=
        std::abs(std::log10(std::max(ratio, 1e-9)));
  }
  cmp.task_sets_match = sets_match;
  if (cmp.tasks_matched > 0) {
    cmp.mean_task_ratio /= cmp.tasks_matched;
    cmp.mean_abs_log10_ratio /= cmp.tasks_matched;
  }

  const idx_t nprocs = std::max(predicted.nprocs, actual.nprocs);
  cmp.per_rank.assign(static_cast<std::size_t>(nprocs), {});
  for (const auto& e : predicted.events)
    cmp.per_rank[static_cast<std::size_t>(e.proc)].predicted_busy +=
        e.end - e.start;
  for (const auto& e : actual.tasks) {
    auto& row = cmp.per_rank[static_cast<std::size_t>(e.proc)];
    ++row.tasks;
    row.busy += e.end - e.start;
    row.recv_wait += e.recv_wait_seconds;
    cmp.total_recv_wait_seconds += e.recv_wait_seconds;
  }
  for (auto& row : cmp.per_rank)
    row.idle = std::max(0.0, actual.makespan - row.busy);
  return cmp;
}

std::string TraceComparison::to_string() const {
  std::ostringstream os;
  os.precision(4);
  os << "makespan " << actual_makespan << " s measured vs "
     << predicted_makespan << " s predicted (ratio " << makespan_ratio
     << "); tasks matched " << tasks_matched << "/" << tasks_predicted
     << (task_sets_match ? "" : " [TASK SET MISMATCH]")
     << "; mean per-task actual/predicted " << mean_task_ratio
     << "; mean |log10 ratio| " << mean_abs_log10_ratio
     << "; total recv wait " << total_recv_wait_seconds << " s";
  return os.str();
}

void write_trace_comparison(std::ostream& os, const TraceComparison& cmp) {
  os << "- makespan: measured " << fmt_fixed(cmp.actual_makespan, 4)
     << " s vs predicted " << fmt_fixed(cmp.predicted_makespan, 4)
     << " s (ratio " << fmt_fixed(cmp.makespan_ratio, 2) << ")\n";
  os << "- tasks: " << cmp.tasks_matched << " matched of "
     << cmp.tasks_predicted << " scheduled"
     << (cmp.task_sets_match ? "" : " — TASK SET MISMATCH") << "\n";
  os << "- per-task work vs prediction: mean ratio "
     << fmt_fixed(cmp.mean_task_ratio, 2) << ", mean |log10 ratio| "
     << fmt_fixed(cmp.mean_abs_log10_ratio, 3) << "\n";
  os << "- total receive-blocked time: "
     << fmt_fixed(cmp.total_recv_wait_seconds, 4) << " s\n\n";
  os << "| rank | tasks | predicted busy (s) | busy (s) | recv wait (s) | "
        "idle (s) |\n|---|---|---|---|---|---|\n";
  for (std::size_t p = 0; p < cmp.per_rank.size(); ++p) {
    const auto& r = cmp.per_rank[p];
    os << "| " << p << " | " << r.tasks << " | "
       << fmt_fixed(r.predicted_busy, 4) << " | " << fmt_fixed(r.busy, 4)
       << " | " << fmt_fixed(r.recv_wait, 4) << " | " << fmt_fixed(r.idle, 4)
       << " |\n";
  }
  os << "\n";
}

CostModel recalibrate(const CostModel& base, const RuntimeTrace& trace) {
  return base.recalibrated(trace.kernels);
}

} // namespace pastix
