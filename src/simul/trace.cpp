#include "simul/trace.hpp"

#include <algorithm>
#include <ostream>

namespace pastix {

void ScheduleTrace::validate() const {
  for (std::size_t i = 1; i < events.size(); ++i) {
    const auto& a = events[i - 1];
    const auto& b = events[i];
    if (a.proc == b.proc)
      PASTIX_CHECK(b.start >= a.end - 1e-12,
                   "overlapping task executions on one processor");
  }
}

ScheduleTrace trace_schedule(const TaskGraph& tg, const Schedule& sched,
                             const CostModel& m) {
  // Re-run the discrete-event replay, but record per-task times.  The
  // replay logic is the same as simulate_schedule; we reuse it by
  // reconstructing events from a fresh pass (the simulator is cheap).
  const idx_t ntask = tg.ntask();
  std::vector<double> end(static_cast<std::size_t>(ntask), 0.0);
  std::vector<double> avail(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<idx_t> order(static_cast<std::size_t>(ntask));
  for (idx_t t = 0; t < ntask; ++t)
    order[static_cast<std::size_t>(sched.prio[static_cast<std::size_t>(t)])] = t;

  ScheduleTrace trace;
  trace.nprocs = sched.nprocs;
  trace.events.reserve(static_cast<std::size_t>(ntask));

  std::vector<double> src_ready(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<double> src_entries(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<idx_t> src_stamp(static_cast<std::size_t>(sched.nprocs), -1);
  idx_t stamp = 0;

  for (const idx_t t : order) {
    const idx_t p = sched.proc[static_cast<std::size_t>(t)];
    double start = avail[static_cast<std::size_t>(p)];
    double agg_entries = 0;
    ++stamp;
    std::vector<idx_t> sources;
    for (const auto& c : tg.inputs[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      if (src_stamp[static_cast<std::size_t>(q)] != stamp) {
        src_stamp[static_cast<std::size_t>(q)] = stamp;
        src_ready[static_cast<std::size_t>(q)] = 0;
        src_entries[static_cast<std::size_t>(q)] = 0;
        sources.push_back(q);
      }
      src_ready[static_cast<std::size_t>(q)] =
          std::max(src_ready[static_cast<std::size_t>(q)],
                   end[static_cast<std::size_t>(c.source)]);
      src_entries[static_cast<std::size_t>(q)] += c.entries;
    }
    for (const idx_t q : sources) {
      if (q == p) {
        start = std::max(start, src_ready[static_cast<std::size_t>(q)]);
        agg_entries += src_entries[static_cast<std::size_t>(q)];
      } else {
        start = std::max(
            start, src_ready[static_cast<std::size_t>(q)] +
                       m.comm_time_between(q, p,
                                           src_entries[static_cast<std::size_t>(q)]));
        agg_entries += 2 * src_entries[static_cast<std::size_t>(q)];
      }
    }
    for (const auto& c : tg.prec[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      const double e = end[static_cast<std::size_t>(c.source)];
      start = std::max(start, q == p || c.entries == 0
                                  ? e
                                  : e + m.comm_time_between(q, p, c.entries));
    }
    const double fin = start + tg.tasks[static_cast<std::size_t>(t)].cost +
                       m.aggregate_time(agg_entries);
    end[static_cast<std::size_t>(t)] = fin;
    avail[static_cast<std::size_t>(p)] = fin;
    trace.events.push_back({t, p, tg.tasks[static_cast<std::size_t>(t)].type,
                            tg.tasks[static_cast<std::size_t>(t)].cblk, start,
                            fin});
  }
  trace.makespan = *std::max_element(avail.begin(), avail.end());
  std::sort(trace.events.begin(), trace.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.proc != b.proc ? a.proc < b.proc : a.start < b.start;
            });
  trace.validate();
  return trace;
}

void write_trace_csv(std::ostream& os, const ScheduleTrace& trace) {
  static const char* const kNames[] = {"COMP1D", "FACTOR", "BDIV", "BMOD"};
  os << "task,proc,type,cblk,start,end\n";
  os.precision(9);
  for (const auto& e : trace.events)
    os << e.task << "," << e.proc << "," << kNames[static_cast<int>(e.type)]
       << "," << e.cblk << "," << e.start << "," << e.end << "\n";
}

void render_gantt(std::ostream& os, const ScheduleTrace& trace, int width) {
  PASTIX_CHECK(width > 0, "gantt width must be positive");
  static const char kGlyph[] = {'1', 'F', 'd', 'm'};
  const double dt = trace.makespan / width;
  std::size_t cursor = 0;
  for (idx_t p = 0; p < trace.nprocs; ++p) {
    std::string row(static_cast<std::size_t>(width), '.');
    // Per column, show the type of the task covering the slice midpoint
    // (last event wins on boundaries).
    for (; cursor < trace.events.size() && trace.events[cursor].proc == p;
         ++cursor) {
      const auto& e = trace.events[cursor];
      const int c0 = std::clamp(static_cast<int>(e.start / dt), 0, width - 1);
      const int c1 = std::clamp(static_cast<int>(e.end / dt), c0, width - 1);
      for (int c = c0; c <= c1; ++c)
        row[static_cast<std::size_t>(c)] = kGlyph[static_cast<int>(e.type)];
    }
    os << "P" << p << (p < 10 ? " " : "") << " |" << row << "|\n";
  }
  os << "     legend: 1=COMP1D F=FACTOR d=BDIV m=BMOD .=idle   (0 .. "
     << trace.makespan << " s)\n";
}

} // namespace pastix
