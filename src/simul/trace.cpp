#include "simul/trace.hpp"

#include <algorithm>
#include <ostream>

namespace pastix {

namespace {

const char* const kTypeNames[] = {"COMP1D", "FACTOR", "BDIV", "BMOD"};
const char kTypeGlyphs[] = {'1', 'F', 'd', 'm'};

} // namespace

void ScheduleTrace::validate() const {
  std::vector<TimelineEvent> tl;
  tl.reserve(events.size());
  for (const TraceEvent& e : events)
    tl.push_back({e.proc, e.start, e.end, '.', {}, {}, {}});
  validate_timeline(tl, "schedule trace");
}

std::vector<TimelineEvent> ScheduleTrace::to_timeline() const {
  std::vector<TimelineEvent> tl;
  tl.reserve(events.size());
  for (const TraceEvent& e : events) {
    TimelineEvent t;
    t.lane = e.proc;
    t.start = e.start;
    t.end = e.end;
    t.glyph = kTypeGlyphs[static_cast<int>(e.type)];
    t.name = kTypeNames[static_cast<int>(e.type)];
    t.cat = "task";
    t.args = "\"task\":" + std::to_string(e.task) +
             ",\"cblk\":" + std::to_string(e.cblk);
    tl.push_back(std::move(t));
  }
  return tl;
}

ScheduleTrace trace_schedule(const TaskGraph& tg, const Schedule& sched,
                             const CostModel& m) {
  // Re-run the discrete-event replay, but record per-task times.  The
  // replay logic is the same as simulate_schedule; we reuse it by
  // reconstructing events from a fresh pass (the simulator is cheap).
  const idx_t ntask = tg.ntask();
  std::vector<double> end(static_cast<std::size_t>(ntask), 0.0);
  std::vector<double> avail(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<idx_t> order(static_cast<std::size_t>(ntask));
  for (idx_t t = 0; t < ntask; ++t)
    order[static_cast<std::size_t>(sched.prio[static_cast<std::size_t>(t)])] = t;

  ScheduleTrace trace;
  trace.nprocs = sched.nprocs;
  trace.events.reserve(static_cast<std::size_t>(ntask));

  std::vector<double> src_ready(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<double> src_entries(static_cast<std::size_t>(sched.nprocs), 0.0);
  std::vector<idx_t> src_stamp(static_cast<std::size_t>(sched.nprocs), -1);
  idx_t stamp = 0;

  for (const idx_t t : order) {
    const idx_t p = sched.proc[static_cast<std::size_t>(t)];
    double start = avail[static_cast<std::size_t>(p)];
    double agg_entries = 0;
    ++stamp;
    std::vector<idx_t> sources;
    for (const auto& c : tg.inputs[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      if (src_stamp[static_cast<std::size_t>(q)] != stamp) {
        src_stamp[static_cast<std::size_t>(q)] = stamp;
        src_ready[static_cast<std::size_t>(q)] = 0;
        src_entries[static_cast<std::size_t>(q)] = 0;
        sources.push_back(q);
      }
      src_ready[static_cast<std::size_t>(q)] =
          std::max(src_ready[static_cast<std::size_t>(q)],
                   end[static_cast<std::size_t>(c.source)]);
      src_entries[static_cast<std::size_t>(q)] += c.entries;
    }
    for (const idx_t q : sources) {
      if (q == p) {
        start = std::max(start, src_ready[static_cast<std::size_t>(q)]);
        agg_entries += src_entries[static_cast<std::size_t>(q)];
      } else {
        start = std::max(
            start, src_ready[static_cast<std::size_t>(q)] +
                       m.comm_time_between(q, p,
                                           src_entries[static_cast<std::size_t>(q)]));
        agg_entries += 2 * src_entries[static_cast<std::size_t>(q)];
      }
    }
    for (const auto& c : tg.prec[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      const double e = end[static_cast<std::size_t>(c.source)];
      start = std::max(start, q == p || c.entries == 0
                                  ? e
                                  : e + m.comm_time_between(q, p, c.entries));
    }
    const double fin = start + tg.tasks[static_cast<std::size_t>(t)].cost +
                       m.aggregate_time(agg_entries);
    end[static_cast<std::size_t>(t)] = fin;
    avail[static_cast<std::size_t>(p)] = fin;
    trace.events.push_back({t, p, tg.tasks[static_cast<std::size_t>(t)].type,
                            tg.tasks[static_cast<std::size_t>(t)].cblk, start,
                            fin});
  }
  trace.makespan = *std::max_element(avail.begin(), avail.end());
  std::sort(trace.events.begin(), trace.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.proc != b.proc ? a.proc < b.proc : a.start < b.start;
            });
  trace.validate();
  return trace;
}

void write_trace_csv(std::ostream& os, const ScheduleTrace& trace) {
  os << "task,proc,type,cblk,start,end\n";
  os.precision(9);
  for (const auto& e : trace.events)
    os << e.task << "," << e.proc << "," << kTypeNames[static_cast<int>(e.type)]
       << "," << e.cblk << "," << e.start << "," << e.end << "\n";
}

void render_gantt(std::ostream& os, const ScheduleTrace& trace, int width) {
  render_timeline_gantt(os, trace.to_timeline(), trace.nprocs, trace.makespan,
                        width, "1=COMP1D F=FACTOR d=BDIV m=BMOD .=idle");
}

void write_chrome_trace(std::ostream& os, const ScheduleTrace& trace) {
  write_chrome_trace_json(os, trace.to_timeline());
}

} // namespace pastix
