#include "simul/timeline.hpp"

#include <algorithm>
#include <ostream>

#include "support/check.hpp"

namespace pastix {

void sort_timeline(std::vector<TimelineEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              if (a.lane != b.lane) return a.lane < b.lane;
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
}

void validate_timeline(const std::vector<TimelineEvent>& events,
                       const char* what) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TimelineEvent& e = events[i];
    PASTIX_CHECK(e.end >= e.start - 1e-12,
                 std::string(what) + ": event ends before it starts");
    if (i == 0) continue;
    const TimelineEvent& p = events[i - 1];
    PASTIX_CHECK(p.lane <= e.lane,
                 std::string(what) + ": events not sorted by lane");
    if (p.lane != e.lane) continue;
    PASTIX_CHECK(p.start <= e.start,
                 std::string(what) + ": events not sorted by start time");
    PASTIX_CHECK(e.start >= p.end - 1e-12,
                 std::string(what) + ": overlapping events on one lane");
  }
}

void render_timeline_gantt(std::ostream& os,
                           const std::vector<TimelineEvent>& events,
                           idx_t nlanes, double makespan, int width,
                           const std::string& legend) {
  PASTIX_CHECK(width > 0, "gantt width must be positive");
  const double dt = makespan > 0 ? makespan / width : 0;
  std::size_t cursor = 0;
  for (idx_t lane = 0; lane < nlanes; ++lane) {
    std::string row(static_cast<std::size_t>(width), '.');
    // Per column, show the glyph of the span covering the slice (last event
    // wins on boundaries).  With a degenerate makespan every row is idle.
    for (; cursor < events.size() && events[cursor].lane == lane; ++cursor) {
      if (dt <= 0) continue;
      const TimelineEvent& e = events[cursor];
      const int c0 = std::clamp(static_cast<int>(e.start / dt), 0, width - 1);
      const int c1 = std::clamp(static_cast<int>(e.end / dt), c0, width - 1);
      for (int c = c0; c <= c1; ++c)
        row[static_cast<std::size_t>(c)] = e.glyph;
    }
    os << "P" << lane << (lane < 10 ? " " : "") << " |" << row << "|\n";
  }
  os << "     legend: " << legend << "   (0 .. " << makespan << " s)\n";
}

namespace {

void json_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

} // namespace

void write_chrome_trace_json(std::ostream& os,
                             const std::vector<TimelineEvent>& events) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os.precision(9);
  bool first = true;
  for (const TimelineEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    json_escaped(os, e.name.empty() ? std::string(1, e.glyph) : e.name);
    os << "\",\"cat\":\"";
    json_escaped(os, e.cat.empty() ? "event" : e.cat);
    os << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.lane
       << ",\"ts\":" << e.start * 1e6 << ",\"dur\":" << (e.end - e.start) * 1e6;
    if (!e.args.empty()) os << ",\"args\":{" << e.args << "}";
    os << "}";
  }
  os << "\n]}\n";
}

} // namespace pastix
