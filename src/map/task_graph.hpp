#pragma once
//
// The task graph of the parallel block factorization (Fig. 1 of the paper).
//
// Task types:
//   COMP1D(k)      — update and compute the whole column block k (1D cblks)
//   FACTOR(k)      — factor the diagonal block of k (2D cblks)
//   BDIV(j,k)      — panel-solve off-diagonal blok j of cblk k (2D cblks)
//   BMOD(i,j,k)    — C = L_ik * (D L_jk)^t contribution (2D cblks); runs on
//                    the processor owning L_ik (bundled with BDIV(i,k))
//
// Contribution edges carry the entry count of the dense update block; the
// scheduler and the solver both group contributions by (source processor,
// target task) — this grouping *is* the aggregated update block (AUB) of
// the fan-in scheme with total local aggregation.
//
#include <vector>

#include "map/candidates.hpp"

namespace pastix {

enum class TaskType : unsigned char { kComp1d, kFactor, kBdiv, kBmod };

struct Task {
  TaskType type;
  idx_t cblk = kNone;   ///< k
  idx_t blok = kNone;   ///< BDIV: blok (j,k). BMOD: blok of row range i.
  idx_t blok2 = kNone;  ///< BMOD: blok (j,k) whose solved panel F_j is used.
  double cost = 0;      ///< model seconds
  double flops = 0;
};

/// A data contribution produced by `source` for the target task: `entries`
/// dense entries that are either applied locally or aggregated into an AUB.
struct Contribution {
  idx_t source = kNone;  ///< producing task
  double entries = 0;
};

struct TaskGraph {
  std::vector<Task> tasks;
  /// Per task: incoming data contributions (fan-in updates).
  std::vector<std::vector<Contribution>> inputs;
  /// Per task: precedence-only predecessors (FACTOR -> BDIV carries L_kk D_k,
  /// BDIV -> BMOD carries the solved panel F_j; entries counted for comms).
  std::vector<std::vector<Contribution>> prec;
  /// Per cblk: COMP1D or FACTOR task id.
  std::vector<idx_t> cblk_task;
  /// Per blok: BDIV task id for off-diagonal bloks of 2D cblks, the cblk's
  /// main task id otherwise (used to find the owner of a factor block).
  std::vector<idx_t> blok_task;
  /// Per task: depth of its cblk in the block elimination tree.
  std::vector<idx_t> depth;

  [[nodiscard]] idx_t ntask() const { return static_cast<idx_t>(tasks.size()); }
  [[nodiscard]] double total_cost() const {
    double c = 0;
    for (const auto& t : tasks) c += t.cost;
    return c;
  }
  [[nodiscard]] double total_flops() const {
    double f = 0;
    for (const auto& t : tasks) f += t.flops;
    return f;
  }
};

/// Build the task graph for a symbol matrix under a candidate mapping.
TaskGraph build_task_graph(const SymbolMatrix& s, const CandidateMapping& cm,
                           const CostModel& m);

} // namespace pastix
