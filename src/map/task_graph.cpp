#include "map/task_graph.hpp"

#include <algorithm>

namespace pastix {

namespace {

/// Emit the contributions of the update C = L_bi * (D L_bj)^t produced by
/// `source` inside cblk k: the rows of blok bi land in the columns of blok
/// bj's facing cblk, split across that cblk's bloks.
void emit_contributions(const SymbolMatrix& s, const TaskGraph& tg,
                        std::vector<std::vector<Contribution>>& inputs,
                        idx_t source, idx_t bi, idx_t bj) {
  const auto& src_i = s.bloks[static_cast<std::size_t>(bi)];
  const auto& src_j = s.bloks[static_cast<std::size_t>(bj)];
  const idx_t target_cblk = src_j.fcblknm;
  const auto targets =
      s.find_facing_bloks(target_cblk, src_i.frownum, src_i.lrownum);
  for (const idx_t tb : targets) {
    const auto& t = s.bloks[static_cast<std::size_t>(tb)];
    const idx_t rows = std::min(t.lrownum, src_i.lrownum) -
                       std::max(t.frownum, src_i.frownum) + 1;
    const idx_t target_task = tg.blok_task[static_cast<std::size_t>(tb)];
    inputs[static_cast<std::size_t>(target_task)].push_back(
        {source, static_cast<double>(rows) * src_j.nrows()});
  }
}

} // namespace

TaskGraph build_task_graph(const SymbolMatrix& s, const CandidateMapping& cm,
                           const CostModel& m) {
  TaskGraph tg;
  tg.cblk_task.assign(static_cast<std::size_t>(s.ncblk), kNone);
  tg.blok_task.assign(static_cast<std::size_t>(s.nblok()), kNone);

  // --- Pass 1: create tasks. ------------------------------------------------
  for (idx_t k = 0; k < s.ncblk; ++k) {
    const auto& cand = cm.cblk[static_cast<std::size_t>(k)];
    const double w = s.cblks[static_cast<std::size_t>(k)].width();
    const idx_t first = s.cblks[static_cast<std::size_t>(k)].bloknum;
    const idx_t last = s.cblks[static_cast<std::size_t>(k) + 1].bloknum;

    if (cand.dist == DistType::k1D) {
      tg.cblk_task[static_cast<std::size_t>(k)] = tg.ntask();
      for (idx_t b = first; b < last; ++b)
        tg.blok_task[static_cast<std::size_t>(b)] = tg.ntask();
      tg.tasks.push_back({TaskType::kComp1d, k, kNone, kNone,
                          cblk_comp1d_cost(s, k, m), cblk_comp1d_flops(s, k)});
    } else {
      tg.cblk_task[static_cast<std::size_t>(k)] = tg.ntask();
      tg.blok_task[static_cast<std::size_t>(first)] = tg.ntask();
      tg.tasks.push_back({TaskType::kFactor, k, first, kNone,
                          m.factor_ldlt_time(w), flops_factor_ldlt(w)});
      for (idx_t b = first + 1; b < last; ++b) {
        const double rows = s.bloks[static_cast<std::size_t>(b)].nrows();
        tg.blok_task[static_cast<std::size_t>(b)] = tg.ntask();
        tg.tasks.push_back({TaskType::kBdiv, k, b, kNone, m.trsm_time(rows, w),
                            flops_trsm(rows, w)});
      }
      for (idx_t bj = first + 1; bj < last; ++bj)
        for (idx_t bi = bj; bi < last; ++bi) {
          const double mi = s.bloks[static_cast<std::size_t>(bi)].nrows();
          const double nj = s.bloks[static_cast<std::size_t>(bj)].nrows();
          tg.tasks.push_back({TaskType::kBmod, k, bi, bj,
                              m.gemm_time(mi, nj, w), flops_gemm(mi, nj, w)});
        }
    }
  }

  tg.inputs.assign(static_cast<std::size_t>(tg.ntask()), {});
  tg.prec.assign(static_cast<std::size_t>(tg.ntask()), {});
  tg.depth.assign(static_cast<std::size_t>(tg.ntask()), 0);
  for (idx_t t = 0; t < tg.ntask(); ++t)
    tg.depth[static_cast<std::size_t>(t)] =
        cm.cblk[static_cast<std::size_t>(tg.tasks[static_cast<std::size_t>(t)]
                                             .cblk)]
            .depth;

  // --- Pass 2: contribution and precedence edges. ---------------------------
  idx_t tid = 0;
  for (idx_t k = 0; k < s.ncblk; ++k) {
    const auto& cand = cm.cblk[static_cast<std::size_t>(k)];
    const double w = s.cblks[static_cast<std::size_t>(k)].width();
    const idx_t first = s.cblks[static_cast<std::size_t>(k)].bloknum;
    const idx_t last = s.cblks[static_cast<std::size_t>(k) + 1].bloknum;

    if (cand.dist == DistType::k1D) {
      const idx_t comp = tid++;
      for (idx_t bj = first + 1; bj < last; ++bj)
        for (idx_t bi = bj; bi < last; ++bi)
          emit_contributions(s, tg, tg.inputs, comp, bi, bj);
    } else {
      const idx_t factor = tid++;
      // BDIV(j,k) needs L_kk D_k from FACTOR(k): w*w entries.
      for (idx_t b = first + 1; b < last; ++b) {
        const idx_t bdiv = tid++;
        tg.prec[static_cast<std::size_t>(bdiv)].push_back({factor, w * w});
      }
      for (idx_t bj = first + 1; bj < last; ++bj)
        for (idx_t bi = bj; bi < last; ++bi) {
          const idx_t bmod = tid++;
          const idx_t bdiv_i =
              tg.blok_task[static_cast<std::size_t>(bi)];
          const idx_t bdiv_j =
              tg.blok_task[static_cast<std::size_t>(bj)];
          // F_j^t is sent to the owner of L_ik; L_ik itself is local since
          // BMOD is bundled with BDIV(i,k) (entries 0 = no transfer).
          tg.prec[static_cast<std::size_t>(bmod)].push_back({bdiv_i, 0.0});
          tg.prec[static_cast<std::size_t>(bmod)].push_back(
              {bdiv_j,
               w * s.bloks[static_cast<std::size_t>(bj)].nrows()});
          emit_contributions(s, tg, tg.inputs, bmod, bi, bj);
        }
    }
  }
  PASTIX_ASSERT(tid == tg.ntask());
  return tg;
}

} // namespace pastix
