#pragma once
//
// Scheduling phase: greedy mapping of each task onto one of its candidate
// processors, driven by a simulation of the parallel factorization (the
// paper's Section 2):
//
//  - one timer per processor and one ready-task heap per processor;
//  - leaves start (single candidate); a task enters the heaps of its
//    candidates once all of its contributions have been computed;
//  - the next task to map is the first task of each ready heap, choosing
//    the one coming from the *lowest* node of the elimination tree;
//  - the task is mapped onto the candidate that completes it soonest,
//    accounting for the processor timer, the times at which contributions
//    were computed, the fan-in aggregation overcost and the communication
//    cost model.
//
// The result is, per processor, the fully ordered vector K_p of local task
// numbers that *drives the numerical solver* (and the replay simulator).
//
#include "map/task_graph.hpp"
#include "support/rng.hpp"

namespace pastix {

enum class MapStrategy : unsigned char {
  kGreedyEarliest,  ///< the paper's earliest-completion greedy mapping
  kRoundRobin,      ///< ablation: cycle through the candidate set
  kRandom,          ///< ablation: uniform random candidate
};

struct SchedulerOptions {
  MapStrategy strategy = MapStrategy::kGreedyEarliest;
  std::uint64_t seed = 0x5ced;  ///< used by kRandom
};

struct Schedule {
  idx_t nprocs = 1;
  std::vector<idx_t> proc;   ///< per task
  std::vector<idx_t> prio;   ///< per task: global mapping rank
  std::vector<double> start; ///< per task: simulated start time (s)
  std::vector<double> end;   ///< per task: simulated completion time (s)
  std::vector<std::vector<idx_t>> kp;  ///< per proc: tasks in priority order
  /// Hybrid static/dynamic execution (DESIGN.md §14): per proc, the length
  /// of the statically ordered *prefix* of K_p.  Tasks at positions
  /// >= split[p] form the dynamic tail, executed by an intra-rank work-
  /// stealing pool.  Empty means fully static (every plan before format v4,
  /// and every plan with hybrid execution disabled).
  std::vector<idx_t> split;
  double makespan = 0;

  /// True when some rank has a non-empty dynamic tail.
  [[nodiscard]] bool hybrid() const {
    for (std::size_t p = 0; p < split.size(); ++p)
      if (split[p] < static_cast<idx_t>(kp[p].size())) return true;
    return false;
  }

  /// Owner of a factor blok = processor of the task that writes it.
  [[nodiscard]] idx_t blok_owner(const TaskGraph& tg, idx_t blok) const {
    return proc[static_cast<std::size_t>(
        tg.blok_task[static_cast<std::size_t>(blok)])];
  }

  /// Validate internal consistency for a graph of `ntask` tasks: array
  /// sizes, processor ids in range, and the per-processor orders K_p forming
  /// a partition of the task set.  Used after deserializing a plan, where
  /// the arrays come from outside the scheduler.
  void validate(idx_t ntask) const;
};

Schedule static_schedule(const TaskGraph& tg, const CandidateMapping& cm,
                         const CostModel& m, idx_t nprocs,
                         const SchedulerOptions& opt = {});

/// Phase-generic schedule finalizer.  Some phases have nothing to map: the
/// solve reads every factor block where the factorization placed it, so the
/// processor assignment and the execution order are both dictated up front.
/// This realizes a Schedule from an explicit per-task processor assignment
/// plus a topological placement order — prio is the order rank, K_p is the
/// order restricted to each processor, and start/end serialize each
/// processor's tasks by cost (message latencies are the discrete-event
/// simulator's job).  The factorization keeps the greedy mapper above; any
/// fixed-placement phase shares this finalizer.
Schedule fixed_order_schedule(const TaskGraph& tg, std::vector<idx_t> proc,
                              const std::vector<idx_t>& order, idx_t nprocs);

/// Pick the static-prefix / dynamic-tail split of every K_p (DESIGN.md §14).
/// Per rank, the tail is the cost-model suffix worth ~`tail_fraction[p]` of
/// that rank's total work — the near-root region where 2D tasks are large
/// and static load prediction is least reliable.  A boundary fixpoint then
/// grows prefixes until no message consumed by a *prefix* task is produced
/// by a *tail* task on another rank (the condition that makes the prefix's
/// blocking receives starvation-free, see verify's kTailStarvedReceive);
/// within one rank the suffix property already guarantees it.  Writes
/// sched.split.  A fraction of 0 yields empty tails (fully static).
void compute_split(const TaskGraph& tg, Schedule& sched,
                   const std::vector<double>& tail_fraction);

/// Convenience overload: one fraction for every rank.
void compute_split(const TaskGraph& tg, Schedule& sched, double tail_fraction);

/// Recalibrate the split from a measured run (PR 3 tracing): ranks that
/// spent a larger share of the makespan idle or blocked in recv get a
/// proportionally larger dynamic tail (up to 3x the base fraction, capped
/// at 90% of the rank's work), perfectly busy ranks keep the base.  Inputs
/// are per-rank seconds, e.g. TraceComparison::per_rank busy and
/// idle + recv_wait.  Re-runs compute_split with the adjusted fractions.
void recalibrate_split(const TaskGraph& tg, Schedule& sched,
                       const std::vector<double>& busy_seconds,
                       const std::vector<double>& wait_seconds,
                       double base_fraction);

} // namespace pastix
