#pragma once
//
// Scheduling phase: greedy mapping of each task onto one of its candidate
// processors, driven by a simulation of the parallel factorization (the
// paper's Section 2):
//
//  - one timer per processor and one ready-task heap per processor;
//  - leaves start (single candidate); a task enters the heaps of its
//    candidates once all of its contributions have been computed;
//  - the next task to map is the first task of each ready heap, choosing
//    the one coming from the *lowest* node of the elimination tree;
//  - the task is mapped onto the candidate that completes it soonest,
//    accounting for the processor timer, the times at which contributions
//    were computed, the fan-in aggregation overcost and the communication
//    cost model.
//
// The result is, per processor, the fully ordered vector K_p of local task
// numbers that *drives the numerical solver* (and the replay simulator).
//
#include "map/task_graph.hpp"
#include "support/rng.hpp"

namespace pastix {

enum class MapStrategy : unsigned char {
  kGreedyEarliest,  ///< the paper's earliest-completion greedy mapping
  kRoundRobin,      ///< ablation: cycle through the candidate set
  kRandom,          ///< ablation: uniform random candidate
};

struct SchedulerOptions {
  MapStrategy strategy = MapStrategy::kGreedyEarliest;
  std::uint64_t seed = 0x5ced;  ///< used by kRandom
};

struct Schedule {
  idx_t nprocs = 1;
  std::vector<idx_t> proc;   ///< per task
  std::vector<idx_t> prio;   ///< per task: global mapping rank
  std::vector<double> start; ///< per task: simulated start time (s)
  std::vector<double> end;   ///< per task: simulated completion time (s)
  std::vector<std::vector<idx_t>> kp;  ///< per proc: tasks in priority order
  double makespan = 0;

  /// Owner of a factor blok = processor of the task that writes it.
  [[nodiscard]] idx_t blok_owner(const TaskGraph& tg, idx_t blok) const {
    return proc[static_cast<std::size_t>(
        tg.blok_task[static_cast<std::size_t>(blok)])];
  }

  /// Validate internal consistency for a graph of `ntask` tasks: array
  /// sizes, processor ids in range, and the per-processor orders K_p forming
  /// a partition of the task set.  Used after deserializing a plan, where
  /// the arrays come from outside the scheduler.
  void validate(idx_t ntask) const;
};

Schedule static_schedule(const TaskGraph& tg, const CandidateMapping& cm,
                         const CostModel& m, idx_t nprocs,
                         const SchedulerOptions& opt = {});

/// Phase-generic schedule finalizer.  Some phases have nothing to map: the
/// solve reads every factor block where the factorization placed it, so the
/// processor assignment and the execution order are both dictated up front.
/// This realizes a Schedule from an explicit per-task processor assignment
/// plus a topological placement order — prio is the order rank, K_p is the
/// order restricted to each processor, and start/end serialize each
/// processor's tasks by cost (message latencies are the discrete-event
/// simulator's job).  The factorization keeps the greedy mapper above; any
/// fixed-placement phase shares this finalizer.
Schedule fixed_order_schedule(const TaskGraph& tg, std::vector<idx_t> proc,
                              const std::vector<idx_t>& order, idx_t nprocs);

} // namespace pastix
