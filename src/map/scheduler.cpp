#include "map/scheduler.hpp"

#include <algorithm>
#include <queue>

namespace pastix {

void Schedule::validate(idx_t ntask) const {
  PASTIX_CHECK(nprocs >= 1, "schedule has no processors");
  const auto nt = static_cast<std::size_t>(ntask);
  PASTIX_CHECK(proc.size() == nt && prio.size() == nt && start.size() == nt &&
                   end.size() == nt,
               "schedule arrays do not match the task count");
  PASTIX_CHECK(static_cast<idx_t>(kp.size()) == nprocs,
               "schedule K_p count does not match nprocs");
  std::vector<char> seen(nt, 0);
  for (idx_t p = 0; p < nprocs; ++p) {
    for (const idx_t t : kp[static_cast<std::size_t>(p)]) {
      PASTIX_CHECK(t >= 0 && t < ntask, "K_p task id out of range");
      PASTIX_CHECK(!seen[static_cast<std::size_t>(t)],
                   "task appears twice in the K_p orders");
      seen[static_cast<std::size_t>(t)] = 1;
      PASTIX_CHECK(proc[static_cast<std::size_t>(t)] == p,
                   "task's processor does not match its K_p");
    }
  }
  for (idx_t t = 0; t < ntask; ++t)
    PASTIX_CHECK(seen[static_cast<std::size_t>(t)],
                 "task missing from the K_p orders");
  if (!split.empty()) {
    PASTIX_CHECK(static_cast<idx_t>(split.size()) == nprocs,
                 "schedule split count does not match nprocs");
    for (idx_t p = 0; p < nprocs; ++p)
      PASTIX_CHECK(split[static_cast<std::size_t>(p)] >= 0 &&
                       split[static_cast<std::size_t>(p)] <=
                           static_cast<idx_t>(
                               kp[static_cast<std::size_t>(p)].size()),
                   "schedule split point outside its K_p");
  }
}

Schedule fixed_order_schedule(const TaskGraph& tg, std::vector<idx_t> proc,
                              const std::vector<idx_t>& order, idx_t nprocs) {
  PASTIX_CHECK(nprocs >= 1, "need at least one processor");
  const idx_t ntask = tg.ntask();
  PASTIX_CHECK(static_cast<idx_t>(proc.size()) == ntask,
               "fixed-order schedule: processor assignment size mismatch");
  PASTIX_CHECK(static_cast<idx_t>(order.size()) == ntask,
               "fixed-order schedule: placement order size mismatch");

  Schedule sched;
  sched.nprocs = nprocs;
  sched.proc = std::move(proc);
  sched.prio.assign(static_cast<std::size_t>(ntask), kNone);
  sched.start.assign(static_cast<std::size_t>(ntask), 0.0);
  sched.end.assign(static_cast<std::size_t>(ntask), 0.0);
  sched.kp.assign(static_cast<std::size_t>(nprocs), {});

  std::vector<double> timer(static_cast<std::size_t>(nprocs), 0.0);
  idx_t prio = 0;
  for (const idx_t t : order) {
    PASTIX_CHECK(t >= 0 && t < ntask,
                 "fixed-order schedule: task id out of range");
    PASTIX_CHECK(sched.prio[static_cast<std::size_t>(t)] == kNone,
                 "fixed-order schedule: task placed twice");
    const idx_t p = sched.proc[static_cast<std::size_t>(t)];
    PASTIX_CHECK(p >= 0 && p < nprocs,
                 "fixed-order schedule: processor out of range");
    sched.prio[static_cast<std::size_t>(t)] = prio++;
    sched.kp[static_cast<std::size_t>(p)].push_back(t);
    double& tm = timer[static_cast<std::size_t>(p)];
    sched.start[static_cast<std::size_t>(t)] = tm;
    tm += tg.tasks[static_cast<std::size_t>(t)].cost;
    sched.end[static_cast<std::size_t>(t)] = tm;
  }
  sched.makespan = *std::max_element(timer.begin(), timer.end());
  return sched;
}

namespace {

struct HeapEntry {
  idx_t depth;  ///< block elimination tree depth (deeper = lower node)
  idx_t task;
  /// "Lowest node first": deeper wins; ties broken by task id for
  /// reproducibility.
  bool operator<(const HeapEntry& o) const {
    return depth != o.depth ? depth < o.depth : task > o.task;
  }
};

} // namespace

Schedule static_schedule(const TaskGraph& tg, const CandidateMapping& cm,
                         const CostModel& m, idx_t nprocs,
                         const SchedulerOptions& opt) {
  PASTIX_CHECK(nprocs >= 1, "need at least one processor");
  const idx_t ntask = tg.ntask();

  Schedule sched;
  sched.nprocs = nprocs;
  sched.proc.assign(static_cast<std::size_t>(ntask), kNone);
  sched.prio.assign(static_cast<std::size_t>(ntask), kNone);
  sched.start.assign(static_cast<std::size_t>(ntask), 0.0);
  sched.end.assign(static_cast<std::size_t>(ntask), 0.0);
  sched.kp.assign(static_cast<std::size_t>(nprocs), {});

  // Dependency counts and reverse edges.
  std::vector<idx_t> remaining(static_cast<std::size_t>(ntask), 0);
  std::vector<std::vector<idx_t>> dependents(static_cast<std::size_t>(ntask));
  for (idx_t t = 0; t < ntask; ++t) {
    for (const auto& c : tg.inputs[static_cast<std::size_t>(t)]) {
      remaining[static_cast<std::size_t>(t)]++;
      dependents[static_cast<std::size_t>(c.source)].push_back(t);
    }
    for (const auto& c : tg.prec[static_cast<std::size_t>(t)]) {
      remaining[static_cast<std::size_t>(t)]++;
      dependents[static_cast<std::size_t>(c.source)].push_back(t);
    }
  }

  // Candidate processors of a task.  BMOD is bundled with BDIV of its row
  // blok: its only candidate is that task's (already mapped) processor.
  auto candidates = [&](idx_t t, idx_t* fproc, idx_t* lproc) {
    const Task& task = tg.tasks[static_cast<std::size_t>(t)];
    if (task.type == TaskType::kBmod) {
      const idx_t bdiv_i =
          tg.blok_task[static_cast<std::size_t>(task.blok)];
      const idx_t p = sched.proc[static_cast<std::size_t>(bdiv_i)];
      PASTIX_ASSERT(p != kNone);
      *fproc = *lproc = p;
    } else {
      const auto& cand = cm.cblk[static_cast<std::size_t>(task.cblk)];
      *fproc = cand.fproc;
      *lproc = cand.lproc;
    }
  };

  std::vector<std::priority_queue<HeapEntry>> heaps(
      static_cast<std::size_t>(nprocs));
  auto enqueue = [&](idx_t t) {
    idx_t f = 0, l = 0;
    candidates(t, &f, &l);
    for (idx_t p = f; p <= l; ++p)
      heaps[static_cast<std::size_t>(p)].push(
          {tg.depth[static_cast<std::size_t>(t)], t});
  };
  for (idx_t t = 0; t < ntask; ++t)
    if (remaining[static_cast<std::size_t>(t)] == 0) enqueue(t);

  std::vector<double> timer(static_cast<std::size_t>(nprocs), 0.0);
  // Scratch for grouping contributions by source processor.
  std::vector<double> src_ready(static_cast<std::size_t>(nprocs), 0.0);
  std::vector<double> src_entries(static_cast<std::size_t>(nprocs), 0.0);
  std::vector<idx_t> src_stamp(static_cast<std::size_t>(nprocs), -1);
  idx_t stamp = 0;

  Rng rng(opt.seed);
  idx_t mapped_count = 0;

  // Completion time of task t if mapped on processor p.
  auto completion = [&](idx_t t, idx_t p) {
    ++stamp;
    double arrive = timer[static_cast<std::size_t>(p)];
    double aggregate_entries = 0;
    std::vector<idx_t> sources;
    for (const auto& c : tg.inputs[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      PASTIX_ASSERT(q != kNone);
      if (src_stamp[static_cast<std::size_t>(q)] != stamp) {
        src_stamp[static_cast<std::size_t>(q)] = stamp;
        src_ready[static_cast<std::size_t>(q)] = 0;
        src_entries[static_cast<std::size_t>(q)] = 0;
        sources.push_back(q);
      }
      src_ready[static_cast<std::size_t>(q)] =
          std::max(src_ready[static_cast<std::size_t>(q)],
                   sched.end[static_cast<std::size_t>(c.source)]);
      src_entries[static_cast<std::size_t>(q)] += c.entries;
    }
    for (const idx_t q : sources) {
      // Local contributions are applied directly (one scatter-add); remote
      // ones pay one extra add (sender-side AUB aggregation, the fan-in
      // overcost) plus the message transfer.
      if (q == p) {
        arrive = std::max(arrive, src_ready[static_cast<std::size_t>(q)]);
        aggregate_entries += src_entries[static_cast<std::size_t>(q)];
      } else {
        arrive = std::max(
            arrive, src_ready[static_cast<std::size_t>(q)] +
                        m.comm_time_between(q, p, src_entries[static_cast<std::size_t>(q)]));
        aggregate_entries += 2 * src_entries[static_cast<std::size_t>(q)];
      }
    }
    for (const auto& c : tg.prec[static_cast<std::size_t>(t)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      const double e = sched.end[static_cast<std::size_t>(c.source)];
      arrive = std::max(arrive, q == p || c.entries == 0
                                    ? e
                                    : e + m.comm_time_between(q, p, c.entries));
    }
    return arrive + m.aggregate_time(aggregate_entries) +
           tg.tasks[static_cast<std::size_t>(t)].cost;
  };

  while (mapped_count < ntask) {
    // Pick the deepest ready task over all heap tops.
    idx_t best_task = kNone, best_depth = -1;
    for (idx_t p = 0; p < nprocs; ++p) {
      auto& h = heaps[static_cast<std::size_t>(p)];
      while (!h.empty() &&
             sched.proc[static_cast<std::size_t>(h.top().task)] != kNone)
        h.pop();  // drop tasks mapped through another heap
      if (h.empty()) continue;
      const HeapEntry e = h.top();
      if (e.depth > best_depth ||
          (e.depth == best_depth && e.task < best_task)) {
        best_depth = e.depth;
        best_task = e.task;
      }
    }
    PASTIX_CHECK(best_task != kNone, "scheduler stalled: cyclic task graph?");
    const idx_t t = best_task;

    idx_t f = 0, l = 0;
    candidates(t, &f, &l);
    idx_t chosen = f;
    if (f != l) {
      switch (opt.strategy) {
        case MapStrategy::kGreedyEarliest: {
          double best = completion(t, f);
          for (idx_t p = f + 1; p <= l; ++p) {
            const double c = completion(t, p);
            if (c < best) {
              best = c;
              chosen = p;
            }
          }
          break;
        }
        case MapStrategy::kRoundRobin:
          chosen = f + (mapped_count % (l - f + 1));
          break;
        case MapStrategy::kRandom:
          chosen = f + static_cast<idx_t>(
                           rng.next_below(static_cast<std::uint64_t>(l - f + 1)));
          break;
      }
    }

    const double end = completion(t, chosen);
    sched.proc[static_cast<std::size_t>(t)] = chosen;
    sched.start[static_cast<std::size_t>(t)] =
        end - tg.tasks[static_cast<std::size_t>(t)].cost;
    sched.end[static_cast<std::size_t>(t)] = end;
    sched.prio[static_cast<std::size_t>(t)] = mapped_count;
    timer[static_cast<std::size_t>(chosen)] = end;
    sched.kp[static_cast<std::size_t>(chosen)].push_back(t);
    ++mapped_count;

    for (const idx_t d : dependents[static_cast<std::size_t>(t)])
      if (--remaining[static_cast<std::size_t>(d)] == 0) enqueue(d);
  }

  sched.makespan = *std::max_element(timer.begin(), timer.end());
  return sched;
}

namespace {

std::size_t uz(idx_t v) { return static_cast<std::size_t>(v); }

} // namespace

void compute_split(const TaskGraph& tg, Schedule& sched,
                   const std::vector<double>& tail_fraction) {
  PASTIX_CHECK(static_cast<idx_t>(tail_fraction.size()) == sched.nprocs,
               "compute_split: one tail fraction per rank required");

  // Per-rank cost-budget suffix: walk K_p backwards accumulating model cost
  // until the tail holds ~fraction of the rank's total predicted work.
  sched.split.assign(uz(sched.nprocs), 0);
  for (idx_t p = 0; p < sched.nprocs; ++p) {
    const auto& kp = sched.kp[uz(p)];
    double total = 0;
    for (const idx_t t : kp) total += tg.tasks[uz(t)].cost;
    const double budget =
        std::clamp(tail_fraction[uz(p)], 0.0, 1.0) * total;
    double acc = 0;
    std::size_t s = kp.size();
    while (s > 0 && acc + tg.tasks[uz(kp[s - 1])].cost <= budget) {
      acc += tg.tasks[uz(kp[s - 1])].cost;
      --s;
    }
    sched.split[uz(p)] = static_cast<idx_t>(s);
  }

  // Boundary fixpoint: a message consumed by a prefix task must come from a
  // prefix task on the producing rank, or the consumer's blocking receive
  // could wait on a tail that its own rank's stalled prefix gates (a cross-
  // rank prefix/tail cycle).  Grow producer prefixes until stable; splits
  // only grow, so this terminates.
  const idx_t ntask = tg.ntask();
  std::vector<idx_t> pos(uz(ntask), 0);
  for (idx_t p = 0; p < sched.nprocs; ++p)
    for (std::size_t i = 0; i < sched.kp[uz(p)].size(); ++i)
      pos[uz(sched.kp[uz(p)][i])] = static_cast<idx_t>(i);

  const auto grow_for = [&](idx_t src, idx_t dst) {
    const idx_t ps = sched.proc[uz(src)], pd = sched.proc[uz(dst)];
    if (ps == pd) return false;  // suffix property orders same-rank pairs
    if (pos[uz(dst)] >= sched.split[uz(pd)]) return false;  // tail consumer
    if (pos[uz(src)] < sched.split[uz(ps)]) return false;   // already prefix
    sched.split[uz(ps)] = pos[uz(src)] + 1;
    return true;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (idx_t t = 0; t < ntask; ++t) {
      for (const auto& c : tg.inputs[uz(t)]) changed |= grow_for(c.source, t);
      for (const auto& c : tg.prec[uz(t)]) changed |= grow_for(c.source, t);
    }
  }
}

void compute_split(const TaskGraph& tg, Schedule& sched,
                   double tail_fraction) {
  compute_split(tg, sched,
                std::vector<double>(uz(sched.nprocs), tail_fraction));
}

void recalibrate_split(const TaskGraph& tg, Schedule& sched,
                       const std::vector<double>& busy_seconds,
                       const std::vector<double>& wait_seconds,
                       double base_fraction) {
  PASTIX_CHECK(static_cast<idx_t>(busy_seconds.size()) == sched.nprocs &&
                   static_cast<idx_t>(wait_seconds.size()) == sched.nprocs,
               "recalibrate_split: one measurement per rank required");
  std::vector<double> fractions(uz(sched.nprocs), base_fraction);
  for (idx_t p = 0; p < sched.nprocs; ++p) {
    const double busy = busy_seconds[uz(p)];
    const double wait = std::max(wait_seconds[uz(p)], 0.0);
    const double span = busy + wait;
    // Share of the rank's wall time spent *not* computing: the measured
    // symptom of a mispredicted static order.  0 keeps the base fraction,
    // 100% waiting scales it 3x (still capped below a fully dynamic rank).
    const double starved = span > 0 ? wait / span : 0.0;
    fractions[uz(p)] =
        std::min(base_fraction * (1.0 + 2.0 * starved), 0.9);
  }
  compute_split(tg, sched, fractions);
}

} // namespace pastix
