#pragma once
//
// Partitioning phase: recursive top-down *proportional mapping* of the block
// elimination tree (Pothen-Sun), producing per-cblk candidate processor
// sets, plus the 1D/2D distribution decision.
//
// Following the paper: the root supernode is assigned the whole machine;
// each subtree recursively receives a sub-interval of its parent's
// processors proportional to its workload.  Intervals are *fractional*, so
// one processor may be candidate for two sibling subtrees ("we avoid any
// problem of rounding to integral numbers").  A supernode with enough
// candidates (and enough columns) is distributed 2D, the others 1D — hence
// 2D near the root, 1D below.
//
#include <vector>

#include "model/cost_model.hpp"
#include "symbolic/symbol.hpp"

namespace pastix {

/// Distribution of one column block.
enum class DistType : unsigned char { k1D, k2D };

/// How the 1D/2D switch is decided (ablation bench A1).
enum class DistPolicy : unsigned char {
  kMixed,  ///< 2D iff #candidates and width pass the thresholds (paper)
  kAll1D,  ///< force 1D everywhere (the authors' previous EuroPar'99 scheme)
  kAll2D,  ///< force 2D everywhere
};

struct MappingOptions {
  idx_t nprocs = 4;
  DistPolicy policy = DistPolicy::kMixed;
  /// 2D iff the candidate set has at least this many processors...
  /// (2 — i.e. "2D as soon as a supernode is shared" — measures best under
  /// the calibrated model; the paper's conclusion notes the 1D/2D switch
  /// criterion as the main avenue for improvement, see bench/ablation_dist)
  idx_t min_cand_2d = 2;
  /// ...and the supernode (pre-split) spans at least this many columns.
  idx_t min_width_2d = 32;
};

struct CblkCandidate {
  double fcand = 0, lcand = 0;  ///< fractional processor interval [fcand, lcand)
  idx_t fproc = 0, lproc = 0;   ///< integral candidates [fproc, lproc]
  DistType dist = DistType::k1D;
  idx_t depth = 0;              ///< depth in the block elimination tree

  [[nodiscard]] idx_t ncand() const { return lproc - fproc + 1; }
};

/// Per-cblk candidate info + derived tree data.
struct CandidateMapping {
  std::vector<CblkCandidate> cblk;   ///< size ncblk
  std::vector<idx_t> parent;         ///< block elimination tree
  std::vector<double> subtree_cost;  ///< model seconds of the whole subtree
};

/// Sequential (1D) cost of the update-and-factor work of one cblk.
double cblk_comp1d_cost(const SymbolMatrix& s, idx_t k, const CostModel& m);

/// Corresponding exact flop count.
double cblk_comp1d_flops(const SymbolMatrix& s, idx_t k);

CandidateMapping proportional_mapping(const SymbolMatrix& s,
                                      const CostModel& m,
                                      const MappingOptions& opt);

} // namespace pastix
