#include "map/candidates.hpp"

#include <algorithm>
#include <cmath>

namespace pastix {

double cblk_comp1d_cost(const SymbolMatrix& s, idx_t k, const CostModel& m) {
  const double w = s.cblks[static_cast<std::size_t>(k)].width();
  const double h = s.cblk_below_rows(k);
  double cost = m.factor_ldlt_time(w) + (h > 0 ? m.trsm_time(h, w) : 0.0);
  // One GEMM per off-diagonal blok: rows from that blok downward times the
  // blok's rows (the compacted update of the COMP1D task).
  const idx_t first = s.cblks[static_cast<std::size_t>(k)].bloknum + 1;
  const idx_t last = s.cblks[static_cast<std::size_t>(k) + 1].bloknum;
  double below = h;
  for (idx_t b = first; b < last; ++b) {
    const double rows = s.bloks[static_cast<std::size_t>(b)].nrows();
    cost += m.gemm_time(below, rows, w);
    below -= rows;
  }
  return cost;
}

double cblk_comp1d_flops(const SymbolMatrix& s, idx_t k) {
  const double w = s.cblks[static_cast<std::size_t>(k)].width();
  const double h = s.cblk_below_rows(k);
  double flops = flops_factor_ldlt(w) + (h > 0 ? flops_trsm(h, w) : 0.0);
  const idx_t first = s.cblks[static_cast<std::size_t>(k)].bloknum + 1;
  const idx_t last = s.cblks[static_cast<std::size_t>(k) + 1].bloknum;
  double below = h;
  for (idx_t b = first; b < last; ++b) {
    const double rows = s.bloks[static_cast<std::size_t>(b)].nrows();
    flops += flops_gemm(below, rows, w);
    below -= rows;
  }
  return flops;
}

CandidateMapping proportional_mapping(const SymbolMatrix& s,
                                      const CostModel& m,
                                      const MappingOptions& opt) {
  PASTIX_CHECK(opt.nprocs >= 1, "need at least one processor");
  const idx_t ncblk = s.ncblk;
  CandidateMapping cm;
  cm.cblk.assign(static_cast<std::size_t>(ncblk), {});
  cm.parent = block_etree(s);
  cm.subtree_cost.assign(static_cast<std::size_t>(ncblk), 0.0);

  // Subtree costs, bottom-up (children precede parents in postorder).
  for (idx_t k = 0; k < ncblk; ++k) {
    cm.subtree_cost[static_cast<std::size_t>(k)] += cblk_comp1d_cost(s, k, m);
    const idx_t p = cm.parent[static_cast<std::size_t>(k)];
    if (p != kNone)
      cm.subtree_cost[static_cast<std::size_t>(p)] +=
          cm.subtree_cost[static_cast<std::size_t>(k)];
  }

  // Children lists for the top-down sweep.
  std::vector<std::vector<idx_t>> children(static_cast<std::size_t>(ncblk));
  std::vector<idx_t> roots;
  for (idx_t k = 0; k < ncblk; ++k) {
    const idx_t p = cm.parent[static_cast<std::size_t>(k)];
    if (p == kNone)
      roots.push_back(k);
    else
      children[static_cast<std::size_t>(p)].push_back(k);
  }

  // Distribute a fractional processor interval over a set of subtrees
  // proportionally to their costs.
  auto share = [&](const std::vector<idx_t>& subtrees, double f, double l,
                   idx_t depth, auto&& recurse) -> void {
    double total = 0;
    for (const idx_t c : subtrees)
      total += cm.subtree_cost[static_cast<std::size_t>(c)];
    double cursor = f;
    for (std::size_t i = 0; i < subtrees.size(); ++i) {
      const idx_t c = subtrees[i];
      const double frac =
          total > 0 ? cm.subtree_cost[static_cast<std::size_t>(c)] / total
                    : 1.0 / static_cast<double>(subtrees.size());
      double next = (i + 1 == subtrees.size()) ? l : cursor + frac * (l - f);
      recurse(c, cursor, next, depth, recurse);
      cursor = next;
    }
  };

  auto assign = [&](idx_t k, double f, double l, idx_t depth,
                    auto&& self) -> void {
    auto& cand = cm.cblk[static_cast<std::size_t>(k)];
    cand.fcand = f;
    cand.lcand = l;
    cand.fproc = static_cast<idx_t>(std::floor(f));
    // The interval is half open; a processor is candidate if its unit
    // interval overlaps [f, l).
    cand.lproc = static_cast<idx_t>(std::ceil(l)) - 1;
    cand.fproc = std::clamp<idx_t>(cand.fproc, 0, opt.nprocs - 1);
    cand.lproc = std::clamp<idx_t>(cand.lproc, cand.fproc, opt.nprocs - 1);
    cand.depth = depth;

    const bool wide = s.cblks[static_cast<std::size_t>(k)].width() >=
                      opt.min_width_2d;
    switch (opt.policy) {
      case DistPolicy::kAll1D: cand.dist = DistType::k1D; break;
      case DistPolicy::kAll2D: cand.dist = DistType::k2D; break;
      case DistPolicy::kMixed:
        cand.dist = (cand.ncand() >= opt.min_cand_2d && wide) ? DistType::k2D
                                                              : DistType::k1D;
        break;
    }
    share(children[static_cast<std::size_t>(k)], f, l, depth + 1, self);
  };

  share(roots, 0.0, static_cast<double>(opt.nprocs), 0, assign);
  return cm;
}

} // namespace pastix
