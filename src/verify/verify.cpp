//
// Static plan verification (see verify.hpp for the contract).
//
// The checker runs in gated phases: shape checks first (array sizes and id
// ranges), because every deeper check indexes through those arrays; then
// symbolic structure, task-graph re-derivation, schedule/candidate checks,
// communication-plan re-derivation, happens-before analysis, and finally
// the memory replay.  A phase that finds the plan structurally unusable
// stops the pipeline — diagnostics beyond that point would be noise (or
// out-of-bounds reads).
//
#include "verify/verify.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace pastix::verify {

const char* code_name(Code c) {
  switch (c) {
    case Code::kShapeMismatch: return "shape-mismatch";
    case Code::kPartitionGap: return "partition-gap";
    case Code::kPartitionOverlap: return "partition-overlap";
    case Code::kSymbolInvalid: return "symbol-invalid";
    case Code::kBlokOutsideFacing: return "blok-outside-facing";
    case Code::kStructMissing: return "struct-missing";
    case Code::kStructNotClosed: return "struct-not-closed";
    case Code::kTaskInvalid: return "task-invalid";
    case Code::kTaskMapInconsistent: return "task-map-inconsistent";
    case Code::kGraphCycle: return "graph-cycle";
    case Code::kDependencyMissing: return "dependency-missing";
    case Code::kDependencySpurious: return "dependency-spurious";
    case Code::kScheduleInvalid: return "schedule-invalid";
    case Code::kTaskOutsideCandidates: return "task-outside-candidates";
    case Code::kUnorderedWrite: return "unordered-write";
    case Code::kHappensBeforeCycle: return "happens-before-cycle";
    case Code::kAubCountMismatch: return "aub-count-mismatch";
    case Code::kOrphanSend: return "orphan-send";
    case Code::kStarvedReceive: return "starved-receive";
    case Code::kOwnerMismatch: return "owner-mismatch";
    case Code::kTagCollision: return "tag-collision";
    case Code::kOptionsMismatch: return "options-mismatch";
    case Code::kStatsStale: return "stats-stale";
    case Code::kSplitInvalid: return "split-invalid";
    case Code::kTailDependencyMissing: return "tail-dependency-missing";
    case Code::kTailRace: return "tail-race";
    case Code::kTailStarvedReceive: return "tail-starved-receive";
    case Code::kTailHappensBeforeCycle: return "tail-happens-before-cycle";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << (severity == Severity::kError ? "error" : "warning") << " ["
     << code_name(code) << "]";
  if (task != kNone) os << " task " << task;
  if (cblk != kNone) os << " cblk " << cblk;
  if (blok != kNone) os << " blok " << blok;
  if (rank != kNone) os << " rank " << rank;
  os << ": " << message;
  return os.str();
}

bool Report::ok() const { return errors() == 0; }

std::size_t Report::errors() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics)
    if (d.severity == Severity::kError) ++n;
  return n;
}

std::size_t Report::warnings() const {
  return diagnostics.size() - errors();
}

bool Report::has(Code c) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [c](const Diagnostic& d) { return d.code == c; });
}

std::string Report::summary() const {
  std::ostringstream os;
  os << errors() << " error(s), " << warnings() << " warning(s)";
  if (truncated) os << " (truncated)";
  if (!diagnostics.empty()) os << "; first: " << diagnostics.front().to_string();
  return os.str();
}

std::string Report::to_string() const {
  std::ostringstream os;
  os << "plan verification: " << (ok() ? "OK" : "FAILED") << " — "
     << errors() << " error(s), " << warnings() << " warning(s)\n";
  for (const auto& d : diagnostics) os << "  " << d.to_string() << "\n";
  if (truncated) os << "  ... (diagnostic limit reached)\n";
  return os.str();
}

namespace {

inline std::size_t uz(idx_t v) { return static_cast<std::size_t>(v); }

/// Thrown internally when the diagnostic limit is reached; unwinds straight
/// out of whatever phase was running.
struct DiagnosticLimit {};

class Checker {
public:
  Checker(const AnalysisPlan& plan, const VerifyOptions& opt)
      : p_(plan), opt_(opt) {}

  Report run() {
    try {
      if (!check_shapes()) return finish();
      const bool symbol_usable = check_symbol();
      if (opt_.check_struct && symbol_usable) check_struct();
      if (!symbol_usable) return finish();
      if (!check_task_list()) return finish();
      check_graph_edges();
      check_graph_acyclic();
      if (!check_kp_partition()) return finish();
      check_candidates();
      check_comm_plan();
      check_tags();
      check_order_and_deadlock();
      check_hybrid_tail();
      check_solve_plan();
      check_stats();
      if (opt_.check_memory && rep_.errors() == 0) replay_memory();
    } catch (const DiagnosticLimit&) {
      rep_.truncated = true;
    } catch (const Error& e) {
      // Defensive backstop: no phase should throw on input the shape checks
      // admitted, but a verifier must never take the process down.
      rep_.diagnostics.push_back({Code::kShapeMismatch, Severity::kError,
                                  kNone, kNone, kNone, kNone,
                                  std::string("verifier aborted: ") + e.what()});
    }
    return finish();
  }

private:
  const AnalysisPlan& p_;
  const VerifyOptions& opt_;
  Report rep_;

  Report finish() { return std::move(rep_); }

  void add(Code code, std::string msg, idx_t task = kNone, idx_t cblk = kNone,
           idx_t blok = kNone, idx_t rank = kNone,
           Severity sev = Severity::kError) {
    if (rep_.diagnostics.size() >= opt_.max_diagnostics) throw DiagnosticLimit{};
    rep_.diagnostics.push_back(
        {code, sev, task, cblk, blok, rank, std::move(msg)});
  }

  // ------------------------------------------------------- phase 0: shapes --
  // Every array length and every stored id, checked before anything indexes
  // through them.  Returns false (gating all later phases) on any finding.
  bool check_shapes() {
    const std::size_t before = rep_.diagnostics.size();
    const SymbolMatrix& s = p_.symbol;
    const TaskGraph& tg = p_.tg;
    const Schedule& sc = p_.sched;
    const CommPlan& cm = p_.comm;

    auto shape = [&](bool okv, const char* what) {
      if (!okv) add(Code::kShapeMismatch, what);
    };
    shape(s.n >= 0 && s.ncblk >= 0, "symbol order/cblk count negative");
    shape(s.cblks.size() == uz(s.ncblk) + 1,
          "symbol cblk array is not ncblk + 1 entries");
    shape(s.col2cblk.size() == uz(s.n), "col2cblk does not cover the columns");
    if (rep_.diagnostics.size() != before) return false;
    shape(s.cblks.back().bloknum == s.nblok(),
          "cblk sentinel does not close the blok array");

    shape(p_.order.permuted.n == s.n, "permuted pattern order != symbol order");
    try {
      p_.order.permuted.validate();  // check_struct walks colptr/rowind
    } catch (const Error& e) {
      add(Code::kShapeMismatch,
          std::string("permuted pattern invalid: ") + e.what());
    }
    shape(p_.fingerprint.n == s.n, "fingerprint order != symbol order");
    shape(static_cast<idx_t>(p_.cand.cblk.size()) == s.ncblk,
          "candidate mapping does not cover the cblks");

    const idx_t ntask = tg.ntask();
    shape(tg.inputs.size() == uz(ntask) && tg.prec.size() == uz(ntask) &&
              tg.depth.size() == uz(ntask),
          "task graph edge arrays do not match the task count");
    shape(static_cast<idx_t>(tg.cblk_task.size()) == s.ncblk,
          "cblk_task does not cover the cblks");
    shape(static_cast<idx_t>(tg.blok_task.size()) == s.nblok(),
          "blok_task does not cover the bloks");

    shape(sc.nprocs >= 1, "schedule has no processors");
    shape(sc.proc.size() == uz(ntask) && sc.prio.size() == uz(ntask) &&
              sc.start.size() == uz(ntask) && sc.end.size() == uz(ntask),
          "schedule arrays do not match the task count");
    shape(static_cast<idx_t>(sc.kp.size()) == sc.nprocs,
          "K_p count does not match nprocs");

    shape(cm.expect_aub.size() == uz(ntask) &&
              cm.aub_after.size() == uz(ntask) &&
              cm.aub_countdown.size() == uz(ntask) &&
              cm.diag_dests.size() == uz(ntask) &&
              cm.panel_dests.size() == uz(ntask),
          "comm plan factorization arrays do not match the task count");
    shape(static_cast<idx_t>(cm.diag_owner.size()) == s.ncblk &&
              static_cast<idx_t>(cm.fwd_remote_bloks.size()) == s.ncblk &&
              static_cast<idx_t>(cm.bwd_remote_bloks.size()) == s.ncblk &&
              static_cast<idx_t>(cm.yseg_dests.size()) == s.ncblk &&
              static_cast<idx_t>(cm.xseg_dests.size()) == s.ncblk,
          "comm plan solve arrays do not match the cblk count");
    shape(static_cast<idx_t>(cm.blok_owner.size()) == s.nblok(),
          "blok_owner does not cover the bloks");
    if (rep_.diagnostics.size() != before) return false;

    if (p_.options.nprocs != sc.nprocs)
      add(Code::kOptionsMismatch, "options.nprocs != schedule nprocs");
    if (cm.partial_chunk != p_.options.fanin.partial_chunk)
      add(Code::kOptionsMismatch,
          "comm plan partial_chunk != options.fanin.partial_chunk");
    if (cm.partial_chunk < 0)
      add(Code::kOptionsMismatch, "negative partial_chunk");

    // Stored ids.  Range violations gate later phases like size mismatches.
    for (idx_t t = 0; t < ntask; ++t) {
      const Task& task = tg.tasks[uz(t)];
      if (task.cblk < 0 || task.cblk >= s.ncblk) {
        add(Code::kTaskInvalid, "task cblk id out of range", t);
        continue;
      }
      if (task.type != TaskType::kComp1d &&
          (task.blok < 0 || task.blok >= s.nblok()))
        add(Code::kTaskInvalid, "task blok id out of range", t, task.cblk);
      if (task.type == TaskType::kBmod &&
          (task.blok2 < 0 || task.blok2 >= s.nblok()))
        add(Code::kTaskInvalid, "task blok2 id out of range", t, task.cblk);
    }
    auto task_ids = [&](const std::vector<idx_t>& v, const char* what) {
      for (const idx_t t : v)
        if (t < 0 || t >= ntask) {
          add(Code::kShapeMismatch,
              std::string(what) + " holds a task id out of range");
          return;
        }
    };
    task_ids(tg.cblk_task, "cblk_task");
    task_ids(tg.blok_task, "blok_task");
    for (idx_t t = 0; t < ntask; ++t) {
      for (const auto& c : tg.inputs[uz(t)])
        if (c.source < 0 || c.source >= ntask)
          add(Code::kShapeMismatch, "input edge source out of range", t);
      for (const auto& c : tg.prec[uz(t)])
        if (c.source < 0 || c.source >= ntask)
          add(Code::kShapeMismatch, "precedence edge source out of range", t);
      if (sc.proc[uz(t)] < 0 || sc.proc[uz(t)] >= sc.nprocs)
        add(Code::kScheduleInvalid, "task mapped to a rank out of range", t);
      task_ids(cm.aub_after[uz(t)], "aub_after");
      for (const auto& [q, cnt] : cm.aub_countdown[uz(t)])
        if (q < 0 || q >= sc.nprocs || cnt <= 0)
          add(Code::kAubCountMismatch,
              "countdown entry with bad rank or non-positive count", t);
      for (const idx_t q : cm.diag_dests[uz(t)])
        if (q < 0 || q >= sc.nprocs)
          add(Code::kShapeMismatch, "diag destination rank out of range", t);
      for (const idx_t q : cm.panel_dests[uz(t)])
        if (q < 0 || q >= sc.nprocs)
          add(Code::kShapeMismatch, "panel destination rank out of range", t);
    }
    for (const auto& order : sc.kp) task_ids(order, "K_p");
    for (idx_t k = 0; k < s.ncblk; ++k) {
      const auto& c = p_.cand.cblk[uz(k)];
      if (c.fproc < 0 || c.lproc < c.fproc || c.lproc >= sc.nprocs)
        add(Code::kShapeMismatch, "candidate interval out of range", kNone, k);
    }
    for (idx_t k = 0; k < s.ncblk; ++k) {
      if (cm.diag_owner[uz(k)] < 0 || cm.diag_owner[uz(k)] >= sc.nprocs)
        add(Code::kOwnerMismatch, "diag owner out of range", kNone, k);
      for (const auto* v : {&cm.fwd_remote_bloks[uz(k)],
                            &cm.bwd_remote_bloks[uz(k)]})
        for (const idx_t b : *v)
          if (b < 0 || b >= s.nblok())
            add(Code::kShapeMismatch, "solve blok id out of range", kNone, k);
      for (const auto* v : {&cm.yseg_dests[uz(k)], &cm.xseg_dests[uz(k)]})
        for (const idx_t q : *v)
          if (q < 0 || q >= sc.nprocs)
            add(Code::kShapeMismatch, "solve destination out of range", kNone,
                k);
    }
    for (idx_t b = 0; b < s.nblok(); ++b)
      if (cm.blok_owner[uz(b)] < 0 || cm.blok_owner[uz(b)] >= sc.nprocs)
        add(Code::kOwnerMismatch, "blok owner out of range", kNone, kNone, b);

    return rep_.diagnostics.size() == before;
  }

  // ------------------------------------------- phase 1: symbolic soundness --
  // Returns false when the block structure itself is unusable (gates the
  // graph phases, which walk bloks per cblk).
  bool check_symbol() {
    const std::size_t before = rep_.diagnostics.size();
    const SymbolMatrix& s = p_.symbol;

    // Supernode partition tiles [0, n) exactly.
    idx_t expected_col = 0;
    for (idx_t k = 0; k < s.ncblk; ++k) {
      const auto& ck = s.cblks[uz(k)];
      if (ck.lcolnum < ck.fcolnum) {
        add(Code::kSymbolInvalid, "cblk with empty column range", kNone, k);
        return false;
      }
      if (ck.fcolnum > expected_col)
        add(Code::kPartitionGap,
            "columns " + std::to_string(expected_col) + ".." +
                std::to_string(ck.fcolnum - 1) + " belong to no supernode",
            kNone, k);
      else if (ck.fcolnum < expected_col)
        add(Code::kPartitionOverlap,
            "column " + std::to_string(ck.fcolnum) +
                " is covered by two supernodes",
            kNone, k);
      expected_col = ck.lcolnum + 1;
    }
    if (s.ncblk > 0 && expected_col != s.n)
      add(expected_col < s.n ? Code::kPartitionGap : Code::kPartitionOverlap,
          "supernode partition ends at column " + std::to_string(expected_col) +
              ", order is " + std::to_string(s.n));
    if (rep_.diagnostics.size() != before) return false;

    for (idx_t j = 0; j < s.n; ++j) {
      const idx_t k = s.col2cblk[uz(j)];
      if (k < 0 || k >= s.ncblk || j < s.cblks[uz(k)].fcolnum ||
          j > s.cblks[uz(k)].lcolnum) {
        add(Code::kSymbolInvalid, "col2cblk points a column at the wrong cblk",
            kNone, k >= 0 && k < s.ncblk ? k : kNone);
        return false;
      }
    }

    // Blok layout: contiguous per cblk, diagonal first, sorted, contained.
    bool usable = true;
    for (idx_t k = 0; k < s.ncblk; ++k) {
      const auto& ck = s.cblks[uz(k)];
      const idx_t first = ck.bloknum, last = s.cblks[uz(k) + 1].bloknum;
      if (first < 0 || last < first || last > s.nblok()) {
        add(Code::kSymbolInvalid, "cblk blok range is not increasing", kNone, k);
        return false;
      }
      if (first == last) {
        add(Code::kSymbolInvalid, "cblk without a diagonal blok", kNone, k);
        usable = false;
        continue;
      }
      const auto& diag = s.bloks[uz(first)];
      if (diag.frownum != ck.fcolnum || diag.lrownum != ck.lcolnum ||
          diag.fcblknm != k) {
        add(Code::kSymbolInvalid, "first blok is not the diagonal block", kNone,
            k, first);
        usable = false;
      }
      idx_t prev_last = kNone;
      for (idx_t b = first; b < last; ++b) {
        const auto& blok = s.bloks[uz(b)];
        if (blok.lcblknm != k) {
          add(Code::kSymbolInvalid, "blok does not name its owning cblk", kNone,
              k, b);
          usable = false;
          continue;
        }
        if (blok.frownum > blok.lrownum) {
          add(Code::kSymbolInvalid, "blok with empty row range", kNone, k, b);
          usable = false;
          continue;
        }
        if (blok.fcblknm < 0 || blok.fcblknm >= s.ncblk ||
            (b > first && blok.fcblknm <= k)) {
          add(Code::kSymbolInvalid, "blok faces an impossible cblk", kNone, k,
              b);
          usable = false;
          continue;
        }
        const auto& face = s.cblks[uz(blok.fcblknm)];
        if (blok.frownum < face.fcolnum || blok.lrownum > face.lcolnum) {
          add(Code::kBlokOutsideFacing,
              "rows " + std::to_string(blok.frownum) + ".." +
                  std::to_string(blok.lrownum) +
                  " leak outside facing cblk " + std::to_string(blok.fcblknm),
              kNone, k, b);
          usable = false;
        }
        if (b > first && prev_last != kNone && blok.frownum <= prev_last) {
          add(Code::kSymbolInvalid, "bloks out of order or overlapping", kNone,
              k, b);
          usable = false;
        }
        if (b > first) prev_last = blok.lrownum;
      }
    }
    return usable;
  }

  // struct(L) ⊇ struct(PAP^t): every strict-lower entry of the permuted
  // pattern has a covering blok; and closure: every block update the task
  // graph will scatter lands on rows fully covered by the target's bloks.
  void check_struct() {
    const SymbolMatrix& s = p_.symbol;
    const SparsePattern& a = p_.order.permuted;

    for (idx_t j = 0; j < a.n; ++j) {
      const idx_t k = s.col2cblk[uz(j)];
      const idx_t first = s.cblks[uz(k)].bloknum;
      const idx_t last = s.cblks[uz(k) + 1].bloknum;
      // Column entries and bloks are both row-sorted: one merge-style walk
      // per column instead of a binary search per entry.
      idx_t b = first;
      for (big_t e = a.colptr[uz(j)]; e < a.colptr[uz(j) + 1]; ++e) {
        const idx_t i = a.rowind[static_cast<std::size_t>(e)];
        while (b < last && s.bloks[uz(b)].lrownum < i) ++b;
        if (b >= last || s.bloks[uz(b)].frownum > i)
          add(Code::kStructMissing,
              "pattern entry (" + std::to_string(i) + "," + std::to_string(j) +
                  ") of PAP^t has no factor blok",
              kNone, k);
      }
    }

    // Closure under block updates: for every pair of bloks (bj, bi >= bj) of
    // a cblk, the rows of bi must be covered by bloks of bj's facing cblk —
    // otherwise scatter_update would silently drop part of a contribution.
    for (idx_t k = 0; k < s.ncblk; ++k) {
      const idx_t first = s.cblks[uz(k)].bloknum;
      const idx_t last = s.cblks[uz(k) + 1].bloknum;
      for (idx_t bj = first + 1; bj < last; ++bj) {
        const idx_t target = s.bloks[uz(bj)].fcblknm;
        const idx_t tfirst = s.cblks[uz(target)].bloknum;
        const idx_t tlast = s.cblks[uz(target) + 1].bloknum;
        for (idx_t bi = bj; bi < last; ++bi) {
          const auto& src = s.bloks[uz(bi)];
          // In-place facing walk (find_facing_bloks without the vector).
          idx_t lo = tfirst, hi = tlast;
          while (lo < hi) {
            const idx_t mid = lo + (hi - lo) / 2;
            if (s.bloks[uz(mid)].lrownum < src.frownum) lo = mid + 1;
            else hi = mid;
          }
          idx_t next_row = src.frownum;
          for (idx_t tb = lo;
               tb < tlast && s.bloks[uz(tb)].frownum <= src.lrownum; ++tb) {
            const auto& t = s.bloks[uz(tb)];
            if (t.frownum > next_row) break;
            next_row = std::max(next_row, t.lrownum + 1);
          }
          if (next_row <= src.lrownum)
            add(Code::kStructNotClosed,
                "update rows " + std::to_string(next_row) + ".." +
                    std::to_string(src.lrownum) + " of blok " +
                    std::to_string(bi) + " have no covering blok in cblk " +
                    std::to_string(target),
                kNone, k, bi);
        }
      }
    }
  }

  // --------------------------------------- phase 2: task-graph re-derivation
  /// BMOD task id per (bi, bj) pair; filled by check_task_list.
  std::unordered_map<std::uint64_t, idx_t> bmod_of_;
  static std::uint64_t pair_key(idx_t bi, idx_t bj) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(bi)) << 32) |
           static_cast<std::uint32_t>(bj);
  }

  // The task list must realize the 1D/2D decisions exactly: one COMP1D per
  // 1D cblk; one FACTOR + one BDIV per off-diagonal blok + one BMOD per
  // ordered blok pair for 2D cblks — with cblk_task/blok_task naming them.
  bool check_task_list() {
    const std::size_t before = rep_.diagnostics.size();
    const SymbolMatrix& s = p_.symbol;
    const TaskGraph& tg = p_.tg;
    std::vector<char> explained(uz(tg.ntask()), 0);

    for (idx_t k = 0; k < s.ncblk; ++k) {
      const auto& cand = p_.cand.cblk[uz(k)];
      const idx_t first = s.cblks[uz(k)].bloknum;
      const idx_t last = s.cblks[uz(k) + 1].bloknum;
      const idx_t main = tg.cblk_task[uz(k)];
      const Task& mt = tg.tasks[uz(main)];

      if (cand.dist == DistType::k1D) {
        if (mt.type != TaskType::kComp1d || mt.cblk != k) {
          add(Code::kTaskMapInconsistent,
              "cblk_task of a 1D cblk is not its COMP1D task", main, k);
          continue;
        }
        explained[uz(main)] = 1;
        for (idx_t b = first; b < last; ++b)
          if (tg.blok_task[uz(b)] != main)
            add(Code::kTaskMapInconsistent,
                "blok of a 1D cblk not owned by its COMP1D task", main, k, b);
      } else {
        if (mt.type != TaskType::kFactor || mt.cblk != k || mt.blok != first) {
          add(Code::kTaskMapInconsistent,
              "cblk_task of a 2D cblk is not its FACTOR task", main, k);
          continue;
        }
        explained[uz(main)] = 1;
        if (tg.blok_task[uz(first)] != main)
          add(Code::kTaskMapInconsistent,
              "diagonal blok not owned by the FACTOR task", main, k, first);
        for (idx_t b = first + 1; b < last; ++b) {
          const idx_t bd = tg.blok_task[uz(b)];
          const Task& bt = tg.tasks[uz(bd)];
          if (bt.type != TaskType::kBdiv || bt.cblk != k || bt.blok != b) {
            add(Code::kTaskMapInconsistent,
                "blok_task of an off-diagonal blok is not its BDIV task", bd, k,
                b);
            continue;
          }
          explained[uz(bd)] = 1;
        }
      }
    }

    // Sweep the task list: everything must have been named by the maps above
    // (except BMODs, which are claimed per blok pair here), and no expected
    // slot may be claimed twice — a duplicate FACTOR or BDIV would put two
    // senders on one (kDiag, cblk) / (kPanel, cblk, blok) message tag.
    for (idx_t t = 0; t < tg.ntask(); ++t) {
      if (explained[uz(t)]) continue;
      const Task& task = tg.tasks[uz(t)];
      const auto& cand = p_.cand.cblk[uz(task.cblk)];
      const idx_t first = s.cblks[uz(task.cblk)].bloknum;
      const idx_t last = s.cblks[uz(task.cblk) + 1].bloknum;
      switch (task.type) {
        case TaskType::kComp1d:
          add(Code::kTaskMapInconsistent,
              "extra COMP1D task not referenced by cblk_task", t, task.cblk);
          break;
        case TaskType::kFactor:
          add(Code::kTagCollision,
              "second FACTOR task for one cblk: both would send the "
              "(kDiag, cblk) message tag",
              t, task.cblk);
          break;
        case TaskType::kBdiv:
          add(Code::kTagCollision,
              "second BDIV task for one blok: both would send the "
              "(kPanel, cblk, blok) message tag",
              t, task.cblk, task.blok);
          break;
        case TaskType::kBmod: {
          if (cand.dist != DistType::k2D || task.blok2 <= first ||
              task.blok2 > task.blok || task.blok >= last) {
            add(Code::kTaskInvalid, "BMOD blok pair outside its 2D cblk", t,
                task.cblk);
            break;
          }
          const auto [it, inserted] =
              bmod_of_.emplace(pair_key(task.blok, task.blok2), t);
          if (!inserted)
            add(Code::kTaskMapInconsistent,
                "duplicate BMOD task for one blok pair", t, task.cblk,
                task.blok);
          break;
        }
      }
    }

    // Completeness of the BMOD set per 2D cblk.
    for (idx_t k = 0; k < s.ncblk; ++k) {
      if (p_.cand.cblk[uz(k)].dist != DistType::k2D) continue;
      const idx_t first = s.cblks[uz(k)].bloknum;
      const idx_t last = s.cblks[uz(k) + 1].bloknum;
      for (idx_t bj = first + 1; bj < last; ++bj)
        for (idx_t bi = bj; bi < last; ++bi)
          if (!bmod_of_.count(pair_key(bi, bj)))
            add(Code::kTaskMapInconsistent,
                "missing BMOD task for blok pair (" + std::to_string(bi) +
                    ", " + std::to_string(bj) + ")",
                kNone, k, bi);
    }
    return rep_.diagnostics.size() == before;
  }

  /// Mirror of task_graph.cpp's emit_contributions, against the re-derived
  /// task identities.  Walks the facing bloks in place (the equivalent of
  /// find_facing_bloks without materializing the index vector — this runs
  /// once per blok pair and the allocations would dominate the phase).
  void emit_expected(std::vector<std::vector<Contribution>>& inputs,
                     idx_t source, idx_t bi, idx_t bj) const {
    const SymbolMatrix& s = p_.symbol;
    const auto& src_i = s.bloks[uz(bi)];
    const auto& src_j = s.bloks[uz(bj)];
    const idx_t k = src_j.fcblknm;
    const idx_t first = s.cblks[uz(k)].bloknum;
    const idx_t last = s.cblks[uz(k) + 1].bloknum;
    idx_t lo = first, hi = last;  // first blok with lrownum >= src_i.frownum
    while (lo < hi) {
      const idx_t mid = lo + (hi - lo) / 2;
      if (s.bloks[uz(mid)].lrownum < src_i.frownum) lo = mid + 1;
      else hi = mid;
    }
    for (idx_t tb = lo; tb < last && s.bloks[uz(tb)].frownum <= src_i.lrownum;
         ++tb) {
      const auto& t = s.bloks[uz(tb)];
      const idx_t rows = std::min(t.lrownum, src_i.lrownum) -
                         std::max(t.frownum, src_i.frownum) + 1;
      inputs[uz(p_.tg.blok_task[uz(tb)])].push_back(
          {source, static_cast<double>(rows) * src_j.nrows()});
    }
  }

  // Re-enumerate every contribution and precedence edge from the block
  // structure and diff against the plan's.  A missing input is an update the
  // runtime would never apply; a spurious one has no producer.
  void check_graph_edges() {
    const SymbolMatrix& s = p_.symbol;
    const TaskGraph& tg = p_.tg;
    std::vector<std::vector<Contribution>> inputs(uz(tg.ntask()));
    std::vector<std::vector<Contribution>> prec(uz(tg.ntask()));
    // On a clean plan the re-derived edge counts match the stored ones
    // exactly — reserving from them makes the hot (fault-free) path
    // allocation-minimal without a separate counting pass.
    for (idx_t t = 0; t < tg.ntask(); ++t) {
      inputs[uz(t)].reserve(tg.inputs[uz(t)].size());
      prec[uz(t)].reserve(tg.prec[uz(t)].size());
    }

    for (idx_t k = 0; k < s.ncblk; ++k) {
      const idx_t first = s.cblks[uz(k)].bloknum;
      const idx_t last = s.cblks[uz(k) + 1].bloknum;
      if (p_.cand.cblk[uz(k)].dist == DistType::k1D) {
        const idx_t comp = tg.cblk_task[uz(k)];
        for (idx_t bj = first + 1; bj < last; ++bj)
          for (idx_t bi = bj; bi < last; ++bi)
            emit_expected(inputs, comp, bi, bj);
      } else {
        const idx_t factor = tg.cblk_task[uz(k)];
        const double w = s.cblks[uz(k)].width();
        for (idx_t b = first + 1; b < last; ++b)
          prec[uz(tg.blok_task[uz(b)])].push_back({factor, w * w});
        for (idx_t bj = first + 1; bj < last; ++bj)
          for (idx_t bi = bj; bi < last; ++bi) {
            const idx_t bmod = bmod_of_.at(pair_key(bi, bj));
            prec[uz(bmod)].push_back({tg.blok_task[uz(bi)], 0.0});
            prec[uz(bmod)].push_back(
                {tg.blok_task[uz(bj)],
                 w * s.bloks[uz(bj)].nrows()});
            emit_expected(inputs, bmod, bi, bj);
          }
      }
    }

    // Scratch reused across all 2·ntask diffs: most tasks have few edges and
    // per-call vector construction would dominate the whole phase.
    std::vector<std::pair<idx_t, double>> a, b;
    auto diff = [&](const std::vector<Contribution>& plan_edges,
                    const std::vector<Contribution>& expect_edges, idx_t t,
                    const char* what) {
      if (plan_edges.empty() && expect_edges.empty()) return;
      auto key = [](const Contribution& c) {
        return std::make_pair(c.source, c.entries);
      };
      a.clear();
      b.clear();
      for (const auto& c : plan_edges) a.push_back(key(c));
      for (const auto& c : expect_edges) b.push_back(key(c));
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a == b) return;
      // First divergence, reported once per task to keep the noise down.
      std::size_t i = 0, j = 0;
      while (i < a.size() && j < b.size() && a[i] == b[j]) ++i, ++j;
      if (j < b.size() && (i >= a.size() || b[j] < a[i]))
        add(Code::kDependencyMissing,
            std::string(what) + " edge from task " +
                std::to_string(b[j].first) + " (" +
                std::to_string(b[j].second) + " entries) is absent",
            t, tg.tasks[uz(t)].cblk);
      else
        add(Code::kDependencySpurious,
            std::string(what) + " edge from task " +
                std::to_string(a[i].first) +
                " is not derivable from the block structure",
            t, tg.tasks[uz(t)].cblk);
    };
    for (idx_t t = 0; t < tg.ntask(); ++t) {
      diff(tg.inputs[uz(t)], inputs[uz(t)], t, "contribution");
      diff(tg.prec[uz(t)], prec[uz(t)], t, "precedence");
    }
  }

  // Kahn topological sort over the plan's own edges (inputs + prec).
  void check_graph_acyclic() {
    const TaskGraph& tg = p_.tg;
    const std::size_t n = uz(tg.ntask());
    std::vector<idx_t> indeg(n, 0);
    for (std::size_t t = 0; t < n; ++t) {
      for (const auto& c : tg.inputs[t]) (void)c, ++indeg[t];
      for (const auto& c : tg.prec[t]) (void)c, ++indeg[t];
    }
    // Successor lists (edges point source -> consumer).
    std::vector<std::vector<idx_t>> succ(n);
    for (std::size_t t = 0; t < n; ++t) {
      for (const auto& c : tg.inputs[t]) succ[uz(c.source)].push_back(
          static_cast<idx_t>(t));
      for (const auto& c : tg.prec[t]) succ[uz(c.source)].push_back(
          static_cast<idx_t>(t));
    }
    std::vector<idx_t> stack;
    for (std::size_t t = 0; t < n; ++t)
      if (indeg[t] == 0) stack.push_back(static_cast<idx_t>(t));
    std::size_t seen = 0;
    while (!stack.empty()) {
      const idx_t t = stack.back();
      stack.pop_back();
      ++seen;
      for (const idx_t nxt : succ[uz(t)])
        if (--indeg[uz(nxt)] == 0) stack.push_back(nxt);
    }
    if (seen != n) {
      idx_t witness = kNone;
      for (std::size_t t = 0; t < n; ++t)
        if (indeg[t] > 0) { witness = static_cast<idx_t>(t); break; }
      add(Code::kGraphCycle,
          std::to_string(n - seen) +
              " task(s) are trapped on a dependency cycle",
          witness, witness != kNone ? p_.tg.tasks[uz(witness)].cblk : kNone);
    }
  }

  // --------------------------------------------- phase 3: schedule/mapping --
  /// Per task: (rank, position in that rank's K_p); valid after
  /// check_kp_partition succeeds.
  std::vector<idx_t> pos_;

  bool check_kp_partition() {
    const std::size_t before = rep_.diagnostics.size();
    const Schedule& sc = p_.sched;
    const idx_t ntask = p_.tg.ntask();
    pos_.assign(uz(ntask), kNone);
    for (idx_t p = 0; p < sc.nprocs; ++p) {
      const auto& order = sc.kp[uz(p)];
      for (std::size_t i = 0; i < order.size(); ++i) {
        const idx_t t = order[i];
        if (pos_[uz(t)] != kNone) {
          add(Code::kScheduleInvalid, "task appears twice in the K_p orders", t,
              kNone, kNone, p);
          continue;
        }
        pos_[uz(t)] = static_cast<idx_t>(i);
        if (sc.proc[uz(t)] != p)
          add(Code::kScheduleInvalid,
              "task in K_p of rank " + std::to_string(p) +
                  " but mapped to rank " + std::to_string(sc.proc[uz(t)]),
              t, kNone, kNone, p);
      }
    }
    for (idx_t t = 0; t < ntask; ++t)
      if (pos_[uz(t)] == kNone)
        add(Code::kScheduleInvalid, "task missing from the K_p orders", t,
            kNone, kNone, p_.sched.proc[uz(t)]);
    return rep_.diagnostics.size() == before;
  }

  void check_candidates() {
    const TaskGraph& tg = p_.tg;
    const Schedule& sc = p_.sched;
    for (idx_t t = 0; t < tg.ntask(); ++t) {
      const Task& task = tg.tasks[uz(t)];
      const idx_t proc = sc.proc[uz(t)];
      if (task.type == TaskType::kBmod) {
        // BMOD reads the BDIV(i) panel from local storage: its only valid
        // placement is the rank of blok_task[task.blok].
        const idx_t req = sc.proc[uz(tg.blok_task[uz(task.blok)])];
        if (proc != req)
          add(Code::kTaskOutsideCandidates,
              "BMOD on rank " + std::to_string(proc) +
                  " but its BDIV(i) panel lives on rank " +
                  std::to_string(req),
              t, task.cblk, task.blok, proc);
      } else {
        const auto& cand = p_.cand.cblk[uz(task.cblk)];
        if (proc < cand.fproc || proc > cand.lproc)
          add(Code::kTaskOutsideCandidates,
              "task mapped to rank " + std::to_string(proc) +
                  " outside candidates [" + std::to_string(cand.fproc) + "," +
                  std::to_string(cand.lproc) + "]",
              t, task.cblk, kNone, proc);
      }
    }
  }

  // ------------------------------------ phase 4: communication completeness --
  // Rebuild the comm plan from (symbol, task graph, schedule) and diff.  An
  // entry the plan has but the rebuild lacks is a message nobody consumes
  // (orphan send); one the rebuild has but the plan lacks is a message a
  // blocking receive waits for that is never produced (starved receive).
  void check_comm_plan() {
    const CommPlan rebuilt = build_comm_plan(p_.symbol, p_.tg, p_.sched,
                                             p_.options.fanin.partial_chunk);
    const CommPlan& cm = p_.comm;
    const idx_t ntask = p_.tg.ntask();

    // Scratch reused across every per-task list diff (see check_graph_edges).
    std::vector<idx_t> ids_a, ids_b;
    auto diff_ids = [&](const std::vector<idx_t>& plan_v,
                        const std::vector<idx_t>& want_v, idx_t t,
                        const char* what, const char* unit) {
      if (plan_v.empty() && want_v.empty()) return;
      ids_a.assign(plan_v.begin(), plan_v.end());
      ids_b.assign(want_v.begin(), want_v.end());
      std::sort(ids_a.begin(), ids_a.end());
      std::sort(ids_b.begin(), ids_b.end());
      auto& a = ids_a;
      auto& b = ids_b;
      if (a == b) return;
      std::vector<idx_t> missing, extra;
      std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                          std::back_inserter(missing));
      std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(extra));
      if (!missing.empty())
        add(Code::kStarvedReceive,
            std::string(what) + " misses " + unit + " " +
                std::to_string(missing.front()) +
                ": the expected message is never sent",
            t, p_.tg.tasks[uz(t)].cblk, kNone, p_.sched.proc[uz(t)]);
      if (!extra.empty())
        add(Code::kOrphanSend,
            std::string(what) + " lists " + unit + " " +
                std::to_string(extra.front()) +
                ": that message has no matching receive",
            t, p_.tg.tasks[uz(t)].cblk, kNone, p_.sched.proc[uz(t)]);
    };

    for (idx_t t = 0; t < ntask; ++t) {
      if (cm.expect_aub[uz(t)] != rebuilt.expect_aub[uz(t)])
        add(Code::kAubCountMismatch,
            "task expects " + std::to_string(cm.expect_aub[uz(t)]) +
                " AUB message(s), the task graph produces " +
                std::to_string(rebuilt.expect_aub[uz(t)]),
            t, p_.tg.tasks[uz(t)].cblk, kNone, p_.sched.proc[uz(t)]);
      if (!cm.aub_countdown[uz(t)].empty() ||
          !rebuilt.aub_countdown[uz(t)].empty()) {
        auto ca = cm.aub_countdown[uz(t)];
        auto cb = rebuilt.aub_countdown[uz(t)];
        std::sort(ca.begin(), ca.end());
        std::sort(cb.begin(), cb.end());
        if (ca != cb)
          add(Code::kAubCountMismatch,
              "per-rank AUB countdown disagrees with the contribution edges",
              t, p_.tg.tasks[uz(t)].cblk, kNone, p_.sched.proc[uz(t)]);
      }
      diff_ids(cm.aub_after[uz(t)], rebuilt.aub_after[uz(t)], t, "aub_after",
               "target task");
      diff_ids(cm.diag_dests[uz(t)], rebuilt.diag_dests[uz(t)], t,
               "diag_dests", "rank");
      diff_ids(cm.panel_dests[uz(t)], rebuilt.panel_dests[uz(t)], t,
               "panel_dests", "rank");
    }

    for (idx_t k = 0; k < p_.symbol.ncblk; ++k) {
      if (cm.diag_owner[uz(k)] != rebuilt.diag_owner[uz(k)])
        add(Code::kOwnerMismatch,
            "diag_owner says rank " + std::to_string(cm.diag_owner[uz(k)]) +
                ", the schedule puts the diagonal on rank " +
                std::to_string(rebuilt.diag_owner[uz(k)]),
            kNone, k, kNone, rebuilt.diag_owner[uz(k)]);
      auto solve_set = [&](const std::vector<idx_t>& va,
                           const std::vector<idx_t>& vb, const char* what) {
        if (va.empty() && vb.empty()) return;
        auto sa = va, sb = vb;
        std::sort(sa.begin(), sa.end());
        std::sort(sb.begin(), sb.end());
        if (sa != sb)
          add(Code::kOwnerMismatch,
              std::string(what) +
                  " disagrees with the schedule's block ownership",
              kNone, k);
      };
      solve_set(cm.fwd_remote_bloks[uz(k)], rebuilt.fwd_remote_bloks[uz(k)],
                "fwd_remote_bloks");
      solve_set(cm.bwd_remote_bloks[uz(k)], rebuilt.bwd_remote_bloks[uz(k)],
                "bwd_remote_bloks");
      solve_set(cm.yseg_dests[uz(k)], rebuilt.yseg_dests[uz(k)], "yseg_dests");
      solve_set(cm.xseg_dests[uz(k)], rebuilt.xseg_dests[uz(k)], "xseg_dests");
    }
    for (idx_t b = 0; b < p_.symbol.nblok(); ++b)
      if (cm.blok_owner[uz(b)] != rebuilt.blok_owner[uz(b)])
        add(Code::kOwnerMismatch,
            "blok_owner says rank " + std::to_string(cm.blok_owner[uz(b)]) +
                ", the schedule writes this blok on rank " +
                std::to_string(rebuilt.blok_owner[uz(b)]),
            kNone, p_.symbol.bloks[uz(b)].lcblknm, b,
            rebuilt.blok_owner[uz(b)]);
  }

  // Tags carry (kind, id1, id2) with kTagIdBits bits per id; ids at or above
  // 2^kTagIdBits would wrap into other streams.  Stream uniqueness (one
  // FACTOR per cblk, one BDIV per blok, one task per AUB target) is enforced
  // by check_task_list; here the id widths.
  void check_tags() {
    constexpr idx_t kMaxId = static_cast<idx_t>(1) << 28;
    if (p_.tg.ntask() >= kMaxId)
      add(Code::kTagCollision,
          "task count exceeds the tag id width: AUB tags would alias");
    if (p_.symbol.ncblk >= kMaxId || p_.symbol.nblok() >= kMaxId)
      add(Code::kTagCollision,
          "cblk/blok count exceeds the tag id width: diag/panel/solve tags "
          "would alias");
  }

  // -------------------------- phase 5: ordering, races, and deadlock freedom
  // Same-rank dependency edges must respect the K_p order (the producer's
  // write to the consumer's storage must precede the consumer's compute —
  // the block-granularity race check).  Cross-rank edges become message
  // edges of a happens-before graph: sends never block (buffered mailboxes),
  // receives block, so the schedule deadlocks iff that graph has a cycle.
  void check_order_and_deadlock() {
    const TaskGraph& tg = p_.tg;
    const Schedule& sc = p_.sched;
    const std::size_t n = uz(tg.ntask());

    auto same_rank_ordered = [&](idx_t src, idx_t dst, const char* what) {
      if (sc.proc[uz(src)] != sc.proc[uz(dst)]) return;
      if (pos_[uz(src)] >= pos_[uz(dst)])
        add(Code::kUnorderedWrite,
            std::string(what) + " producer task " + std::to_string(src) +
                " is scheduled at or after its consumer on rank " +
                std::to_string(sc.proc[uz(dst)]) +
                ": the update would race the factorization of its target "
                "block",
            dst, tg.tasks[uz(dst)].cblk, tg.tasks[uz(dst)].blok,
            sc.proc[uz(dst)]);
    };
    for (idx_t t = 0; t < tg.ntask(); ++t) {
      for (const auto& c : tg.inputs[uz(t)])
        same_rank_ordered(c.source, t, "contribution");
      for (const auto& c : tg.prec[uz(t)])
        same_rank_ordered(c.source, t, "precedence");
    }

    // Happens-before graph: per-rank sequential edges + cross-rank message
    // edges.  AUB: the receiver cannot start before every contributor on a
    // sending rank ran (the last one triggers the final send).  Diag/panel:
    // a remote BDIV blocks on the FACTOR's diagonal block, a remote BMOD on
    // the BDIV(j) panel.
    std::vector<std::vector<idx_t>> succ(n);
    std::vector<idx_t> indeg(n, 0);
    auto edge = [&](idx_t a, idx_t b) {
      succ[uz(a)].push_back(b);
      ++indeg[uz(b)];
    };
    for (const auto& order : sc.kp)
      for (std::size_t i = 1; i < order.size(); ++i)
        edge(order[i - 1], order[i]);
    for (idx_t t = 0; t < tg.ntask(); ++t) {
      for (const idx_t sigma : p_.comm.aub_after[uz(t)])
        if (sc.proc[uz(t)] != sc.proc[uz(sigma)]) edge(t, sigma);
      const Task& task = tg.tasks[uz(t)];
      if (task.type == TaskType::kBdiv) {
        const idx_t factor = tg.cblk_task[uz(task.cblk)];
        if (sc.proc[uz(factor)] != sc.proc[uz(t)]) edge(factor, t);
      } else if (task.type == TaskType::kBmod) {
        const idx_t bdiv_j = tg.blok_task[uz(task.blok2)];
        if (sc.proc[uz(bdiv_j)] != sc.proc[uz(t)]) edge(bdiv_j, t);
      }
    }
    std::vector<idx_t> stack;
    for (std::size_t t = 0; t < n; ++t)
      if (indeg[t] == 0) stack.push_back(static_cast<idx_t>(t));
    std::size_t seen = 0;
    while (!stack.empty()) {
      const idx_t t = stack.back();
      stack.pop_back();
      ++seen;
      for (const idx_t nxt : succ[uz(t)])
        if (--indeg[uz(nxt)] == 0) stack.push_back(nxt);
    }
    if (seen == n) return;

    // Walk predecessors inside the trapped set until a node repeats; the
    // tail of that walk is an actual waiting cycle worth printing.
    std::vector<std::vector<idx_t>> pred(n);
    for (std::size_t t = 0; t < n; ++t)
      for (const idx_t nxt : succ[t])
        if (indeg[uz(nxt)] > 0 && indeg[t] > 0)
          pred[uz(nxt)].push_back(static_cast<idx_t>(t));
    idx_t cur = kNone;
    for (std::size_t t = 0; t < n; ++t)
      if (indeg[t] > 0) { cur = static_cast<idx_t>(t); break; }
    std::vector<idx_t> walk;
    std::vector<idx_t> at(n, kNone);
    while (cur != kNone && at[uz(cur)] == kNone) {
      at[uz(cur)] = static_cast<idx_t>(walk.size());
      walk.push_back(cur);
      cur = pred[uz(cur)].empty() ? kNone : pred[uz(cur)].front();
    }
    std::ostringstream os;
    os << (n - seen) << " task(s) wait on a cross-rank cycle";
    if (cur != kNone) {
      os << ":";
      for (std::size_t i = uz(at[uz(cur)]); i < walk.size() && i < uz(at[uz(cur)]) + 8;
           ++i)
        os << " task " << walk[i] << " (rank " << sc.proc[uz(walk[i])] << ")"
           << (i + 1 < walk.size() ? " <-" : "");
      os << " ... the blocking receives can never all complete";
    }
    add(Code::kHappensBeforeCycle, os.str(), cur,
        cur != kNone ? tg.tasks[uz(cur)].cblk : kNone, kNone,
        cur != kNone ? sc.proc[uz(cur)] : kNone);
  }

  // ------------------------------ phase 5a: hybrid prefix/tail relaxation --
  // When the schedule carries split points (DESIGN.md §14), the runtime no
  // longer promises K_p order for the *computes* of tail tasks — only their
  // commits stay serialized.  Model that relaxation exactly, with two nodes
  // per task:
  //
  //   compute(t) -> commit(t)                       (a task commits after it
  //                                                  computes)
  //   commit(u)  -> compute(v)   prefix chain       (the prefix is strictly
  //                                                  sequential)
  //   commit(last prefix) -> compute(every tail t)  (the pool starts after
  //                                                  the prefix)
  //   commit(u)  -> commit(v)    K_p order          (the committer walks the
  //                                                  tail in K_p order)
  //   commit(s)  -> compute(t)   same-rank tail edge (pool readiness: t is
  //                                                  claimable once s
  //                                                  committed)
  //   commit(u)  -> compute(v)   cross-rank message (sends fire at the
  //                                                  producer's commit, the
  //                                                  blocking recv sits at
  //                                                  the consumer's compute)
  //
  // Everything the relaxed executor can do is a linearization of this graph,
  // so safety under ANY steal timing is decidable on it: (a) no receive a
  // *prefix* task blocks on may be fed by a tail producer (the pool that
  // would send it has not even started on the producer's rank — the
  // split-point fixpoint promises this); (b) every re-derived same-rank
  // dependency of a tail compute is ordered behind its producer's commit;
  // (c) no two unordered tail computes of one rank touch the same factor
  // block with a write involved (a steal would race the access); (d) the
  // graph is acyclic (no interleaving deadlocks).  The fully static checks above remain in force K_p-wide:
  // hybrid commit order *is* K_p order, and the committer's waits are a
  // subset of the static schedule's.
  void check_hybrid_tail() {
    const Schedule& sc = p_.sched;
    const TaskGraph& tg = p_.tg;
    if (p_.options.fanin.hybrid.enabled && sc.split.empty())
      add(Code::kOptionsMismatch,
          "options enable hybrid execution but the schedule carries no split "
          "points");
    if (sc.split.empty()) return;
    if (static_cast<idx_t>(sc.split.size()) != sc.nprocs) {
      add(Code::kSplitInvalid,
          "schedule has " + std::to_string(sc.split.size()) +
              " split point(s) for " + std::to_string(sc.nprocs) + " rank(s)");
      return;
    }
    for (idx_t p = 0; p < sc.nprocs; ++p)
      if (sc.split[uz(p)] < 0 ||
          sc.split[uz(p)] > static_cast<idx_t>(sc.kp[uz(p)].size())) {
        add(Code::kSplitInvalid,
            "split point " + std::to_string(sc.split[uz(p)]) +
                " lands outside K_p (size " +
                std::to_string(sc.kp[uz(p)].size()) + ")",
            kNone, kNone, kNone, p);
        return;
      }

    const auto in_tail = [&](idx_t t) {
      return pos_[uz(t)] >= sc.split[uz(sc.proc[uz(t)])];
    };

    // Cross-rank message edges of the factorization executor: sender task ->
    // receiver task (AUB fan-in, remote diag for a BDIV, remote panel for a
    // BMOD) — the same edges the static happens-before phase wires.
    std::vector<std::pair<idx_t, idx_t>> msg;
    for (idx_t t = 0; t < tg.ntask(); ++t) {
      for (const idx_t sigma : p_.comm.aub_after[uz(t)])
        if (sc.proc[uz(t)] != sc.proc[uz(sigma)]) msg.emplace_back(t, sigma);
      const Task& task = tg.tasks[uz(t)];
      if (task.type == TaskType::kBdiv) {
        const idx_t factor = tg.cblk_task[uz(task.cblk)];
        if (sc.proc[uz(factor)] != sc.proc[uz(t)]) msg.emplace_back(factor, t);
      } else if (task.type == TaskType::kBmod) {
        const idx_t bdiv_j = tg.blok_task[uz(task.blok2)];
        if (sc.proc[uz(bdiv_j)] != sc.proc[uz(t)]) msg.emplace_back(bdiv_j, t);
      }
    }

    // (a) Starvation across the prefix/tail boundary: a prefix task blocks
    // in recv before its rank's pool starts; if the producer sits in another
    // rank's tail the send may be arbitrarily late — and if that tail in
    // turn waits on this rank, never happen.
    for (const auto& [u, v] : msg)
      if (in_tail(u) && !in_tail(v))
        add(Code::kTailStarvedReceive,
            "prefix task blocks on a message produced by tail task " +
                std::to_string(u) + " of rank " +
                std::to_string(sc.proc[uz(u)]) +
                ": the split must keep producers of prefix-consumed messages "
                "in their sender's prefix",
            v, tg.tasks[uz(v)].cblk, tg.tasks[uz(v)].blok, sc.proc[uz(v)]);

    // Relaxed happens-before graph: node t = compute(t), node ntask + t =
    // commit(t).
    const std::size_t n = uz(tg.ntask());
    const auto compute_node = [](idx_t t) { return uz(t); };
    const auto commit_node = [n](idx_t t) { return n + uz(t); };
    std::vector<std::vector<std::size_t>> succ(2 * n);
    for (idx_t t = 0; t < tg.ntask(); ++t)
      succ[compute_node(t)].push_back(commit_node(t));
    for (idx_t p = 0; p < sc.nprocs; ++p) {
      const auto& order = sc.kp[uz(p)];
      const std::size_t split = uz(sc.split[uz(p)]);
      for (std::size_t i = 1; i < order.size(); ++i) {
        if (i <= split)
          succ[commit_node(order[i - 1])].push_back(compute_node(order[i]));
        succ[commit_node(order[i - 1])].push_back(commit_node(order[i]));
      }
      // The pool starts only after the whole prefix ran.
      if (split > 0)
        for (std::size_t i = split + 1; i < order.size(); ++i)
          succ[commit_node(order[split - 1])].push_back(
              compute_node(order[i]));
    }
    for (idx_t t = 0; t < tg.ntask(); ++t) {
      if (!in_tail(t)) continue;
      const auto same_rank_tail_edge = [&](idx_t s) {
        if (sc.proc[uz(s)] == sc.proc[uz(t)] && in_tail(s))
          succ[commit_node(s)].push_back(compute_node(t));
      };
      for (const auto& c : tg.inputs[uz(t)]) same_rank_tail_edge(c.source);
      for (const auto& c : tg.prec[uz(t)]) same_rank_tail_edge(c.source);
    }
    for (const auto& [u, v] : msg)
      succ[commit_node(u)].push_back(compute_node(v));

    // (d) Acyclicity under any linearization (Kahn over the 2n nodes).
    {
      std::vector<idx_t> indeg(2 * n, 0);
      for (const auto& out : succ)
        for (const std::size_t v : out) ++indeg[v];
      std::vector<std::size_t> stack;
      for (std::size_t v = 0; v < 2 * n; ++v)
        if (indeg[v] == 0) stack.push_back(v);
      std::size_t seen = 0;
      while (!stack.empty()) {
        const std::size_t v = stack.back();
        stack.pop_back();
        ++seen;
        for (const std::size_t w : succ[v])
          if (--indeg[w] == 0) stack.push_back(w);
      }
      if (seen != 2 * n) {
        idx_t witness = kNone;
        for (std::size_t v = 0; v < 2 * n; ++v)
          if (indeg[v] > 0) { witness = static_cast<idx_t>(v % n); break; }
        add(Code::kTailHappensBeforeCycle,
            "the relaxed prefix/tail happens-before graph has a cycle: some "
            "steal interleavings deadlock between tail computes and ordered "
            "commits",
            witness, witness != kNone ? tg.tasks[uz(witness)].cblk : kNone,
            kNone, witness != kNone ? sc.proc[uz(witness)] : kNone);
        return;  // reachability below is meaningless on a cyclic graph
      }
    }

    // On-demand reachability (DFS); only suspicious pairs ever query it, so
    // clean plans pay nothing beyond the direct-edge scan.
    std::vector<unsigned char> mark(2 * n, 0);
    std::vector<std::size_t> dfs;
    const auto reaches = [&](std::size_t from, std::size_t to) {
      std::fill(mark.begin(), mark.end(), 0);
      dfs.assign(1, from);
      mark[from] = 1;
      while (!dfs.empty()) {
        const std::size_t v = dfs.back();
        dfs.pop_back();
        if (v == to) return true;
        for (const std::size_t w : succ[v])
          if (!mark[w]) {
            mark[w] = 1;
            dfs.push_back(w);
          }
      }
      return false;
    };

    // (b) Dependency closure: every same-rank dependency the block structure
    // *implies* for a tail compute must be ordered behind its producer's
    // commit — re-derive the edges independently so a corrupted task graph
    // cannot vouch for itself.
    const TaskGraph want = build_task_graph(p_.symbol, p_.cand,
                                            p_.options.model);
    if (want.ntask() == tg.ntask()) {
      std::vector<unsigned char> direct(n, 0);
      for (idx_t t = 0; t < tg.ntask(); ++t) {
        if (!in_tail(t)) continue;
        for (const auto& c : tg.inputs[uz(t)]) direct[uz(c.source)] = 1;
        for (const auto& c : tg.prec[uz(t)]) direct[uz(c.source)] = 1;
        const auto closed = [&](idx_t s) {
          if (sc.proc[uz(s)] != sc.proc[uz(t)] || !in_tail(s)) return;
          if (direct[uz(s)]) return;  // a pool readiness edge orders the pair
          if (reaches(commit_node(s), compute_node(t))) return;
          add(Code::kTailDependencyMissing,
              "tail task depends on same-rank task " + std::to_string(s) +
                  " but no precedence path orders its compute after that "
                  "producer's commit: a steal could run it on stale blocks",
              t, tg.tasks[uz(t)].cblk, tg.tasks[uz(t)].blok,
              sc.proc[uz(t)]);
        };
        for (const auto& c : want.inputs[uz(t)]) closed(c.source);
        for (const auto& c : want.prec[uz(t)]) closed(c.source);
        for (const auto& c : tg.inputs[uz(t)]) direct[uz(c.source)] = 0;
        for (const auto& c : tg.prec[uz(t)]) direct[uz(c.source)] = 0;
      }
    }

    // (c) Compute-side access exclusivity over factor blocks.  Writers: a
    // COMP1D writes its whole cblk, a FACTOR its diagonal block, a BDIV its
    // panel (BMOD computes buffer privately).  Readers: a BDIV reads its
    // cblk's freshly factored diagonal block, a BMOD reads the two panels
    // it multiplies.  Two tail computes of one rank touching the same blok
    // — at least one writing — with no precedence path either way can be
    // stolen concurrently: an unordered read/write the ordered commits
    // cannot repair (the stale read already happened in the pool).
    std::unordered_map<idx_t, std::vector<idx_t>> writer;
    std::unordered_map<idx_t, std::vector<idx_t>> reader;
    for (idx_t t = 0; t < tg.ntask(); ++t) {
      if (!in_tail(t)) continue;
      const Task& task = tg.tasks[uz(t)];
      if (task.type == TaskType::kComp1d) {
        for (idx_t b = p_.symbol.cblks[uz(task.cblk)].bloknum;
             b < p_.symbol.cblks[uz(task.cblk) + 1].bloknum; ++b)
          writer[b].push_back(t);
      } else if (task.type == TaskType::kFactor) {
        writer[task.blok].push_back(t);
      } else if (task.type == TaskType::kBdiv) {
        writer[task.blok].push_back(t);
        reader[p_.symbol.cblks[uz(task.cblk)].bloknum].push_back(t);
      } else if (task.type == TaskType::kBmod) {
        reader[task.blok].push_back(t);
        if (task.blok2 != task.blok) reader[task.blok2].push_back(t);
      }
    }
    const auto unordered_pair = [&](idx_t a, idx_t c) {
      return sc.proc[uz(a)] == sc.proc[uz(c)] &&
             !reaches(commit_node(a), compute_node(c)) &&
             !reaches(commit_node(c), compute_node(a));
    };
    for (const auto& [b, ws] : writer) {
      for (std::size_t i = 0; i < ws.size(); ++i) {
        for (std::size_t j = i + 1; j < ws.size(); ++j)
          if (unordered_pair(ws[i], ws[j]))
            add(Code::kTailRace,
                "tail tasks " + std::to_string(ws[i]) + " and " +
                    std::to_string(ws[j]) + " both write blok " +
                    std::to_string(b) +
                    " with no precedence path between them: a steal could "
                    "race the write",
                ws[i], tg.tasks[uz(ws[i])].cblk, b, sc.proc[uz(ws[i])]);
        const auto rit = reader.find(b);
        if (rit == reader.end()) continue;
        for (const idx_t c : rit->second)
          if (c != ws[i] && unordered_pair(ws[i], c))
            add(Code::kTailRace,
                "tail task " + std::to_string(c) + " reads blok " +
                    std::to_string(b) + " that tail task " +
                    std::to_string(ws[i]) +
                    " writes, with no precedence path between them: a steal "
                    "could read the block mid-update",
                c, tg.tasks[uz(c)].cblk, b, sc.proc[uz(c)]);
      }
    }
  }

  // -------------------------------------------- phase 5b: solve-phase plan --
  // The solve plan gets the same zero-execution guarantee as the
  // factorization schedule: dense id-layout realization, K_p partition,
  // ownership agreement with the comm plan's solve tables, a full edge
  // re-derivation diff, per-tag send/receive completeness, and the
  // happens-before/deadlock proof over the solve K_p orders plus the
  // cross-rank message edges.  Plans without a solve phase (hand-built
  // pipelines) skip this phase — the runtime falls back to building one.
  void check_solve_plan() {
    const SolvePlan& sp = p_.solve;
    if (!sp.present()) return;
    const SymbolMatrix& s = p_.symbol;
    const TaskGraph& tg = sp.tg;
    const Schedule& sc = sp.sched;
    const CommPlan& cm = p_.comm;
    const SolveIdLayout lay(s);

    // Shapes first: everything below indexes through these arrays.
    std::size_t before = rep_.diagnostics.size();
    if (tg.ntask() != lay.ntask()) {
      add(Code::kShapeMismatch,
          "solve task count " + std::to_string(tg.ntask()) +
              " does not match the dense solve id layout (" +
              std::to_string(lay.ntask()) + " items)");
      return;
    }
    const idx_t ntask = tg.ntask();
    if (tg.inputs.size() != uz(ntask) || tg.prec.size() != uz(ntask))
      add(Code::kShapeMismatch,
          "solve task graph edge arrays do not match the task count");
    if (sc.nprocs != p_.sched.nprocs)
      add(Code::kScheduleInvalid,
          "solve schedule nprocs does not match the factorization schedule");
    if (sc.proc.size() != uz(ntask) ||
        static_cast<idx_t>(sc.kp.size()) != sc.nprocs)
      add(Code::kShapeMismatch,
          "solve schedule arrays do not match the solve task count");
    if (rep_.diagnostics.size() != before) return;
    for (idx_t t = 0; t < ntask; ++t) {
      if (sc.proc[uz(t)] < 0 || sc.proc[uz(t)] >= sc.nprocs)
        add(Code::kScheduleInvalid, "solve task mapped to a rank out of range",
            t);
      for (const auto& c : tg.inputs[uz(t)])
        if (c.source < 0 || c.source >= ntask)
          add(Code::kShapeMismatch, "solve input edge source out of range", t);
      for (const auto& c : tg.prec[uz(t)])
        if (c.source < 0 || c.source >= ntask)
          add(Code::kShapeMismatch,
              "solve precedence edge source out of range", t);
    }
    if (rep_.diagnostics.size() != before) return;

    // Dense id layout realization: every slot holds the item the executor
    // will decode from it.
    for (idx_t k = 0; k < s.ncblk; ++k) {
      for (const idx_t id : {lay.fdiag(k), lay.bdiag(k)}) {
        const Task& t = tg.tasks[uz(id)];
        if (t.type != TaskType::kFactor || t.cblk != k || t.blok != kNone)
          add(Code::kTaskInvalid,
              "solve diag slot does not hold the trsv item of its cblk", id,
              k);
      }
    }
    for (idx_t b = 0; b < s.nblok(); ++b) {
      const idx_t owning = s.bloks[uz(b)].lcblknm;
      for (const idx_t id : {lay.fupd(b), lay.bupd(b)}) {
        const Task& t = tg.tasks[uz(id)];
        if (t.type != TaskType::kBdiv || t.blok != b || t.cblk != owning)
          add(Code::kTaskInvalid,
              "solve update slot does not hold the gemv item of its blok", id,
              owning, b);
      }
    }
    if (rep_.diagnostics.size() != before) return;

    // K_p orders partition the solve items; fills spos (position in K_p).
    std::vector<idx_t> spos(uz(ntask), kNone);
    for (idx_t p = 0; p < sc.nprocs; ++p) {
      const auto& order = sc.kp[uz(p)];
      for (std::size_t i = 0; i < order.size(); ++i) {
        const idx_t t = order[i];
        if (t < 0 || t >= ntask) {
          add(Code::kScheduleInvalid, "solve K_p task id out of range", kNone,
              kNone, kNone, p);
          return;
        }
        if (spos[uz(t)] != kNone) {
          add(Code::kScheduleInvalid,
              "solve task appears twice in the K_p orders", t, kNone, kNone,
              p);
          continue;
        }
        spos[uz(t)] = static_cast<idx_t>(i);
        if (sc.proc[uz(t)] != p)
          add(Code::kScheduleInvalid,
              "solve task in K_p of rank " + std::to_string(p) +
                  " but mapped to rank " + std::to_string(sc.proc[uz(t)]),
              t, kNone, kNone, p);
      }
    }
    for (idx_t t = 0; t < ntask; ++t)
      if (spos[uz(t)] == kNone)
        add(Code::kScheduleInvalid, "solve task missing from the K_p orders",
            t, kNone, kNone, sc.proc[uz(t)]);
    if (rep_.diagnostics.size() != before) return;

    // Ownership: the executor sends/receives against the comm plan's solve
    // tables, so the solve schedule must place every item exactly where
    // those tables say its data lives.
    for (idx_t k = 0; k < s.ncblk; ++k) {
      const idx_t owner = cm.diag_owner[uz(k)];
      for (const idx_t id : {lay.fdiag(k), lay.bdiag(k)})
        if (sc.proc[uz(id)] != owner)
          add(Code::kOwnerMismatch,
              "solve diag item scheduled on rank " +
                  std::to_string(sc.proc[uz(id)]) +
                  " but diag_owner says rank " + std::to_string(owner),
              id, k, kNone, sc.proc[uz(id)]);
      const idx_t diag_blok = s.cblks[uz(k)].bloknum;
      for (const idx_t id : {lay.fupd(diag_blok), lay.bupd(diag_blok)})
        if (sc.proc[uz(id)] != owner)
          add(Code::kOwnerMismatch,
              "solve placeholder item of a diagonal blok scheduled off its "
              "diag owner",
              id, k, diag_blok, sc.proc[uz(id)]);
      for (idx_t b = diag_blok + 1; b < s.cblks[uz(k) + 1].bloknum; ++b)
        for (const idx_t id : {lay.fupd(b), lay.bupd(b)})
          if (sc.proc[uz(id)] != cm.blok_owner[uz(b)])
            add(Code::kOwnerMismatch,
                "solve update item scheduled on rank " +
                    std::to_string(sc.proc[uz(id)]) +
                    " but blok_owner says rank " +
                    std::to_string(cm.blok_owner[uz(b)]),
                id, k, b, sc.proc[uz(id)]);
    }

    // Edge re-derivation: rebuild the solve graph from (symbol, factor tg,
    // factor schedule) and diff every contribution/precedence list — the
    // same guarantee check_graph_edges gives the factorization.
    const SolvePlan rebuilt =
        build_solve_plan(s, p_.tg, p_.sched, p_.options.model);
    std::vector<std::pair<idx_t, double>> ea, eb;
    auto diff_edges = [&](const std::vector<Contribution>& plan_edges,
                          const std::vector<Contribution>& want_edges, idx_t t,
                          const char* what) {
      if (plan_edges.empty() && want_edges.empty()) return;
      ea.clear();
      eb.clear();
      for (const auto& c : plan_edges) ea.emplace_back(c.source, c.entries);
      for (const auto& c : want_edges) eb.emplace_back(c.source, c.entries);
      std::sort(ea.begin(), ea.end());
      std::sort(eb.begin(), eb.end());
      if (ea == eb) return;
      std::size_t i = 0, j = 0;
      while (i < ea.size() && j < eb.size() && ea[i] == eb[j]) ++i, ++j;
      if (j < eb.size() && (i >= ea.size() || eb[j] < ea[i]))
        add(Code::kDependencyMissing,
            std::string("solve ") + what + " edge from item " +
                std::to_string(eb[j].first) + " is absent",
            t, tg.tasks[uz(t)].cblk);
      else
        add(Code::kDependencySpurious,
            std::string("solve ") + what + " edge from item " +
                std::to_string(ea[i].first) +
                " is not derivable from the block structure",
            t, tg.tasks[uz(t)].cblk);
    };
    for (idx_t t = 0; t < ntask; ++t) {
      diff_edges(tg.inputs[uz(t)], rebuilt.tg.inputs[uz(t)], t,
                 "contribution");
      diff_edges(tg.prec[uz(t)], rebuilt.tg.prec[uz(t)], t, "precedence");
    }

    // Per-tag send/receive completeness, derived from the solve schedule the
    // executor will actually run: every (kSolve, phase, obj) message it
    // sends must have a blocking receive in the comm tables and vice versa.
    std::vector<idx_t> want;
    auto diff_ranks = [&](const std::vector<idx_t>& table, idx_t k,
                          const char* what) {
      auto have = table;
      std::sort(have.begin(), have.end());
      std::sort(want.begin(), want.end());
      want.erase(std::unique(want.begin(), want.end()), want.end());
      if (have == want) return;
      std::vector<idx_t> missing, extra;
      std::set_difference(want.begin(), want.end(), have.begin(), have.end(),
                          std::back_inserter(missing));
      std::set_difference(have.begin(), have.end(), want.begin(), want.end(),
                          std::back_inserter(extra));
      if (!missing.empty())
        add(Code::kStarvedReceive,
            std::string(what) + " misses rank " +
                std::to_string(missing.front()) +
                ": a remote solve item would block on a segment never sent",
            kNone, k, kNone, missing.front());
      if (!extra.empty())
        add(Code::kOrphanSend,
            std::string(what) + " lists rank " + std::to_string(extra.front()) +
                ": that solve segment has no matching receive",
            kNone, k, kNone, extra.front());
    };
    auto diff_bloks = [&](const std::vector<idx_t>& table, idx_t k,
                          const char* what) {
      auto have = table;
      std::sort(have.begin(), have.end());
      std::sort(want.begin(), want.end());
      if (have == want) return;
      std::vector<idx_t> missing, extra;
      std::set_difference(want.begin(), want.end(), have.begin(), have.end(),
                          std::back_inserter(missing));
      std::set_difference(have.begin(), have.end(), want.begin(), want.end(),
                          std::back_inserter(extra));
      if (!missing.empty())
        add(Code::kOrphanSend,
            std::string(what) + " misses blok " +
                std::to_string(missing.front()) +
                ": its remote solve contribution has no matching receive",
            kNone, k, missing.front());
      if (!extra.empty())
        add(Code::kStarvedReceive,
            std::string(what) + " lists blok " + std::to_string(extra.front()) +
                ": the diag owner would block on a contribution never sent",
            kNone, k, extra.front());
    };
    // The facing direction first: forward contributions into diag k come
    // from remote bloks facing k, and those same bloks' backward items are
    // the consumers of x_k (the xseg fan-out).
    std::vector<std::vector<idx_t>> fwd(uz(s.ncblk));
    std::vector<std::vector<idx_t>> xdest(uz(s.ncblk));
    for (idx_t k = 0; k < s.ncblk; ++k)
      for (idx_t b = s.cblks[uz(k)].bloknum + 1;
           b < s.cblks[uz(k) + 1].bloknum; ++b) {
        const idx_t target = s.bloks[uz(b)].fcblknm;
        const idx_t towner = sc.proc[uz(lay.fdiag(target))];
        if (sc.proc[uz(lay.fupd(b))] != towner)
          fwd[uz(target)].push_back(b);
        if (sc.proc[uz(lay.bupd(b))] != towner)
          xdest[uz(target)].push_back(sc.proc[uz(lay.bupd(b))]);
      }
    for (idx_t k = 0; k < s.ncblk; ++k) {
      const idx_t owner = sc.proc[uz(lay.fdiag(k))];
      const idx_t first = s.cblks[uz(k)].bloknum + 1;
      const idx_t last = s.cblks[uz(k) + 1].bloknum;
      // yseg fan-out: one send per distinct remote rank owning a blok of k.
      want.clear();
      for (idx_t b = first; b < last; ++b)
        if (sc.proc[uz(lay.fupd(b))] != owner)
          want.push_back(sc.proc[uz(lay.fupd(b))]);
      diff_ranks(cm.yseg_dests[uz(k)], k, "yseg_dests");
      // xseg fan-out: remote ranks whose backward items read x_k.
      want = std::move(xdest[uz(k)]);
      diff_ranks(cm.xseg_dests[uz(k)], k, "xseg_dests");
      // Backward contributions into y_k come from remote bloks of k itself.
      want.clear();
      for (idx_t b = first; b < last; ++b)
        if (sc.proc[uz(lay.bupd(b))] != owner) want.push_back(b);
      diff_bloks(cm.bwd_remote_bloks[uz(k)], k, "bwd_remote_bloks");
      // Forward contributions into diag k come from remote bloks facing k.
      want = std::move(fwd[uz(k)]);
      diff_bloks(cm.fwd_remote_bloks[uz(k)], k, "fwd_remote_bloks");
    }

    // Same-rank ordering (race check) + happens-before/deadlock proof.  The
    // executor's blocking receives are exactly the cross-rank dependency
    // edges (yseg/xseg segments and fwd/bwd contributions), so the solve
    // deadlocks iff per-rank K_p sequencing plus those edges has a cycle.
    const std::size_t n = uz(ntask);
    std::vector<std::vector<idx_t>> succ(n);
    std::vector<idx_t> indeg(n, 0);
    auto edge = [&](idx_t a, idx_t b) {
      succ[uz(a)].push_back(b);
      ++indeg[uz(b)];
    };
    for (const auto& order : sc.kp)
      for (std::size_t i = 1; i < order.size(); ++i)
        edge(order[i - 1], order[i]);
    auto wire = [&](idx_t src, idx_t dst, const char* what) {
      if (sc.proc[uz(src)] != sc.proc[uz(dst)]) {
        edge(src, dst);
        return;
      }
      if (spos[uz(src)] >= spos[uz(dst)])
        add(Code::kUnorderedWrite,
            std::string("solve ") + what + " producer item " +
                std::to_string(src) +
                " is scheduled at or after its consumer on rank " +
                std::to_string(sc.proc[uz(dst)]),
            dst, tg.tasks[uz(dst)].cblk, tg.tasks[uz(dst)].blok,
            sc.proc[uz(dst)]);
    };
    for (idx_t t = 0; t < ntask; ++t) {
      for (const auto& c : tg.inputs[uz(t)]) wire(c.source, t, "contribution");
      for (const auto& c : tg.prec[uz(t)]) wire(c.source, t, "precedence");
    }
    std::vector<idx_t> stack;
    for (std::size_t t = 0; t < n; ++t)
      if (indeg[t] == 0) stack.push_back(static_cast<idx_t>(t));
    std::size_t seen = 0;
    while (!stack.empty()) {
      const idx_t t = stack.back();
      stack.pop_back();
      ++seen;
      for (const idx_t nxt : succ[uz(t)])
        if (--indeg[uz(nxt)] == 0) stack.push_back(nxt);
    }
    if (seen != n) {
      idx_t witness = kNone;
      for (std::size_t t = 0; t < n; ++t)
        if (indeg[t] > 0) { witness = static_cast<idx_t>(t); break; }
      add(Code::kHappensBeforeCycle,
          std::to_string(n - seen) +
              " solve item(s) wait on a cross-rank cycle: the scheduled "
              "solve's blocking receives can never all complete",
          witness, witness != kNone ? tg.tasks[uz(witness)].cblk : kNone,
          kNone, witness != kNone ? sc.proc[uz(witness)] : kNone);
    }
  }

  void check_stats() {
    const AnalysisStats& st = p_.stats;
    if (st.ncblk != p_.symbol.ncblk || st.nblok != p_.symbol.nblok() ||
        st.ntask != p_.tg.ntask())
      add(Code::kStatsStale,
          "summary stats disagree with the structures (cosmetic: the runtime "
          "never reads them)",
          kNone, kNone, kNone, kNone, Severity::kWarning);
  }

  // ------------------------------------------- phase 6: AUB memory replay --
  // Walk each rank's K_p exactly the way FaninSolver does: a task first
  // gathers its expect_aub messages (transient += expect * region), its
  // scatter lazily allocates one AUB buffer per remote target, and its
  // flush frees a buffer on the final (or partial-chunk) send.  The running
  // maximum reproduces the runtime's aub_peak_bytes / sizeof(T) per rank.
  big_t region_entries(idx_t sigma) const {
    const Task& t = p_.tg.tasks[uz(sigma)];
    const auto& ck = p_.symbol.cblks[uz(t.cblk)];
    switch (t.type) {
      case TaskType::kComp1d:
        return static_cast<big_t>(ck.width() + p_.symbol.cblk_below_rows(t.cblk)) *
               ck.width();
      case TaskType::kFactor:
        return static_cast<big_t>(ck.width()) * ck.width();
      case TaskType::kBdiv:
        return static_cast<big_t>(p_.symbol.bloks[uz(t.blok)].nrows()) *
               ck.width();
      default:
        return 0;  // a BMOD can never be an AUB target (phase 4 verified)
    }
  }

  void replay_memory() {
    const Schedule& sc = p_.sched;
    const idx_t chunk = p_.comm.partial_chunk;
    rep_.rank_peak_aub_entries.assign(uz(sc.nprocs), 0);
    for (idx_t p = 0; p < sc.nprocs; ++p) {
      std::unordered_map<idx_t, idx_t> initial, remaining;
      for (const idx_t t : sc.kp[uz(p)])
        for (const idx_t sigma : p_.comm.aub_after[uz(t)]) ++initial[sigma];
      remaining = initial;
      std::unordered_map<idx_t, big_t> live;
      big_t live_total = 0, peak = 0;
      for (const idx_t t : sc.kp[uz(p)]) {
        const idx_t expect = p_.comm.expect_aub[uz(t)];
        if (expect > 0)
          peak = std::max(peak, live_total + static_cast<big_t>(expect) *
                                                region_entries(t));
        for (const idx_t sigma : p_.comm.aub_after[uz(t)]) {
          if (!live.count(sigma)) {
            const big_t re = region_entries(sigma);
            live[sigma] = re;
            live_total += re;
            peak = std::max(peak, live_total);
          }
        }
        for (const idx_t sigma : p_.comm.aub_after[uz(t)]) {
          auto it = remaining.find(sigma);
          if (it == remaining.end() || it->second <= 0) continue;
          --it->second;
          const idx_t done = initial.at(sigma) - it->second;
          const bool final_send = it->second == 0;
          const bool partial_send =
              !final_send && chunk > 0 && done % chunk == 0;
          if (!final_send && !partial_send) continue;
          auto buf = live.find(sigma);
          if (buf != live.end()) {
            live_total -= buf->second;
            live.erase(buf);
          }
        }
      }
      rep_.rank_peak_aub_entries[uz(p)] = peak;
    }
  }
};

} // namespace

Report check_plan(const AnalysisPlan& plan, const VerifyOptions& opt) {
  return Checker(plan, opt).run();
}

void require_valid(const AnalysisPlan& plan, const std::string& context) {
  VerifyOptions opt;
  const Report rep = check_plan(plan, opt);
  if (!rep.ok())
    throw Error(context + ": plan failed static verification — " +
                rep.summary());
}

MemoryBound static_memory_bound(const AnalysisPlan& plan) {
  MemoryBound b;
  // The struct-containment pass is the expensive one and contributes
  // nothing to the memory accounting; the shape/task/schedule checks that
  // gate the AUB replay still run.
  VerifyOptions opt;
  opt.check_struct = false;
  opt.check_memory = true;
  const Report rep = check_plan(plan, opt);
  for (const big_t e : rep.rank_peak_aub_entries) b.aub_peak_entries += e;
  b.exact = !rep.rank_peak_aub_entries.empty();
  // Factor storage: every stored block entry (incl. amalgamation fill)
  // lives on exactly one rank, plus one diagonal entry per column.
  b.factor_entries = plan.symbol.nnz_blocks() +
                     static_cast<big_t>(plan.fingerprint.n);
  // NumericFactor's permuted copy: off-diagonal values + diagonal.
  b.matrix_entries = plan.fingerprint.nnz +
                     static_cast<big_t>(plan.fingerprint.n);
  return b;
}

} // namespace pastix::verify
