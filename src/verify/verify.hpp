#pragma once
//
// Static plan verification: prove an AnalysisPlan safe to execute *before*
// any numeric work starts.
//
// The whole parallel factorization is driven by precomputed state — the
// per-rank task orders K_p plus the fan-in communication plan — so every
// property that would be a nondeterministic hang or race in a dynamic
// solver is here a statically decidable property of the plan.  check_plan
// re-derives, from the block structure alone, everything the runtime will
// rely on and cross-checks the plan against it:
//
//   (a) symbolic soundness — the supernode partition tiles [0,n) exactly,
//       every off-diagonal blok fits inside its facing diagonal block,
//       struct(L) contains struct(PAP^t) and is closed under the block
//       updates the task graph will scatter;
//   (b) task-graph integrity — the COMP1D/FACTOR/BDIV/BMOD task list
//       matches the 1D/2D distribution decisions, the contribution and
//       precedence edges equal an independent re-enumeration, the graph is
//       acyclic, and every task is mapped onto one of its candidate ranks
//       (a BMOD onto the rank of its BDIV(i), which it reads locally);
//   (c) schedule safety — a happens-before construction over the K_p
//       orders plus the cross-rank message edges is acyclic (the blocking
//       receives cannot deadlock), every planned send has a consumer and
//       every expected receive a producer, and message tags cannot alias;
//   (d) block-level race freedom — no producer is ordered after its
//       consumer inside a rank's K_p (the static analogue of a data race
//       at block granularity);
//   (e) a static replay of the per-rank aggregated-update-block memory
//       accounting, reproducing the runtime's aub_peak_bytes exactly;
//   (f) when the plan carries a solve phase, the same guarantees for it —
//       the dense solve id layout is realized, the solve K_p orders
//       partition the items and agree with the comm plan's ownership
//       tables, the edges equal an independent re-derivation, every solve
//       segment/contribution send has a matching receive, and the solve's
//       happens-before graph is acyclic (scheduled solves cannot deadlock);
//   (g) when the schedule carries hybrid split points (DESIGN.md §14), the
//       relaxed execution is proven safe under ANY tail linearization
//       consistent with the precedence graph: tail computes are
//       dependency-closed, no two unordered tail computes write the same
//       block, no prefix receive waits on a tail producer, and the relaxed
//       compute/commit happens-before graph is acyclic.
//
// All checks are pattern-level: no matrix values, no threads, no comm.
// check_plan never throws — corrupt input yields diagnostics, not crashes —
// so it is safe to run on untrusted bytes straight out of plan_io.
//
#include <string>
#include <vector>

#include "core/analysis.hpp"

namespace pastix::verify {

/// Diagnostic classes, one per independent failure mode.  Stable names from
/// code_name() are part of the reporting contract (tests match on them).
enum class Code : unsigned char {
  kShapeMismatch,          ///< array sizes disagree with n / ncblk / nblok / ntask
  kPartitionGap,           ///< supernode partition leaves columns uncovered
  kPartitionOverlap,       ///< supernode partition covers a column twice
  kSymbolInvalid,          ///< block structure invariant broken
  kBlokOutsideFacing,      ///< blok row range leaks outside its facing cblk
  kStructMissing,          ///< struct(L) misses an entry of struct(PAP^t)
  kStructNotClosed,        ///< an update's target rows have no covering bloks
  kTaskInvalid,            ///< task fields out of range / wrong for its type
  kTaskMapInconsistent,    ///< cblk_task / blok_task disagree with the tasks
  kGraphCycle,             ///< dependency edges form a cycle
  kDependencyMissing,      ///< a required input/precedence edge is absent
  kDependencySpurious,     ///< an edge not derivable from the block structure
  kScheduleInvalid,        ///< K_p orders are not a partition of the tasks
  kTaskOutsideCandidates,  ///< task mapped off its candidate processor set
  kUnorderedWrite,         ///< static race: producer after consumer in K_p
  kHappensBeforeCycle,     ///< cross-rank waiting cycle: schedule can deadlock
  kAubCountMismatch,       ///< expect_aub / countdowns contradict the graph
  kOrphanSend,             ///< planned message that no receiver expects
  kStarvedReceive,         ///< expected message that no sender produces
  kOwnerMismatch,          ///< solve-phase ownership tables contradict K_p
  kTagCollision,           ///< two message streams alias one (kind, ids) tag
  kOptionsMismatch,        ///< plan contradicts the options it claims
  kStatsStale,             ///< summary stats disagree (warning: cosmetic)
  kSplitInvalid,           ///< hybrid split points malformed (count/bounds)
  kTailDependencyMissing,  ///< tail compute not ordered after a producer's commit
  kTailRace,               ///< a steal could race an unordered same-rank write
  kTailStarvedReceive,     ///< prefix receive fed by a tail task: can starve
  kTailHappensBeforeCycle, ///< relaxed compute/commit HB graph has a cycle
};

[[nodiscard]] const char* code_name(Code c);

enum class Severity : unsigned char { kWarning, kError };

/// One finding, with enough coordinates to locate it: the offending task
/// and/or block, and the rank whose execution would go wrong.
struct Diagnostic {
  Code code = Code::kShapeMismatch;
  Severity severity = Severity::kError;
  idx_t task = kNone;
  idx_t cblk = kNone;
  idx_t blok = kNone;
  idx_t rank = kNone;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

struct VerifyOptions {
  /// Stop collecting after this many diagnostics (the report is flagged
  /// truncated); a corrupt plan usually fails the same way many times.
  std::size_t max_diagnostics = 64;
  /// Check struct(L) ⊇ struct(PAP^t) and update closure — O(nnz·log b +
  /// Σ nblok(k)²), the most expensive part of the analysis-shaped checks.
  bool check_struct = true;
  /// Replay the per-rank AUB memory accounting (fills rank_peak_aub_entries).
  bool check_memory = true;
};

struct Report {
  std::vector<Diagnostic> diagnostics;
  /// Per rank: statically derived peak of live AUB entries (allocation
  /// granularity), mirroring FaninSolver's aub_peak_bytes / sizeof(T).
  /// Filled only when the plan is clean enough to replay.
  std::vector<big_t> rank_peak_aub_entries;
  bool truncated = false;  ///< hit max_diagnostics; more findings exist

  [[nodiscard]] bool ok() const;            ///< no error-severity findings
  [[nodiscard]] std::size_t errors() const;
  [[nodiscard]] std::size_t warnings() const;
  [[nodiscard]] bool has(Code c) const;
  [[nodiscard]] std::string summary() const;    ///< one line
  [[nodiscard]] std::string to_string() const;  ///< full listing
};

/// Run every check against `plan`.  Never throws: malformed plans come back
/// as diagnostics (shape errors gate the deeper checks that would need to
/// index into the broken arrays).
[[nodiscard]] Report check_plan(const AnalysisPlan& plan,
                                const VerifyOptions& opt = {});

/// Throw pastix::Error naming the first diagnostic if `plan` fails
/// verification; used by plan_io and the strict analyze mode.
void require_valid(const AnalysisPlan& plan, const std::string& context);

/// Static peak-memory bound of executing a plan — what an admission
/// controller charges a job against its budget *before* any allocation
/// happens.  The AUB component is the same per-rank buffer-lifecycle replay
/// check_plan runs (exact: it reproduces the runtime's aub_peak_bytes
/// bit-for-bit); the factor and matrix components are the allocate-once
/// storage sizes the plan's block structure dictates.
struct MemoryBound {
  big_t factor_entries = 0;    ///< block storage of L across all ranks
  big_t matrix_entries = 0;    ///< permuted matrix copy (values + diagonal)
  big_t aub_peak_entries = 0;  ///< Σ over ranks of the static AUB peak
  /// The AUB replay ran (plan structurally sound); false means the plan
  /// could not be replayed and aub_peak_entries is 0 — treat the plan as
  /// unadmittable.
  bool exact = false;

  /// Total bound in bytes for an element type of `elem_bytes`.
  [[nodiscard]] big_t total_bytes(std::size_t elem_bytes) const {
    return (factor_entries + matrix_entries + aub_peak_entries) *
           static_cast<big_t>(elem_bytes);
  }
};

/// Derive the static memory bound of `plan` (runs the cheap shape checks
/// plus the AUB replay; never throws — a broken plan yields exact=false).
[[nodiscard]] MemoryBound static_memory_bound(const AnalysisPlan& plan);

} // namespace pastix::verify
