#pragma once
//
// Static communication plan of the fan-in factorization and of the
// distributed triangular solves.
//
// Everything the runtime needs to know about messages — who expects how
// many aggregated update blocks, when an AUB becomes complete and must be
// sent, who needs a factored diagonal block or a solved panel — is fully
// determined by the symbol structure, the task graph and the schedule.
// Computing it up front is exactly what makes the solver "fully driven by
// the precomputed scheduling" (the paper's key design point).
//
#include "map/scheduler.hpp"
#include "symbolic/symbol.hpp"

namespace pastix {

struct CommPlan {
  /// Fan-in / Fan-Both spectrum ("if memory is a critical issue, an
  /// aggregated update block can be sent with partial aggregation to free
  /// memory space; this is close to the Fan-Both scheme", Section 2):
  /// a sender flushes its AUB for a target every `partial_chunk` local
  /// contributions instead of only once at the end.  0 = total local
  /// aggregation (pure fan-in, the default).  The message counts below
  /// already account for the chunking, so the solver stays fully static.
  idx_t partial_chunk = 0;

  // ---- Factorization ----
  /// Per task: number of AUB messages to receive before starting.
  std::vector<idx_t> expect_aub;
  /// Per task: remote target tasks whose AUB countdown this task decrements
  /// when it finishes (deduplicated).
  std::vector<std::vector<idx_t>> aub_after;
  /// Per target task sigma owned by proc(sigma): initial countdown value for
  /// each contributing remote proc, as (source proc, #source tasks) pairs.
  std::vector<std::vector<std::pair<idx_t, idx_t>>> aub_countdown;
  /// Per FACTOR task: remote procs that need (L_kk, D_k).
  std::vector<std::vector<idx_t>> diag_dests;
  /// Per BDIV task: remote procs that need the scaled panel W_j = L_jk D_k.
  std::vector<std::vector<idx_t>> panel_dests;

  // ---- Triangular solves ----
  /// Per cblk: owner of the diagonal block (where y_k / x_k live).
  std::vector<idx_t> diag_owner;
  /// Per blok: owner (the proc holding this factor block).
  std::vector<idx_t> blok_owner;
  /// Per cblk k: bloks facing k whose owner != diag_owner[k] (forward solve
  /// contributions that arrive as messages).
  std::vector<std::vector<idx_t>> fwd_remote_bloks;
  /// Per cblk k: off-diagonal bloks of k whose owner != diag_owner[k]
  /// (backward solve contributions that arrive as messages).
  std::vector<std::vector<idx_t>> bwd_remote_bloks;
  /// Per cblk k: remote procs owning bloks *of* k (need y_k in forward).
  std::vector<std::vector<idx_t>> yseg_dests;
  /// Per cblk k: remote procs owning bloks *facing* k (need x_k in backward).
  std::vector<std::vector<idx_t>> xseg_dests;
};

CommPlan build_comm_plan(const SymbolMatrix& s, const TaskGraph& tg,
                         const Schedule& sched, idx_t partial_chunk = 0);

/// Messages a sender with `count` contributing tasks emits for one target.
inline idx_t aub_messages_for(idx_t count, idx_t partial_chunk) {
  if (partial_chunk <= 0) return 1;
  return (count + partial_chunk - 1) / partial_chunk;
}

} // namespace pastix
