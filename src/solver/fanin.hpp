#pragma once
//
// Distributed supernodal fan-in LDL^t factorization with total local
// aggregation, fully driven by the precomputed static schedule — the
// parallel algorithm of Fig. 1 of the paper, plus the distributed forward /
// diagonal / backward triangular solves.
//
// Task kernels:
//   COMP1D(k)   : receive AUBs for cblk k, factor the diagonal block,
//                 panel-solve the sub-diagonal rows, and compute the
//                 contributions C = L_[j] (D L_j^t) for every facing blok j.
//   FACTOR(k)   : receive AUBs for the diagonal block, factor it, send
//                 (L_kk, D_k) to the owners of the off-diagonal bloks.
//   BDIV(j,k)   : receive (L_kk, D_k) and the blok's AUBs, panel-solve,
//                 send the scaled panel W_j = L_jk D_k to the procs owning
//                 bloks [j..] of k.
//   BMOD(i,j,k) : receive W_j (once per proc, cached), compute
//                 C_i = L_ik W_j^t, apply locally or aggregate into an AUB.
//
// Storage: a 1D cblk lives as one dense trapezoid on its owner; a 2D cblk
// is scattered blok-by-blok across the owners chosen by the scheduler.
//
#include <memory>
#include <unordered_map>

#include "dkernel/blocked_factor.hpp"
#include "model/cost_model.hpp"
#include "rt/comm.hpp"
#include "rt/resilient.hpp"
#include "solver/comm_plan.hpp"
#include "solver/hybrid_pool.hpp"
#include "solver/solve_model.hpp"
#include "sparse/sym_sparse.hpp"
#include "support/checksum.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace pastix {

/// Which symmetric factorization the numerical phase computes.
/// The paper's PaStiX computes LDL^t (to cover complex symmetric systems);
/// LL^t is provided as well — it is what the PSPASES baseline computes, so
/// the two solvers can be cross-validated factor-by-factor.
enum class FactorKind : unsigned char { kLdlt, kLlt };

/// Hybrid static/dynamic execution (DESIGN.md §14): run each rank's K_p as
/// a statically ordered prefix plus a dynamic tail executed by a small
/// intra-rank work-stealing pool.  Tail task *computations* run out of
/// order on the pool; all shared side effects (contribution scatters, AUB
/// countdowns and sends, cache inserts) are committed by the rank thread
/// strictly in K_p order, so the factor stays bitwise identical to the
/// fully static run for every steal timing.  Kept trivially copyable: the
/// struct is raw-serialized inside SolverOptions by plan_io.
struct HybridOptions {
  bool enabled = false;
  /// Fraction of each rank's predicted work moved into the dynamic tail
  /// (analysis feeds this to compute_split; the boundary fixpoint may
  /// shrink tails below it).
  double tail_fraction = 0.25;
  /// Work-stealing pool threads per rank (in addition to the rank thread,
  /// which commits and inlines the next uncommitted task when idle).
  idx_t pool_size = 2;
  /// Seeds the per-worker steal order — a pure chaos knob: any seed must
  /// produce the same factor bits (the determinism sweep's axis).
  std::uint64_t steal_seed = 0x57ea1;
};

/// Runtime knobs of the numerical solver.
struct FaninOptions {
  FactorKind kind = FactorKind::kLdlt;
  /// 0 = total local aggregation (pure fan-in).  k > 0 = Fan-Both-style
  /// partial aggregation: flush each AUB every k local contributions,
  /// trading messages for peak aggregation memory.
  idx_t partial_chunk = 0;
  /// Graceful degradation on indefinite / near-singular input: static pivot
  /// perturbation thresholds and breakdown recording (see dkernel/pivot.hpp).
  PivotOptions pivot;
  /// Static prefix + work-stealing tail execution (DESIGN.md §14).
  HybridOptions hybrid;
};

/// Per-rank memory footprint after a factorization.
struct RankMemoryStats {
  big_t factor_bytes = 0;    ///< owned factor blocks
  big_t aub_peak_bytes = 0;  ///< peak aggregated-update-block memory
};

/// Measured wall time per task type of one rank's last factorization
/// (indexed by TaskType).  Includes the receive waits of each task, so it
/// is a *model validation* signal only at P = 1 where no rank ever waits.
struct RankTaskTimes {
  double seconds[4] = {0, 0, 0, 0};
  idx_t count[4] = {0, 0, 0, 0};
};

template <class T>
class FaninSolver {
public:
  /// Structure-only constructor: allocates the per-rank factor storage
  /// (trapezoids / bloks, zero-filled) for an externally computed
  /// communication plan — typically the one owned by an AnalysisPlan, so
  /// many solvers can share a single plan.  Values must be supplied with
  /// refill() before factorize().  The solver keeps references to all of
  /// `s`, `tg`, `sched`, `plan` (and `solve`, when given) — keep them alive.
  /// `solve` is the scheduled solve-phase plan run_solve executes; pass
  /// null (or an absent plan) to have the solver derive its own lazily at
  /// the first solve.
  FaninSolver(const SymbolMatrix& s, const TaskGraph& tg, const Schedule& sched,
              const CommPlan& plan, const FaninOptions& fopt = {},
              const SolvePlan* solve = nullptr)
      : s_(s), tg_(tg), sched_(sched), kind_(fopt.kind), popt_(fopt.pivot),
        hybrid_(fopt.hybrid), plan_(plan),
        ranks_(static_cast<std::size_t>(sched.nprocs)) {
    PASTIX_CHECK(static_cast<idx_t>(plan.blok_owner.size()) == s.nblok(),
                 "comm plan / symbol mismatch");
    PASTIX_CHECK(plan.partial_chunk == fopt.partial_chunk,
                 "comm plan was built for a different partial_chunk");
    if (solve != nullptr && solve->present()) {
      PASTIX_CHECK(solve->sched.nprocs == sched.nprocs,
                   "solve plan / schedule processor count mismatch");
      solve_ = solve;
    }
    compute_stack_offsets();
    allocate_storage();
  }

  /// Convenience constructor: builds its own communication plan and fills
  /// the values of `a` (which must already be permuted consistently with
  /// `s` — use the ordering's permutation).
  FaninSolver(const SymSparse<T>& a, const SymbolMatrix& s, const TaskGraph& tg,
              const Schedule& sched, const FaninOptions& fopt = {})
      : s_(s), tg_(tg), sched_(sched), kind_(fopt.kind), popt_(fopt.pivot),
        hybrid_(fopt.hybrid),
        owned_plan_(std::make_unique<CommPlan>(
            build_comm_plan(s, tg, sched, fopt.partial_chunk))),
        plan_(*owned_plan_), ranks_(static_cast<std::size_t>(sched.nprocs)) {
    compute_stack_offsets();
    allocate_storage();
    refill(a);
  }

  /// Values-only refresh: scatter the entries of `a` (same pattern as the
  /// original fill, already permuted) into the allocated block storage,
  /// overwriting any previous values or factor, and rearm the pivot
  /// admission threshold.  Allocations, comm plan and schedule are reused —
  /// this is the numeric half of a refactorization.
  /// The matrix must outlive the solver's factorizations: crash recovery
  /// re-derives a rank's pristine state from it instead of serializing a
  /// full position-0 checkpoint (restore_pristine below).
  void refill(const SymSparse<T>& a) {
    PASTIX_CHECK(a.n() == s_.n, "matrix / symbol size mismatch");
    for (auto& r : ranks_) {
      for (auto& [k, store] : r.cblk_store)
        std::fill(store.begin(), store.end(), T{});
      for (auto& [b, store] : r.blok_store)
        std::fill(store.begin(), store.end(), T{});
    }
    scatter_values(a, kNone);
    refilled_from_ = &a;
    // Static pivot admission threshold: eps_rel relative to max|A| (a zero
    // matrix still gets a usable absolute floor).
    double anorm = 0;
    for (const T& v : a.diag) anorm = std::max(anorm, std::sqrt(abs2(v)));
    for (const T& v : a.val) anorm = std::max(anorm, std::sqrt(abs2(v)));
    pivot_threshold_ =
        popt_.perturb ? popt_.eps_rel * (anorm > 0 ? anorm : 1.0) : 0.0;
    status_ = FactorStatus{};
    filled_ = true;
    factored_ = false;
  }

  /// Run the parallel numerical factorization; returns wall seconds.  The
  /// structured outcome (perturbation counts, breakdown locations) is
  /// available from factor_status() afterwards — also when this throws.
  ///
  /// With resilience armed (set_resilience), rank crashes injected through
  /// Comm::fault_point are survived: the dead rank restarts from its last
  /// checkpoint and replays its K_p suffix; recovery() reports the cost.
  double factorize(rt::Comm& comm) {
    PASTIX_CHECK(comm.nprocs() == sched_.nprocs, "comm size mismatch");
    PASTIX_CHECK(filled_, "refill() must run before factorize()");
    init_countdowns();
    status_ = FactorStatus{};
    recovery_ = rt::RecoveryReport{};
    // Fresh seal state (DESIGN.md §15): every blok starts unsealed, its
    // commit-time CRC32C is recorded when its finalizing task commits.
    blok_sealed_.assign(static_cast<std::size_t>(s_.nblok()), 0);
    blok_crc_.assign(static_cast<std::size_t>(s_.nblok()), 0);
    scrubbed_ = false;
    sdc_rng_.assign(ranks_.size(), 0);
    std::uint64_t seed_state = sdc_.seed ^ 0xfac70fULL;
    const std::uint64_t base = splitmix64(seed_state);
    for (std::size_t r = 0; r < sdc_rng_.size(); ++r)
      sdc_rng_[r] = base + 0x9e3779b97f4a7c15ULL * (r + 1);
    for (auto& r : ranks_) {
      r.status = FactorStatus{};
      r.status.max_recorded = popt_.max_recorded;
      r.scrubbed_bloks = 0;
      r.sdc_flips = 0;
    }
    Timer timer;
    try {
      if (ropt_.enabled && checkpoints_ != nullptr) {
        recovery_ = rt::run_ranks_resilient(
            comm, sched_.nprocs,
            [&](int rank, bool restarted) {
              run_factorization(comm, static_cast<idx_t>(rank), restarted);
            },
            *checkpoints_, ropt_);
      } else {
        rt::run_ranks(comm, sched_.nprocs, [&](int rank) {
          run_factorization(comm, static_cast<idx_t>(rank),
                            /*restarted=*/false);
        });
      }
    } catch (...) {
      collect_status();
      throw;
    }
    collect_status();
    factored_ = true;
    return timer.seconds();
  }

  /// Arm (or disarm, with opt.enabled = false or store = nullptr) crash
  /// recovery for subsequent factorize() calls.  The store holds the
  /// per-rank checkpoints; it must outlive the solver's factorizations.
  void set_resilience(const rt::ResilienceOptions& opt,
                      rt::Checkpoint* store) {
    ropt_ = opt;
    checkpoints_ = store;
    integrity_ = opt.integrity;
  }

  /// What the last factorize() spent on crash recovery (zeroed when no
  /// restart happened or resilience was off).
  [[nodiscard]] const rt::RecoveryReport& recovery() const {
    return recovery_;
  }

  /// Standalone toggle for the factor-integrity layer (DESIGN.md §15):
  /// per-blok commit CRCs plus the checkpoint-boundary / pre-solve scrubs.
  /// set_resilience() also sets this from ResilienceOptions::integrity;
  /// call afterwards to override (the overhead bench's baseline axis).
  void set_integrity(bool on) { integrity_ = on; }

  /// Arm seeded silent-data-corruption injection (factor-block bit flips
  /// between checkpoints; message/checkpoint flips are armed on the Comm
  /// and Checkpoint directly).  Chaos testing only.
  void set_sdc(const rt::SdcInjection& s) { sdc_ = s; }

  /// Verify every committed (sealed) factor block against the CRC32C
  /// recorded at its commit; throws rt::IntegrityError naming the first
  /// corrupt block.  Returns the number of blocks verified.  solve_panel()
  /// runs this automatically once per factorization; call it directly for
  /// an on-demand sweep (`solve_file --scrub`).
  std::uint64_t scrub() {
    PASTIX_CHECK(factored_, "no factor yet");
    std::uint64_t n = 0;
    for (idx_t b = 0; b < s_.nblok(); ++b) {
      if (blok_sealed_[static_cast<std::size_t>(b)] == 0) continue;
      verify_blok(b, entry_owner(cblk_of_blok(b), b));
      ++n;
    }
    if (!ranks_.empty()) ranks_[0].scrubbed_bloks += n;
    return n;
  }

  /// Factor blocks verified by all scrubs of the last factorize()/solve().
  [[nodiscard]] std::uint64_t scrubbed_bloks() const {
    std::uint64_t n = 0;
    for (const auto& r : ranks_) n += r.scrubbed_bloks;
    return n;
  }

  /// Factor-block bit flips injected by the armed SdcInjection so far.
  [[nodiscard]] std::uint64_t sdc_factor_flips() const {
    std::uint64_t n = 0;
    for (const auto& r : ranks_) n += r.sdc_flips;
    return n;
  }

  /// Order-independent FNV-1a digest of the full factor (every blok's
  /// values walked in symbol order, independent of which rank owns what) —
  /// the bitwise-identity check of the recovery tests: a recovered factor
  /// must hash equal to a fault-free run's.
  [[nodiscard]] std::uint64_t factor_digest() const {
    PASTIX_CHECK(factored_, "no factor yet");
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](const void* p, std::size_t nbytes) {
      const auto* c = static_cast<const unsigned char*>(p);
      for (std::size_t i = 0; i < nbytes; ++i)
        h = (h ^ c[i]) * 1099511628211ULL;
    };
    for (idx_t b = 0; b < s_.nblok(); ++b) {
      const idx_t k = cblk_of_blok(b);
      const idx_t w = s_.cblks[static_cast<std::size_t>(k)].width();
      const idx_t rows = s_.bloks[static_cast<std::size_t>(b)].nrows();
      idx_t ld = 0;
      const T* p = blok_ptr_const(b, &ld);
      for (idx_t j = 0; j < w; ++j)
        mix(p + static_cast<std::size_t>(j) * ld,
            static_cast<std::size_t>(rows) * sizeof(T));
    }
    return h;
  }

  /// Distributed triangular solves: returns x with A x = b (permuted frame).
  std::vector<T> solve(rt::Comm& comm, const std::vector<T>& b) {
    std::vector<T> x;
    solve(comm, b, x);
    return x;
  }

  /// Buffer-reusing variant: writes the solution into `x` (resized as
  /// needed), so batched solves do not re-allocate per right-hand side.
  void solve(rt::Comm& comm, const std::vector<T>& b, std::vector<T>& x) {
    PASTIX_CHECK(static_cast<idx_t>(b.size()) == s_.n, "rhs size mismatch");
    x.assign(b.size(), T{});
    solve_panel(comm, b.data(), x.data(), 1);
  }

  /// Multi-RHS panel solve: `b` and `x` are n x nrhs column-major panels
  /// (leading dimension n).  All right-hand sides move through one pass of
  /// the scheduled forward/diagonal/backward item lists, so the per-blok
  /// work runs on the BLAS-3 panel kernels (gemm/trsm) instead of nrhs
  /// gemv/trsv sweeps and every solve message carries the whole panel.
  /// nrhs == 1 executes the exact gemv/trsv path (bitwise identical to the
  /// single-vector solve the refinement drivers depend on).
  void solve_panel(rt::Comm& comm, const T* b, T* x, idx_t nrhs) {
    PASTIX_CHECK(factored_, "factorize() must run before solve()");
    PASTIX_CHECK(nrhs >= 1, "need at least one right-hand side");
    // One scrub per factorization before the factor is first *used*: the
    // time between the terminal factorization scrub and the solve is the
    // last window silent corruption could slip through (DESIGN.md §15).
    if (integrity_ && !scrubbed_) {
      scrub();
      scrubbed_ = true;
    }
    ensure_solve_plan();
    rt::run_ranks(comm, sched_.nprocs, [&](int rank) {
      run_solve(comm, static_cast<idx_t>(rank), b, x, nrhs);
    });
  }

  /// The scheduled solve-phase plan run_solve executes — the external one
  /// when the constructor got it, else the lazily self-built one (built on
  /// first use; call after a solve, or after ensure_solve_plan()).
  [[nodiscard]] const SolvePlan& solve_plan() {
    ensure_solve_plan();
    return *solve_;
  }

  /// Structured outcome of the last factorize() (merged across ranks).
  [[nodiscard]] const FactorStatus& factor_status() const { return status_; }

  /// Absolute pivot admission threshold used by factorize() (0 = hard fail).
  [[nodiscard]] double pivot_threshold() const { return pivot_threshold_; }

  /// Factor access for verification: L(i, j), i > j (unit diagonal implied).
  [[nodiscard]] T factor_entry(idx_t i, idx_t j) const {
    PASTIX_CHECK(factored_, "no factor yet");
    PASTIX_CHECK(i > j && i < s_.n && j >= 0, "want strict lower entry");
    const idx_t k = s_.col2cblk[static_cast<std::size_t>(j)];
    const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
    const idx_t bloks_first = ck.bloknum;
    const idx_t bloks_last = s_.cblks[static_cast<std::size_t>(k) + 1].bloknum;
    for (idx_t b = bloks_first; b < bloks_last; ++b) {
      const auto& blok = s_.bloks[static_cast<std::size_t>(b)];
      if (i < blok.frownum || i > blok.lrownum) continue;
      idx_t ld = 0;
      const T* ptr = blok_ptr_const(b, &ld);
      return ptr[(i - blok.frownum) +
                 static_cast<std::size_t>(j - ck.fcolnum) * ld];
    }
    return T{};  // structurally zero
  }

  /// D(j, j) of the factorization.
  [[nodiscard]] T diag_entry(idx_t j) const {
    PASTIX_CHECK(factored_, "no factor yet");
    const idx_t k = s_.col2cblk[static_cast<std::size_t>(j)];
    const idx_t b = s_.cblks[static_cast<std::size_t>(k)].bloknum;
    idx_t ld = 0;
    const T* ptr = blok_ptr_const(b, &ld);
    const idx_t o = j - s_.cblks[static_cast<std::size_t>(k)].fcolnum;
    return ptr[o + static_cast<std::size_t>(o) * ld];
  }

  [[nodiscard]] const CommPlan& plan() const { return plan_; }

  /// Memory footprint of rank p (valid once construction/factorization ran).
  [[nodiscard]] RankMemoryStats memory_stats(idx_t p) const {
    const Rank& r = ranks_[static_cast<std::size_t>(p)];
    RankMemoryStats ms;
    for (const auto& [k, store] : r.cblk_store)
      ms.factor_bytes += static_cast<big_t>(store.size()) * sizeof(T);
    for (const auto& [b, store] : r.blok_store)
      ms.factor_bytes += static_cast<big_t>(store.size()) * sizeof(T);
    ms.aub_peak_bytes = r.aub_peak_bytes;
    return ms;
  }

  /// Measured per-task-type wall times of rank p's last factorization.
  [[nodiscard]] const RankTaskTimes& task_times(idx_t p) const {
    return ranks_[static_cast<std::size_t>(p)].task_times;
  }

  /// Attach (or detach, with nullptr) a runtime event recorder.  Call only
  /// while no factorize()/solve() is running.  With no recorder — or a
  /// disabled one — every instrumentation site is a single branch.
  void set_tracer(rt::TraceRecorder* tracer) { tracer_ = tracer; }

  /// Trace lanes per rank the hybrid tail pool needs: size the
  /// TraceRecorder with TraceRecorder(nprocs, worker_lanes()) so pool
  /// workers get private lanes (single-writer discipline).  0 when hybrid
  /// execution cannot run.
  [[nodiscard]] int worker_lanes() const {
    if (!hybrid_.enabled || sched_.split.empty() || !sched_.hybrid()) return 0;
    return static_cast<int>(hybrid_.pool_size < 1 ? 1 : hybrid_.pool_size);
  }

private:
  // ---------------------------------------------------------------- layout --
  bool is_1d(idx_t k) const {
    return tg_.tasks[static_cast<std::size_t>(
                         tg_.cblk_task[static_cast<std::size_t>(k)])]
               .type == TaskType::kComp1d;
  }
  idx_t cblk_of_blok(idx_t b) const {
    return s_.bloks[static_cast<std::size_t>(b)].lcblknm;
  }
  idx_t stack_rows(idx_t k) const {
    return s_.cblks[static_cast<std::size_t>(k)].width() + s_.cblk_below_rows(k);
  }

  void compute_stack_offsets() {
    stack_off_.assign(static_cast<std::size_t>(s_.nblok()), 0);
    for (idx_t k = 0; k < s_.ncblk; ++k) {
      idx_t off = 0;
      for (idx_t b = s_.cblks[static_cast<std::size_t>(k)].bloknum;
           b < s_.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b) {
        stack_off_[static_cast<std::size_t>(b)] = off;
        off += s_.bloks[static_cast<std::size_t>(b)].nrows();
      }
    }
  }

  /// Allocate-once solve scratch of one rank, reused across every solve —
  /// the working panel, the contribution buffer and the received-segment
  /// slots keep their capacity, so a batched solve (refinement loop,
  /// solve_many) allocates on the first call only.  `epoch` invalidates the
  /// segment slots without freeing them: a slot is live for the current
  /// solve iff its epoch matches.
  struct SolveScratch {
    std::vector<T> y;                      ///< n x nrhs working panel
    std::vector<T> tmp;                    ///< contribution / packing buffer
    std::vector<std::vector<T>> yseg;      ///< received y_k panels, per cblk
    std::vector<std::vector<T>> xseg;      ///< received x_k panels, per cblk
    std::vector<std::uint32_t> yseg_epoch, xseg_epoch;
    std::uint32_t epoch = 0;
  };

  struct Rank {
    std::unordered_map<idx_t, std::vector<T>> cblk_store;  ///< 1D trapezoids
    std::unordered_map<idx_t, std::vector<T>> blok_store;  ///< 2D bloks
    std::unordered_map<idx_t, std::vector<T>> aub;         ///< per target task
    std::unordered_map<idx_t, idx_t> aub_remaining;        ///< send countdowns
    std::unordered_map<idx_t, idx_t> aub_initial;          ///< initial counts
    std::unordered_map<idx_t, std::vector<T>> diag_cache;  ///< cblk -> (L,D)
    std::unordered_map<idx_t, std::vector<T>> panel_cache; ///< blok -> W
    SolveScratch solve;        ///< triangular-solve working state
    big_t aub_bytes_now = 0;   ///< live AUB memory (partial-aggregation knob)
    big_t aub_peak_bytes = 0;
    RankTaskTimes task_times;  ///< measured per-task-type wall times
    FactorStatus status;       ///< this rank's pivot/breakdown record
    std::uint64_t scrubbed_bloks = 0;  ///< factor blocks this rank verified
    std::uint64_t sdc_flips = 0;       ///< injected factor bit flips
  };

  /// Pointer to the top-left of blok b inside its owner's storage.
  T* blok_ptr(idx_t b, idx_t* ld) {
    const idx_t k = cblk_of_blok(b);
    Rank& r = ranks_[static_cast<std::size_t>(
        plan_.blok_owner[static_cast<std::size_t>(b)])];
    if (is_1d(k)) {
      *ld = stack_rows(k);
      return r.cblk_store.at(k).data() + stack_off_[static_cast<std::size_t>(b)];
    }
    *ld = s_.bloks[static_cast<std::size_t>(b)].nrows();
    return r.blok_store.at(b).data();
  }
  const T* blok_ptr_const(idx_t b, idx_t* ld) const {
    return const_cast<FaninSolver*>(this)->blok_ptr(b, ld);
  }

  /// One-time structure-driven allocation of the per-rank factor storage
  /// (zero-filled).  Values arrive separately via refill().
  void allocate_storage() {
    for (idx_t k = 0; k < s_.ncblk; ++k) {
      const idx_t w = s_.cblks[static_cast<std::size_t>(k)].width();
      if (is_1d(k)) {
        Rank& r = ranks_[static_cast<std::size_t>(
            plan_.diag_owner[static_cast<std::size_t>(k)])];
        r.cblk_store[k].assign(
            static_cast<std::size_t>(stack_rows(k)) * w, T{});
      } else {
        for (idx_t b = s_.cblks[static_cast<std::size_t>(k)].bloknum;
             b < s_.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b) {
          Rank& r = ranks_[static_cast<std::size_t>(
              plan_.blok_owner[static_cast<std::size_t>(b)])];
          r.blok_store[b].assign(
              static_cast<std::size_t>(
                  s_.bloks[static_cast<std::size_t>(b)].nrows()) * w, T{});
        }
      }
    }
  }

  /// Scatter the entries of `a` into the block storage; `only_rank` other
  /// than kNone restricts the writes to that rank's blocks (the re-fill
  /// path of a position-0 restart — the scatter order is identical to a
  /// full refill, so the re-derived values are bitwise those of a fresh
  /// run).
  void scatter_values(const SymSparse<T>& a, idx_t only_rank) {
    for (idx_t j = 0; j < s_.n; ++j) {
      const idx_t k = s_.col2cblk[static_cast<std::size_t>(j)];
      set_entry(k, j, j, a.diag[static_cast<std::size_t>(j)], only_rank);
      for (idx_t q = a.pattern.colptr[j]; q < a.pattern.colptr[j + 1]; ++q)
        set_entry(k, a.pattern.rowind[q], j, a.val[q], only_rank);
    }
  }

  [[nodiscard]] idx_t entry_owner(idx_t k, idx_t b) const {
    return is_1d(k) ? plan_.diag_owner[static_cast<std::size_t>(k)]
                    : plan_.blok_owner[static_cast<std::size_t>(b)];
  }

  void set_entry(idx_t k, idx_t i, idx_t j, const T& v,
                 idx_t only_rank = kNone) {
    const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
    const auto covering = s_.find_facing_bloks(k, i, i);
    PASTIX_ASSERT(covering.size() == 1);
    if (only_rank != kNone && entry_owner(k, covering[0]) != only_rank)
      return;
    idx_t ld = 0;
    T* ptr = blok_ptr(covering[0], &ld);
    ptr[(i - s_.bloks[static_cast<std::size_t>(covering[0])].frownum) +
        static_cast<std::size_t>(j - ck.fcolnum) * ld] = v;
  }

  void init_countdowns() {
    for (auto& r : ranks_) {
      r.aub_remaining.clear();
      r.aub_initial.clear();
      r.aub.clear();
      r.diag_cache.clear();
      r.panel_cache.clear();
      r.aub_bytes_now = 0;
      r.aub_peak_bytes = 0;
    }
    for (idx_t t = 0; t < tg_.ntask(); ++t) {
      Rank& r = ranks_[static_cast<std::size_t>(
          sched_.proc[static_cast<std::size_t>(t)])];
      for (const idx_t sigma : plan_.aub_after[static_cast<std::size_t>(t)])
        r.aub_remaining[sigma]++;
    }
    for (auto& r : ranks_) r.aub_initial = r.aub_remaining;
  }

  void collect_status() {
    status_ = FactorStatus{};
    status_.max_recorded = popt_.max_recorded;
    for (const auto& r : ranks_) status_.merge(r.status);
  }

  // -------------------------------------------------------- AUB management --
  /// Geometry of the AUB buffer of target task sigma (mirrors its storage).
  struct Region {
    idx_t rows, cols, base_row;  ///< base_row: global row of buffer row 0
  };
  Region aub_region(idx_t sigma) const {
    const Task& t = tg_.tasks[static_cast<std::size_t>(sigma)];
    const auto& ck = s_.cblks[static_cast<std::size_t>(t.cblk)];
    switch (t.type) {
      case TaskType::kComp1d:
        return {stack_rows(t.cblk), ck.width(), kNone};
      case TaskType::kFactor:
        return {ck.width(), ck.width(), ck.fcolnum};
      case TaskType::kBdiv:
        return {s_.bloks[static_cast<std::size_t>(t.blok)].nrows(), ck.width(),
                s_.bloks[static_cast<std::size_t>(t.blok)].frownum};
      default:
        throw Error("BMOD task cannot be an AUB target");
    }
  }

  /// Row offset of global row `grow` (inside target blok tb) within the
  /// storage/AUB layout of target task sigma.
  idx_t target_row_offset(idx_t sigma, idx_t tb, idx_t grow) const {
    const Task& t = tg_.tasks[static_cast<std::size_t>(sigma)];
    if (t.type == TaskType::kComp1d)
      return stack_off_[static_cast<std::size_t>(tb)] + grow -
             s_.bloks[static_cast<std::size_t>(tb)].frownum;
    return grow - aub_region(sigma).base_row;
  }

  /// Apply (or aggregate) the contribution block C into target blok tb.
  /// C is `m x n` with leading dimension ldc; its row 0 is global row crow0
  /// and its column 0 is global column ccol0.  `tri` requests the lower-
  /// triangle-only application (bi == bj case).
  void apply_contribution(Rank& me, idx_t my_rank, idx_t tb, const T* c,
                          idx_t ldc, idx_t m, idx_t n, idx_t crow0, idx_t ccol0,
                          bool tri) {
    const auto& blok = s_.bloks[static_cast<std::size_t>(tb)];
    const idx_t j = blok.lcblknm;  // target cblk (the blok's *owner*)
    const idx_t sigma = tg_.blok_task[static_cast<std::size_t>(tb)];
    const idx_t owner = sched_.proc[static_cast<std::size_t>(sigma)];
    const idx_t fcol = s_.cblks[static_cast<std::size_t>(j)].fcolnum;

    T* dst = nullptr;
    idx_t ld = 0;
    T sign{};
    if (owner == my_rank) {
      // blok_ptr points at the blok's top-left in either layout.
      dst = blok_ptr(tb, &ld) + (crow0 - blok.frownum) +
            static_cast<std::size_t>(ccol0 - fcol) * ld;
      sign = T(-1);  // apply directly: A -= C
    } else {
      auto& buf = me.aub[sigma];
      const Region reg = aub_region(sigma);
      if (buf.empty()) {
        buf.assign(static_cast<std::size_t>(reg.rows) * reg.cols, T{});
        me.aub_bytes_now += static_cast<big_t>(buf.size()) * sizeof(T);
        me.aub_peak_bytes = std::max(me.aub_peak_bytes, me.aub_bytes_now);
      }
      ld = reg.rows;
      dst = buf.data() + target_row_offset(sigma, tb, crow0) +
            static_cast<std::size_t>(ccol0 - fcol) * ld;
      sign = T(1);  // aggregate: AUB += C; receiver subtracts
    }
    PASTIX_ASSERT(crow0 >= blok.frownum && crow0 + m - 1 <= blok.lrownum);
    PASTIX_ASSERT(ccol0 >= fcol &&
                  ccol0 + n - 1 <= s_.cblks[static_cast<std::size_t>(j)].lcolnum);
    for (idx_t col = 0; col < n; ++col) {
      const idx_t gcol = ccol0 + col;
      T* d = dst + static_cast<std::size_t>(col) * ld;
      const T* src = c + static_cast<std::size_t>(col) * ldc;
      idx_t row0 = 0;
      if (tri && gcol > crow0) row0 = gcol - crow0;  // skip above-diagonal
      for (idx_t row = row0; row < m; ++row) d[row] += sign * src[row];
    }
  }

  /// Scatter the dense update C (rows of bloks [bi_first..last) x rows of
  /// bj) into its target bloks; then handle AUB countdowns via caller.
  void scatter_update(Rank& me, idx_t my_rank, idx_t k, idx_t bj, idx_t bi_first,
                      const T* c, idx_t ldc, idx_t c_base_row_off) {
    const auto& src_j = s_.bloks[static_cast<std::size_t>(bj)];
    const idx_t last = s_.cblks[static_cast<std::size_t>(k) + 1].bloknum;
    for (idx_t bi = bi_first; bi < last; ++bi) {
      const auto& src_i = s_.bloks[static_cast<std::size_t>(bi)];
      const bool tri = (bi == bj);
      const auto targets = s_.find_facing_bloks(src_j.fcblknm, src_i.frownum,
                                                src_i.lrownum);
      for (const idx_t tb : targets) {
        const auto& t = s_.bloks[static_cast<std::size_t>(tb)];
        const idx_t r0 = std::max(t.frownum, src_i.frownum);
        const idx_t r1 = std::min(t.lrownum, src_i.lrownum);
        const idx_t coff = stack_off_[static_cast<std::size_t>(bi)] +
                           (r0 - src_i.frownum) - c_base_row_off;
        apply_contribution(me, my_rank, tb, c + coff, ldc, r1 - r0 + 1,
                           src_j.nrows(), r0, src_j.frownum, tri);
      }
    }
  }

  void flush_aubs(rt::Comm& comm, Rank& me, idx_t my_rank, idx_t t) {
    for (const idx_t sigma : plan_.aub_after[static_cast<std::size_t>(t)]) {
      auto it = me.aub_remaining.find(sigma);
      PASTIX_ASSERT(it != me.aub_remaining.end() && it->second > 0);
      --it->second;
      const idx_t done =
          me.aub_initial.at(sigma) - it->second;
      const bool final_send = (it->second == 0);
      const bool partial_send = !final_send && plan_.partial_chunk > 0 &&
                                done % plan_.partial_chunk == 0;
      if (!final_send && !partial_send) continue;
      auto buf = me.aub.find(sigma);
      const Region reg = aub_region(sigma);
      if (buf == me.aub.end()) {
        // This rank contributed only zeros so far (possible when the region
        // was fully covered by other contributions); the receiver still
        // expects the message.
        me.aub[sigma].assign(static_cast<std::size_t>(reg.rows) * reg.cols,
                             T{});
        buf = me.aub.find(sigma);
      }
      comm.send_array(
          static_cast<int>(my_rank),
          static_cast<int>(sched_.proc[static_cast<std::size_t>(sigma)]),
          rt::make_tag(rt::MsgKind::kAub, static_cast<std::uint64_t>(sigma)),
          buf->second.data(), buf->second.size());
      me.aub_bytes_now -= static_cast<big_t>(buf->second.size()) * sizeof(T);
      me.aub.erase(buf);  // free the aggregation memory (the point of the
                          // Fan-Both-style partial sends)
    }
  }

  /// With `deferred_held` null (the static path), the held payload bytes
  /// are accounted into the rank's live AUB memory for the duration of the
  /// gather.  A hybrid tail compute passes non-null: the byte count is
  /// *returned* instead of accounted — its commit replays the accounting in
  /// K_p order, so the measured peak is bitwise that of the static run —
  /// and the receives become cancellable through `cancel` so the pool can
  /// always be joined.
  void recv_aubs(rt::Comm& comm, idx_t my_rank, idx_t t, T* dst,
                 std::size_t count, big_t* deferred_held = nullptr,
                 const mc::atomic<bool>* cancel = nullptr) {
    const idx_t expect = plan_.expect_aub[static_cast<std::size_t>(t)];
    if (expect == 0) return;
    Rank& me = ranks_[static_cast<std::size_t>(my_rank)];
    // Gather every expected message FIRST, then apply in canonical order
    // (by source rank; per-source send order is preserved by the mailbox
    // FIFO).  Floating-point addition is not associative, so applying in
    // arrival order would make the factor depend on thread timing — this
    // ordering is what makes a crash-recovered run bitwise identical to a
    // fault-free one (DESIGN.md §10).  Buffering multiplies this task's
    // transient footprint by its fan-in, so the held payloads count toward
    // the AUB memory accounting for the duration of the gather.
    std::vector<rt::Message> msgs;
    msgs.reserve(static_cast<std::size_t>(expect));
    big_t held = 0;
    const std::uint64_t tag =
        rt::make_tag(rt::MsgKind::kAub, static_cast<std::uint64_t>(t));
    for (idx_t r = 0; r < expect; ++r) {
      rt::Message m =
          cancel != nullptr
              ? comm.recv_cancellable(static_cast<int>(my_rank), tag, *cancel)
              : comm.recv(static_cast<int>(my_rank), tag);
      PASTIX_CHECK(m.template count<T>() == count, "AUB size mismatch");
      held += static_cast<big_t>(m.payload.size());
      if (deferred_held == nullptr) {
        me.aub_bytes_now += static_cast<big_t>(m.payload.size());
        me.aub_peak_bytes = std::max(me.aub_peak_bytes, me.aub_bytes_now);
      }
      msgs.push_back(std::move(m));
    }
    std::stable_sort(
        msgs.begin(), msgs.end(),
        [](const rt::Message& a, const rt::Message& b) {
          return a.source < b.source;
        });
    for (const rt::Message& m : msgs) {
      const T* src = m.template as<T>();
      const auto span =
          kernel_span(my_rank, KernelOp::kAxpy, static_cast<idx_t>(count));
      for (std::size_t i = 0; i < count; ++i) dst[i] -= src[i];
    }
    if (deferred_held != nullptr)
      *deferred_held = held;
    else
      me.aub_bytes_now -= held;
  }

  // ---------------------------------------- factor integrity (DESIGN.md §15) --
  // A blok's bytes only change before its finalizing task commits (COMP1D
  // for a 1D cblk, FACTOR/BDIV for 2D bloks; BMOD only touches *later*,
  // still-unsealed cblks).  That commit "seals" the blok: its CRC32C is
  // recorded, and scrubs — at every checkpoint boundary, at the end of the
  // factorization, and once before the first solve — recompute and compare
  // it, so silent corruption of committed factor data is detected at the
  // next choke point instead of leaking into the solution.  Each blok is
  // sealed and scrubbed only by the rank that owns its storage, so the
  // shared seal vectors are written at disjoint indices.

  [[nodiscard]] std::uint32_t blok_checksum(idx_t b) const {
    const idx_t k = cblk_of_blok(b);
    const idx_t w = s_.cblks[static_cast<std::size_t>(k)].width();
    const idx_t rows = s_.bloks[static_cast<std::size_t>(b)].nrows();
    idx_t ld = 0;
    const T* p = blok_ptr_const(b, &ld);
    std::uint32_t crc = 0;
    for (idx_t j = 0; j < w; ++j)
      crc = crc32c(p + static_cast<std::size_t>(j) * ld,
                   static_cast<std::size_t>(rows) * sizeof(T), crc);
    return crc;
  }

  void seal_blok(idx_t b) {
    if (!integrity_) return;
    blok_crc_[static_cast<std::size_t>(b)] = blok_checksum(b);
    blok_sealed_[static_cast<std::size_t>(b)] = 1;
  }

  void seal_cblk(idx_t k) {
    if (!integrity_) return;
    for (idx_t b = s_.cblks[static_cast<std::size_t>(k)].bloknum;
         b < s_.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b)
      seal_blok(b);
  }

  void verify_blok(idx_t b, idx_t rank) const {
    const std::uint32_t got = blok_checksum(b);
    const std::uint32_t want = blok_crc_[static_cast<std::size_t>(b)];
    if (got == want) return;
    throw rt::IntegrityError(
        "factor corruption: rank " + std::to_string(rank) + " blok " +
        std::to_string(b) + " of cblk " +
        std::to_string(cblk_of_blok(b)) + " (" +
        std::to_string(s_.bloks[static_cast<std::size_t>(b)].nrows()) + " x " +
        std::to_string(
            s_.cblks[static_cast<std::size_t>(cblk_of_blok(b))].width()) +
        ") failed its CRC32C scrub — committed " + std::to_string(want) +
        ", recomputed " + std::to_string(got));
  }

  /// Scrub every sealed blok this rank owns.  Runs at checkpoint boundaries
  /// (before the state is serialized — a checkpoint must never launder
  /// corruption into the recovery path) and after the rank's last task.
  void scrub_rank(Rank& me, idx_t rank) const {
    std::uint64_t n = 0;
    const auto check = [&](idx_t b) {
      if (blok_sealed_[static_cast<std::size_t>(b)] == 0) return;
      verify_blok(b, rank);
      ++n;
    };
    for (const auto& [k, store] : me.cblk_store)
      for (idx_t b = s_.cblks[static_cast<std::size_t>(k)].bloknum;
           b < s_.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b)
        check(b);
    for (const auto& [b, store] : me.blok_store) check(b);
    me.scrubbed_bloks += n;
  }

  /// SDC chaos hook: with factor_flip_prob armed, maybe flip one random bit
  /// of one sealed blok this rank owns — the next scrub must detect it and
  /// the supervisor must recover from the (clean, just-saved) checkpoint.
  void maybe_flip_factor(Rank& me, idx_t rank) {
    if (sdc_.factor_flip_prob <= 0) return;
    std::uint64_t& st = sdc_rng_[static_cast<std::size_t>(rank)];
    const double u = static_cast<double>(splitmix64(st) >> 11) * 0x1.0p-53;
    if (u >= sdc_.factor_flip_prob) return;
    std::vector<idx_t> sealed;
    for (const auto& [k, store] : me.cblk_store)
      for (idx_t b = s_.cblks[static_cast<std::size_t>(k)].bloknum;
           b < s_.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b)
        if (blok_sealed_[static_cast<std::size_t>(b)] != 0)
          sealed.push_back(b);
    for (const auto& [b, store] : me.blok_store)
      if (blok_sealed_[static_cast<std::size_t>(b)] != 0) sealed.push_back(b);
    if (sealed.empty()) return;
    // Map iteration order is unspecified — sort so a seed reproduces the
    // same victim blok run after run.
    std::sort(sealed.begin(), sealed.end());
    const idx_t b = sealed[static_cast<std::size_t>(splitmix64(st) %
                                                    sealed.size())];
    const idx_t w =
        s_.cblks[static_cast<std::size_t>(cblk_of_blok(b))].width();
    const idx_t rows = s_.bloks[static_cast<std::size_t>(b)].nrows();
    idx_t ld = 0;
    T* p = blok_ptr(b, &ld);
    const std::uint64_t col_bytes =
        static_cast<std::uint64_t>(rows) * sizeof(T);
    const std::uint64_t bit =
        splitmix64(st) % (col_bytes * static_cast<std::uint64_t>(w) * 8);
    auto* col = reinterpret_cast<unsigned char*>(
        p + (bit / 8 / col_bytes) * static_cast<std::size_t>(ld));
    col[(bit / 8) % col_bytes] ^= static_cast<unsigned char>(1u << (bit % 8));
    me.sdc_flips++;
  }

  // -------------------------------------------------------------- tracing --
  /// Span for one dense kernel call; id1/id2/id3 carry the operand dims so
  /// the span doubles as a cost-model calibration sample.
  [[nodiscard]] rt::ScopedSpan kernel_span(idx_t rank, KernelOp op, idx_t m,
                                           idx_t n = 0, idx_t k = 0) const {
    rt::TraceRecord r;
    r.kind = rt::TraceKind::kKernel;
    r.subtype = static_cast<std::uint8_t>(op);
    r.id1 = static_cast<std::int32_t>(m);
    r.id2 = static_cast<std::int32_t>(n);
    r.id3 = static_cast<std::int32_t>(k);
    return rt::ScopedSpan(tracer_, static_cast<int>(rank), r);
  }

  [[nodiscard]] KernelOp factor_op() const {
    return kind_ == FactorKind::kLdlt ? KernelOp::kFactorLdlt
                                      : KernelOp::kFactorLlt;
  }

  // ----------------------------------------------------------- task bodies --
  void run_factorization(rt::Comm& comm, idx_t rank, bool restarted) {
    Rank& me = ranks_[static_cast<std::size_t>(rank)];
    const auto& kp = sched_.kp[static_cast<std::size_t>(rank)];
    // Hybrid split (DESIGN.md §14): positions [0, split_pos) run as today —
    // the statically ordered prefix; [split_pos, |K_p|) form the dynamic
    // tail run by run_tail's work-stealing pool.  An absent/disabled split
    // degenerates to split_pos = |K_p| and this function is byte-for-byte
    // the static executor.
    const bool hybrid_run =
        hybrid_.enabled && !sched_.split.empty() &&
        static_cast<std::size_t>(
            sched_.split[static_cast<std::size_t>(rank)]) < kp.size();
    const std::size_t split_pos =
        hybrid_run ? static_cast<std::size_t>(
                         sched_.split[static_cast<std::size_t>(rank)])
                   : kp.size();
    const bool resilient = ropt_.enabled && checkpoints_ != nullptr;
    // interval <= 0 = auto: a few evenly spaced checkpoints across this
    // rank's K_p, so the (full-state) serialization cost stays a small
    // fraction of the factorization regardless of problem size.
    const std::size_t interval =
        ropt_.checkpoint_interval > 0
            ? static_cast<std::size_t>(ropt_.checkpoint_interval)
            : std::max<std::size_t>(1, kp.size() / 3);
    std::size_t start = 0;
    if (restarted) {
      // Resume: restore the numeric state and the K_p position from the
      // last checkpoint; the supervisor already rolled the comm state back
      // and re-delivered the logged messages.
      const rt::Checkpoint::Entry entry =
          checkpoints_->load(static_cast<int>(rank));
      if (entry.position == 0)
        restore_pristine(me, rank);
      else
        restore_rank(me, entry.payload);
      start = static_cast<std::size_t>(entry.position);
      if (tracer_ && tracer_->enabled()) {
        rt::TraceRecord rec;
        rec.kind = rt::TraceKind::kRestart;
        rec.id1 = static_cast<std::int32_t>(entry.position);
        rec.start = rec.end = tracer_->now();
        tracer_->record(static_cast<int>(rank), rec);
      }
    } else {
      me.task_times = RankTaskTimes{};
      // Checkpoint 0: the factorization is in-place, so a crash before the
      // first periodic checkpoint must still be recoverable.  But the
      // pristine state is exactly what refill() scattered from the retained
      // input matrix, so instead of serializing megabytes that the solver
      // can re-derive, save a zero-byte marker; restore_pristine() re-fills
      // on restart.
      if (resilient) {
        checkpoints_->save_with(
            static_cast<int>(rank), 0,
            comm.snapshot_seq_state(static_cast<int>(rank)),
            [](std::vector<std::byte>& out) { out.clear(); });
      }
    }
    // Checkpoints are restricted to the prefix (the tail's commit loop is
    // not a resumable per-position cursor), so a restart position can never
    // land inside the tail.
    PASTIX_CHECK(start <= split_pos,
                 "restart position lands inside the dynamic tail");
    std::vector<T> wbuf, cbuf, dvec;
    for (std::size_t pos = start; pos < split_pos; ++pos) {
      // The fault point sits at the task boundary, before the task's trace
      // span opens: a killed rank has fully applied `pos` tasks and records
      // no partial span.  It also heartbeats the rank's progress, armed or
      // not — and fires in the non-resilient path too, where the kill
      // simply aborts the world (the PR 1 loud-failure behaviour).
      comm.fault_point(static_cast<int>(rank),
                       static_cast<std::uint64_t>(pos));
      const idx_t t = kp[pos];
      const Task& task = tg_.tasks[static_cast<std::size_t>(t)];
      const Timer timer;
      {
        rt::TraceRecord rec;
        rec.kind = rt::TraceKind::kTask;
        rec.subtype = static_cast<std::uint8_t>(task.type);
        rec.id1 = static_cast<std::int32_t>(t);
        rec.id2 = static_cast<std::int32_t>(task.cblk);
        const rt::ScopedSpan span(tracer_, static_cast<int>(rank), rec);
        switch (task.type) {
          case TaskType::kComp1d: exec_comp1d(comm, me, rank, t, wbuf, cbuf, dvec); break;
          case TaskType::kFactor: exec_factor(comm, me, rank, t); break;
          case TaskType::kBdiv: exec_bdiv(comm, me, rank, t, dvec); break;
          case TaskType::kBmod: exec_bmod(comm, me, rank, t, cbuf); break;
        }
      }
      me.task_times.seconds[static_cast<int>(task.type)] += timer.seconds();
      me.task_times.count[static_cast<int>(task.type)]++;
      if (resilient && pos + 1 < kp.size() && (pos + 1) % interval == 0) {
        save_checkpoint(comm, rank, me, pos + 1);
        maybe_flip_factor(me, rank);
      }
    }
    if (hybrid_run) run_tail(comm, me, rank, split_pos);
    // Terminal scrub: factorize() only ever returns a verified factor —
    // a flip injected (or suffered) after the last checkpoint is caught
    // here, not at the first solve.
    if (integrity_) scrub_rank(me, rank);
  }

  // -------------------------------------------- hybrid tail (DESIGN.md §14) --
  // Tail tasks split into *compute* (kernels + blocking receives, writing
  // only task-private storage — out of order, on pool workers) and *commit*
  // (every shared side effect: contribution scatters, AUB accounting and
  // countdown/sends, cache inserts, status/timing merges — rank thread, in
  // strict K_p order).  Since all order-sensitive mutation happens in K_p
  // order, the factor — and the AUB memory peak — are bitwise identical to
  // the static run for every steal timing.

  /// Per-task buffered compute results, applied at commit.
  struct TailContrib {
    idx_t bj = kNone;  ///< facing blok (COMP1D) / unused (BMOD)
    idx_t m = 0;       ///< rows = leading dimension of buf
    idx_t off = 0;     ///< stack row offset of buf's row 0 (COMP1D)
    std::vector<T> buf;
  };
  struct TailResult {
    FactorStatus status;            ///< pivot record, merged at commit
    big_t held = 0;                 ///< recv_aubs bytes, accounted at commit
    double seconds = 0;             ///< compute wall time
    std::vector<TailContrib> contribs;
    std::vector<T> panel;           ///< BDIV: W snapshot for the panel cache
  };

  /// Claim protocol for the diag/panel caches during the tail phase: pool
  /// workers may miss the same key concurrently, but exactly one kDiag /
  /// kPanel message exists per (rank, key) — so a miss *claims* the key,
  /// receives outside the lock, and publishes; concurrent missers wait.
  /// The rank thread's commit inserts take the same lock.
  struct CacheGuard {
    mc::mutex mutex;
    mc::condition_variable cv;
    std::unordered_set<idx_t> filling_diag;
    std::unordered_set<idx_t> filling_panel;
  };

  const std::vector<T>& tail_fetch_cache(
      rt::Comm& comm, idx_t rank, CacheGuard& guard,
      std::unordered_map<idx_t, std::vector<T>>& cache,
      std::unordered_set<idx_t>& filling, idx_t key, std::uint64_t tag,
      std::size_t expect_count, const mc::atomic<bool>& cancel,
      const char* what) {
    std::unique_lock lock(guard.mutex);
    for (;;) {
      const auto it = cache.find(key);
      if (it != cache.end()) return it->second;
      if (filling.count(key) != 0) {
        // The claimer always notifies — on success *and* on its unwind — so
        // this wait cannot be abandoned.
        guard.cv.wait(lock);
        continue;
      }
      filling.insert(key);
      lock.unlock();
      rt::Message m;
      try {
        m = comm.recv_cancellable(static_cast<int>(rank), tag, cancel);
      } catch (...) {
        lock.lock();
        filling.erase(key);
        guard.cv.notify_all();
        throw;
      }
      lock.lock();
      filling.erase(key);
      guard.cv.notify_all();
      PASTIX_CHECK(m.template count<T>() == expect_count,
                   std::string(what) + " size mismatch");
      auto& slot = cache[key];
      slot.assign(m.template as<T>(), m.template as<T>() + m.template count<T>());
      return slot;
    }
  }

  void tail_compute_comp1d(rt::Comm& comm, Rank& me, idx_t rank, idx_t t,
                           TailResult& res, const mc::atomic<bool>& cancel) {
    const idx_t k = tg_.tasks[static_cast<std::size_t>(t)].cblk;
    const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
    const idx_t w = ck.width();
    const idx_t rows = stack_rows(k);
    const idx_t below = rows - w;
    T* a = me.cblk_store.at(k).data();

    recv_aubs(comm, rank, t, a, static_cast<std::size_t>(rows) * w, &res.held,
              &cancel);
    PivotContext pctx{pivot_threshold_, ck.fcolnum, &res.status};
    {
      const auto span = kernel_span(rank, factor_op(), w);
      if (kind_ == FactorKind::kLdlt)
        dense_ldlt_auto(w, a, rows, &pctx);
      else
        dense_llt_auto(w, a, rows, &pctx);
    }
    check_block_finite(a, w, w, rows, ck.fcolnum, "COMP1D diagonal block",
                       &res.status);

    if (below > 0) {
      T* sub = a + w;
      const T* bmat = nullptr;
      idx_t ldb = 0;
      std::vector<T> wbuf, dvec;
      if (kind_ == FactorKind::kLdlt) {
        {
          const auto span = kernel_span(rank, KernelOp::kTrsm, below, w);
          trsm_right_lt_unit(below, w, a, rows, sub, rows);
        }
        wbuf.assign(static_cast<std::size_t>(below) * w, T{});
        for (idx_t j = 0; j < w; ++j)
          std::copy(sub + static_cast<std::size_t>(j) * rows,
                    sub + static_cast<std::size_t>(j) * rows + below,
                    wbuf.data() + static_cast<std::size_t>(j) * below);
        dvec.assign(static_cast<std::size_t>(w), T{});
        for (idx_t j = 0; j < w; ++j)
          dvec[static_cast<std::size_t>(j)] =
              a[j + static_cast<std::size_t>(j) * rows];
        scale_columns(below, w, sub, rows, dvec.data(), /*invert=*/true);
        bmat = wbuf.data();
        ldb = below;
      } else {
        {
          const auto span = kernel_span(rank, KernelOp::kTrsm, below, w);
          trsm_right_lt(below, w, a, rows, sub, rows);
        }
        bmat = sub;
        ldb = rows;
      }
      check_block_finite(a + w, below, w, rows, ck.fcolnum, "COMP1D panel",
                         &res.status);

      // Same contribution GEMMs as exec_comp1d, but buffered: the scatter
      // into shared target storage happens at commit, in K_p order.
      const idx_t first = ck.bloknum + 1;
      const idx_t last = s_.cblks[static_cast<std::size_t>(k) + 1].bloknum;
      for (idx_t bj = first; bj < last; ++bj) {
        const idx_t off = stack_off_[static_cast<std::size_t>(bj)];
        const idx_t m = rows - off;
        const idx_t n = s_.bloks[static_cast<std::size_t>(bj)].nrows();
        TailContrib c;
        c.bj = bj;
        c.m = m;
        c.off = off;
        c.buf.assign(static_cast<std::size_t>(m) * n, T{});
        {
          const auto span = kernel_span(rank, KernelOp::kGemm, m, n, w);
          gemm_nt(m, n, w, T(1), a + off, rows, bmat + (off - w), ldb,
                  c.buf.data(), m);
        }
        res.contribs.push_back(std::move(c));
      }
    }
  }

  void tail_compute_factor(rt::Comm& comm, Rank& me, idx_t rank, idx_t t,
                           TailResult& res, const mc::atomic<bool>& cancel) {
    const Task& task = tg_.tasks[static_cast<std::size_t>(t)];
    const idx_t k = task.cblk;
    const idx_t w = s_.cblks[static_cast<std::size_t>(k)].width();
    T* a = me.blok_store.at(task.blok).data();
    recv_aubs(comm, rank, t, a, static_cast<std::size_t>(w) * w, &res.held,
              &cancel);
    PivotContext pctx{pivot_threshold_,
                      s_.cblks[static_cast<std::size_t>(k)].fcolnum,
                      &res.status};
    {
      const auto span = kernel_span(rank, factor_op(), w);
      if (kind_ == FactorKind::kLdlt)
        dense_ldlt_auto(w, a, w, &pctx);
      else
        dense_llt_auto(w, a, w, &pctx);
    }
    check_block_finite(a, w, w, w, pctx.base_column, "FACTOR diagonal block",
                       &res.status);
  }

  void tail_compute_bdiv(rt::Comm& comm, Rank& me, idx_t rank, idx_t t,
                         TailResult& res, CacheGuard& guard,
                         const mc::atomic<bool>& cancel) {
    const Task& task = tg_.tasks[static_cast<std::size_t>(t)];
    const idx_t k = task.cblk;
    const idx_t w = s_.cblks[static_cast<std::size_t>(k)].width();
    const std::vector<T>& diag = tail_fetch_cache(
        comm, rank, guard, me.diag_cache, guard.filling_diag, k,
        rt::make_tag(rt::MsgKind::kDiag, static_cast<std::uint64_t>(k)),
        static_cast<std::size_t>(w) * w, cancel, "diag block");
    const T* lkk = diag.data();

    const idx_t m = s_.bloks[static_cast<std::size_t>(task.blok)].nrows();
    T* a = me.blok_store.at(task.blok).data();
    recv_aubs(comm, rank, t, a, static_cast<std::size_t>(m) * w, &res.held,
              &cancel);
    {
      const auto span = kernel_span(rank, KernelOp::kTrsm, m, w);
      if (kind_ == FactorKind::kLdlt)
        trsm_right_lt_unit(m, w, lkk, w, a, m);
      else
        trsm_right_lt(m, w, lkk, w, a, m);
    }
    check_block_finite(a, m, w, m,
                       s_.cblks[static_cast<std::size_t>(k)].fcolnum,
                       "BDIV panel", &res.status);
    // Snapshot W for the commit-side panel publish, then finish the blok in
    // place — both writes touch only this task's own storage.
    res.panel.assign(a, a + static_cast<std::size_t>(m) * w);
    if (kind_ == FactorKind::kLdlt) {
      std::vector<T> dvec(static_cast<std::size_t>(w), T{});
      for (idx_t j = 0; j < w; ++j)
        dvec[static_cast<std::size_t>(j)] =
            lkk[j + static_cast<std::size_t>(j) * w];
      scale_columns(m, w, a, m, dvec.data(), /*invert=*/true);
    }
  }

  void tail_compute_bmod(rt::Comm& comm, Rank& me, idx_t rank, idx_t t,
                         TailResult& res, CacheGuard& guard,
                         const mc::atomic<bool>& cancel) {
    const Task& task = tg_.tasks[static_cast<std::size_t>(t)];
    const idx_t k = task.cblk;
    const idx_t w = s_.cblks[static_cast<std::size_t>(k)].width();
    const idx_t bi = task.blok, bj = task.blok2;
    const idx_t mi = s_.bloks[static_cast<std::size_t>(bi)].nrows();
    const idx_t nj = s_.bloks[static_cast<std::size_t>(bj)].nrows();
    const std::vector<T>& panel = tail_fetch_cache(
        comm, rank, guard, me.panel_cache, guard.filling_panel, bj,
        rt::make_tag(rt::MsgKind::kPanel, static_cast<std::uint64_t>(k),
                     static_cast<std::uint64_t>(bj)),
        static_cast<std::size_t>(nj) * w, cancel, "panel");
    const T* l_bi = me.blok_store.at(bi).data();
    TailContrib c;
    c.m = mi;
    c.buf.assign(static_cast<std::size_t>(mi) * nj, T{});
    {
      const auto span = kernel_span(rank, KernelOp::kGemm, mi, nj, w);
      gemm_nt(mi, nj, w, T(1), l_bi, mi, panel.data(), nj, c.buf.data(), mi);
    }
    res.contribs.push_back(std::move(c));
  }

  void run_tail(rt::Comm& comm, Rank& me, idx_t rank, std::size_t split_pos) {
    const auto& kp = sched_.kp[static_cast<std::size_t>(rank)];
    const std::size_t ntail = kp.size() - split_pos;
    const idx_t workers = hybrid_.pool_size < 1 ? 1 : hybrid_.pool_size;
    if (tracer_ != nullptr && tracer_->enabled())
      PASTIX_CHECK(tracer_->workers_per_rank() >= static_cast<int>(workers),
                   "tracer lacks worker lanes for the hybrid pool — size it "
                   "with TraceRecorder(nprocs, worker_lanes())");

    // Same-rank readiness edges: a tail task is computable once all of its
    // same-rank predecessors have *committed*.  Predecessors in the prefix
    // committed before the pool started; cross-rank predecessors are
    // blocking receives inside compute.
    std::unordered_map<idx_t, std::size_t> tail_of;
    tail_of.reserve(ntail);
    for (std::size_t i = 0; i < ntail; ++i)
      tail_of[kp[split_pos + i]] = i;
    std::vector<idx_t> waiting(ntail, 0);
    std::vector<std::vector<std::size_t>> succ(ntail);
    for (std::size_t i = 0; i < ntail; ++i) {
      const idx_t t = kp[split_pos + i];
      const auto add_dep = [&](idx_t src) {
        if (sched_.proc[static_cast<std::size_t>(src)] != rank) return;
        const auto it = tail_of.find(src);
        if (it == tail_of.end()) return;  // prefix predecessor
        succ[it->second].push_back(i);
        ++waiting[i];
      };
      for (const Contribution& c : tg_.inputs[static_cast<std::size_t>(t)])
        add_dep(c.source);
      for (const Contribution& c : tg_.prec[static_cast<std::size_t>(t)])
        add_dep(c.source);
    }

    std::vector<TailResult> results(ntail);
    CacheGuard guard;
    TailScheduler pool(ntail, std::move(waiting), std::move(succ), workers,
                       hybrid_.steal_seed ^
                           (0x9e3779b97f4a7c15ULL *
                            static_cast<std::uint64_t>(rank + 1)));
    const mc::atomic<bool>& cancel = pool.cancel_flag();

    const auto compute = [&](std::size_t i, int worker) {
      // Worker threads record to their private lane; inline computes
      // (worker == -1) stay on the rank lane.
      rt::LaneScope lane(
          worker >= 0 ? tracer_ : nullptr,
          worker >= 0 && tracer_ != nullptr
              ? tracer_->worker_lane(static_cast<int>(rank), worker)
              : 0);
      const idx_t t = kp[split_pos + i];
      const Task& task = tg_.tasks[static_cast<std::size_t>(t)];
      TailResult& res = results[i];
      res.status.max_recorded = popt_.max_recorded;
      const Timer timer;
      {
        rt::TraceRecord rec;
        rec.kind = rt::TraceKind::kTask;
        rec.subtype = static_cast<std::uint8_t>(task.type);
        rec.id1 = static_cast<std::int32_t>(t);
        rec.id2 = static_cast<std::int32_t>(task.cblk);
        const rt::ScopedSpan span(tracer_, static_cast<int>(rank), rec);
        switch (task.type) {
          case TaskType::kComp1d:
            tail_compute_comp1d(comm, me, rank, t, res, cancel);
            break;
          case TaskType::kFactor:
            tail_compute_factor(comm, me, rank, t, res, cancel);
            break;
          case TaskType::kBdiv:
            tail_compute_bdiv(comm, me, rank, t, res, guard, cancel);
            break;
          case TaskType::kBmod:
            tail_compute_bmod(comm, me, rank, t, res, guard, cancel);
            break;
        }
      }
      res.seconds = timer.seconds();
    };

    const auto commit = [&](std::size_t i) {
      const std::size_t pos = split_pos + i;
      // Same fault-point placement as the static loop: a rank killed here
      // has fully committed `pos` tasks.
      comm.fault_point(static_cast<int>(rank),
                       static_cast<std::uint64_t>(pos));
      const idx_t t = kp[pos];
      const Task& task = tg_.tasks[static_cast<std::size_t>(t)];
      TailResult& res = results[i];
      if (res.held > 0) {
        // Replay of the gather's transient AUB accounting, in K_p order —
        // bitwise the static peak.
        me.aub_bytes_now += res.held;
        me.aub_peak_bytes = std::max(me.aub_peak_bytes, me.aub_bytes_now);
        me.aub_bytes_now -= res.held;
      }
      switch (task.type) {
        case TaskType::kComp1d:
          for (const TailContrib& c : res.contribs)
            scatter_update(me, rank, task.cblk, c.bj, c.bj, c.buf.data(), c.m,
                           c.off);
          flush_aubs(comm, me, rank, t);
          seal_cblk(task.cblk);
          break;
        case TaskType::kFactor: {
          const idx_t k = task.cblk;
          const idx_t w = s_.cblks[static_cast<std::size_t>(k)].width();
          const T* a = me.blok_store.at(task.blok).data();
          for (const idx_t q : plan_.diag_dests[static_cast<std::size_t>(t)])
            comm.send_array(static_cast<int>(rank), static_cast<int>(q),
                            rt::make_tag(rt::MsgKind::kDiag,
                                         static_cast<std::uint64_t>(k)),
                            a, static_cast<std::size_t>(w) * w);
          {
            const std::lock_guard lock(guard.mutex);
            me.diag_cache[k].assign(a, a + static_cast<std::size_t>(w) * w);
          }
          guard.cv.notify_all();
          seal_blok(task.blok);
          break;
        }
        case TaskType::kBdiv: {
          const T* pdata = nullptr;
          std::size_t psize = 0;
          {
            const std::lock_guard lock(guard.mutex);
            auto& slot = me.panel_cache[task.blok];
            slot = std::move(res.panel);
            pdata = slot.data();
            psize = slot.size();
          }
          guard.cv.notify_all();
          for (const idx_t q : plan_.panel_dests[static_cast<std::size_t>(t)])
            comm.send_array(
                static_cast<int>(rank), static_cast<int>(q),
                rt::make_tag(rt::MsgKind::kPanel,
                             static_cast<std::uint64_t>(task.cblk),
                             static_cast<std::uint64_t>(task.blok)),
                pdata, psize);
          seal_blok(task.blok);
          break;
        }
        case TaskType::kBmod: {
          const TailContrib& c = res.contribs.at(0);
          const auto& src_i = s_.bloks[static_cast<std::size_t>(task.blok)];
          const auto& src_j = s_.bloks[static_cast<std::size_t>(task.blok2)];
          const auto targets = s_.find_facing_bloks(
              src_j.fcblknm, src_i.frownum, src_i.lrownum);
          for (const idx_t tb : targets) {
            const auto& tgt = s_.bloks[static_cast<std::size_t>(tb)];
            const idx_t r0 = std::max(tgt.frownum, src_i.frownum);
            const idx_t r1 = std::min(tgt.lrownum, src_i.lrownum);
            apply_contribution(me, rank, tb,
                               c.buf.data() + (r0 - src_i.frownum), c.m,
                               r1 - r0 + 1, src_j.nrows(), r0, src_j.frownum,
                               task.blok == task.blok2);
          }
          flush_aubs(comm, me, rank, t);
          break;
        }
      }
      me.status.merge(res.status);
      me.task_times.seconds[static_cast<int>(task.type)] += res.seconds;
      me.task_times.count[static_cast<int>(task.type)]++;
      // Free the buffered compute results eagerly — the tail's transient
      // footprint should track the in-flight window, not the whole tail.
      res.contribs.clear();
      res.contribs.shrink_to_fit();
    };

    const auto on_steal = [&](std::size_t i, int worker) {
      if (tracer_ == nullptr || !tracer_->enabled()) return;
      rt::TraceRecord rec;
      rec.kind = rt::TraceKind::kSteal;
      rec.id1 = static_cast<std::int32_t>(kp[split_pos + i]);
      rec.id2 = static_cast<std::int32_t>(split_pos + i);
      rec.id3 = worker;
      rec.start = rec.end = tracer_->now();
      rt::LaneScope lane(tracer_,
                         tracer_->worker_lane(static_cast<int>(rank), worker));
      tracer_->record(static_cast<int>(rank), rec);
    };

    pool.run(compute, commit, on_steal);
  }

  // ------------------------------------------------ checkpoint (de)serialize --
  // The payload is everything exec_* reads or mutates between two task
  // boundaries: factor storage, live AUB accumulators and countdowns,
  // received-diagonal/panel caches, memory accounting, task timings and the
  // pivot record.  aub_initial is rebuilt by init_countdowns() before the
  // ranks start and never changes afterwards, so it is not saved.
  static void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    out.insert(out.end(), p, p + sizeof(v));
  }
  static void put_raw(std::vector<std::byte>& out, const void* p,
                      std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    out.insert(out.end(), b, b + n);
  }
  static void put_vec(std::vector<std::byte>& out, const std::vector<T>& v) {
    put_u64(out, v.size());
    put_raw(out, v.data(), v.size() * sizeof(T));
  }
  static void put_map(std::vector<std::byte>& out,
                      const std::unordered_map<idx_t, std::vector<T>>& m) {
    put_u64(out, m.size());
    for (const auto& [k, v] : m) {
      put_u64(out, static_cast<std::uint64_t>(k));
      put_vec(out, v);
    }
  }

  struct Cursor {
    const std::byte* p;
    const std::byte* end;
    std::uint64_t u64() {
      PASTIX_CHECK(p + sizeof(std::uint64_t) <= end, "truncated checkpoint");
      std::uint64_t v = 0;
      std::memcpy(&v, p, sizeof(v));
      p += sizeof(v);
      return v;
    }
    void raw(void* dst, std::size_t n) {
      PASTIX_CHECK(p + n <= end, "truncated checkpoint");
      std::memcpy(dst, p, n);
      p += n;
    }
    void vec(std::vector<T>& v) {
      v.resize(u64());
      raw(v.data(), v.size() * sizeof(T));
    }
    void map(std::unordered_map<idx_t, std::vector<T>>& m) {
      m.clear();
      const std::uint64_t n = u64();
      for (std::uint64_t i = 0; i < n; ++i) {
        const auto k = static_cast<idx_t>(u64());
        vec(m[k]);
      }
    }
  };

  static std::uint64_t map_bytes(
      const std::unordered_map<idx_t, std::vector<T>>& m) {
    std::uint64_t b = 8;
    for (const auto& [k, v] : m) b += 16 + v.size() * sizeof(T);
    return b;
  }

  /// Serialize into `out`, reusing its capacity — periodic checkpoints are
  /// on the rank's critical path, so the buffer must not be re-faulted-in
  /// from the allocator every interval.
  void serialize_rank(const Rank& me, std::vector<std::byte>& out) const {
    out.clear();
    out.reserve(map_bytes(me.cblk_store) + map_bytes(me.blok_store) +
                map_bytes(me.aub) + 8 + me.aub_remaining.size() * 16 +
                map_bytes(me.diag_cache) + map_bytes(me.panel_cache) + 64 +
                sizeof(me.task_times) + 64 + me.status.events.size() * 16);
    put_map(out, me.cblk_store);
    put_map(out, me.blok_store);
    put_map(out, me.aub);
    put_u64(out, me.aub_remaining.size());
    for (const auto& [sigma, left] : me.aub_remaining) {
      put_u64(out, static_cast<std::uint64_t>(sigma));
      put_u64(out, static_cast<std::uint64_t>(left));
    }
    put_map(out, me.diag_cache);
    put_map(out, me.panel_cache);
    put_u64(out, static_cast<std::uint64_t>(me.aub_bytes_now));
    put_u64(out, static_cast<std::uint64_t>(me.aub_peak_bytes));
    put_raw(out, &me.task_times, sizeof(me.task_times));
    const FactorStatus& st = me.status;
    put_u64(out, static_cast<std::uint64_t>(st.perturbations));
    put_raw(out, &st.min_pivot_abs, sizeof(st.min_pivot_abs));
    put_u64(out, static_cast<std::uint64_t>(st.first_breakdown));
    put_u64(out, static_cast<std::uint64_t>(st.nonfinite_at));
    put_u64(out, static_cast<std::uint64_t>(st.max_recorded));
    put_u64(out, st.events.size());
    for (const PivotEvent& e : st.events) {
      put_u64(out, static_cast<std::uint64_t>(e.column));
      put_raw(out, &e.before_abs, sizeof(e.before_abs));
    }
    // Seal state of the owned bloks: a restore must resurrect the commit
    // CRCs alongside the factor values they certify, or the post-restart
    // scrubs would compare fresh bytes against stale (or missing) seals.
    std::uint64_t nseal = me.blok_store.size();
    for (const auto& [k, store] : me.cblk_store)
      nseal += static_cast<std::uint64_t>(
          s_.cblks[static_cast<std::size_t>(k) + 1].bloknum -
          s_.cblks[static_cast<std::size_t>(k)].bloknum);
    put_u64(out, nseal);
    const auto put_seal = [&](idx_t b) {
      put_u64(out, static_cast<std::uint64_t>(b));
      put_u64(out,
              (static_cast<std::uint64_t>(
                   blok_sealed_[static_cast<std::size_t>(b)])
               << 32) |
                  blok_crc_[static_cast<std::size_t>(b)]);
    };
    for (const auto& [k, store] : me.cblk_store)
      for (idx_t b = s_.cblks[static_cast<std::size_t>(k)].bloknum;
           b < s_.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b)
        put_seal(b);
    for (const auto& [b, store] : me.blok_store) put_seal(b);
  }

  void restore_rank(Rank& me, const std::vector<std::byte>& payload) {
    Cursor c{payload.data(), payload.data() + payload.size()};
    c.map(me.cblk_store);
    c.map(me.blok_store);
    c.map(me.aub);
    me.aub_remaining.clear();
    const std::uint64_t n = c.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto sigma = static_cast<idx_t>(c.u64());
      me.aub_remaining[sigma] = static_cast<idx_t>(c.u64());
    }
    c.map(me.diag_cache);
    c.map(me.panel_cache);
    me.aub_bytes_now = static_cast<big_t>(c.u64());
    me.aub_peak_bytes = static_cast<big_t>(c.u64());
    c.raw(&me.task_times, sizeof(me.task_times));
    FactorStatus& st = me.status;
    st.perturbations = static_cast<idx_t>(c.u64());
    c.raw(&st.min_pivot_abs, sizeof(st.min_pivot_abs));
    st.first_breakdown = static_cast<idx_t>(c.u64());
    st.nonfinite_at = static_cast<idx_t>(c.u64());
    st.max_recorded = static_cast<idx_t>(c.u64());
    st.events.resize(c.u64());
    for (PivotEvent& e : st.events) {
      e.column = static_cast<idx_t>(c.u64());
      c.raw(&e.before_abs, sizeof(e.before_abs));
    }
    const std::uint64_t nseal = c.u64();
    for (std::uint64_t i = 0; i < nseal; ++i) {
      const auto b = static_cast<std::size_t>(c.u64());
      const std::uint64_t word = c.u64();
      PASTIX_CHECK(b < blok_sealed_.size(), "checkpoint seals unknown blok");
      blok_sealed_[b] = static_cast<std::uint8_t>(word >> 32);
      blok_crc_[b] = static_cast<std::uint32_t>(word);
    }
    PASTIX_CHECK(c.p == c.end, "checkpoint payload has trailing bytes");
  }

  /// Position-0 restore: the checkpoint is a zero-byte marker — the state
  /// it stands for is re-derived by re-running the refill scatter for this
  /// rank's blocks, bitwise identical to what a fresh run starts from.
  void restore_pristine(Rank& me, idx_t rank) {
    PASTIX_CHECK(refilled_from_ != nullptr,
                 "no retained matrix to re-fill from");
    for (auto& [k, store] : me.cblk_store)
      std::fill(store.begin(), store.end(), T{});
    for (auto& [b, store] : me.blok_store)
      std::fill(store.begin(), store.end(), T{});
    scatter_values(*refilled_from_, rank);
    me.aub.clear();
    me.aub_remaining = me.aub_initial;
    me.diag_cache.clear();
    me.panel_cache.clear();
    me.aub_bytes_now = 0;
    me.aub_peak_bytes = 0;
    me.task_times = RankTaskTimes{};
    me.status = FactorStatus{};
    me.status.max_recorded = popt_.max_recorded;
    const auto unseal = [&](idx_t b) {
      blok_sealed_[static_cast<std::size_t>(b)] = 0;
      blok_crc_[static_cast<std::size_t>(b)] = 0;
    };
    for (const auto& [k, store] : me.cblk_store)
      for (idx_t b = s_.cblks[static_cast<std::size_t>(k)].bloknum;
           b < s_.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b)
        unseal(b);
    for (const auto& [b, store] : me.blok_store) unseal(b);
  }

  void save_checkpoint(rt::Comm& comm, idx_t rank, Rank& me,
                       std::size_t position) {
    // Scrub before serializing: a checkpoint must capture verified state,
    // never launder silent corruption into the recovery path.
    if (integrity_) scrub_rank(me, rank);
    checkpoints_->save_with(
        static_cast<int>(rank), static_cast<std::uint64_t>(position),
        comm.snapshot_seq_state(static_cast<int>(rank)),
        [&](std::vector<std::byte>& out) { serialize_rank(me, out); });
  }

  void exec_comp1d(rt::Comm& comm, Rank& me, idx_t rank, idx_t t,
                   std::vector<T>& wbuf, std::vector<T>& cbuf,
                   std::vector<T>& dvec) {
    const idx_t k = tg_.tasks[static_cast<std::size_t>(t)].cblk;
    const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
    const idx_t w = ck.width();
    const idx_t rows = stack_rows(k);
    const idx_t below = rows - w;
    T* a = me.cblk_store.at(k).data();

    recv_aubs(comm, rank, t, a, static_cast<std::size_t>(rows) * w);
    PivotContext pctx{pivot_threshold_, ck.fcolnum, &me.status};
    {
      const auto span = kernel_span(rank, factor_op(), w);
      if (kind_ == FactorKind::kLdlt)
        dense_ldlt_auto(w, a, rows, &pctx);
      else
        dense_llt_auto(w, a, rows, &pctx);
    }
    check_block_finite(a, w, w, rows, ck.fcolnum, "COMP1D diagonal block",
                       &me.status);

    if (below > 0) {
      T* sub = a + w;
      const T* bmat = nullptr;  // B operand of the update GEMMs
      idx_t ldb = 0;
      if (kind_ == FactorKind::kLdlt) {
        // Panel solve: sub := A_below L^{-t}; the result is W = L_below D.
        {
          const auto span = kernel_span(rank, KernelOp::kTrsm, below, w);
          trsm_right_lt_unit(below, w, a, rows, sub, rows);
        }
        wbuf.assign(static_cast<std::size_t>(below) * w, T{});
        for (idx_t j = 0; j < w; ++j)
          std::copy(sub + static_cast<std::size_t>(j) * rows,
                    sub + static_cast<std::size_t>(j) * rows + below,
                    wbuf.data() + static_cast<std::size_t>(j) * below);
        dvec.assign(static_cast<std::size_t>(w), T{});
        for (idx_t j = 0; j < w; ++j)
          dvec[static_cast<std::size_t>(j)] =
              a[j + static_cast<std::size_t>(j) * rows];
        scale_columns(below, w, sub, rows, dvec.data(), /*invert=*/true);
        bmat = wbuf.data();
        ldb = below;
      } else {
        // LL^t: the final panel L_below is also the GEMM operand
        // (C = L_i L_j^t), no scaled copy needed.
        {
          const auto span = kernel_span(rank, KernelOp::kTrsm, below, w);
          trsm_right_lt(below, w, a, rows, sub, rows);
        }
        bmat = sub;
        ldb = rows;
      }
      // Panel boundary guard: stop a NaN/Inf here, before the GEMMs below
      // smear it across every facing block of the elimination tree.
      check_block_finite(a + w, below, w, rows, ck.fcolnum, "COMP1D panel",
                         &me.status);

      // Contributions: for each facing blok bj, one compacted GEMM over all
      // rows from bj downwards: C = L_[bj..] * W_bj^t.
      const idx_t first = ck.bloknum + 1;
      const idx_t last = s_.cblks[static_cast<std::size_t>(k) + 1].bloknum;
      for (idx_t bj = first; bj < last; ++bj) {
        const idx_t off = stack_off_[static_cast<std::size_t>(bj)];  // >= w
        const idx_t m = rows - off;
        const idx_t n = s_.bloks[static_cast<std::size_t>(bj)].nrows();
        cbuf.assign(static_cast<std::size_t>(m) * n, T{});
        {
          const auto span = kernel_span(rank, KernelOp::kGemm, m, n, w);
          gemm_nt(m, n, w, T(1), a + off, rows, bmat + (off - w), ldb,
                  cbuf.data(), m);
        }
        scatter_update(me, rank, k, bj, bj, cbuf.data(), m, off);
      }
    }
    flush_aubs(comm, me, rank, t);
    seal_cblk(k);  // the whole trapezoid is final — record its commit CRCs
  }

  void exec_factor(rt::Comm& comm, Rank& me, idx_t rank, idx_t t) {
    const Task& task = tg_.tasks[static_cast<std::size_t>(t)];
    const idx_t k = task.cblk;
    const idx_t w = s_.cblks[static_cast<std::size_t>(k)].width();
    T* a = me.blok_store.at(task.blok).data();
    recv_aubs(comm, rank, t, a, static_cast<std::size_t>(w) * w);
    PivotContext pctx{pivot_threshold_,
                      s_.cblks[static_cast<std::size_t>(k)].fcolnum,
                      &me.status};
    {
      const auto span = kernel_span(rank, factor_op(), w);
      if (kind_ == FactorKind::kLdlt)
        dense_ldlt_auto(w, a, w, &pctx);
      else
        dense_llt_auto(w, a, w, &pctx);
    }
    check_block_finite(a, w, w, w, pctx.base_column, "FACTOR diagonal block",
                       &me.status);
    for (const idx_t q : plan_.diag_dests[static_cast<std::size_t>(t)])
      comm.send_array(static_cast<int>(rank), static_cast<int>(q),
                      rt::make_tag(rt::MsgKind::kDiag,
                                   static_cast<std::uint64_t>(k)),
                      a, static_cast<std::size_t>(w) * w);
    me.diag_cache[k].assign(a, a + static_cast<std::size_t>(w) * w);
    seal_blok(task.blok);
  }

  void exec_bdiv(rt::Comm& comm, Rank& me, idx_t rank, idx_t t,
                 std::vector<T>& dvec) {
    const Task& task = tg_.tasks[static_cast<std::size_t>(t)];
    const idx_t k = task.cblk;
    const idx_t w = s_.cblks[static_cast<std::size_t>(k)].width();
    auto diag_it = me.diag_cache.find(k);
    if (diag_it == me.diag_cache.end()) {
      const rt::Message m = comm.recv(
          static_cast<int>(rank),
          rt::make_tag(rt::MsgKind::kDiag, static_cast<std::uint64_t>(k)));
      PASTIX_CHECK(m.template count<T>() ==
                       static_cast<std::size_t>(w) * w,
                   "diag block size mismatch");
      diag_it = me.diag_cache
                    .emplace(k, std::vector<T>(m.template as<T>(),
                                               m.template as<T>() +
                                                   m.template count<T>()))
                    .first;
    }
    const T* lkk = diag_it->second.data();

    const idx_t m = s_.bloks[static_cast<std::size_t>(task.blok)].nrows();
    T* a = me.blok_store.at(task.blok).data();
    recv_aubs(comm, rank, t, a, static_cast<std::size_t>(m) * w);
    {
      const auto span = kernel_span(rank, KernelOp::kTrsm, m, w);
      if (kind_ == FactorKind::kLdlt)
        trsm_right_lt_unit(m, w, lkk, w, a, m);  // a := W = L D
      else
        trsm_right_lt(m, w, lkk, w, a, m);  // a := L (also the GEMM panel)
    }
    check_block_finite(a, m, w, m,
                       s_.cblks[static_cast<std::size_t>(k)].fcolnum,
                       "BDIV panel", &me.status);

    auto& panel = me.panel_cache[task.blok];
    panel.assign(a, a + static_cast<std::size_t>(m) * w);
    for (const idx_t q : plan_.panel_dests[static_cast<std::size_t>(t)])
      comm.send_array(static_cast<int>(rank), static_cast<int>(q),
                      rt::make_tag(rt::MsgKind::kPanel,
                                   static_cast<std::uint64_t>(k),
                                   static_cast<std::uint64_t>(task.blok)),
                      panel.data(), panel.size());

    if (kind_ == FactorKind::kLdlt) {
      dvec.assign(static_cast<std::size_t>(w), T{});
      for (idx_t j = 0; j < w; ++j)
        dvec[static_cast<std::size_t>(j)] =
            lkk[j + static_cast<std::size_t>(j) * w];
      scale_columns(m, w, a, m, dvec.data(), /*invert=*/true);  // a := L
    }
    seal_blok(task.blok);
  }

  void exec_bmod(rt::Comm& comm, Rank& me, idx_t rank, idx_t t,
                 std::vector<T>& cbuf) {
    const Task& task = tg_.tasks[static_cast<std::size_t>(t)];
    const idx_t k = task.cblk;
    const idx_t w = s_.cblks[static_cast<std::size_t>(k)].width();
    const idx_t bi = task.blok, bj = task.blok2;
    const idx_t mi = s_.bloks[static_cast<std::size_t>(bi)].nrows();
    const idx_t nj = s_.bloks[static_cast<std::size_t>(bj)].nrows();

    auto panel_it = me.panel_cache.find(bj);
    if (panel_it == me.panel_cache.end()) {
      const rt::Message m = comm.recv(
          static_cast<int>(rank),
          rt::make_tag(rt::MsgKind::kPanel, static_cast<std::uint64_t>(k),
                       static_cast<std::uint64_t>(bj)));
      PASTIX_CHECK(m.template count<T>() ==
                       static_cast<std::size_t>(nj) * w,
                   "panel size mismatch");
      panel_it = me.panel_cache
                     .emplace(bj, std::vector<T>(m.template as<T>(),
                                                 m.template as<T>() +
                                                     m.template count<T>()))
                     .first;
    }
    const T* l_bi = me.blok_store.at(bi).data();
    cbuf.assign(static_cast<std::size_t>(mi) * nj, T{});
    {
      const auto span = kernel_span(rank, KernelOp::kGemm, mi, nj, w);
      gemm_nt(mi, nj, w, T(1), l_bi, mi, panel_it->second.data(), nj,
              cbuf.data(), mi);
    }
    // Scatter just this (bi, bj) product.
    const auto& src_i = s_.bloks[static_cast<std::size_t>(bi)];
    const auto& src_j = s_.bloks[static_cast<std::size_t>(bj)];
    const auto targets =
        s_.find_facing_bloks(src_j.fcblknm, src_i.frownum, src_i.lrownum);
    for (const idx_t tb : targets) {
      const auto& tgt = s_.bloks[static_cast<std::size_t>(tb)];
      const idx_t r0 = std::max(tgt.frownum, src_i.frownum);
      const idx_t r1 = std::min(tgt.lrownum, src_i.lrownum);
      apply_contribution(me, rank, tb, cbuf.data() + (r0 - src_i.frownum), mi,
                         r1 - r0 + 1, nj, r0, src_j.frownum, bi == bj);
    }
    flush_aubs(comm, me, rank, t);
  }

  // ------------------------------------------------------------- solves -----
  /// Make solve_ point at a usable plan: keep the externally supplied one,
  /// else build (once) from the factorization structures.  The cost model
  /// only prices the simulated timeline — the item list, mapping and K_p
  /// orders are structure-determined — so the default model is fine here.
  void ensure_solve_plan() {
    if (solve_ != nullptr) return;
    if (!owned_solve_)
      owned_solve_ = std::make_unique<const SolvePlan>(
          build_solve_plan(s_, tg_, sched_, default_cost_model()));
    solve_ = owned_solve_.get();
  }

  /// One rank's walk of its scheduled solve item list (defined in
  /// fanin_solve.hpp).  `b` / `x_out` are n x nrhs column-major panels.
  void run_solve(rt::Comm& comm, idx_t rank, const T* b, T* x_out, idx_t nrhs);

  const SymbolMatrix& s_;
  const TaskGraph& tg_;
  const Schedule& sched_;
  FactorKind kind_;
  PivotOptions popt_;
  HybridOptions hybrid_;  ///< static-prefix/dynamic-tail knobs (§14)
  double pivot_threshold_ = 0;
  std::unique_ptr<const CommPlan> owned_plan_;  ///< convenience ctor only
  const CommPlan& plan_;  ///< shared (AnalysisPlan's) or owned_plan_
  std::unique_ptr<const SolvePlan> owned_solve_;  ///< lazily self-built
  const SolvePlan* solve_ = nullptr;  ///< scheduled solve items (see ctor)
  std::vector<Rank> ranks_;
  rt::TraceRecorder* tracer_ = nullptr;  ///< optional, not owned
  rt::ResilienceOptions ropt_;           ///< crash-recovery knobs
  rt::Checkpoint* checkpoints_ = nullptr;  ///< optional, not owned
  /// Matrix of the last refill(), not owned — the position-0 restore
  /// re-derives a restarted rank's pristine state from it (caller keeps it
  /// alive across factorizations; NumericFactor's permuted_ copy does).
  const SymSparse<T>* refilled_from_ = nullptr;
  rt::RecoveryReport recovery_;          ///< cost of the last recovery
  std::vector<idx_t> stack_off_;
  FactorStatus status_;
  // Factor-integrity layer (DESIGN.md §15): per-blok commit CRCs.  Indexed
  // by blok id; each entry is written only by the owning rank's thread.
  std::vector<std::uint32_t> blok_crc_;
  std::vector<std::uint8_t> blok_sealed_;
  std::vector<std::uint64_t> sdc_rng_;  ///< per-rank factor-flip streams
  rt::SdcInjection sdc_;                ///< armed corruption injection
  bool integrity_ = true;               ///< seal + scrub master switch
  bool scrubbed_ = false;               ///< pre-solve scrub done for this factor
  bool filled_ = false;
  bool factored_ = false;
};

} // namespace pastix

#include "solver/fanin_solve.hpp"
