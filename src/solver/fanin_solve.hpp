#pragma once
//
// Distributed triangular solves of the fan-in solver:
//   forward  L y = b  (block forward substitution, fan-in of blok updates),
//   diagonal D z = y  (local scaling at the diagonal owners),
//   backward L^t x = z (block backward substitution).
//
// Like the factorization, the solves are fully static: every rank walks its
// own item list — (cblk, kind) pairs in a global topological order — and
// all message counts are precomputed in the CommPlan.
//
// This header is included at the end of fanin.hpp; it only defines the
// run_solve member of FaninSolver.
//
#include "solver/fanin.hpp"

namespace pastix {

template <class T>
void FaninSolver<T>::run_solve(rt::Comm& comm, idx_t rank,
                               const std::vector<T>& b, std::vector<T>& x_out) {
  const auto solve_tag = [](int phase, idx_t obj) {
    return rt::make_tag(rt::MsgKind::kSolve, static_cast<std::uint64_t>(phase),
                        static_cast<std::uint64_t>(obj));
  };

  std::vector<T> y(b);  // rank-local working vector (own segments are
                        // authoritative; others are scratch)
  std::vector<T> tmp;
  std::unordered_map<idx_t, std::vector<T>> yseg, xseg;

  const auto diag_of = [&](idx_t k, idx_t* ld) {
    return blok_ptr(s_.cblks[static_cast<std::size_t>(k)].bloknum, ld);
  };

  const auto phase_span = [&](int phase) {
    rt::TraceRecord rec;
    rec.kind = rt::TraceKind::kPhase;
    rec.subtype = static_cast<std::uint8_t>(phase);
    return rt::ScopedSpan(tracer_, static_cast<int>(rank), rec);
  };

  // ---------------- forward: L y = b -----------------------------------------
  {
  const auto fwd_span = phase_span(0);
  for (idx_t k = 0; k < s_.ncblk; ++k) {
    const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
    const idx_t w = ck.width();

    if (plan_.diag_owner[static_cast<std::size_t>(k)] == rank) {
      // Remote fan-in contributions to this cblk's rows.
      for (const idx_t rb : plan_.fwd_remote_bloks[static_cast<std::size_t>(k)]) {
        const rt::Message m =
            comm.recv(static_cast<int>(rank), solve_tag(2, rb));
        const auto& blok = s_.bloks[static_cast<std::size_t>(rb)];
        PASTIX_CHECK(m.template count<T>() ==
                         static_cast<std::size_t>(blok.nrows()),
                     "forward contribution size mismatch");
        const T* src = m.template as<T>();
        for (idx_t i = 0; i < blok.nrows(); ++i)
          y[static_cast<std::size_t>(blok.frownum + i)] -= src[i];
      }
      idx_t ld = 0;
      const T* diag = diag_of(k, &ld);
      if (kind_ == FactorKind::kLdlt)
        trsv_lower_unit(w, diag, ld, y.data() + ck.fcolnum);
      else
        trsv_lower(w, diag, ld, y.data() + ck.fcolnum);
      for (const idx_t q : plan_.yseg_dests[static_cast<std::size_t>(k)])
        comm.send_array(static_cast<int>(rank), static_cast<int>(q),
                        solve_tag(1, k), y.data() + ck.fcolnum,
                        static_cast<std::size_t>(w));
    }

    // Update items: bloks of k owned by this rank.
    for (idx_t bb = ck.bloknum + 1;
         bb < s_.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++bb) {
      if (plan_.blok_owner[static_cast<std::size_t>(bb)] != rank) continue;
      const auto& blok = s_.bloks[static_cast<std::size_t>(bb)];
      const T* seg = nullptr;
      if (plan_.diag_owner[static_cast<std::size_t>(k)] == rank) {
        seg = y.data() + ck.fcolnum;
      } else {
        auto it = yseg.find(k);
        if (it == yseg.end()) {
          const rt::Message m =
              comm.recv(static_cast<int>(rank), solve_tag(1, k));
          PASTIX_CHECK(m.template count<T>() == static_cast<std::size_t>(w),
                       "y segment size mismatch");
          it = yseg.emplace(k, std::vector<T>(m.template as<T>(),
                                              m.template as<T>() +
                                                  m.template count<T>()))
                   .first;
        }
        seg = it->second.data();
      }
      idx_t ld = 0;
      const T* l = blok_ptr(bb, &ld);
      tmp.assign(static_cast<std::size_t>(blok.nrows()), T{});
      gemv_n(blok.nrows(), w, T(1), l, ld, seg, tmp.data());
      const idx_t j = blok.fcblknm;
      if (plan_.diag_owner[static_cast<std::size_t>(j)] == rank) {
        for (idx_t i = 0; i < blok.nrows(); ++i)
          y[static_cast<std::size_t>(blok.frownum + i)] -= tmp[i];
      } else {
        comm.send_array(static_cast<int>(rank),
                        static_cast<int>(
                            plan_.diag_owner[static_cast<std::size_t>(j)]),
                        solve_tag(2, bb), tmp.data(), tmp.size());
      }
    }
  }
  }

  // ---------------- diagonal: z = D^{-1} y (LDL^t only) ----------------------
  if (kind_ == FactorKind::kLdlt) {
    const auto diag_span = phase_span(1);
    for (idx_t k = 0; k < s_.ncblk; ++k) {
      if (plan_.diag_owner[static_cast<std::size_t>(k)] != rank) continue;
      const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
      idx_t ld = 0;
      const T* diag = diag_of(k, &ld);
      for (idx_t i = 0; i < ck.width(); ++i)
        y[static_cast<std::size_t>(ck.fcolnum + i)] /=
            diag[i + static_cast<std::size_t>(i) * ld];
    }
  }

  // ---------------- backward: L^t x = z --------------------------------------
  {
  const auto bwd_span = phase_span(2);
  for (idx_t k = s_.ncblk - 1; k >= 0; --k) {
    const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
    const idx_t w = ck.width();

    // Update items first: bloks of k owned by this rank pull x of their
    // facing cblk (already final, it is higher in the tree).
    for (idx_t bb = ck.bloknum + 1;
         bb < s_.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++bb) {
      if (plan_.blok_owner[static_cast<std::size_t>(bb)] != rank) continue;
      const auto& blok = s_.bloks[static_cast<std::size_t>(bb)];
      const idx_t j = blok.fcblknm;
      const auto& cj = s_.cblks[static_cast<std::size_t>(j)];
      const T* seg = nullptr;
      if (plan_.diag_owner[static_cast<std::size_t>(j)] == rank) {
        seg = y.data() + cj.fcolnum;
      } else {
        auto it = xseg.find(j);
        if (it == xseg.end()) {
          const rt::Message m =
              comm.recv(static_cast<int>(rank), solve_tag(3, j));
          PASTIX_CHECK(m.template count<T>() ==
                           static_cast<std::size_t>(cj.width()),
                       "x segment size mismatch");
          it = xseg.emplace(j, std::vector<T>(m.template as<T>(),
                                              m.template as<T>() +
                                                  m.template count<T>()))
                   .first;
        }
        seg = it->second.data();
      }
      idx_t ld = 0;
      const T* l = blok_ptr(bb, &ld);
      tmp.assign(static_cast<std::size_t>(w), T{});
      gemv_t(blok.nrows(), w, T(1), l, ld, seg + (blok.frownum - cj.fcolnum),
             tmp.data());
      if (plan_.diag_owner[static_cast<std::size_t>(k)] == rank) {
        for (idx_t i = 0; i < w; ++i)
          y[static_cast<std::size_t>(ck.fcolnum + i)] -= tmp[i];
      } else {
        comm.send_array(static_cast<int>(rank),
                        static_cast<int>(
                            plan_.diag_owner[static_cast<std::size_t>(k)]),
                        solve_tag(4, bb), tmp.data(), tmp.size());
      }
    }

    if (plan_.diag_owner[static_cast<std::size_t>(k)] == rank) {
      for (const idx_t rb : plan_.bwd_remote_bloks[static_cast<std::size_t>(k)]) {
        const rt::Message m =
            comm.recv(static_cast<int>(rank), solve_tag(4, rb));
        PASTIX_CHECK(m.template count<T>() == static_cast<std::size_t>(w),
                     "backward contribution size mismatch");
        const T* src = m.template as<T>();
        for (idx_t i = 0; i < w; ++i)
          y[static_cast<std::size_t>(ck.fcolnum + i)] -= src[i];
      }
      idx_t ld = 0;
      const T* diag = diag_of(k, &ld);
      if (kind_ == FactorKind::kLdlt)
        trsv_lower_unit_t(w, diag, ld, y.data() + ck.fcolnum);
      else
        trsv_lower_t(w, diag, ld, y.data() + ck.fcolnum);
      for (const idx_t q : plan_.xseg_dests[static_cast<std::size_t>(k)])
        comm.send_array(static_cast<int>(rank), static_cast<int>(q),
                        solve_tag(3, k), y.data() + ck.fcolnum,
                        static_cast<std::size_t>(w));
      // Gather: each diagonal owner publishes its final segment (disjoint
      // writes; this is the result collection step).
      std::copy(y.begin() + ck.fcolnum, y.begin() + ck.lcolnum + 1,
                x_out.begin() + ck.fcolnum);
    }
  }
  }
}

} // namespace pastix
