#pragma once
//
// Distributed triangular solves of the fan-in solver:
//   forward  L Y = B  (block forward substitution, fan-in of blok updates),
//   diagonal D Z = Y  (local scaling at the diagonal owners),
//   backward L^t X = Z (block backward substitution).
//
// Like the factorization, the solves are fully static — but unlike the
// original hand-rolled sweep, the walk itself is now *scheduled*: each rank
// executes its per-rank K_p list from the SolvePlan (forward FDIAG/FUPD and
// backward BUPD/BDIAG items in a global topological order, decoded through
// the dense SolveIdLayout), the same plan the static verifier proves
// deadlock-free and communication-complete before any value moves.
//
// All right-hand sides travel together as an n x nrhs column-major panel:
// the per-blok work is one gemm/trsm over the panel instead of nrhs
// gemv/trsv sweeps, and every solve message carries the whole panel — the
// message *count* is independent of nrhs.  nrhs == 1 runs the exact scalar
// kernels, keeping the single-vector solve (and thus iterative refinement)
// bitwise identical to the pre-panel implementation.
//
// This header is included at the end of fanin.hpp; it only defines the
// run_solve member of FaninSolver.
//
#include "solver/fanin.hpp"

namespace pastix {

template <class T>
void FaninSolver<T>::run_solve(rt::Comm& comm, idx_t rank, const T* b,
                               T* x_out, idx_t nrhs) {
  const auto solve_tag = [](int phase, idx_t obj) {
    return rt::make_tag(rt::MsgKind::kSolve, static_cast<std::uint64_t>(phase),
                        static_cast<std::uint64_t>(obj));
  };
  const SolvePlan& sp = *solve_;
  const SolveIdLayout lay(s_);
  const auto& kp = sp.sched.kp[static_cast<std::size_t>(rank)];
  const idx_t n = s_.n;

  Rank& me = ranks_[static_cast<std::size_t>(rank)];
  SolveScratch& scr = me.solve;
  // Rank-local working panel (own segments are authoritative; others are
  // scratch), plus epoch-invalidated received-segment slots — all capacity
  // survives across solves (allocate-once).
  scr.y.assign(b, b + static_cast<std::size_t>(n) * nrhs);
  if (scr.yseg.size() != static_cast<std::size_t>(s_.ncblk)) {
    scr.yseg.resize(static_cast<std::size_t>(s_.ncblk));
    scr.xseg.resize(static_cast<std::size_t>(s_.ncblk));
    scr.yseg_epoch.assign(static_cast<std::size_t>(s_.ncblk), 0);
    scr.xseg_epoch.assign(static_cast<std::size_t>(s_.ncblk), 0);
    scr.epoch = 0;
  }
  ++scr.epoch;
  T* y = scr.y.data();

  const auto diag_of = [&](idx_t k, idx_t* ld) {
    return blok_ptr(s_.cblks[static_cast<std::size_t>(k)].bloknum, ld);
  };
  const auto phase_span = [&](int phase) {
    rt::TraceRecord rec;
    rec.kind = rt::TraceKind::kPhase;
    rec.subtype = static_cast<std::uint8_t>(phase);
    return rt::ScopedSpan(tracer_, static_cast<int>(rank), rec);
  };
  const auto item_span = [&](idx_t id, SolveItemKind kind, idx_t cblk,
                             idx_t blok) {
    rt::TraceRecord rec;
    rec.kind = rt::TraceKind::kSolveTask;
    rec.subtype = static_cast<std::uint8_t>(kind);
    rec.id1 = static_cast<std::int32_t>(id);
    rec.id2 = static_cast<std::int32_t>(cblk);
    rec.id3 = blok == kNone ? -1 : static_cast<std::int32_t>(blok);
    return rt::ScopedSpan(tracer_, static_cast<int>(rank), rec);
  };
  // C -= S over `rows` panel rows: C is rows of y starting at global row
  // r0, S is a contiguous rows x nrhs buffer.
  const auto subtract_panel = [&](idx_t r0, idx_t rows, const T* src) {
    for (idx_t c = 0; c < nrhs; ++c) {
      T* dst = y + r0 + static_cast<std::size_t>(c) * n;
      const T* s = src + static_cast<std::size_t>(c) * rows;
      for (idx_t i = 0; i < rows; ++i) dst[i] -= s[i];
    }
  };
  // Pack `rows` panel rows of y starting at global row r0 into scr.tmp
  // (contiguous rows x nrhs, the wire format of the segment messages).
  const auto pack_segment = [&](idx_t r0, idx_t rows) {
    scr.tmp.resize(static_cast<std::size_t>(rows) * nrhs);
    for (idx_t c = 0; c < nrhs; ++c)
      std::copy(y + r0 + static_cast<std::size_t>(c) * n,
                y + r0 + rows + static_cast<std::size_t>(c) * n,
                scr.tmp.data() + static_cast<std::size_t>(c) * rows);
  };

  // ---------------- item bodies ----------------------------------------------
  const auto exec_fwd_diag = [&](idx_t k) {
    const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
    const idx_t w = ck.width();
    // Remote fan-in contributions to this cblk's rows.
    for (const idx_t rb : plan_.fwd_remote_bloks[static_cast<std::size_t>(k)]) {
      const rt::Message m = comm.recv(static_cast<int>(rank), solve_tag(2, rb));
      const auto& blok = s_.bloks[static_cast<std::size_t>(rb)];
      PASTIX_CHECK(m.template count<T>() ==
                       static_cast<std::size_t>(blok.nrows()) * nrhs,
                   "forward contribution size mismatch");
      subtract_panel(blok.frownum, blok.nrows(), m.template as<T>());
    }
    idx_t ld = 0;
    const T* diag = diag_of(k, &ld);
    if (nrhs == 1) {
      if (kind_ == FactorKind::kLdlt)
        trsv_lower_unit(w, diag, ld, y + ck.fcolnum);
      else
        trsv_lower(w, diag, ld, y + ck.fcolnum);
    } else {
      if (kind_ == FactorKind::kLdlt)
        trsm_left_lower_unit(w, nrhs, diag, ld, y + ck.fcolnum, n);
      else
        trsm_left_lower(w, nrhs, diag, ld, y + ck.fcolnum, n);
    }
    if (!plan_.yseg_dests[static_cast<std::size_t>(k)].empty()) {
      pack_segment(ck.fcolnum, w);
      for (const idx_t q : plan_.yseg_dests[static_cast<std::size_t>(k)])
        comm.send_array(static_cast<int>(rank), static_cast<int>(q),
                        solve_tag(1, k), scr.tmp.data(), scr.tmp.size());
    }
  };

  const auto exec_fwd_upd = [&](idx_t bb) {
    const auto& blok = s_.bloks[static_cast<std::size_t>(bb)];
    const idx_t k = blok.lcblknm;
    const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
    const idx_t w = ck.width();
    const T* seg = nullptr;
    idx_t ldseg = 0;
    if (plan_.diag_owner[static_cast<std::size_t>(k)] == rank) {
      seg = y + ck.fcolnum;
      ldseg = n;
    } else {
      if (scr.yseg_epoch[static_cast<std::size_t>(k)] != scr.epoch) {
        const rt::Message m =
            comm.recv(static_cast<int>(rank), solve_tag(1, k));
        PASTIX_CHECK(m.template count<T>() ==
                         static_cast<std::size_t>(w) * nrhs,
                     "y segment size mismatch");
        scr.yseg[static_cast<std::size_t>(k)].assign(
            m.template as<T>(), m.template as<T>() + m.template count<T>());
        scr.yseg_epoch[static_cast<std::size_t>(k)] = scr.epoch;
      }
      seg = scr.yseg[static_cast<std::size_t>(k)].data();
      ldseg = w;
    }
    idx_t ld = 0;
    const T* l = blok_ptr(bb, &ld);
    const idx_t rows = blok.nrows();
    const idx_t j = blok.fcblknm;
    const bool local = plan_.diag_owner[static_cast<std::size_t>(j)] == rank;
    // The contribution always lands in scr.tmp first (then local subtract or
    // send): accumulating straight into the y panel would reorder the
    // per-entry sums and break the bitwise guarantee that each panel column
    // equals the single-RHS solve.
    if (nrhs == 1) {
      scr.tmp.assign(static_cast<std::size_t>(rows), T{});
      gemv_n(rows, w, T(1), l, ld, seg, scr.tmp.data());
    } else {
      scr.tmp.resize(static_cast<std::size_t>(rows) * nrhs);
      gemm_nn_set(rows, nrhs, w, T(1), l, ld, seg, ldseg, scr.tmp.data(),
                  rows);
    }
    if (local) {
      subtract_panel(blok.frownum, rows, scr.tmp.data());
    } else {
      comm.send_array(
          static_cast<int>(rank),
          static_cast<int>(plan_.diag_owner[static_cast<std::size_t>(j)]),
          solve_tag(2, bb), scr.tmp.data(), scr.tmp.size());
    }
  };

  const auto exec_bwd_upd = [&](idx_t bb) {
    const auto& blok = s_.bloks[static_cast<std::size_t>(bb)];
    const idx_t k = blok.lcblknm;
    const idx_t w = s_.cblks[static_cast<std::size_t>(k)].width();
    const idx_t j = blok.fcblknm;
    const auto& cj = s_.cblks[static_cast<std::size_t>(j)];
    const T* seg = nullptr;
    idx_t ldseg = 0;
    if (plan_.diag_owner[static_cast<std::size_t>(j)] == rank) {
      seg = y + cj.fcolnum;
      ldseg = n;
    } else {
      if (scr.xseg_epoch[static_cast<std::size_t>(j)] != scr.epoch) {
        const rt::Message m =
            comm.recv(static_cast<int>(rank), solve_tag(3, j));
        PASTIX_CHECK(m.template count<T>() ==
                         static_cast<std::size_t>(cj.width()) * nrhs,
                     "x segment size mismatch");
        scr.xseg[static_cast<std::size_t>(j)].assign(
            m.template as<T>(), m.template as<T>() + m.template count<T>());
        scr.xseg_epoch[static_cast<std::size_t>(j)] = scr.epoch;
      }
      seg = scr.xseg[static_cast<std::size_t>(j)].data();
      ldseg = cj.width();
    }
    idx_t ld = 0;
    const T* l = blok_ptr(bb, &ld);
    const idx_t rows = blok.nrows();
    const bool local = plan_.diag_owner[static_cast<std::size_t>(k)] == rank;
    if (nrhs == 1) {
      scr.tmp.assign(static_cast<std::size_t>(w), T{});
      gemv_t(rows, w, T(1), l, ld, seg + (blok.frownum - cj.fcolnum),
             scr.tmp.data());
    } else {
      scr.tmp.resize(static_cast<std::size_t>(w) * nrhs);
      gemm_tn_set(rows, w, nrhs, T(1), l, ld,
                  seg + (blok.frownum - cj.fcolnum), ldseg, scr.tmp.data(),
                  w);
    }
    if (local) {
      subtract_panel(s_.cblks[static_cast<std::size_t>(k)].fcolnum, w,
                     scr.tmp.data());
    } else {
      comm.send_array(
          static_cast<int>(rank),
          static_cast<int>(plan_.diag_owner[static_cast<std::size_t>(k)]),
          solve_tag(4, bb), scr.tmp.data(), scr.tmp.size());
    }
  };

  const auto exec_bwd_diag = [&](idx_t k) {
    const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
    const idx_t w = ck.width();
    for (const idx_t rb : plan_.bwd_remote_bloks[static_cast<std::size_t>(k)]) {
      const rt::Message m = comm.recv(static_cast<int>(rank), solve_tag(4, rb));
      PASTIX_CHECK(m.template count<T>() ==
                       static_cast<std::size_t>(w) * nrhs,
                   "backward contribution size mismatch");
      subtract_panel(ck.fcolnum, w, m.template as<T>());
    }
    idx_t ld = 0;
    const T* diag = diag_of(k, &ld);
    if (nrhs == 1) {
      if (kind_ == FactorKind::kLdlt)
        trsv_lower_unit_t(w, diag, ld, y + ck.fcolnum);
      else
        trsv_lower_t(w, diag, ld, y + ck.fcolnum);
    } else {
      if (kind_ == FactorKind::kLdlt)
        trsm_left_lower_unit_t(w, nrhs, diag, ld, y + ck.fcolnum, n);
      else
        trsm_left_lower_t(w, nrhs, diag, ld, y + ck.fcolnum, n);
    }
    if (!plan_.xseg_dests[static_cast<std::size_t>(k)].empty()) {
      pack_segment(ck.fcolnum, w);
      for (const idx_t q : plan_.xseg_dests[static_cast<std::size_t>(k)])
        comm.send_array(static_cast<int>(rank), static_cast<int>(q),
                        solve_tag(3, k), scr.tmp.data(), scr.tmp.size());
    }
    // Gather: each diagonal owner publishes its final segment (disjoint
    // writes across ranks; this is the result collection step).
    for (idx_t c = 0; c < nrhs; ++c)
      std::copy(y + ck.fcolnum + static_cast<std::size_t>(c) * n,
                y + ck.lcolnum + 1 + static_cast<std::size_t>(c) * n,
                x_out + ck.fcolnum + static_cast<std::size_t>(c) * n);
  };

  // ---------------- scheduled walk -------------------------------------------
  // The placement order is forward items then backward items globally, and
  // K_p preserves it — so this rank's list splits cleanly at the first
  // backward id, with the LDL^t diagonal scaling pass in between (the
  // backward local subtractions must land on already-scaled segments).
  const idx_t first_bwd_id = lay.ncblk + lay.nblok;
  std::size_t split = kp.size();
  for (std::size_t i = 0; i < kp.size(); ++i)
    if (kp[i] >= first_bwd_id) {
      split = i;
      break;
    }

  const auto run_item = [&](idx_t id) {
    const SolveItem it = lay.decode(id);
    switch (it.kind) {
      case SolveItemKind::kFwdDiag: {
        const auto span = item_span(id, it.kind, it.cblk, kNone);
        exec_fwd_diag(it.cblk);
        break;
      }
      case SolveItemKind::kFwdUpd: {
        const idx_t k = s_.bloks[static_cast<std::size_t>(it.blok)].lcblknm;
        const auto span = item_span(id, it.kind, k, it.blok);
        // The diagonal blok's slot is a zero-cost placeholder that keeps
        // the id layout dense; its span is still recorded so the runtime
        // trace replays the schedule exactly.
        if (it.blok != s_.cblks[static_cast<std::size_t>(k)].bloknum)
          exec_fwd_upd(it.blok);
        break;
      }
      case SolveItemKind::kBwdUpd: {
        const idx_t k = s_.bloks[static_cast<std::size_t>(it.blok)].lcblknm;
        const auto span = item_span(id, it.kind, k, it.blok);
        if (it.blok != s_.cblks[static_cast<std::size_t>(k)].bloknum)
          exec_bwd_upd(it.blok);
        break;
      }
      case SolveItemKind::kBwdDiag: {
        const auto span = item_span(id, it.kind, it.cblk, kNone);
        exec_bwd_diag(it.cblk);
        break;
      }
    }
  };

  {
    const auto fwd_span = phase_span(0);
    for (std::size_t i = 0; i < split; ++i) run_item(kp[i]);
  }
  if (kind_ == FactorKind::kLdlt) {
    const auto diag_span = phase_span(1);
    for (idx_t k = 0; k < s_.ncblk; ++k) {
      if (plan_.diag_owner[static_cast<std::size_t>(k)] != rank) continue;
      const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
      idx_t ld = 0;
      const T* diag = diag_of(k, &ld);
      for (idx_t i = 0; i < ck.width(); ++i) {
        const T d = diag[i + static_cast<std::size_t>(i) * ld];
        for (idx_t c = 0; c < nrhs; ++c)
          y[ck.fcolnum + i + static_cast<std::size_t>(c) * n] /= d;
      }
    }
  }
  {
    const auto bwd_span = phase_span(2);
    for (std::size_t i = split; i < kp.size(); ++i) run_item(kp[i]);
  }
}

} // namespace pastix
