#include "solver/solve_model.hpp"

#include <algorithm>

namespace pastix {

double solve_flops(const SymbolMatrix& s) {
  double flops = 0;
  for (idx_t k = 0; k < s.ncblk; ++k) {
    const double w = s.cblks[static_cast<std::size_t>(k)].width();
    const double h = s.cblk_below_rows(k);
    // Forward + backward trsv on the diagonal block, two gemv sweeps over
    // the sub-diagonal rows, plus the diagonal scaling.
    flops += 2.0 * w * w + 4.0 * h * w + w;
  }
  return flops;
}

SolvePlan build_solve_plan(const SymbolMatrix& s, const TaskGraph& factor_tg,
                           const Schedule& factor_sched, const CostModel& m) {
  const CommPlan plan = build_comm_plan(s, factor_tg, factor_sched);
  SolvePlan sp;
  TaskGraph& tg = sp.tg;

  // Task id layout: forward diag per cblk, forward update per blok,
  // backward update per blok, backward diag per cblk.
  const SolveIdLayout lay(s);
  const idx_t nblok = lay.nblok;
  const auto fdiag_id = [&](idx_t k) { return lay.fdiag(k); };
  const auto fupd_id = [&](idx_t b) { return lay.fupd(b); };
  const auto bupd_id = [&](idx_t b) { return lay.bupd(b); };
  const auto bdiag_id = [&](idx_t k) { return lay.bdiag(k); };
  const idx_t ntask = lay.ntask();

  tg.tasks.assign(static_cast<std::size_t>(ntask), {});
  tg.inputs.assign(static_cast<std::size_t>(ntask), {});
  tg.prec.assign(static_cast<std::size_t>(ntask), {});
  tg.depth.assign(static_cast<std::size_t>(ntask), 0);
  tg.cblk_task.assign(static_cast<std::size_t>(s.ncblk), kNone);
  tg.blok_task.assign(static_cast<std::size_t>(nblok), kNone);

  std::vector<idx_t> proc(static_cast<std::size_t>(ntask), 0);

  // Diagonal bloks (the first of each cblk) carry no solve task of their
  // own; keep their slots pointing at the diag task for completeness.
  for (idx_t k = 0; k < s.ncblk; ++k)
    tg.cblk_task[static_cast<std::size_t>(k)] = fdiag_id(k);

  auto add_task = [&](idx_t id, TaskType type, idx_t k, idx_t blok, double cost,
                      double flops, idx_t p) {
    tg.tasks[static_cast<std::size_t>(id)] = {type, k, blok, kNone, cost, flops};
    proc[static_cast<std::size_t>(id)] = p;
  };

  for (idx_t k = 0; k < s.ncblk; ++k) {
    const double w = s.cblks[static_cast<std::size_t>(k)].width();
    const idx_t owner = plan.diag_owner[static_cast<std::size_t>(k)];
    // Forward diag: trsv.  Backward diag: trsv + the diagonal scaling.
    add_task(fdiag_id(k), TaskType::kFactor, k, kNone, m.trsv_time(w), w * w,
             owner);
    add_task(bdiag_id(k), TaskType::kFactor, k, kNone,
             m.trsv_time(w) + m.aggregate_time(w), w * w + w, owner);

    // The diagonal blok of each cblk has no update items; give its id slots
    // zero-cost placeholders so the dense id layout stays simulable.
    const idx_t diag_blok = s.cblks[static_cast<std::size_t>(k)].bloknum;
    add_task(fupd_id(diag_blok), TaskType::kBdiv, k, diag_blok, 0.0, 0.0, owner);
    add_task(bupd_id(diag_blok), TaskType::kBdiv, k, diag_blok, 0.0, 0.0, owner);

    const idx_t first = diag_blok + 1;
    const idx_t last = s.cblks[static_cast<std::size_t>(k) + 1].bloknum;
    for (idx_t b = first; b < last; ++b) {
      const auto& blok = s.bloks[static_cast<std::size_t>(b)];
      const double rows = blok.nrows();
      const idx_t bowner = plan.blok_owner[static_cast<std::size_t>(b)];
      add_task(fupd_id(b), TaskType::kBdiv, k, b, m.gemv_time(rows, w),
               2 * rows * w, bowner);
      add_task(bupd_id(b), TaskType::kBdiv, k, b, m.gemv_time(rows, w),
               2 * rows * w, bowner);
      tg.blok_task[static_cast<std::size_t>(b)] = fupd_id(b);

      // Forward: FUPD needs y_k from FDIAG(k) (w entries if remote), and
      // contributes rows entries into FDIAG of the facing cblk.
      tg.prec[static_cast<std::size_t>(fupd_id(b))].push_back(
          {fdiag_id(k), bowner == owner ? 0.0 : w});
      tg.inputs[static_cast<std::size_t>(fdiag_id(blok.fcblknm))].push_back(
          {fupd_id(b), rows});

      // Backward: BUPD needs x of the facing cblk from BDIAG(fcblk), and
      // contributes w entries into BDIAG(k).
      const idx_t fowner =
          plan.diag_owner[static_cast<std::size_t>(blok.fcblknm)];
      tg.prec[static_cast<std::size_t>(bupd_id(b))].push_back(
          {bdiag_id(blok.fcblknm),
           bowner == fowner ? 0.0
                            : static_cast<double>(
                                  s.cblks[static_cast<std::size_t>(blok.fcblknm)]
                                      .width())});
      tg.inputs[static_cast<std::size_t>(bdiag_id(k))].push_back(
          {bupd_id(b), w});
    }
    // The backward diag of k cannot start before its forward finished.
    tg.prec[static_cast<std::size_t>(bdiag_id(k))].push_back(
        {fdiag_id(k), 0.0});
  }

  // Placement order: forward ascending (diag before its updates), backward
  // descending (updates before the diag); this is a topological order and
  // the per-processor execution order of the real solver.  The map layer's
  // phase-generic finalizer turns it into prio/K_p/start/end.
  std::vector<idx_t> order;
  order.reserve(static_cast<std::size_t>(ntask));
  for (idx_t k = 0; k < s.ncblk; ++k) {
    order.push_back(fdiag_id(k));
    for (idx_t b = s.cblks[static_cast<std::size_t>(k)].bloknum;
         b < s.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b)
      order.push_back(fupd_id(b));
  }
  for (idx_t k = s.ncblk - 1; k >= 0; --k) {
    for (idx_t b = s.cblks[static_cast<std::size_t>(k)].bloknum;
         b < s.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b)
      order.push_back(bupd_id(b));
    order.push_back(bdiag_id(k));
  }
  PASTIX_CHECK(static_cast<idx_t>(order.size()) == ntask,
               "solve plan placement order incomplete");
  sp.sched =
      fixed_order_schedule(tg, std::move(proc), order, factor_sched.nprocs);
  return sp;
}

SolveModel build_solve_model(const SymbolMatrix& s, const TaskGraph& factor_tg,
                             const Schedule& factor_sched, const CostModel& m) {
  SolvePlan sp = build_solve_plan(s, factor_tg, factor_sched, m);
  return {std::move(sp.tg), std::move(sp.sched)};
}

} // namespace pastix
