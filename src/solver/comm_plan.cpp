#include "solver/comm_plan.hpp"

#include <algorithm>

namespace pastix {

namespace {

void sort_unique(std::vector<idx_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

} // namespace

CommPlan build_comm_plan(const SymbolMatrix& s, const TaskGraph& tg,
                         const Schedule& sched, idx_t partial_chunk) {
  const idx_t ntask = tg.ntask();
  CommPlan plan;
  plan.partial_chunk = partial_chunk;
  plan.expect_aub.assign(static_cast<std::size_t>(ntask), 0);
  plan.aub_after.assign(static_cast<std::size_t>(ntask), {});
  plan.aub_countdown.assign(static_cast<std::size_t>(ntask), {});
  plan.diag_dests.assign(static_cast<std::size_t>(ntask), {});
  plan.panel_dests.assign(static_cast<std::size_t>(ntask), {});

  // --- AUB bookkeeping: group contributions by (source proc, source task). --
  for (idx_t sigma = 0; sigma < ntask; ++sigma) {
    const idx_t owner = sched.proc[static_cast<std::size_t>(sigma)];
    // Distinct remote source tasks, grouped by proc.
    std::vector<std::pair<idx_t, idx_t>> remote;  // (source proc, source task)
    for (const auto& c : tg.inputs[static_cast<std::size_t>(sigma)]) {
      const idx_t q = sched.proc[static_cast<std::size_t>(c.source)];
      if (q != owner) remote.emplace_back(q, c.source);
    }
    std::sort(remote.begin(), remote.end());
    remote.erase(std::unique(remote.begin(), remote.end()), remote.end());
    idx_t nprocs_contributing = 0;
    for (std::size_t i = 0; i < remote.size();) {
      const idx_t q = remote[i].first;
      idx_t count = 0;
      while (i < remote.size() && remote[i].first == q) {
        plan.aub_after[static_cast<std::size_t>(remote[i].second)].push_back(
            sigma);
        ++count;
        ++i;
      }
      plan.aub_countdown[static_cast<std::size_t>(sigma)].emplace_back(q, count);
      plan.expect_aub[static_cast<std::size_t>(sigma)] +=
          aub_messages_for(count, partial_chunk);
      ++nprocs_contributing;
    }
    (void)nprocs_contributing;
  }
  for (auto& v : plan.aub_after) sort_unique(v);

  // --- Diagonal block and panel destinations (2D cblks). --------------------
  for (idx_t t = 0; t < ntask; ++t) {
    const Task& task = tg.tasks[static_cast<std::size_t>(t)];
    const idx_t p = sched.proc[static_cast<std::size_t>(t)];
    const idx_t k = task.cblk;
    const idx_t first = s.cblks[static_cast<std::size_t>(k)].bloknum;
    const idx_t last = s.cblks[static_cast<std::size_t>(k) + 1].bloknum;
    if (task.type == TaskType::kFactor) {
      auto& dests = plan.diag_dests[static_cast<std::size_t>(t)];
      for (idx_t b = first + 1; b < last; ++b) {
        const idx_t q = sched.blok_owner(tg, b);
        if (q != p) dests.push_back(q);
      }
      sort_unique(dests);
    } else if (task.type == TaskType::kBdiv) {
      auto& dests = plan.panel_dests[static_cast<std::size_t>(t)];
      for (idx_t b = task.blok; b < last; ++b) {
        const idx_t q = sched.blok_owner(tg, b);
        if (q != p) dests.push_back(q);
      }
      sort_unique(dests);
    }
  }

  // --- Solve-phase ownership and message sets. -------------------------------
  plan.diag_owner.assign(static_cast<std::size_t>(s.ncblk), 0);
  plan.blok_owner.assign(static_cast<std::size_t>(s.nblok()), 0);
  for (idx_t k = 0; k < s.ncblk; ++k)
    plan.diag_owner[static_cast<std::size_t>(k)] = sched.proc[
        static_cast<std::size_t>(tg.cblk_task[static_cast<std::size_t>(k)])];
  for (idx_t b = 0; b < s.nblok(); ++b)
    plan.blok_owner[static_cast<std::size_t>(b)] = sched.blok_owner(tg, b);

  plan.fwd_remote_bloks.assign(static_cast<std::size_t>(s.ncblk), {});
  plan.bwd_remote_bloks.assign(static_cast<std::size_t>(s.ncblk), {});
  plan.yseg_dests.assign(static_cast<std::size_t>(s.ncblk), {});
  plan.xseg_dests.assign(static_cast<std::size_t>(s.ncblk), {});
  const auto facing = facing_bloks_index(s);
  for (idx_t k = 0; k < s.ncblk; ++k) {
    const idx_t owner = plan.diag_owner[static_cast<std::size_t>(k)];
    for (const idx_t b : facing[static_cast<std::size_t>(k)]) {
      const idx_t q = plan.blok_owner[static_cast<std::size_t>(b)];
      if (q != owner) {
        plan.fwd_remote_bloks[static_cast<std::size_t>(k)].push_back(b);
        plan.xseg_dests[static_cast<std::size_t>(k)].push_back(q);
      }
    }
    const idx_t first = s.cblks[static_cast<std::size_t>(k)].bloknum;
    const idx_t last = s.cblks[static_cast<std::size_t>(k) + 1].bloknum;
    for (idx_t b = first + 1; b < last; ++b) {
      const idx_t q = plan.blok_owner[static_cast<std::size_t>(b)];
      if (q != owner) {
        plan.bwd_remote_bloks[static_cast<std::size_t>(k)].push_back(b);
        plan.yseg_dests[static_cast<std::size_t>(k)].push_back(q);
      }
    }
    sort_unique(plan.yseg_dests[static_cast<std::size_t>(k)]);
    sort_unique(plan.xseg_dests[static_cast<std::size_t>(k)]);
  }
  return plan;
}

} // namespace pastix
