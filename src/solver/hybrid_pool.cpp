//
// Work-stealing tail executor — see hybrid_pool.hpp and DESIGN.md §14.
//
#include "solver/hybrid_pool.hpp"

#include "rt/comm.hpp"
#include "support/check.hpp"

namespace pastix {

TailScheduler::TailScheduler(std::size_t ntail, std::vector<idx_t> waiting,
                             std::vector<std::vector<std::size_t>> succ,
                             idx_t workers, std::uint64_t seed)
    : ntail_(ntail),
      waiting_(std::move(waiting)),
      succ_(std::move(succ)),
      workers_(workers < 1 ? 1 : workers),
      seed_(seed),
      state_(ntail, St::kBlocked) {
  PASTIX_CHECK(waiting_.size() == ntail_ && succ_.size() == ntail_,
               "tail dependency arrays do not match the tail size");
  for (std::size_t i = 0; i < ntail_; ++i) {
    if (waiting_[i] == 0) {
      state_[i] = St::kReady;
      ready_.push_back(i);
    }
  }
}

void TailScheduler::fail_locked(std::exception_ptr e) {
  if (!error_) error_ = std::move(e);
  stop_ = true;
  cancel_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
}

std::size_t TailScheduler::pick_ready_locked(std::uint64_t& rng) {
  // splitmix64 step: cheap, seeded, and deliberately *not* part of the
  // numeric contract — any pick order must yield identical factor bits.
  rng += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = rng;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const std::size_t at = static_cast<std::size_t>(z % ready_.size());
  const std::size_t idx = ready_[at];
  ready_[at] = ready_.back();
  ready_.pop_back();
  return idx;
}

void TailScheduler::worker_body(int w, const ComputeFn& compute,
                                const StealFn& on_steal) {
  std::uint64_t rng = seed_ + 0x2545f4914f6cdd1dULL * static_cast<std::uint64_t>(w + 1);
  for (;;) {
    std::size_t idx;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !ready_.empty(); });
      if (stop_) return;
      idx = pick_ready_locked(rng);
      state_[idx] = St::kClaimed;
    }
    on_steal(idx, w);
    try {
      compute(idx, w);
    } catch (const rt::CancelledError&) {
      return;  // teardown in progress; the committer owns the real error
    } catch (...) {
      const std::lock_guard lock(mutex_);
      fail_locked(std::current_exception());
      return;
    }
    const std::lock_guard lock(mutex_);
    state_[idx] = St::kComputed;
    cv_.notify_all();
  }
}

void TailScheduler::run(const ComputeFn& compute, const CommitFn& commit,
                        const StealFn& on_steal) {
  if (ntail_ == 0) return;
  // Mutation hook (mc battery): join a worker that was never spawned —
  // the lifecycle misuse the explorer reports as kInvalidJoin.
  if (PASTIX_MC_MUTATION(pool_join_unstarted)) {
    mc::thread never_started;
    never_started.join();
  }
  std::vector<mc::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers_));
  for (idx_t w = 0; w < workers_; ++w)
    pool.emplace_back([this, w, &compute, &on_steal] {
      worker_body(static_cast<int>(w), compute, on_steal);
    });

  const auto teardown = [&] {
    {
      const std::lock_guard lock(mutex_);
      stop_ = true;
      cancel_.store(true, std::memory_order_relaxed);
      cv_.notify_all();
    }
    for (auto& t : pool) t.join();
  };

  try {
    for (std::size_t i = 0; i < ntail_; ++i) {
      bool inline_compute = false;
      {
        std::unique_lock lock(mutex_);
        if (error_) break;
        PASTIX_CHECK(state_[i] != St::kBlocked,
                     "tail commit reached a task with uncommitted same-rank "
                     "predecessors — the static order violates precedence");
        if (state_[i] == St::kReady) {
          // Unclaimed: the committer computes it inline instead of waiting
          // for a steal — this is the deadlock-freedom argument: the
          // committer's waits are a subset of the static schedule's.
          for (std::size_t at = 0; at < ready_.size(); ++at) {
            if (ready_[at] == i) {
              ready_[at] = ready_.back();
              ready_.pop_back();
              break;
            }
          }
          state_[i] = St::kClaimed;
          inline_compute = true;
        } else {
          // Mutation hook (mc battery): commit without waiting for the
          // claimed compute to finish — commit(i) then reads task state a
          // worker is still writing, the ordering bug the race detector
          // must pin on the tail commit protocol.
          if (!PASTIX_MC_MUTATION(pool_commit_before_compute))
            cv_.wait(lock,
                     [&] { return error_ || state_[i] == St::kComputed; });
          if (error_) break;
        }
      }
      if (inline_compute) {
        compute(i, -1);
        const std::lock_guard lock(mutex_);
        state_[i] = St::kComputed;
      }
      commit(i);
      {
        const std::lock_guard lock(mutex_);
        state_[i] = St::kCommitted;
        for (const std::size_t s : succ_[i]) {
          if (--waiting_[s] == 0 && state_[s] == St::kBlocked) {
            state_[s] = St::kReady;
            ready_.push_back(s);
          }
        }
        cv_.notify_all();
      }
    }
  } catch (...) {
    const std::exception_ptr mine = std::current_exception();
    teardown();
    // A worker failure cancels in-flight receives, so an inline compute can
    // unwind with a secondary CancelledError — prefer the root cause.
    std::exception_ptr err;
    {
      const std::lock_guard lock(mutex_);
      err = error_;
    }
    if (err) std::rethrow_exception(err);
    std::rethrow_exception(mine);
  }
  teardown();
  std::exception_ptr err;
  {
    const std::lock_guard lock(mutex_);
    err = error_;
  }
  if (err) std::rethrow_exception(err);
}

} // namespace pastix
