#pragma once
//
// Performance model of the distributed triangular solves.
//
// The solve phase reuses the block mapping chosen for the factorization
// (every factor block is read where it lives), so there is nothing to
// schedule: the task order and processor assignment are fixed.  This module
// builds the corresponding task graph (forward FDIAG/FUPD, backward
// BUPD/BDIAG items, gemv/trsv costs, segment/contribution messages) and a
// ready-made Schedule so the discrete-event simulator can predict solve
// times for any processor count — the solve phase is memory-bound and far
// less scalable than the factorization, which bench/solve_phase quantifies.
//
#include "map/scheduler.hpp"
#include "solver/comm_plan.hpp"

namespace pastix {

struct SolveModel {
  TaskGraph tg;     ///< one task per solve item
  Schedule sched;   ///< fixed mapping + topological priorities
};

/// Build the solve-phase model for a factorization described by
/// (symbol, factorization task graph, factorization schedule).
SolveModel build_solve_model(const SymbolMatrix& s, const TaskGraph& factor_tg,
                             const Schedule& factor_sched, const CostModel& m);

/// Flops of one full solve (forward + diagonal + backward).
double solve_flops(const SymbolMatrix& s);

} // namespace pastix
