#pragma once
//
// Solve-phase plan: task graph, static schedule, and performance model of
// the distributed triangular solves.
//
// The solve phase reuses the block mapping chosen for the factorization
// (every factor block is read where it lives), so there is nothing to
// schedule: the task order and processor assignment are fixed.  This module
// builds the corresponding task graph (forward FDIAG/FUPD, backward
// BUPD/BDIAG items, gemv/trsv costs, segment/contribution messages) and —
// via the phase-generic map/fixed_order_schedule finalizer — a ready-made
// per-rank K_p Schedule.  The result is a first-class SolvePlan carried on
// AnalysisPlan: the runtime executes its K_p lists, the verifier proves it
// deadlock-free and communication-complete, and the discrete-event
// simulator predicts solve times for any processor count (the solve phase
// is memory-bound and far less scalable than the factorization, which
// bench/solve_phase quantifies).
//
#include "map/scheduler.hpp"
#include "simul/simulate.hpp"
#include "solver/comm_plan.hpp"

namespace pastix {

/// Kind of one solve-phase item, decoded from the dense task-id layout.
enum class SolveItemKind : unsigned char {
  kFwdDiag,  ///< forward trsv on the diagonal block of a cblk
  kFwdUpd,   ///< forward gemv contribution of one off-diagonal blok
  kBwdUpd,   ///< backward gemv^T contribution of one off-diagonal blok
  kBwdDiag,  ///< backward trsv (+ diagonal scaling) on a cblk
};

/// One decoded solve item: its kind and the object it acts on (`cblk` is
/// always set; `blok` is kNone for the diag items).
struct SolveItem {
  SolveItemKind kind;
  idx_t cblk;
  idx_t blok;
};

/// Dense solve task-id layout shared by the builder, the executor, and the
/// verifier: [0, ncblk) forward diag, [ncblk, ncblk+nblok) forward update,
/// [ncblk+nblok, ncblk+2*nblok) backward update, then backward diag.  The
/// diagonal blok of each cblk holds zero-cost placeholder update items so
/// the layout stays dense (and simulable) without a per-blok offset table.
struct SolveIdLayout {
  idx_t ncblk = 0;
  idx_t nblok = 0;

  SolveIdLayout() = default;
  explicit SolveIdLayout(const SymbolMatrix& s)
      : ncblk(s.ncblk), nblok(s.nblok()) {}

  [[nodiscard]] idx_t ntask() const { return 2 * ncblk + 2 * nblok; }
  [[nodiscard]] idx_t fdiag(idx_t k) const { return k; }
  [[nodiscard]] idx_t fupd(idx_t b) const { return ncblk + b; }
  [[nodiscard]] idx_t bupd(idx_t b) const { return ncblk + nblok + b; }
  [[nodiscard]] idx_t bdiag(idx_t k) const { return ncblk + 2 * nblok + k; }

  /// Decode a dense id back into (kind, object).  The cblk of an update
  /// item is not derivable from the id alone — callers take it from the
  /// task graph entry (tasks[id].cblk); decode fills it with kNone.
  [[nodiscard]] SolveItem decode(idx_t id) const {
    PASTIX_CHECK(id >= 0 && id < ntask(), "solve task id out of range");
    if (id < ncblk) return {SolveItemKind::kFwdDiag, id, kNone};
    if (id < ncblk + nblok)
      return {SolveItemKind::kFwdUpd, kNone, id - ncblk};
    if (id < ncblk + 2 * nblok)
      return {SolveItemKind::kBwdUpd, kNone, id - ncblk - nblok};
    return {SolveItemKind::kBwdDiag, id - ncblk - 2 * nblok, kNone};
  }
};

/// A fully realized solve phase, carried on AnalysisPlan next to the
/// factorization's tg/sched/sim triple.  `sim` is filled by analyze()
/// (the solver library does not link the simulator); a default-constructed
/// SolvePlan (empty task graph) means "no solve plan" — plans from older
/// files or hand-built pipelines fall back to it and the verifier skips
/// the solve-phase proof.
struct SolvePlan {
  TaskGraph tg;     ///< one task per solve item (dense SolveIdLayout ids)
  Schedule sched;   ///< fixed mapping + topological priorities, per-rank K_p
  SimResult sim;    ///< discrete-event prediction (analyze() fills this)

  [[nodiscard]] bool present() const { return !tg.tasks.empty(); }
};

/// Legacy alias kept for the performance-model consumers (bench, tests):
/// the tg/sched pair without the simulation result.
struct SolveModel {
  TaskGraph tg;     ///< one task per solve item
  Schedule sched;   ///< fixed mapping + topological priorities
};

/// Build the solve-phase plan for a factorization described by
/// (symbol, factorization task graph, factorization schedule).  `sim` is
/// left default — run simulate_schedule(plan.tg, plan.sched, m) to fill it.
SolvePlan build_solve_plan(const SymbolMatrix& s, const TaskGraph& factor_tg,
                           const Schedule& factor_sched, const CostModel& m);

/// Build the solve-phase model (tg + sched only) — thin wrapper over
/// build_solve_plan for the simulation-focused consumers.
SolveModel build_solve_model(const SymbolMatrix& s, const TaskGraph& factor_tg,
                             const Schedule& factor_sched, const CostModel& m);

/// Flops of one full solve (forward + diagonal + backward) per RHS.
double solve_flops(const SymbolMatrix& s);

} // namespace pastix
