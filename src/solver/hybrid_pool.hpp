#pragma once
//
// Hybrid static/dynamic tail executor (DESIGN.md §14): a small intra-rank
// work-stealing pool that runs the *computations* of a rank's dynamic tail
// out of order, while the rank thread commits their shared side effects
// strictly in K_p order.
//
// The scheduler is deliberately numeric-type agnostic — the solver hands it
// three callbacks:
//
//   compute(i, worker)  heavy work of tail task i: kernels plus blocking
//                       receives, writing only task-private storage.  Runs
//                       concurrently on pool workers (worker >= 0) or inline
//                       on the rank thread (worker == -1) when the committer
//                       reaches an unclaimed task.
//   commit(i)           all shared side effects of task i: contribution
//                       scatters, AUB countdowns and sends, cache inserts.
//                       Called only by the rank thread, in index order —
//                       which is exactly K_p order, so the factorization is
//                       bitwise identical to the fully static run for every
//                       steal timing.
//   on_steal(i, worker) tracing hook, invoked by the claiming worker thread
//                       right after it claimed task i.
//
// Readiness is same-rank: task i becomes computable once all of its
// same-rank predecessors have *committed* (`waiting` counts them, `succ`
// lists dependents).  Cross-rank dependencies are blocking receives inside
// compute(); they are cancellable (rt::CancelledError) so the pool can
// always be joined, even mid-receive.
//
// Deadlock-freedom: the committer never waits on a task nobody is running —
// if the next task to commit is still unclaimed it computes it inline, so
// the set of waits is a subset of the fully static schedule's waits.
//
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "mc/sync.hpp"
#include "support/types.hpp"

namespace pastix {

class TailScheduler {
public:
  using ComputeFn = std::function<void(std::size_t idx, int worker)>;
  using CommitFn = std::function<void(std::size_t idx)>;
  using StealFn = std::function<void(std::size_t idx, int worker)>;

  /// `waiting[i]` = number of same-rank tail predecessors of tail task i;
  /// `succ[i]` = tail indices unlocked when i commits.  `workers` pool
  /// threads are spawned (clamped to >= 1); `seed` drives each worker's
  /// steal order — a pure chaos knob, never an output-affecting one.
  TailScheduler(std::size_t ntail, std::vector<idx_t> waiting,
                std::vector<std::vector<std::size_t>> succ, idx_t workers,
                std::uint64_t seed);

  /// Flag handed to compute() closures for rt::Comm::recv_cancellable —
  /// raised on teardown (error or completion) to unpark blocked workers.
  [[nodiscard]] const mc::atomic<bool>& cancel_flag() const {
    return cancel_;
  }

  /// Run the whole tail: computes on the pool + inline, commits in index
  /// order on the calling thread.  Rethrows the first failure (from a
  /// worker compute, an inline compute, or a commit) after joining every
  /// worker, so no pool thread outlives this call.
  void run(const ComputeFn& compute, const CommitFn& commit,
           const StealFn& on_steal);

private:
  enum class St : std::uint8_t {
    kBlocked,   ///< same-rank predecessors not all committed
    kReady,     ///< computable, waiting to be claimed
    kClaimed,   ///< a worker (or the committer, inline) is computing it
    kComputed,  ///< compute done, awaiting its commit slot
    kCommitted,
  };

  void worker_body(int w, const ComputeFn& compute, const StealFn& on_steal);
  void fail_locked(std::exception_ptr e);
  std::size_t pick_ready_locked(std::uint64_t& rng);

  std::size_t ntail_;
  std::vector<idx_t> waiting_;
  std::vector<std::vector<std::size_t>> succ_;
  idx_t workers_;
  std::uint64_t seed_;

  mc::mutex mutex_;
  mc::condition_variable cv_;
  std::vector<St> state_;
  std::vector<std::size_t> ready_;
  std::exception_ptr error_;
  bool stop_ = false;
  mc::atomic<bool> cancel_{false};
};

} // namespace pastix
