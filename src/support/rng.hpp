#pragma once
//
// Small deterministic random number generator (splitmix64 / xoshiro256**).
//
// We avoid std::mt19937 in library code because its state is large and its
// sequences differ between standard library implementations; reproducible
// problem generation matters for the experiment harness.
//
#include <cstdint>

namespace pastix {

/// splitmix64 — used to seed xoshiro and for cheap stateless hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

} // namespace pastix
