#pragma once
//
// Wall-clock timer used for kernel calibration and benchmark reporting.
//
#include <chrono>

namespace pastix {

/// Monotonic wall-clock stopwatch.  Started on construction.
class Timer {
public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

} // namespace pastix
