#pragma once
//
// Error handling and invariant checking.
//
// - PASTIX_CHECK(cond, msg): precondition / input validation; always on,
//   throws pastix::Error so callers can recover from bad user input.
// - PASTIX_ASSERT(cond): internal invariant; compiled out in NDEBUG builds.
//
#include <sstream>
#include <stdexcept>
#include <string>

namespace pastix {

/// Exception thrown on invalid input or unsatisfiable requests.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
} // namespace detail

} // namespace pastix

#define PASTIX_CHECK(cond, msg)                                               \
  do {                                                                        \
    if (!(cond))                                                              \
      ::pastix::detail::throw_check_failure(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define PASTIX_ASSERT(cond) ((void)0)
#else
#define PASTIX_ASSERT(cond) PASTIX_CHECK(cond, "internal invariant violated")
#endif
