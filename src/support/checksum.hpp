#pragma once
//
// CRC32C (Castagnoli) — the shared data-integrity primitive.
//
// Every integrity choke point in the system (resilient messages in rt::Comm,
// checkpoint slots and files in rt::Checkpoint, committed factor panels in
// the fan-in executor, the plan-file footer) uses this one checksum so a
// corruption diagnostic always means the same thing: "these bytes are not
// the bytes that were written".
//
// Two implementations behind one entry point, dispatched once at runtime:
// the SSE4.2 `crc32` instruction on x86-64 (the polynomial it implements is
// exactly CRC-32C, so results are bit-identical), and a software slice-by-8
// fallback — eight 256-entry tables generated at first use, 8 bytes per
// iteration.  The hardware path is what keeps bulk checksumming (factor
// seals and scrubs over megabytes of panels) inside the <5% integrity
// overhead budget (bench/integrity_overhead); identical results across
// paths matter because checksums are persisted (checkpoint files, the plan
// footer), and support_test cross-checks the two on every build.
//
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PASTIX_CRC32C_X86 1
#include <cpuid.h>
#endif

namespace pastix {

namespace detail {

// Reflected Castagnoli polynomial (CRC-32C, as used by iSCSI / SSE4.2 crc32).
inline constexpr uint32_t kCrc32cPoly = 0x82F63B78u;

struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (c >> 1) ^ kCrc32cPoly : (c >> 1);
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i)
      for (size_t s = 1; s < 8; ++s)
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFFu];
  }
};

inline const Crc32cTables& crc32c_tables() {
  static const Crc32cTables tables;
  return tables;
}

#ifdef PASTIX_CRC32C_X86
/// Raw (pre/post-inversion handled by the caller) CRC-32C via the SSE4.2
/// `crc32` instruction — one 8-byte step per cycle on every x86-64 core of
/// the last decade.  The target attribute lets this compile without
/// -msse4.2 on the whole translation unit; it is only ever called behind
/// the cpuid check below.
__attribute__((target("sse4.2"))) inline uint32_t crc32c_hw(
    const unsigned char* p, size_t n, uint32_t crc) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof word);  // alignment-safe load
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n--) c32 = __builtin_ia32_crc32qi(c32, *p++);
  return c32;
}

inline bool crc32c_hw_available() {
  static const bool ok = [] {
    unsigned a = 0, b = 0, c = 0, d = 0;
    return __get_cpuid(1, &a, &b, &c, &d) && (c & bit_SSE4_2) != 0;
  }();
  return ok;
}
#endif

} // namespace detail

/// Portable slice-by-8 CRC32C — the reference implementation the hardware
/// path must agree with bit-for-bit (support_test cross-checks them).
/// `seed` chains: `crc32c(b, nb, crc32c(a, na))` == `crc32c(ab, na + nb)`.
inline uint32_t crc32c_portable(const void* data, size_t n,
                                uint32_t seed = 0) {
  const auto& t = detail::crc32c_tables().t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (n >= 8) {
    // Byte-wise loads: alignment-safe and free of endianness assumptions.
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    const uint32_t hi = static_cast<uint32_t>(p[4]) |
                        static_cast<uint32_t>(p[5]) << 8 |
                        static_cast<uint32_t>(p[6]) << 16 |
                        static_cast<uint32_t>(p[7]) << 24;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
          t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
          t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

/// One-shot CRC32C over a byte range; hardware-accelerated where the CPU
/// supports it, identical results either way.  `seed` is a previously
/// returned checksum, so `crc32c(b, nb, crc32c(a, na))` ==
/// `crc32c(ab, na + nb)`; the default seed 0 is the empty-message checksum.
inline uint32_t crc32c(const void* data, size_t n, uint32_t seed = 0) {
#ifdef PASTIX_CRC32C_X86
  if (detail::crc32c_hw_available())
    return ~detail::crc32c_hw(static_cast<const unsigned char*>(data), n,
                              ~seed);
#endif
  return crc32c_portable(data, n, seed);
}

/// Incremental accumulator for streamed data (plan-file writer/reader wrap
/// their byte streams in one of these and compare at the footer).
class Crc32c {
public:
  void update(const void* data, size_t n) { crc_ = crc32c(data, n, crc_); }
  uint32_t value() const { return crc_; }
  void reset() { crc_ = 0; }

private:
  uint32_t crc_ = 0;
};

} // namespace pastix
