#pragma once
//
// Scalar helpers shared by real and complex code paths.  The library's
// complex path is complex *symmetric* (LDL^t with transpose, no conjugate),
// so the only helpers needed are magnitude checks.
//
#include <cmath>
#include <complex>

namespace pastix {

/// Squared magnitude, usable on both scalar types.
inline double abs2(double v) { return v * v; }
inline double abs2(const std::complex<double>& v) { return std::norm(v); }

} // namespace pastix
