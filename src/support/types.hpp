#pragma once
//
// Fundamental integer types used throughout the library.
//
// Matrices handled by this reproduction have fewer than 2^31 rows and
// structural nonzeros, so column/row/block indices are 32-bit.  Quantities
// that can overflow 32 bits (factor nonzero counts, operation counts,
// byte volumes) are 64-bit.
//
#include <cstdint>

namespace pastix {

/// Index of a row, column, vertex, column block or block.
using idx_t = std::int32_t;

/// Large counters: NNZ(L), operation counts, byte volumes.
using big_t = std::int64_t;

/// Sentinel for "no index" (absent parent, unmapped, ...).
inline constexpr idx_t kNone = -1;

} // namespace pastix
