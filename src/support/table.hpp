#pragma once
//
// Tiny plain-text table formatter used by the experiment harnesses to print
// paper-style tables (Table 1, Table 2, ablations).
//
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace pastix {

/// Collects rows of string cells and prints them with aligned columns.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells) {
    PASTIX_CHECK(cells.size() == header_.size(), "row arity mismatch");
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    auto line = [&](char fill) {
      for (std::size_t c = 0; c < width.size(); ++c)
        os << "+" << std::string(width[c] + 2, fill);
      os << "+\n";
    };
    auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c)
        os << "| " << std::setw(static_cast<int>(width[c])) << row[c] << " ";
      os << "|\n";
    };

    line('-');
    emit(header_);
    line('=');
    for (const auto& row : rows_) emit(row);
    line('-');
  }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision (fixed notation).
inline std::string fmt_fixed(double v, int prec = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

/// Format a large count in scientific notation like the paper ("3.14e+07").
inline std::string fmt_sci(double v, int prec = 2) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(prec) << v;
  return os.str();
}

} // namespace pastix
