#pragma once
//
// Systematic concurrency exploration — the public API of the in-repo model
// checker (DESIGN.md §16).
//
// explore() runs a test body many times under a cooperative scheduler that
// controls every synchronization operation performed through the mc:: shim
// (src/mc/sync.hpp) and the instrumented sim types (src/mc/sim.hpp).  Exactly
// one checked thread is runnable at a time; each schedule is a sequence of
// thread choices at the synchronization points.  Two exploration modes:
//
//   kExhaustive — depth-first enumeration of all schedules with sleep-set
//                 partial-order reduction: independent operations (different
//                 objects, or read/read on the same object) are not permuted
//                 against each other, which shrinks small protocol state
//                 spaces by orders of magnitude while staying sound for
//                 safety properties.
//   kPct        — seeded PCT-style randomized priority schedules: each run
//                 assigns random thread priorities plus (depth-1) priority
//                 change points; good probabilistic bug-depth guarantees for
//                 state spaces too large to exhaust.
//
// Any failing schedule is reproducible: Failure::replay_token() prints a
// stable "mc:v1:<choices>" token and replay() re-executes exactly that
// interleaving.
//
// The explorer and sim types are compiled in every build configuration (the
// default-build smoke test explores sim primitives directly); the PASTIX_MC
// option only switches which types the mc:: aliases in sync.hpp name.
//
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace pastix::mc {

/// Named diagnostics.  Every failure the explorer reports carries exactly one
/// of these codes plus a site label and the interleaving that produced it.
enum class Diag : std::uint8_t {
  kNone = 0,
  kDataRace,        ///< unordered conflicting accesses to an annotated location
  kDeadlock,        ///< every live thread blocked; a wait-for cycle exists
  kLostWakeup,      ///< every live thread blocked; a cv waiter can never wake
  kDoubleRelease,   ///< unlock (or cv wait) on a mutex the thread does not hold
  kInvalidJoin,     ///< join of a default-constructed or already-joined thread
  kAssertFailed,    ///< mc::require(...) violated under some schedule
  kException,       ///< uncaught exception escaped a checked thread
  kStepLimit,       ///< a schedule exceeded max_steps (possible livelock)
  kReplayMismatch,  ///< replay token does not match this body/binary
};

[[nodiscard]] const char* diag_name(Diag d);

struct Options {
  enum class Mode { kExhaustive, kPct };
  Mode mode = Mode::kExhaustive;
  /// Schedule budget.  Exhaustive mode stops early (Result::complete false)
  /// when the reduced space is larger; PCT runs exactly this many schedules.
  int max_schedules = 10000;
  /// Per-schedule step budget; exceeding it reports kStepLimit.
  int max_steps = 20000;
  /// PCT seed: priorities and change points derive from seed + schedule index.
  std::uint64_t seed = 0x5eedULL;
  /// PCT depth bound d: d-1 priority change points per schedule.
  int pct_depth = 3;
  /// Stop at the first failure (default).  When false, keeps exploring and
  /// reports the first failure found anyway, with full schedule counts.
  bool stop_on_first = true;
  /// When non-empty, run exactly one schedule following this choice list
  /// (produced by Failure::choices / parse_replay_token).
  std::vector<std::uint16_t> replay;
};

struct Failure {
  Diag diag = Diag::kNone;
  std::string label;    ///< short site name, e.g. "comm mailbox"
  std::string message;  ///< human-readable description
  int schedule = 0;     ///< index of the failing schedule within the run
  std::uint64_t seed = 0;
  std::vector<std::uint16_t> choices;  ///< thread picked at each step
  std::vector<std::string> trace;      ///< formatted tail of the interleaving
  [[nodiscard]] std::string replay_token() const;
  [[nodiscard]] std::string format() const;
};

struct Result {
  bool ok = true;
  bool complete = false;  ///< exhaustive mode: the whole reduced space ran
  int schedules = 0;
  std::uint64_t steps = 0;
  std::optional<Failure> failure;
};

/// Explore `body` under many schedules.  The body runs on a checked thread;
/// any mc:: primitives (and sim:: types) it touches are scheduled.  Not
/// reentrant: one exploration at a time per process.
Result explore(const Options& opt, const std::function<void()>& body);

/// Re-run one exact interleaving from a token printed by a previous failure.
Result replay(const std::string& token, const std::function<void()>& body);

[[nodiscard]] std::optional<std::vector<std::uint16_t>> parse_replay_token(
    const std::string& token);

/// Model-checked assertion.  Under exploration a violation halts the schedule
/// with Diag::kAssertFailed and `label`; outside exploration it throws
/// pastix::Error so plain unit tests still fail loudly.
void require(bool cond, const char* label);

/// True while the calling thread executes under an active explorer.
[[nodiscard]] bool under_exploration();

} // namespace pastix::mc
