#pragma once
//
// Instrumented synchronization primitives for the model checker.
//
// Each type below has two personalities:
//
//   * Under an active explorer (mc::explore), every operation first announces
//     itself to the cooperative scheduler and parks until the scheduler picks
//     this thread.  The scheduler interleaves announced operations one at a
//     time, drives the vector-clock race detector, and classifies blocked
//     states (deadlock / lost wakeup).  Mutex and condition-variable blocking
//     is purely virtual — no real wait ever happens on the fallback objects.
//
//   * Outside exploration (library code in an MC build running ordinary unit
//     tests, or setup code on unmanaged threads), each type degrades to a
//     plain std-backed primitive with identical semantics.
//
// These types are compiled in every build; the PASTIX_MC option only decides
// whether the mc:: aliases in sync.hpp point here or at the std:: types.
//
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>

namespace pastix::mc::sim {

namespace detail {

/// True when the calling thread is managed by an active explorer.
[[nodiscard]] bool scheduled();

void mutex_lock(const void* m);
[[nodiscard]] bool mutex_try_lock(const void* m);
void mutex_unlock(const void* m);

/// Returns true when the wait ended by timeout (timed waits only).
bool cv_wait(const void* cv, const void* m, bool timed,
             std::int64_t deadline_ns);
void cv_notify(const void* cv, bool all);

void atomic_access(const void* obj, bool write);
void plain_access(const void* obj, bool write, const char* what);

[[nodiscard]] std::uint64_t thread_spawn(std::function<void()> body);
void thread_join(std::uint64_t id);
/// Report a join on a thread object that owns nothing (kInvalidJoin).
void invalid_join(const char* what);

[[nodiscard]] std::int64_t virtual_now_ns();
void sleep_ns(std::int64_t ns);

} // namespace detail

/// Virtual time source.  Under exploration, time only advances when every
/// live thread is blocked on a timed wait (the scheduler jumps to the
/// earliest deadline); outside exploration it mirrors steady_clock.
struct VirtualClock {
  using rep = std::int64_t;
  using period = std::nano;
  using duration = std::chrono::nanoseconds;
  using time_point = std::chrono::time_point<VirtualClock, duration>;
  static constexpr bool is_steady = true;
  static time_point now() {
    return time_point(duration(detail::virtual_now_ns()));
  }
};

class CondVar;

class Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    if (detail::scheduled()) {
      detail::mutex_lock(this);
      return;
    }
    fallback_.lock();
  }
  bool try_lock() {
    if (detail::scheduled()) return detail::mutex_try_lock(this);
    return fallback_.try_lock();
  }
  void unlock() {
    if (detail::scheduled()) {
      detail::mutex_unlock(this);
      return;
    }
    fallback_.unlock();
  }

private:
  friend class CondVar;
  std::mutex fallback_;
};

class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { notify(false); }
  void notify_all() { notify(true); }

  void wait(std::unique_lock<Mutex>& lock) {
    if (detail::scheduled()) {
      detail::cv_wait(this, lock.mutex(), /*timed=*/false, 0);
      return;
    }
    fallback_.wait(lock);
  }
  template <class Pred>
  void wait(std::unique_lock<Mutex>& lock, Pred pred) {
    while (!pred()) wait(lock);
  }

  template <class Clock2, class Dur>
  std::cv_status wait_until(std::unique_lock<Mutex>& lock,
                            const std::chrono::time_point<Clock2, Dur>& tp) {
    if (detail::scheduled()) {
      const std::int64_t deadline = to_virtual_ns(tp);
      const bool timed_out =
          detail::cv_wait(this, lock.mutex(), /*timed=*/true, deadline);
      return timed_out ? std::cv_status::timeout : std::cv_status::no_timeout;
    }
    return fallback_.wait_until(lock, tp);
  }
  template <class Clock2, class Dur, class Pred>
  bool wait_until(std::unique_lock<Mutex>& lock,
                  const std::chrono::time_point<Clock2, Dur>& tp, Pred pred) {
    while (!pred()) {
      if (wait_until(lock, tp) == std::cv_status::timeout) return pred();
    }
    return true;
  }

  template <class Rep, class Per>
  std::cv_status wait_for(std::unique_lock<Mutex>& lock,
                          const std::chrono::duration<Rep, Per>& d) {
    return wait_until(lock, VirtualClock::now() + clamp_duration(d));
  }
  template <class Rep, class Per, class Pred>
  bool wait_for(std::unique_lock<Mutex>& lock,
                const std::chrono::duration<Rep, Per>& d, Pred pred) {
    return wait_until(lock, VirtualClock::now() + clamp_duration(d),
                      std::move(pred));
  }

private:
  void notify(bool all) {
    if (detail::scheduled()) {
      detail::cv_notify(this, all);
      return;
    }
    if (all)
      fallback_.notify_all();
    else
      fallback_.notify_one();
  }

  /// Convert any clock's time_point into virtual nanoseconds, clamping the
  /// far future (e.g. time_point::max() sentinels) so arithmetic can't
  /// overflow.  Foreign clocks convert via their remaining duration — under
  /// exploration real clocks barely advance, so the offset is faithful.
  template <class Clock2, class Dur>
  static std::int64_t to_virtual_ns(
      const std::chrono::time_point<Clock2, Dur>& tp) {
    if constexpr (std::is_same_v<Clock2, VirtualClock>) {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 tp.time_since_epoch())
          .count();
    } else {
      const auto remain = clamp_duration(tp - Clock2::now());
      return (VirtualClock::now() + remain).time_since_epoch().count();
    }
  }

  template <class Rep, class Per>
  static std::chrono::nanoseconds clamp_duration(
      const std::chrono::duration<Rep, Per>& d) {
    // ~29 years of virtual headroom; anything longer is a "never" sentinel.
    constexpr std::int64_t kMaxNs = std::int64_t{1} << 60;
    if (d <= std::chrono::duration<Rep, Per>::zero())
      return std::chrono::nanoseconds(0);
    const auto capped =
        std::chrono::duration_cast<std::chrono::duration<double>>(d);
    if (capped.count() * 1e9 >= static_cast<double>(kMaxNs))
      return std::chrono::nanoseconds(kMaxNs);
    return std::chrono::duration_cast<std::chrono::nanoseconds>(d);
  }

  std::condition_variable_any fallback_;
};

template <class T>
class Atomic {
public:
  Atomic() noexcept = default;
  constexpr Atomic(T v) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order = std::memory_order_seq_cst) const noexcept {
    touch(/*write=*/false);
    return v_.load(std::memory_order_seq_cst);
  }
  void store(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
    touch(/*write=*/true);
    v_.store(v, std::memory_order_seq_cst);
  }
  T exchange(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
    touch(/*write=*/true);
    return v_.exchange(v, std::memory_order_seq_cst);
  }
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order = std::memory_order_seq_cst) noexcept {
    touch(/*write=*/true);
    return v_.compare_exchange_strong(expected, desired,
                                      std::memory_order_seq_cst);
  }
  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order = std::memory_order_seq_cst) noexcept {
    return compare_exchange_strong(expected, desired);
  }

  template <class U = T,
            class = std::enable_if_t<std::is_integral_v<U> &&
                                     !std::is_same_v<U, bool>>>
  T fetch_add(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
    touch(/*write=*/true);
    return v_.fetch_add(v, std::memory_order_seq_cst);
  }
  template <class U = T,
            class = std::enable_if_t<std::is_integral_v<U> &&
                                     !std::is_same_v<U, bool>>>
  T fetch_sub(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
    touch(/*write=*/true);
    return v_.fetch_sub(v, std::memory_order_seq_cst);
  }

  operator T() const noexcept { return load(); }  // NOLINT
  T operator=(T v) noexcept {
    store(v);
    return v;
  }

private:
  void touch(bool write) const noexcept {
    if (detail::scheduled()) detail::atomic_access(this, write);
  }
  std::atomic<T> v_{};
};

/// Drop-in std::thread replacement.  Under exploration the body becomes a
/// scheduler-managed virtual thread; otherwise it is a real std::thread.
class Thread {
public:
  Thread() noexcept = default;
  template <class F, class... Args,
            class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Thread>>>
  explicit Thread(F&& f, Args&&... args) {
    if (detail::scheduled()) {
      vid_ = detail::thread_spawn(
          [fn = std::bind(std::forward<F>(f), std::forward<Args>(args)...)]()
              mutable { fn(); });
    } else {
      sys_ = std::thread(std::forward<F>(f), std::forward<Args>(args)...);
    }
  }
  Thread(Thread&& other) noexcept
      : sys_(std::move(other.sys_)), vid_(other.vid_) {
    other.vid_ = 0;
  }
  Thread& operator=(Thread&& other) noexcept {
    if (this != &other) {
      if (joinable()) std::terminate();  // mirror std::thread
      sys_ = std::move(other.sys_);
      vid_ = other.vid_;
      other.vid_ = 0;
    }
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  ~Thread() {
    // std::thread terminates here; under exploration the explorer reports a
    // leak diagnostic instead (the real thread is pooled and reclaimed).
    if (sys_.joinable()) std::terminate();
  }

  [[nodiscard]] bool joinable() const noexcept {
    return vid_ != 0 || sys_.joinable();
  }
  void join() {
    if (vid_ != 0) {
      const std::uint64_t id = vid_;
      vid_ = 0;
      detail::thread_join(id);
      return;
    }
    if (detail::scheduled() && !sys_.joinable()) {
      detail::invalid_join("join of a thread that was never started");
      return;
    }
    sys_.join();
  }
  [[nodiscard]] std::thread::id get_id() const noexcept {
    return sys_.get_id();
  }

private:
  std::thread sys_;
  std::uint64_t vid_ = 0;
};

template <class Rep, class Per>
inline void sleep_for(const std::chrono::duration<Rep, Per>& d) {
  if (detail::scheduled()) {
    detail::sleep_ns(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
    return;
  }
  std::this_thread::sleep_for(d);
}

/// Race-detector annotations for plain (non-atomic) shared state.  Call with
/// the address of the guarded structure just before reading/writing it; the
/// vector-clock detector flags any pair of unordered conflicting accesses.
inline void race_read(const void* obj, const char* what) {
  if (detail::scheduled()) detail::plain_access(obj, /*write=*/false, what);
}
inline void race_write(const void* obj, const char* what) {
  if (detail::scheduled()) detail::plain_access(obj, /*write=*/true, what);
}

} // namespace pastix::mc::sim
