#pragma once
//
// The mc:: synchronization shim (DESIGN.md §16).
//
// Concurrency-bearing layers (rt/comm, rt/checkpoint, rt/resilient,
// solver/hybrid_pool, solver/fanin, service, core/plan_cache) declare their
// primitives through these aliases instead of naming std:: types directly:
//
//   mc::mutex, mc::condition_variable, mc::atomic<T>, mc::thread, mc::clock,
//   mc::sleep_for, mc::race_read/race_write
//
// In a normal build the aliases ARE the std:: types — zero overhead, checked
// by the static_asserts below — and the race annotations are empty inlines.
// Under -DPASTIX_MC=ON they become the instrumented sim types (sim.hpp),
// which route every operation through the cooperative explorer when one is
// active and degrade to plain std-backed behavior otherwise.
//
#include "mc/hooks.hpp"

#ifdef PASTIX_MC

#include "mc/sim.hpp"

namespace pastix::mc {

using mutex = sim::Mutex;
using condition_variable = sim::CondVar;
template <class T>
using atomic = sim::Atomic<T>;
using thread = sim::Thread;
using clock = sim::VirtualClock;

template <class Rep, class Per>
inline void sleep_for(const std::chrono::duration<Rep, Per>& d) {
  sim::sleep_for(d);
}

inline void race_read(const void* obj, const char* what) {
  sim::race_read(obj, what);
}
inline void race_write(const void* obj, const char* what) {
  sim::race_write(obj, what);
}

} // namespace pastix::mc

#else  // production: the shim compiles to the std:: types

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <type_traits>

namespace pastix::mc {

using mutex = std::mutex;
using condition_variable = std::condition_variable;
template <class T>
using atomic = std::atomic<T>;
using thread = std::thread;
using clock = std::chrono::steady_clock;

template <class Rep, class Per>
inline void sleep_for(const std::chrono::duration<Rep, Per>& d) {
  std::this_thread::sleep_for(d);
}

inline void race_read(const void* obj, const char* what) {
  (void)obj;
  (void)what;
}
inline void race_write(const void* obj, const char* what) {
  (void)obj;
  (void)what;
}

// Zero-overhead parity checks: in production the aliases must BE the std::
// types (same layout, same API), so migrated code compiles to exactly what
// it compiled to before the shim existed.
static_assert(std::is_same_v<mutex, std::mutex>);
static_assert(std::is_same_v<condition_variable, std::condition_variable>);
static_assert(std::is_same_v<atomic<bool>, std::atomic<bool>>);
static_assert(std::is_same_v<atomic<std::uint64_t>, std::atomic<std::uint64_t>>);
static_assert(std::is_same_v<thread, std::thread>);
static_assert(std::is_same_v<clock, std::chrono::steady_clock>);
static_assert(sizeof(mutex) == sizeof(std::mutex));
static_assert(sizeof(atomic<long>) == sizeof(std::atomic<long>));

} // namespace pastix::mc

#endif // PASTIX_MC
