//
// The cooperative scheduler, schedule explorer and vector-clock race
// detector behind mc::explore (DESIGN.md §16).
//
// Execution model: checked virtual threads run on pooled OS threads, but the
// scheduler enforces that exactly one is ever unparked.  Every operation on a
// sim:: primitive announces itself (a PendingOp) and parks; the scheduler
// picks one announced operation at a time, applies its semantics against the
// virtual object states (mutex ownership, cv wait queues, vector clocks),
// and resumes the chosen thread until it announces its next operation.  A
// schedule is therefore exactly the sequence of thread indices chosen at
// each step — which is what replay tokens record.
//
// Failure teardown: the first diagnostic halts the schedule.  Parked threads
// are then drained one at a time; operations that would block (cv waits,
// sleeps, joins of unfinished threads) throw ExecutionHalted — deliberately
// NOT derived from std::exception so library catch blocks pass it through —
// while operations that run inside destructors (unlock, notify) complete
// benignly so unwinding never double-throws.
//
#include "mc/explore.hpp"
#include "mc/hooks.hpp"
#include "mc/sim.hpp"

#include "support/check.hpp"
#include "support/rng.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>

namespace pastix::mc {

namespace hooks {
Mutations& mutations() {
  static Mutations m;
  return m;
}
void reset_mutations() { mutations() = Mutations{}; }
} // namespace hooks

namespace {

/// Thrown into checked threads to unwind them after a schedule halts.
/// Intentionally not a std::exception so `catch (const std::exception&)`
/// in library code cannot swallow it.
struct ExecutionHalted {};

struct VectorClock {
  std::vector<std::uint32_t> c;
  [[nodiscard]] std::uint32_t at(std::size_t i) const {
    return i < c.size() ? c[i] : 0;
  }
  void grow(std::size_t n) {
    if (c.size() < n) c.resize(n, 0);
  }
  void bump(std::size_t i) {
    grow(i + 1);
    c[i]++;
  }
  void join(const VectorClock& o) {
    grow(o.c.size());
    for (std::size_t i = 0; i < o.c.size(); ++i) c[i] = std::max(c[i], o.c[i]);
  }
  /// True when every entry of *this is visible to (<=) `o` — happens-before.
  [[nodiscard]] bool leq(const VectorClock& o) const {
    for (std::size_t i = 0; i < c.size(); ++i)
      if (c[i] > o.at(i)) return false;
    return true;
  }
  void clear() { c.clear(); }
};

enum class OpKind : std::uint8_t {
  kStart,        ///< first scheduling of a fresh thread
  kSpawn,
  kJoin,
  kLock,
  kTryLock,
  kUnlock,
  kCvWait,       ///< announce: release mutex + park on the cv
  kCvReacquire,  ///< woken waiter re-acquiring the mutex
  kCvNotify,
  kAtomic,
  kPlain,
  kSleep,
  kSleepDone,
};

struct PendingOp {
  OpKind kind = OpKind::kStart;
  const void* a = nullptr;  ///< primary object (mutex / cv / atomic / var)
  const void* b = nullptr;  ///< the mutex of a cv operation
  std::size_t target = 0;   ///< join target cell index
  bool write = false;       ///< atomic/plain access direction
  bool all = false;         ///< notify_all
  bool timed = false;
  std::int64_t deadline = 0;
  const char* what = nullptr;
};

enum class Directive : std::uint8_t { kProceed, kThrowHalt };
enum class WaitKind : std::uint8_t { kNone, kCv, kSleep };

struct OpResult {
  bool flag = false;  ///< try_lock success / cv timed-out
};

struct Cell {
  std::thread sys;
  // Handshake (all fields below guarded by Global::mx).
  bool busy = false;    ///< hosting a virtual thread this run
  bool parked = false;  ///< announced an op, waiting for the scheduler
  bool done = false;    ///< body finished this run
  int go = 0, gone = 0;
  std::function<void()> body;
  PendingOp op;
  WaitKind waitkind = WaitKind::kNone;
  bool wake_timeout = false;
  Directive directive = Directive::kProceed;
  OpResult result;
  VectorClock clk;
  std::exception_ptr uncaught;
  std::size_t index = 0;
};

struct MutexState {
  int owner = -1;
  VectorClock clk;
};
struct CvState {
  VectorClock clk;
};
struct VarState {
  VectorClock rd, wr;
  int last_writer = -1;
  const char* what = nullptr;
};

struct ObjName {
  const char* prefix;
  int idx;
};

struct Frame {
  std::vector<std::uint16_t> enabled;
  std::uint16_t chosen = 0;
  std::set<std::uint16_t> sleep;
};

struct TraceEv {
  std::uint16_t tid;
  PendingOp op;
};

constexpr std::size_t kMaxCells = 64;
constexpr std::size_t kTraceTail = 64;
constexpr std::uint64_t kHaltOpBudget = 2'000'000;

void cell_main(struct Cell* c);

struct Global {
  ~Global();

  std::mutex mx;
  std::condition_variable cv;
  std::atomic<bool> active{false};
  bool shutdown = false;

  std::vector<std::unique_ptr<Cell>> cells;
  std::size_t nused = 0;

  // Per-run virtual object state.
  std::unordered_map<const void*, MutexState> mutexes;
  std::unordered_map<const void*, CvState> cvs;
  std::unordered_map<const void*, VectorClock> atomics;
  std::unordered_map<const void*, VarState> vars;
  std::unordered_map<const void*, ObjName> names;
  int name_counts[4] = {0, 0, 0, 0};  // mutex, cv, atomic, var

  bool halting = false;
  bool pruned = false;
  std::uint64_t halt_ops = 0;
  std::int64_t vt_ns = 0;
  std::uint64_t steps = 0;
  int max_steps = 0;
  std::vector<std::uint16_t> choices;
  std::deque<TraceEv> trace;
  std::optional<Failure> failure;
  int cur_schedule = 0;
  std::uint64_t cur_seed = 0;

  // Exploration strategy state (exhaustive stack persists across runs).
  Options::Mode mode = Options::Mode::kExhaustive;
  std::vector<Frame> stack;
  std::size_t depth = 0;
  std::set<std::uint16_t> cur_sleep;
  const std::vector<std::uint16_t>* replay_script = nullptr;
  double pri[kMaxCells] = {};
  double min_pri = 0.0;
  std::set<std::uint64_t> change_points;
  Rng rng{0};
};

Global& global() {
  static Global g;
  return g;
}

Global::~Global() {
  {
    const std::lock_guard lk(mx);
    shutdown = true;
  }
  cv.notify_all();
  for (auto& c : cells)
    if (c->sys.joinable()) c->sys.join();
}

thread_local Cell* tls_cell = nullptr;

void cell_main(Cell* c) {
  Global& g = global();
  tls_cell = c;
  std::unique_lock lk(g.mx);
  for (;;) {
    g.cv.wait(lk, [&] { return g.shutdown || (c->busy && c->go != c->gone); });
    if (g.shutdown) return;
    c->gone = c->go;
    if (c->directive == Directive::kThrowHalt) c->directive = Directive::kProceed;
    auto body = std::move(c->body);
    c->body = nullptr;
    lk.unlock();
    std::exception_ptr err;
    try {
      body();
    } catch (const ExecutionHalted&) {
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    c->done = true;
    c->parked = false;
    c->uncaught = err;
    g.cv.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Naming and trace formatting
// ---------------------------------------------------------------------------

const char* kind_word(OpKind k) {
  switch (k) {
    case OpKind::kStart: return "start";
    case OpKind::kSpawn: return "spawn";
    case OpKind::kJoin: return "join";
    case OpKind::kLock: return "lock";
    case OpKind::kTryLock: return "try_lock";
    case OpKind::kUnlock: return "unlock";
    case OpKind::kCvWait: return "cv-wait";
    case OpKind::kCvReacquire: return "cv-wake";
    case OpKind::kCvNotify: return "notify";
    case OpKind::kAtomic: return "atomic";
    case OpKind::kPlain: return "access";
    case OpKind::kSleep: return "sleep";
    case OpKind::kSleepDone: return "sleep-done";
  }
  return "?";
}

std::string obj_name_locked(Global& g, const void* obj, int family,
                            const char* what) {
  static const char* kPrefix[4] = {"mutex", "cv", "atomic", "var"};
  auto it = g.names.find(obj);
  if (it == g.names.end()) {
    it = g.names.emplace(obj, ObjName{kPrefix[family], g.name_counts[family]++})
             .first;
  }
  std::string s = it->second.prefix;
  s += '#';
  s += std::to_string(it->second.idx);
  if (what != nullptr) {
    s += " (";
    s += what;
    s += ')';
  }
  return s;
}

int obj_family(OpKind k) {
  switch (k) {
    case OpKind::kLock:
    case OpKind::kTryLock:
    case OpKind::kUnlock: return 0;
    case OpKind::kCvWait:
    case OpKind::kCvReacquire:
    case OpKind::kCvNotify: return 1;
    case OpKind::kAtomic: return 2;
    case OpKind::kPlain: return 3;
    default: return -1;
  }
}

std::string describe_locked(Global& g, std::uint16_t tid, const PendingOp& op) {
  std::string s = "thread " + std::to_string(tid) + ": ";
  switch (op.kind) {
    case OpKind::kJoin:
      s += "join thread " + std::to_string(op.target);
      break;
    case OpKind::kAtomic:
      s += op.write ? "atomic-store " : "atomic-load ";
      s += obj_name_locked(g, op.a, 2, op.what);
      break;
    case OpKind::kPlain:
      s += op.write ? "write " : "read ";
      s += obj_name_locked(g, op.a, 3, op.what);
      break;
    case OpKind::kCvNotify:
      s += op.all ? "notify_all " : "notify_one ";
      s += obj_name_locked(g, op.a, 1, op.what);
      break;
    case OpKind::kCvWait:
    case OpKind::kCvReacquire:
      s += kind_word(op.kind);
      s += ' ';
      s += obj_name_locked(g, op.a, 1, nullptr);
      s += " / ";
      s += obj_name_locked(g, op.b, 0, nullptr);
      break;
    default: {
      s += kind_word(op.kind);
      const int fam = obj_family(op.kind);
      if (fam >= 0 && op.a != nullptr) {
        s += ' ';
        s += obj_name_locked(g, op.a, fam, op.what);
      }
      break;
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Failure recording
// ---------------------------------------------------------------------------

void record_failure_locked(Global& g, Diag diag, std::string label,
                           std::string message) {
  g.halting = true;
  if (g.failure) return;  // first diagnostic wins
  Failure f;
  f.diag = diag;
  f.label = std::move(label);
  f.message = std::move(message);
  f.schedule = g.cur_schedule;
  f.seed = g.cur_seed;
  f.choices = g.choices;
  for (const auto& ev : g.trace)
    f.trace.push_back(describe_locked(g, ev.tid, ev.op));
  g.failure = std::move(f);
}

// ---------------------------------------------------------------------------
// Op application (scheduler side, Global::mx held)
// ---------------------------------------------------------------------------

bool op_enabled_locked(Global& g, const Cell& c) {
  switch (c.op.kind) {
    case OpKind::kLock: {
      auto it = g.mutexes.find(c.op.a);
      return it == g.mutexes.end() || it->second.owner < 0;
    }
    case OpKind::kCvReacquire: {
      auto it = g.mutexes.find(c.op.b);
      return it == g.mutexes.end() || it->second.owner < 0;
    }
    case OpKind::kJoin:
      return c.op.target < g.nused && g.cells[c.op.target]->done;
    default:
      return true;
  }
}

void resume_and_wait_locked(Global& g, Cell& c, std::unique_lock<std::mutex>& lk) {
  c.parked = false;
  c.waitkind = WaitKind::kNone;
  c.go++;
  g.cv.notify_all();
  g.cv.wait(lk, [&] { return c.parked || c.done; });
}

void check_plain_access_locked(Global& g, Cell& c, const PendingOp& op) {
  auto& v = g.vars[op.a];
  if (op.what != nullptr) v.what = op.what;
  const std::size_t me = c.index;
  const auto conflict = [&](const VectorClock& prior) -> int {
    for (std::size_t u = 0; u < prior.c.size(); ++u)
      if (u != me && prior.c[u] > c.clk.at(u)) return static_cast<int>(u);
    return -1;
  };
  int other = conflict(v.wr);
  if (other < 0 && op.write) other = conflict(v.rd);
  if (other >= 0) {
    std::ostringstream msg;
    msg << "unordered " << (op.write ? "write" : "read") << " of "
        << obj_name_locked(g, op.a, 3, v.what) << " by thread " << me
        << " conflicts with an earlier access by thread " << other
        << " (no happens-before edge orders them)";
    record_failure_locked(g, Diag::kDataRace,
                          v.what != nullptr ? v.what : "unnamed location",
                          msg.str());
    return;
  }
  if (op.write) {
    v.wr.grow(me + 1);
    v.wr.c[me] = c.clk.at(me);
    v.last_writer = static_cast<int>(me);
  } else {
    v.rd.grow(me + 1);
    v.rd.c[me] = c.clk.at(me);
  }
}

/// Apply the semantics of the chosen cell's announced op.  Returns true when
/// the thread should be resumed afterwards (everything except parking waits).
bool apply_locked(Global& g, Cell& c) {
  const std::size_t me = c.index;
  c.clk.bump(me);
  switch (c.op.kind) {
    case OpKind::kStart:
    case OpKind::kSpawn:     // registration happened at announce time
    case OpKind::kSleepDone:
      return true;
    case OpKind::kJoin: {
      Cell& t = *g.cells[c.op.target];
      c.clk.join(t.clk);
      return true;
    }
    case OpKind::kLock: {
      auto& m = g.mutexes[c.op.a];
      m.owner = static_cast<int>(me);
      c.clk.join(m.clk);
      return true;
    }
    case OpKind::kTryLock: {
      auto& m = g.mutexes[c.op.a];
      if (m.owner < 0) {
        m.owner = static_cast<int>(me);
        c.clk.join(m.clk);
        c.result.flag = true;
      } else {
        c.result.flag = false;
      }
      return true;
    }
    case OpKind::kUnlock: {
      auto& m = g.mutexes[c.op.a];
      if (m.owner != static_cast<int>(me)) {
        record_failure_locked(
            g, Diag::kDoubleRelease, obj_name_locked(g, c.op.a, 0, nullptr),
            "thread " + std::to_string(me) + " released " +
                obj_name_locked(g, c.op.a, 0, nullptr) +
                (m.owner < 0 ? " which is not held (double release)"
                             : " held by thread " + std::to_string(m.owner)));
        return true;
      }
      m.owner = -1;
      m.clk = c.clk;
      return true;
    }
    case OpKind::kCvWait: {
      auto& m = g.mutexes[c.op.b];
      if (m.owner != static_cast<int>(me)) {
        record_failure_locked(
            g, Diag::kDoubleRelease, obj_name_locked(g, c.op.a, 1, nullptr),
            "thread " + std::to_string(me) + " waited on " +
                obj_name_locked(g, c.op.a, 1, nullptr) +
                " without holding " + obj_name_locked(g, c.op.b, 0, nullptr));
        return true;
      }
      m.owner = -1;
      m.clk = c.clk;
      (void)g.cvs[c.op.a];  // register the cv object
      c.waitkind = WaitKind::kCv;
      c.wake_timeout = false;
      return false;  // stays parked until notified or timed out
    }
    case OpKind::kCvReacquire: {
      auto& m = g.mutexes[c.op.b];
      m.owner = static_cast<int>(me);
      c.clk.join(m.clk);
      if (!c.wake_timeout) c.clk.join(g.cvs[c.op.a].clk);
      c.result.flag = c.wake_timeout;
      return true;
    }
    case OpKind::kCvNotify: {
      auto& cvs = g.cvs[c.op.a];
      cvs.clk.join(c.clk);
      for (std::size_t i = 0; i < g.nused; ++i) {
        Cell& w = *g.cells[i];
        if (!w.busy || w.done || w.waitkind != WaitKind::kCv) continue;
        if (w.op.a != c.op.a) continue;
        w.waitkind = WaitKind::kNone;
        w.op.kind = OpKind::kCvReacquire;
        w.wake_timeout = false;
        if (!c.op.all) break;  // notify_one wakes the lowest-index waiter
      }
      return true;
    }
    case OpKind::kAtomic: {
      auto& a = g.atomics[c.op.a];
      // Model every atomic as seq_cst: each access is totally ordered and
      // synchronizes-with prior accesses through the object's clock.
      c.clk.join(a);
      a.join(c.clk);
      return true;
    }
    case OpKind::kPlain:
      check_plain_access_locked(g, c, c.op);
      return true;
    case OpKind::kSleep:
      c.waitkind = WaitKind::kSleep;
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Blocked-state classification, time advance
// ---------------------------------------------------------------------------

void wake_expired_locked(Global& g) {
  for (std::size_t i = 0; i < g.nused; ++i) {
    Cell& c = *g.cells[i];
    if (!c.busy || c.done || c.waitkind == WaitKind::kNone) continue;
    const bool timed = c.waitkind == WaitKind::kSleep || c.op.timed;
    if (!timed || c.op.deadline > g.vt_ns) continue;
    if (c.waitkind == WaitKind::kSleep) {
      c.op.kind = OpKind::kSleepDone;
    } else {
      c.op.kind = OpKind::kCvReacquire;
      c.wake_timeout = true;
    }
    c.waitkind = WaitKind::kNone;
  }
}

bool advance_time_locked(Global& g) {
  std::int64_t earliest = 0;
  bool found = false;
  for (std::size_t i = 0; i < g.nused; ++i) {
    Cell& c = *g.cells[i];
    if (!c.busy || c.done || c.waitkind == WaitKind::kNone) continue;
    const bool timed = c.waitkind == WaitKind::kSleep || c.op.timed;
    if (!timed) continue;
    if (!found || c.op.deadline < earliest) earliest = c.op.deadline;
    found = true;
  }
  if (!found) return false;
  g.vt_ns = std::max(g.vt_ns, earliest);
  wake_expired_locked(g);
  return true;
}

void classify_blocked_locked(Global& g) {
  // Every live thread is blocked and no timed wait can fire.  Wait-for
  // edges: lock/reacquire -> mutex owner, join -> target.  A cycle (or a
  // dependence on a finished thread) is a deadlock; otherwise some untimed
  // cv waiter can never be woken — a lost wakeup.
  std::vector<int> waits_on(g.nused, -1);
  bool any_cv_waiter = false;
  for (std::size_t i = 0; i < g.nused; ++i) {
    Cell& c = *g.cells[i];
    if (!c.busy || c.done) continue;
    if (c.waitkind == WaitKind::kCv) {
      any_cv_waiter = true;
      continue;
    }
    switch (c.op.kind) {
      case OpKind::kLock:
        waits_on[i] = g.mutexes[c.op.a].owner;
        break;
      case OpKind::kCvReacquire:
        waits_on[i] = g.mutexes[c.op.b].owner;
        break;
      case OpKind::kJoin:
        waits_on[i] = static_cast<int>(c.op.target);
        break;
      default:
        break;
    }
  }
  bool cycle = false;
  for (std::size_t s = 0; s < g.nused && !cycle; ++s) {
    std::vector<bool> seen(g.nused, false);
    int u = static_cast<int>(s);
    while (u >= 0 && !seen[static_cast<std::size_t>(u)]) {
      seen[static_cast<std::size_t>(u)] = true;
      const std::size_t ui = static_cast<std::size_t>(u);
      if (g.cells[ui]->done) {
        u = -1;  // blocked on a finished thread: hopeless but acyclic
        break;
      }
      u = waits_on[ui];
    }
    if (u >= 0) cycle = true;
  }
  std::ostringstream msg;
  msg << "every live thread is blocked:";
  for (std::size_t i = 0; i < g.nused; ++i) {
    Cell& c = *g.cells[i];
    if (!c.busy || c.done) continue;
    msg << "\n  " << describe_locked(g, static_cast<std::uint16_t>(i), c.op);
    if (waits_on[i] >= 0) msg << " [waiting on thread " << waits_on[i] << "]";
  }
  if (cycle) {
    record_failure_locked(g, Diag::kDeadlock, "wait cycle", msg.str());
  } else if (any_cv_waiter) {
    record_failure_locked(g, Diag::kLostWakeup,
                          "condition variable waiter never notified",
                          msg.str());
  } else {
    record_failure_locked(g, Diag::kDeadlock, "unwakeable block", msg.str());
  }
}

// ---------------------------------------------------------------------------
// Choosers
// ---------------------------------------------------------------------------

bool read_only_op(const PendingOp& op) {
  return (op.kind == OpKind::kAtomic || op.kind == OpKind::kPlain) && !op.write;
}

void op_footprint(const PendingOp& op, const void* out[2]) {
  out[0] = out[1] = nullptr;
  switch (op.kind) {
    case OpKind::kLock:
    case OpKind::kTryLock:
    case OpKind::kUnlock:
    case OpKind::kCvNotify:
    case OpKind::kAtomic:
    case OpKind::kPlain:
      out[0] = op.a;
      break;
    case OpKind::kCvWait:
    case OpKind::kCvReacquire:
      out[0] = op.a;
      out[1] = op.b;
      break;
    case OpKind::kJoin:
      out[0] = reinterpret_cast<const void*>(op.target + 1);
      break;
    case OpKind::kSpawn:
      out[0] = reinterpret_cast<const void*>(std::uintptr_t{1});  // spawn slot order
      break;
    default:
      break;
  }
}

bool ops_independent(const PendingOp& p, const PendingOp& q) {
  const void* fp[2];
  const void* fq[2];
  op_footprint(p, fp);
  op_footprint(q, fq);
  bool share = false;
  for (const void* x : fp) {
    if (x == nullptr) continue;
    for (const void* y : fq)
      if (x == y) share = true;
  }
  if (!share) return true;
  return read_only_op(p) && read_only_op(q);
}

/// Exhaustive chooser with sleep-set reduction.  Returns the chosen cell
/// index, or -1 when this branch is fully covered (prune the run).
int choose_exhaustive_locked(Global& g, const std::vector<std::uint16_t>& en) {
  if (g.depth < g.stack.size()) {
    // Replaying the prefix of the current DFS path.
    Frame& f = g.stack[g.depth];
    if (std::find(en.begin(), en.end(), f.chosen) == en.end()) {
      record_failure_locked(
          g, Diag::kReplayMismatch, "nondeterministic body",
          "the DFS prefix diverged: the body must make identical scheduling "
          "announcements on every run (avoid real time and real randomness)");
      return -1;
    }
    const std::uint16_t chosen = f.chosen;
    g.cur_sleep.clear();
    for (const std::uint16_t q : f.sleep)
      if (ops_independent(g.cells[q]->op, g.cells[chosen]->op))
        g.cur_sleep.insert(q);
    g.depth++;
    return chosen;
  }
  std::uint16_t chosen = 0;
  bool have = false;
  for (const std::uint16_t t : en) {
    if (g.cur_sleep.count(t) != 0) continue;
    chosen = t;
    have = true;
    break;
  }
  if (!have) {
    // Every enabled move is in the sleep set: this state is fully explored
    // through other interleavings.  Abandon the schedule silently.
    g.pruned = true;
    g.halting = true;
    return -1;
  }
  Frame f;
  f.enabled = en;
  f.chosen = chosen;
  f.sleep = g.cur_sleep;
  g.stack.push_back(std::move(f));
  std::set<std::uint16_t> next_sleep;
  for (const std::uint16_t q : g.cur_sleep)
    if (ops_independent(g.cells[q]->op, g.cells[chosen]->op))
      next_sleep.insert(q);
  g.cur_sleep = std::move(next_sleep);
  g.depth++;
  return chosen;
}

int choose_pct_locked(Global& g, const std::vector<std::uint16_t>& en) {
  const auto highest = [&]() {
    std::uint16_t best = en[0];
    for (const std::uint16_t t : en)
      if (g.pri[t] > g.pri[best]) best = t;
    return best;
  };
  if (g.change_points.count(g.steps) != 0) {
    const std::uint16_t demoted = highest();
    g.min_pri -= 1.0;
    g.pri[demoted] = g.min_pri;
  }
  return highest();
}

int choose_replay_locked(Global& g, const std::vector<std::uint16_t>& en) {
  const std::size_t step = g.choices.size();
  if (step >= g.replay_script->size()) return en[0];  // past the recorded tail
  const std::uint16_t want = (*g.replay_script)[step];
  if (std::find(en.begin(), en.end(), want) == en.end()) {
    record_failure_locked(
        g, Diag::kReplayMismatch, "stale replay token",
        "replay step " + std::to_string(step) + " wants thread " +
            std::to_string(want) +
            " but it is not schedulable here; the token was produced by a "
            "different body or binary");
    return -1;
  }
  return want;
}

// ---------------------------------------------------------------------------
// Halt drain
// ---------------------------------------------------------------------------

void drain_locked(Global& g, std::unique_lock<std::mutex>& lk) {
  g.halting = true;
  for (;;) {
    // Reverse spawn order: children before parents.  A checked thread's
    // closure typically references state on its spawner's stack (a Comm, a
    // pool, a results vector), so the spawner must stay parked — its frame
    // alive — until every thread spawned after it has drained.  Cell
    // indices are allocated monotonically, so highest-index-first is
    // exactly youngest-first; a parent's join then always finds its target
    // done and completes (or unwinds) with no live reader of its stack.
    Cell* next = nullptr;
    for (std::size_t i = g.nused; i-- > 0;) {
      Cell& c = *g.cells[i];
      if (c.busy && !c.done) {
        next = &c;
        break;
      }
    }
    if (next == nullptr) break;
    Cell& c = *next;
    // Threads parked at a blocking point must unwind; everything else
    // completes benignly (halt-mode ops never park again).
    switch (c.op.kind) {
      case OpKind::kCvWait:
      case OpKind::kCvReacquire:
      case OpKind::kSleep:
        c.directive = Directive::kThrowHalt;
        break;
      case OpKind::kJoin:
        c.directive = (c.op.target < g.nused && g.cells[c.op.target]->done)
                          ? Directive::kProceed
                          : Directive::kThrowHalt;
        break;
      case OpKind::kLock: {
        auto& m = g.mutexes[c.op.a];
        if (m.owner < 0) m.owner = static_cast<int>(c.index);
        c.directive = Directive::kProceed;
        break;
      }
      case OpKind::kTryLock:
        c.result.flag = false;
        c.directive = Directive::kProceed;
        break;
      case OpKind::kUnlock:
        g.mutexes[c.op.a].owner = -1;
        c.directive = Directive::kProceed;
        break;
      default:
        c.directive = Directive::kProceed;
        break;
    }
    resume_and_wait_locked(g, c, lk);
  }
}

/// Thread-side op handling once the schedule has halted: never park, never
/// fail, throw only at points that are safe (no destructor ever blocks).
OpResult halt_inline_locked(Global& g, Cell& c, const PendingOp& op) {
  if (++g.halt_ops > kHaltOpBudget) {
    std::fprintf(stderr,
                 "mc: halt-drain budget exhausted (livelock while unwinding a "
                 "failed schedule)\n");
    if (g.failure)
      std::fprintf(stderr, "%s\n", g.failure->format().c_str());
    std::abort();
  }
  switch (op.kind) {
    case OpKind::kLock: {
      auto& m = g.mutexes[op.a];
      if (m.owner < 0) m.owner = static_cast<int>(c.index);
      return {};
    }
    case OpKind::kTryLock:
      return {false};
    case OpKind::kUnlock:
      g.mutexes[op.a].owner = -1;
      return {};
    case OpKind::kCvWait:
    case OpKind::kSleep:
      throw ExecutionHalted{};
    case OpKind::kJoin:
      if (op.target < g.nused && g.cells[op.target]->done) return {};
      throw ExecutionHalted{};
    default:
      return {};
  }
}

// ---------------------------------------------------------------------------
// Announce (thread side)
// ---------------------------------------------------------------------------

OpResult perform(PendingOp op) {
  Global& g = global();
  Cell* c = tls_cell;
  std::unique_lock lk(g.mx);
  if (g.halting) {
    // A join of a still-live thread cannot complete inline and must not
    // unwind either: the joiner's stack frame typically owns state the
    // target is executing against, so throwing here would destroy it under
    // the target's feet.  Park instead — the drain loop runs threads
    // youngest-first, so the target reaches `done` before the joiner is
    // resumed and the join then completes normally.
    const bool join_live = op.kind == OpKind::kJoin && op.target < g.nused &&
                           g.cells[op.target]->busy &&
                           !g.cells[op.target]->done;
    if (!join_live) return halt_inline_locked(g, *c, op);
  }
  c->op = op;
  c->parked = true;
  g.cv.notify_all();
  g.cv.wait(lk, [&] { return c->go != c->gone; });
  c->gone = c->go;
  if (c->directive == Directive::kThrowHalt) {
    c->directive = Directive::kProceed;
    throw ExecutionHalted{};
  }
  return c->result;
}

std::size_t alloc_cell_locked(Global& g, std::function<void()> body) {
  PASTIX_CHECK(g.nused < kMaxCells, "mc: too many threads in one exploration");
  if (g.nused == g.cells.size()) {
    auto cell = std::make_unique<Cell>();
    cell->index = g.cells.size();
    cell->sys = std::thread(cell_main, cell.get());
    g.cells.push_back(std::move(cell));
  }
  Cell& c = *g.cells[g.nused];
  c.busy = true;
  c.parked = true;
  c.done = false;
  c.body = std::move(body);
  c.op = PendingOp{};
  c.op.kind = OpKind::kStart;
  c.waitkind = WaitKind::kNone;
  c.wake_timeout = false;
  c.directive = Directive::kProceed;
  c.result = OpResult{};
  c.clk.clear();
  c.uncaught = nullptr;
  return g.nused++;
}

// ---------------------------------------------------------------------------
// One schedule
// ---------------------------------------------------------------------------

struct RunOutcome {
  bool pruned = false;
  std::uint64_t steps = 0;
};

RunOutcome run_schedule(Global& g, const std::function<void()>& body,
                        const Options& opt) {
  std::unique_lock lk(g.mx);
  // Reset per-run state.
  for (std::size_t i = 0; i < g.cells.size(); ++i) g.cells[i]->busy = false;
  g.nused = 0;
  g.mutexes.clear();
  g.cvs.clear();
  g.atomics.clear();
  g.vars.clear();
  g.names.clear();
  for (int& n : g.name_counts) n = 0;
  g.halting = false;
  g.pruned = false;
  g.halt_ops = 0;
  g.vt_ns = 0;
  g.steps = 0;
  g.max_steps = opt.max_steps;
  g.choices.clear();
  g.trace.clear();
  g.depth = 0;
  g.cur_sleep.clear();
  if (g.mode == Options::Mode::kPct) {
    g.rng = Rng(g.cur_seed);
    g.min_pri = 0.0;
    for (double& p : g.pri) p = g.rng.next_double();
    g.change_points.clear();
    const auto horizon =
        static_cast<std::uint64_t>(std::max(opt.max_steps / 4, 64));
    for (int i = 0; i + 1 < opt.pct_depth; ++i)
      g.change_points.insert(1 + g.rng.next_below(horizon));
  }

  alloc_cell_locked(g, body);

  for (;;) {
    if (g.halting) break;
    wake_expired_locked(g);
    std::vector<std::uint16_t> en;
    bool any_live = false;
    for (std::size_t i = 0; i < g.nused; ++i) {
      Cell& c = *g.cells[i];
      if (!c.busy || c.done) continue;
      any_live = true;
      if (c.parked && c.waitkind == WaitKind::kNone && op_enabled_locked(g, c))
        en.push_back(static_cast<std::uint16_t>(i));
    }
    if (en.empty()) {
      if (!any_live) break;  // schedule ran to completion
      if (advance_time_locked(g)) continue;
      classify_blocked_locked(g);
      break;
    }
    if (g.steps >= static_cast<std::uint64_t>(g.max_steps)) {
      record_failure_locked(
          g, Diag::kStepLimit, "schedule budget",
          "schedule exceeded max_steps=" + std::to_string(g.max_steps) +
              " synchronization operations (possible livelock, or raise "
              "Options::max_steps)");
      break;
    }
    int chosen;
    if (g.replay_script != nullptr)
      chosen = choose_replay_locked(g, en);
    else if (g.mode == Options::Mode::kExhaustive)
      chosen = choose_exhaustive_locked(g, en);
    else
      chosen = choose_pct_locked(g, en);
    if (chosen < 0) break;
    g.steps++;
    Cell& c = *g.cells[static_cast<std::size_t>(chosen)];
    g.choices.push_back(static_cast<std::uint16_t>(chosen));
    g.trace.push_back({static_cast<std::uint16_t>(chosen), c.op});
    if (g.trace.size() > kTraceTail) g.trace.pop_front();
    if (apply_locked(g, c)) resume_and_wait_locked(g, c, lk);
  }

  drain_locked(g, lk);

  if (!g.failure) {
    for (std::size_t i = 0; i < g.nused; ++i) {
      if (g.cells[i]->uncaught == nullptr) continue;
      std::string what = "unknown exception";
      try {
        std::rethrow_exception(g.cells[i]->uncaught);
      } catch (const std::exception& e) {
        what = e.what();
      } catch (...) {
      }
      record_failure_locked(g, Diag::kException, "uncaught exception",
                            "thread " + std::to_string(i) +
                                " terminated with: " + what);
      break;
    }
  }
  RunOutcome out;
  out.pruned = g.pruned;
  out.steps = g.steps;
  return out;
}

/// Advance the DFS stack to the next unexplored sibling.  Returns false when
/// the whole reduced schedule space is covered.
bool backtrack_locked(Global& g) {
  while (!g.stack.empty()) {
    Frame& f = g.stack.back();
    f.sleep.insert(f.chosen);
    bool advanced = false;
    for (const std::uint16_t t : f.enabled) {
      if (f.sleep.count(t) != 0) continue;
      f.chosen = t;
      advanced = true;
      break;
    }
    if (advanced) return true;
    g.stack.pop_back();
  }
  return false;
}

} // namespace

// ---------------------------------------------------------------------------
// sim::detail — the shim entry points
// ---------------------------------------------------------------------------

namespace sim::detail {

bool scheduled() {
  return global().active.load(std::memory_order_acquire) && tls_cell != nullptr;
}

void mutex_lock(const void* m) {
  PendingOp op;
  op.kind = OpKind::kLock;
  op.a = m;
  perform(op);
}

bool mutex_try_lock(const void* m) {
  PendingOp op;
  op.kind = OpKind::kTryLock;
  op.a = m;
  return perform(op).flag;
}

void mutex_unlock(const void* m) {
  PendingOp op;
  op.kind = OpKind::kUnlock;
  op.a = m;
  perform(op);
}

bool cv_wait(const void* cv, const void* m, bool timed,
             std::int64_t deadline_ns) {
  PendingOp op;
  op.kind = OpKind::kCvWait;
  op.a = cv;
  op.b = m;
  op.timed = timed;
  op.deadline = deadline_ns;
  return perform(op).flag;
}

void cv_notify(const void* cv, bool all) {
  PendingOp op;
  op.kind = OpKind::kCvNotify;
  op.a = cv;
  op.all = all;
  perform(op);
}

void atomic_access(const void* obj, bool write) {
  PendingOp op;
  op.kind = OpKind::kAtomic;
  op.a = obj;
  op.write = write;
  perform(op);
}

void plain_access(const void* obj, bool write, const char* what) {
  PendingOp op;
  op.kind = OpKind::kPlain;
  op.a = obj;
  op.write = write;
  op.what = what;
  perform(op);
}

std::uint64_t thread_spawn(std::function<void()> body) {
  Global& g = global();
  Cell* parent = tls_cell;
  std::size_t child;
  {
    std::unique_lock lk(g.mx);
    child = alloc_cell_locked(g, std::move(body));
    // The child inherits the parent's clock: spawn is a happens-before edge.
    g.cells[child]->clk = parent->clk;
    g.cells[child]->clk.bump(child);
  }
  PendingOp op;
  op.kind = OpKind::kSpawn;
  op.target = child;
  perform(op);
  return child + 1;
}

void thread_join(std::uint64_t id) {
  PendingOp op;
  op.kind = OpKind::kJoin;
  op.target = static_cast<std::size_t>(id - 1);
  perform(op);
}

void invalid_join(const char* what) {
  Global& g = global();
  std::unique_lock lk(g.mx);
  if (!g.halting)
    record_failure_locked(g, Diag::kInvalidJoin, "invalid join", what);
  throw ExecutionHalted{};
}

std::int64_t virtual_now_ns() {
  Global& g = global();
  if (scheduled()) {
    const std::lock_guard lk(g.mx);
    return g.vt_ns;
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_ns(std::int64_t ns) {
  PendingOp op;
  op.kind = OpKind::kSleep;
  op.timed = true;
  op.deadline = virtual_now_ns() + std::max<std::int64_t>(ns, 0);
  perform(op);
}

} // namespace sim::detail

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const char* diag_name(Diag d) {
  switch (d) {
    case Diag::kNone: return "none";
    case Diag::kDataRace: return "data-race";
    case Diag::kDeadlock: return "deadlock";
    case Diag::kLostWakeup: return "lost-wakeup";
    case Diag::kDoubleRelease: return "double-release";
    case Diag::kInvalidJoin: return "invalid-join";
    case Diag::kAssertFailed: return "assert-failed";
    case Diag::kException: return "exception";
    case Diag::kStepLimit: return "step-limit";
    case Diag::kReplayMismatch: return "replay-mismatch";
  }
  return "?";
}

std::string Failure::replay_token() const {
  std::string s = "mc:v1:";
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i != 0) s += '.';
    s += std::to_string(choices[i]);
  }
  return s;
}

std::string Failure::format() const {
  std::ostringstream os;
  os << "MC FAILURE [" << diag_name(diag) << "] " << label << "\n  "
     << message << "\n  schedule " << schedule << " (seed " << seed
     << ")\n  replay: " << replay_token() << "\n  interleaving tail:";
  for (const auto& line : trace) os << "\n    " << line;
  return os.str();
}

std::optional<std::vector<std::uint16_t>> parse_replay_token(
    const std::string& token) {
  const std::string prefix = "mc:v1:";
  if (token.rfind(prefix, 0) != 0) return std::nullopt;
  std::vector<std::uint16_t> out;
  std::size_t pos = prefix.size();
  while (pos < token.size()) {
    std::size_t end = token.find('.', pos);
    if (end == std::string::npos) end = token.size();
    if (end == pos) return std::nullopt;
    unsigned long v = 0;
    for (std::size_t i = pos; i < end; ++i) {
      if (token[i] < '0' || token[i] > '9') return std::nullopt;
      v = v * 10 + static_cast<unsigned long>(token[i] - '0');
    }
    if (v >= kMaxCells) return std::nullopt;
    out.push_back(static_cast<std::uint16_t>(v));
    pos = end + 1;
  }
  return out;
}

bool under_exploration() { return sim::detail::scheduled(); }

void require(bool cond, const char* label) {
  if (cond) return;
  if (!sim::detail::scheduled()) {
    PASTIX_CHECK(cond, std::string("mc::require failed: ") + label);
    return;
  }
  Global& g = global();
  {
    std::unique_lock lk(g.mx);
    if (g.halting) {
      // A diagnostic already halted this schedule; just keep unwinding.
    } else {
      record_failure_locked(g, Diag::kAssertFailed, label,
                            std::string("mc::require(") + label +
                                ") failed on this schedule");
    }
  }
  throw ExecutionHalted{};
}

Result explore(const Options& opt, const std::function<void()>& body) {
  Global& g = global();
  PASTIX_CHECK(!g.active.load(), "mc::explore is not reentrant");
  PASTIX_CHECK(tls_cell == nullptr,
               "mc::explore must not be called from a checked thread");
  g.mode = opt.mode;
  g.stack.clear();
  g.replay_script = opt.replay.empty() ? nullptr : &opt.replay;
  g.failure.reset();
  g.active.store(true, std::memory_order_release);

  Result res;
  if (g.replay_script != nullptr) {
    g.cur_schedule = 0;
    g.cur_seed = opt.seed;
    const RunOutcome out = run_schedule(g, body, opt);
    res.schedules = 1;
    res.steps = out.steps;
  } else if (opt.mode == Options::Mode::kExhaustive) {
    for (;;) {
      g.cur_schedule = res.schedules;
      g.cur_seed = opt.seed;
      const RunOutcome out = run_schedule(g, body, opt);
      res.schedules++;
      res.steps += out.steps;
      if (g.failure && opt.stop_on_first) break;
      bool more;
      {
        const std::lock_guard lk(g.mx);
        more = backtrack_locked(g);
      }
      if (!more) {
        res.complete = true;
        break;
      }
      if (res.schedules >= opt.max_schedules) break;
    }
  } else {
    for (int i = 0; i < opt.max_schedules; ++i) {
      g.cur_schedule = i;
      std::uint64_t mix = opt.seed + static_cast<std::uint64_t>(i);
      g.cur_seed = splitmix64(mix);
      const RunOutcome out = run_schedule(g, body, opt);
      res.schedules++;
      res.steps += out.steps;
      if (g.failure && opt.stop_on_first) break;
    }
  }

  res.failure = g.failure;
  res.ok = !g.failure.has_value();
  if (!res.ok) res.complete = false;
  g.replay_script = nullptr;
  g.active.store(false, std::memory_order_release);
  return res;
}

Result replay(const std::string& token, const std::function<void()>& body) {
  const auto choices = parse_replay_token(token);
  if (!choices) {
    Result res;
    res.ok = false;
    Failure f;
    f.diag = Diag::kReplayMismatch;
    f.label = "unparseable replay token";
    f.message = "expected mc:v1:<n>.<n>... , got: " + token;
    res.failure = std::move(f);
    return res;
  }
  Options opt;
  opt.replay = *choices;
  return explore(opt, body);
}

} // namespace pastix::mc
