#pragma once
//
// Mutation test hooks for the model-checker battery (tests/mc_test.cpp).
//
// Each flag deletes or weakens exactly one lock / ordering edge in a runtime
// protocol so the battery can assert the explorer finds the resulting race,
// deadlock or protocol violation with its named diagnostic.  In production
// builds PASTIX_MC_MUTATION(x) expands to a compile-time `false`, so every
// mutated branch is dead code with zero overhead; only MC builds read the
// (single-threaded, set-before-explore) flag table.
//
namespace pastix::mc::hooks {

struct Mutations {
  bool comm_drop_mailbox_lock = false;   ///< send() delivers without the box lock
  bool comm_skip_notify = false;         ///< send() forgets cv.notify_all()
  bool pool_commit_before_compute = false;  ///< tail commit drops the compute wait
  bool pool_join_unstarted = false;      ///< tail run() joins a never-started thread
  bool cache_double_unlock = false;      ///< PlanCache::insert releases mu_ twice
  bool singleflight_skip_latch = false;  ///< Singleflight::Guard acquires nothing
  bool breaker_unlocked_strike = false;  ///< PoisonBreaker::strike RMW outside mu_
  bool resilient_skip_rollback = false;  ///< supervisor skips comm.rollback_rank
};

/// The global flag table (all false by default).  Only mc_test mutates it,
/// strictly outside explore() runs.
Mutations& mutations();

/// Reset every flag to false.
void reset_mutations();

} // namespace pastix::mc::hooks

#ifdef PASTIX_MC
#define PASTIX_MC_MUTATION(flag) (::pastix::mc::hooks::mutations().flag)
#else
#define PASTIX_MC_MUTATION(flag) false
#endif
