#pragma once
//
// Elimination tree, postordering and factor column counts for a symmetric
// pattern (strict lower CSC).  These are the scalar symbolic tools behind
// supernode detection and the Table 1 metrics (NNZ_L, OPC).
//
// Algorithms: Liu's elimination tree via path compression, and the
// Gilbert-Ng-Peyton near-linear column count algorithm.
//
#include <vector>

#include "sparse/sym_sparse.hpp"

namespace pastix {

/// parent[j] = elimination tree parent of column j (kNone for roots).
std::vector<idx_t> elimination_tree(const SparsePattern& p);

/// Topological postorder of an elimination forest: post[k] = k-th column.
std::vector<idx_t> tree_postorder(const std::vector<idx_t>& parent);

/// Column counts of the Cholesky factor, *including* the diagonal:
/// counts[j] = |struct(L(:,j))| + 1.  `parent` must come from
/// elimination_tree(p) and `post` from tree_postorder(parent).
std::vector<idx_t> factor_column_counts(const SparsePattern& p,
                                        const std::vector<idx_t>& parent,
                                        const std::vector<idx_t>& post);

/// Scalar symbolic factorization summary.
struct ScalarSymbolStats {
  big_t nnz_l = 0;  ///< off-diagonal nonzeros of L (paper's NNZ_L)
  big_t opc = 0;    ///< operation count, sum_j cc_j^2 (paper's OPC)
};

/// Convenience: etree + postorder + counts -> NNZ_L and OPC.
ScalarSymbolStats scalar_symbol_stats(const SparsePattern& p);

/// Depth of every node (root depth = 0) in an elimination forest.
std::vector<idx_t> tree_depths(const std::vector<idx_t>& parent);

} // namespace pastix
