#pragma once
//
// Nested dissection ordering, hybridized with Halo Approximate Minimum
// Degree exactly as in the paper: ND recursively splits the graph with
// vertex separators (separator columns ordered last); once a subdomain is
// smaller than the leaf threshold it is ordered by minimum degree *with the
// halo of the subdomain visible* (Pellegrini-Roman-Amestoy coupling).
//
#include "graph/separator.hpp"
#include "order/min_degree.hpp"
#include "sparse/permute.hpp"

namespace pastix {

struct NdOptions {
  idx_t leaf_size = 240;   ///< subdomains below this size go to minimum degree
  int max_depth = 48;      ///< recursion guard
  bool halo = true;        ///< couple leaves with their halo (paper's HAMD)
  SeparatorOptions separator;
  MinDegreeOptions min_degree;
};

struct NdResult {
  Permutation perm;            ///< old -> new over the whole graph
  std::vector<idx_t> sep_depth;///< per NEW column: dissection depth of the
                               ///< separator it belongs to, kNone for leaf
                               ///< columns (diagnostics / ablations)
  idx_t num_separators = 0;
};

NdResult nested_dissection(const Graph& g, const NdOptions& opt);

} // namespace pastix
