#include "order/supernodes.hpp"

#include "support/check.hpp"

namespace pastix {

std::vector<idx_t> fundamental_supernodes(const std::vector<idx_t>& parent,
                                          const std::vector<idx_t>& counts) {
  const idx_t n = static_cast<idx_t>(parent.size());
  PASTIX_CHECK(counts.size() == parent.size(), "parent/counts size mismatch");
  std::vector<idx_t> rangtab;
  rangtab.push_back(0);
  for (idx_t j = 1; j < n; ++j) {
    // Column j continues the supernode of j-1 iff j is the etree parent of
    // j-1 and struct(j) == struct(j-1) \ {j}, which (given the parent
    // condition) is equivalent to counts[j] == counts[j-1] - 1.
    const bool continues = parent[static_cast<std::size_t>(j - 1)] == j &&
                           counts[static_cast<std::size_t>(j)] ==
                               counts[static_cast<std::size_t>(j - 1)] - 1;
    if (!continues) rangtab.push_back(j);
  }
  rangtab.push_back(n);
  return rangtab;
}

std::vector<idx_t> column_to_supernode(const std::vector<idx_t>& rangtab) {
  const idx_t ncblk = static_cast<idx_t>(rangtab.size()) - 1;
  std::vector<idx_t> col2sn(static_cast<std::size_t>(rangtab.back()));
  for (idx_t k = 0; k < ncblk; ++k)
    for (idx_t j = rangtab[static_cast<std::size_t>(k)];
         j < rangtab[static_cast<std::size_t>(k) + 1]; ++j)
      col2sn[static_cast<std::size_t>(j)] = k;
  return col2sn;
}

namespace {

/// Dense storage of a trapezoidal column block: w*(w+1)/2 diagonal part plus
/// w columns of h sub-diagonal rows.
double dense_size(double w, double h) { return w * (w + 1) / 2 + w * h; }

} // namespace

std::vector<idx_t> amalgamate_supernodes(const std::vector<idx_t>& rangtab,
                                         const std::vector<idx_t>& parent,
                                         const std::vector<idx_t>& counts,
                                         const AmalgamationOptions& opt) {
  const idx_t nsn = static_cast<idx_t>(rangtab.size()) - 1;
  const std::vector<idx_t> col2sn = column_to_supernode(rangtab);

  // Parent supernode: supernode of the etree parent of the last column.
  auto snode_parent = [&](idx_t s) {
    const idx_t lastcol = rangtab[static_cast<std::size_t>(s) + 1] - 1;
    const idx_t p = parent[static_cast<std::size_t>(lastcol)];
    return p == kNone ? kNone : col2sn[static_cast<std::size_t>(p)];
  };

  // Groups of merged supernodes are contiguous runs; group state is kept at
  // the *lowest* supernode of the run and `rep[s]` points to it (path
  // compressed).  A run [s .. t] means columns of supernodes s..t form one
  // column block whose sub-diagonal height is that of the run's *top*
  // supernode.
  std::vector<idx_t> rep(static_cast<std::size_t>(nsn));
  std::vector<idx_t> top(static_cast<std::size_t>(nsn));
  std::vector<double> gwidth(static_cast<std::size_t>(nsn));
  std::vector<double> gheight(static_cast<std::size_t>(nsn));
  std::vector<double> gnnz(static_cast<std::size_t>(nsn));
  for (idx_t s = 0; s < nsn; ++s) {
    rep[static_cast<std::size_t>(s)] = s;
    top[static_cast<std::size_t>(s)] = s;
    const double w = rangtab[static_cast<std::size_t>(s) + 1] -
                     rangtab[static_cast<std::size_t>(s)];
    const double h =
        counts[static_cast<std::size_t>(rangtab[static_cast<std::size_t>(s)])] - w;
    gwidth[static_cast<std::size_t>(s)] = w;
    gheight[static_cast<std::size_t>(s)] = h;
    gnnz[static_cast<std::size_t>(s)] = dense_size(w, h);
  }
  auto find = [&](idx_t s) {
    while (rep[static_cast<std::size_t>(s)] != s) {
      rep[static_cast<std::size_t>(s)] =
          rep[static_cast<std::size_t>(rep[static_cast<std::size_t>(s)])];
      s = rep[static_cast<std::size_t>(s)];
    }
    return s;
  };

  // Bottom-up sweep (supernodes are postordered, so parents come later):
  // try to merge supernode s into the group that starts at s+1, which is
  // legal when s's parent supernode already belongs to that group (the
  // merged column block then covers s's first fill row).
  for (idx_t s = nsn - 2; s >= 0; --s) {
    const idx_t par = snode_parent(s);
    if (par == kNone) continue;
    const idx_t grp = find(s + 1);
    if (find(par) != grp) continue;

    const double wc = gwidth[static_cast<std::size_t>(s)];
    const double hc = gheight[static_cast<std::size_t>(s)];
    const double wg = gwidth[static_cast<std::size_t>(grp)];
    const double hg = gheight[static_cast<std::size_t>(grp)];
    if (opt.max_width > 0 && wc + wg > opt.max_width) continue;

    const double merged = dense_size(wc + wg, hg);
    const double zeros =
        merged - (dense_size(wc, hc) + gnnz[static_cast<std::size_t>(grp)]);
    const bool merge = wc <= opt.always_merge_width ||
                       zeros <= opt.fill_ratio * merged;
    if (!merge) continue;

    // Merge: group state moves down to s (new lowest member).
    rep[static_cast<std::size_t>(grp)] = s;
    rep[static_cast<std::size_t>(s)] = s;
    top[static_cast<std::size_t>(s)] = top[static_cast<std::size_t>(grp)];
    gwidth[static_cast<std::size_t>(s)] = wc + wg;
    gheight[static_cast<std::size_t>(s)] = hg;
    gnnz[static_cast<std::size_t>(s)] = merged;
  }

  std::vector<idx_t> merged_rangtab;
  merged_rangtab.push_back(0);
  for (idx_t s = 0; s < nsn;) {
    const idx_t t = top[static_cast<std::size_t>(find(s))];
    merged_rangtab.push_back(rangtab[static_cast<std::size_t>(t) + 1]);
    s = t + 1;
  }
  PASTIX_CHECK(merged_rangtab.back() == rangtab.back(),
               "amalgamation lost columns");
  return merged_rangtab;
}

} // namespace pastix
