#include "order/ordering.hpp"

#include <algorithm>

namespace pastix {

SparsePattern permute_pattern(const SparsePattern& p, const Permutation& perm) {
  PASTIX_CHECK(perm.n() == p.n, "permutation size mismatch");
  SparsePattern out;
  out.n = p.n;
  out.colptr.assign(static_cast<std::size_t>(p.n) + 1, 0);

  // Count entries per new column; an old entry (i, j) lands in column
  // min(perm[i], perm[j]) of the new strict lower triangle.
  std::vector<std::pair<idx_t, idx_t>> entries;
  entries.reserve(p.rowind.size());
  for (idx_t j = 0; j < p.n; ++j)
    for (idx_t q = p.colptr[j]; q < p.colptr[j + 1]; ++q) {
      idx_t ni = perm.perm[static_cast<std::size_t>(p.rowind[q])];
      idx_t nj = perm.perm[static_cast<std::size_t>(j)];
      if (ni < nj) std::swap(ni, nj);
      entries.emplace_back(nj, ni);  // (new column, new row)
    }
  std::sort(entries.begin(), entries.end());
  out.rowind.reserve(entries.size());
  for (const auto& [col, row] : entries) {
    out.rowind.push_back(row);
    out.colptr[static_cast<std::size_t>(col) + 1]++;
  }
  for (idx_t j = 0; j < p.n; ++j)
    out.colptr[static_cast<std::size_t>(j) + 1] +=
        out.colptr[static_cast<std::size_t>(j)];
  return out;
}

OrderingResult compute_ordering(const SparsePattern& pattern,
                                const OrderingOptions& opt) {
  pattern.validate();
  const Graph g = graph_from_pattern(pattern);

  // --- 1. Primary permutation. ---------------------------------------------
  Permutation primary;
  switch (opt.method) {
    case OrderingMethod::kHybridNdHamd: {
      NdOptions nd = opt.nd;
      nd.halo = true;
      primary = nested_dissection(g, nd).perm;
      break;
    }
    case OrderingMethod::kPureNd: {
      NdOptions nd = opt.nd;
      nd.halo = false;
      nd.leaf_size = std::max<idx_t>(32, opt.nd.leaf_size / 2);
      primary = nested_dissection(g, nd).perm;
      break;
    }
    case OrderingMethod::kMinDegree: {
      const std::vector<idx_t> seq = min_degree_order(g, g.n, opt.nd.min_degree);
      std::vector<idx_t> perm(static_cast<std::size_t>(g.n));
      for (idx_t k = 0; k < g.n; ++k)
        perm[static_cast<std::size_t>(seq[static_cast<std::size_t>(k)])] = k;
      primary = Permutation::from_perm(std::move(perm));
      break;
    }
  }

  // --- 2. Postorder the elimination tree (equivalent reordering that makes
  //        supernodes and subtrees contiguous). ------------------------------
  OrderingResult res;
  {
    const SparsePattern p1 = permute_pattern(pattern, primary);
    const std::vector<idx_t> parent1 = elimination_tree(p1);
    const std::vector<idx_t> post = tree_postorder(parent1);
    std::vector<idx_t> perm2(static_cast<std::size_t>(g.n));
    for (idx_t k = 0; k < g.n; ++k)
      perm2[static_cast<std::size_t>(post[static_cast<std::size_t>(k)])] = k;
    res.perm = Permutation::from_perm(std::move(perm2)).after(primary);
  }
  res.permuted = permute_pattern(pattern, res.perm);
  res.parent = elimination_tree(res.permuted);

  // After postordering, the identity postorder must be valid; counts assume
  // postorder[k] == k.
  std::vector<idx_t> ident(static_cast<std::size_t>(g.n));
  for (idx_t k = 0; k < g.n; ++k) ident[static_cast<std::size_t>(k)] = k;
  res.counts = factor_column_counts(res.permuted, res.parent, ident);

  res.scalar = ScalarSymbolStats{};
  for (const idx_t c : res.counts) {
    res.scalar.nnz_l += c - 1;
    res.scalar.opc += static_cast<big_t>(c) * c;
  }

  // --- 3. Supernodes: fundamental + relaxed amalgamation. -------------------
  const std::vector<idx_t> fundamental =
      fundamental_supernodes(res.parent, res.counts);
  res.rangtab = amalgamate_supernodes(fundamental, res.parent, res.counts,
                                      opt.amalgamation);
  return res;
}

} // namespace pastix
