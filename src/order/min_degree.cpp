#include "order/min_degree.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace pastix {

namespace {

enum class State : unsigned char {
  kVariable,  ///< alive principal (super)variable
  kElement,   ///< eliminated pivot, now an element of the quotient graph
  kDead,      ///< absorbed element or non-principal merged variable
};

/// Quotient-graph minimum degree engine.  Clarity-first representation:
/// explicit vectors per node, lazily pruned.  The leaves handed to this
/// routine by nested dissection are small, so asymptotic constants matter
/// less than correctness here.
class QuotientMd {
public:
  QuotientMd(const Graph& g, idx_t ninterior, const MinDegreeOptions& opt)
      : n_(g.n),
        ninterior_(ninterior),
        opt_(opt),
        state_(static_cast<std::size_t>(n_), State::kVariable),
        nv_(static_cast<std::size_t>(n_), 1),
        degree_(static_cast<std::size_t>(n_), 0),
        avar_(static_cast<std::size_t>(n_)),
        ael_(static_cast<std::size_t>(n_)),
        elvars_(static_cast<std::size_t>(n_)),
        member_next_(static_cast<std::size_t>(n_), kNone),
        member_tail_(static_cast<std::size_t>(n_)),
        marker_(static_cast<std::size_t>(n_), 0),
        wlen_(static_cast<std::size_t>(n_), -1),
        wseen_(static_cast<std::size_t>(n_), 0) {
    PASTIX_CHECK(ninterior >= 0 && ninterior <= n_, "bad interior count");
    for (idx_t v = 0; v < n_; ++v) {
      avar_[static_cast<std::size_t>(v)].assign(g.adj_begin(v), g.adj_end(v));
      degree_[static_cast<std::size_t>(v)] = g.degree(v);
      member_tail_[static_cast<std::size_t>(v)] = v;
      if (v < ninterior_) heap_.push({g.degree(v), v});
    }
  }

  std::vector<idx_t> run() {
    std::vector<idx_t> order;
    order.reserve(static_cast<std::size_t>(ninterior_));
    idx_t remaining = ninterior_;
    while (remaining > 0) {
      const idx_t p = pop_pivot();
      remaining -= eliminate(p, order);
    }
    PASTIX_CHECK(static_cast<idx_t>(order.size()) == ninterior_,
                 "minimum degree lost columns");
    return order;
  }

private:
  struct HeapEntry {
    idx_t degree, v;
    bool operator>(const HeapEntry& o) const {
      return degree != o.degree ? degree > o.degree : v > o.v;
    }
  };

  bool is_halo(idx_t v) const { return v >= ninterior_; }

  idx_t pop_pivot() {
    while (!heap_.empty()) {
      const HeapEntry e = heap_.top();
      heap_.pop();
      if (state_[static_cast<std::size_t>(e.v)] == State::kVariable &&
          degree_[static_cast<std::size_t>(e.v)] == e.degree)
        return e.v;
    }
    throw Error("minimum degree heap exhausted with interior columns left");
  }

  /// Remove dead entries in place; returns the pruned list.
  void prune_vars(std::vector<idx_t>& list) {
    std::erase_if(list, [this](idx_t v) {
      return state_[static_cast<std::size_t>(v)] != State::kVariable;
    });
  }
  void prune_elems(std::vector<idx_t>& list) {
    std::erase_if(list, [this](idx_t e) {
      return state_[static_cast<std::size_t>(e)] != State::kElement;
    });
  }

  /// Emit all original columns represented by supervariable p.
  idx_t emit_members(idx_t p, std::vector<idx_t>& order) {
    idx_t count = 0;
    for (idx_t m = p; m != kNone; m = member_next_[static_cast<std::size_t>(m)]) {
      order.push_back(m);
      ++count;
    }
    return count;
  }

  /// Eliminate pivot p; returns the number of interior columns eliminated
  /// (supervariable members plus mass eliminations).
  idx_t eliminate(idx_t p, std::vector<idx_t>& order) {
    current_pivot_ = p;
    // --- Build Lp = (A_p U union of absorbed element variables) \ {p}. ----
    ++stamp_;
    marker_[static_cast<std::size_t>(p)] = stamp_;
    std::vector<idx_t> lp;
    auto gather = [&](const std::vector<idx_t>& vars) {
      for (const idx_t v : vars) {
        if (state_[static_cast<std::size_t>(v)] != State::kVariable) continue;
        if (marker_[static_cast<std::size_t>(v)] == stamp_) continue;
        marker_[static_cast<std::size_t>(v)] = stamp_;
        lp.push_back(v);
      }
    };
    gather(avar_[static_cast<std::size_t>(p)]);
    prune_elems(ael_[static_cast<std::size_t>(p)]);
    for (const idx_t e : ael_[static_cast<std::size_t>(p)]) {
      gather(elvars_[static_cast<std::size_t>(e)]);
      state_[static_cast<std::size_t>(e)] = State::kDead;  // absorbed into p
      elvars_[static_cast<std::size_t>(e)].clear();
    }
    avar_[static_cast<std::size_t>(p)].clear();
    ael_[static_cast<std::size_t>(p)].clear();

    state_[static_cast<std::size_t>(p)] = State::kElement;
    elvars_[static_cast<std::size_t>(p)] = lp;
    idx_t eliminated = emit_members(p, order);

    const idx_t lp_weight = weight_of(lp);

    // --- AMD |Le \ Lp| precomputation (wlen_ trick). ----------------------
    // For every element e adjacent to some i in Lp, wlen_[e] ends up as the
    // supervariable weight of Le \ Lp.  Entries are reset lazily via wstamp_.
    ++wstamp_;
    for (const idx_t i : lp) {
      prune_elems(ael_[static_cast<std::size_t>(i)]);
      for (const idx_t e : ael_[static_cast<std::size_t>(i)]) {
        if (wseen_[static_cast<std::size_t>(e)] != wstamp_) {
          wseen_[static_cast<std::size_t>(e)] = wstamp_;
          wlen_[static_cast<std::size_t>(e)] =
              weight_of(elvars_[static_cast<std::size_t>(e)]);
        }
        wlen_[static_cast<std::size_t>(e)] -= nv_[static_cast<std::size_t>(i)];
      }
    }

    // --- Per-neighbour update: prune lists, absorb, recompute degree. -----
    for (const idx_t i : lp) {
      auto& av = avar_[static_cast<std::size_t>(i)];
      // Drop dead variables, members of Lp and p itself: those adjacencies
      // are now represented by element p.
      std::erase_if(av, [&](idx_t v) {
        return state_[static_cast<std::size_t>(v)] != State::kVariable ||
               marker_[static_cast<std::size_t>(v)] == stamp_;
      });
      auto& ae = ael_[static_cast<std::size_t>(i)];
      // Aggressive absorption: an element entirely inside Lp is redundant.
      std::erase_if(ae, [&](idx_t e) {
        if (state_[static_cast<std::size_t>(e)] != State::kElement) return true;
        if (wseen_[static_cast<std::size_t>(e)] == wstamp_ &&
            wlen_[static_cast<std::size_t>(e)] <= 0) {
          state_[static_cast<std::size_t>(e)] = State::kDead;
          elvars_[static_cast<std::size_t>(e)].clear();
          return true;
        }
        return false;
      });
      ae.push_back(p);

      degree_[static_cast<std::size_t>(i)] =
          opt_.approximate_degree ? approx_degree(i, lp_weight) : exact_degree(i);
    }

    // --- Mass elimination: i with struct(i) subset of Lp U {p}. -----------
    // Such a variable has no variable neighbours left and only element p;
    // it can be eliminated right now at no extra fill.
    for (const idx_t i : lp) {
      if (is_halo(i)) continue;
      if (state_[static_cast<std::size_t>(i)] != State::kVariable) continue;
      if (avar_[static_cast<std::size_t>(i)].empty() &&
          ael_[static_cast<std::size_t>(i)].size() == 1) {
        state_[static_cast<std::size_t>(i)] = State::kDead;
        eliminated += emit_members(i, order);
      }
    }
    std::erase_if(elvars_[static_cast<std::size_t>(p)], [this](idx_t v) {
      return state_[static_cast<std::size_t>(v)] != State::kVariable;
    });

    // --- Supervariable detection among the survivors of Lp. ---------------
    detect_supervariables(elvars_[static_cast<std::size_t>(p)]);

    // --- Requeue updated interior variables. -------------------------------
    for (const idx_t i : elvars_[static_cast<std::size_t>(p)])
      if (!is_halo(i) && state_[static_cast<std::size_t>(i)] == State::kVariable)
        heap_.push({degree_[static_cast<std::size_t>(i)], i});

    return eliminated;
  }

  idx_t weight_of(const std::vector<idx_t>& vars) const {
    idx_t w = 0;
    for (const idx_t v : vars)
      if (state_[static_cast<std::size_t>(v)] == State::kVariable)
        w += nv_[static_cast<std::size_t>(v)];
    return w;
  }

  /// AMD approximate external degree of i after eliminating the current
  /// pivot: |A_i| + |Lp \ i| + sum over other adjacent elements of |Le \ Lp|.
  idx_t approx_degree(idx_t i, idx_t lp_weight) {
    idx_t d = weight_of(avar_[static_cast<std::size_t>(i)]);
    d += lp_weight - nv_[static_cast<std::size_t>(i)];
    for (const idx_t e : ael_[static_cast<std::size_t>(i)]) {
      if (state_[static_cast<std::size_t>(e)] != State::kElement) continue;
      if (e == current_pivot_) continue;  // Lp already accounted for above
      if (wseen_[static_cast<std::size_t>(e)] == wstamp_ &&
          wlen_[static_cast<std::size_t>(e)] >= 0) {
        d += wlen_[static_cast<std::size_t>(e)];
      } else if (!elvars_[static_cast<std::size_t>(e)].empty()) {
        d += weight_of(elvars_[static_cast<std::size_t>(e)]) -
             nv_[static_cast<std::size_t>(i)];
      }
    }
    // Never exceed the exact bound "everything else".
    return std::min<idx_t>(d, n_ - 1);
  }

  /// Exact external degree (test oracle): |union of A_i and all Le| \ {i}.
  idx_t exact_degree(idx_t i) {
    ++stamp2_;
    if (marker2_.empty()) marker2_.assign(static_cast<std::size_t>(n_), 0);
    marker2_[static_cast<std::size_t>(i)] = stamp2_;
    idx_t d = 0;
    auto visit = [&](idx_t v) {
      if (state_[static_cast<std::size_t>(v)] != State::kVariable) return;
      if (marker2_[static_cast<std::size_t>(v)] == stamp2_) return;
      marker2_[static_cast<std::size_t>(v)] = stamp2_;
      d += nv_[static_cast<std::size_t>(v)];
    };
    for (const idx_t v : avar_[static_cast<std::size_t>(i)]) visit(v);
    for (const idx_t e : ael_[static_cast<std::size_t>(i)])
      if (state_[static_cast<std::size_t>(e)] == State::kElement)
        for (const idx_t v : elvars_[static_cast<std::size_t>(e)]) visit(v);
    return d;
  }

  /// Merge indistinguishable variables (equal adjacency, same halo side).
  void detect_supervariables(std::vector<idx_t>& lp) {
    // Bucket by a cheap hash of the pruned adjacency.
    std::vector<std::pair<std::uint64_t, idx_t>> buckets;
    buckets.reserve(lp.size());
    for (const idx_t i : lp) {
      if (state_[static_cast<std::size_t>(i)] != State::kVariable) continue;
      prune_vars(avar_[static_cast<std::size_t>(i)]);
      prune_elems(ael_[static_cast<std::size_t>(i)]);
      std::uint64_t h = 0;
      for (const idx_t v : avar_[static_cast<std::size_t>(i)])
        h += static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL;
      for (const idx_t e : ael_[static_cast<std::size_t>(i)])
        h += static_cast<std::uint64_t>(e) * 0xc2b2ae3d27d4eb4fULL;
      buckets.emplace_back(h, i);
    }
    std::sort(buckets.begin(), buckets.end());
    for (std::size_t a = 0; a < buckets.size(); ++a) {
      const idx_t i = buckets[a].second;
      if (state_[static_cast<std::size_t>(i)] != State::kVariable) continue;
      for (std::size_t b = a + 1;
           b < buckets.size() && buckets[b].first == buckets[a].first; ++b) {
        const idx_t j = buckets[b].second;
        if (state_[static_cast<std::size_t>(j)] != State::kVariable) continue;
        if (is_halo(i) != is_halo(j)) continue;
        if (!indistinguishable(i, j)) continue;
        // Merge j into i.
        nv_[static_cast<std::size_t>(i)] += nv_[static_cast<std::size_t>(j)];
        member_next_[static_cast<std::size_t>(
            member_tail_[static_cast<std::size_t>(i)])] = j;
        member_tail_[static_cast<std::size_t>(i)] =
            member_tail_[static_cast<std::size_t>(j)];
        state_[static_cast<std::size_t>(j)] = State::kDead;
        degree_[static_cast<std::size_t>(i)] -= nv_[static_cast<std::size_t>(j)];
      }
    }
    std::erase_if(lp, [this](idx_t v) {
      return state_[static_cast<std::size_t>(v)] != State::kVariable;
    });
  }

  /// Same pruned variable and element adjacency (ignoring each other)?
  bool indistinguishable(idx_t i, idx_t j) {
    const auto& ai = avar_[static_cast<std::size_t>(i)];
    const auto& aj = avar_[static_cast<std::size_t>(j)];
    const auto& ei = ael_[static_cast<std::size_t>(i)];
    const auto& ej = ael_[static_cast<std::size_t>(j)];
    if (ei.size() != ej.size()) return false;
    ++stamp2_;
    if (marker2_.empty()) marker2_.assign(static_cast<std::size_t>(n_), 0);
    std::size_t count_i = 0;
    for (const idx_t v : ai)
      if (v != j) {
        marker2_[static_cast<std::size_t>(v)] = stamp2_;
        ++count_i;
      }
    std::size_t count_j = 0;
    for (const idx_t v : aj) {
      if (v == i) continue;
      if (marker2_[static_cast<std::size_t>(v)] != stamp2_) return false;
      ++count_j;
    }
    if (count_i != count_j) return false;
    ++stamp2_;
    for (const idx_t e : ei) marker2_[static_cast<std::size_t>(e)] = stamp2_;
    for (const idx_t e : ej)
      if (marker2_[static_cast<std::size_t>(e)] != stamp2_) return false;
    return true;
  }

  idx_t n_, ninterior_;
  MinDegreeOptions opt_;
  std::vector<State> state_;
  std::vector<idx_t> nv_;
  std::vector<idx_t> degree_;
  std::vector<std::vector<idx_t>> avar_, ael_, elvars_;
  std::vector<idx_t> member_next_, member_tail_;
  std::vector<idx_t> marker_, marker2_;
  idx_t stamp_ = 0, stamp2_ = 0;
  std::vector<idx_t> wlen_, wseen_;
  idx_t wstamp_ = 0;
  idx_t current_pivot_ = kNone;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
};

} // namespace

std::vector<idx_t> min_degree_order(const Graph& g, idx_t ninterior,
                                    const MinDegreeOptions& opt) {
  if (ninterior == 0) return {};
  return QuotientMd(g, ninterior, opt).run();
}

} // namespace pastix
