#include "order/etree.hpp"

#include <algorithm>

namespace pastix {

std::vector<idx_t> elimination_tree(const SparsePattern& p) {
  const idx_t n = p.n;
  std::vector<idx_t> parent(static_cast<std::size_t>(n), kNone);
  std::vector<idx_t> ancestor(static_cast<std::size_t>(n), kNone);

  // Liu's algorithm needs, for each row i, the columns j < i with A(i,j) != 0,
  // so transpose the lower triangle once (row-wise access).
  std::vector<idx_t> rowptr(static_cast<std::size_t>(n) + 1, 0);
  for (const idx_t i : p.rowind) rowptr[static_cast<std::size_t>(i) + 1]++;
  for (idx_t i = 0; i < n; ++i)
    rowptr[static_cast<std::size_t>(i) + 1] += rowptr[static_cast<std::size_t>(i)];
  std::vector<idx_t> rowcols(p.rowind.size());
  {
    std::vector<idx_t> cursor(rowptr.begin(), rowptr.end() - 1);
    for (idx_t j = 0; j < n; ++j)
      for (idx_t q = p.colptr[j]; q < p.colptr[j + 1]; ++q)
        rowcols[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(p.rowind[q])]++)] = j;
  }

  for (idx_t i = 0; i < n; ++i) {
    for (idx_t q = rowptr[static_cast<std::size_t>(i)];
         q < rowptr[static_cast<std::size_t>(i) + 1]; ++q) {
      idx_t j = rowcols[static_cast<std::size_t>(q)];  // j < i, A(i,j) != 0
      // Walk from j up to the current root, compressing to i.
      while (j != kNone && j < i) {
        const idx_t next = ancestor[static_cast<std::size_t>(j)];
        ancestor[static_cast<std::size_t>(j)] = i;
        if (next == kNone) {
          parent[static_cast<std::size_t>(j)] = i;
          break;
        }
        j = next;
      }
    }
  }
  return parent;
}

std::vector<idx_t> tree_postorder(const std::vector<idx_t>& parent) {
  const idx_t n = static_cast<idx_t>(parent.size());
  // Build child lists (children in increasing order for determinism).
  std::vector<idx_t> head(static_cast<std::size_t>(n), kNone);
  std::vector<idx_t> next(static_cast<std::size_t>(n), kNone);
  for (idx_t v = n - 1; v >= 0; --v) {
    const idx_t par = parent[static_cast<std::size_t>(v)];
    if (par != kNone) {
      next[static_cast<std::size_t>(v)] = head[static_cast<std::size_t>(par)];
      head[static_cast<std::size_t>(par)] = v;
    }
  }
  std::vector<idx_t> post;
  post.reserve(static_cast<std::size_t>(n));
  std::vector<idx_t> stack;
  for (idx_t r = 0; r < n; ++r) {
    if (parent[static_cast<std::size_t>(r)] != kNone) continue;
    // Iterative DFS emitting children before parents.
    stack.push_back(r);
    while (!stack.empty()) {
      const idx_t v = stack.back();
      const idx_t child = head[static_cast<std::size_t>(v)];
      if (child != kNone) {
        head[static_cast<std::size_t>(v)] = next[static_cast<std::size_t>(child)];
        stack.push_back(child);
      } else {
        post.push_back(v);
        stack.pop_back();
      }
    }
  }
  PASTIX_CHECK(static_cast<idx_t>(post.size()) == n, "postorder incomplete");
  return post;
}

namespace {

// Gilbert-Ng-Peyton "least common ancestor" step (CSparse's cs_leaf).
idx_t process_leaf(idx_t i, idx_t j, std::vector<idx_t>& first,
                   std::vector<idx_t>& maxfirst, std::vector<idx_t>& prevleaf,
                   std::vector<idx_t>& ancestor, int& jleaf) {
  jleaf = 0;
  if (i <= j || first[static_cast<std::size_t>(j)] <=
                    maxfirst[static_cast<std::size_t>(i)])
    return kNone;  // j is not a leaf of row subtree i
  maxfirst[static_cast<std::size_t>(i)] = first[static_cast<std::size_t>(j)];
  const idx_t jprev = prevleaf[static_cast<std::size_t>(i)];
  prevleaf[static_cast<std::size_t>(i)] = j;
  jleaf = (jprev == kNone) ? 1 : 2;
  if (jleaf == 1) return i;  // first leaf: subtract at the root of row subtree
  idx_t q = jprev;
  while (q != ancestor[static_cast<std::size_t>(q)])
    q = ancestor[static_cast<std::size_t>(q)];
  for (idx_t s = jprev; s != q;) {
    const idx_t sparent = ancestor[static_cast<std::size_t>(s)];
    ancestor[static_cast<std::size_t>(s)] = q;
    s = sparent;
  }
  return q;  // least common ancestor of jprev and j
}

} // namespace

std::vector<idx_t> factor_column_counts(const SparsePattern& p,
                                        const std::vector<idx_t>& parent,
                                        const std::vector<idx_t>& post) {
  const idx_t n = p.n;
  std::vector<idx_t> counts(static_cast<std::size_t>(n), 0);
  std::vector<idx_t> first(static_cast<std::size_t>(n), kNone);
  std::vector<idx_t> maxfirst(static_cast<std::size_t>(n), kNone);
  std::vector<idx_t> prevleaf(static_cast<std::size_t>(n), kNone);
  std::vector<idx_t> ancestor(static_cast<std::size_t>(n));

  for (idx_t k = 0; k < n; ++k) {
    idx_t j = post[static_cast<std::size_t>(k)];
    counts[static_cast<std::size_t>(j)] =
        (first[static_cast<std::size_t>(j)] == kNone) ? 1 : 0;
    while (j != kNone && first[static_cast<std::size_t>(j)] == kNone) {
      first[static_cast<std::size_t>(j)] = k;
      j = parent[static_cast<std::size_t>(j)];
    }
  }
  for (idx_t v = 0; v < n; ++v) ancestor[static_cast<std::size_t>(v)] = v;

  for (idx_t k = 0; k < n; ++k) {
    const idx_t j = post[static_cast<std::size_t>(k)];
    if (parent[static_cast<std::size_t>(j)] != kNone)
      counts[static_cast<std::size_t>(parent[static_cast<std::size_t>(j)])]--;
    // Column j of the lower triangle holds exactly the rows i > j of A.
    for (idx_t q = p.colptr[j]; q < p.colptr[j + 1]; ++q) {
      const idx_t i = p.rowind[q];
      int jleaf = 0;
      const idx_t lca =
          process_leaf(i, j, first, maxfirst, prevleaf, ancestor, jleaf);
      if (jleaf >= 1) counts[static_cast<std::size_t>(j)]++;
      if (jleaf == 2) counts[static_cast<std::size_t>(lca)]--;
    }
    if (parent[static_cast<std::size_t>(j)] != kNone)
      ancestor[static_cast<std::size_t>(j)] = parent[static_cast<std::size_t>(j)];
  }
  // Accumulate counts up the tree.
  for (idx_t k = 0; k < n; ++k) {
    const idx_t j = post[static_cast<std::size_t>(k)];
    if (parent[static_cast<std::size_t>(j)] != kNone)
      counts[static_cast<std::size_t>(parent[static_cast<std::size_t>(j)])] +=
          counts[static_cast<std::size_t>(j)];
  }
  return counts;
}

ScalarSymbolStats scalar_symbol_stats(const SparsePattern& p) {
  const auto parent = elimination_tree(p);
  const auto post = tree_postorder(parent);
  const auto counts = factor_column_counts(p, parent, post);
  ScalarSymbolStats s;
  for (const idx_t c : counts) {
    s.nnz_l += c - 1;
    s.opc += static_cast<big_t>(c) * c;
  }
  return s;
}

std::vector<idx_t> tree_depths(const std::vector<idx_t>& parent) {
  const idx_t n = static_cast<idx_t>(parent.size());
  std::vector<idx_t> depth(static_cast<std::size_t>(n), kNone);
  for (idx_t v = 0; v < n; ++v) {
    // Walk up to the first node with a known depth, then unwind.
    idx_t u = v, steps = 0;
    while (u != kNone && depth[static_cast<std::size_t>(u)] == kNone) {
      u = parent[static_cast<std::size_t>(u)];
      ++steps;
    }
    idx_t base = (u == kNone) ? -1 : depth[static_cast<std::size_t>(u)];
    idx_t d = base + steps;
    u = v;
    while (u != kNone && depth[static_cast<std::size_t>(u)] == kNone) {
      depth[static_cast<std::size_t>(u)] = d--;
      u = parent[static_cast<std::size_t>(u)];
    }
  }
  return depth;
}

} // namespace pastix
