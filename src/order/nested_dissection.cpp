#include "order/nested_dissection.hpp"

#include <algorithm>

namespace pastix {

namespace {

/// One pending subdomain: order its vertices into new positions [lo, hi).
struct WorkItem {
  std::vector<idx_t> vertices;
  idx_t lo, hi;
  int depth;
};

} // namespace

NdResult nested_dissection(const Graph& g, const NdOptions& opt) {
  NdResult res;
  res.perm.perm.assign(static_cast<std::size_t>(g.n), kNone);
  res.perm.invp.assign(static_cast<std::size_t>(g.n), kNone);
  res.sep_depth.assign(static_cast<std::size_t>(g.n), kNone);

  auto place = [&](idx_t old_vertex, idx_t new_pos) {
    PASTIX_ASSERT(res.perm.perm[static_cast<std::size_t>(old_vertex)] == kNone);
    res.perm.perm[static_cast<std::size_t>(old_vertex)] = new_pos;
    res.perm.invp[static_cast<std::size_t>(new_pos)] = old_vertex;
  };

  std::vector<char> mask(static_cast<std::size_t>(g.n), 0);
  std::vector<idx_t> comp;

  std::vector<WorkItem> stack;
  {
    std::vector<idx_t> all(static_cast<std::size_t>(g.n));
    for (idx_t v = 0; v < g.n; ++v) all[static_cast<std::size_t>(v)] = v;
    stack.push_back({std::move(all), 0, g.n, 0});
  }

  while (!stack.empty()) {
    WorkItem item = std::move(stack.back());
    stack.pop_back();
    const idx_t nsub = static_cast<idx_t>(item.vertices.size());
    PASTIX_ASSERT(item.hi - item.lo == nsub);
    if (nsub == 0) continue;

    // Leaf: order by (halo) minimum degree.
    if (nsub <= opt.leaf_size || item.depth >= opt.max_depth) {
      const Subgraph sub = extract_subgraph(g, item.vertices, opt.halo);
      const std::vector<idx_t> seq =
          min_degree_order(sub.g, sub.num_interior, opt.min_degree);
      for (idx_t k = 0; k < nsub; ++k)
        place(sub.orig[static_cast<std::size_t>(seq[static_cast<std::size_t>(k)])],
              item.lo + k);
      continue;
    }

    // Split disconnected subdomains into components first.
    for (const idx_t v : item.vertices) mask[static_cast<std::size_t>(v)] = 1;
    const idx_t ncomp = connected_components(g, mask, comp);
    // connected_components numbers *all* masked vertices; components of this
    // subdomain are those of its own vertices.
    if (ncomp > 1) {
      std::vector<std::vector<idx_t>> groups(static_cast<std::size_t>(ncomp));
      for (const idx_t v : item.vertices)
        groups[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])]
            .push_back(v);
      idx_t lo = item.lo;
      for (auto& grp : groups) {
        if (grp.empty()) continue;
        const idx_t sz = static_cast<idx_t>(grp.size());
        stack.push_back({std::move(grp), lo, lo + sz, item.depth});
        lo += sz;
      }
      for (const idx_t v : item.vertices) mask[static_cast<std::size_t>(v)] = 0;
      continue;
    }

    // Connected: dissect with a vertex separator.
    SeparatorOptions sep_opt = opt.separator;
    sep_opt.seed += static_cast<std::uint64_t>(item.lo);  // decorrelate levels
    const SeparatorResult sep =
        find_vertex_separator(g, mask, item.vertices, sep_opt);
    for (const idx_t v : item.vertices) mask[static_cast<std::size_t>(v)] = 0;

    if (sep.size_sep == 0 || sep.size_a == 0 || sep.size_b == 0) {
      // Degenerate split (e.g. clique-ish subdomain): fall back to a leaf.
      const Subgraph sub = extract_subgraph(g, item.vertices, opt.halo);
      const std::vector<idx_t> seq =
          min_degree_order(sub.g, sub.num_interior, opt.min_degree);
      for (idx_t k = 0; k < nsub; ++k)
        place(sub.orig[static_cast<std::size_t>(seq[static_cast<std::size_t>(k)])],
              item.lo + k);
      continue;
    }

    // Separator columns come last in the subdomain's range, in subdomain
    // vertex order; both parts recurse below them.
    std::vector<idx_t> part_a, part_b;
    part_a.reserve(static_cast<std::size_t>(sep.size_a));
    part_b.reserve(static_cast<std::size_t>(sep.size_b));
    idx_t sep_pos = item.hi - sep.size_sep;
    for (const idx_t v : item.vertices) {
      switch (sep.part[static_cast<std::size_t>(v)]) {
        case 0: part_a.push_back(v); break;
        case 1: part_b.push_back(v); break;
        default:
          place(v, sep_pos);
          res.sep_depth[static_cast<std::size_t>(sep_pos)] = item.depth;
          ++sep_pos;
          break;
      }
    }
    res.num_separators++;
    const idx_t mid = item.lo + sep.size_a;
    stack.push_back({std::move(part_a), item.lo, mid, item.depth + 1});
    stack.push_back({std::move(part_b), mid, item.hi - sep.size_sep,
                     item.depth + 1});
  }

  for (idx_t v = 0; v < g.n; ++v)
    PASTIX_CHECK(res.perm.perm[static_cast<std::size_t>(v)] != kNone,
                 "nested dissection failed to place every vertex");
  return res;
}

} // namespace pastix
