#pragma once
//
// Supernode partition: fundamental supernodes from the elimination tree and
// factor column counts, followed by relaxed amalgamation (merging small
// supernodes into their parent at a bounded cost in explicit zeros, which
// is what the paper means by "supernodes amalgamated" — the extra entries
// become computed zeros, so the solver's operation count exceeds OPC, as
// Section 3 notes).
//
#include <vector>

#include "sparse/sym_sparse.hpp"

namespace pastix {

struct AmalgamationOptions {
  /// Merge a child whose width is at most this regardless of fill.
  idx_t always_merge_width = 4;
  /// Otherwise merge while added-zeros / merged-dense-size <= this ratio.
  double fill_ratio = 0.10;
  /// Never grow a column block beyond this width by amalgamation
  /// (0 = unlimited).  The splitting phase cuts wide blocks anyway.
  idx_t max_width = 192;
};

/// Fundamental supernode partition of a postordered pattern.
/// `parent` / `counts` must come from the etree utilities on this pattern.
/// Returns rangtab: size ncblk+1, supernode k = columns [rangtab[k],
/// rangtab[k+1]).
std::vector<idx_t> fundamental_supernodes(const std::vector<idx_t>& parent,
                                          const std::vector<idx_t>& counts);

/// Relaxed amalgamation of a supernode partition; returns the merged
/// rangtab.  Heights are derived from `counts` and parenthood from `parent`
/// (both scalar, over the same postordered pattern).
std::vector<idx_t> amalgamate_supernodes(const std::vector<idx_t>& rangtab,
                                         const std::vector<idx_t>& parent,
                                         const std::vector<idx_t>& counts,
                                         const AmalgamationOptions& opt);

/// Map column -> supernode for a given rangtab.
std::vector<idx_t> column_to_supernode(const std::vector<idx_t>& rangtab);

} // namespace pastix
