#pragma once
//
// Top-level ordering phase: produces the permutation and the supernode
// partition consumed by the block symbolic factorization.
//
// Methods:
//  - kHybridNdHamd : Nested Dissection coupled with Halo-AMD leaves — the
//    paper's (Scotch-like) ordering.
//  - kPureNd       : ND with plain AMD leaves (no halo), smaller leaves —
//    stands in for the MeTiS column of Table 1.
//  - kMinDegree    : AMD on the whole graph (ordering ablation).
//
#include "order/etree.hpp"
#include "order/nested_dissection.hpp"
#include "order/supernodes.hpp"
#include "sparse/permute.hpp"

namespace pastix {

enum class OrderingMethod { kHybridNdHamd, kPureNd, kMinDegree };

struct OrderingOptions {
  OrderingMethod method = OrderingMethod::kHybridNdHamd;
  NdOptions nd;
  AmalgamationOptions amalgamation;
};

/// Everything downstream phases need from the ordering.
struct OrderingResult {
  Permutation perm;             ///< old -> new, postordered
  SparsePattern permuted;       ///< pattern of P A P^t
  std::vector<idx_t> parent;    ///< scalar elimination tree of `permuted`
  std::vector<idx_t> counts;    ///< factor column counts (incl. diagonal)
  std::vector<idx_t> rangtab;   ///< supernode partition (after amalgamation)
  ScalarSymbolStats scalar;     ///< NNZ_L / OPC of this ordering (Table 1)
};

OrderingResult compute_ordering(const SparsePattern& pattern,
                                const OrderingOptions& opt = {});

/// Pattern-only symmetric permutation (values not needed by the analysis).
SparsePattern permute_pattern(const SparsePattern& p, const Permutation& perm);

} // namespace pastix
