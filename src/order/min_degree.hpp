#pragma once
//
// (Halo) Approximate Minimum Degree ordering.
//
// Quotient-graph minimum degree in the style of Amestoy-Davis-Duff AMD:
// supervariables, element absorption (incl. aggressive absorption), mass
// elimination, and the AMD approximate external degree (an exact-degree
// mode is kept for testing).  The *halo* extension of Pellegrini-Roman-
// Amestoy: the trailing vertices of the input graph are "halo" vertices
// that participate in adjacency and degrees but are never eliminated —
// exactly what the hybrid ND+HAMD coupling of the paper requires.
//
#include <vector>

#include "graph/graph.hpp"

namespace pastix {

struct MinDegreeOptions {
  /// Use the AMD approximate external degree (true) or the exact external
  /// degree (false, slower; used as the test oracle).
  bool approximate_degree = true;
};

/// Order the first `ninterior` vertices of `g` (locals [ninterior, n) are
/// halo).  Returns the elimination sequence: a vector of `ninterior` local
/// vertex ids, earliest eliminated first.
std::vector<idx_t> min_degree_order(const Graph& g, idx_t ninterior,
                                    const MinDegreeOptions& opt = {});

} // namespace pastix
