#pragma once
//
// Rank-failure recovery supervisor (DESIGN.md §10).
//
// run_ranks_resilient() is the fault-tolerant sibling of rt::run_ranks:
// instead of aborting the world when a rank dies, it quarantines the crash
// (RankKilledError from a fault point), rolls the rank's communication
// state back to its last checkpoint, re-delivers the logged messages the
// rank lost, and restarts it with `restarted = true` so the body resumes
// from the checkpoint.  Survivors never stop — at worst they block in
// recv() until the restarted rank works its way back to the send they are
// waiting on.  Everything rests on the paper's fully static schedule: the
// restarted rank re-executes the same K_p suffix, re-sends the same
// messages (suppressed as duplicates by sequence numbers where already
// consumed), and re-receives the same messages in a canonical order, so
// the recovered factor is bitwise identical to a fault-free run.
//
// Detected silent corruption (IntegrityError, DESIGN.md §15) is treated
// exactly like a crash: the corrupted rank's state cannot be trusted, so
// it is rolled back to its last *verified* checkpoint and replayed.  When
// the checkpoint itself fails verification, the supervisor walks the
// recovery ladder — current slot → previous-generation slot → clean
// restart from position 0 — instead of restoring garbage.
//
// Non-recoverable failures (any exception other than RankKilledError /
// IntegrityError) abort exactly like run_ranks — resilience narrows the
// blast radius of crashes and corruption, it does not mask genuine
// numerical or logic errors.
//
#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "rt/checkpoint.hpp"
#include "rt/comm.hpp"

namespace pastix::rt {

/// Knobs of the recovery layer (plumbed through Solver / NumericFactor).
struct ResilienceOptions {
  bool enabled = false;         ///< master switch (off = plain run_ranks)
  int checkpoint_interval = 0;  ///< tasks between periodic checkpoints;
                                ///< <= 0 = auto (~3 per rank across its K_p)
  int max_restarts = 3;         ///< total restart budget for one run
  std::chrono::milliseconds restart_backoff{0};  ///< pause before relaunch
  std::string checkpoint_dir;   ///< non-empty: mirror checkpoints to files
  std::size_t message_log_bytes = 0;  ///< sender-log soft cap (0 = unbounded)
  bool integrity = true;  ///< checksum resilient messages + scrub committed
                          ///< factor panels (off = overhead baseline only)
};

/// One restart, as it happened.
struct RestartRecord {
  int rank = -1;
  std::uint64_t resumed_at = 0;         ///< K_p index restored from
  std::uint64_t progress_at_death = 0;  ///< K_p index reached when killed
  std::uint64_t replayed_messages = 0;  ///< re-delivered from survivor logs
  std::string cause;                    ///< what killed the rank
};

/// What recovery cost — surfaced through SolverStats and the report.
struct RecoveryReport {
  int restarts = 0;
  std::uint64_t replayed_tasks = 0;     ///< sum of (death - checkpoint) gaps
  std::uint64_t replayed_messages = 0;  ///< re-delivered from logs
  std::uint64_t duplicates_suppressed = 0;  ///< dropped by sequence dedup
  std::uint64_t checkpoints_saved = 0;
  std::uint64_t checkpoint_bytes = 0;   ///< live bytes at end of run
  std::uint64_t integrity_detected = 0;     ///< message checksum mismatches
  std::uint64_t integrity_redelivered = 0;  ///< repaired from sender logs
  std::uint64_t checkpoint_fallbacks = 0;   ///< corrupt-slot ladder descents
  std::vector<RestartRecord> events;
};

/// Run `body(rank, restarted)` on every rank, surviving RankKilledError
/// crashes: the dead rank is rolled back to its checkpoint in `store`,
/// lost messages are re-delivered from the survivors' logs, and the rank
/// is relaunched with restarted = true (the body must then restore from
/// the checkpoint and resume).  The body MUST save a checkpoint before
/// executing its first task (position 0), so even a crash at task 0 is
/// recoverable.  Arms the communicator's resilient mode for the duration
/// of the call and disarms it on the way out.
///
/// Throws (after all ranks unwound, preferring the root cause):
///   - Error when the restart budget is exhausted or a needed logged
///     message was pruned past the log cap;
///   - whatever a rank threw for any non-crash failure (the plain
///     run_ranks semantics — abort() wakes the siblings).
RecoveryReport run_ranks_resilient(
    Comm& comm, int nprocs, const std::function<void(int, bool)>& body,
    Checkpoint& store, const ResilienceOptions& opt);

} // namespace pastix::rt
