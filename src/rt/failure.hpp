#pragma once
//
// Failure taxonomy of the runtime — the classification hook retry drivers
// build on (DESIGN.md §12).
//
// Everything a factorization attempt can throw falls into one of two
// classes, and the distinction decides the whole recovery policy:
//
//   transient — the *environment* failed, not the computation: a rank was
//     killed (RankKilledError), a sibling's failure aborted the world
//     (AbortError), a message did not arrive within the receive deadline
//     (TimeoutError, e.g. overload or injected delay), or a checksum caught
//     silent data corruption (IntegrityError — the bits went bad, not the
//     algorithm; a clean retry recomputes them correctly).  The identical
//     attempt can succeed when retried; a driver should back off and try
//     again within a bounded attempt budget.
//
//   fatal — the computation or its inputs are wrong: a PASTIX_CHECK fired,
//     plan validation failed, a buffer cap was exceeded by construction.
//     Retrying re-executes the same deterministic failure; a driver should
//     fail the job (and, on repetition against one input, quarantine that
//     input — the circuit-breaker pattern in src/service).
//
// Numeric degradation (pivot perturbation, non-finite values) is *not* an
// exception class: the factorization completes and reports it through
// FactorStatus, and drivers escalate through solve_adaptive instead of
// retrying.  See SolverService::classify_attempt for the three-way policy
// (transient / numeric / poison) layered on top of this hook.
//
#include <exception>

#include "rt/comm.hpp"

namespace pastix::rt {

enum class FailureClass : unsigned char {
  kTransient,  ///< environmental; the same attempt may succeed on retry
  kFatal,      ///< deterministic; retrying reproduces the failure
};

[[nodiscard]] inline const char* failure_class_name(FailureClass c) {
  switch (c) {
    case FailureClass::kTransient: return "transient";
    case FailureClass::kFatal: return "fatal";
  }
  return "?";
}

/// Classify one failed attempt.  The transient set is exactly the
/// exception types the comm layer reserves for environmental failures.
[[nodiscard]] inline FailureClass classify_failure(const std::exception& e) {
  if (dynamic_cast<const RankKilledError*>(&e) != nullptr ||
      dynamic_cast<const AbortError*>(&e) != nullptr ||
      dynamic_cast<const TimeoutError*>(&e) != nullptr ||
      dynamic_cast<const IntegrityError*>(&e) != nullptr)
    return FailureClass::kTransient;
  return FailureClass::kFatal;
}

/// True when the failure was detected data corruption — drivers keep a
/// distinct counter (and quarantine reason) for these so a flaky host is
/// distinguishable from a poison input in the stats.
[[nodiscard]] inline bool is_integrity(const std::exception& e) {
  return dynamic_cast<const IntegrityError*>(&e) != nullptr;
}

/// True when the failure was a (simulated) rank crash — the signal the
/// poison-input circuit breaker counts: repeated crashes pinned to one
/// matrix fingerprint mark that fingerprint as poison.
[[nodiscard]] inline bool is_crash(const std::exception& e) {
  return dynamic_cast<const RankKilledError*>(&e) != nullptr;
}

} // namespace pastix::rt
