#include "rt/comm.hpp"

#include <exception>
#include <thread>

namespace pastix::rt {

void run_ranks(int nprocs, const std::function<void(int)>& body) {
  PASTIX_CHECK(nprocs >= 1, "need at least one rank");
  if (nprocs == 1) {
    body(0);  // fast path, keeps single-rank stacks debuggable
    return;
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

} // namespace pastix::rt
