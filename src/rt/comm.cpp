#include "rt/comm.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <thread>

namespace pastix::rt {

std::string describe_tag(std::uint64_t tag) {
  const auto kind = static_cast<MsgKind>(tag >> (2 * kTagIdBits));
  const std::uint64_t id1 = (tag >> kTagIdBits) & ((1ULL << kTagIdBits) - 1);
  const std::uint64_t id2 = tag & ((1ULL << kTagIdBits) - 1);
  const char* name = "?";
  switch (kind) {
    case MsgKind::kAub: name = "AUB"; break;
    case MsgKind::kDiag: name = "DIAG"; break;
    case MsgKind::kPanel: name = "PANEL"; break;
    case MsgKind::kSolve: name = "SOLVE"; break;
  }
  std::ostringstream os;
  os << name << "(" << id1;
  if (id2 != 0 || kind == MsgKind::kPanel || kind == MsgKind::kSolve)
    os << ", " << id2;
  os << ")";
  return os.str();
}

// ---------------------------------------------------------- resilient mode --

void Comm::sequence_and_log(int from, int to, Message& m) {
  auto& s = senders_[static_cast<std::size_t>(from)];
  const std::lock_guard lock(s.mutex);
  const auto n = static_cast<std::size_t>(nprocs());
  if (s.next_seq.size() < n) {
    s.next_seq.resize(n, 1);  // seq 0 is the "unsequenced" sentinel
    s.max_logged.resize(n, 0);
    s.max_dropped.resize(n, 0);
  }
  const auto dest = static_cast<std::size_t>(to);
  m.seq = s.next_seq[dest]++;
  // A replaying rank re-executes its schedule with rewound counters, so it
  // re-sends messages it already logged; only genuinely new sequence
  // numbers are appended (the log holds one copy per (dest, seq)).
  if (m.seq <= s.max_logged[dest]) return;
  s.max_logged[dest] = m.seq;
  LogEntry e;
  e.to = to;
  e.tag = m.tag;
  e.seq = m.seq;
  e.checksum = m.checksum;
  e.checksummed = m.checksummed;
  e.payload = m.payload;
  s.log_bytes += e.payload.size();
  s.log.push_back(std::move(e));
  while (log_limit_ > 0 && s.log_bytes > log_limit_ && s.log.size() > 1) {
    const LogEntry& old = s.log.front();
    auto& dropped = s.max_dropped[static_cast<std::size_t>(old.to)];
    dropped = std::max(dropped, old.seq);
    s.log_bytes -= old.payload.size();
    s.log.pop_front();
  }
}

bool Comm::push_checked(Mailbox& box, Message&& m, bool front) {
  if (m.seq != 0) {
    if (per_source(box.consumed, m.source).count(m.seq) != 0 ||
        per_source(box.queued_seq, m.source).count(m.seq) != 0) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    per_source(box.queued_seq, m.source).insert(m.seq);
  }
  box.queued_bytes += m.payload.size();
  if (front)
    box.queue.push_front(std::move(m));
  else
    box.queue.push_back(std::move(m));
  return true;
}

void Comm::verify_integrity(int rank, std::uint64_t tag, Message& m) {
  if (!m.checksummed) return;
  if (crc32c(m.payload.data(), m.payload.size()) == m.checksum) return;
  integrity_detected_.fetch_add(1, std::memory_order_relaxed);
  // Sender-log re-delivery of just this message: the log holds the bytes
  // as they were framed, so a clean copy repairs the corruption in place
  // without restarting anyone.
  if (m.seq != 0 && m.source >= 0 && m.source < nprocs()) {
    auto& s = senders_[static_cast<std::size_t>(m.source)];
    const std::lock_guard lock(s.mutex);
    for (const auto& e : s.log) {
      if (e.to != rank || e.seq != m.seq) continue;
      if (e.checksummed &&
          crc32c(e.payload.data(), e.payload.size()) == e.checksum) {
        m.payload = e.payload;
        integrity_redelivered_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      break;  // the logged copy is corrupt too — escalate
    }
  }
  throw IntegrityError(
      "message corruption: rank " + std::to_string(rank) + " received " +
      describe_tag(tag) + " from rank " + std::to_string(m.source) +
      " (seq " + std::to_string(m.seq) + ", " +
      std::to_string(m.payload.size()) +
      " bytes) with a CRC32C mismatch and no clean sender-log copy to "
      "re-deliver");
}

CommSeqState Comm::snapshot_seq_state(int rank) {
  const auto n = static_cast<std::size_t>(nprocs());
  CommSeqState state;
  state.next_seq.assign(n, 1);
  state.consumed.resize(n);
  {
    auto& s = senders_[static_cast<std::size_t>(rank)];
    const std::lock_guard lock(s.mutex);
    for (std::size_t q = 0; q < s.next_seq.size(); ++q)
      state.next_seq[q] = s.next_seq[q];
  }
  {
    auto& box = boxes_[static_cast<std::size_t>(rank)];
    const std::lock_guard lock(box.mutex);
    for (std::size_t src = 0; src < box.consumed.size(); ++src) {
      state.consumed[src].assign(box.consumed[src].begin(),
                                 box.consumed[src].end());
      std::sort(state.consumed[src].begin(), state.consumed[src].end());
    }
  }
  return state;
}

void Comm::rollback_rank(int rank, const CommSeqState& state) {
  const auto n = static_cast<std::size_t>(nprocs());
  {
    // The rank's thread is dead, so nobody is blocked in its recv(); drop
    // everything queued — the senders' logs are the single source of truth
    // for what must be visible after the rollback (re-delivered below).
    auto& box = boxes_[static_cast<std::size_t>(rank)];
    const std::lock_guard lock(box.mutex);
    box.queue.clear();
    box.delayed.clear();
    box.queued_bytes = 0;
    box.queued_seq.clear();
    box.consumed.assign(n, {});
    for (std::size_t src = 0; src < state.consumed.size() && src < n; ++src)
      box.consumed[src].insert(state.consumed[src].begin(),
                               state.consumed[src].end());
  }
  {
    // Rewind the send counters so re-executed sends reuse their original
    // sequence numbers and get suppressed by the survivors' consumed sets.
    // max_logged is deliberately NOT rewound: the log already holds those
    // messages and must not accumulate duplicates during replay.
    auto& s = senders_[static_cast<std::size_t>(rank)];
    const std::lock_guard lock(s.mutex);
    if (s.next_seq.size() < n) {
      s.next_seq.resize(n, 1);
      s.max_logged.resize(n, 0);
      s.max_dropped.resize(n, 0);
    }
    for (std::size_t q = 0; q < n; ++q)
      s.next_seq[q] = q < state.next_seq.size() ? state.next_seq[q] : 1;
  }
}

std::size_t Comm::replay_log_to(int rank) {
  auto& box = boxes_[static_cast<std::size_t>(rank)];
  std::size_t delivered = 0;
  for (int sr = 0; sr < nprocs(); ++sr) {
    std::vector<LogEntry> entries;
    std::uint64_t dropped = 0;
    {
      auto& s = senders_[static_cast<std::size_t>(sr)];
      const std::lock_guard lock(s.mutex);
      if (static_cast<std::size_t>(rank) < s.max_dropped.size())
        dropped = s.max_dropped[static_cast<std::size_t>(rank)];
      for (const auto& e : s.log)
        if (e.to == rank) entries.push_back(e);
    }
    const std::lock_guard lock(box.mutex);
    if (dropped > 0) {
      // The pruned entries are exactly seq 1..dropped (per-dest sequence
      // numbers increase along the FIFO log).  Recovery is only sound if
      // the restarted rank consumed all of them before its checkpoint.
      std::uint64_t have = 0;
      for (const std::uint64_t seq : per_source(box.consumed, sr))
        if (seq <= dropped) ++have;
      if (have < dropped)
        throw Error(
            "message-log truncation: rank " + std::to_string(sr) +
            " pruned " + std::to_string(dropped - have) +
            " unconsumed message(s) for rank " + std::to_string(rank) +
            " past the log byte cap; recovery needs a larger "
            "message_log_bytes or a shorter checkpoint interval");
    }
    for (auto& e : entries) {
      Message m;
      m.source = sr;
      m.tag = e.tag;
      m.seq = e.seq;
      m.checksum = e.checksum;
      m.checksummed = e.checksummed;
      m.payload = std::move(e.payload);
      // Replay bypasses the fault ladder and the send-buffer cap: recovery
      // delivery must be deterministic and must not be re-lost.
      if (push_checked(box, std::move(m), /*front=*/false)) ++delivered;
    }
  }
  box.cv.notify_all();
  return delivered;
}

// ------------------------------------------------------------- diagnostics --

void Comm::throw_send_buffer_overflow(Mailbox& box, int to, std::uint64_t tag,
                                      std::size_t bytes) {
  // Aggregate queued bytes per tag so the report names the actual hogs,
  // not just the unlucky message that tripped the cap.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> by_tag;  // (tag, bytes)
  const auto account = [&](const Message& m) {
    for (auto& [t, b] : by_tag)
      if (t == m.tag) {
        b += m.payload.size();
        return;
      }
    by_tag.emplace_back(m.tag, m.payload.size());
  };
  for (const auto& m : box.queue) account(m);
  for (const auto& m : box.delayed) account(m);
  std::sort(by_tag.begin(), by_tag.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::ostringstream os;
  os << "send buffer limit (" << send_buffer_limit_ << " bytes) exceeded: "
     << bytes << "-byte " << describe_tag(tag) << " for rank " << to
     << " would overflow its mailbox (" << box.queued_bytes
     << " bytes queued in " << (box.queue.size() + box.delayed.size())
     << " messages).";
  constexpr std::size_t kMaxListed = 5;
  if (!by_tag.empty()) {
    os << " Worst queued tags:";
    for (std::size_t i = 0; i < by_tag.size() && i < kMaxListed; ++i)
      os << (i == 0 ? " " : ", ") << describe_tag(by_tag[i].first) << " ("
         << by_tag[i].second << " bytes)";
    if (by_tag.size() > kMaxListed) os << ", ...";
  }
  os << "\n(the receiver is falling behind; raise the limit with "
        "set_send_buffer_limit or rebalance the schedule)";
  throw Error(os.str());
}

std::string Comm::deadline_diagnostic(int rank, std::uint64_t wanted,
                                      long deadline_ms, long waited_ms) {
  constexpr std::size_t kMaxListed = 16;
  std::ostringstream os;
  os << "receive deadline (" << deadline_ms << " ms) expired after "
     << waited_ms << " ms: rank " << rank << " is waiting for "
     << describe_tag(wanted) << " which was never sent.";
  std::uint64_t lost_matching = 0;
  std::uint64_t lost_total = 0;
  for (int r = 0; r < nprocs(); ++r) {
    auto& box = boxes_[static_cast<std::size_t>(r)];
    // Snapshot under the box lock; the message text is composed outside any
    // two-lock nesting (our own mailbox lock was released by the caller).
    std::vector<std::pair<int, std::uint64_t>> queued;
    std::vector<std::pair<int, std::uint64_t>> delayed;
    std::vector<std::pair<int, std::uint64_t>> lost;
    std::uint64_t lost_count = 0;
    {
      const std::lock_guard lock(box.mutex);
      for (const auto& m : box.queue) queued.emplace_back(m.source, m.tag);
      for (const auto& m : box.delayed) delayed.emplace_back(m.source, m.tag);
      lost = box.lost;
      lost_count = box.lost_count;
    }
    if (r == rank) {
      for (const auto& [src, tag] : lost)
        if (tag == wanted) ++lost_matching;
    }
    lost_total += lost_count;
    os << "\n  rank " << r << ": " << (queued.size() + delayed.size())
       << " pending message" << (queued.size() + delayed.size() == 1 ? "" : "s");
    std::size_t listed = 0;
    const auto list = [&](const std::vector<std::pair<int, std::uint64_t>>& v,
                          const char* mark) {
      for (const auto& [src, tag] : v) {
        if (listed >= kMaxListed) return;
        os << (listed == 0 ? " [" : ", ") << "from " << src << " "
           << describe_tag(tag) << mark;
        ++listed;
      }
    };
    list(queued, "");
    // Injection-delayed messages are pending-but-held-back: they WILL be
    // released when their receiver blocks, so they are marked rather than
    // hidden — a delayed message must not read as a lost one.
    list(delayed, " (delayed by fault injection)");
    if (listed > 0) {
      if (queued.size() + delayed.size() > listed) os << ", ...";
      os << "]";
    }
  }
  if (lost_matching > 0)
    os << "\n  " << lost_matching << " message(s) with the wanted tag were "
       << "DROPPED by loss injection into rank " << rank
       << " — the message is gone, not late.";
  else if (lost_total > 0)
    os << "\n  " << lost_total
       << " message(s) dropped by loss injection world-wide (none matching "
          "the wanted tag).";
  os << "\n(a peer rank is stuck, dead, or the communication plan is "
        "inconsistent)";
  return os.str();
}

// --------------------------------------------------------------- run_ranks --

namespace {

void run_ranks_impl(int nprocs, const std::function<void(int)>& body,
                    Comm* comm) {
  PASTIX_CHECK(nprocs >= 1, "need at least one rank");
  if (nprocs == 1) {
    try {
      body(0);  // fast path, keeps single-rank stacks debuggable
    } catch (...) {
      if (comm) comm->abort();
      throw;
    }
    return;
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs));
  std::vector<char> secondary(static_cast<std::size_t>(nprocs), 0);
  std::vector<mc::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(r);
      } catch (const AbortError&) {
        // A *different* rank failed first and aborted the communicator;
        // this is a consequence, not a cause.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        secondary[static_cast<std::size_t>(r)] = 1;
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        if (comm) comm->abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer a root-cause exception over the secondary abort wakeups.
  for (std::size_t r = 0; r < errors.size(); ++r)
    if (errors[r] && !secondary[r]) std::rethrow_exception(errors[r]);
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

} // namespace

void run_ranks(int nprocs, const std::function<void(int)>& body) {
  run_ranks_impl(nprocs, body, nullptr);
}

void run_ranks(Comm& comm, int nprocs, const std::function<void(int)>& body) {
  PASTIX_CHECK(comm.nprocs() >= nprocs, "comm smaller than rank count");
  run_ranks_impl(nprocs, body, &comm);
}

} // namespace pastix::rt
