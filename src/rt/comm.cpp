#include "rt/comm.hpp"

#include <exception>
#include <sstream>
#include <thread>

namespace pastix::rt {

std::string describe_tag(std::uint64_t tag) {
  const auto kind = static_cast<MsgKind>(tag >> (2 * kTagIdBits));
  const std::uint64_t id1 = (tag >> kTagIdBits) & ((1ULL << kTagIdBits) - 1);
  const std::uint64_t id2 = tag & ((1ULL << kTagIdBits) - 1);
  const char* name = "?";
  switch (kind) {
    case MsgKind::kAub: name = "AUB"; break;
    case MsgKind::kDiag: name = "DIAG"; break;
    case MsgKind::kPanel: name = "PANEL"; break;
    case MsgKind::kSolve: name = "SOLVE"; break;
  }
  std::ostringstream os;
  os << name << "(" << id1;
  if (id2 != 0 || kind == MsgKind::kPanel || kind == MsgKind::kSolve)
    os << ", " << id2;
  os << ")";
  return os.str();
}

std::string Comm::deadline_diagnostic(int rank, std::uint64_t wanted,
                                      long deadline_ms) {
  constexpr std::size_t kMaxListed = 16;
  std::ostringstream os;
  os << "receive deadline (" << deadline_ms << " ms) expired: rank " << rank
     << " is waiting for " << describe_tag(wanted)
     << " which was never sent.";
  for (int r = 0; r < nprocs(); ++r) {
    const auto queued = pending_tags(r);
    os << "\n  rank " << r << ": " << queued.size() << " pending message"
       << (queued.size() == 1 ? "" : "s");
    std::size_t listed = 0;
    for (const auto& [src, tag] : queued) {
      if (listed++ >= kMaxListed) {
        os << " ...";
        break;
      }
      os << (listed == 1 ? " [" : ", ") << "from " << src << " "
         << describe_tag(tag);
    }
    if (listed > 0) os << "]";
  }
  os << "\n(a peer rank is stuck, dead, or the communication plan is "
        "inconsistent)";
  return os.str();
}

namespace {

void run_ranks_impl(int nprocs, const std::function<void(int)>& body,
                    Comm* comm) {
  PASTIX_CHECK(nprocs >= 1, "need at least one rank");
  if (nprocs == 1) {
    try {
      body(0);  // fast path, keeps single-rank stacks debuggable
    } catch (...) {
      if (comm) comm->abort();
      throw;
    }
    return;
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs));
  std::vector<char> secondary(static_cast<std::size_t>(nprocs), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(r);
      } catch (const AbortError&) {
        // A *different* rank failed first and aborted the communicator;
        // this is a consequence, not a cause.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        secondary[static_cast<std::size_t>(r)] = 1;
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        if (comm) comm->abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer a root-cause exception over the secondary abort wakeups.
  for (std::size_t r = 0; r < errors.size(); ++r)
    if (errors[r] && !secondary[r]) std::rethrow_exception(errors[r]);
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

} // namespace

void run_ranks(int nprocs, const std::function<void(int)>& body) {
  run_ranks_impl(nprocs, body, nullptr);
}

void run_ranks(Comm& comm, int nprocs, const std::function<void(int)>& body) {
  PASTIX_CHECK(comm.nprocs() >= nprocs, "comm smaller than rank count");
  run_ranks_impl(nprocs, body, &comm);
}

} // namespace pastix::rt
