#pragma once
//
// Low-overhead runtime event recorder — the measurement substrate of the
// execution tracer (DESIGN.md §9).
//
// One record lane per rank: a lane is appended to *only* by its own rank
// thread (the same single-writer discipline the solver uses for factor
// blocks), so recording needs no locks and no atomics on the hot path.
// The lanes are read only after rt::run_ranks joined, which gives the
// reader a happens-before edge through the thread join.
//
// Toggling: when disabled (the default), every instrumentation site reduces
// to one pointer/flag test — no clock reads, no allocation, no record.
//
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/check.hpp"

namespace pastix::rt {

/// What a record describes.
enum class TraceKind : std::uint8_t {
  kTask,    ///< one scheduled task execution (subtype = TaskType)
  kKernel,  ///< one dense kernel call inside a task (subtype = KernelOp)
  kSend,    ///< Comm::send — tag, bytes, peer = destination
  kRecv,    ///< Comm::recv — span covers the blocked wait; peer = source
  kPhase,   ///< solve-phase section (subtype: 0 fwd, 1 diag, 2 bwd)
  kRestart, ///< rank restarted from a checkpoint; id1 = resumed K_p index
  kSolveTask, ///< one scheduled solve item (subtype = SolveItemKind);
              ///< id1 = solve item id, id2 = cblk, id3 = blok (or -1)
  kSteal,   ///< hybrid tail: a pool worker claimed a task (DESIGN.md §14);
            ///< id1 = task, id2 = K_p position, id3 = worker index
};

/// One recorded span.  Interpretation of the id fields depends on `kind`:
/// kTask: id1 = task, id2 = cblk; kKernel: id1/id2/id3 = operand dims.
struct TraceRecord {
  TraceKind kind = TraceKind::kTask;
  std::uint8_t subtype = 0;
  std::int32_t id1 = -1, id2 = -1, id3 = -1;
  std::int32_t peer = -1;
  std::uint64_t tag = 0;
  std::uint64_t bytes = 0;
  double start = 0, end = 0;  ///< seconds since the recorder epoch
};

/// Per-rank, single-writer event recorder.
///
/// Hybrid execution (DESIGN.md §14) adds `workers_per_rank` extra lanes per
/// rank for the tail pool: a worker thread installs a LaneScope, and every
/// record() issued from it — including the ones Comm's send/recv paths emit
/// with the *rank* id — is rerouted to the worker's private lane.  That
/// preserves the single-writer-per-lane discipline while rank thread and
/// workers record concurrently.
class TraceRecorder {
public:
  explicit TraceRecorder(int nranks, int workers_per_rank = 0)
      : nranks_(nranks),
        workers_per_rank_(workers_per_rank),
        lanes_(static_cast<std::size_t>(nranks) *
               (1 + static_cast<std::size_t>(workers_per_rank))) {
    PASTIX_CHECK(nranks >= 1, "tracer needs at least one rank");
    PASTIX_CHECK(workers_per_rank >= 0, "negative worker lane count");
    clear();
  }

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] int workers_per_rank() const { return workers_per_rank_; }
  [[nodiscard]] int nlanes() const { return static_cast<int>(lanes_.size()); }

  /// Lane of worker `w` of `rank`.  Lanes [0, nranks) are the rank lanes.
  [[nodiscard]] int worker_lane(int rank, int w) const {
    return nranks_ + rank * workers_per_rank_ + w;
  }

  /// The rank a lane belongs to (its own lane or one of its worker lanes).
  [[nodiscard]] int lane_proc(int lane) const {
    return lane < nranks_ ? lane : (lane - nranks_) / workers_per_rank_;
  }

  /// Arm / disarm recording.  Call only while no rank is running.
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Drop every recorded event and restart the clock epoch.  Call only
  /// while no rank is running (e.g. at the start of a factorization).
  void clear() {
    for (auto& lane : lanes_) {
      lane.events.clear();
#ifndef NDEBUG
      lane.writer = std::thread::id{};  // next run may re-own the lane
#endif
    }
    epoch_ = Clock::now();
  }

  /// Seconds since the last clear().
  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  /// Append a record to `rank`'s lane — or, when the calling thread holds a
  /// LaneScope on this recorder, to that scope's worker lane.
  ///
  /// INVARIANT (one writer per lane): every lane has exactly one writer
  /// thread for the lifetime of a run — the rank thread for lanes
  /// [0, nranks), the LaneScope-holding pool worker for its worker lane.
  /// This is what lets record() run with no locks and no atomics; a second
  /// writer on the same lane is a data race on the events vector.  Debug
  /// builds pin the first writer's thread id to the lane and assert every
  /// later append comes from it (clear() resets the pins between runs).
  void record(int rank, const TraceRecord& r) {
    Lane& lane = lanes_[lane_for(rank)];
#ifndef NDEBUG
    const std::thread::id me = std::this_thread::get_id();
    if (lane.writer == std::thread::id{}) lane.writer = me;
    PASTIX_ASSERT(lane.writer == me);  // one-writer-per-lane violated
#endif
    lane.events.push_back(r);
  }

  /// Read a lane (only after the rank threads joined).  Lanes [0, nranks)
  /// are the rank lanes; use lane_proc() to attribute worker lanes.
  [[nodiscard]] const std::vector<TraceRecord>& events(int lane) const {
    return lanes_[static_cast<std::size_t>(lane)].events;
  }

private:
  friend class LaneScope;
  using Clock = std::chrono::steady_clock;

  struct LaneOverride {
    const TraceRecorder* rec = nullptr;
    int lane = 0;
  };
  static LaneOverride& tls_override() {
    static thread_local LaneOverride o;
    return o;
  }

  [[nodiscard]] std::size_t lane_for(int rank) const {
    const LaneOverride& o = tls_override();
    if (o.rec == this) return static_cast<std::size_t>(o.lane);
    return static_cast<std::size_t>(rank);
  }

  /// Cache-line padded so concurrent appends on different lanes never
  /// false-share.
  struct alignas(64) Lane {
    std::vector<TraceRecord> events;
#ifndef NDEBUG
    std::thread::id writer;  ///< first writer this run (single-writer check)
#endif
  };

  int nranks_;
  int workers_per_rank_;
  std::vector<Lane> lanes_;
  Clock::time_point epoch_;
  bool enabled_ = false;
};

/// RAII thread-local lane override for hybrid pool workers: while alive,
/// every record() this thread issues against `rec` lands in `lane` instead
/// of the rank lane — so Comm's internal send/recv instrumentation keeps
/// working unmodified from worker threads.  Null/disabled recorder: no-op.
class LaneScope {
public:
  LaneScope(TraceRecorder* rec, int lane) {
    if (rec && rec->enabled()) {
      prev_ = TraceRecorder::tls_override();
      TraceRecorder::tls_override() = {rec, lane};
      armed_ = true;
    }
  }
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;
  ~LaneScope() {
    if (armed_) TraceRecorder::tls_override() = prev_;
  }

private:
  TraceRecorder::LaneOverride prev_;
  bool armed_ = false;
};

/// RAII span: stamps `start` on construction and records the completed
/// span on destruction.  With a null or disabled recorder the constructor
/// is a single branch and the destructor a no-op — the zero-cost-off path.
class ScopedSpan {
public:
  ScopedSpan(TraceRecorder* rec, int rank, const TraceRecord& proto)
      : rec_(rec && rec->enabled() ? rec : nullptr), rank_(rank), r_(proto) {
    if (rec_) r_.start = rec_->now();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (rec_) {
      r_.end = rec_->now();
      rec_->record(rank_, r_);
    }
  }

private:
  TraceRecorder* rec_;
  int rank_;
  TraceRecord r_;
};

} // namespace pastix::rt
