#pragma once
//
// Low-overhead runtime event recorder — the measurement substrate of the
// execution tracer (DESIGN.md §9).
//
// One record lane per rank: a lane is appended to *only* by its own rank
// thread (the same single-writer discipline the solver uses for factor
// blocks), so recording needs no locks and no atomics on the hot path.
// The lanes are read only after rt::run_ranks joined, which gives the
// reader a happens-before edge through the thread join.
//
// Toggling: when disabled (the default), every instrumentation site reduces
// to one pointer/flag test — no clock reads, no allocation, no record.
//
#include <chrono>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace pastix::rt {

/// What a record describes.
enum class TraceKind : std::uint8_t {
  kTask,    ///< one scheduled task execution (subtype = TaskType)
  kKernel,  ///< one dense kernel call inside a task (subtype = KernelOp)
  kSend,    ///< Comm::send — tag, bytes, peer = destination
  kRecv,    ///< Comm::recv — span covers the blocked wait; peer = source
  kPhase,   ///< solve-phase section (subtype: 0 fwd, 1 diag, 2 bwd)
  kRestart, ///< rank restarted from a checkpoint; id1 = resumed K_p index
  kSolveTask, ///< one scheduled solve item (subtype = SolveItemKind);
              ///< id1 = solve item id, id2 = cblk, id3 = blok (or -1)
};

/// One recorded span.  Interpretation of the id fields depends on `kind`:
/// kTask: id1 = task, id2 = cblk; kKernel: id1/id2/id3 = operand dims.
struct TraceRecord {
  TraceKind kind = TraceKind::kTask;
  std::uint8_t subtype = 0;
  std::int32_t id1 = -1, id2 = -1, id3 = -1;
  std::int32_t peer = -1;
  std::uint64_t tag = 0;
  std::uint64_t bytes = 0;
  double start = 0, end = 0;  ///< seconds since the recorder epoch
};

/// Per-rank, single-writer event recorder.
class TraceRecorder {
public:
  explicit TraceRecorder(int nranks)
      : lanes_(static_cast<std::size_t>(nranks)) {
    PASTIX_CHECK(nranks >= 1, "tracer needs at least one rank");
    clear();
  }

  [[nodiscard]] int nranks() const { return static_cast<int>(lanes_.size()); }

  /// Arm / disarm recording.  Call only while no rank is running.
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Drop every recorded event and restart the clock epoch.  Call only
  /// while no rank is running (e.g. at the start of a factorization).
  void clear() {
    for (auto& lane : lanes_) lane.events.clear();
    epoch_ = Clock::now();
  }

  /// Seconds since the last clear().
  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  /// Append a record to `rank`'s lane.  Must be called from the thread
  /// that owns the rank (single-writer discipline).
  void record(int rank, const TraceRecord& r) {
    lanes_[static_cast<std::size_t>(rank)].events.push_back(r);
  }

  /// Read a rank's lane (only after the rank threads joined).
  [[nodiscard]] const std::vector<TraceRecord>& events(int rank) const {
    return lanes_[static_cast<std::size_t>(rank)].events;
  }

private:
  using Clock = std::chrono::steady_clock;

  /// Cache-line padded so concurrent appends on different lanes never
  /// false-share.
  struct alignas(64) Lane {
    std::vector<TraceRecord> events;
  };

  std::vector<Lane> lanes_;
  Clock::time_point epoch_;
  bool enabled_ = false;
};

/// RAII span: stamps `start` on construction and records the completed
/// span on destruction.  With a null or disabled recorder the constructor
/// is a single branch and the destructor a no-op — the zero-cost-off path.
class ScopedSpan {
public:
  ScopedSpan(TraceRecorder* rec, int rank, const TraceRecord& proto)
      : rec_(rec && rec->enabled() ? rec : nullptr), rank_(rank), r_(proto) {
    if (rec_) r_.start = rec_->now();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (rec_) {
      r_.end = rec_->now();
      rec_->record(rank_, r_);
    }
  }

private:
  TraceRecorder* rec_;
  int rank_;
  TraceRecord r_;
};

} // namespace pastix::rt
