#include "rt/resilient.hpp"

#include <exception>
#include <mutex>

#include "mc/sync.hpp"

namespace pastix::rt {

namespace {

enum class SlotState {
  kRunning,
  kDone,       ///< body returned normally
  kDead,       ///< RankKilledError — recoverable crash, awaiting supervisor
  kFailed,     ///< any other exception — root cause, aborts the world
  kSecondary,  ///< AbortError — woken by someone else's failure
};

struct Slot {
  mc::thread thread;
  SlotState state = SlotState::kRunning;
  std::exception_ptr error;
  std::string cause;
};

} // namespace

RecoveryReport run_ranks_resilient(
    Comm& comm, int nprocs, const std::function<void(int, bool)>& body,
    Checkpoint& store, const ResilienceOptions& opt) {
  PASTIX_CHECK(nprocs >= 1, "need at least one rank");
  PASTIX_CHECK(comm.nprocs() >= nprocs, "comm smaller than rank count");
  // checkpoint_interval <= 0 means auto: each body resolves it against its
  // own K_p length (FaninSolver picks ~4 checkpoints per rank).
  PASTIX_CHECK(opt.max_restarts >= 0, "max_restarts must be non-negative");

  store.clear();
  store.set_directory(opt.checkpoint_dir);
  // Drop any resilient state left by a previous run on this communicator:
  // sequence counters, sender logs and consumed sets must start fresh or
  // they grow without bound across refactorize() iterations (and stale
  // counters would mis-suppress this run's messages).
  comm.clear_resilience();
  comm.set_resilient_mode(true);
  comm.set_message_log_limit(opt.message_log_bytes);
  comm.set_message_checksums(opt.integrity);

  mc::mutex mutex;
  mc::condition_variable cv;
  std::vector<Slot> slots(static_cast<std::size_t>(nprocs));
  RecoveryReport report;

  // Spawn (or respawn) rank r.  The slot state is written before the thread
  // starts; the thread only ever writes its own terminal state, under the
  // supervisor mutex.
  const auto launch = [&](int r, bool restarted) {
    auto& slot = slots[static_cast<std::size_t>(r)];
    slot.state = SlotState::kRunning;
    slot.error = nullptr;
    slot.thread = mc::thread([&, r, restarted] {
      SlotState next = SlotState::kDone;
      std::exception_ptr err;
      std::string cause;
      try {
        body(r, restarted);
      } catch (const RankKilledError& e) {
        next = SlotState::kDead;
        err = std::current_exception();
        cause = e.what();
      } catch (const IntegrityError& e) {
        // Detected corruption: the rank's state is untrustworthy but the
        // pristine data is recoverable — quarantine and restart it from
        // its last verified checkpoint, exactly like a crash.
        next = SlotState::kDead;
        err = std::current_exception();
        cause = e.what();
      } catch (const AbortError&) {
        next = SlotState::kSecondary;
        err = std::current_exception();
      } catch (const std::exception& e) {
        next = SlotState::kFailed;
        err = std::current_exception();
        cause = e.what();
        comm.abort();
      } catch (...) {
        next = SlotState::kFailed;
        err = std::current_exception();
        comm.abort();
      }
      {
        const std::lock_guard lock(mutex);
        auto& s = slots[static_cast<std::size_t>(r)];
        s.state = next;
        s.error = err;
        s.cause = cause;
      }
      cv.notify_all();
    });
  };

  for (int r = 0; r < nprocs; ++r) launch(r, /*restarted=*/false);

  // Supervisor loop: react to crashes as they surface; exit when no rank is
  // running and no crash is pending.
  int exhausted_rank = -1;
  std::string exhausted_cause;
  std::exception_ptr recovery_error;  ///< store.load/rollback/replay failure
  {
    std::unique_lock lock(mutex);
    for (;;) {
      int dead = -1;
      bool any_running = false;
      for (int r = 0; r < nprocs; ++r) {
        if (slots[static_cast<std::size_t>(r)].state == SlotState::kDead) {
          dead = r;
          break;
        }
        if (slots[static_cast<std::size_t>(r)].state == SlotState::kRunning)
          any_running = true;
      }
      if (dead >= 0) {
        auto& slot = slots[static_cast<std::size_t>(dead)];
        const std::string cause = slot.cause;
        lock.unlock();
        slot.thread.join();  // the crashed thread has fully unwound
        const bool budget_left = report.restarts < opt.max_restarts;
        const bool already_aborted = comm.aborted();
        bool relaunch = false;
        if (!budget_left || already_aborted || !store.has(dead)) {
          // Unrecoverable: out of restarts, the world already aborted for a
          // different root cause, or (a body bug) no checkpoint ever saved.
          // When someone else's failure is the root cause, stay quiet — it
          // is rethrown below from that slot.
          comm.abort();
          if (exhausted_rank < 0 && !already_aborted) {
            exhausted_rank = dead;
            exhausted_cause = budget_left
                                  ? "no checkpoint was saved before the crash"
                                  : cause;
          }
        } else {
          // Recovery ladder for the restore source: the current slot, then
          // the previous generation, then a clean restart from position 0 —
          // an empty payload with fresh comm state is exactly the pristine
          // marker every body saves before its first task, so the ladder
          // always bottoms out in a valid restore, never in garbage.
          const auto load_with_fallback = [&](int rank) -> Checkpoint::Entry {
            try {
              return store.load(rank);
            } catch (const IntegrityError&) {
              report.checkpoint_fallbacks++;
            }
            try {
              return store.load_previous(rank);
            } catch (...) {
              report.checkpoint_fallbacks++;
            }
            Checkpoint::Entry clean;
            clean.valid = true;
            return clean;
          };
          try {
            const Checkpoint::Entry entry = load_with_fallback(dead);
            // Write the ladder's verified choice back into the current slot:
            // the relaunched body restores from store.load(rank), which must
            // agree with the comm rollback below.
            store.repair(dead, entry);
            const std::uint64_t at_death = comm.progress(dead);
            // Mutation hook (mc battery): relaunch without rewinding the
            // dead rank's send counters — its re-sent messages carry fresh
            // sequence numbers, dodge duplicate suppression, and arrive
            // twice (exactly-once delivery broken).
            if (!PASTIX_MC_MUTATION(resilient_skip_rollback))
              comm.rollback_rank(dead, entry.comm);
            const std::size_t redelivered = comm.replay_log_to(dead);
            if (opt.restart_backoff.count() > 0)
              mc::sleep_for(opt.restart_backoff);
            report.restarts++;
            if (at_death > entry.position)
              report.replayed_tasks += at_death - entry.position;
            report.replayed_messages += redelivered;
            RestartRecord ev;
            ev.rank = dead;
            ev.resumed_at = entry.position;
            ev.progress_at_death = at_death;
            ev.replayed_messages = redelivered;
            ev.cause = cause;
            report.events.push_back(std::move(ev));
            relaunch = true;
          } catch (...) {
            // Recovery machinery failed (e.g. the replay needs a message
            // pruned past the log cap, or a checkpoint mirror is unreadable)
            // while survivor ranks are still running.  Abort so they unwind,
            // keep draining the loop until every rank has joined, and only
            // then rethrow — the header's "after all ranks unwound" promise.
            comm.abort();
            if (!recovery_error) recovery_error = std::current_exception();
          }
        }
        lock.lock();
        if (relaunch) {
          launch(dead, /*restarted=*/true);
        } else {
          // Terminal: drop the victim's RankKilledError so the root-cause
          // rethrow below cannot pick it over the rank that actually failed
          // (this path's own cause is carried by recovery_error /
          // exhausted_rank instead).
          slot.state = SlotState::kFailed;
          slot.error = nullptr;
        }
        continue;
      }
      if (!any_running) break;
      cv.wait(lock);
    }
  }
  for (auto& slot : slots)
    if (slot.thread.joinable()) slot.thread.join();

  report.duplicates_suppressed = comm.duplicates_suppressed();
  report.checkpoints_saved = store.saves();
  report.checkpoint_bytes = store.total_bytes();
  report.integrity_detected = comm.integrity_detected();
  report.integrity_redelivered = comm.integrity_redelivered();
  comm.set_resilient_mode(false);

  if (recovery_error) std::rethrow_exception(recovery_error);
  if (exhausted_rank >= 0)
    throw Error("rank " + std::to_string(exhausted_rank) +
                " could not be recovered after " +
                std::to_string(report.restarts) + " restart(s) (max_restarts " +
                std::to_string(opt.max_restarts) + "): " + exhausted_cause);
  // Mirror run_ranks: prefer a root-cause exception over secondary wakeups.
  for (const auto& slot : slots)
    if (slot.error && slot.state == SlotState::kFailed)
      std::rethrow_exception(slot.error);
  for (const auto& slot : slots)
    if (slot.error) std::rethrow_exception(slot.error);
  return report;
}

} // namespace pastix::rt
