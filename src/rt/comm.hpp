#pragma once
//
// Message-passing runtime — the distributed-memory substrate.
//
// The paper runs on an IBM SP2 over MPI; this library reproduces the same
// programming model in-process: every rank is a thread with *private*
// solver storage (by discipline: a rank's factor blocks are touched only by
// its own thread), and ranks exchange data exclusively through tagged,
// copied messages.  Blocking receives match on (source, tag) like
// MPI_Recv; sends are buffered and never block.
//
// Failure semantics (the part MPI leaves to the application):
//   - abort() wakes every blocked receiver with an AbortError, so one
//     failing rank cannot leave its siblings waiting forever;
//   - an optional receive deadline turns a hang into a diagnostic Error
//     listing what the rank was waiting for and what is actually queued;
//   - a seeded fault-injection mode (message delay / reorder / duplicate)
//     lets tests drive the protocol through adversarial delivery orders
//     deterministically.
//
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <string>
#include <functional>
#include <mutex>
#include <vector>

#include "rt/trace.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace pastix::rt {

/// Message tags: 64-bit, composed of a kind and up to two 28-bit ids.
enum class MsgKind : std::uint64_t {
  kAub = 1,    ///< aggregated update block, id1 = target task
  kDiag = 2,   ///< factored diagonal block (L_kk, D_k), id1 = cblk
  kPanel = 3,  ///< solved scaled panel W_j = L_jk D_k, id1 = cblk, id2 = blok
  kSolve = 4,  ///< solve-phase segment/contribution, id1 = phase, id2 = object
};

inline constexpr int kTagIdBits = 28;  ///< bits per id (cblk/blok/task index)

/// Pack (kind, id1, id2) into one tag.  The range check is always on —
/// a silently wrapped id would mis-match messages on large problems, which
/// is strictly worse than failing loudly (ids are task/cblk/blok indices,
/// so 2^28 covers any problem the 32-bit idx_t pipeline can produce).
constexpr std::uint64_t make_tag(MsgKind kind, std::uint64_t id1,
                                 std::uint64_t id2 = 0) {
  PASTIX_CHECK(id1 < (1ULL << kTagIdBits) && id2 < (1ULL << kTagIdBits),
               "message id overflows the tag packing");
  return (static_cast<std::uint64_t>(kind) << (2 * kTagIdBits)) |
         (id1 << kTagIdBits) | id2;
}

/// Human-readable tag decomposition for diagnostics.
std::string describe_tag(std::uint64_t tag);

/// Thrown by recv() when the communicator was aborted by a *different*
/// failing rank — distinct from Error so error reporting can prefer the
/// root cause over the secondary wakeups.
class AbortError : public Error {
public:
  explicit AbortError(const std::string& what) : Error(what) {}
};

/// A delivered message (payload is an opaque byte copy).
struct Message {
  int source = -1;
  std::uint64_t tag = 0;
  std::vector<std::byte> payload;

  /// Reinterpret the payload as an array of T (size must divide evenly).
  template <class T>
  [[nodiscard]] const T* as() const {
    PASTIX_ASSERT(payload.size() % sizeof(T) == 0);
    return reinterpret_cast<const T*>(payload.data());
  }
  template <class T>
  [[nodiscard]] std::size_t count() const {
    return payload.size() / sizeof(T);
  }
};

/// Deterministic, seeded delivery-fault model (chaos harness).  Each
/// delivery draws once from the destination mailbox's own RNG stream, so a
/// given per-box arrival order always produces the same faults.
struct FaultInjection {
  std::uint64_t seed = 0x5eed;
  double delay_prob = 0;      ///< stash; released only when the receiver
                              ///< would otherwise block (max adversarial lag)
  double reorder_prob = 0;    ///< deliver at the *front* of the queue
  double duplicate_prob = 0;  ///< deliver two copies

  [[nodiscard]] bool enabled() const {
    return delay_prob > 0 || reorder_prob > 0 || duplicate_prob > 0;
  }
};

/// MPI-communicator-like world of `nprocs` ranks.
class Comm {
public:
  explicit Comm(int nprocs) : boxes_(static_cast<std::size_t>(nprocs)) {
    PASTIX_CHECK(nprocs >= 1, "need at least one rank");
  }

  [[nodiscard]] int nprocs() const { return static_cast<int>(boxes_.size()); }

  /// Arm the delivery-fault model.  Call before any rank starts
  /// communicating; the per-mailbox RNG streams are reseeded here.
  void set_fault_injection(const FaultInjection& f) {
    PASTIX_CHECK(f.delay_prob + f.reorder_prob + f.duplicate_prob <= 1.0,
                 "fault probabilities must sum to <= 1");
    faults_ = f;
    for (std::size_t i = 0; i < boxes_.size(); ++i) {
      std::uint64_t s = f.seed + 0x9e3779b97f4a7c15ULL * (i + 1);
      boxes_[i].rng_state = splitmix64(s);
    }
  }

  /// Deadline for every blocking recv(); zero (the default) waits forever.
  /// On expiry recv throws a diagnostic Error listing the wanted tag and
  /// the pending (source, tag) pairs — a hang becomes an actionable report.
  void set_recv_deadline(std::chrono::milliseconds deadline) {
    recv_deadline_ms_.store(static_cast<long>(deadline.count()),
                            std::memory_order_relaxed);
  }

  /// Attach (or detach, with nullptr) a runtime event recorder.  Call only
  /// while no rank is communicating.  When attached and enabled, every
  /// send and every blocking receive is recorded on the calling rank's
  /// lane — sends as an instantaneous copy span, receives as the full
  /// blocked interval (entry to matched delivery) with tag, bytes and
  /// source.  Detached or disabled, the cost is one branch per call.
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }

  /// Copy `bytes` bytes to rank `to`'s mailbox.  Never blocks.
  void send(int from, int to, std::uint64_t tag, const void* data,
            std::size_t bytes) {
    PASTIX_CHECK(to >= 0 && to < nprocs(), "send to invalid rank");
    const bool tracing =
        tracer_ && tracer_->enabled() && from >= 0 && from < nprocs();
    const double t0 = tracing ? tracer_->now() : 0.0;
    Message m;
    m.source = from;
    m.tag = tag;
    m.payload.resize(bytes);
    if (bytes > 0) std::memcpy(m.payload.data(), data, bytes);
    auto& box = boxes_[static_cast<std::size_t>(to)];
    {
      const std::lock_guard lock(box.mutex);
      deliver_locked(box, std::move(m));
    }
    box.cv.notify_all();
    if (tracing) {
      TraceRecord r;
      r.kind = TraceKind::kSend;
      r.peer = to;
      r.tag = tag;
      r.bytes = bytes;
      r.start = t0;
      r.end = tracer_->now();
      tracer_->record(from, r);
    }
  }

  /// Typed convenience send.
  template <class T>
  void send_array(int from, int to, std::uint64_t tag, const T* data,
                  std::size_t count) {
    send(from, to, tag, data, count * sizeof(T));
  }

  /// Blocking receive of the first queued message with this tag (any
  /// source).  Out-of-order arrivals with other tags stay queued.  Throws
  /// AbortError if abort() is called while waiting (a peer rank failed) and
  /// a diagnostic Error when the receive deadline expires.
  Message recv(int rank, std::uint64_t tag) {
    auto& box = boxes_[static_cast<std::size_t>(rank)];
    const bool tracing = tracer_ && tracer_->enabled();
    const double t0 = tracing ? tracer_->now() : 0.0;
    const long deadline_ms = recv_deadline_ms_.load(std::memory_order_relaxed);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    std::unique_lock lock(box.mutex);
    for (;;) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->tag == tag) {
          Message m = std::move(*it);
          box.queue.erase(it);
          if (tracing) {
            TraceRecord r;
            r.kind = TraceKind::kRecv;
            r.peer = m.source;
            r.tag = tag;
            r.bytes = m.payload.size();
            r.start = t0;
            r.end = tracer_->now();
            tracer_->record(rank, r);
          }
          return m;
        }
      }
      // No match: before blocking, release one artificially delayed message
      // — injected delays stretch delivery order maximally without ever
      // making a message undeliverable.
      if (!box.delayed.empty()) {
        box.queue.push_back(std::move(box.delayed.front()));
        box.delayed.pop_front();
        continue;
      }
      if (aborted_.load(std::memory_order_relaxed))
        throw AbortError("communicator aborted while rank " +
                         std::to_string(rank) + " was receiving " +
                         describe_tag(tag));
      if (deadline_ms <= 0) {
        box.cv.wait(lock);
      } else if (box.cv.wait_until(lock, deadline) ==
                 std::cv_status::timeout) {
        // Re-scan once: the notifier may have delivered right at expiry.
        bool found = false;
        for (const auto& q : box.queue) found |= (q.tag == tag);
        if (!found && box.delayed.empty()) {
          // Build the diagnostic without holding our own mailbox lock so the
          // per-rank snapshots below never nest two box mutexes.
          lock.unlock();
          throw Error(deadline_diagnostic(rank, tag, deadline_ms));
        }
      }
    }
  }

  /// Wake every blocked receiver with an error — called when a rank fails so
  /// the other ranks do not wait forever on messages that will never come.
  void abort() {
    aborted_.store(true, std::memory_order_relaxed);
    for (auto& box : boxes_) {
      const std::lock_guard lock(box.mutex);
      box.cv.notify_all();
    }
  }

  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_relaxed);
  }

  /// Return the communicator to a clean state: drain every mailbox
  /// (including fault-injected held-back messages) and clear the aborted
  /// flag.  Call only while no rank is communicating — e.g. between a
  /// failed factorization and a refactorize() retry on a persistent Comm.
  /// Fault-injection settings and receive deadlines are kept armed.
  void reset() {
    for (auto& box : boxes_) {
      const std::lock_guard lock(box.mutex);
      box.queue.clear();
      box.delayed.clear();
    }
    aborted_.store(false, std::memory_order_relaxed);
  }

  /// Number of messages currently queued for `rank` (diagnostics; includes
  /// artificially delayed messages).
  [[nodiscard]] std::size_t pending(int rank) {
    auto& box = boxes_[static_cast<std::size_t>(rank)];
    const std::lock_guard lock(box.mutex);
    return box.queue.size() + box.delayed.size();
  }

  /// Snapshot of the (source, tag) pairs queued for `rank` (diagnostics).
  [[nodiscard]] std::vector<std::pair<int, std::uint64_t>> pending_tags(
      int rank) {
    auto& box = boxes_[static_cast<std::size_t>(rank)];
    const std::lock_guard lock(box.mutex);
    std::vector<std::pair<int, std::uint64_t>> out;
    out.reserve(box.queue.size() + box.delayed.size());
    for (const auto& m : box.queue) out.emplace_back(m.source, m.tag);
    for (const auto& m : box.delayed) out.emplace_back(m.source, m.tag);
    return out;
  }

private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
    std::deque<Message> delayed;   ///< fault-injected held-back messages
    std::uint64_t rng_state = 0;   ///< per-box fault RNG (under mutex)
  };

  void deliver_locked(Mailbox& box, Message&& m) {
    if (!faults_.enabled()) {
      box.queue.push_back(std::move(m));
      return;
    }
    const double u =
        static_cast<double>(splitmix64(box.rng_state) >> 11) * 0x1.0p-53;
    if (u < faults_.delay_prob) {
      box.delayed.push_back(std::move(m));
    } else if (u < faults_.delay_prob + faults_.reorder_prob) {
      box.queue.push_front(std::move(m));
    } else if (u < faults_.delay_prob + faults_.reorder_prob +
                       faults_.duplicate_prob) {
      box.queue.push_back(m);
      box.queue.push_back(std::move(m));
    } else {
      box.queue.push_back(std::move(m));
    }
  }

  std::string deadline_diagnostic(int rank, std::uint64_t wanted,
                                  long deadline_ms);

  std::vector<Mailbox> boxes_;
  std::atomic<bool> aborted_{false};
  std::atomic<long> recv_deadline_ms_{0};
  FaultInjection faults_;
  TraceRecorder* tracer_ = nullptr;  ///< optional runtime event recorder
};

/// Run `body(rank)` on every rank concurrently (one thread per rank) and
/// join.  Exceptions thrown by ranks are rethrown on the caller (first one).
void run_ranks(int nprocs, const std::function<void(int)>& body);

/// Abort-aware variant: any rank that throws first calls comm.abort(), so
/// sibling ranks blocked in recv() unblock deterministically instead of
/// waiting for messages that will never come.  The *root cause* exception
/// is rethrown in preference to the secondary AbortErrors of the woken
/// siblings.
void run_ranks(Comm& comm, int nprocs, const std::function<void(int)>& body);

} // namespace pastix::rt
