#pragma once
//
// Message-passing runtime — the distributed-memory substrate.
//
// The paper runs on an IBM SP2 over MPI; this library reproduces the same
// programming model in-process: every rank is a thread with *private*
// solver storage (by discipline: a rank's factor blocks are touched only by
// its own thread), and ranks exchange data exclusively through tagged,
// copied messages.  Blocking receives match on (source, tag) like
// MPI_Recv; sends are buffered and never block.
//
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <string>
#include <functional>
#include <mutex>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace pastix::rt {

/// Message tags: 64-bit, composed of a kind and up to two 24-bit ids.
enum class MsgKind : std::uint64_t {
  kAub = 1,    ///< aggregated update block, id1 = target task
  kDiag = 2,   ///< factored diagonal block (L_kk, D_k), id1 = cblk
  kPanel = 3,  ///< solved scaled panel W_j = L_jk D_k, id1 = cblk, id2 = blok
  kSolve = 4,  ///< solve-phase segment/contribution, id1 = phase, id2 = object
};

constexpr std::uint64_t make_tag(MsgKind kind, std::uint64_t id1,
                                 std::uint64_t id2 = 0) {
  PASTIX_ASSERT(id1 < (1ULL << 24) && id2 < (1ULL << 24));
  return (static_cast<std::uint64_t>(kind) << 48) | (id1 << 24) | id2;
}

/// A delivered message (payload is an opaque byte copy).
struct Message {
  int source = -1;
  std::uint64_t tag = 0;
  std::vector<std::byte> payload;

  /// Reinterpret the payload as an array of T (size must divide evenly).
  template <class T>
  [[nodiscard]] const T* as() const {
    PASTIX_ASSERT(payload.size() % sizeof(T) == 0);
    return reinterpret_cast<const T*>(payload.data());
  }
  template <class T>
  [[nodiscard]] std::size_t count() const {
    return payload.size() / sizeof(T);
  }
};

/// MPI-communicator-like world of `nprocs` ranks.
class Comm {
public:
  explicit Comm(int nprocs) : boxes_(static_cast<std::size_t>(nprocs)) {
    PASTIX_CHECK(nprocs >= 1, "need at least one rank");
  }

  [[nodiscard]] int nprocs() const { return static_cast<int>(boxes_.size()); }

  /// Copy `bytes` bytes to rank `to`'s mailbox.  Never blocks.
  void send(int from, int to, std::uint64_t tag, const void* data,
            std::size_t bytes) {
    PASTIX_CHECK(to >= 0 && to < nprocs(), "send to invalid rank");
    Message m;
    m.source = from;
    m.tag = tag;
    m.payload.resize(bytes);
    if (bytes > 0) std::memcpy(m.payload.data(), data, bytes);
    auto& box = boxes_[static_cast<std::size_t>(to)];
    {
      const std::lock_guard lock(box.mutex);
      box.queue.push_back(std::move(m));
    }
    box.cv.notify_all();
  }

  /// Typed convenience send.
  template <class T>
  void send_array(int from, int to, std::uint64_t tag, const T* data,
                  std::size_t count) {
    send(from, to, tag, data, count * sizeof(T));
  }

  /// Blocking receive of the first queued message with this tag (any
  /// source).  Out-of-order arrivals with other tags stay queued.
  /// Throws if abort() is called while waiting (a peer rank failed).
  Message recv(int rank, std::uint64_t tag) {
    auto& box = boxes_[static_cast<std::size_t>(rank)];
    std::unique_lock lock(box.mutex);
    for (;;) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->tag == tag) {
          Message m = std::move(*it);
          box.queue.erase(it);
          return m;
        }
      }
      if (aborted_.load(std::memory_order_relaxed))
        throw Error("communicator aborted while rank " + std::to_string(rank) +
                    " was receiving");
      box.cv.wait(lock);
    }
  }

  /// Wake every blocked receiver with an error — called when a rank fails so
  /// the other ranks do not wait forever on messages that will never come.
  void abort() {
    aborted_.store(true, std::memory_order_relaxed);
    for (auto& box : boxes_) {
      const std::lock_guard lock(box.mutex);
      box.cv.notify_all();
    }
  }

  /// Number of messages currently queued for `rank` (diagnostics).
  [[nodiscard]] std::size_t pending(int rank) {
    auto& box = boxes_[static_cast<std::size_t>(rank)];
    const std::lock_guard lock(box.mutex);
    return box.queue.size();
  }

private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  std::vector<Mailbox> boxes_;
  std::atomic<bool> aborted_{false};
};

/// Run `body(rank)` on every rank concurrently (one thread per rank) and
/// join.  Exceptions thrown by ranks are rethrown on the caller (first one).
void run_ranks(int nprocs, const std::function<void(int)>& body);

} // namespace pastix::rt
