#pragma once
//
// Checkpoint store for rank-failure recovery (DESIGN.md §10, §15).
//
// A checkpoint is everything a restarted rank needs to resume its fully
// static schedule K_p mid-stream and still produce a factor bitwise
// identical to a fault-free run:
//
//   - `position`: the index in K_p the rank will execute next — every task
//     before it has fully taken effect in the payload below;
//   - `payload`: the solver's serialized numeric state (factored column
//     blocks owned so far, live AUB accumulators, cached diagonals/panels,
//     pivot status) — opaque bytes to this layer;
//   - `comm`: the rank's message-sequencing state (send counters per
//     destination, consumed sequence numbers per source), so replayed
//     sends reuse their original sequence numbers and replayed deliveries
//     are duplicate-suppressed (rt/comm.hpp).
//
// Integrity: every slot stores a CRC32C over (position, payload, comm),
// computed at save time and verified on load()/load_previous()/read_file()
// — a corrupted checkpoint is an IntegrityError, never a garbage restore.
// Each rank keeps *two* generations (current + previous), so the resilient
// supervisor's recovery ladder is: current slot → previous slot → clean
// restart from position 0 (the pristine marker is re-synthesizable: empty
// payload, empty comm state).
//
// The store is in-memory by default; set_directory() additionally mirrors
// every save to one binary file per rank, surviving the Checkpoint object
// itself (a process-level restart could reload from disk).  The mirror
// write is atomic — serialize to `<path>.tmp`, fsync, rename — so a crash
// mid-write leaves the previous complete file, never a torn one; the file
// carries a checksum footer verified by read_file().  Each rank gets
// its own slot with its own mutex: saves happen concurrently from rank
// threads (and a global lock would serialize full-state serialization,
// stalling healthy ranks); loads happen from the recovery supervisor while
// the saving rank is dead, so a slot is never saved and loaded at once.
//
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <unistd.h>  // fsync

#include "rt/comm.hpp"
#include "support/check.hpp"
#include "support/checksum.hpp"
#include "support/rng.hpp"

namespace pastix::rt {

class Checkpoint {
public:
  struct Entry {
    bool valid = false;
    std::uint64_t position = 0;       ///< next K_p index to execute
    std::uint32_t checksum = 0;       ///< CRC32C over (position, payload, comm)
    std::vector<std::byte> payload;   ///< opaque solver state
    CommSeqState comm;                ///< message-sequencing state

    [[nodiscard]] std::uint64_t bytes() const {
      return payload.size() + comm.bytes() + sizeof(position);
    }
  };

  /// CRC32C binding a slot's position, payload and comm state together —
  /// a flip in any of the three fails verification.
  [[nodiscard]] static std::uint32_t entry_checksum(const Entry& e) {
    std::uint32_t c = crc32c(&e.position, sizeof(e.position));
    c = crc32c(e.payload.data(), e.payload.size(), c);
    c = crc32c(e.comm.next_seq.data(),
               e.comm.next_seq.size() * sizeof(std::uint64_t), c);
    for (const auto& v : e.comm.consumed) {
      const std::uint64_t n = v.size();
      c = crc32c(&n, sizeof(n), c);
      c = crc32c(v.data(), v.size() * sizeof(std::uint64_t), c);
    }
    return c;
  }

  /// Mirror every save to `<dir>/rank<r>.ckpt` (empty string disables).
  /// The directory must already exist; file errors surface as pastix::Error
  /// at save time (a checkpoint that silently failed to persist is worse
  /// than a loud one).
  void set_directory(std::string dir) {
    const std::lock_guard lock(mutex_);
    dir_ = std::move(dir);
  }

  /// Arm seeded checkpoint-byte-flip injection (the SDC chaos mode): after
  /// each save, with probability checkpoint_flip_prob, one byte of the
  /// just-saved slot payload is flipped — *after* the checksum was
  /// computed, so a later load must detect it.
  void set_sdc_injection(const SdcInjection& s) {
    const std::lock_guard lock(mutex_);
    sdc_ = s;
  }

  /// Test/chaos hook: flip one seeded byte of `rank`'s *current* slot
  /// payload, leaving the previous generation clean — drives the
  /// "fall back to an older slot" rung of the recovery ladder.
  void corrupt_latest(int rank, std::uint64_t seed = 1) {
    Slot& s = slot(rank);
    const std::lock_guard lock(s.m);
    PASTIX_CHECK(s.entry.valid && !s.entry.payload.empty(),
                 "no checkpoint payload to corrupt for rank " +
                     std::to_string(rank));
    std::uint64_t x = seed;
    const std::uint64_t i = splitmix64(x) % s.entry.payload.size();
    s.entry.payload[i] ^= std::byte{0x40};
  }

  /// Store `rank`'s checkpoint.  The slot's former current entry becomes
  /// the *previous* generation (the fallback for corrupt-checkpoint
  /// recovery); the generation it displaces donates its buffer to
  /// `fill(payload)`, which serializes the opaque solver state directly
  /// into it — periodic checkpoints sit on the rank's critical path, so
  /// neither an extra payload copy nor a fresh allocation per save is
  /// affordable.
  template <class Fn>
  void save_with(int rank, std::uint64_t position, CommSeqState comm,
                 Fn&& fill) {
    Slot& s = slot(rank);
    std::string dir;
    SdcInjection sdc;
    {
      const std::lock_guard lock(mutex_);
      dir = dir_;
      sdc = sdc_;
      saves_++;
    }
    const std::lock_guard lock(s.m);
    std::swap(s.entry, s.prev);  // current → fallback; reuse the older buffer
    fill(s.entry.payload);
    s.entry.position = position;
    s.entry.comm = std::move(comm);
    s.entry.checksum = entry_checksum(s.entry);
    s.entry.valid = true;
    if (!dir.empty()) write_file(rank, s.entry, dir);
    if (sdc.checkpoint_flip_prob > 0 && !s.entry.payload.empty()) {
      if (s.rng == 0)
        s.rng = splitmix64(sdc.seed) +
                0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(rank) + 1);
      const double u =
          static_cast<double>(splitmix64(s.rng) >> 11) * 0x1.0p-53;
      if (u < sdc.checkpoint_flip_prob) {
        const std::uint64_t i = splitmix64(s.rng) % s.entry.payload.size();
        s.entry.payload[i] ^= std::byte{0x01};
      }
    }
  }

  /// Copy-in convenience over save_with (tests, callers with a ready buffer).
  void save(int rank, std::uint64_t position,
            const std::vector<std::byte>& payload, CommSeqState comm) {
    save_with(rank, position, std::move(comm),
              [&](std::vector<std::byte>& out) { out = payload; });
  }

  [[nodiscard]] bool has(int rank) const {
    const Slot* s = find(rank);
    if (s == nullptr) return false;
    const std::lock_guard lock(s->m);
    return s->entry.valid;
  }

  /// Copy out `rank`'s checkpoint (throws Error if none was saved,
  /// IntegrityError if the slot fails checksum verification).
  [[nodiscard]] Entry load(int rank) const {
    const Slot* s = find(rank);
    if (s != nullptr) {
      const std::lock_guard lock(s->m);
      if (s->entry.valid) return verified(s->entry, rank, "slot");
    }
    throw Error("no checkpoint saved for rank " + std::to_string(rank));
  }

  /// Copy out `rank`'s *previous*-generation checkpoint — the fallback the
  /// supervisor tries when the current slot is corrupt.  Same error
  /// contract as load().
  [[nodiscard]] Entry load_previous(int rank) const {
    const Slot* s = find(rank);
    if (s != nullptr) {
      const std::lock_guard lock(s->m);
      if (s->prev.valid) return verified(s->prev, rank, "previous slot");
    }
    throw Error("no previous-generation checkpoint for rank " +
                std::to_string(rank));
  }

  /// Install `e` as `rank`'s *current* generation with a freshly computed
  /// checksum — the supervisor's write-back after walking the recovery
  /// ladder.  The relaunched rank re-loads its own checkpoint to restore
  /// numeric state; repairing the slot with the ladder's verified choice
  /// keeps that load coherent with the comm rollback the supervisor already
  /// performed (and stops a corrupt current slot from killing every
  /// relaunch until the restart budget runs out).
  void repair(int rank, Entry e) {
    Slot& s = slot(rank);
    const std::lock_guard lock(s.m);
    e.checksum = entry_checksum(e);
    e.valid = true;
    s.entry = std::move(e);
  }

  /// Drop every checkpoint (call at the start of a factorization so a stale
  /// entry from a previous run can never be restored).  Invalidates the
  /// entries but keeps the payload buffers' capacity: a refactorization
  /// loop would otherwise re-fault megabytes of freshly allocated pages on
  /// every run's first save.  Not thread-safe against in-flight saves —
  /// call between runs, never during one.
  void clear() {
    const std::lock_guard lock(mutex_);
    for (auto& p : slots_) {
      if (!p) continue;
      const std::lock_guard slot_lock(p->m);
      for (Entry* e : {&p->entry, &p->prev}) {
        e->valid = false;
        e->payload.clear();
        e->comm = CommSeqState{};
        e->checksum = 0;
      }
    }
    saves_ = 0;
  }

  /// Total bytes currently held across all ranks' checkpoints (both
  /// generations).
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::vector<const Slot*> all;
    {
      const std::lock_guard lock(mutex_);
      for (const auto& p : slots_)
        if (p) all.push_back(p.get());
    }
    std::uint64_t b = 0;
    for (const Slot* s : all) {
      const std::lock_guard lock(s->m);
      if (s->entry.valid) b += s->entry.bytes();
      if (s->prev.valid) b += s->prev.bytes();
    }
    return b;
  }

  /// Number of save() calls since the last clear().
  [[nodiscard]] std::uint64_t saves() const {
    const std::lock_guard lock(mutex_);
    return saves_;
  }

  /// Read one rank's file-backed checkpoint back in (process-restart path;
  /// also the round-trip check used by tests).  The file's checksum footer
  /// is verified — a flipped or torn file is an IntegrityError, not a
  /// garbage Entry.
  [[nodiscard]] static Entry read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    PASTIX_CHECK(f != nullptr, "cannot open checkpoint file " + path);
    // Byte budget: every length field is checked against the bytes actually
    // left in the file *before* any allocation, so a flipped length can
    // never turn into a multi-gigabyte resize (or a std::length_error that
    // bypasses the structured-error contract) — it reads as truncation.
    std::uint64_t remaining = 0;
    if (std::fseek(f, 0, SEEK_END) == 0) {
      const long sz = std::ftell(f);
      if (sz > 0) remaining = static_cast<std::uint64_t>(sz);
    }
    bool ok = std::fseek(f, 0, SEEK_SET) == 0 && remaining > 0;
    Crc32c crc;
    const auto take = [&](std::uint64_t n) {
      if (n > remaining) {
        ok = false;
        return false;
      }
      remaining -= n;
      return ok;
    };
    const auto get_u64 = [&]() -> std::uint64_t {
      std::uint64_t v = 0;
      ok = take(sizeof v) && std::fread(&v, sizeof(v), 1, f) == 1;
      if (ok) crc.update(&v, sizeof(v));
      return v;
    };
    Entry e;
    const std::uint64_t magic = get_u64();
    PASTIX_CHECK(!ok || magic == 0x70617374636b7031ULL,
                 "not a checkpoint file: " + path);
    e.position = get_u64();
    const std::uint64_t payload_bytes = get_u64();
    if (take(payload_bytes) && payload_bytes > 0) {
      e.payload.resize(payload_bytes);
      ok = std::fread(e.payload.data(), 1, e.payload.size(), f) ==
           e.payload.size();
      if (ok) crc.update(e.payload.data(), e.payload.size());
    }
    // Element counts: overflow-safe pre-check only — get_u64 itself draws
    // each element from the budget.
    const auto fits = [&](std::uint64_t count) {
      if (count > remaining / sizeof(std::uint64_t)) ok = false;
      return ok;
    };
    const std::uint64_t nseq = get_u64();
    if (fits(nseq)) {
      e.comm.next_seq.resize(nseq);
      for (auto& v : e.comm.next_seq) v = get_u64();
    }
    const std::uint64_t nsrc = get_u64();
    if (fits(nsrc)) {
      e.comm.consumed.resize(nsrc);
      for (auto& c : e.comm.consumed) {
        const std::uint64_t n = get_u64();
        if (!fits(n)) break;
        c.resize(n);
        for (auto& v : c) v = get_u64();
      }
    }
    const std::uint32_t expect = crc.value();
    std::uint64_t footer = 0;
    ok = ok && std::fread(&footer, sizeof(footer), 1, f) == 1;
    std::fclose(f);
    PASTIX_CHECK(ok, "truncated checkpoint file " + path);
    if (footer != footer_word(expect))
      throw IntegrityError("checkpoint file corruption: " + path +
                           " failed CRC32C footer verification (stored 0x" +
                           hex64(footer) + ", recomputed 0x" +
                           hex64(footer_word(expect)) + ")");
    e.checksum = entry_checksum(e);
    e.valid = true;
    return e;
  }

private:
  // One rank's checkpoint generations plus the mutex that covers them.
  // Held by pointer so growing slots_ never moves (or re-creates) a mutex
  // another thread holds.
  struct Slot {
    mutable mc::mutex m;
    Entry entry;            ///< current generation
    Entry prev;             ///< previous generation (corruption fallback)
    std::uint64_t rng = 0;  ///< SDC flip stream (lazily seeded)
  };

  /// The file footer stores the CRC and its complement in one u64 so a
  /// zeroed footer (a common torn-write artifact) can never verify.
  [[nodiscard]] static std::uint64_t footer_word(std::uint32_t crc) {
    return (static_cast<std::uint64_t>(~crc) << 32) | crc;
  }

  [[nodiscard]] static std::string hex64(std::uint64_t v) {
    static const char* d = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i, v >>= 4) s[static_cast<std::size_t>(i)] = d[v & 0xF];
    return s;
  }

  [[nodiscard]] static Entry verified(const Entry& e, int rank,
                                      const char* which) {
    const std::uint32_t expect = entry_checksum(e);
    if (expect != e.checksum)
      throw IntegrityError(
          "checkpoint corruption: rank " + std::to_string(rank) + " " +
          which + " at position " + std::to_string(e.position) + " (" +
          std::to_string(e.payload.size()) +
          " payload bytes) failed CRC32C verification");
    return e;
  }

  Slot& slot(int rank) {
    const std::lock_guard lock(mutex_);
    if (slots_.size() <= static_cast<std::size_t>(rank))
      slots_.resize(static_cast<std::size_t>(rank) + 1);
    auto& p = slots_[static_cast<std::size_t>(rank)];
    if (!p) p = std::make_unique<Slot>();
    return *p;
  }

  [[nodiscard]] const Slot* find(int rank) const {
    const std::lock_guard lock(mutex_);
    return static_cast<std::size_t>(rank) < slots_.size()
               ? slots_[static_cast<std::size_t>(rank)].get()
               : nullptr;
  }

  static void write_file(int rank, const Entry& e, const std::string& dir) {
    const std::string path = dir + "/rank" + std::to_string(rank) + ".ckpt";
    // Atomic mirror: serialize to a sibling temp file, fsync, rename.  A
    // crash at any point leaves either the previous complete file or a
    // stray .tmp — never a torn .ckpt that later restores garbage.
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    PASTIX_CHECK(f != nullptr, "cannot open checkpoint file " + tmp);
    bool ok = true;
    Crc32c crc;
    const auto put_u64 = [&](std::uint64_t v) {
      ok = ok && std::fwrite(&v, sizeof(v), 1, f) == 1;
      crc.update(&v, sizeof(v));
    };
    put_u64(0x70617374636b7031ULL);  // "pastckp1"
    put_u64(e.position);
    put_u64(e.payload.size());
    if (!e.payload.empty()) {
      ok = ok && std::fwrite(e.payload.data(), 1, e.payload.size(), f) ==
                     e.payload.size();
      crc.update(e.payload.data(), e.payload.size());
    }
    put_u64(e.comm.next_seq.size());
    for (const std::uint64_t v : e.comm.next_seq) put_u64(v);
    put_u64(e.comm.consumed.size());
    for (const auto& c : e.comm.consumed) {
      put_u64(c.size());
      for (const std::uint64_t v : c) put_u64(v);
    }
    const std::uint64_t footer = footer_word(crc.value());
    ok = ok && std::fwrite(&footer, sizeof(footer), 1, f) == 1;
    ok = ok && std::fflush(f) == 0 && fsync(fileno(f)) == 0;
    ok = std::fclose(f) == 0 && ok;
    PASTIX_CHECK(ok, "short write to checkpoint file " + tmp);
    PASTIX_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "cannot rename checkpoint file " + tmp + " into place");
  }

  mutable mc::mutex mutex_;  ///< guards slots_'s shape, dir_, sdc_, saves_
  std::vector<std::unique_ptr<Slot>> slots_;
  std::string dir_;
  SdcInjection sdc_;
  std::uint64_t saves_ = 0;
};

} // namespace pastix::rt
