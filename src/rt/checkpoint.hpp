#pragma once
//
// Checkpoint store for rank-failure recovery (DESIGN.md §10).
//
// A checkpoint is everything a restarted rank needs to resume its fully
// static schedule K_p mid-stream and still produce a factor bitwise
// identical to a fault-free run:
//
//   - `position`: the index in K_p the rank will execute next — every task
//     before it has fully taken effect in the payload below;
//   - `payload`: the solver's serialized numeric state (factored column
//     blocks owned so far, live AUB accumulators, cached diagonals/panels,
//     pivot status) — opaque bytes to this layer;
//   - `comm`: the rank's message-sequencing state (send counters per
//     destination, consumed sequence numbers per source), so replayed
//     sends reuse their original sequence numbers and replayed deliveries
//     are duplicate-suppressed (rt/comm.hpp).
//
// The store is in-memory by default; set_directory() additionally mirrors
// every save to one binary file per rank, surviving the Checkpoint object
// itself (a process-level restart could reload from disk).  Each rank gets
// its own slot with its own mutex: saves happen concurrently from rank
// threads (and a global lock would serialize full-state serialization,
// stalling healthy ranks); loads happen from the recovery supervisor while
// the saving rank is dead, so a slot is never saved and loaded at once.
//
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rt/comm.hpp"
#include "support/check.hpp"

namespace pastix::rt {

class Checkpoint {
public:
  struct Entry {
    bool valid = false;
    std::uint64_t position = 0;       ///< next K_p index to execute
    std::vector<std::byte> payload;   ///< opaque solver state
    CommSeqState comm;                ///< message-sequencing state

    [[nodiscard]] std::uint64_t bytes() const {
      return payload.size() + comm.bytes() + sizeof(position);
    }
  };

  /// Mirror every save to `<dir>/rank<r>.ckpt` (empty string disables).
  /// The directory must already exist; file errors surface as pastix::Error
  /// at save time (a checkpoint that silently failed to persist is worse
  /// than a loud one).
  void set_directory(std::string dir) {
    const std::lock_guard lock(mutex_);
    dir_ = std::move(dir);
  }

  /// Store `rank`'s checkpoint, replacing any previous one.  `fill(payload)`
  /// serializes the opaque solver state directly into the slot's buffer,
  /// whose capacity is reused across saves — periodic checkpoints sit on the
  /// rank's critical path, so neither an extra payload copy nor a fresh
  /// allocation per save is affordable.
  template <class Fn>
  void save_with(int rank, std::uint64_t position, CommSeqState comm,
                 Fn&& fill) {
    Slot& s = slot(rank);
    std::string dir;
    {
      const std::lock_guard lock(mutex_);
      dir = dir_;
      saves_++;
    }
    const std::lock_guard lock(s.m);
    fill(s.entry.payload);
    s.entry.position = position;
    s.entry.comm = std::move(comm);
    s.entry.valid = true;
    if (!dir.empty()) write_file(rank, s.entry, dir);
  }

  /// Copy-in convenience over save_with (tests, callers with a ready buffer).
  void save(int rank, std::uint64_t position,
            const std::vector<std::byte>& payload, CommSeqState comm) {
    save_with(rank, position, std::move(comm),
              [&](std::vector<std::byte>& out) { out = payload; });
  }

  [[nodiscard]] bool has(int rank) const {
    const Slot* s = find(rank);
    if (s == nullptr) return false;
    const std::lock_guard lock(s->m);
    return s->entry.valid;
  }

  /// Copy out `rank`'s checkpoint (throws if none was saved).
  [[nodiscard]] Entry load(int rank) const {
    const Slot* s = find(rank);
    if (s != nullptr) {
      const std::lock_guard lock(s->m);
      if (s->entry.valid) return s->entry;
    }
    throw Error("no checkpoint saved for rank " + std::to_string(rank));
  }

  /// Drop every checkpoint (call at the start of a factorization so a stale
  /// entry from a previous run can never be restored).  Invalidates the
  /// entries but keeps the payload buffers' capacity: a refactorization
  /// loop would otherwise re-fault megabytes of freshly allocated pages on
  /// every run's first save.  Not thread-safe against in-flight saves —
  /// call between runs, never during one.
  void clear() {
    const std::lock_guard lock(mutex_);
    for (auto& p : slots_) {
      if (!p) continue;
      const std::lock_guard slot_lock(p->m);
      p->entry.valid = false;
      p->entry.payload.clear();
      p->entry.comm = CommSeqState{};
    }
    saves_ = 0;
  }

  /// Total bytes currently held across all ranks' checkpoints.
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::vector<const Slot*> all;
    {
      const std::lock_guard lock(mutex_);
      for (const auto& p : slots_)
        if (p) all.push_back(p.get());
    }
    std::uint64_t b = 0;
    for (const Slot* s : all) {
      const std::lock_guard lock(s->m);
      if (s->entry.valid) b += s->entry.bytes();
    }
    return b;
  }

  /// Number of save() calls since the last clear().
  [[nodiscard]] std::uint64_t saves() const {
    const std::lock_guard lock(mutex_);
    return saves_;
  }

  /// Read one rank's file-backed checkpoint back in (process-restart path;
  /// also the round-trip check used by tests).
  [[nodiscard]] static Entry read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    PASTIX_CHECK(f != nullptr, "cannot open checkpoint file " + path);
    bool ok = true;
    const auto get_u64 = [&]() -> std::uint64_t {
      std::uint64_t v = 0;
      ok = ok && std::fread(&v, sizeof(v), 1, f) == 1;
      return v;
    };
    Entry e;
    const std::uint64_t magic = get_u64();
    PASTIX_CHECK(!ok || magic == 0x70617374636b7031ULL,
                 "not a checkpoint file: " + path);
    e.position = get_u64();
    e.payload.resize(get_u64());
    if (!e.payload.empty())
      ok = ok && std::fread(e.payload.data(), 1, e.payload.size(), f) ==
                     e.payload.size();
    e.comm.next_seq.resize(get_u64());
    for (auto& v : e.comm.next_seq) v = get_u64();
    e.comm.consumed.resize(get_u64());
    for (auto& c : e.comm.consumed) {
      c.resize(get_u64());
      for (auto& v : c) v = get_u64();
    }
    std::fclose(f);
    PASTIX_CHECK(ok, "truncated checkpoint file " + path);
    e.valid = true;
    return e;
  }

private:
  // One rank's checkpoint plus the mutex that covers it.  Held by pointer so
  // growing slots_ never moves (or re-creates) a mutex another thread holds.
  struct Slot {
    mutable std::mutex m;
    Entry entry;
  };

  Slot& slot(int rank) {
    const std::lock_guard lock(mutex_);
    if (slots_.size() <= static_cast<std::size_t>(rank))
      slots_.resize(static_cast<std::size_t>(rank) + 1);
    auto& p = slots_[static_cast<std::size_t>(rank)];
    if (!p) p = std::make_unique<Slot>();
    return *p;
  }

  [[nodiscard]] const Slot* find(int rank) const {
    const std::lock_guard lock(mutex_);
    return static_cast<std::size_t>(rank) < slots_.size()
               ? slots_[static_cast<std::size_t>(rank)].get()
               : nullptr;
  }

  static void write_file(int rank, const Entry& e, const std::string& dir) {
    const std::string path = dir + "/rank" + std::to_string(rank) + ".ckpt";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    PASTIX_CHECK(f != nullptr, "cannot open checkpoint file " + path);
    bool ok = true;
    const auto put_u64 = [&](std::uint64_t v) {
      ok = ok && std::fwrite(&v, sizeof(v), 1, f) == 1;
    };
    put_u64(0x70617374636b7031ULL);  // "pastckp1"
    put_u64(e.position);
    put_u64(e.payload.size());
    if (!e.payload.empty())
      ok = ok && std::fwrite(e.payload.data(), 1, e.payload.size(), f) ==
                     e.payload.size();
    put_u64(e.comm.next_seq.size());
    for (const std::uint64_t v : e.comm.next_seq) put_u64(v);
    put_u64(e.comm.consumed.size());
    for (const auto& c : e.comm.consumed) {
      put_u64(c.size());
      for (const std::uint64_t v : c) put_u64(v);
    }
    ok = std::fclose(f) == 0 && ok;
    PASTIX_CHECK(ok, "short write to checkpoint file " + path);
  }

  mutable std::mutex mutex_;  ///< guards slots_'s shape, dir_, saves_
  std::vector<std::unique_ptr<Slot>> slots_;
  std::string dir_;
  std::uint64_t saves_ = 0;
};

} // namespace pastix::rt
