//
// SolverService implementation — admission, cache, execute, retry
// (see service.hpp and DESIGN.md §12).
//
#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/rng.hpp"
#include "support/table.hpp"
#include "verify/verify.hpp"

namespace pastix::service {

namespace detail {

struct Job {
  JobRequest req;
  PatternFingerprint fp;
  std::uint64_t seq = 0;
  Clock::time_point submitted;
  bool displaced = false;  ///< shed by overflow, not deadline (under mu_)

  mc::mutex m;
  mc::condition_variable cv;
  bool ready = false;
  JobResult res;
};

} // namespace detail

using detail::Job;

const char* job_error_name(JobError e) {
  switch (e) {
    case JobError::kNone: return "none";
    case JobError::kQueueFull: return "queue-full";
    case JobError::kTenantLimit: return "tenant-limit";
    case JobError::kQuarantined: return "quarantined";
    case JobError::kAnalysisFailed: return "analysis-failed";
    case JobError::kNumericFailure: return "numeric-failure";
    case JobError::kRetriesExhausted: return "retries-exhausted";
    case JobError::kOverBudget: return "over-budget";
    case JobError::kInternal: return "internal";
    case JobError::kDeadlineExpired: return "deadline-expired";
    case JobError::kQueueOverflow: return "queue-overflow";
    case JobError::kShutdown: return "shutdown";
  }
  return "?";
}

bool JobTicket::finished() const {
  PASTIX_CHECK(job_ != nullptr, "empty job ticket");
  const std::lock_guard lock(job_->m);
  return job_->ready;
}

const JobResult& JobTicket::wait() const {
  PASTIX_CHECK(job_ != nullptr, "empty job ticket");
  std::unique_lock lock(job_->m);
  job_->cv.wait(lock, [&] { return job_->ready; });
  return job_->res;
}

// Pop order: highest priority first, then earliest deadline (the job with
// the least slack), then submission order.  The multiset's *last* element
// is therefore the displacement victim when the queue overflows.
bool SolverService::QueueCmp::operator()(
    const std::shared_ptr<Job>& a, const std::shared_ptr<Job>& b) const {
  if (a->req.priority != b->req.priority)
    return a->req.priority > b->req.priority;
  if (a->req.deadline != b->req.deadline)
    return a->req.deadline < b->req.deadline;
  return a->seq < b->seq;
}

SolverService::SolverService(ServiceOptions opt)
    : opt_(std::move(opt)),
      exec_opt_(opt_.solver),
      cache_([&] {
        PlanCacheOptions c = opt_.cache;
        if (c.expect_nprocs == 0) c.expect_nprocs = opt_.solver.nprocs;
        return c;
      }()),
      backoff_rng_(opt_.backoff_seed) {
  PASTIX_CHECK(opt_.workers >= 1, "service needs at least one worker");
  PASTIX_CHECK(opt_.max_attempts >= 1, "max_attempts must be positive");
  PASTIX_CHECK(opt_.queue_capacity >= 1, "queue_capacity must be positive");
  // The cache path verifies fresh plans explicitly (so failures become
  // quarantines, not exceptions) and plan_io verifies disk loads; a second
  // verification per job execution would only burn latency.
  exec_opt_.verify_plan = false;
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int w = 0; w < opt_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

SolverService::~SolverService() { stop(); }

SubmitResult SolverService::submit(JobRequest req) {
  SubmitResult out;
  auto job = std::make_shared<Job>();
  job->req = std::move(req);
  job->fp = fingerprint_pattern(job->req.a.pattern);
  job->submitted = Clock::now();

  std::vector<std::shared_ptr<Job>> displaced;
  {
    const std::lock_guard lock(mu_);
    // Sequence before the displacement comparison below: a zero seq would
    // wrongly win QueueCmp's FIFO tie-break against every queued job.
    job->seq = next_seq_++;
    TenantCounters& tc = tenants_[job->req.tenant];
    tc.submitted++;
    const auto reject = [&](JobError why) {
      tc.rejected++;
      out.admitted = false;
      out.reject = why;
    };
    if (stopped_) {
      reject(JobError::kShutdown);
      return out;
    }
    if (inflight_[job->req.tenant] >= opt_.tenant_max_inflight) {
      reject(JobError::kTenantLimit);
      return out;
    }
    if (queue_.size() >= opt_.queue_capacity) {
      // Load-shedding, cheapest victims first: queued jobs whose deadline
      // already passed can never succeed — drop them all.
      const Clock::time_point now = Clock::now();
      for (auto it = queue_.begin(); it != queue_.end();) {
        if ((*it)->req.deadline <= now) {
          displaced.push_back(*it);
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      if (queue_.size() >= opt_.queue_capacity) {
        // Still full of live work: displace the strictly worst queued job
        // only if the incoming one outranks it; otherwise reject the
        // newcomer — admitted work is never displaced by its equal.
        const auto worst = std::prev(queue_.end());
        if (QueueCmp{}(job, *worst)) {
          (*worst)->displaced = true;
          displaced.push_back(*worst);
          queue_.erase(worst);
        } else {
          reject(JobError::kQueueFull);
        }
      }
    }
    if (!out.admitted && out.reject != JobError::kNone) {
      // fallthrough: rejected above, but displaced expired jobs still need
      // their terminal state outside the lock.
    } else {
      tc.admitted++;
      inflight_[job->req.tenant]++;
      queue_.insert(job);
      out.admitted = true;
      out.ticket = JobTicket(job);
    }
  }
  cv_.notify_all();
  for (auto& d : displaced)
    finish(d, JobOutcome::kShed,
           d->displaced ? JobError::kQueueOverflow
                        : JobError::kDeadlineExpired,
           d->displaced
               ? "displaced from a full queue by higher-priority work"
               : "deadline expired while queued");
  return out;
}

void SolverService::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return stopped_ || !queue_.empty(); });
      if (stopped_) return;
      job = *queue_.begin();
      queue_.erase(queue_.begin());
      running_++;
    }
    job->res.queue_seconds =
        std::chrono::duration<double>(Clock::now() - job->submitted).count();
    if (job->req.deadline <= Clock::now()) {
      finish(job, JobOutcome::kShed, JobError::kDeadlineExpired,
             "deadline expired before execution started");
    } else {
      run_job(job);
    }
    {
      const std::lock_guard lock(mu_);
      running_--;
    }
    cv_.notify_all();
  }
}

void SolverService::run_job(const std::shared_ptr<Job>& job) {
  // Circuit breaker: an open breaker fails the job fast, with the named
  // quarantine reason and zero factorization attempts.
  if (const auto q = cache_.quarantine_reason(job->fp)) {
    {
      const std::lock_guard lock(mu_);
      tenants_[job->req.tenant].quarantine_hits++;
    }
    finish(job, JobOutcome::kFailed, JobError::kQuarantined,
           "fingerprint " + fingerprint_key(job->fp) + " is quarantined: " +
               *q);
    return;
  }
  const PlanPtr plan = acquire_plan(job);
  if (!plan) return;  // already finished (analysis / verification failure)

  const std::size_t bound = memory_bound_for(job->fp, plan);
  if (opt_.memory_budget_bytes > 0 && bound > opt_.memory_budget_bytes) {
    finish(job, JobOutcome::kFailed, JobError::kOverBudget,
           "static memory bound (" + std::to_string(bound) +
               " bytes) exceeds the service budget (" +
               std::to_string(opt_.memory_budget_bytes) + " bytes)");
    return;
  }
  if (!reserve_memory(job, bound)) return;  // shed while waiting
  try {
    execute(job, plan);
  } catch (...) {
    release_memory(bound);
    throw;  // defensive: execute() finishes the job itself
  }
  release_memory(bound);
}

PlanPtr SolverService::acquire_plan(const std::shared_ptr<Job>& job) {
  // Singleflight: concurrent misses on one fingerprint analyze once — the
  // keyed latch serializes same-fingerprint acquisition only.
  const Singleflight::Guard flight(analyze_flight_,
                                   FingerprintHash{}(job->fp));

  bool hit = true;
  PlanPtr plan = cache_.lookup(job->fp);
  if (!plan) {
    hit = false;
    try {
      plan = pastix::analyze(job->req.a.pattern, exec_opt_);
    } catch (const std::exception& e) {
      cache_.quarantine(job->fp,
                        std::string("analysis failed: ") + e.what());
      finish(job, JobOutcome::kFailed, JobError::kAnalysisFailed, e.what());
      return nullptr;
    }
    // Only verified plans enter the cache; an unsound analysis product is
    // a poison pattern, not a retryable hiccup.
    const verify::Report rep = verify::check_plan(*plan);
    if (!rep.ok()) {
      cache_.quarantine(job->fp, "static verification failed: " +
                                     rep.summary());
      finish(job, JobOutcome::kFailed, JobError::kAnalysisFailed,
             "plan failed static verification: " + rep.summary());
      return nullptr;
    }
    cache_.insert(plan);
  }
  {
    const std::lock_guard lock(mu_);
    TenantCounters& tc = tenants_[job->req.tenant];
    (hit ? tc.cache_hits : tc.cache_misses)++;
  }
  job->res.cache_hit = hit;
  return plan;
}

std::size_t SolverService::memory_bound_for(const PatternFingerprint& fp,
                                            const PlanPtr& plan) {
  {
    const std::lock_guard lock(mu_);
    const auto it = bound_memo_.find(fp);
    if (it != bound_memo_.end()) return it->second;
  }
  const verify::MemoryBound mb = verify::static_memory_bound(*plan);
  const auto bound =
      static_cast<std::size_t>(mb.total_bytes(sizeof(double)));
  const std::lock_guard lock(mu_);
  bound_memo_[fp] = bound;
  return bound;
}

bool SolverService::reserve_memory(const std::shared_ptr<Job>& job,
                                   std::size_t bound) {
  if (opt_.memory_budget_bytes == 0 || bound == 0) return true;
  std::unique_lock lock(mem_mu_);
  for (;;) {
    if (mem_reserved_ + bound <= opt_.memory_budget_bytes) {
      mem_reserved_ += bound;
      mem_peak_ = std::max(mem_peak_, mem_reserved_);
      return true;
    }
    {
      const std::lock_guard slock(mu_);
      if (stopped_) {
        lock.unlock();
        finish(job, JobOutcome::kShed, JobError::kShutdown,
               "service stopped while waiting for memory");
        return false;
      }
    }
    const Clock::time_point now = Clock::now();
    if (job->req.deadline <= now) {
      lock.unlock();
      finish(job, JobOutcome::kShed, JobError::kDeadlineExpired,
             "deadline expired while waiting for " + std::to_string(bound) +
                 " bytes of budget");
      return false;
    }
    // Bounded wait so stop() and deadline expiry are both noticed even
    // without a release notification.
    const auto wake = std::min(job->req.deadline,
                               now + std::chrono::milliseconds(50));
    mem_cv_.wait_until(lock, wake);
  }
}

void SolverService::release_memory(std::size_t bound) {
  if (opt_.memory_budget_bytes == 0 || bound == 0) return;
  {
    const std::lock_guard lock(mem_mu_);
    PASTIX_ASSERT(mem_reserved_ >= bound);
    mem_reserved_ -= bound;
  }
  mem_cv_.notify_all();
}

void SolverService::backoff_sleep(int attempt, Clock::time_point deadline) {
  // Seeded exponential backoff with jitter: base * 2^(attempt-1), capped,
  // scaled into [0.5, 1.0) so colliding retries decorrelate.
  double ms = static_cast<double>(opt_.backoff_base.count()) *
              std::ldexp(1.0, attempt - 1);
  ms = std::min(ms, static_cast<double>(opt_.backoff_cap.count()));
  std::uint64_t draw;
  {
    const std::lock_guard lock(mu_);
    draw = splitmix64(backoff_rng_);
  }
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
  const auto delay = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms * (0.5 + 0.5 * u)));
  const auto until = std::min(deadline, Clock::now() + delay);
  std::unique_lock lock(mu_);
  cv_.wait_until(lock, until, [&] { return stopped_; });
}

bool SolverService::strike(const PatternFingerprint& fp,
                           const std::string& cause) {
  const int strikes = breaker_.strike(fp);
  if (strikes < opt_.poison_strike_limit) return false;
  cache_.quarantine(fp, "circuit breaker open after " +
                            std::to_string(strikes) +
                            " crashes; last cause: " + cause);
  return true;
}

void SolverService::execute(const std::shared_ptr<Job>& job,
                            const PlanPtr& plan) {
  Solver<double> sv(exec_opt_);
  try {
    sv.analyze(job->req.a, plan);
  } catch (const std::exception& e) {
    // Pattern/plan mismatch or invalid matrix values — deterministic.
    finish(job, JobOutcome::kFailed, JobError::kAnalysisFailed, e.what());
    return;
  }
  if (opt_.resilience.enabled) sv.set_resilience(opt_.resilience);
  if (opt_.recv_deadline.count() > 0)
    sv.comm().set_recv_deadline(opt_.recv_deadline);

  // Consecutive transient crashes *within this job's attempt loop*.  The
  // breaker must not conflate isolated first-attempt crashes of concurrent
  // jobs on the same fingerprint: a crash whose retry then succeeds proves
  // the pattern is not poison, so only an unbroken streak of crashes in one
  // job opens the breaker.  (Deterministic fatal failures still accumulate
  // across jobs through strike() — they never race with a success.)
  int crash_streak = 0;
  // Detected data corruption gets its own streak: a host flipping bits on
  // every attempt is as poisonous as one that crashes on every attempt, but
  // the operator needs to see "corruption" in the breaker reason — the
  // remediation (pull the host / check ECC) differs from a crash loop.
  int integrity_streak = 0;
  for (int attempt = 1;; ++attempt) {
    if (job->req.deadline <= Clock::now()) {
      finish(job, JobOutcome::kShed, JobError::kDeadlineExpired,
             "deadline expired after " + std::to_string(attempt - 1) +
                 " attempt(s)");
      return;
    }
    job->res.attempts = attempt;
    if (opt_.before_attempt)
      opt_.before_attempt(sv, AttemptContext{job->req.tenant, job->fp,
                                             attempt});
    try {
      if (attempt == 1)
        sv.factorize();
      else
        sv.refactorize(job->req.a);  // values-only refill + factorize

      const FactorStatus& fs = sv.stats().factor_status;
      if (fs.clean()) {
        job->res.x = sv.solve(job->req.b);
      } else {
        // Numeric escalation: a perturbed factor preconditions the true
        // matrix; drive refinement to the target before giving up.
        const AdaptiveSolveResult<double> r =
            sv.solve_adaptive(job->req.b, opt_.adaptive_target);
        job->res.backward_error = r.backward_error;
        if (!r.converged) {
          finish(job, JobOutcome::kFailed, JobError::kNumericFailure,
                 "pivot perturbation exhausted (" +
                     std::to_string(fs.perturbations) +
                     " perturbations); adaptive refinement stalled at "
                     "backward error " +
                     std::to_string(r.backward_error));
          return;
        }
        job->res.degraded = true;
        job->res.x = r.x;
      }
      breaker_.reset(job->fp);  // success closes the breaker window
      if (job->res.degraded) {
        const std::lock_guard lock(mu_);
        tenants_[job->req.tenant].degraded++;
      }
      finish(job, JobOutcome::kDone, JobError::kNone, {});
      return;
    } catch (const std::exception& e) {
      const rt::FailureClass cls = rt::classify_failure(e);
      if (cls == rt::FailureClass::kTransient) {
        if (rt::is_integrity(e)) {
          crash_streak = 0;
          {
            const std::lock_guard lock(mu_);
            tenants_[job->req.tenant].integrity_faults++;
          }
          if (++integrity_streak >= opt_.poison_strike_limit) {
            cache_.quarantine(job->fp,
                              "circuit breaker open after " +
                                  std::to_string(integrity_streak) +
                                  " consecutive data-corruption detections; "
                                  "last cause: " +
                                  e.what());
            const std::lock_guard lock(mu_);
            tenants_[job->req.tenant].quarantine_hits++;
          }
        } else if (!rt::is_crash(e)) {
          crash_streak = 0;
          integrity_streak = 0;
        } else {
          integrity_streak = 0;
          if (++crash_streak >= opt_.poison_strike_limit) {
            cache_.quarantine(job->fp,
                              "circuit breaker open after " +
                                  std::to_string(crash_streak) +
                                  " consecutive crashes; last cause: " +
                                  e.what());
            const std::lock_guard lock(mu_);
            tenants_[job->req.tenant].quarantine_hits++;
            // finish() below re-locks; drop the guard first.
          }
        }
        if (cache_.quarantine_reason(job->fp)) {
          finish(job, JobOutcome::kFailed, JobError::kQuarantined,
                 "circuit breaker opened for " + fingerprint_key(job->fp) +
                     ": " + e.what());
          return;
        }
        if (attempt >= opt_.max_attempts) {
          finish(job, JobOutcome::kFailed, JobError::kRetriesExhausted,
                 "transient failures persisted through " +
                     std::to_string(attempt) + " attempts; last: " +
                     e.what());
          return;
        }
        {
          const std::lock_guard lock(mu_);
          tenants_[job->req.tenant].retried++;
        }
        job->res.retries++;
        backoff_sleep(attempt, job->req.deadline);
        continue;
      }
      // Fatal: deterministic.  A dirty factor status means the values blew
      // up (numeric); anything else is an execution failure that counts
      // toward the fingerprint's breaker.
      const FactorStatus& fs = sv.stats().factor_status;
      if (!fs.clean()) {
        finish(job, JobOutcome::kFailed, JobError::kNumericFailure,
               std::string("factorization failed numerically: ") + e.what());
        return;
      }
      if (strike(job->fp, e.what())) {
        const std::lock_guard lock(mu_);
        tenants_[job->req.tenant].quarantine_hits++;
      }
      finish(job, JobOutcome::kFailed, JobError::kInternal, e.what());
      return;
    }
  }
}

void SolverService::finish(const std::shared_ptr<Job>& job, JobOutcome oc,
                           JobError err, std::string message) {
  const double total =
      std::chrono::duration<double>(Clock::now() - job->submitted).count();
  {
    const std::lock_guard lock(mu_);
    TenantCounters& tc = tenants_[job->req.tenant];
    switch (oc) {
      case JobOutcome::kDone: tc.done++; break;
      case JobOutcome::kFailed: tc.failed++; break;
      case JobOutcome::kShed: tc.shed++; break;
      case JobOutcome::kPending: PASTIX_ASSERT(false); break;
    }
    auto inflight = inflight_.find(job->req.tenant);
    PASTIX_ASSERT(inflight != inflight_.end() && inflight->second > 0);
    inflight->second--;
    latency_[job->req.tenant].push_back(total);
  }
  {
    const std::lock_guard lock(job->m);
    job->res.outcome = oc;
    job->res.error = err;
    job->res.message = std::move(message);
    job->res.total_seconds = total;
    job->ready = true;
  }
  job->cv.notify_all();
  cv_.notify_all();  // drain() watches inflight through these wakeups
}

void SolverService::drain() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void SolverService::stop() {
  std::vector<std::shared_ptr<Job>> orphans;
  {
    const std::lock_guard lock(mu_);
    if (stopped_ && workers_.empty()) return;
    stopped_ = true;
    orphans.assign(queue_.begin(), queue_.end());
    queue_.clear();
  }
  cv_.notify_all();
  mem_cv_.notify_all();
  for (auto& job : orphans)
    finish(job, JobOutcome::kShed, JobError::kShutdown,
           "service stopped before the job ran");
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

ServiceStats SolverService::stats() const {
  ServiceStats out;
  {
    const std::lock_guard lock(mu_);
    for (const auto& [tenant, tc] : tenants_) {
      out.tenants[tenant] = tc;
      out.total.submitted += tc.submitted;
      out.total.admitted += tc.admitted;
      out.total.rejected += tc.rejected;
      out.total.done += tc.done;
      out.total.failed += tc.failed;
      out.total.shed += tc.shed;
      out.total.retried += tc.retried;
      out.total.integrity_faults += tc.integrity_faults;
      out.total.quarantine_hits += tc.quarantine_hits;
      out.total.cache_hits += tc.cache_hits;
      out.total.cache_misses += tc.cache_misses;
      out.total.degraded += tc.degraded;
    }
    for (const auto& [tenant, samples] : latency_) {
      if (samples.empty()) continue;
      std::vector<double> s = samples;
      std::sort(s.begin(), s.end());
      LatencyStats ls;
      ls.count = s.size();
      double sum = 0;
      for (const double v : s) sum += v;
      ls.mean = sum / static_cast<double>(s.size());
      const auto q = [&](double p) {
        const auto i = static_cast<std::size_t>(
            p * static_cast<double>(s.size() - 1) + 0.5);
        return s[std::min(i, s.size() - 1)];
      };
      ls.p50 = q(0.50);
      ls.p95 = q(0.95);
      ls.p99 = q(0.99);
      ls.max = s.back();
      out.latency[tenant] = ls;
    }
    out.queue_depth = queue_.size();
    out.jobs_running = running_;
  }
  {
    const std::lock_guard lock(mem_mu_);
    out.mem_reserved_bytes = mem_reserved_;
    out.mem_reserved_peak_bytes = mem_peak_;
  }
  out.mem_budget_bytes = opt_.memory_budget_bytes;
  out.cache = cache_.stats();
  out.quarantined_fingerprints = cache_.quarantined_count();
  return out;
}

std::string ServiceStats::to_string() const {
  std::ostringstream os;
  os << "## Service\n\n";
  os << "jobs: " << total.submitted << " submitted = " << total.admitted
     << " admitted + " << total.rejected << " rejected; " << total.admitted
     << " admitted = " << total.done << " done + " << total.failed
     << " failed + " << total.shed << " shed\n";
  os << "cache: " << fmt_fixed(100.0 * cache.hit_rate(), 1) << "% hit rate ("
     << cache.hits << " memory, " << cache.disk_hits << " disk, "
     << cache.misses << " misses, " << cache.disk_corrupt
     << " corrupt files quarantined), " << cache.entries << " plans / "
     << cache.bytes_cached << " bytes cached\n";
  os << "quarantine: " << quarantined_fingerprints
     << " fingerprint(s) circuit-broken\n";
  if (mem_budget_bytes > 0)
    os << "memory: " << mem_reserved_peak_bytes << " / " << mem_budget_bytes
       << " bytes peak reserved\n";
  os << "\n";
  TextTable table({"tenant", "submitted", "done", "failed", "shed",
                   "rejected", "retried", "integ", "hit%", "p50 ms",
                   "p99 ms"});
  for (const auto& [tenant, tc] : tenants) {
    const auto lat = latency.find(tenant);
    const std::uint64_t reached = tc.cache_hits + tc.cache_misses;
    table.add_row(
        {tenant, std::to_string(tc.submitted), std::to_string(tc.done),
         std::to_string(tc.failed), std::to_string(tc.shed),
         std::to_string(tc.rejected), std::to_string(tc.retried),
         std::to_string(tc.integrity_faults),
         reached == 0 ? "-"
                      : fmt_fixed(100.0 * static_cast<double>(tc.cache_hits) /
                                      static_cast<double>(reached),
                                  1),
         lat == latency.end() ? "-" : fmt_fixed(lat->second.p50 * 1e3, 2),
         lat == latency.end() ? "-" : fmt_fixed(lat->second.p99 * 1e3, 2)});
  }
  std::ostringstream tbl;
  table.print(tbl);
  os << tbl.str();
  return os.str();
}

} // namespace pastix::service
