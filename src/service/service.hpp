#pragma once
//
// Multi-tenant solver service (DESIGN.md §12) — the production layer that
// keeps the solver alive when traffic, memory and failures arrive at once.
//
// An in-process SolverService accepts a stream of (matrix, rhs, tenant,
// deadline, priority) jobs and runs them over a pool of worker threads,
// each job a full factorize+solve at the service's configured rank count.
// The pipeline per job:
//
//   submit → admission (bounded priority queue, per-tenant inflight caps,
//   expired-deadline shedding) → verified plan cache (memory LRU + plan_io
//   disk tier, keyed by PatternFingerprint) → memory admission (the static
//   bound from verify::static_memory_bound charged against a global
//   budget) → execute (factorize + solve) → retry state machine.
//
// Failure taxonomy (rt/failure.hpp) drives the retry machine:
//   transient (rank kill, abort wakeup, receive timeout, detected data
//     corruption) — seeded exponential backoff with jitter, bounded
//     attempts; IntegrityError keeps a distinct counter (integrity_faults)
//     and its own quarantine reason, so a corrupting host is
//     distinguishable from a crashing one in the stats;
//   numeric (pivot perturbation / non-finite values) — escalate through
//     solve_adaptive; if refinement cannot recover, the *job* fails with a
//     structured reason, never the service;
//   poison — repeated crashes pinned to one fingerprint trip a circuit
//     breaker: the fingerprint is quarantined in the plan cache with a
//     named reason and subsequent jobs on it fail fast.
//
// Overload degrades gracefully and observably: a full queue sheds
// expired-deadline and lowest-priority work first, memory pressure queues
// (and eventually sheds) rather than allocating past the budget, and
// ServiceStats reconciles exactly — per tenant and in total,
// submitted = admitted + rejected and admitted = done + failed + shed.
//
// Every admitted job terminates in exactly one of done / failed / shed,
// reported through its JobTicket; nothing is silently lost, including on
// stop() (queued jobs are shed with a named reason).
//
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pastix.hpp"
#include "core/plan_cache.hpp"
#include "mc/sync.hpp"
#include "rt/failure.hpp"
#include "rt/resilient.hpp"

namespace pastix::service {

/// Service time base: std::chrono::steady_clock in production, the
/// explorer's virtual clock under -DPASTIX_MC=ON (so deadline and backoff
/// waits terminate deterministically during schedule exploration).
using Clock = mc::clock;

/// One unit of work: solve a x = b for a tenant, before a deadline.
struct JobRequest {
  SymSparse<double> a;
  std::vector<double> b;
  std::string tenant = "default";
  int priority = 0;  ///< higher runs first
  Clock::time_point deadline = Clock::time_point::max();
};

/// Terminal states.  Every admitted job reaches exactly one of
/// kDone / kFailed / kShed; kPending is only observable before then.
enum class JobOutcome : unsigned char { kPending, kDone, kFailed, kShed };

/// Why a job did not succeed (kNone for kDone).  Submit-time rejections
/// reuse the same vocabulary in SubmitResult::reject.
enum class JobError : unsigned char {
  kNone = 0,
  // submit-time rejections (the job was never admitted):
  kQueueFull,        ///< bounded queue full of equal-or-better work
  kTenantLimit,      ///< per-tenant inflight cap reached
  // failures (admitted; the job itself went wrong):
  kQuarantined,      ///< fingerprint circuit breaker open — failed fast
  kAnalysisFailed,   ///< analysis threw or static verification failed
  kNumericFailure,   ///< perturbation/NaN and adaptive refinement stalled
  kRetriesExhausted, ///< transient faults persisted past max_attempts
  kOverBudget,       ///< static memory bound exceeds the whole budget
  kInternal,         ///< unclassified execution failure
  // shed (admitted; the service dropped it under load, by policy):
  kDeadlineExpired,  ///< deadline passed while queued / waiting / retrying
  kQueueOverflow,    ///< displaced from the full queue by better work
  kShutdown,         ///< service stopped before the job ran
};

[[nodiscard]] const char* job_error_name(JobError e);

/// What the caller gets back through the ticket.
struct JobResult {
  JobOutcome outcome = JobOutcome::kPending;
  JobError error = JobError::kNone;
  std::string message;          ///< human-readable detail (empty on kDone)
  std::vector<double> x;        ///< solution (kDone only)
  double backward_error =
      std::numeric_limits<double>::quiet_NaN();  ///< set on adaptive path
  bool degraded = false;   ///< solved via perturbation + adaptive refinement
  bool cache_hit = false;  ///< plan served from memory or disk tier
  int attempts = 0;        ///< factorization attempts executed
  int retries = 0;         ///< transient retries among them
  double queue_seconds = 0;  ///< submit → execution start
  double total_seconds = 0;  ///< submit → terminal state
};

namespace detail { struct Job; }

/// Per-fingerprint crash-strike accounting behind the poison circuit
/// breaker: deterministic fatal failures accumulate through strike() until
/// the limit opens the breaker; a success calls reset() and closes the
/// window.  Extracted from SolverService so the strike table has one
/// obvious lock — and so the model-checked battery can drive the protocol
/// (and its unlocked mutation) in isolation.
class PoisonBreaker {
public:
  /// Count one strike against `fp`; returns the new consecutive total.
  [[nodiscard]] int strike(const PatternFingerprint& fp) {
    // Mutation hook (mc battery): bump the table without its lock — the
    // read-modify-write two striking workers interleave is exactly the
    // lost-strike race the vector-clock detector must flag.
    std::unique_lock lock(mu_, std::defer_lock);
    if (!PASTIX_MC_MUTATION(breaker_unlocked_strike)) lock.lock();
    mc::race_write(&strikes_, "breaker strike table");
    return ++strikes_[fp];
  }

  /// A success closes the breaker window for `fp`.
  void reset(const PatternFingerprint& fp) {
    const std::lock_guard lock(mu_);
    mc::race_write(&strikes_, "breaker strike table");
    strikes_.erase(fp);
  }

  /// Current consecutive strike count for `fp` (0 when clean).
  [[nodiscard]] int count(const PatternFingerprint& fp) const {
    const std::lock_guard lock(mu_);
    mc::race_read(&strikes_, "breaker strike table");
    const auto it = strikes_.find(fp);
    return it == strikes_.end() ? 0 : it->second;
  }

private:
  mutable mc::mutex mu_;
  std::unordered_map<PatternFingerprint, int, FingerprintHash> strikes_;
};

/// Handle to one admitted job; wait() blocks until the terminal state.
class JobTicket {
public:
  JobTicket() = default;
  [[nodiscard]] bool valid() const { return job_ != nullptr; }
  [[nodiscard]] bool finished() const;
  /// Block until the job reaches a terminal state and return it.
  const JobResult& wait() const;

private:
  friend class SolverService;
  explicit JobTicket(std::shared_ptr<detail::Job> j) : job_(std::move(j)) {}
  std::shared_ptr<detail::Job> job_;
};

/// Synchronous answer to submit(): either admitted (ticket valid) or
/// rejected with a reason — a rejected job was never queued and has no
/// ticket, so admission counters reconcile exactly.
struct SubmitResult {
  bool admitted = false;
  JobError reject = JobError::kNone;
  JobTicket ticket;
};

/// Per-attempt context handed to the chaos/observability hook.
struct AttemptContext {
  std::string tenant;
  PatternFingerprint fingerprint;
  int attempt = 1;  ///< 1-based
};

struct ServiceOptions {
  /// Options of every per-job Solver (nprocs = ranks per factorization)
  /// and of the analyses run on cache misses.  verify_plan is ignored: the
  /// cache path always verifies freshly analyzed plans explicitly and
  /// quarantines the fingerprint on failure.
  SolverOptions solver;
  int workers = 2;                  ///< concurrent executor threads
  std::size_t queue_capacity = 64;  ///< bounded admission queue
  int tenant_max_inflight = 32;     ///< queued+running cap per tenant
  /// Global execution-memory budget charged with each job's static bound
  /// (verify::static_memory_bound × sizeof(double)); 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
  PlanCacheOptions cache;
  int max_attempts = 3;             ///< factorization attempts per job
  std::chrono::milliseconds backoff_base{5};   ///< first retry delay
  std::chrono::milliseconds backoff_cap{250};  ///< exponential ceiling
  std::uint64_t backoff_seed = 0x5eed;         ///< jitter stream seed
  /// Crashes pinned to one fingerprint before its circuit breaker opens.
  int poison_strike_limit = 3;
  double adaptive_target = 1e-10;   ///< solve_adaptive backward-error goal
  /// Receive deadline armed on every job solver (0 = wait forever); turns
  /// a lost-message hang into a transient, retryable failure.
  std::chrono::milliseconds recv_deadline{0};
  /// Rank-crash recovery armed on every job solver (DESIGN.md §10).
  rt::ResilienceOptions resilience;
  /// Test/chaos hook, called before every factorization attempt with the
  /// job's solver (e.g. to arm rt fault injection per fingerprint).
  std::function<void(Solver<double>&, const AttemptContext&)> before_attempt;
};

/// Per-tenant (and aggregate) counters.  Invariants, checked by the test
/// suite: submitted = admitted + rejected; admitted = done + failed + shed;
/// cache_hits + cache_misses = jobs that reached the cache.
struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t retried = 0;         ///< transient retry transitions
  std::uint64_t integrity_faults = 0; ///< attempts lost to detected corruption
  std::uint64_t quarantine_hits = 0; ///< jobs failed by an open breaker
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t degraded = 0;        ///< done via adaptive refinement
};

struct LatencyStats {
  std::uint64_t count = 0;
  double mean = 0, p50 = 0, p95 = 0, p99 = 0, max = 0;  ///< seconds
};

struct ServiceStats {
  TenantCounters total;
  std::map<std::string, TenantCounters> tenants;
  std::map<std::string, LatencyStats> latency;  ///< terminal admitted jobs
  PlanCacheStats cache;
  std::size_t quarantined_fingerprints = 0;
  std::size_t mem_budget_bytes = 0;
  std::size_t mem_reserved_bytes = 0;       ///< currently charged
  std::size_t mem_reserved_peak_bytes = 0;  ///< high-water mark
  std::size_t queue_depth = 0;
  std::uint64_t jobs_running = 0;

  /// Markdown report section ("## Service"), TextTable-formatted like the
  /// analysis report.
  [[nodiscard]] std::string to_string() const;
};

class SolverService {
public:
  explicit SolverService(ServiceOptions opt);
  ~SolverService();  ///< stop(): queued jobs shed with kShutdown, workers joined

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Admit or reject one job.  Never blocks on execution; a full queue
  /// first sheds expired-deadline entries, then displaces strictly worse
  /// (lower-priority / later-deadline) queued work before rejecting.
  SubmitResult submit(JobRequest req);

  /// Block until every admitted job has reached a terminal state.
  void drain();

  /// Stop accepting work, shed the queue (kShutdown), join the workers.
  /// Idempotent; called by the destructor.
  void stop();

  [[nodiscard]] ServiceStats stats() const;

  /// The plan cache (quarantine inspection, disk-tier paths for tests).
  [[nodiscard]] PlanCache& cache() { return cache_; }
  [[nodiscard]] std::optional<std::string> quarantine_reason(
      const PatternFingerprint& fp) const {
    return cache_.quarantine_reason(fp);
  }
  [[nodiscard]] const ServiceOptions& options() const { return opt_; }

private:
  struct QueueCmp {
    bool operator()(const std::shared_ptr<detail::Job>& a,
                    const std::shared_ptr<detail::Job>& b) const;
  };

  void worker_loop();
  void run_job(const std::shared_ptr<detail::Job>& job);
  /// Acquire (cache / disk / fresh analysis under a per-fingerprint
  /// singleflight latch) the verified plan; null means the job was already
  /// finished with a failure.
  PlanPtr acquire_plan(const std::shared_ptr<detail::Job>& job);
  /// Charge the job's static bound against the budget (waiting bounded by
  /// the deadline); false means the job was finished (shed/failed).
  bool reserve_memory(const std::shared_ptr<detail::Job>& job,
                      std::size_t bound);
  void release_memory(std::size_t bound);
  [[nodiscard]] std::size_t memory_bound_for(const PatternFingerprint& fp,
                                             const PlanPtr& plan);
  void execute(const std::shared_ptr<detail::Job>& job, const PlanPtr& plan);
  /// Record the terminal state + counters and wake the ticket.
  void finish(const std::shared_ptr<detail::Job>& job, JobOutcome oc,
              JobError err, std::string message);
  void backoff_sleep(int attempt, Clock::time_point deadline);
  /// Count one crash strike against a fingerprint; true when the circuit
  /// breaker just opened (the fingerprint got quarantined).
  bool strike(const PatternFingerprint& fp, const std::string& cause);

  ServiceOptions opt_;
  SolverOptions exec_opt_;  ///< per-job solver options (verify_plan off)
  PlanCache cache_;

  mutable mc::mutex mu_;
  mc::condition_variable cv_;         ///< queue / drain / stop wakeups
  std::multiset<std::shared_ptr<detail::Job>, QueueCmp> queue_;
  std::unordered_map<std::string, int> inflight_;  ///< per tenant
  std::unordered_map<std::string, TenantCounters> tenants_;
  std::unordered_map<std::string, std::vector<double>> latency_;
  PoisonBreaker breaker_;
  Singleflight analyze_flight_;  ///< one analysis per missed fingerprint
  std::unordered_map<PatternFingerprint, std::size_t, FingerprintHash>
      bound_memo_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t running_ = 0;
  std::uint64_t backoff_rng_;
  bool stopped_ = false;

  mutable mc::mutex mem_mu_;
  mc::condition_variable mem_cv_;
  std::size_t mem_reserved_ = 0;
  std::size_t mem_peak_ = 0;

  std::vector<mc::thread> workers_;
};

} // namespace pastix::service
