#include "mf/model.hpp"

#include <algorithm>
#include <cmath>

namespace pastix {

double front_cost(const SymbolMatrix& s, idx_t k, const CostModel& m) {
  const double w = s.cblks[static_cast<std::size_t>(k)].width();
  const double h = s.cblk_below_rows(k);
  double cost = m.factor_llt_time(w);
  if (h > 0) {
    cost += m.trsm_time(h, w);
    // Schur complement: lower triangle of an h x h rank-w update — half a
    // full GEMM.
    cost += 0.5 * m.gemm_time(h, h, w);
    // Extend-add assembly of the children updates into the front: one add
    // per update entry; bounded above by the front's own lower triangle.
    cost += m.aggregate_time((w + h) * (w + h + 1) / 2);
  }
  return cost;
}

double front_flops(const SymbolMatrix& s, idx_t k) {
  const double w = s.cblks[static_cast<std::size_t>(k)].width();
  const double h = s.cblk_below_rows(k);
  double flops = flops_factor_llt(w);
  if (h > 0) flops += flops_trsm(h, w) + 0.5 * flops_gemm(h, h, w);
  return flops;
}

TaskGraph build_mf_task_graph(const SymbolMatrix& s, const CandidateMapping& cm,
                              const CostModel& m, const MfModelOptions& opt) {
  TaskGraph tg;
  tg.cblk_task.assign(static_cast<std::size_t>(s.ncblk), kNone);
  tg.blok_task.assign(static_cast<std::size_t>(s.nblok()), kNone);

  for (idx_t k = 0; k < s.ncblk; ++k) {
    const auto& cand = cm.cblk[static_cast<std::size_t>(k)];
    const double seq = front_cost(s, k, m);
    const double nc = cand.ncand();
    double cost = seq;
    if (nc > 1) {
      const double speedup = std::min(nc, opt.max_front_speedup);
      const double w = s.cblks[static_cast<std::size_t>(k)].width();
      const double steps = std::ceil(w / static_cast<double>(opt.step_block));
      cost = seq / speedup +
             steps * opt.sync_latencies_per_step * m.net.latency *
                 std::log2(nc + 1);
    }
    tg.cblk_task[static_cast<std::size_t>(k)] = tg.ntask();
    for (idx_t b = s.cblks[static_cast<std::size_t>(k)].bloknum;
         b < s.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b)
      tg.blok_task[static_cast<std::size_t>(b)] = tg.ntask();
    tg.tasks.push_back(
        {TaskType::kComp1d, k, kNone, kNone, cost, front_flops(s, k)});
  }

  tg.inputs.assign(static_cast<std::size_t>(tg.ntask()), {});
  tg.prec.assign(static_cast<std::size_t>(tg.ntask()), {});
  tg.depth.assign(static_cast<std::size_t>(tg.ntask()), 0);
  for (idx_t k = 0; k < s.ncblk; ++k) {
    tg.depth[static_cast<std::size_t>(k)] =
        cm.cblk[static_cast<std::size_t>(k)].depth;
    const idx_t parent = s.cblk_parent(k);
    if (parent != kNone) {
      const double h = s.cblk_below_rows(k);
      tg.inputs[static_cast<std::size_t>(parent)].push_back(
          {k, h * (h + 1) / 2});  // the update matrix travels to the parent
    }
  }
  return tg;
}

} // namespace pastix
