#pragma once
//
// Parallel performance model of the multifrontal baseline (PSPASES-like).
//
// One task per front.  Subtrees are mapped by the same proportional mapping
// as PaStiX (subtree-to-processor); a front whose candidate set has more
// than one processor is modeled as a *distributed dense factorization*
// (PSPASES distributes the top fronts): its time is the sequential front
// cost divided by the candidate count, plus a per-elimination-step
// synchronization term.  A child's update matrix travels to the parent's
// processor when they differ (multifrontal send-to-parent communication).
//
// The resulting TaskGraph plugs into the same static scheduler and
// discrete-event simulator as the fan-in solver, so Table 2 compares the
// two algorithms under one machine model.
//
#include "map/candidates.hpp"
#include "map/task_graph.hpp"

namespace pastix {

struct MfModelOptions {
  /// Cap on the parallel speedup of one distributed front (communication
  /// and pivot broadcasts bound it well below the candidate count).
  double max_front_speedup = 16.0;
  /// Synchronization cost per block-column elimination step of a
  /// distributed front, in network latencies.
  double sync_latencies_per_step = 1.0;
  /// Block size used for the per-step synchronization count.
  idx_t step_block = 64;
};

/// Sequential cost of front k: assembly + partial dense LL^t.
double front_cost(const SymbolMatrix& s, idx_t k, const CostModel& m);

/// Exact flop count of the same (factorization flops only).
double front_flops(const SymbolMatrix& s, idx_t k);

/// Build the one-task-per-front graph with parallel-front cost model.
TaskGraph build_mf_task_graph(const SymbolMatrix& s, const CandidateMapping& cm,
                              const CostModel& m,
                              const MfModelOptions& opt = {});

} // namespace pastix
