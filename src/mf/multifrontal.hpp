#pragma once
//
// Multifrontal Cholesky (LL^t) baseline — the PSPASES stand-in of Table 2.
//
// Numeric engine (this header): classic sequential supernodal multifrontal
// factorization over the same block symbolic structure as the fan-in
// solver: per supernode, assemble the frontal matrix from the original
// entries and the children's update matrices (extend-add), factor the
// leading columns (dense LL^t + panel solve), form the Schur complement
// update matrix, and pass it to the parent.  Forward/backward solves reuse
// the stored trapezoids.
//
// The *parallel* behaviour of the baseline (subtree-to-processor
// proportional mapping with distributed top fronts, PSPASES-style) is
// modeled in mf/model.hpp and evaluated by the discrete-event simulator.
//
#include <unordered_map>

#include "dkernel/dense_matrix.hpp"
#include "dkernel/blocked_factor.hpp"
#include "sparse/sym_sparse.hpp"
#include "symbolic/symbol.hpp"

namespace pastix {

template <class T>
class MultifrontalSolver {
public:
  /// `a` must be permuted consistently with `s`.
  MultifrontalSolver(const SymSparse<T>& a, const SymbolMatrix& s)
      : a_(a), s_(s) {
    PASTIX_CHECK(a.n() == s.n, "matrix / symbol size mismatch");
    build_row_lists();
  }

  /// Sequential multifrontal numerical factorization (LL^t).
  void factorize() {
    const idx_t n = s_.n;
    std::vector<idx_t> pos(static_cast<std::size_t>(n), kNone);  // row -> front
    std::unordered_map<idx_t, DenseMatrix<T>> updates;           // cblk -> U
    factor_.assign(static_cast<std::size_t>(s_.ncblk), {});

    for (idx_t k = 0; k < s_.ncblk; ++k) {
      const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
      const idx_t w = ck.width();
      const auto& rows = rows_[static_cast<std::size_t>(k)];  // below rows
      const idx_t h = static_cast<idx_t>(rows.size());
      const idx_t nf = w + h;

      // Front row map: cols first, then below rows.
      for (idx_t i = 0; i < w; ++i)
        pos[static_cast<std::size_t>(ck.fcolnum + i)] = i;
      for (idx_t i = 0; i < h; ++i)
        pos[static_cast<std::size_t>(rows[static_cast<std::size_t>(i)])] = w + i;

      DenseMatrix<T> front(nf, nf);
      // Assemble original entries (lower triangle of columns of k).
      for (idx_t j = ck.fcolnum; j <= ck.lcolnum; ++j) {
        front(pos[static_cast<std::size_t>(j)], pos[static_cast<std::size_t>(j)]) +=
            a_.diag[static_cast<std::size_t>(j)];
        for (idx_t q = a_.pattern.colptr[j]; q < a_.pattern.colptr[j + 1]; ++q)
          front(pos[static_cast<std::size_t>(a_.pattern.rowind[q])],
                pos[static_cast<std::size_t>(j)]) += a_.val[q];
      }
      // Extend-add the children's update matrices.
      for (const idx_t c : children_[static_cast<std::size_t>(k)]) {
        auto it = updates.find(c);
        PASTIX_ASSERT(it != updates.end());
        const DenseMatrix<T>& u = it->second;
        const auto& crows = rows_[static_cast<std::size_t>(c)];
        for (idx_t cj = 0; cj < u.cols(); ++cj) {
          const idx_t gj = crows[static_cast<std::size_t>(cj)];
          const idx_t fj = pos[static_cast<std::size_t>(gj)];
          PASTIX_ASSERT(fj != kNone);
          for (idx_t ci = cj; ci < u.rows(); ++ci) {
            const idx_t fi =
                pos[static_cast<std::size_t>(crows[static_cast<std::size_t>(ci)])];
            front(fi, fj) += u(ci, cj);
          }
        }
        updates.erase(it);
      }

      // Partial dense factorization of the leading w columns.
      dense_llt_auto(w, front.data(), front.ld());
      if (h > 0) {
        trsm_right_lt(h, w, front.data(), front.ld(), front.data() + w,
                      front.ld());
        // Schur complement: U -= L_below L_below^t (lower triangle).
        syrk_lower_nt(h, w, T(-1), front.data() + w, front.ld(),
                      front.data() + w + static_cast<std::size_t>(w) * front.ld(),
                      front.ld());
      }

      // Store the factored trapezoid (nf rows x w cols).
      auto& trap = factor_[static_cast<std::size_t>(k)];
      trap.resize(static_cast<std::size_t>(nf) * w);
      for (idx_t j = 0; j < w; ++j)
        std::copy(front.col(j), front.col(j) + nf,
                  trap.data() + static_cast<std::size_t>(j) * nf);

      // Keep the update matrix for the parent.
      if (h > 0) {
        DenseMatrix<T> u(h, h);
        for (idx_t j = 0; j < h; ++j)
          for (idx_t i = j; i < h; ++i)
            u(i, j) = front(w + i, w + j);
        updates.emplace(k, std::move(u));
      }

      for (idx_t i = 0; i < w; ++i)
        pos[static_cast<std::size_t>(ck.fcolnum + i)] = kNone;
      for (idx_t i = 0; i < h; ++i)
        pos[static_cast<std::size_t>(rows[static_cast<std::size_t>(i)])] = kNone;
    }
    PASTIX_CHECK(updates.empty(), "unconsumed update matrices");
    factored_ = true;
  }

  /// Sequential triangular solves: x with A x = b (permuted frame).
  [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const {
    PASTIX_CHECK(factored_, "factorize() must run before solve()");
    PASTIX_CHECK(static_cast<idx_t>(b.size()) == s_.n, "rhs size mismatch");
    std::vector<T> x(b);
    std::vector<T> tmp;
    // Forward: L y = b.
    for (idx_t k = 0; k < s_.ncblk; ++k) {
      const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
      const idx_t w = ck.width();
      const auto& rows = rows_[static_cast<std::size_t>(k)];
      const idx_t h = static_cast<idx_t>(rows.size());
      const T* trap = factor_[static_cast<std::size_t>(k)].data();
      const idx_t ld = w + h;
      trsv_lower(w, trap, ld, x.data() + ck.fcolnum);
      if (h > 0) {
        tmp.assign(static_cast<std::size_t>(h), T{});
        gemv_n(h, w, T(1), trap + w, ld, x.data() + ck.fcolnum, tmp.data());
        for (idx_t i = 0; i < h; ++i)
          x[static_cast<std::size_t>(rows[static_cast<std::size_t>(i)])] -=
              tmp[static_cast<std::size_t>(i)];
      }
    }
    // Backward: L^t x = y.
    for (idx_t k = s_.ncblk - 1; k >= 0; --k) {
      const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
      const idx_t w = ck.width();
      const auto& rows = rows_[static_cast<std::size_t>(k)];
      const idx_t h = static_cast<idx_t>(rows.size());
      const T* trap = factor_[static_cast<std::size_t>(k)].data();
      const idx_t ld = w + h;
      if (h > 0) {
        tmp.assign(static_cast<std::size_t>(h), T{});
        for (idx_t i = 0; i < h; ++i)
          tmp[static_cast<std::size_t>(i)] =
              x[static_cast<std::size_t>(rows[static_cast<std::size_t>(i)])];
        std::vector<T> contr(static_cast<std::size_t>(w), T{});
        gemv_t(h, w, T(1), trap + w, ld, tmp.data(), contr.data());
        for (idx_t i = 0; i < w; ++i)
          x[static_cast<std::size_t>(ck.fcolnum + i)] -=
              contr[static_cast<std::size_t>(i)];
      }
      trsv_lower_t(w, trap, ld, x.data() + ck.fcolnum);
    }
    return x;
  }

  /// Factor access for verification: L(i, j) (non-unit diagonal).
  [[nodiscard]] T factor_entry(idx_t i, idx_t j) const {
    PASTIX_CHECK(factored_, "no factor yet");
    const idx_t k = s_.col2cblk[static_cast<std::size_t>(j)];
    const auto& ck = s_.cblks[static_cast<std::size_t>(k)];
    const idx_t w = ck.width();
    const auto& rows = rows_[static_cast<std::size_t>(k)];
    const idx_t ld = w + static_cast<idx_t>(rows.size());
    const T* trap = factor_[static_cast<std::size_t>(k)].data();
    const idx_t col = j - ck.fcolnum;
    if (i >= ck.fcolnum && i <= ck.lcolnum)
      return trap[(i - ck.fcolnum) + static_cast<std::size_t>(col) * ld];
    const auto it = std::lower_bound(rows.begin(), rows.end(), i);
    if (it == rows.end() || *it != i) return T{};  // structural zero
    return trap[w + (it - rows.begin()) + static_cast<std::size_t>(col) * ld];
  }

private:
  void build_row_lists() {
    rows_.assign(static_cast<std::size_t>(s_.ncblk), {});
    children_.assign(static_cast<std::size_t>(s_.ncblk), {});
    for (idx_t k = 0; k < s_.ncblk; ++k) {
      auto& rows = rows_[static_cast<std::size_t>(k)];
      for (idx_t b = s_.cblks[static_cast<std::size_t>(k)].bloknum + 1;
           b < s_.cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b)
        for (idx_t r = s_.bloks[static_cast<std::size_t>(b)].frownum;
             r <= s_.bloks[static_cast<std::size_t>(b)].lrownum; ++r)
          rows.push_back(r);
      const idx_t parent = s_.cblk_parent(k);
      if (parent != kNone)
        children_[static_cast<std::size_t>(parent)].push_back(k);
    }
  }

  const SymSparse<T>& a_;
  const SymbolMatrix& s_;
  std::vector<std::vector<idx_t>> rows_;      ///< per cblk: below-diag rows
  std::vector<std::vector<idx_t>> children_;  ///< block etree children
  std::vector<std::vector<T>> factor_;        ///< per cblk: (w+h) x w trapezoid
  bool factored_ = false;
};

} // namespace pastix
