#pragma once
//
// Calibrated time model of the dense kernels and of the network — the
// paper's "BLAS and communication network time model, which is
// automatically calibrated on the target architecture" (Section 2) and the
// "multi-variable polynomial regression ... used to build an analytical
// model of these routines" (Section 3).
//
// The static scheduler and the discrete-event performance simulator are
// entirely driven by this model.
//
#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace pastix {

/// Fitted polynomial models, one per kernel shape.
/// Features: gemm(m,n,k) -> {1, m, n, k, mn, mk, nk, mnk}
///           trsm(m,n)   -> {1, m, n, mn, n^2, m n^2}
///           factor(n)   -> {1, n, n^2, n^3}
struct KernelModel {
  std::array<double, 8> gemm{};
  std::array<double, 6> trsm{};
  std::array<double, 4> factor_ldlt{};
  std::array<double, 4> factor_llt{};
  double axpy_per_entry = 0;  ///< local aggregation (fan-in AUB add) cost
  double gemv_per_entry = 0;  ///< matrix-vector cost (triangular solves)
};

/// Linear latency/bandwidth network model: t = latency + bytes * per_byte.
/// Defaults approximate the paper's IBM SP2 interconnect (~40 us latency,
/// ~100 MB/s sustained bandwidth).
///
/// SMP extension (the paper's stated future work: "a modified version of
/// our strategy to take into account architectures based on SMP nodes"):
/// with procs_per_node > 1, ranks p and q with p/ppn == q/ppn communicate
/// through shared memory at (intra_latency, intra_per_byte) instead.  The
/// greedy scheduler sees the cheaper links in its completion estimates and
/// naturally co-locates communicating subtrees on a node.
struct NetworkModel {
  double latency = 40e-6;
  double per_byte = 1.0 / 100e6;
  double scalar_bytes = 8;  ///< bytes per factor entry (double)
  idx_t procs_per_node = 1; ///< 1 = flat machine (the paper's SP2 thin nodes)
  double intra_latency = 4e-6;
  double intra_per_byte = 1.0 / 800e6;

  [[nodiscard]] bool same_node(idx_t p, idx_t q) const {
    return procs_per_node > 1 && p / procs_per_node == q / procs_per_node;
  }
};

/// Kernel families the runtime tracer samples (one code per fitted model).
enum class KernelOp : unsigned char {
  kGemm,        ///< gemm_nt(m, n, k)
  kTrsm,        ///< trsm_right_lt[_unit](m, n)
  kFactorLdlt,  ///< dense_ldlt_auto(n)
  kFactorLlt,   ///< dense_llt_auto(n)
  kAxpy,        ///< AUB aggregation, m = entries
};

/// One measured kernel execution: operand shape + wall seconds.  Unused
/// dimensions are zero (trsm: k; factor: n, k; axpy: n, k).
struct KernelSample {
  KernelOp op = KernelOp::kGemm;
  double m = 0, n = 0, k = 0;
  double seconds = 0;
};

/// The measured-span corpus a RuntimeTrace collects for recalibration.
struct KernelSampleSet {
  std::vector<KernelSample> samples;

  void add(KernelOp op, double m, double n, double k, double seconds) {
    samples.push_back({op, m, n, k, seconds});
  }
  [[nodiscard]] bool empty() const { return samples.empty(); }
};

/// Complete machine model used by mapping, scheduling and simulation.
struct CostModel {
  KernelModel kernel;
  NetworkModel net;

  [[nodiscard]] double gemm_time(double m, double n, double k) const;
  [[nodiscard]] double trsm_time(double m, double n) const;
  [[nodiscard]] double factor_ldlt_time(double n) const;
  [[nodiscard]] double factor_llt_time(double n) const;
  [[nodiscard]] double aggregate_time(double entries) const;
  /// Dense matrix-vector product time (solve-phase updates).
  [[nodiscard]] double gemv_time(double m, double n) const;
  /// Dense triangular solve time (solve-phase diagonal blocks).
  [[nodiscard]] double trsv_time(double n) const;
  /// Inter-node message time (flat-machine cost).
  [[nodiscard]] double comm_time(double entries) const {
    return net.latency + entries * net.scalar_bytes * net.per_byte;
  }
  /// Rank-aware message time: shared-memory cost inside an SMP node.
  [[nodiscard]] double comm_time_between(idx_t p, idx_t q,
                                         double entries) const {
    if (net.same_node(p, q))
      return net.intra_latency + entries * net.scalar_bytes * net.intra_per_byte;
    return comm_time(entries);
  }

  /// Predicted seconds for one measured sample's shape.
  [[nodiscard]] double predict(const KernelSample& s) const;

  /// Refit the per-kernel coefficients against spans the runtime tracer
  /// actually measured (the recalibration loop of DESIGN.md §9).  Per
  /// kernel family the best of {current fit, uniformly rescaled fit, full
  /// ridge refit (when samples suffice)} on the sample corpus is kept, so
  /// the result never reproduces the measurements worse than `*this`.
  /// Families without samples keep their coefficients; the network model
  /// is untouched.
  [[nodiscard]] CostModel recalibrated(const KernelSampleSet& samples) const;
};

/// Mean relative error of `m`'s predictions over a measured sample corpus
/// (the fidelity number tests and benches report for recalibration).
double kernel_sample_mean_rel_error(const CostModel& m,
                                    const KernelSampleSet& samples);

/// Exact floating-point operation counts (used for Gflop/s reporting).
double flops_gemm(double m, double n, double k);
double flops_trsm(double m, double n);
double flops_factor_ldlt(double n);
double flops_factor_llt(double n);

struct CalibrationOptions {
  int repetitions = 3;     ///< timing repeats per sample (minimum taken)
  bool verbose = false;    ///< print per-sample measurements
};

/// Measure the real kernels on this machine and fit the polynomial models
/// by (ridge-regularized) least squares.  Takes a few seconds.
CostModel calibrate_cost_model(const CalibrationOptions& opt = {});

/// Coefficients calibrated once on the reference development machine; used
/// by default so analyses are reproducible without a calibration run.
CostModel default_cost_model();

/// Text (de)serialization so a calibration can be reused across runs.
void save_cost_model(std::ostream& os, const CostModel& m);
CostModel load_cost_model(std::istream& is);

/// Quality of a fitted model against fresh measurements (used by tests and
/// the kernel benchmark): mean relative error over a probe grid.
double model_relative_error(const CostModel& m);

} // namespace pastix
