#include "model/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "dkernel/dense_matrix.hpp"
#include "dkernel/blocked_factor.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace pastix {

namespace {

template <std::size_t N>
double eval_poly(const std::array<double, N>& w, const std::array<double, N>& f) {
  double t = 0;
  for (std::size_t i = 0; i < N; ++i) t += w[i] * f[i];
  // A fitted polynomial can dip below zero at the small end of the grid; a
  // model must never predict non-positive time (the scheduler divides by and
  // accumulates these), so clamp to a floor of 50 ns.
  return std::max(t, 5e-8);
}

std::array<double, 8> gemm_features(double m, double n, double k) {
  return {1, m, n, k, m * n, m * k, n * k, m * n * k};
}
std::array<double, 6> trsm_features(double m, double n) {
  return {1, m, n, m * n, n * n, m * n * n};
}
std::array<double, 4> factor_features(double n) {
  return {1, n, n * n, n * n * n};
}

/// Ridge-regularized least squares via normal equations + dense Cholesky.
template <std::size_t N>
std::array<double, N> fit(const std::vector<std::array<double, N>>& x,
                          const std::vector<double>& y) {
  PASTIX_CHECK(x.size() == y.size() && !x.empty(), "bad regression input");
  DenseMatrix<double> xtx(static_cast<idx_t>(N), static_cast<idx_t>(N));
  std::array<double, N> xty{};
  for (std::size_t s = 0; s < x.size(); ++s) {
    for (std::size_t i = 0; i < N; ++i) {
      xty[i] += x[s][i] * y[s];
      for (std::size_t j = 0; j <= i; ++j)
        xtx(static_cast<idx_t>(i), static_cast<idx_t>(j)) += x[s][i] * x[s][j];
    }
  }
  // Scale-aware ridge: regularize each feature proportionally to its own
  // magnitude so huge features (mnk ~ 1e6) and the constant term coexist.
  for (std::size_t i = 0; i < N; ++i)
    xtx(static_cast<idx_t>(i), static_cast<idx_t>(i)) *= 1.0 + 1e-8;
  dense_llt(static_cast<idx_t>(N), xtx.data(), xtx.ld());
  std::array<double, N> w = xty;
  trsv_lower(static_cast<idx_t>(N), xtx.data(), xtx.ld(), w.data());
  trsv_lower_t(static_cast<idx_t>(N), xtx.data(), xtx.ld(), w.data());
  return w;
}

double time_min_of(int reps, const auto& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Recalibrate one polynomial family against measured samples: keep the
/// best of the current fit, a uniformly rescaled fit, and (when the corpus
/// is large enough to be well-posed) a full ridge refit — judged by the
/// same mean-relative-error metric kernel_sample_mean_rel_error reports,
/// so recalibration can only improve the reported fidelity.
template <std::size_t N, class FeatFn>
void refit_family(std::array<double, N>& coeffs,
                  const std::vector<KernelSample>& ss, FeatFn&& feats) {
  if (ss.empty()) return;
  const auto eval = [&](const std::array<double, N>& w) {
    double err = 0;
    for (const auto& s : ss)
      err += std::abs(eval_poly(w, feats(s)) - s.seconds) /
             std::max(s.seconds, 1e-12);
    return err / static_cast<double>(ss.size());
  };
  std::array<double, N> best = coeffs;
  double best_err = eval(best);

  double meas = 0, pred = 0;
  for (const auto& s : ss) {
    meas += s.seconds;
    pred += eval_poly(coeffs, feats(s));
  }
  if (pred > 0 && meas > 0) {
    std::array<double, N> scaled = coeffs;
    for (double& w : scaled) w *= meas / pred;
    if (const double e = eval(scaled); e < best_err) {
      best = scaled;
      best_err = e;
    }
  }

  if (ss.size() >= 4 * N) {
    std::vector<std::array<double, N>> xs;
    std::vector<double> ys;
    xs.reserve(ss.size());
    ys.reserve(ss.size());
    for (const auto& s : ss) {
      xs.push_back(feats(s));
      ys.push_back(s.seconds);
    }
    try {
      const std::array<double, N> refit = fit(xs, ys);
      bool finite = true;
      for (const double w : refit) finite &= std::isfinite(w);
      if (finite) {
        if (const double e = eval(refit); e < best_err) {
          best = refit;
          best_err = e;
        }
      }
    } catch (const Error&) {
      // Degenerate corpus (e.g. every sample the same shape): the normal
      // equations are singular even with ridge — keep the other candidates.
    }
  }
  coeffs = best;
}

} // namespace

double CostModel::gemm_time(double m, double n, double k) const {
  return eval_poly(kernel.gemm, gemm_features(m, n, k));
}
double CostModel::trsm_time(double m, double n) const {
  return eval_poly(kernel.trsm, trsm_features(m, n));
}
double CostModel::factor_ldlt_time(double n) const {
  return eval_poly(kernel.factor_ldlt, factor_features(n));
}
double CostModel::factor_llt_time(double n) const {
  return eval_poly(kernel.factor_llt, factor_features(n));
}
double CostModel::aggregate_time(double entries) const {
  return kernel.axpy_per_entry * entries;
}
double CostModel::gemv_time(double m, double n) const {
  return kernel.gemv_per_entry * m * n;
}
double CostModel::trsv_time(double n) const {
  return kernel.gemv_per_entry * n * n / 2;
}

double CostModel::predict(const KernelSample& s) const {
  switch (s.op) {
    case KernelOp::kGemm: return gemm_time(s.m, s.n, s.k);
    case KernelOp::kTrsm: return trsm_time(s.m, s.n);
    case KernelOp::kFactorLdlt: return factor_ldlt_time(s.m);
    case KernelOp::kFactorLlt: return factor_llt_time(s.m);
    case KernelOp::kAxpy: return aggregate_time(s.m);
  }
  return 0;
}

CostModel CostModel::recalibrated(const KernelSampleSet& samples) const {
  std::vector<KernelSample> gemm, trsm, ldlt, llt, axpy;
  for (const KernelSample& s : samples.samples) {
    if (!(std::isfinite(s.seconds) && s.seconds >= 0)) continue;
    switch (s.op) {
      case KernelOp::kGemm: gemm.push_back(s); break;
      case KernelOp::kTrsm: trsm.push_back(s); break;
      case KernelOp::kFactorLdlt: ldlt.push_back(s); break;
      case KernelOp::kFactorLlt: llt.push_back(s); break;
      case KernelOp::kAxpy: axpy.push_back(s); break;
    }
  }
  CostModel out = *this;
  refit_family(out.kernel.gemm, gemm, [](const KernelSample& s) {
    return gemm_features(s.m, s.n, s.k);
  });
  refit_family(out.kernel.trsm, trsm, [](const KernelSample& s) {
    return trsm_features(s.m, s.n);
  });
  refit_family(out.kernel.factor_ldlt, ldlt, [](const KernelSample& s) {
    return factor_features(s.m);
  });
  refit_family(out.kernel.factor_llt, llt, [](const KernelSample& s) {
    return factor_features(s.m);
  });
  if (!axpy.empty()) {
    double entries = 0, meas = 0;
    for (const KernelSample& s : axpy) {
      entries += s.m;
      meas += s.seconds;
    }
    if (entries > 0) {
      const auto mre = [&](double per_entry) {
        double err = 0;
        for (const KernelSample& s : axpy)
          err += std::abs(per_entry * s.m - s.seconds) /
                 std::max(s.seconds, 1e-12);
        return err / static_cast<double>(axpy.size());
      };
      const double scaled = meas / entries;
      if (mre(scaled) < mre(out.kernel.axpy_per_entry))
        out.kernel.axpy_per_entry = scaled;
    }
  }
  return out;
}

double kernel_sample_mean_rel_error(const CostModel& m,
                                    const KernelSampleSet& samples) {
  double err = 0;
  idx_t n = 0;
  for (const KernelSample& s : samples.samples) {
    if (!(std::isfinite(s.seconds) && s.seconds > 0)) continue;
    err += std::abs(m.predict(s) - s.seconds) / s.seconds;
    ++n;
  }
  return n > 0 ? err / n : 0.0;
}

double flops_gemm(double m, double n, double k) { return 2.0 * m * n * k; }
double flops_trsm(double m, double n) { return m * n * n; }
double flops_factor_ldlt(double n) { return n * n * n / 3.0 + n * n; }
double flops_factor_llt(double n) { return n * n * n / 3.0 + n * n / 2.0; }

CostModel calibrate_cost_model(const CalibrationOptions& opt) {
  Rng rng(0xca11b8a7e);
  const auto rnd = [&rng](idx_t rows, idx_t cols) {
    DenseMatrix<double> a(rows, cols);
    for (idx_t j = 0; j < cols; ++j)
      for (idx_t i = 0; i < rows; ++i) a(i, j) = rng.next_double() - 0.5;
    return a;
  };
  const auto spd = [&rnd](idx_t n) {
    auto a = rnd(n, n);
    for (idx_t i = 0; i < n; ++i) a(i, i) = 4.0 * n;
    for (idx_t j = 0; j < n; ++j)
      for (idx_t i = 0; i < j; ++i) a(i, j) = a(j, i);
    return a;
  };

  CostModel model;

  // --- GEMM --------------------------------------------------------------
  // The sample grid must cover the solver's actual operand shapes: square
  // blocks up to the blocking size, and the *tall-skinny* panels of COMP1D
  // updates (m far larger than n, k) where cache behaviour differs.
  {
    std::vector<std::array<double, 8>> xs;
    std::vector<double> ys;
    auto sample = [&](idx_t m, idx_t n, idx_t k) {
      auto a = rnd(m, k);
      auto b = rnd(n, k);
      DenseMatrix<double> c(m, n);
      const double t = time_min_of(opt.repetitions, [&] {
        gemm_nt<double>(m, n, k, -1.0, a.data(), a.ld(), b.data(), b.ld(),
                        c.data(), c.ld());
      });
      xs.push_back(gemm_features(m, n, k));
      ys.push_back(t);
    };
    const idx_t sizes[] = {8, 16, 32, 64, 96, 128};
    for (const idx_t m : sizes)
      for (const idx_t n : sizes)
        for (const idx_t k : {8, 32, 64, 96}) sample(m, n, k);
    for (const idx_t m : {256, 512, 1024, 2048})
      for (const idx_t n : {8, 32, 64})
        for (const idx_t k : {32, 64, 96}) sample(m, n, k);
    model.kernel.gemm = fit(xs, ys);
  }

  // --- TRSM --------------------------------------------------------------
  {
    std::vector<std::array<double, 6>> xs;
    std::vector<double> ys;
    for (const idx_t m : {16, 48, 96, 192, 384, 768, 1536})
      for (const idx_t n : {8, 16, 32, 64, 96}) {
        auto l = rnd(n, n);
        for (idx_t j = 0; j < n; ++j) l(j, j) = 1.0;
        auto a = rnd(m, n);
        const double t = time_min_of(opt.repetitions, [&] {
          trsm_right_lt_unit<double>(m, n, l.data(), l.ld(), a.data(), a.ld());
        });
        xs.push_back(trsm_features(m, n));
        ys.push_back(t);
      }
    model.kernel.trsm = fit(xs, ys);
  }

  // --- Diagonal factorizations --------------------------------------------
  {
    std::vector<std::array<double, 4>> xs;
    std::vector<double> ys_ldlt, ys_llt;
    for (const idx_t n : {8, 16, 32, 64, 96, 128, 192}) {
      const auto base = spd(n);
      DenseMatrix<double> work = base;
      const double t_ldlt = time_min_of(opt.repetitions, [&] {
        work = base;
        dense_ldlt_auto<double>(n, work.data(), work.ld());
      });
      const double t_llt = time_min_of(opt.repetitions, [&] {
        work = base;
        dense_llt_auto<double>(n, work.data(), work.ld());
      });
      xs.push_back(factor_features(n));
      ys_ldlt.push_back(t_ldlt);
      ys_llt.push_back(t_llt);
    }
    model.kernel.factor_ldlt = fit(xs, ys_ldlt);
    model.kernel.factor_llt = fit(xs, ys_llt);
  }

  // --- Aggregation (axpy) cost per entry -----------------------------------
  {
    const idx_t n = 1 << 16;
    auto a = rnd(n, 1);
    DenseMatrix<double> c(n, 1);
    const double t = time_min_of(opt.repetitions, [&] {
      const double* ap = a.data();
      double* cp = c.data();
      for (idx_t i = 0; i < n; ++i) cp[i] += ap[i];
    });
    model.kernel.axpy_per_entry = t / n;
  }

  // --- GEMV cost per entry (solve phase) --------------------------------------
  {
    const idx_t m = 768, n = 64;
    auto a = rnd(m, n);
    std::vector<double> x(static_cast<std::size_t>(n), 1.0);
    std::vector<double> y(static_cast<std::size_t>(m), 0.0);
    const double t = time_min_of(opt.repetitions, [&] {
      gemv_n<double>(m, n, 1.0, a.data(), a.ld(), x.data(), y.data());
    });
    model.kernel.gemv_per_entry = t / (static_cast<double>(m) * n);
  }
  return model;
}

CostModel default_cost_model() {
  // Calibrated with calibrate_cost_model() on the reference development
  // machine (single x86-64 core, gcc 12 -O2, ~3.5% mean relative error);
  // see bench/kernels_dense for a re-calibration harness.  Units: seconds.
  CostModel m;
  m.kernel.gemm = {2.5416457397903574e-07, 3.0212573990499206e-08,
                   2.1624481687602854e-07, 9.9114153036240102e-08,
                   -3.6472019412106834e-09, -9.4871265633191553e-10,
                   -8.447363368393061e-09, 3.9880428316557362e-10};
  m.kernel.trsm = {-8.1483586165081806e-07, 1.9920536595117564e-08,
                   1.5912209423660519e-07, -3.0619847485730813e-09,
                   -2.9878130003791167e-09, 4.4792638970722787e-10};
  m.kernel.factor_ldlt = {6.5528192304290068e-06, -5.7486662956299004e-07,
                          1.0018183581210248e-08, 5.5514876732507841e-11};
  m.kernel.factor_llt = {-3.3452839444934739e-06, 2.4463804790201715e-07,
                         1.1876066803619603e-09, 8.2718820868410788e-11};
  m.kernel.axpy_per_entry = 2.924346923828125e-10;
  m.kernel.gemv_per_entry = 8.0e-10;  // streaming dgemv on the reference host
  return m;
}

void save_cost_model(std::ostream& os, const CostModel& m) {
  os.precision(17);
  os << "pastix-cost-model v2\n";
  auto dump = [&os](const char* name, const double* w, std::size_t n) {
    os << name;
    for (std::size_t i = 0; i < n; ++i) os << " " << w[i];
    os << "\n";
  };
  dump("gemm", m.kernel.gemm.data(), m.kernel.gemm.size());
  dump("trsm", m.kernel.trsm.data(), m.kernel.trsm.size());
  dump("factor_ldlt", m.kernel.factor_ldlt.data(), m.kernel.factor_ldlt.size());
  dump("factor_llt", m.kernel.factor_llt.data(), m.kernel.factor_llt.size());
  os << "axpy " << m.kernel.axpy_per_entry << "\n";
  os << "gemv " << m.kernel.gemv_per_entry << "\n";
  os << "net " << m.net.latency << " " << m.net.per_byte << " "
     << m.net.scalar_bytes << "\n";
}

CostModel load_cost_model(std::istream& is) {
  std::string header, version;
  is >> header >> version;
  PASTIX_CHECK(header == "pastix-cost-model" && version == "v2",
               "unrecognized cost model file");
  CostModel m;
  auto read = [&is](const char* expect, double* w, std::size_t n) {
    std::string name;
    is >> name;
    PASTIX_CHECK(name == expect, "cost model field out of order: " + name);
    for (std::size_t i = 0; i < n; ++i) is >> w[i];
  };
  read("gemm", m.kernel.gemm.data(), m.kernel.gemm.size());
  read("trsm", m.kernel.trsm.data(), m.kernel.trsm.size());
  read("factor_ldlt", m.kernel.factor_ldlt.data(), m.kernel.factor_ldlt.size());
  read("factor_llt", m.kernel.factor_llt.data(), m.kernel.factor_llt.size());
  read("axpy", &m.kernel.axpy_per_entry, 1);
  read("gemv", &m.kernel.gemv_per_entry, 1);
  std::string name;
  is >> name >> m.net.latency >> m.net.per_byte >> m.net.scalar_bytes;
  PASTIX_CHECK(name == "net" && !is.fail(), "truncated cost model file");
  return m;
}

double model_relative_error(const CostModel& m) {
  Rng rng(0x5eed);
  double err = 0;
  int samples = 0;
  for (const idx_t mm : {24, 56, 100})
    for (const idx_t nn : {24, 72}) {
      const idx_t kk = 40;
      DenseMatrix<double> a(mm, kk), b(nn, kk), c(mm, nn);
      for (idx_t j = 0; j < kk; ++j)
        for (idx_t i = 0; i < mm; ++i) a(i, j) = rng.next_double();
      const double t = time_min_of(3, [&] {
        gemm_nt<double>(mm, nn, kk, -1.0, a.data(), a.ld(), b.data(), b.ld(),
                        c.data(), c.ld());
      });
      const double p = m.gemm_time(mm, nn, kk);
      err += std::abs(p - t) / t;
      ++samples;
    }
  return err / samples;
}

} // namespace pastix
