//
// Two-tier verified plan cache with quarantine (see plan_cache.hpp).
//
#include "core/plan_cache.hpp"

#include <filesystem>
#include <ostream>
#include <streambuf>

#include "core/plan_io.hpp"

namespace pastix {

namespace fs = std::filesystem;

namespace {

/// Streambuf that counts bytes and discards them.
class CountingBuf : public std::streambuf {
public:
  [[nodiscard]] std::size_t count() const { return count_; }

private:
  int_type overflow(int_type c) override {
    if (c != traits_type::eof()) ++count_;
    return c;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    count_ += static_cast<std::size_t>(n);
    return n;
  }
  std::size_t count_ = 0;
};

/// Move a failed disk-tier file aside with the given suffix so it is never
/// retried, keeping the evidence for post-mortem.  Falls back to removal if
/// the rename target already exists from an earlier incident.
void move_aside(const std::string& path, const char* suffix) {
  std::error_code ec;
  const std::string target = path + suffix;
  fs::remove(target, ec);
  ec.clear();
  fs::rename(path, target, ec);
  if (ec) fs::remove(path, ec);
}

} // namespace

std::size_t plan_footprint_bytes(const AnalysisPlan& plan) {
  CountingBuf buf;
  std::ostream os(&buf);
  save_plan(plan, os);
  return buf.count();
}

PlanCache::PlanCache(PlanCacheOptions opt) : opt_(std::move(opt)) {}

std::string PlanCache::disk_path(const PatternFingerprint& fp) const {
  if (opt_.disk_dir.empty()) return {};
  return opt_.disk_dir + "/" + fingerprint_key(fp) + ".plan";
}

PlanPtr PlanCache::lookup(const PatternFingerprint& fp) {
  const std::lock_guard lock(mu_);
  if (quarantined_.count(fp)) {
    stats_.quarantine_hits++;
    return nullptr;
  }
  const auto it = index_.find(fp);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    stats_.hits++;
    return it->second->plan;
  }
  if (PlanPtr plan = disk_lookup_locked(fp)) {
    insert_locked(fp, plan);
    stats_.disk_hits++;
    return plan;
  }
  stats_.misses++;
  return nullptr;
}

PlanPtr PlanCache::disk_lookup_locked(const PatternFingerprint& fp) {
  const std::string path = disk_path(fp);
  if (path.empty()) return nullptr;
  std::error_code ec;
  if (!fs::exists(path, ec)) return nullptr;
  try {
    PlanPtr plan = load_plan(path);  // verifies; throws on anything unsound
    if (plan->fingerprint != fp)
      throw Error("disk-tier plan file holds a different pattern");
    if (opt_.expect_nprocs != 0 && plan->nprocs() != opt_.expect_nprocs)
      return nullptr;  // valid file, wrong world size: plain miss
    return plan;
  } catch (const Error&) {
    // Corrupt / truncated / failed verification: quarantine the on-disk
    // entry (rename to .corrupt) and miss — damage to the cache directory
    // costs one re-analysis, never the service.
    move_aside(path, ".corrupt");
    stats_.disk_corrupt++;
    return nullptr;
  }
}

bool PlanCache::insert(const PlanPtr& plan) {
  PASTIX_CHECK(plan != nullptr, "plan cache: null plan");
  const PatternFingerprint fp = plan->fingerprint;
  // Serialize outside the lock: the footprint measure and the disk write
  // both walk the (immutable) plan and need no cache state.
  const std::string path = [&] {
    const std::lock_guard lock(mu_);
    return quarantined_.count(fp) ? std::string("<quarantined>")
                                  : disk_path(fp);
  }();
  if (path == "<quarantined>") return false;
  bool disk_failed = false;
  if (!path.empty()) {
    try {
      std::error_code ec;
      fs::create_directories(opt_.disk_dir, ec);
      save_plan(*plan, path);
    } catch (const Error&) {
      disk_failed = true;  // memory tier still works; count it
    }
  }
  const std::size_t bytes = plan_footprint_bytes(*plan);

  std::unique_lock lock(mu_);
  if (quarantined_.count(fp)) return false;
  if (disk_failed) stats_.disk_write_failures++;
  insert_locked(fp, plan);
  lru_.front().bytes = bytes;
  stats_.bytes_cached += bytes;
  stats_.insertions++;
  evict_locked();
  lock.unlock();
  // Mutation hook (mc battery): release the cache mutex a second time —
  // the unbalanced unlock the shim reports as kDoubleRelease.
  if (PASTIX_MC_MUTATION(cache_double_unlock)) mu_.unlock();
  return true;
}

void PlanCache::insert_locked(const PatternFingerprint& fp,
                              const PlanPtr& plan) {
  const auto it = index_.find(fp);
  if (it != index_.end()) {
    stats_.bytes_cached -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{fp, plan, 0});
  index_[fp] = lru_.begin();
  stats_.entries = index_.size();
}

void PlanCache::evict_locked() {
  while (lru_.size() > 1 && stats_.bytes_cached > opt_.budget_bytes) {
    const Entry& victim = lru_.back();
    stats_.bytes_cached -= victim.bytes;
    index_.erase(victim.fp);
    lru_.pop_back();
    stats_.evictions++;
  }
  stats_.entries = index_.size();
}

void PlanCache::quarantine(const PatternFingerprint& fp, std::string reason) {
  std::string path;
  {
    const std::lock_guard lock(mu_);
    quarantined_[fp] = std::move(reason);
    const auto it = index_.find(fp);
    if (it != index_.end()) {
      stats_.bytes_cached -= it->second->bytes;
      lru_.erase(it->second);
      index_.erase(it);
      stats_.entries = index_.size();
    }
    path = disk_path(fp);
  }
  if (!path.empty()) {
    std::error_code ec;
    if (fs::exists(path, ec)) move_aside(path, ".quarantined");
  }
}

std::optional<std::string> PlanCache::quarantine_reason(
    const PatternFingerprint& fp) const {
  const std::lock_guard lock(mu_);
  const auto it = quarantined_.find(fp);
  if (it == quarantined_.end()) return std::nullopt;
  return it->second;
}

void PlanCache::release_quarantine(const PatternFingerprint& fp) {
  const std::lock_guard lock(mu_);
  quarantined_.erase(fp);
}

std::size_t PlanCache::quarantined_count() const {
  const std::lock_guard lock(mu_);
  return quarantined_.size();
}

PlanCacheStats PlanCache::stats() const {
  const std::lock_guard lock(mu_);
  return stats_;
}

} // namespace pastix
