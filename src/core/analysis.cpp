//
// Free-function analysis pipeline producing the shareable AnalysisPlan.
//
#include "core/analysis.hpp"

#include <sstream>

#include "verify/verify.hpp"

namespace pastix {

std::string fingerprint_key(const PatternFingerprint& f) {
  std::ostringstream os;
  os << "fp_" << f.n << "_" << f.nnz << "_" << std::hex << f.hash;
  return os.str();
}

PatternFingerprint fingerprint_pattern(const SparsePattern& p) {
  PatternFingerprint f;
  f.n = p.n;
  f.nnz = p.nnz_offdiag();
  // FNV-1a over the index arrays, one 64-bit word per index.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(p.n));
  for (const idx_t v : p.colptr) mix(static_cast<std::uint64_t>(v));
  for (const idx_t v : p.rowind) mix(static_cast<std::uint64_t>(v));
  f.hash = h;
  return f;
}

PlanPtr analyze(const SparsePattern& pattern, const SolverOptions& opt) {
  PASTIX_CHECK(opt.nprocs >= 1, "nprocs must be positive");
  pattern.validate();

  auto plan = std::make_shared<AnalysisPlan>();
  AnalysisPlan& p = *plan;
  p.options = opt;
  p.options.mapping.nprocs = opt.nprocs;
  p.fingerprint = fingerprint_pattern(pattern);

  p.order = compute_ordering(pattern, opt.ordering);
  p.symbol = split_symbol(
      block_symbolic_factorization(p.order.permuted, p.order.rangtab),
      opt.split);
  p.cand = proportional_mapping(p.symbol, opt.model, p.options.mapping);
  p.tg = build_task_graph(p.symbol, p.cand, opt.model);
  p.sched = static_schedule(p.tg, p.cand, opt.model, opt.nprocs,
                            opt.scheduler);
  if (opt.fanin.hybrid.enabled)
    compute_split(p.tg, p.sched, opt.fanin.hybrid.tail_fraction);
  p.sim = simulate_schedule(p.tg, p.sched, opt.model);
  p.comm = build_comm_plan(p.symbol, p.tg, p.sched, opt.fanin.partial_chunk);
  p.solve = build_solve_plan(p.symbol, p.tg, p.sched, opt.model);
  p.solve.sim = simulate_schedule(p.solve.tg, p.solve.sched, opt.model);

  p.stats.nnz_l = p.order.scalar.nnz_l;
  p.stats.opc = p.order.scalar.opc;
  p.stats.nnz_blocks = p.symbol.nnz_blocks();
  p.stats.ncblk = p.symbol.ncblk;
  p.stats.nblok = p.symbol.nblok();
  p.stats.ntask = p.tg.ntask();
  for (const auto& c : p.cand.cblk)
    if (c.dist == DistType::k2D) p.stats.n_2d_cblks++;
  p.stats.total_flops = p.tg.total_flops();
  p.stats.predicted_time = p.sim.makespan;
  if (opt.verify_plan) verify::require_valid(p, "analyze");
  return plan;
}

} // namespace pastix
