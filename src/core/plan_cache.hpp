#pragma once
//
// Verified plan cache — the reuse layer between a stream of jobs and the
// expensive pattern-only analysis (DESIGN.md §12).
//
// Two tiers over one key (PatternFingerprint):
//
//   memory — an LRU of shared PlanPtr values under a byte budget.  Entry
//     cost is the plan's serialized size (an exact, structure-proportional
//     measure computed with the plan_io writer against a counting stream),
//     so the budget means what it says across wildly different patterns.
//
//   disk — an optional directory of plan_io files named by fingerprint_key.
//     A memory miss falls through to disk; a disk hit is promoted into the
//     LRU.  Loading runs the full static verifier (plan_io always does), so
//     nothing unsound is ever served.  A file that fails to load — corrupt,
//     truncated, wrong version, failed verification — is renamed to
//     "<name>.corrupt" and treated as a plain miss: on-disk damage costs
//     one re-analysis, never the service.
//
// Quarantine: a fingerprint can be marked poisoned with a named reason
// (failed verification, repeated factorization crashes — the service's
// circuit breaker).  A quarantined fingerprint is never served or inserted,
// and its disk entry is moved aside to "<name>.quarantined" so a restart
// does not resurrect it.  Quarantine is explicit-release only.
//
// All operations are thread-safe behind one mutex; plans themselves are
// immutable shared values, so concurrent readers need no further locking.
//
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/analysis.hpp"
#include "mc/sync.hpp"

namespace pastix {

/// Keyed single-flight latch: while one thread holds a key, every other
/// enter on the same key blocks until it leaves — the "miss → compute once
/// → publish" discipline of the plan cache (concurrent misses on one
/// fingerprint must run exactly one analysis; distinct keys never wait on
/// each other).  Keys are caller-hashed u64s: a hash collision merely
/// over-serializes two unrelated computations, it can never corrupt
/// anything, so the cheap key beats storing the fingerprints themselves.
class Singleflight {
public:
  /// RAII key hold: blocks in the constructor until the key is free.
  class Guard {
  public:
    Guard(Singleflight& sf, std::uint64_t key) : sf_(sf), key_(key) {
      sf_.enter(key_);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { sf_.leave(key_); }

  private:
    Singleflight& sf_;
    std::uint64_t key_;
  };

  /// Keys currently held (diagnostics / tests).
  [[nodiscard]] std::size_t inflight() const {
    const std::lock_guard lock(mu_);
    return inflight_.size();
  }

private:
  void enter(std::uint64_t key) {
    // Mutation hook (mc battery): no latch at all — concurrent misses on
    // one key all compute and publish, the duplicated-work race the
    // explorer must catch on the guarded section's shared state.
    if (PASTIX_MC_MUTATION(singleflight_skip_latch)) return;
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return inflight_.insert(key).second; });
  }

  void leave(std::uint64_t key) {
    if (PASTIX_MC_MUTATION(singleflight_skip_latch)) return;
    {
      const std::lock_guard lock(mu_);
      inflight_.erase(key);
    }
    cv_.notify_all();
  }

  mutable mc::mutex mu_;
  mc::condition_variable cv_;
  std::unordered_set<std::uint64_t> inflight_;
};

struct PlanCacheOptions {
  /// Byte budget of the in-memory LRU tier.  Eviction keeps the newest
  /// entry even when it alone exceeds the budget (a cache that cannot hold
  /// the working plan would re-analyze every job).
  std::size_t budget_bytes = 256ull << 20;
  /// Directory of the disk tier; empty disables it.  Created on first use.
  std::string disk_dir;
  /// When nonzero, a disk-tier plan built for a different processor count
  /// is treated as a miss (the service's solvers cannot adopt it).
  idx_t expect_nprocs = 0;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;            ///< served from the memory LRU
  std::uint64_t disk_hits = 0;       ///< served from the disk tier
  std::uint64_t misses = 0;          ///< caller must analyze
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;       ///< LRU entries dropped for the budget
  std::uint64_t disk_corrupt = 0;    ///< files quarantined to .corrupt
  std::uint64_t disk_write_failures = 0;
  std::uint64_t quarantine_hits = 0; ///< lookups refused by quarantine
  std::size_t bytes_cached = 0;      ///< current LRU footprint
  std::size_t entries = 0;           ///< current LRU entry count

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + disk_hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits + disk_hits) /
                            static_cast<double>(total);
  }
};

/// Exact serialized size of a plan (the LRU cost measure) — save_plan
/// against a counting stream, no allocation proportional to the plan.
[[nodiscard]] std::size_t plan_footprint_bytes(const AnalysisPlan& plan);

class PlanCache {
public:
  explicit PlanCache(PlanCacheOptions opt = {});

  /// Serve `fp` from memory or disk; nullptr on miss (including
  /// quarantined fingerprints — check quarantine_reason first to
  /// distinguish).  Never throws on corrupt disk state.
  [[nodiscard]] PlanPtr lookup(const PatternFingerprint& fp);

  /// Insert a freshly analyzed plan: into the LRU (evicting past the
  /// budget) and, when the disk tier is on, onto disk.  Quarantined
  /// fingerprints are refused (returns false).
  bool insert(const PlanPtr& plan);

  /// Mark `fp` poisoned with a human-readable reason: drop it from the
  /// LRU, move its disk file aside, refuse future lookups/inserts.
  void quarantine(const PatternFingerprint& fp, std::string reason);

  /// The quarantine reason, or nullopt when `fp` is not quarantined.
  [[nodiscard]] std::optional<std::string> quarantine_reason(
      const PatternFingerprint& fp) const;

  /// Explicit release (operator action — nothing expires automatically).
  void release_quarantine(const PatternFingerprint& fp);

  [[nodiscard]] std::size_t quarantined_count() const;
  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] const PlanCacheOptions& options() const { return opt_; }

  /// Disk-tier path of a fingerprint's plan file (valid whether or not the
  /// file exists); empty when the disk tier is off.
  [[nodiscard]] std::string disk_path(const PatternFingerprint& fp) const;

private:
  struct Entry {
    PatternFingerprint fp;
    PlanPtr plan;
    std::size_t bytes = 0;
  };

  [[nodiscard]] PlanPtr disk_lookup_locked(const PatternFingerprint& fp);
  void insert_locked(const PatternFingerprint& fp, const PlanPtr& plan);
  void evict_locked();

  PlanCacheOptions opt_;
  mutable mc::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<PatternFingerprint, std::list<Entry>::iterator,
                     FingerprintHash>
      index_;
  std::unordered_map<PatternFingerprint, std::string, FingerprintHash>
      quarantined_;
  PlanCacheStats stats_;
};

} // namespace pastix
