//
// Binary (de)serialization of AnalysisPlan.  See plan_io.hpp for the format
// contract.
//
#include "core/plan_io.hpp"

#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <type_traits>

#include "rt/comm.hpp"
#include "support/checksum.hpp"
#include "verify/verify.hpp"

namespace pastix {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'T', 'X', 'P', 'L', 'A', 'N'};
// v2: SolverOptions grew the verify_plan strict-mode flag.
// v3: AnalysisPlan carries the solve-phase plan (tg + K_p schedule + sim).
// v4: Schedule carries the hybrid static-prefix/dynamic-tail split points,
//     and FaninOptions (inside the raw-serialized SolverOptions) grew the
//     HybridOptions block.
// v5: the stream ends with a CRC32C integrity footer over everything before
//     it, verified by load_plan *before* any field is parsed (DESIGN.md §15).
constexpr std::uint32_t kVersion = 5;

/// Footer encoding: the CRC and its complement packed into one u64, so a
/// zeroed (or otherwise constant) footer can never verify.
constexpr std::uint64_t footer_word(std::uint32_t crc) {
  return (static_cast<std::uint64_t>(~crc) << 32) | crc;
}

/// Tees every byte to `sink` while accumulating the running CRC32C — the
/// writer-side half of the v5 integrity footer.
class CrcTeeBuf final : public std::streambuf {
public:
  explicit CrcTeeBuf(std::ostream& sink) : sink_(sink) {}
  [[nodiscard]] std::uint32_t crc() const { return crc_.value(); }

protected:
  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof()))
      return traits_type::not_eof(ch);
    const char c = traits_type::to_char_type(ch);
    crc_.update(&c, 1);
    sink_.put(c);
    return sink_.good() ? ch : traits_type::eof();
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    crc_.update(s, static_cast<std::size_t>(n));
    sink_.write(s, n);
    return sink_.good() ? n : 0;
  }

private:
  std::ostream& sink_;
  Crc32c crc_;
};

// ---- primitive writers/readers --------------------------------------------

void put_bytes(std::ostream& os, const void* data, std::size_t bytes) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(bytes));
  PASTIX_CHECK(os.good(), "plan write failed");
}

template <class T>
void put_raw(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(os, &v, sizeof v);
}

template <class T>
void put_vec(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_raw(os, static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) put_bytes(os, v.data(), v.size() * sizeof(T));
}

// An element count no saved plan can legitimately reach (the 32-bit idx_t
// pipeline tops out well below this) — bounds allocations when the length
// field itself is corrupted, so a bad file throws instead of bad_alloc.
constexpr std::uint64_t kMaxElems = 1ULL << 33;

/// Byte-budgeted reading: every length field is checked against the bytes
/// actually left in the stream *before* anything is allocated, so a
/// corrupted length throws a clean Error instead of a multi-gigabyte
/// resize + bad_alloc (or a silent short read).  Falls back to plain
/// read-failure detection on non-seekable streams.
class Reader {
public:
  explicit Reader(std::istream& is) : is_(is) {
    const auto cur = is.tellg();
    if (cur == std::streampos(-1)) return;  // non-seekable
    is.seekg(0, std::ios::end);
    const auto end = is.tellg();
    is.seekg(cur);
    if (end != std::streampos(-1) && end >= cur)
      remaining_ = static_cast<std::uint64_t>(end - cur);
  }

  [[nodiscard]] std::uint64_t remaining() const { return remaining_; }

  void bytes(void* data, std::size_t n) {
    PASTIX_CHECK(n <= remaining_,
                 "plan file truncated: payload extends past end of stream");
    is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    PASTIX_CHECK(is_.good(), "plan file truncated or unreadable");
    remaining_ -= n;
  }

private:
  std::istream& is_;
  std::uint64_t remaining_ = std::numeric_limits<std::uint64_t>::max();
};

template <class T>
void get_raw(Reader& in, T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.bytes(&v, sizeof v);
}

/// Read and bound a length field: capped both by the format's hard limit
/// and by what could possibly fit in the stream's remaining bytes.
std::uint64_t get_len(Reader& in, std::size_t elem_bytes) {
  std::uint64_t size = 0;
  get_raw(in, size);
  PASTIX_CHECK(size <= kMaxElems, "plan file corrupt: absurd vector length");
  PASTIX_CHECK(size <= in.remaining() / elem_bytes,
               "plan file corrupt: vector length exceeds remaining bytes");
  return size;
}

template <class T>
void get_vec(Reader& in, std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint64_t size = get_len(in, sizeof(T));
  v.resize(static_cast<std::size_t>(size));
  if (size > 0) in.bytes(v.data(), v.size() * sizeof(T));
}

template <class T>
void put_vecvec(std::ostream& os, const std::vector<std::vector<T>>& v) {
  put_raw(os, static_cast<std::uint64_t>(v.size()));
  for (const auto& inner : v) put_vec(os, inner);
}

template <class T>
void get_vecvec(Reader& in, std::vector<std::vector<T>>& v) {
  // Each inner vector costs at least its 8-byte length field.
  const std::uint64_t size = get_len(in, sizeof(std::uint64_t));
  v.resize(static_cast<std::size_t>(size));
  for (auto& inner : v) get_vec(in, inner);
}

// std::pair's layout/triviality is not guaranteed portable — write the two
// halves explicitly.
void put_pairs(std::ostream& os,
               const std::vector<std::vector<std::pair<idx_t, idx_t>>>& v) {
  put_raw(os, static_cast<std::uint64_t>(v.size()));
  for (const auto& inner : v) {
    put_raw(os, static_cast<std::uint64_t>(inner.size()));
    for (const auto& [a, b] : inner) {
      put_raw(os, a);
      put_raw(os, b);
    }
  }
}

void get_pairs(Reader& in,
               std::vector<std::vector<std::pair<idx_t, idx_t>>>& v) {
  const std::uint64_t size = get_len(in, sizeof(std::uint64_t));
  v.resize(static_cast<std::size_t>(size));
  for (auto& inner : v) {
    const std::uint64_t isize = get_len(in, 2 * sizeof(idx_t));
    inner.resize(static_cast<std::size_t>(isize));
    for (auto& [a, b] : inner) {
      get_raw(in, a);
      get_raw(in, b);
    }
  }
}

// ---- layout header ---------------------------------------------------------
//
// The raw-serialized structs are plain aggregates of integers/doubles/enums;
// their sizes pin down the build's layout well enough to reject plans from
// an incompatible compiler/ABI/format revision before touching the payload.

struct LayoutHeader {
  std::uint32_t version = kVersion;
  std::uint32_t sizeof_idx = sizeof(idx_t);
  std::uint32_t sizeof_big = sizeof(big_t);
  std::uint32_t sizeof_options = sizeof(SolverOptions);
  std::uint32_t sizeof_task = sizeof(Task);
  std::uint32_t sizeof_contribution = sizeof(Contribution);
  std::uint32_t sizeof_symbol_cblk = sizeof(SymbolCblk);
  std::uint32_t sizeof_symbol_blok = sizeof(SymbolBlok);
  std::uint32_t sizeof_candidate = sizeof(CblkCandidate);
  std::uint32_t sizeof_fingerprint = sizeof(PatternFingerprint);
  std::uint32_t sizeof_scalar_stats = sizeof(ScalarSymbolStats);
  std::uint32_t sizeof_analysis_stats = sizeof(AnalysisStats);

  friend bool operator==(const LayoutHeader&, const LayoutHeader&) = default;
};

static_assert(std::is_trivially_copyable_v<SolverOptions>,
              "SolverOptions must stay raw-serializable; if a member grows a "
              "vector/string, give plan_io a field-wise codec and bump "
              "kVersion");
static_assert(std::is_trivially_copyable_v<PatternFingerprint>);
static_assert(std::is_trivially_copyable_v<ScalarSymbolStats>);
static_assert(std::is_trivially_copyable_v<AnalysisStats>);
static_assert(std::is_trivially_copyable_v<Task>);
static_assert(std::is_trivially_copyable_v<Contribution>);
static_assert(std::is_trivially_copyable_v<SymbolCblk>);
static_assert(std::is_trivially_copyable_v<SymbolBlok>);
static_assert(std::is_trivially_copyable_v<CblkCandidate>);

void put_pattern(std::ostream& os, const SparsePattern& p) {
  put_raw(os, p.n);
  put_vec(os, p.colptr);
  put_vec(os, p.rowind);
}

void get_pattern(Reader& in, SparsePattern& p) {
  get_raw(in, p.n);
  get_vec(in, p.colptr);
  get_vec(in, p.rowind);
}

/// Everything between the magic and the v5 footer — written through the
/// CRC-accumulating tee by save_plan.
void save_payload(const AnalysisPlan& plan, std::ostream& out) {
  put_bytes(out, kMagic, sizeof kMagic);
  put_raw(out, LayoutHeader{});

  put_raw(out, plan.options);
  put_raw(out, plan.fingerprint);

  // Ordering.
  put_vec(out, plan.order.perm.perm);
  put_vec(out, plan.order.perm.invp);
  put_pattern(out, plan.order.permuted);
  put_vec(out, plan.order.parent);
  put_vec(out, plan.order.counts);
  put_vec(out, plan.order.rangtab);
  put_raw(out, plan.order.scalar);

  // Symbol structure.
  put_raw(out, plan.symbol.n);
  put_raw(out, plan.symbol.ncblk);
  put_vec(out, plan.symbol.cblks);
  put_vec(out, plan.symbol.bloks);
  put_vec(out, plan.symbol.col2cblk);

  // Candidate mapping.
  put_vec(out, plan.cand.cblk);
  put_vec(out, plan.cand.parent);
  put_vec(out, plan.cand.subtree_cost);

  // Task graph.
  put_vec(out, plan.tg.tasks);
  put_vecvec(out, plan.tg.inputs);
  put_vecvec(out, plan.tg.prec);
  put_vec(out, plan.tg.cblk_task);
  put_vec(out, plan.tg.blok_task);
  put_vec(out, plan.tg.depth);

  // Schedule.
  put_raw(out, plan.sched.nprocs);
  put_vec(out, plan.sched.proc);
  put_vec(out, plan.sched.prio);
  put_vec(out, plan.sched.start);
  put_vec(out, plan.sched.end);
  put_vecvec(out, plan.sched.kp);
  put_vec(out, plan.sched.split);  // v4: empty means fully static
  put_raw(out, plan.sched.makespan);

  // Simulation numbers.
  put_raw(out, plan.sim.makespan);
  put_vec(out, plan.sim.busy);
  put_vec(out, plan.sim.idle);
  put_raw(out, plan.sim.comm_entries);
  put_raw(out, plan.sim.messages);
  put_raw(out, plan.sim.aggregate_seconds);

  // Communication plan.
  put_raw(out, plan.comm.partial_chunk);
  put_vec(out, plan.comm.expect_aub);
  put_vecvec(out, plan.comm.aub_after);
  put_pairs(out, plan.comm.aub_countdown);
  put_vecvec(out, plan.comm.diag_dests);
  put_vecvec(out, plan.comm.panel_dests);
  put_vec(out, plan.comm.diag_owner);
  put_vec(out, plan.comm.blok_owner);
  put_vecvec(out, plan.comm.fwd_remote_bloks);
  put_vecvec(out, plan.comm.bwd_remote_bloks);
  put_vecvec(out, plan.comm.yseg_dests);
  put_vecvec(out, plan.comm.xseg_dests);

  // Solve-phase plan (v3): same tg/sched/sim layout as the factorization's.
  put_vec(out, plan.solve.tg.tasks);
  put_vecvec(out, plan.solve.tg.inputs);
  put_vecvec(out, plan.solve.tg.prec);
  put_vec(out, plan.solve.tg.cblk_task);
  put_vec(out, plan.solve.tg.blok_task);
  put_vec(out, plan.solve.tg.depth);
  put_raw(out, plan.solve.sched.nprocs);
  put_vec(out, plan.solve.sched.proc);
  put_vec(out, plan.solve.sched.prio);
  put_vec(out, plan.solve.sched.start);
  put_vec(out, plan.solve.sched.end);
  put_vecvec(out, plan.solve.sched.kp);
  put_vec(out, plan.solve.sched.split);  // v4: always empty today
  put_raw(out, plan.solve.sched.makespan);
  put_raw(out, plan.solve.sim.makespan);
  put_vec(out, plan.solve.sim.busy);
  put_vec(out, plan.solve.sim.idle);
  put_raw(out, plan.solve.sim.comm_entries);
  put_raw(out, plan.solve.sim.messages);
  put_raw(out, plan.solve.sim.aggregate_seconds);

  put_raw(out, plan.stats);
}

} // namespace

void save_plan(const AnalysisPlan& plan, std::ostream& out) {
  CrcTeeBuf tee(out);
  std::ostream crc_out(&tee);
  save_payload(plan, crc_out);
  crc_out.flush();
  // v5 integrity footer, written to the sink directly — the CRC covers
  // everything before it.
  put_raw(out, footer_word(tee.crc()));
  out.flush();
  PASTIX_CHECK(out.good(), "plan write failed");
}

void save_plan(const AnalysisPlan& plan, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  PASTIX_CHECK(out.is_open(), "cannot open plan file for writing: " + path);
  save_plan(plan, out);
}

PlanPtr load_plan(std::istream& stream) {
  // Slurp the whole stream first: the v5 CRC32C footer is verified over the
  // raw bytes before the parser — or the static verifier — trusts a single
  // field of the payload (DESIGN.md §15).
  std::string buf{std::istreambuf_iterator<char>(stream),
                  std::istreambuf_iterator<char>()};
  PASTIX_CHECK(!stream.bad(), "plan file unreadable");
  PASTIX_CHECK(
      buf.size() >= sizeof kMagic + sizeof(std::uint32_t) + sizeof(std::uint64_t),
      "plan file truncated: shorter than its fixed header and footer");
  PASTIX_CHECK(std::memcmp(buf.data(), kMagic, sizeof kMagic) == 0,
               "not a pastix plan file (bad magic)");
  // The version is the first header field after the magic; check it before
  // the CRC so a pre-v5 (footer-less) file reports a version mismatch, not
  // a corruption.
  std::uint32_t version = 0;
  std::memcpy(&version, buf.data() + sizeof kMagic, sizeof version);
  PASTIX_CHECK(version == kVersion, "plan file format version mismatch");
  const std::size_t body = buf.size() - sizeof(std::uint64_t);
  std::uint64_t footer = 0;
  std::memcpy(&footer, buf.data() + body, sizeof footer);
  const std::uint32_t crc = crc32c(buf.data(), body);
  if (footer != footer_word(crc))
    throw rt::IntegrityError(
        "plan file corruption: CRC32C footer mismatch over " +
        std::to_string(body) + " bytes (recomputed " + std::to_string(crc) +
        ")");
  buf.resize(body);
  std::istringstream verified(std::move(buf),
                              std::ios::binary | std::ios::in);

  Reader in(verified);
  char magic[sizeof kMagic];
  in.bytes(magic, sizeof magic);
  LayoutHeader header;
  get_raw(in, header);
  PASTIX_CHECK(header == LayoutHeader{},
               "plan file was written by an incompatible build "
               "(struct layout mismatch)");

  auto plan = std::make_shared<AnalysisPlan>();
  AnalysisPlan& p = *plan;

  get_raw(in, p.options);
  get_raw(in, p.fingerprint);

  get_vec(in, p.order.perm.perm);
  get_vec(in, p.order.perm.invp);
  get_pattern(in, p.order.permuted);
  get_vec(in, p.order.parent);
  get_vec(in, p.order.counts);
  get_vec(in, p.order.rangtab);
  get_raw(in, p.order.scalar);

  get_raw(in, p.symbol.n);
  get_raw(in, p.symbol.ncblk);
  get_vec(in, p.symbol.cblks);
  get_vec(in, p.symbol.bloks);
  get_vec(in, p.symbol.col2cblk);

  get_vec(in, p.cand.cblk);
  get_vec(in, p.cand.parent);
  get_vec(in, p.cand.subtree_cost);

  get_vec(in, p.tg.tasks);
  get_vecvec(in, p.tg.inputs);
  get_vecvec(in, p.tg.prec);
  get_vec(in, p.tg.cblk_task);
  get_vec(in, p.tg.blok_task);
  get_vec(in, p.tg.depth);

  get_raw(in, p.sched.nprocs);
  get_vec(in, p.sched.proc);
  get_vec(in, p.sched.prio);
  get_vec(in, p.sched.start);
  get_vec(in, p.sched.end);
  get_vecvec(in, p.sched.kp);
  get_vec(in, p.sched.split);
  get_raw(in, p.sched.makespan);

  get_raw(in, p.sim.makespan);
  get_vec(in, p.sim.busy);
  get_vec(in, p.sim.idle);
  get_raw(in, p.sim.comm_entries);
  get_raw(in, p.sim.messages);
  get_raw(in, p.sim.aggregate_seconds);

  get_raw(in, p.comm.partial_chunk);
  get_vec(in, p.comm.expect_aub);
  get_vecvec(in, p.comm.aub_after);
  get_pairs(in, p.comm.aub_countdown);
  get_vecvec(in, p.comm.diag_dests);
  get_vecvec(in, p.comm.panel_dests);
  get_vec(in, p.comm.diag_owner);
  get_vec(in, p.comm.blok_owner);
  get_vecvec(in, p.comm.fwd_remote_bloks);
  get_vecvec(in, p.comm.bwd_remote_bloks);
  get_vecvec(in, p.comm.yseg_dests);
  get_vecvec(in, p.comm.xseg_dests);

  get_vec(in, p.solve.tg.tasks);
  get_vecvec(in, p.solve.tg.inputs);
  get_vecvec(in, p.solve.tg.prec);
  get_vec(in, p.solve.tg.cblk_task);
  get_vec(in, p.solve.tg.blok_task);
  get_vec(in, p.solve.tg.depth);
  get_raw(in, p.solve.sched.nprocs);
  get_vec(in, p.solve.sched.proc);
  get_vec(in, p.solve.sched.prio);
  get_vec(in, p.solve.sched.start);
  get_vec(in, p.solve.sched.end);
  get_vecvec(in, p.solve.sched.kp);
  get_vec(in, p.solve.sched.split);
  get_raw(in, p.solve.sched.makespan);
  get_raw(in, p.solve.sim.makespan);
  get_vec(in, p.solve.sim.busy);
  get_vec(in, p.solve.sim.idle);
  get_raw(in, p.solve.sim.comm_entries);
  get_raw(in, p.solve.sim.messages);
  get_raw(in, p.solve.sim.aggregate_seconds);

  get_raw(in, p.stats);

  // The permutation vectors are the one structure the static verifier does
  // not re-derive; check them here.
  PASTIX_CHECK(p.order.perm.n() == p.order.permuted.n,
               "plan file corrupt: permutation/pattern size mismatch");
  // Full static verification: a corrupted payload is rejected with a named
  // diagnostic here, instead of undefined behavior deep inside a
  // factorization driven by the broken schedule.
  const verify::Report rep = verify::check_plan(p);
  if (!rep.ok()) {
    const char* name = "unknown";
    for (const auto& d : rep.diagnostics)
      if (d.severity == verify::Severity::kError) {
        name = verify::code_name(d.code);
        break;
      }
    throw Error(std::string("plan file rejected by static verification [") +
                name + "]: " + rep.summary());
  }
  return plan;
}

PlanPtr load_plan(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PASTIX_CHECK(in.is_open(), "cannot open plan file: " + path);
  return load_plan(in);
}

} // namespace pastix
