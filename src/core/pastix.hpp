#pragma once
//
// Public API — the PaStiX pipeline as one object.
//
//   pastix::Solver<double> solver(options);
//   solver.analyze(A);      // ordering -> block symbolic -> split ->
//                           // proportional mapping -> static scheduling
//   solver.factorize();     // parallel fan-in LDL^t over the rt runtime
//   auto x = solver.solve(b);
//
// The solver works in the user's original numbering; permutations are
// applied internally.  T is double or std::complex<double>.
//
#include "map/scheduler.hpp"
#include "model/cost_model.hpp"
#include "order/ordering.hpp"
#include "simul/simulate.hpp"
#include "solver/fanin.hpp"
#include "symbolic/split.hpp"

#include <memory>
#include <optional>

namespace pastix {

struct SolverOptions {
  idx_t nprocs = 1;               ///< ranks of the message-passing runtime
  OrderingOptions ordering;       ///< hybrid ND + Halo-AMD by default
  SplitOptions split;             ///< blocking size 64 (the paper's setting)
  MappingOptions mapping;         ///< 1D/2D policy and thresholds
  SchedulerOptions scheduler;     ///< greedy earliest-completion mapping
  FaninOptions fanin;             ///< fan-in / fan-both aggregation knob
  CostModel model = default_cost_model();
};

struct SolverStats {
  big_t nnz_l = 0;          ///< scalar factor off-diagonal entries (Table 1)
  big_t opc = 0;            ///< scalar operation count (Table 1)
  big_t nnz_blocks = 0;     ///< stored entries incl. amalgamation fill
  idx_t ncblk = 0, nblok = 0, ntask = 0;
  idx_t n_2d_cblks = 0;     ///< supernodes distributed 2D
  double total_flops = 0;   ///< block-level flops actually performed
  double predicted_time = 0;///< simulated parallel factorization seconds
  double factor_seconds = 0;///< wall time of the last factorize()
};

template <class T>
class Solver {
public:
  explicit Solver(SolverOptions opt = {}) : opt_(std::move(opt)) {
    PASTIX_CHECK(opt_.nprocs >= 1, "nprocs must be positive");
    opt_.mapping.nprocs = opt_.nprocs;
  }

  /// Pre-processing chain.  Keeps a permuted copy of the matrix.
  void analyze(const SymSparse<T>& a) {
    a.validate();
    order_ = compute_ordering(a.pattern, opt_.ordering);
    permuted_ = permute(a, order_.perm);
    symbol_ = split_symbol(
        block_symbolic_factorization(order_.permuted, order_.rangtab),
        opt_.split);
    cand_ = proportional_mapping(symbol_, opt_.model, opt_.mapping);
    tg_ = build_task_graph(symbol_, cand_, opt_.model);
    sched_ = static_schedule(tg_, cand_, opt_.model, opt_.nprocs,
                             opt_.scheduler);
    const SimResult sim = simulate_schedule(tg_, sched_, opt_.model);

    stats_ = SolverStats{};
    stats_.nnz_l = order_.scalar.nnz_l;
    stats_.opc = order_.scalar.opc;
    stats_.nnz_blocks = symbol_.nnz_blocks();
    stats_.ncblk = symbol_.ncblk;
    stats_.nblok = symbol_.nblok();
    stats_.ntask = tg_.ntask();
    for (const auto& c : cand_.cblk)
      if (c.dist == DistType::k2D) stats_.n_2d_cblks++;
    stats_.total_flops = tg_.total_flops();
    stats_.predicted_time = sim.makespan;

    numeric_ = std::make_unique<FaninSolver<T>>(permuted_, symbol_, tg_,
                                                sched_, opt_.fanin);
    comm_ = std::make_unique<rt::Comm>(static_cast<int>(opt_.nprocs));
    analyzed_ = true;
  }

  /// Parallel numerical factorization; returns (and records) wall seconds.
  double factorize() {
    PASTIX_CHECK(analyzed_, "analyze() must run before factorize()");
    stats_.factor_seconds = numeric_->factorize(*comm_);
    return stats_.factor_seconds;
  }

  /// Solve A x = b in the caller's original numbering.
  [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) {
    PASTIX_CHECK(analyzed_, "analyze() must run before solve()");
    const std::vector<T> pb = permute_vector(b, order_.perm);
    const std::vector<T> px = numeric_->solve(*comm_, pb);
    return unpermute_vector(px, order_.perm);
  }

  /// Solve with `steps` rounds of iterative refinement (x += A^{-1}(b-Ax)
  /// using the existing factor), sharpening the residual on matrices where
  /// amalgamation fill and summation order cost a few digits.
  [[nodiscard]] std::vector<T> solve_refined(const std::vector<T>& b,
                                             int steps = 1) {
    std::vector<T> x = solve(b);
    std::vector<T> ax(b.size());
    for (int s = 0; s < steps; ++s) {
      // r = b - A x in the permuted frame (the permuted copy is on hand).
      const std::vector<T> pxv = permute_vector(x, order_.perm);
      spmv(permuted_, pxv.data(), ax.data());
      std::vector<T> pr = permute_vector(b, order_.perm);
      for (std::size_t i = 0; i < pr.size(); ++i) pr[i] -= ax[i];
      const std::vector<T> pdx = numeric_->solve(*comm_, pr);
      const std::vector<T> dx = unpermute_vector(pdx, order_.perm);
      for (std::size_t i = 0; i < x.size(); ++i) x[i] += dx[i];
    }
    return x;
  }

  /// Solve for several right-hand sides, reusing the factorization.
  [[nodiscard]] std::vector<std::vector<T>> solve_many(
      const std::vector<std::vector<T>>& rhs) {
    std::vector<std::vector<T>> xs;
    xs.reserve(rhs.size());
    for (const auto& b : rhs) xs.push_back(solve(b));
    return xs;
  }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }
  [[nodiscard]] const SolverOptions& options() const { return opt_; }
  [[nodiscard]] const OrderingResult& ordering() const { return order_; }
  [[nodiscard]] const SymbolMatrix& symbol() const { return symbol_; }
  [[nodiscard]] const CandidateMapping& candidates() const { return cand_; }
  [[nodiscard]] const TaskGraph& task_graph() const { return tg_; }
  [[nodiscard]] const Schedule& schedule() const { return sched_; }
  [[nodiscard]] const SymSparse<T>& permuted_matrix() const { return permuted_; }
  [[nodiscard]] const FaninSolver<T>& numeric() const {
    PASTIX_CHECK(analyzed_, "analyze() must run first");
    return *numeric_;
  }

private:
  SolverOptions opt_;
  OrderingResult order_;
  SymSparse<T> permuted_;
  SymbolMatrix symbol_;
  CandidateMapping cand_;
  TaskGraph tg_;
  Schedule sched_;
  SolverStats stats_;
  std::unique_ptr<FaninSolver<T>> numeric_;
  std::unique_ptr<rt::Comm> comm_;
  bool analyzed_ = false;
};

} // namespace pastix
