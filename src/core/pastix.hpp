#pragma once
//
// Public API — the PaStiX pipeline as one object.
//
//   pastix::Solver<double> solver(options);
//   solver.analyze(A);      // ordering -> block symbolic -> split ->
//                           // proportional mapping -> static scheduling
//   solver.factorize();     // parallel fan-in LDL^t over the rt runtime
//   auto x = solver.solve(b);
//
// The solver works in the user's original numbering; permutations are
// applied internally.  T is double or std::complex<double>.
//
#include "map/scheduler.hpp"
#include "model/cost_model.hpp"
#include "order/ordering.hpp"
#include "simul/simulate.hpp"
#include "solver/fanin.hpp"
#include "symbolic/split.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <optional>

namespace pastix {

struct SolverOptions {
  idx_t nprocs = 1;               ///< ranks of the message-passing runtime
  OrderingOptions ordering;       ///< hybrid ND + Halo-AMD by default
  SplitOptions split;             ///< blocking size 64 (the paper's setting)
  MappingOptions mapping;         ///< 1D/2D policy and thresholds
  SchedulerOptions scheduler;     ///< greedy earliest-completion mapping
  FaninOptions fanin;             ///< fan-in / fan-both aggregation knob
  CostModel model = default_cost_model();
};

struct SolverStats {
  big_t nnz_l = 0;          ///< scalar factor off-diagonal entries (Table 1)
  big_t opc = 0;            ///< scalar operation count (Table 1)
  big_t nnz_blocks = 0;     ///< stored entries incl. amalgamation fill
  idx_t ncblk = 0, nblok = 0, ntask = 0;
  idx_t n_2d_cblks = 0;     ///< supernodes distributed 2D
  double total_flops = 0;   ///< block-level flops actually performed
  double predicted_time = 0;///< simulated parallel factorization seconds
  double factor_seconds = 0;///< wall time of the last factorize()
  FactorStatus factor_status;  ///< structured outcome of the last factorize()
};

/// Outcome of Solver::solve_adaptive — the solution plus how refinement
/// went, so callers can distinguish "clean", "recovered by perturb+refine",
/// and "structurally reported failure" without parsing exceptions.
template <class T>
struct AdaptiveSolveResult {
  std::vector<T> x;            ///< best iterate found (lowest backward error)
  double backward_error = std::numeric_limits<double>::infinity();
  int steps = 0;               ///< refinement corrections applied
  bool converged = false;      ///< backward_error reached the target
  bool diverged = false;       ///< refinement made things worse and stopped
};

template <class T>
class Solver {
public:
  explicit Solver(SolverOptions opt = {}) : opt_(std::move(opt)) {
    PASTIX_CHECK(opt_.nprocs >= 1, "nprocs must be positive");
    opt_.mapping.nprocs = opt_.nprocs;
  }

  /// Pre-processing chain.  Keeps a permuted copy of the matrix.
  void analyze(const SymSparse<T>& a) {
    a.validate();
    order_ = compute_ordering(a.pattern, opt_.ordering);
    permuted_ = permute(a, order_.perm);
    symbol_ = split_symbol(
        block_symbolic_factorization(order_.permuted, order_.rangtab),
        opt_.split);
    cand_ = proportional_mapping(symbol_, opt_.model, opt_.mapping);
    tg_ = build_task_graph(symbol_, cand_, opt_.model);
    sched_ = static_schedule(tg_, cand_, opt_.model, opt_.nprocs,
                             opt_.scheduler);
    const SimResult sim = simulate_schedule(tg_, sched_, opt_.model);

    stats_ = SolverStats{};
    stats_.nnz_l = order_.scalar.nnz_l;
    stats_.opc = order_.scalar.opc;
    stats_.nnz_blocks = symbol_.nnz_blocks();
    stats_.ncblk = symbol_.ncblk;
    stats_.nblok = symbol_.nblok();
    stats_.ntask = tg_.ntask();
    for (const auto& c : cand_.cblk)
      if (c.dist == DistType::k2D) stats_.n_2d_cblks++;
    stats_.total_flops = tg_.total_flops();
    stats_.predicted_time = sim.makespan;

    numeric_ = std::make_unique<FaninSolver<T>>(permuted_, symbol_, tg_,
                                                sched_, opt_.fanin);
    comm_ = std::make_unique<rt::Comm>(static_cast<int>(opt_.nprocs));
    analyzed_ = true;
  }

  /// Parallel numerical factorization; returns (and records) wall seconds.
  /// stats().factor_status carries the structured outcome — perturbation
  /// counts and breakdown locations, in the caller's *original* numbering —
  /// even when this throws.
  double factorize() {
    PASTIX_CHECK(analyzed_, "analyze() must run before factorize()");
    try {
      stats_.factor_seconds = numeric_->factorize(*comm_);
    } catch (...) {
      stats_.factor_status = numeric_->factor_status();
      localize_status(stats_.factor_status);
      throw;
    }
    stats_.factor_status = numeric_->factor_status();
    localize_status(stats_.factor_status);
    return stats_.factor_seconds;
  }

  /// Solve A x = b in the caller's original numbering.
  [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) {
    PASTIX_CHECK(analyzed_, "analyze() must run before solve()");
    const std::vector<T> pb = permute_vector(b, order_.perm);
    const std::vector<T> px = numeric_->solve(*comm_, pb);
    return unpermute_vector(px, order_.perm);
  }

  /// Solve with up to `steps` rounds of iterative refinement
  /// (x += A^{-1}(b-Ax) using the existing factor), sharpening the residual
  /// on matrices where amalgamation fill and summation order cost a few
  /// digits.  The whole iteration runs in the permuted frame (b is permuted
  /// once, not once per step) and exits early as soon as the residual stops
  /// improving.
  [[nodiscard]] std::vector<T> solve_refined(const std::vector<T>& b,
                                             int steps = 1) {
    PASTIX_CHECK(analyzed_, "analyze() must run before solve()");
    const std::vector<T> pb = permute_vector(b, order_.perm);
    std::vector<T> px = numeric_->solve(*comm_, pb);
    std::vector<T> ax(pb.size()), pr(pb.size());
    double prev_norm = std::numeric_limits<double>::infinity();
    for (int s = 0; s < steps; ++s) {
      spmv(permuted_, px.data(), ax.data());
      double rnorm = 0;
      for (std::size_t i = 0; i < pr.size(); ++i) {
        pr[i] = pb[i] - ax[i];
        rnorm += abs2(pr[i]);
      }
      rnorm = std::sqrt(rnorm);
      if (rnorm == 0 || rnorm >= prev_norm) break;  // converged or stalled
      prev_norm = rnorm;
      const std::vector<T> pdx = numeric_->solve(*comm_, pr);
      for (std::size_t i = 0; i < px.size(); ++i) px[i] += pdx[i];
    }
    return unpermute_vector(px, order_.perm);
  }

  /// Robust solve: iterative refinement driven to a componentwise backward
  /// error target, with divergence detection and automatic escalation of
  /// the step budget when the factorization needed pivot perturbations
  /// (a perturbed factor is a preconditioner for the true A, so more — not
  /// fewer — corrections are expected).  Never throws on stagnation: the
  /// structured result reports how close it got.
  [[nodiscard]] AdaptiveSolveResult<T> solve_adaptive(
      const std::vector<T>& b, double target = 1e-12) {
    PASTIX_CHECK(analyzed_, "analyze() must run before solve()");
    const bool perturbed = stats_.factor_status.perturbations > 0;
    const int max_steps = perturbed ? 40 : 8;

    const std::vector<T> pb = permute_vector(b, order_.perm);
    std::vector<T> px = numeric_->solve(*comm_, pb);
    std::vector<T> ax(pb.size()), pr(pb.size());

    AdaptiveSolveResult<T> res;
    std::vector<T> best_px = px;
    int stagnant = 0;
    for (int s = 0; s <= max_steps; ++s) {
      const double berr =
          componentwise_backward_error(permuted_, px, pb);
      if (berr < res.backward_error) {
        res.backward_error = berr;
        best_px = px;
        stagnant = 0;
      } else {
        // Diverging (clearly worse) or stagnating (no progress): stop after
        // a couple of non-improving steps and keep the best iterate.
        if (berr > 2 * res.backward_error) {
          res.diverged = true;
          break;
        }
        if (++stagnant >= 2) break;
      }
      if (res.backward_error <= target) {
        res.converged = true;
        break;
      }
      if (s == max_steps) break;
      spmv(permuted_, px.data(), ax.data());
      for (std::size_t i = 0; i < pr.size(); ++i) pr[i] = pb[i] - ax[i];
      const std::vector<T> pdx = numeric_->solve(*comm_, pr);
      for (std::size_t i = 0; i < px.size(); ++i) px[i] += pdx[i];
      res.steps = s + 1;
    }
    res.x = unpermute_vector(best_px, order_.perm);
    return res;
  }

  /// Solve for several right-hand sides, reusing the factorization.
  [[nodiscard]] std::vector<std::vector<T>> solve_many(
      const std::vector<std::vector<T>>& rhs) {
    std::vector<std::vector<T>> xs;
    xs.reserve(rhs.size());
    for (const auto& b : rhs) xs.push_back(solve(b));
    return xs;
  }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }
  [[nodiscard]] const SolverOptions& options() const { return opt_; }
  [[nodiscard]] const OrderingResult& ordering() const { return order_; }
  [[nodiscard]] const SymbolMatrix& symbol() const { return symbol_; }
  [[nodiscard]] const CandidateMapping& candidates() const { return cand_; }
  [[nodiscard]] const TaskGraph& task_graph() const { return tg_; }
  [[nodiscard]] const Schedule& schedule() const { return sched_; }
  [[nodiscard]] const SymSparse<T>& permuted_matrix() const { return permuted_; }
  [[nodiscard]] const FaninSolver<T>& numeric() const {
    PASTIX_CHECK(analyzed_, "analyze() must run first");
    return *numeric_;
  }
  /// The underlying communicator — exposed so tests and chaos harnesses can
  /// arm fault injection / receive deadlines on the real pipeline.
  [[nodiscard]] rt::Comm& comm() {
    PASTIX_CHECK(analyzed_, "analyze() must run first");
    return *comm_;
  }

private:
  /// The factorization records breakdown columns in the permuted numbering
  /// it works in; translate them back so users can find the offending
  /// unknowns in their own matrix.  "First" stays first-in-elimination-order.
  void localize_status(FactorStatus& fs) const {
    const auto& invp = order_.perm.invp;
    const auto back = [&](idx_t c) {
      return (c == kNone || c >= static_cast<idx_t>(invp.size()))
                 ? c
                 : invp[static_cast<std::size_t>(c)];
    };
    fs.first_breakdown = back(fs.first_breakdown);
    fs.nonfinite_at = back(fs.nonfinite_at);
    for (auto& e : fs.events) e.column = back(e.column);
  }

  SolverOptions opt_;
  OrderingResult order_;
  SymSparse<T> permuted_;
  SymbolMatrix symbol_;
  CandidateMapping cand_;
  TaskGraph tg_;
  Schedule sched_;
  SolverStats stats_;
  std::unique_ptr<FaninSolver<T>> numeric_;
  std::unique_ptr<rt::Comm> comm_;
  bool analyzed_ = false;
};

} // namespace pastix
