#pragma once
//
// Public API — a thin facade over the two-layer architecture:
//
//   pastix::Solver<double> solver(options);
//   solver.analyze(A);        // build (or adopt) an immutable AnalysisPlan
//   solver.factorize();       // parallel fan-in LDL^t over the rt runtime
//   auto x = solver.solve(b);
//   ...                       // time stepping / Newton loop:
//   solver.refactorize(A2);   // same pattern -> values-only refresh, reuses
//                             // ordering, schedule and every allocation
//
// The analysis artifacts live in a shared AnalysisPlan (core/analysis.hpp):
// produce one with the free function pastix::analyze(pattern, options) and
// hand it to any number of solvers via solver.analyze(A, plan), or persist
// it across runs with core/plan_io.hpp.  The value-dependent state lives in
// a NumericFactor (core/numeric_factor.hpp).
//
// The solver works in the user's original numbering; permutations are
// applied internally.  T is double or std::complex<double>.
//
#include "core/analysis.hpp"
#include "core/numeric_factor.hpp"
#include "verify/verify.hpp"
#include "simul/runtime_trace.hpp"
#include "simul/trace.hpp"
#include "support/timer.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <optional>

namespace pastix {

struct SolverStats {
  big_t nnz_l = 0;          ///< scalar factor off-diagonal entries (Table 1)
  big_t opc = 0;            ///< scalar operation count (Table 1)
  big_t nnz_blocks = 0;     ///< stored entries incl. amalgamation fill
  idx_t ncblk = 0, nblok = 0, ntask = 0;
  idx_t n_2d_cblks = 0;     ///< supernodes distributed 2D
  double total_flops = 0;   ///< block-level flops actually performed
  double predicted_time = 0;///< simulated parallel factorization seconds
  double factor_seconds = 0;///< wall time of the last factorize()
  FactorStatus factor_status;  ///< structured outcome of the last factorize()
  idx_t solve_many_rhs = 0; ///< right-hand sides of the last solve_many()
  double solve_many_seconds = 0;  ///< wall time of the last solve_many()
  idx_t solve_many_panel = 0;  ///< widest RHS panel of the last solve_many()
  /// Throughput of the last solve_many() in solves per second (the panel
  /// path's headline number; 0 until a solve_many ran).
  [[nodiscard]] double solve_many_per_second() const {
    return solve_many_seconds > 0 ? solve_many_rhs / solve_many_seconds : 0.0;
  }
  bool traced = false;      ///< the last factorize() ran with tracing on
  TraceComparison trace;    ///< predicted-vs-actual report (when traced)
  // Crash-recovery cost of the last factorize() (zero when resilience was
  // off or no rank died) — see DESIGN.md §10.
  idx_t restarts = 0;            ///< rank restarts survived
  big_t replayed_tasks = 0;      ///< K_p entries re-executed after restores
  big_t replayed_messages = 0;   ///< messages re-delivered from sender logs
  big_t checkpoint_bytes = 0;    ///< live checkpoint footprint at end of run
  std::vector<rt::RestartRecord> restart_events;  ///< per-restart detail
  // Data-integrity layer of the last factorize() (DESIGN.md §15).
  big_t integrity_detected = 0;     ///< message checksum mismatches caught
  big_t integrity_redelivered = 0;  ///< messages repaired from sender logs
  big_t checkpoint_fallbacks = 0;   ///< corrupt-checkpoint ladder descents
  big_t scrubbed_bloks = 0;         ///< factor blocks verified by scrubs
};

/// Outcome of Solver::solve_adaptive — the solution plus how refinement
/// went, so callers can distinguish "clean", "recovered by perturb+refine",
/// and "structurally reported failure" without parsing exceptions.
template <class T>
struct AdaptiveSolveResult {
  std::vector<T> x;            ///< best iterate found (lowest backward error)
  double backward_error = std::numeric_limits<double>::infinity();
  int steps = 0;               ///< refinement corrections applied
  bool converged = false;      ///< backward_error reached the target
  bool diverged = false;       ///< refinement made things worse and stopped
};

template <class T>
class Solver {
public:
  explicit Solver(SolverOptions opt = {}) : opt_(std::move(opt)) {
    PASTIX_CHECK(opt_.nprocs >= 1, "nprocs must be positive");
    opt_.mapping.nprocs = opt_.nprocs;
  }

  /// Pre-processing chain: runs the free analyze() on A's pattern and
  /// attaches the numeric layer.
  void analyze(const SymSparse<T>& a) {
    a.validate();
    attach(pastix::analyze(a.pattern, opt_), a);
  }

  /// Adopt a precomputed plan (from pastix::analyze, another solver, or
  /// load_plan) instead of re-running the analysis.  A's pattern must match
  /// the plan's fingerprint, and the solver's nprocs and fan-in
  /// partial_chunk must match what the plan was built for.
  void analyze(const SymSparse<T>& a, PlanPtr plan) {
    a.validate();
    PASTIX_CHECK(plan != nullptr, "null analysis plan");
    // Strict mode: an adopted plan comes from outside this solver (another
    // solver, a file, a refactored scheduler) — prove it safe before any
    // numeric work trusts its schedule.  The fresh-analysis overload
    // verifies inside the free analyze() instead.
    if (opt_.verify_plan) verify::require_valid(*plan, "Solver::analyze");
    attach(std::move(plan), a);
  }

  /// Parallel numerical factorization; returns (and records) wall seconds.
  /// stats().factor_status carries the structured outcome — perturbation
  /// counts and breakdown locations, in the caller's *original* numbering —
  /// even when this throws.
  double factorize() {
    PASTIX_CHECK(analyzed_, "analyze() must run before factorize()");
    try {
      stats_.factor_seconds = numeric_->factorize();
    } catch (...) {
      stats_.factor_status = numeric_->fanin().factor_status();
      localize_status(stats_.factor_status);
      throw;
    }
    stats_.factor_status = numeric_->fanin().factor_status();
    localize_status(stats_.factor_status);
    update_recovery_stats();
    update_trace_stats();
    return stats_.factor_seconds;
  }

  /// Arm (or disarm) rank-crash recovery for subsequent factorize() calls
  /// (DESIGN.md §10): periodic per-rank checkpoints plus sender-side
  /// message logging, so a rank killed mid-factorization restarts from its
  /// last checkpoint and the recovered factor is bitwise identical to a
  /// fault-free run.  stats() reports restarts / replayed work afterwards.
  void set_resilience(const rt::ResilienceOptions& opt) {
    PASTIX_CHECK(analyzed_, "analyze() must run before set_resilience()");
    numeric_->set_resilience(opt);
  }

  /// Arm seeded silent-data-corruption injection (message / checkpoint /
  /// factor-block bit flips — DESIGN.md §15).  Chaos testing only.
  void set_sdc(const rt::SdcInjection& s) {
    PASTIX_CHECK(analyzed_, "analyze() must run before set_sdc()");
    numeric_->set_sdc(s);
  }

  /// Toggle the data-integrity layer (message checksums + factor scrubs)
  /// independently of resilience — the overhead bench's baseline axis.
  void set_integrity(bool on) {
    PASTIX_CHECK(analyzed_, "analyze() must run before set_integrity()");
    numeric_->fanin().set_integrity(on);
    numeric_->comm().set_message_checksums(on);
  }

  /// On-demand factor scrub (`solve_file --scrub`): verify every committed
  /// factor block against its commit-time CRC32C.  Returns the number of
  /// blocks verified; throws rt::IntegrityError naming the first corrupt
  /// block.
  std::uint64_t scrub() {
    PASTIX_CHECK(analyzed_, "analyze() must run before scrub()");
    return numeric_->fanin().scrub();
  }

  /// Toggle runtime execution tracing (DESIGN.md §9).  While enabled, every
  /// factorize() records a per-rank event timeline, and stats().trace holds
  /// the predicted-vs-actual comparison afterwards.  Off by default; off
  /// costs one branch per event site.
  void enable_tracing(bool on) {
    PASTIX_CHECK(analyzed_, "analyze() must run before enable_tracing()");
    numeric_->enable_tracing(on);
  }

  /// The measured execution timeline of the last traced factorize() (plus
  /// any solves that followed it).  Requires enable_tracing(true) first.
  [[nodiscard]] RuntimeTrace runtime_trace() const {
    PASTIX_CHECK(analyzed_, "analyze() must run first");
    const rt::TraceRecorder* rec = numeric_->tracer();
    PASTIX_CHECK(rec != nullptr, "enable_tracing(true) must run first");
    return build_runtime_trace(*rec);
  }

  /// The simulated timeline the static schedule predicts — the reference
  /// side of the predicted-vs-actual comparison.
  [[nodiscard]] ScheduleTrace predicted_trace() const {
    const AnalysisPlan& p = checked_plan();
    return trace_schedule(p.tg, p.sched, p.options.model);
  }

  /// Numeric-only refactorization: when A has the pattern this solver was
  /// analyzed for (fingerprint check), refresh the values in place and
  /// factorize — no ordering, symbolic factorization, scheduling or
  /// allocation.  Falls back to a full analyze() when the pattern changed
  /// (or nothing was analyzed yet).  Returns factorization wall seconds.
  double refactorize(const SymSparse<T>& a) {
    if (!analyzed_ || fingerprint_pattern(a.pattern) != plan_->fingerprint) {
      analyze(a);
    } else {
      PASTIX_CHECK(opt_.nprocs == plan_->nprocs(),
                   "refactorize: solver nprocs does not match the analysis "
                   "plan — rebuild the plan for this processor count");
      a.validate();
      numeric_->refill(a);
    }
    return factorize();
  }

  /// Solve A x = b in the caller's original numbering.
  [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) {
    PASTIX_CHECK(analyzed_, "analyze() must run before solve()");
    const std::vector<T> pb = permute_vector(b, perm());
    const std::vector<T> px = numeric_->fanin().solve(numeric_->comm(), pb);
    return unpermute_vector(px, perm());
  }

  /// Solve with up to `steps` rounds of iterative refinement
  /// (x += A^{-1}(b-Ax) using the existing factor), sharpening the residual
  /// on matrices where amalgamation fill and summation order cost a few
  /// digits.  The whole iteration runs in the permuted frame (b is permuted
  /// once, not once per step), exits early as soon as the residual stops
  /// improving, and returns the lowest-residual iterate found.
  [[nodiscard]] std::vector<T> solve_refined(const std::vector<T>& b,
                                             int steps = 1) {
    PASTIX_CHECK(analyzed_, "analyze() must run before solve()");
    const std::vector<T> pb = permute_vector(b, perm());
    std::vector<T> px = numeric_->fanin().solve(numeric_->comm(), pb);
    const auto r = refine_driver(
        pb, std::move(px), steps, /*target=*/0.0, /*stagnant_limit=*/1,
        /*diverge_factor=*/0.0,
        [](const std::vector<T>&, const std::vector<T>& pr) {
          double rnorm = 0;
          for (const T& v : pr) rnorm += abs2(v);
          return std::sqrt(rnorm);
        });
    return unpermute_vector(r.px, perm());
  }

  /// Robust solve: iterative refinement driven to a componentwise backward
  /// error target, with divergence detection and automatic escalation of
  /// the step budget when the factorization needed pivot perturbations
  /// (a perturbed factor is a preconditioner for the true A, so more — not
  /// fewer — corrections are expected).  Never throws on stagnation: the
  /// structured result reports how close it got.
  [[nodiscard]] AdaptiveSolveResult<T> solve_adaptive(
      const std::vector<T>& b, double target = 1e-12) {
    PASTIX_CHECK(analyzed_, "analyze() must run before solve()");
    const bool perturbed = stats_.factor_status.perturbations > 0;
    const int max_steps = perturbed ? 40 : 8;

    const std::vector<T> pb = permute_vector(b, perm());
    std::vector<T> px = numeric_->fanin().solve(numeric_->comm(), pb);
    const SymSparse<T>& pa = numeric_->permuted();
    const auto r = refine_driver(
        pb, std::move(px), max_steps, target, /*stagnant_limit=*/2,
        /*diverge_factor=*/2.0,
        [&](const std::vector<T>& x, const std::vector<T>& pr) {
          return componentwise_backward_error(pa, x, pb, pr);
        });

    AdaptiveSolveResult<T> res;
    res.x = unpermute_vector(r.px, perm());
    res.backward_error = r.error;
    res.steps = r.steps;
    res.converged = r.converged;
    res.diverged = r.diverged;
    return res;
  }

  /// Right-hand sides batched into one solve panel (bounds the per-rank
  /// working-panel memory; a full batch is chunked at this width).
  static constexpr idx_t kSolvePanelWidth = 64;

  /// Solve for several right-hand sides, reusing the factorization and one
  /// set of staging panels across the whole batch.  The sides are blocked
  /// into n x w column-major panels (w <= kSolvePanelWidth) and pushed
  /// through the scheduled panel solve, so the triangular sweeps run on the
  /// BLAS-3 kernels and the message count is independent of the batch size.
  [[nodiscard]] std::vector<std::vector<T>> solve_many(
      const std::vector<std::vector<T>>& rhs) {
    PASTIX_CHECK(analyzed_, "analyze() must run before solve()");
    Timer timer;
    const auto n = static_cast<std::size_t>(symbol().n);
    const auto& pm = perm().perm;
    std::vector<std::vector<T>> xs(rhs.size());
    std::vector<T>& pb = numeric_->rhs_panel();
    std::vector<T>& px = numeric_->sol_panel();
    idx_t widest = 0;
    for (std::size_t r0 = 0; r0 < rhs.size();
         r0 += static_cast<std::size_t>(kSolvePanelWidth)) {
      const auto w = static_cast<idx_t>(
          std::min<std::size_t>(static_cast<std::size_t>(kSolvePanelWidth),
                                rhs.size() - r0));
      widest = std::max(widest, w);
      pb.resize(n * static_cast<std::size_t>(w));
      px.resize(n * static_cast<std::size_t>(w));
      for (idx_t c = 0; c < w; ++c) {
        const std::vector<T>& b = rhs[r0 + static_cast<std::size_t>(c)];
        PASTIX_CHECK(b.size() == n, "rhs size mismatch");
        T* col = pb.data() + static_cast<std::size_t>(c) * n;
        for (std::size_t i = 0; i < n; ++i)
          col[static_cast<std::size_t>(pm[i])] = b[i];
      }
      numeric_->fanin().solve_panel(numeric_->comm(), pb.data(), px.data(), w);
      for (idx_t c = 0; c < w; ++c) {
        std::vector<T>& x = xs[r0 + static_cast<std::size_t>(c)];
        x.resize(n);
        const T* col = px.data() + static_cast<std::size_t>(c) * n;
        for (std::size_t i = 0; i < n; ++i)
          x[i] = col[static_cast<std::size_t>(pm[i])];
      }
    }
    stats_.solve_many_rhs = static_cast<idx_t>(rhs.size());
    stats_.solve_many_panel = widest;
    stats_.solve_many_seconds = timer.seconds();
    return xs;
  }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }
  [[nodiscard]] const SolverOptions& options() const { return opt_; }
  /// The (shared) analysis plan this solver is attached to.
  [[nodiscard]] const PlanPtr& plan() const {
    PASTIX_CHECK(analyzed_, "analyze() must run first");
    return plan_;
  }
  [[nodiscard]] const OrderingResult& ordering() const {
    return checked_plan().order;
  }
  [[nodiscard]] const SymbolMatrix& symbol() const {
    return checked_plan().symbol;
  }
  [[nodiscard]] const CandidateMapping& candidates() const {
    return checked_plan().cand;
  }
  [[nodiscard]] const TaskGraph& task_graph() const {
    return checked_plan().tg;
  }
  [[nodiscard]] const Schedule& schedule() const {
    return checked_plan().sched;
  }
  [[nodiscard]] const SymSparse<T>& permuted_matrix() const {
    PASTIX_CHECK(analyzed_, "analyze() must run first");
    return numeric_->permuted();
  }
  [[nodiscard]] const FaninSolver<T>& numeric() const {
    PASTIX_CHECK(analyzed_, "analyze() must run first");
    return numeric_->fanin();
  }
  /// The underlying communicator — exposed so tests and chaos harnesses can
  /// arm fault injection / receive deadlines on the real pipeline.  It is
  /// persistent: refactorize() reuses it across value refreshes.
  [[nodiscard]] rt::Comm& comm() {
    PASTIX_CHECK(analyzed_, "analyze() must run first");
    return numeric_->comm();
  }
  [[nodiscard]] const rt::Comm& comm() const {
    PASTIX_CHECK(analyzed_, "analyze() must run first");
    return numeric_->comm();
  }

private:
  [[nodiscard]] const Permutation& perm() const { return plan_->order.perm; }

  [[nodiscard]] const AnalysisPlan& checked_plan() const {
    PASTIX_CHECK(analyzed_, "analyze() must run first");
    return *plan_;
  }

  /// Bind this solver to `plan` and fill the numeric layer from `a`.
  void attach(PlanPtr plan, const SymSparse<T>& a) {
    PASTIX_CHECK(fingerprint_pattern(a.pattern) == plan->fingerprint,
                 "matrix pattern does not match the analysis plan");
    PASTIX_CHECK(opt_.nprocs == plan->nprocs(),
                 "solver nprocs does not match the analysis plan");
    PASTIX_CHECK(opt_.fanin.partial_chunk == plan->comm.partial_chunk,
                 "fanin.partial_chunk does not match the plan's "
                 "communication plan");
    plan_ = std::move(plan);
    numeric_ = std::make_unique<NumericFactor<T>>(plan_, opt_.fanin);
    numeric_->refill(a);

    stats_ = SolverStats{};
    const AnalysisStats& as = plan_->stats;
    stats_.nnz_l = as.nnz_l;
    stats_.opc = as.opc;
    stats_.nnz_blocks = as.nnz_blocks;
    stats_.ncblk = as.ncblk;
    stats_.nblok = as.nblok;
    stats_.ntask = as.ntask;
    stats_.n_2d_cblks = as.n_2d_cblks;
    stats_.total_flops = as.total_flops;
    stats_.predicted_time = as.predicted_time;
    analyzed_ = true;
  }

  /// Shared iterative-refinement driver of solve_refined / solve_adaptive.
  /// Each round computes the permuted residual pr = pb - A px, evaluates
  /// `metric(px, pr)` (the stopping quantity), keeps the best iterate, and
  /// applies one correction px += A^{-1} pr.  Stops on: metric <= target
  /// (converged), `stagnant_limit` consecutive non-improving rounds,
  /// metric > diverge_factor * best (diverged; 0 disables), or the step
  /// budget.
  struct RefineResult {
    std::vector<T> px;      ///< best iterate (lowest metric seen)
    double error = std::numeric_limits<double>::infinity();
    int steps = 0;          ///< corrections applied
    bool converged = false;
    bool diverged = false;
  };

  template <class Metric>
  RefineResult refine_driver(const std::vector<T>& pb, std::vector<T> px,
                             int max_steps, double target, int stagnant_limit,
                             double diverge_factor, Metric&& metric) {
    const SymSparse<T>& pa = numeric_->permuted();
    FaninSolver<T>& fanin = numeric_->fanin();
    rt::Comm& comm = numeric_->comm();

    RefineResult res;
    res.px = px;
    std::vector<T> ax(pb.size()), pr(pb.size()), pdx;
    int stagnant = 0;
    for (int s = 0; s <= max_steps; ++s) {
      spmv(pa, px.data(), ax.data());
      for (std::size_t i = 0; i < pr.size(); ++i) pr[i] = pb[i] - ax[i];
      const double e = metric(px, pr);
      if (e < res.error) {
        res.error = e;
        res.px = px;
        stagnant = 0;
      } else {
        if (diverge_factor > 0 && e > diverge_factor * res.error) {
          res.diverged = true;
          break;
        }
        if (++stagnant >= stagnant_limit) break;
      }
      if (res.error <= target) {
        res.converged = true;
        break;
      }
      if (s == max_steps) break;
      fanin.solve(comm, pr, pdx);
      for (std::size_t i = 0; i < px.size(); ++i) px[i] += pdx[i];
      res.steps = s + 1;
    }
    return res;
  }

  /// Surface the crash-recovery cost of the last factorize().
  void update_recovery_stats() {
    const rt::RecoveryReport& rec = numeric_->fanin().recovery();
    stats_.restarts = static_cast<idx_t>(rec.restarts);
    stats_.replayed_tasks = static_cast<big_t>(rec.replayed_tasks);
    stats_.replayed_messages = static_cast<big_t>(rec.replayed_messages);
    stats_.checkpoint_bytes = static_cast<big_t>(rec.checkpoint_bytes);
    stats_.restart_events = rec.events;
    stats_.integrity_detected = static_cast<big_t>(rec.integrity_detected);
    stats_.integrity_redelivered =
        static_cast<big_t>(rec.integrity_redelivered);
    stats_.checkpoint_fallbacks =
        static_cast<big_t>(rec.checkpoint_fallbacks);
    stats_.scrubbed_bloks =
        static_cast<big_t>(numeric_->fanin().scrubbed_bloks());
  }

  /// Refresh the predicted-vs-actual report after a factorize().  Runs only
  /// when the run was actually traced; kept out of the failure path (a
  /// thrown factorize has no complete timeline to compare).
  void update_trace_stats() {
    stats_.traced = false;
    const rt::TraceRecorder* rec = numeric_->tracer();
    if (!rec || !rec->enabled()) return;
    stats_.trace = compare_traces(predicted_trace(), build_runtime_trace(*rec));
    stats_.traced = true;
  }

  /// The factorization records breakdown columns in the permuted numbering
  /// it works in; translate them back so users can find the offending
  /// unknowns in their own matrix.  "First" stays first-in-elimination-order.
  void localize_status(FactorStatus& fs) const {
    const auto& invp = perm().invp;
    const auto back = [&](idx_t c) {
      return (c == kNone || c >= static_cast<idx_t>(invp.size()))
                 ? c
                 : invp[static_cast<std::size_t>(c)];
    };
    fs.first_breakdown = back(fs.first_breakdown);
    fs.nonfinite_at = back(fs.nonfinite_at);
    for (auto& e : fs.events) e.column = back(e.column);
  }

  SolverOptions opt_;
  PlanPtr plan_;
  std::unique_ptr<NumericFactor<T>> numeric_;
  SolverStats stats_;
  bool analyzed_ = false;
};

} // namespace pastix
