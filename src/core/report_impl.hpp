#pragma once
//
// Implementation of the Markdown analysis report (included by report.hpp).
//
#include <map>
#include <ostream>

#include "simul/runtime_trace.hpp"
#include "simul/trace.hpp"
#include "support/table.hpp"

namespace pastix {

template <class T>
void write_analysis_report(std::ostream& os, const Solver<T>& solver,
                           const ReportOptions& opt) {
  const SolverStats& st = solver.stats();
  const SymbolMatrix& symbol = solver.symbol();
  const CandidateMapping& cand = solver.candidates();
  const TaskGraph& tg = solver.task_graph();
  const Schedule& sched = solver.schedule();
  const idx_t nprocs = solver.options().nprocs;

  os << "# PaStiX analysis report\n\n";
  os << "## Problem\n\n";
  os << "- unknowns: " << symbol.n << "\n";
  os << "- scalar type: " << (std::is_same_v<T, double> ? "double" : "complex")
     << "\n";
  os << "- processors: " << nprocs << "\n\n";

  os << "## Symbolic factorization\n\n";
  os << "- NNZ_L (scalar): " << st.nnz_l << "\n";
  os << "- OPC (scalar): " << fmt_sci(static_cast<double>(st.opc)) << "\n";
  os << "- stored block entries: " << st.nnz_blocks << " ("
     << fmt_fixed(100.0 * (static_cast<double>(st.nnz_blocks) - st.nnz_l -
                           symbol.n) /
                      static_cast<double>(st.nnz_l + symbol.n),
                  1)
     << "% amalgamation fill)\n";
  os << "- column blocks: " << st.ncblk << ", blocks: " << st.nblok << "\n\n";

  os << "## Mapping and scheduling\n\n";
  os << "- tasks: " << st.ntask << " (" << st.n_2d_cblks
     << " supernodes distributed 2D)\n";
  os << "- block-level flops: " << fmt_sci(st.total_flops) << "\n";
  os << "- predicted parallel factorization: "
     << fmt_fixed(st.predicted_time, 4) << " s ("
     << fmt_fixed(st.total_flops / st.predicted_time / 1e9, 2)
     << " Gflop/s)\n\n";

  if (opt.include_distribution_histogram) {
    std::map<idx_t, std::pair<idx_t, idx_t>> by_depth;
    for (const auto& c : cand.cblk) {
      auto& slot = by_depth[c.depth];
      (c.dist == DistType::k2D ? slot.second : slot.first)++;
    }
    os << "### 1D/2D distribution by elimination-tree depth\n\n";
    os << "| depth | 1D | 2D |\n|---|---|---|\n";
    for (const auto& [depth, counts] : by_depth)
      os << "| " << depth << " | " << counts.first << " | " << counts.second
         << " |\n";
    os << "\n";
  }

  if (opt.include_load_balance) {
    const SimResult sim = simulate_schedule(tg, sched, solver.options().model);
    os << "### Simulated load balance\n\n";
    os << "| proc | tasks | busy (s) | busy % |\n|---|---|---|---|\n";
    for (idx_t p = 0; p < nprocs; ++p)
      os << "| " << p << " | "
         << sched.kp[static_cast<std::size_t>(p)].size() << " | "
         << fmt_fixed(sim.busy[static_cast<std::size_t>(p)], 4) << " | "
         << fmt_fixed(100.0 * sim.busy[static_cast<std::size_t>(p)] /
                          std::max(sim.makespan, 1e-300),
                      1)
         << " |\n";
    os << "\n- messages: " << sim.messages << ", entries shipped: "
       << fmt_sci(sim.comm_entries) << "\n\n";
  }

  if (opt.include_gantt) {
    const ScheduleTrace trace =
        trace_schedule(tg, sched, solver.options().model);
    os << "### Timeline\n\n```\n";
    render_gantt(os, trace, opt.gantt_width);
    os << "```\n\n";
  }

  if (st.factor_seconds > 0) {
    os << "## Numerical factorization\n\n";
    os << "- wall time (this host, " << nprocs << " ranks): "
       << fmt_fixed(st.factor_seconds, 3) << " s\n";
    os << "- numerical status: "
       << (st.factor_status.clean() ? "clean (no pivot perturbation)"
                                    : st.factor_status.to_string())
       << "\n";
    if (st.factor_status.perturbations > 0) {
      os << "- statically perturbed pivots: " << st.factor_status.perturbations
         << " (first at column " << st.factor_status.first_breakdown
         << "); run solve_adaptive() to refine against the perturbed "
            "factor\n";
      if (!st.factor_status.events.empty()) {
        os << "\n| column | |pivot| before |\n|---|---|\n";
        for (const auto& e : st.factor_status.events)
          os << "| " << e.column << " | " << fmt_sci(e.before_abs) << " |\n";
        os << "\n";
      }
    }
  }

  if (st.restarts > 0 || st.checkpoint_bytes > 0) {
    os << "## Recovery\n\n";
    if (st.restarts == 0) {
      os << "- resilience armed, no rank crashed (checkpoint footprint "
         << st.checkpoint_bytes << " bytes)\n";
    } else {
      os << "- rank restarts survived: " << st.restarts << "\n";
      os << "- tasks re-executed after checkpoint restores: "
         << st.replayed_tasks << "\n";
      os << "- messages re-delivered from sender logs: "
         << st.replayed_messages << "\n";
      os << "- checkpoint footprint: " << st.checkpoint_bytes << " bytes\n";
      if (!st.restart_events.empty()) {
        os << "\n| rank | resumed at K_p | progress at death | replayed msgs "
              "|\n|---|---|---|---|\n";
        for (const auto& e : st.restart_events)
          os << "| " << e.rank << " | " << e.resumed_at << " | "
             << e.progress_at_death << " | " << e.replayed_messages << " |\n";
      }
      os << "\n(the recovered factor is bitwise identical to a fault-free "
            "run — DESIGN.md §10)\n";
    }
    os << "\n";
  }

  if (st.traced) {
    os << "## Runtime trace (predicted vs actual)\n\n";
    write_trace_comparison(os, st.trace);
  }

  if (st.solve_many_rhs > 0) {
    os << "## Batched solves\n\n";
    os << "- right-hand sides: " << st.solve_many_rhs << "\n";
    os << "- wall time: " << fmt_fixed(st.solve_many_seconds, 3) << " s ("
       << fmt_fixed(st.solve_many_seconds /
                        static_cast<double>(st.solve_many_rhs) * 1e3,
                    3)
       << " ms per solve, factorization and buffers reused)\n";
  }
}

} // namespace pastix
