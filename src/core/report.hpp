#pragma once
//
// Human-readable analysis report: everything the pre-processing chain
// decided about a matrix, as Markdown — for logging solver behaviour in
// applications and for regression-diffing analyses across versions.
//
#include <iosfwd>

#include "core/pastix.hpp"

namespace pastix {

struct ReportOptions {
  bool include_distribution_histogram = true;
  bool include_load_balance = true;
  bool include_gantt = false;  ///< text Gantt (wide); off by default
  int gantt_width = 100;
};

/// Write a Markdown report of an analyzed solver.  Requires analyze() to
/// have run; factorization/solve sections appear when available.
template <class T>
void write_analysis_report(std::ostream& os, const Solver<T>& solver,
                           const ReportOptions& opt = {});

} // namespace pastix

#include "core/report_impl.hpp"
