#pragma once
//
// On-disk persistence of AnalysisPlan — the expensive, pattern-only half of
// the solver.  A plan saved once (e.g. by a pre-processing job) can be
// loaded by any later run on the same pattern and fed straight to
// Solver::analyze(a, plan) or NumericFactor, skipping ordering, symbolic
// factorization, mapping and scheduling entirely.
//
// Format: a little-endian versioned binary stream.  A fixed header (magic,
// format version, and the sizes of every raw-serialized struct) rejects
// files from incompatible builds up front; the payload is the full plan —
// options, fingerprint, ordering, symbol structure, candidate mapping, task
// graph, schedule, simulation numbers and the communication plan — so a
// loaded plan is bit-identical to the analyze() product, including task
// numbering.  Since v5 the stream ends with a CRC32C integrity footer over
// everything before it; load_plan() verifies it before parsing a single
// payload field (throwing rt::IntegrityError on mismatch), then re-validates
// the structural invariants (symbol.validate(), Schedule::validate()) so a
// corrupted file fails with a diagnostic instead of corrupting a
// factorization.  Defense ordering: magic -> version -> checksum -> parse ->
// static verifier (DESIGN.md §15).
//
#include <iosfwd>
#include <string>

#include "core/analysis.hpp"

namespace pastix {

/// Serialize `plan` to a binary stream / file.  Throws pastix::Error on
/// write failure.
void save_plan(const AnalysisPlan& plan, std::ostream& out);
void save_plan(const AnalysisPlan& plan, const std::string& path);

/// Deserialize a plan saved by save_plan.  Throws pastix::Error on a bad
/// magic/version/layout header, a truncated stream, or a payload that fails
/// structural validation.
[[nodiscard]] PlanPtr load_plan(std::istream& in);
[[nodiscard]] PlanPtr load_plan(const std::string& path);

} // namespace pastix
