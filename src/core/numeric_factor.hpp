#pragma once
//
// The numeric layer: value-dependent state of one factorization, built on a
// shared immutable AnalysisPlan.
//
// A NumericFactor owns everything refactorize() reuses across value
// refreshes of a fixed sparsity pattern:
//   - the permuted copy of the matrix plus a precomputed value-scatter map,
//     so later refills move values without re-running the symbolic permute;
//   - the FaninSolver's per-rank factor storage and AUB arenas, allocated
//     once from the plan's structure;
//   - a persistent rt::Comm sized to the plan's processor count.
//
// refill(A) is a values-only operation: it checks A's pattern fingerprint
// against the plan and rewrites the block storage in place.  No ordering,
// symbolic factorization, mapping, scheduling or allocation happens after
// construction — that is the whole point of the plan/factor split.
//
#include <algorithm>
#include <memory>

#include "core/analysis.hpp"
#include "sparse/permute.hpp"

namespace pastix {

template <class T>
class NumericFactor {
public:
  explicit NumericFactor(PlanPtr plan, const FaninOptions& fopt = {})
      : plan_(std::move(plan)),
        fanin_(checked(plan_)->symbol, plan_->tg, plan_->sched, plan_->comm,
               fopt, &plan_->solve),
        comm_(std::make_unique<rt::Comm>(static_cast<int>(plan_->nprocs()))) {}

  NumericFactor(const NumericFactor&) = delete;
  NumericFactor& operator=(const NumericFactor&) = delete;

  /// Values-only refresh from a matrix in the caller's *original*
  /// numbering.  The pattern must match the plan's fingerprint exactly.
  void refill(const SymSparse<T>& a) {
    PASTIX_CHECK(fingerprint_pattern(a.pattern) == plan_->fingerprint,
                 "refill: matrix pattern does not match the analysis plan");
    if (!permuted_built_)
      build_permuted(a);
    else
      refresh_permuted_values(a);
    fanin_.refill(permuted_);
  }

  /// Parallel numerical factorization over the persistent communicator;
  /// returns wall seconds.  A communicator aborted by a previous failed
  /// factorization is reset first, so a NumericFactor stays usable after a
  /// breakdown (e.g. refactorize with better values).
  double factorize() {
    if (comm_->aborted()) comm_->reset();
    if (tracer_ && tracer_->enabled()) tracer_->clear();
    return fanin_.factorize(*comm_);
  }

  /// Toggle runtime execution tracing (DESIGN.md §9).  The recorder is
  /// created lazily on first enable and kept across factorizations; each
  /// traced factorize() restarts it, so tracer() afterwards holds exactly
  /// the last run.  Disabled (the default) costs one branch per event site.
  void enable_tracing(bool on) {
    if (on && !tracer_) {
      // Hybrid execution adds per-rank worker lanes so the pool records
      // without breaking the single-writer-per-lane discipline.
      tracer_ = std::make_unique<rt::TraceRecorder>(
          static_cast<int>(plan_->nprocs()), fanin_.worker_lanes());
      fanin_.set_tracer(tracer_.get());
      comm_->set_tracer(tracer_.get());
    }
    if (tracer_) tracer_->set_enabled(on);
  }

  /// The event recorder of the last traced run (null if tracing was never
  /// enabled).  Read it only between parallel phases.
  [[nodiscard]] const rt::TraceRecorder* tracer() const {
    return tracer_.get();
  }

  /// refill + factorize in one numeric-only step (the time-stepping path).
  double refactorize(const SymSparse<T>& a) {
    refill(a);
    return factorize();
  }

  /// Arm (or disarm) rank-crash recovery for subsequent factorize() calls
  /// (DESIGN.md §10).  The checkpoint store is owned here and kept across
  /// factorizations — the per-rank entries are overwritten each run.
  void set_resilience(const rt::ResilienceOptions& opt) {
    if (opt.enabled && !checkpoints_) {
      checkpoints_ = std::make_unique<rt::Checkpoint>();
      checkpoints_->set_sdc_injection(sdc_);
    }
    fanin_.set_resilience(opt, checkpoints_.get());
  }

  /// Arm seeded silent-data-corruption injection across the whole numeric
  /// pipeline (DESIGN.md §15): in-flight message bit flips on the
  /// communicator, checkpoint byte flips on the store, and factor-block
  /// flips between checkpoints in the fan-in executor.  Chaos testing only.
  void set_sdc(const rt::SdcInjection& s) {
    sdc_ = s;
    fanin_.set_sdc(s);
    comm_->set_sdc_injection(s);
    if (checkpoints_) checkpoints_->set_sdc_injection(s);
  }

  [[nodiscard]] const AnalysisPlan& plan() const { return *plan_; }
  [[nodiscard]] const PlanPtr& plan_ptr() const { return plan_; }

  /// Allocate-once staging panels for the batched multi-RHS solve path
  /// (Solver::solve_many): the permuted right-hand-side and solution
  /// panels, reused across calls so a solve batch allocates at most once.
  [[nodiscard]] std::vector<T>& rhs_panel() { return rhs_panel_; }
  [[nodiscard]] std::vector<T>& sol_panel() { return sol_panel_; }

  [[nodiscard]] const SymSparse<T>& permuted() const { return permuted_; }
  [[nodiscard]] FaninSolver<T>& fanin() { return fanin_; }
  [[nodiscard]] const FaninSolver<T>& fanin() const { return fanin_; }
  [[nodiscard]] rt::Comm& comm() { return *comm_; }
  [[nodiscard]] const rt::Comm& comm() const { return *comm_; }

private:
  static const PlanPtr& checked(const PlanPtr& plan) {
    PASTIX_CHECK(plan != nullptr, "null analysis plan");
    return plan;
  }

  /// First fill: compute the permuted matrix and remember, per original
  /// entry, where its value lands in the permuted CSC — so every later
  /// refill is a pure value scatter.
  void build_permuted(const SymSparse<T>& a) {
    const Permutation& p = plan_->order.perm;
    permuted_ = permute(a, p);
    val_map_.resize(a.val.size());
    const SparsePattern& pp = permuted_.pattern;
    for (idx_t j = 0; j < a.n(); ++j) {
      const idx_t pj = p.perm[static_cast<std::size_t>(j)];
      for (idx_t q = a.pattern.colptr[j]; q < a.pattern.colptr[j + 1]; ++q) {
        const idx_t pi = p.perm[static_cast<std::size_t>(a.pattern.rowind[q])];
        const idx_t col = std::min(pi, pj);
        const idx_t row = std::max(pi, pj);
        const auto first = pp.rowind.begin() + pp.colptr[col];
        const auto last = pp.rowind.begin() + pp.colptr[col + 1];
        const auto it = std::lower_bound(first, last, row);
        PASTIX_CHECK(it != last && *it == row,
                     "permuted pattern is missing an entry");
        val_map_[static_cast<std::size_t>(q)] =
            static_cast<idx_t>(it - pp.rowind.begin());
      }
    }
    permuted_built_ = true;
  }

  void refresh_permuted_values(const SymSparse<T>& a) {
    const Permutation& p = plan_->order.perm;
    // Accumulate (+=) after zeroing, mirroring the duplicate-summing
    // semantics of the assembly path used by build_permuted.
    std::fill(permuted_.val.begin(), permuted_.val.end(), T{});
    std::fill(permuted_.diag.begin(), permuted_.diag.end(), T{});
    for (idx_t i = 0; i < a.n(); ++i)
      permuted_.diag[static_cast<std::size_t>(
          p.perm[static_cast<std::size_t>(i)])] +=
          a.diag[static_cast<std::size_t>(i)];
    for (std::size_t q = 0; q < a.val.size(); ++q)
      permuted_.val[static_cast<std::size_t>(val_map_[q])] += a.val[q];
  }

  PlanPtr plan_;
  SymSparse<T> permuted_;       ///< P A P^t, values refreshed in place
  std::vector<idx_t> val_map_;  ///< original entry -> permuted entry
  bool permuted_built_ = false;
  FaninSolver<T> fanin_;
  std::vector<T> rhs_panel_, sol_panel_;  ///< solve_many staging (see above)
  std::unique_ptr<rt::Comm> comm_;
  std::unique_ptr<rt::TraceRecorder> tracer_;  ///< lazily created
  std::unique_ptr<rt::Checkpoint> checkpoints_;  ///< lazily created
  rt::SdcInjection sdc_;  ///< re-armed on a lazily created checkpoint store
};

} // namespace pastix
