#pragma once
//
// The analysis layer: everything the pre-processing chain computes from the
// matrix *pattern* alone — ordering, block symbolic factorization, supernode
// splitting, proportional mapping, task graph, static schedule, simulation
// and the precomputed communication plan — bundled into one immutable,
// shareable value.
//
// The paper's whole pipeline up to the numerical factorization is static:
// none of it depends on the matrix values.  An AnalysisPlan is therefore
// computed once per sparsity pattern (free function analyze()) and reused by
// any number of NumericFactor / Solver instances, threads, or future runs
// (see core/plan_io.hpp for on-disk persistence).  Plans are handed around
// as shared_ptr<const AnalysisPlan>; nothing mutates a plan after analyze()
// returns.
//
#include <cstdint>
#include <memory>
#include <string>

#include "map/scheduler.hpp"
#include "model/cost_model.hpp"
#include "order/ordering.hpp"
#include "simul/simulate.hpp"
#include "solver/comm_plan.hpp"
#include "solver/fanin.hpp"
#include "solver/solve_model.hpp"
#include "symbolic/split.hpp"

namespace pastix {

struct SolverOptions {
  idx_t nprocs = 1;               ///< ranks of the message-passing runtime
  OrderingOptions ordering;       ///< hybrid ND + Halo-AMD by default
  SplitOptions split;             ///< blocking size 64 (the paper's setting)
  MappingOptions mapping;         ///< 1D/2D policy and thresholds
  SchedulerOptions scheduler;     ///< greedy earliest-completion mapping
  FaninOptions fanin;             ///< fan-in / fan-both aggregation knob
  CostModel model = default_cost_model();
  /// Strict mode: run the static plan verifier (verify::check_plan) on every
  /// plan this solver builds or adopts, and refuse unsound ones.  Loading
  /// through plan_io always verifies regardless of this flag.
  bool verify_plan = false;
};

/// Cheap identity of a sparsity pattern: order, nonzero count and a 64-bit
/// content hash of (colptr, rowind).  Two matrices with equal fingerprints
/// share every analysis artifact; refactorize() uses this to decide whether
/// a plan is reusable.  (Hash collisions are possible in principle; n and
/// nnz are compared exactly, and a collision additionally requires two
/// different patterns with identical FNV-1a digests — not a realistic
/// failure mode for solver reuse.)
struct PatternFingerprint {
  idx_t n = 0;
  big_t nnz = 0;
  std::uint64_t hash = 0;

  friend bool operator==(const PatternFingerprint&,
                         const PatternFingerprint&) = default;
};

[[nodiscard]] PatternFingerprint fingerprint_pattern(const SparsePattern& p);

/// Hash functor so PatternFingerprint can key unordered containers (the
/// plan cache, the service's per-fingerprint tables).
struct FingerprintHash {
  [[nodiscard]] std::size_t operator()(
      const PatternFingerprint& f) const noexcept {
    std::uint64_t h = f.hash;
    h ^= static_cast<std::uint64_t>(f.n) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(f.nnz) * 0xc2b2ae3d27d4eb4fULL;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

/// Stable, filename-safe key of a fingerprint ("fp_<n>_<nnz>_<hash hex>") —
/// the stem of the plan cache's disk-tier files and the identity quoted in
/// quarantine reasons and service logs.
[[nodiscard]] std::string fingerprint_key(const PatternFingerprint& f);

/// Analysis-time summary numbers (the pattern-only part of SolverStats).
struct AnalysisStats {
  big_t nnz_l = 0;          ///< scalar factor off-diagonal entries (Table 1)
  big_t opc = 0;            ///< scalar operation count (Table 1)
  big_t nnz_blocks = 0;     ///< stored entries incl. amalgamation fill
  idx_t ncblk = 0, nblok = 0, ntask = 0;
  idx_t n_2d_cblks = 0;     ///< supernodes distributed 2D
  double total_flops = 0;   ///< block-level flops of the task graph
  double predicted_time = 0;///< simulated parallel factorization seconds
};

/// The immutable product of the pre-processing chain.  Value-type struct;
/// share it as shared_ptr<const AnalysisPlan> (the alias PlanPtr) so many
/// solvers can hold references into it concurrently.
struct AnalysisPlan {
  SolverOptions options;          ///< options the plan was built with
  PatternFingerprint fingerprint; ///< identity of the analyzed pattern
  OrderingResult order;           ///< permutation + supernode partition
  SymbolMatrix symbol;            ///< split block structure of L
  CandidateMapping cand;          ///< proportional mapping + 1D/2D decisions
  TaskGraph tg;                   ///< COMP1D/FACTOR/BDIV/BMOD tasks
  Schedule sched;                 ///< static mapping + per-proc orders K_p
  SimResult sim;                  ///< discrete-event replay of the schedule
  CommPlan comm;                  ///< precomputed message counts/destinations
  SolvePlan solve;                ///< solve-phase task graph + K_p schedule
  AnalysisStats stats;            ///< summary numbers

  [[nodiscard]] idx_t nprocs() const { return sched.nprocs; }
};

using PlanPtr = std::shared_ptr<const AnalysisPlan>;

/// Run the full pattern-only pre-processing chain: ordering -> block
/// symbolic factorization -> splitting -> proportional mapping -> task
/// graph -> static scheduling -> simulation -> communication plan.
[[nodiscard]] PlanPtr analyze(const SparsePattern& pattern,
                              const SolverOptions& opt = {});

} // namespace pastix
