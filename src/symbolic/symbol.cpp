#include "symbolic/symbol.hpp"

#include <algorithm>

#include "order/supernodes.hpp"

namespace pastix {

idx_t SymbolMatrix::cblk_below_rows(idx_t k) const {
  idx_t rows = 0;
  for (idx_t b = cblks[static_cast<std::size_t>(k)].bloknum + 1;
       b < cblks[static_cast<std::size_t>(k) + 1].bloknum; ++b)
    rows += bloks[static_cast<std::size_t>(b)].nrows();
  return rows;
}

big_t SymbolMatrix::nnz_blocks() const {
  big_t nnz = 0;
  for (idx_t k = 0; k < ncblk; ++k) {
    const big_t w = cblks[static_cast<std::size_t>(k)].width();
    nnz += w * (w + 1) / 2 + w * cblk_below_rows(k);
  }
  return nnz;
}

std::vector<idx_t> SymbolMatrix::find_facing_bloks(idx_t k, idx_t frow,
                                                   idx_t lrow) const {
  PASTIX_ASSERT(frow <= lrow);
  const idx_t first = cblks[static_cast<std::size_t>(k)].bloknum;
  const idx_t last = cblks[static_cast<std::size_t>(k) + 1].bloknum;
  // Binary search for the first blok with lrownum >= frow.
  idx_t lo = first, hi = last;
  while (lo < hi) {
    const idx_t mid = lo + (hi - lo) / 2;
    if (bloks[static_cast<std::size_t>(mid)].lrownum < frow)
      lo = mid + 1;
    else
      hi = mid;
  }
  std::vector<idx_t> out;
  for (idx_t b = lo; b < last && bloks[static_cast<std::size_t>(b)].frownum <= lrow;
       ++b)
    out.push_back(b);
  PASTIX_ASSERT(!out.empty());
  return out;
}

idx_t SymbolMatrix::cblk_parent(idx_t k) const {
  if (cblk_nblok(k) <= 1) return kNone;
  return bloks[static_cast<std::size_t>(
                   cblks[static_cast<std::size_t>(k)].bloknum + 1)]
      .fcblknm;
}

void SymbolMatrix::validate() const {
  PASTIX_CHECK(static_cast<idx_t>(cblks.size()) == ncblk + 1, "bad cblk count");
  PASTIX_CHECK(cblks[static_cast<std::size_t>(ncblk)].bloknum == nblok(),
               "sentinel bloknum mismatch");
  for (idx_t k = 0; k < ncblk; ++k) {
    const auto& c = cblks[static_cast<std::size_t>(k)];
    PASTIX_CHECK(c.fcolnum <= c.lcolnum, "empty cblk");
    if (k > 0)
      PASTIX_CHECK(c.fcolnum ==
                       cblks[static_cast<std::size_t>(k) - 1].lcolnum + 1,
                   "cblks not contiguous");
    const idx_t first = c.bloknum, last = cblks[static_cast<std::size_t>(k) + 1].bloknum;
    PASTIX_CHECK(first < last, "cblk without diagonal blok");
    const auto& diag = bloks[static_cast<std::size_t>(first)];
    PASTIX_CHECK(diag.frownum == c.fcolnum && diag.lrownum == c.lcolnum &&
                     diag.fcblknm == k,
                 "first blok is not the diagonal block");
    for (idx_t b = first; b < last; ++b) {
      const auto& blok = bloks[static_cast<std::size_t>(b)];
      PASTIX_CHECK(blok.lcblknm == k, "blok owner mismatch");
      PASTIX_CHECK(blok.frownum <= blok.lrownum, "empty blok");
      const auto& f = cblks[static_cast<std::size_t>(blok.fcblknm)];
      PASTIX_CHECK(blok.frownum >= f.fcolnum && blok.lrownum <= f.lcolnum,
                   "blok rows leak outside the facing cblk");
      if (b > first)
        PASTIX_CHECK(blok.frownum > bloks[static_cast<std::size_t>(b) - 1].lrownum,
                     "bloks overlap or are unsorted");
    }
  }
  for (idx_t j = 0; j < n; ++j) {
    const idx_t k = col2cblk[static_cast<std::size_t>(j)];
    PASTIX_CHECK(k >= 0 && k < ncblk &&
                     cblks[static_cast<std::size_t>(k)].fcolnum <= j &&
                     j <= cblks[static_cast<std::size_t>(k)].lcolnum,
                 "col2cblk inconsistent");
  }
}

SymbolMatrix block_symbolic_factorization(const SparsePattern& pattern,
                                          const std::vector<idx_t>& rangtab) {
  const idx_t n = pattern.n;
  const idx_t ncblk = static_cast<idx_t>(rangtab.size()) - 1;
  PASTIX_CHECK(rangtab.front() == 0 && rangtab.back() == n,
               "rangtab does not partition the columns");

  SymbolMatrix s;
  s.n = n;
  s.ncblk = ncblk;
  s.col2cblk = column_to_supernode(rangtab);

  // Row structures (scalar rows strictly below each cblk), built bottom-up:
  // rows of A in the cblk's columns, merged with every child's structure
  // clipped below this cblk.  Children are cblks whose first below-diagonal
  // row falls inside k; since the ordering is postordered, children have
  // smaller indices and are complete when k is processed.
  std::vector<std::vector<idx_t>> rowstruct(static_cast<std::size_t>(ncblk));
  std::vector<std::vector<idx_t>> children(static_cast<std::size_t>(ncblk));
  std::vector<idx_t> marker(static_cast<std::size_t>(n), -1);

  s.cblks.reserve(static_cast<std::size_t>(ncblk) + 1);
  for (idx_t k = 0; k < ncblk; ++k) {
    const idx_t fcol = rangtab[static_cast<std::size_t>(k)];
    const idx_t lcol = rangtab[static_cast<std::size_t>(k) + 1] - 1;
    std::vector<idx_t> rows;
    auto push = [&](idx_t i) {
      if (i > lcol && marker[static_cast<std::size_t>(i)] != k) {
        marker[static_cast<std::size_t>(i)] = k;
        rows.push_back(i);
      }
    };
    for (idx_t j = fcol; j <= lcol; ++j)
      for (idx_t q = pattern.colptr[j]; q < pattern.colptr[j + 1]; ++q)
        push(pattern.rowind[q]);
    for (const idx_t c : children[static_cast<std::size_t>(k)]) {
      for (const idx_t i : rowstruct[static_cast<std::size_t>(c)]) push(i);
      rowstruct[static_cast<std::size_t>(c)].clear();
      rowstruct[static_cast<std::size_t>(c)].shrink_to_fit();
    }
    std::sort(rows.begin(), rows.end());
    if (!rows.empty()) {
      const idx_t parent = s.col2cblk[static_cast<std::size_t>(rows.front())];
      PASTIX_ASSERT(parent > k);
      children[static_cast<std::size_t>(parent)].push_back(k);
    }

    // Emit this cblk's bloks now (rows -> maximal runs in one facing cblk),
    // before the structure is consumed by the parent's merge.
    SymbolCblk c;
    c.fcolnum = fcol;
    c.lcolnum = lcol;
    c.bloknum = s.nblok();
    s.cblks.push_back(c);
    s.bloks.push_back({fcol, lcol, k, k});  // diagonal block
    for (std::size_t q = 0; q < rows.size();) {
      const idx_t frow = rows[q];
      const idx_t fc = s.col2cblk[static_cast<std::size_t>(frow)];
      idx_t lrow = frow;
      while (q + 1 < rows.size() && rows[q + 1] == lrow + 1 &&
             s.col2cblk[static_cast<std::size_t>(rows[q + 1])] == fc) {
        ++lrow;
        ++q;
      }
      ++q;
      s.bloks.push_back({frow, lrow, fc, k});
    }
    rowstruct[static_cast<std::size_t>(k)] = std::move(rows);
  }
  s.cblks.push_back({n, n - 1, s.nblok()});  // sentinel
  s.validate();
  return s;
}

std::vector<idx_t> block_etree(const SymbolMatrix& s) {
  std::vector<idx_t> parent(static_cast<std::size_t>(s.ncblk));
  for (idx_t k = 0; k < s.ncblk; ++k)
    parent[static_cast<std::size_t>(k)] = s.cblk_parent(k);
  return parent;
}

std::vector<std::vector<idx_t>> facing_bloks_index(const SymbolMatrix& s) {
  std::vector<std::vector<idx_t>> facing(static_cast<std::size_t>(s.ncblk));
  for (idx_t b = 0; b < s.nblok(); ++b) {
    const auto& blok = s.bloks[static_cast<std::size_t>(b)];
    if (blok.fcblknm != blok.lcblknm)
      facing[static_cast<std::size_t>(blok.fcblknm)].push_back(b);
  }
  return facing;
}

} // namespace pastix
