#include "symbolic/split.hpp"

#include <algorithm>

namespace pastix {

SymbolMatrix split_symbol(const SymbolMatrix& s, const SplitOptions& opt) {
  PASTIX_CHECK(opt.block_size >= 1, "block size must be positive");

  // --- New column partition: cut wide cblks into near-equal parts. ---------
  std::vector<idx_t> new_rangtab;
  new_rangtab.push_back(0);
  const idx_t cut_above = static_cast<idx_t>(
      static_cast<double>(opt.block_size) * opt.split_threshold);
  for (idx_t k = 0; k < s.ncblk; ++k) {
    const idx_t fcol = s.cblks[static_cast<std::size_t>(k)].fcolnum;
    const idx_t w = s.cblks[static_cast<std::size_t>(k)].width();
    if (w <= std::max(cut_above, opt.block_size)) {
      new_rangtab.push_back(fcol + w);
      continue;
    }
    const idx_t parts = (w + opt.block_size - 1) / opt.block_size;
    for (idx_t p = 1; p <= parts; ++p)
      new_rangtab.push_back(fcol + static_cast<idx_t>(
                                       static_cast<big_t>(w) * p / parts));
  }

  SymbolMatrix out;
  out.n = s.n;
  out.ncblk = static_cast<idx_t>(new_rangtab.size()) - 1;
  out.col2cblk.assign(static_cast<std::size_t>(s.n), 0);
  for (idx_t k = 0; k < out.ncblk; ++k)
    for (idx_t j = new_rangtab[static_cast<std::size_t>(k)];
         j < new_rangtab[static_cast<std::size_t>(k) + 1]; ++j)
      out.col2cblk[static_cast<std::size_t>(j)] = k;

  // Split a row interval at new-cblk boundaries, emitting one blok per part.
  auto emit_split = [&](idx_t frow, idx_t lrow, idx_t owner) {
    idx_t r = frow;
    while (r <= lrow) {
      const idx_t fc = out.col2cblk[static_cast<std::size_t>(r)];
      const idx_t end = std::min(
          lrow, new_rangtab[static_cast<std::size_t>(fc) + 1] - 1);
      out.bloks.push_back({r, end, fc, owner});
      r = end + 1;
    }
  };

  out.cblks.reserve(static_cast<std::size_t>(out.ncblk) + 1);
  for (idx_t nk = 0; nk < out.ncblk; ++nk) {
    SymbolCblk c;
    c.fcolnum = new_rangtab[static_cast<std::size_t>(nk)];
    c.lcolnum = new_rangtab[static_cast<std::size_t>(nk) + 1] - 1;
    c.bloknum = out.nblok();
    out.cblks.push_back(c);

    const idx_t old_k = s.col2cblk[static_cast<std::size_t>(c.fcolnum)];
    const auto& old_c = s.cblks[static_cast<std::size_t>(old_k)];

    out.bloks.push_back({c.fcolnum, c.lcolnum, nk, nk});  // diagonal
    // Dense rows covering the later parts of the same original supernode.
    if (c.lcolnum < old_c.lcolnum)
      emit_split(c.lcolnum + 1, old_c.lcolnum, nk);
    // Copies of the original off-diagonal bloks (split at new boundaries).
    const idx_t first = old_c.bloknum + 1;
    const idx_t last = s.cblks[static_cast<std::size_t>(old_k) + 1].bloknum;
    for (idx_t b = first; b < last; ++b)
      emit_split(s.bloks[static_cast<std::size_t>(b)].frownum,
                 s.bloks[static_cast<std::size_t>(b)].lrownum, nk);
  }
  out.cblks.push_back({out.n, out.n - 1, out.nblok()});
  out.validate();
  return out;
}

} // namespace pastix
