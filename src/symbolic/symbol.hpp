#pragma once
//
// Block symbolic factorization.
//
// From the permuted pattern and the supernode partition (rangtab), computes
// the block data structure of the factor L exactly as the paper describes:
// N column blocks (cblk), each holding one dense diagonal block and a set of
// dense off-diagonal blocks (blok), in quasi-linear time by merging child
// row structures up the block elimination tree (Charrier-Roman).
//
// Layout follows PaStiX: bloks are stored contiguously per cblk, sorted by
// first row, and the first blok of every cblk is its diagonal block.
//
#include <vector>

#include "sparse/sym_sparse.hpp"

namespace pastix {

/// One dense block of the factor.
struct SymbolBlok {
  idx_t frownum = 0;  ///< first row (global scalar index)
  idx_t lrownum = 0;  ///< last row (inclusive)
  idx_t fcblknm = 0;  ///< facing column block (the cblk these rows belong to)
  idx_t lcblknm = 0;  ///< owning column block (the cblk whose columns these are)

  [[nodiscard]] idx_t nrows() const { return lrownum - frownum + 1; }

  friend bool operator==(const SymbolBlok&, const SymbolBlok&) = default;
};

/// One column block (supernode) of the factor.
struct SymbolCblk {
  idx_t fcolnum = 0;  ///< first column
  idx_t lcolnum = 0;  ///< last column (inclusive)
  idx_t bloknum = 0;  ///< index of the first blok (the diagonal block)

  [[nodiscard]] idx_t width() const { return lcolnum - fcolnum + 1; }

  friend bool operator==(const SymbolCblk&, const SymbolCblk&) = default;
};

/// The block structure of L.
struct SymbolMatrix {
  idx_t n = 0;      ///< scalar order
  idx_t ncblk = 0;  ///< number of column blocks
  std::vector<SymbolCblk> cblks;  ///< size ncblk + 1 (sentinel holds nblok)
  std::vector<SymbolBlok> bloks;
  std::vector<idx_t> col2cblk;    ///< size n: scalar column -> cblk

  [[nodiscard]] idx_t nblok() const { return static_cast<idx_t>(bloks.size()); }
  [[nodiscard]] idx_t cblk_nblok(idx_t k) const {
    return cblks[static_cast<std::size_t>(k) + 1].bloknum -
           cblks[static_cast<std::size_t>(k)].bloknum;
  }
  /// Sum of off-diagonal blok heights of cblk k (rows below the diagonal).
  [[nodiscard]] idx_t cblk_below_rows(idx_t k) const;

  /// Total stored factor entries (dense blocks, diagonal included).
  [[nodiscard]] big_t nnz_blocks() const;

  /// Bloks of cblk k whose row interval intersects [frow, lrow]; returns
  /// blok indices (ascending).  Used by contribution enumeration: a source
  /// block row range always lands on whole rows of the target bloks.
  [[nodiscard]] std::vector<idx_t> find_facing_bloks(idx_t k, idx_t frow,
                                                     idx_t lrow) const;

  /// First off-diagonal blok's facing cblk = block elimination tree parent
  /// (kNone for roots).
  [[nodiscard]] idx_t cblk_parent(idx_t k) const;

  /// Validate all structural invariants (ordering, nesting, facing info).
  void validate() const;

  friend bool operator==(const SymbolMatrix&, const SymbolMatrix&) = default;
};

/// Compute the block symbolic factorization of `pattern` (already permuted,
/// postordered) for the supernode partition `rangtab`.
SymbolMatrix block_symbolic_factorization(const SparsePattern& pattern,
                                          const std::vector<idx_t>& rangtab);

/// Block elimination tree parent vector (per cblk).
std::vector<idx_t> block_etree(const SymbolMatrix& s);

/// For each cblk j: the indices of bloks (owned by other cblks) facing j.
/// This is BStruct(L_j*) of the paper — the cblks that update cblk j are the
/// owners of these bloks.
std::vector<std::vector<idx_t>> facing_bloks_index(const SymbolMatrix& s);

} // namespace pastix
