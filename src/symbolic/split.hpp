#pragma once
//
// Supernode splitting ("block repartitioning" in the paper): column blocks
// corresponding to large supernodes are split using the blocking size
// suitable for BLAS efficiency, so that concurrency inside dense block
// computations can be exploited by the 1D/2D distribution.
//
// Splitting is a structure-level transform: every part of a split cblk
// receives (a) its diagonal block, (b) dense blocks facing the later parts
// of the same original supernode, and (c) a copy of every original
// off-diagonal blok; bloks *facing* a split cblk are cut at the new part
// boundaries.
//
#include "symbolic/symbol.hpp"

namespace pastix {

struct SplitOptions {
  /// Target column width of split parts (the paper uses 64).
  idx_t block_size = 64;
  /// Only split cblks wider than block_size * split_threshold (so blocks
  /// slightly over the target are not cut into slivers).
  double split_threshold = 1.5;
};

/// Split wide column blocks; returns a new, valid SymbolMatrix.
SymbolMatrix split_symbol(const SymbolMatrix& s, const SplitOptions& opt);

} // namespace pastix
