#pragma once
//
// Undirected adjacency graph of a symmetric sparse matrix, plus the
// traversal primitives used by the ordering phase (BFS level structures,
// pseudo-peripheral vertices, subgraph extraction with halo).
//
#include <vector>

#include "sparse/sym_sparse.hpp"

namespace pastix {

/// Compressed adjacency of an undirected graph (no self loops).
struct Graph {
  idx_t n = 0;
  std::vector<idx_t> xadj;    ///< size n+1
  std::vector<idx_t> adjncy;  ///< size xadj[n], both directions stored

  [[nodiscard]] idx_t degree(idx_t v) const { return xadj[v + 1] - xadj[v]; }
  [[nodiscard]] big_t num_edges() const {
    return xadj.empty() ? 0 : static_cast<big_t>(xadj[n]) / 2;
  }

  /// Iterate neighbours of v as a pair of pointers.
  [[nodiscard]] const idx_t* adj_begin(idx_t v) const {
    return adjncy.data() + xadj[v];
  }
  [[nodiscard]] const idx_t* adj_end(idx_t v) const {
    return adjncy.data() + xadj[v + 1];
  }
};

/// Build the full (both triangles) adjacency graph of a symmetric pattern.
Graph graph_from_pattern(const SparsePattern& p);

/// Result of a breadth-first level decomposition.
struct BfsLevels {
  std::vector<idx_t> level;     ///< per vertex; kNone if unreachable
  std::vector<idx_t> order;     ///< vertices in visit order
  idx_t num_levels = 0;
};

/// BFS from `start` restricted to vertices with mask[v] == true
/// (mask may be empty meaning "all vertices").
BfsLevels bfs_levels(const Graph& g, idx_t start, const std::vector<char>& mask);

/// Pseudo-peripheral vertex of the component of `start` (repeated BFS).
idx_t pseudo_peripheral(const Graph& g, idx_t start, const std::vector<char>& mask);

/// Connected components over masked vertices: returns component id per
/// vertex (kNone for unmasked) and the number of components.
idx_t connected_components(const Graph& g, const std::vector<char>& mask,
                           std::vector<idx_t>& comp);

/// Induced subgraph over `vertices`, optionally extended with its halo
/// (vertices outside the set adjacent to it).  Interior vertices come first
/// (in the given order), halo vertices after.
struct Subgraph {
  Graph g;
  std::vector<idx_t> orig;  ///< local -> original vertex id
  idx_t num_interior = 0;   ///< locals [0, num_interior) are interior
};

Subgraph extract_subgraph(const Graph& g, const std::vector<idx_t>& vertices,
                          bool with_halo);

} // namespace pastix
