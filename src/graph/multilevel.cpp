#include "graph/multilevel.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace pastix {

WeightedGraph weighted_from_subgraph(const Graph& g,
                                     const std::vector<idx_t>& vertices) {
  WeightedGraph wg;
  wg.n = static_cast<idx_t>(vertices.size());
  std::vector<idx_t> local(static_cast<std::size_t>(g.n), kNone);
  for (idx_t l = 0; l < wg.n; ++l)
    local[static_cast<std::size_t>(vertices[static_cast<std::size_t>(l)])] = l;

  wg.xadj.assign(static_cast<std::size_t>(wg.n) + 1, 0);
  for (idx_t l = 0; l < wg.n; ++l) {
    const idx_t v = vertices[static_cast<std::size_t>(l)];
    for (const idx_t* w = g.adj_begin(v); w != g.adj_end(v); ++w)
      if (local[static_cast<std::size_t>(*w)] != kNone)
        wg.xadj[static_cast<std::size_t>(l) + 1]++;
  }
  for (idx_t l = 0; l < wg.n; ++l)
    wg.xadj[static_cast<std::size_t>(l) + 1] += wg.xadj[static_cast<std::size_t>(l)];
  wg.adjncy.resize(static_cast<std::size_t>(wg.xadj[wg.n]));
  wg.ewgt.assign(wg.adjncy.size(), 1);
  wg.vwgt.assign(static_cast<std::size_t>(wg.n), 1);
  std::vector<idx_t> cursor(wg.xadj.begin(), wg.xadj.end() - 1);
  for (idx_t l = 0; l < wg.n; ++l) {
    const idx_t v = vertices[static_cast<std::size_t>(l)];
    for (const idx_t* w = g.adj_begin(v); w != g.adj_end(v); ++w) {
      const idx_t lw = local[static_cast<std::size_t>(*w)];
      if (lw != kNone)
        wg.adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(l)]++)] = lw;
    }
  }
  return wg;
}

namespace {

/// Heavy-edge matching coarsening.  Returns the coarse graph and fills
/// `coarse_of` (fine vertex -> coarse vertex).
WeightedGraph coarsen(const WeightedGraph& fine, Rng& rng,
                      std::vector<idx_t>& coarse_of) {
  const idx_t n = fine.n;
  coarse_of.assign(static_cast<std::size_t>(n), kNone);
  std::vector<idx_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t k = order.size(); k > 1; --k)
    std::swap(order[k - 1], order[rng.next_below(k)]);

  idx_t ncoarse = 0;
  for (const idx_t v : order) {
    if (coarse_of[static_cast<std::size_t>(v)] != kNone) continue;
    // Match with the unmatched neighbour of maximum edge weight.
    idx_t best = kNone, best_w = 0;
    for (idx_t e = fine.xadj[static_cast<std::size_t>(v)];
         e < fine.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const idx_t u = fine.adjncy[static_cast<std::size_t>(e)];
      if (u == v || coarse_of[static_cast<std::size_t>(u)] != kNone) continue;
      if (fine.ewgt[static_cast<std::size_t>(e)] > best_w) {
        best_w = fine.ewgt[static_cast<std::size_t>(e)];
        best = u;
      }
    }
    coarse_of[static_cast<std::size_t>(v)] = ncoarse;
    if (best != kNone) coarse_of[static_cast<std::size_t>(best)] = ncoarse;
    ++ncoarse;
  }

  // Build the coarse graph: sum vertex weights; merge parallel edges.
  WeightedGraph coarse;
  coarse.n = ncoarse;
  coarse.vwgt.assign(static_cast<std::size_t>(ncoarse), 0);
  for (idx_t v = 0; v < n; ++v)
    coarse.vwgt[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)])] +=
        fine.vwgt[static_cast<std::size_t>(v)];

  // Accumulate edges with a stamp-based merger, one coarse vertex at a time.
  std::vector<std::vector<idx_t>> members(static_cast<std::size_t>(ncoarse));
  for (idx_t v = 0; v < n; ++v)
    members[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)])]
        .push_back(v);
  std::vector<idx_t> stamp(static_cast<std::size_t>(ncoarse), -1);
  std::vector<idx_t> slot(static_cast<std::size_t>(ncoarse), 0);
  coarse.xadj.assign(static_cast<std::size_t>(ncoarse) + 1, 0);
  std::vector<idx_t> nbr;
  std::vector<idx_t> wsum;
  for (idx_t c = 0; c < ncoarse; ++c) {
    nbr.clear();
    wsum.clear();
    for (const idx_t v : members[static_cast<std::size_t>(c)]) {
      for (idx_t e = fine.xadj[static_cast<std::size_t>(v)];
           e < fine.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
        const idx_t cu =
            coarse_of[static_cast<std::size_t>(fine.adjncy[static_cast<std::size_t>(e)])];
        if (cu == c) continue;  // internal edge disappears
        if (stamp[static_cast<std::size_t>(cu)] != c) {
          stamp[static_cast<std::size_t>(cu)] = c;
          slot[static_cast<std::size_t>(cu)] = static_cast<idx_t>(nbr.size());
          nbr.push_back(cu);
          wsum.push_back(0);
        }
        wsum[static_cast<std::size_t>(slot[static_cast<std::size_t>(cu)])] +=
            fine.ewgt[static_cast<std::size_t>(e)];
      }
    }
    coarse.xadj[static_cast<std::size_t>(c) + 1] =
        coarse.xadj[static_cast<std::size_t>(c)] + static_cast<idx_t>(nbr.size());
    coarse.adjncy.insert(coarse.adjncy.end(), nbr.begin(), nbr.end());
    coarse.ewgt.insert(coarse.ewgt.end(), wsum.begin(), wsum.end());
  }
  return coarse;
}

/// Weighted FM refinement (hill-climbing passes with balance constraint).
void refine(const WeightedGraph& wg, std::vector<signed char>& part,
            const MultilevelOptions& opt, Rng& rng) {
  const big_t total = wg.total_vweight();
  const big_t max_side =
      static_cast<big_t>((1.0 + opt.balance_tolerance) * total / 2.0) + 1;
  big_t side_w[2] = {0, 0};
  for (idx_t v = 0; v < wg.n; ++v)
    side_w[part[static_cast<std::size_t>(v)]] += wg.vwgt[static_cast<std::size_t>(v)];

  std::vector<idx_t> order(static_cast<std::size_t>(wg.n));
  std::iota(order.begin(), order.end(), 0);
  for (int pass = 0; pass < opt.refine_passes; ++pass) {
    for (std::size_t k = order.size(); k > 1; --k)
      std::swap(order[k - 1], order[rng.next_below(k)]);
    bool improved = false;
    for (const idx_t v : order) {
      const int side = part[static_cast<std::size_t>(v)];
      const big_t vw = wg.vwgt[static_cast<std::size_t>(v)];
      if (side_w[1 - side] + vw > max_side || side_w[side] - vw <= 0) continue;
      idx_t gain = 0;
      for (idx_t e = wg.xadj[static_cast<std::size_t>(v)];
           e < wg.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
        const idx_t u = wg.adjncy[static_cast<std::size_t>(e)];
        gain += (part[static_cast<std::size_t>(u)] != side)
                    ? wg.ewgt[static_cast<std::size_t>(e)]
                    : -wg.ewgt[static_cast<std::size_t>(e)];
      }
      const bool balance_move =
          gain == 0 && side_w[side] > side_w[1 - side] + vw;
      if (gain > 0 || balance_move) {
        part[static_cast<std::size_t>(v)] = static_cast<signed char>(1 - side);
        side_w[side] -= vw;
        side_w[1 - side] += vw;
        if (gain > 0) improved = true;
      }
    }
    if (!improved) break;
  }
}

/// Initial bisection of the coarsest graph: BFS layering by vertex weight
/// from a few random seeds, keep the best cut.
std::vector<signed char> initial_bisection(const WeightedGraph& wg,
                                           const MultilevelOptions& opt,
                                           Rng& rng) {
  std::vector<signed char> best;
  big_t best_cut = -1;
  const big_t half = wg.total_vweight() / 2;
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<signed char> part(static_cast<std::size_t>(wg.n), 1);
    std::vector<char> seen(static_cast<std::size_t>(wg.n), 0);
    std::vector<idx_t> queue;
    const idx_t start =
        static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(wg.n)));
    queue.push_back(start);
    seen[static_cast<std::size_t>(start)] = 1;
    big_t grabbed = 0;
    std::size_t head = 0;
    while (head < queue.size() && grabbed < half) {
      const idx_t v = queue[head++];
      part[static_cast<std::size_t>(v)] = 0;
      grabbed += wg.vwgt[static_cast<std::size_t>(v)];
      for (idx_t e = wg.xadj[static_cast<std::size_t>(v)];
           e < wg.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
        const idx_t u = wg.adjncy[static_cast<std::size_t>(e)];
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = 1;
          queue.push_back(u);
        }
      }
      // Disconnected coarse graph: restart BFS elsewhere.
      if (head == queue.size() && grabbed < half)
        for (idx_t u = 0; u < wg.n; ++u)
          if (!seen[static_cast<std::size_t>(u)]) {
            seen[static_cast<std::size_t>(u)] = 1;
            queue.push_back(u);
            break;
          }
    }
    refine(wg, part, opt, rng);
    const big_t cut = bisection_cut(wg, part);
    if (best_cut < 0 || cut < best_cut) {
      best_cut = cut;
      best = std::move(part);
    }
  }
  return best;
}

} // namespace

big_t bisection_cut(const WeightedGraph& wg,
                    const std::vector<signed char>& part) {
  big_t cut = 0;
  for (idx_t v = 0; v < wg.n; ++v)
    for (idx_t e = wg.xadj[static_cast<std::size_t>(v)];
         e < wg.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const idx_t u = wg.adjncy[static_cast<std::size_t>(e)];
      if (u > v && part[static_cast<std::size_t>(u)] !=
                       part[static_cast<std::size_t>(v)])
        cut += wg.ewgt[static_cast<std::size_t>(e)];
    }
  return cut;
}

std::vector<signed char> multilevel_bisection(const WeightedGraph& wg,
                                              const MultilevelOptions& opt) {
  PASTIX_CHECK(wg.n >= 2, "cannot bisect fewer than two vertices");
  Rng rng(opt.seed);

  // --- Coarsening phase. -----------------------------------------------------
  std::vector<WeightedGraph> levels;
  std::vector<std::vector<idx_t>> maps;  // fine -> coarse per level
  levels.push_back(wg);
  while (levels.back().n > opt.coarsen_until) {
    std::vector<idx_t> coarse_of;
    WeightedGraph coarse = coarsen(levels.back(), rng, coarse_of);
    if (coarse.n >= static_cast<idx_t>(opt.min_shrink * levels.back().n))
      break;  // matching stalled (e.g. star graphs)
    maps.push_back(std::move(coarse_of));
    levels.push_back(std::move(coarse));
  }

  // --- Initial partition on the coarsest level. ------------------------------
  std::vector<signed char> part = initial_bisection(levels.back(), opt, rng);

  // --- Uncoarsening with refinement. -----------------------------------------
  for (std::size_t l = maps.size(); l-- > 0;) {
    const auto& map = maps[l];
    std::vector<signed char> fine_part(map.size());
    for (std::size_t v = 0; v < map.size(); ++v)
      fine_part[v] = part[static_cast<std::size_t>(map[v])];
    part = std::move(fine_part);
    refine(levels[l], part, opt, rng);
  }
  return part;
}

} // namespace pastix
