#pragma once
//
// Multilevel graph bisection — the scheme used by Scotch/MeTiS-class
// partitioners (and therefore by the paper's ordering): coarsen the graph
// by heavy-edge matching, bisect the coarsest graph, then project the
// partition back level by level, refining with a weighted
// Fiduccia-Mattheyses pass at each level.
//
// Operates on an explicit compact graph with vertex and edge weights (the
// coarsening introduces both even when the input is unweighted).
//
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace pastix {

/// Compact weighted graph used by the multilevel hierarchy.
struct WeightedGraph {
  idx_t n = 0;
  std::vector<idx_t> xadj;    ///< size n+1
  std::vector<idx_t> adjncy;  ///< neighbour ids
  std::vector<idx_t> ewgt;    ///< parallel to adjncy
  std::vector<idx_t> vwgt;    ///< size n

  [[nodiscard]] big_t total_vweight() const {
    big_t s = 0;
    for (const idx_t w : vwgt) s += w;
    return s;
  }
};

/// Build a unit-weight compact graph from an induced subgraph of `g`.
WeightedGraph weighted_from_subgraph(const Graph& g,
                                     const std::vector<idx_t>& vertices);

struct MultilevelOptions {
  idx_t coarsen_until = 160;     ///< stop coarsening at this many vertices
  double min_shrink = 0.85;      ///< abort coarsening when it stalls
  int refine_passes = 6;         ///< weighted FM passes per level
  double balance_tolerance = 0.15;
  std::uint64_t seed = 7;
};

/// Bisect: returns side (0/1) per vertex of `wg`, weight-balanced within the
/// tolerance, with an edge cut minimized by multilevel refinement.
std::vector<signed char> multilevel_bisection(const WeightedGraph& wg,
                                              const MultilevelOptions& opt);

/// Edge-cut weight of a bisection (diagnostics and tests).
big_t bisection_cut(const WeightedGraph& wg, const std::vector<signed char>& part);

} // namespace pastix
