#include "graph/graph.hpp"

#include <algorithm>

namespace pastix {

Graph graph_from_pattern(const SparsePattern& p) {
  Graph g;
  g.n = p.n;
  g.xadj.assign(static_cast<std::size_t>(p.n) + 1, 0);
  // Each strict-lower entry (i, j) contributes to both adjacency lists.
  for (idx_t j = 0; j < p.n; ++j)
    for (idx_t q = p.colptr[j]; q < p.colptr[j + 1]; ++q) {
      g.xadj[static_cast<std::size_t>(j) + 1]++;
      g.xadj[static_cast<std::size_t>(p.rowind[q]) + 1]++;
    }
  for (idx_t v = 0; v < p.n; ++v)
    g.xadj[static_cast<std::size_t>(v) + 1] += g.xadj[static_cast<std::size_t>(v)];
  g.adjncy.resize(static_cast<std::size_t>(g.xadj[p.n]));
  std::vector<idx_t> cursor(g.xadj.begin(), g.xadj.end() - 1);
  for (idx_t j = 0; j < p.n; ++j)
    for (idx_t q = p.colptr[j]; q < p.colptr[j + 1]; ++q) {
      const idx_t i = p.rowind[q];
      g.adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(j)]++)] = i;
      g.adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(i)]++)] = j;
    }
  for (idx_t v = 0; v < p.n; ++v)
    std::sort(g.adjncy.begin() + g.xadj[v], g.adjncy.begin() + g.xadj[v + 1]);
  return g;
}

namespace {
bool in_mask(const std::vector<char>& mask, idx_t v) {
  return mask.empty() || mask[static_cast<std::size_t>(v)];
}
} // namespace

BfsLevels bfs_levels(const Graph& g, idx_t start, const std::vector<char>& mask) {
  PASTIX_CHECK(start >= 0 && start < g.n, "bfs start out of range");
  PASTIX_CHECK(in_mask(mask, start), "bfs start not in mask");
  BfsLevels out;
  out.level.assign(static_cast<std::size_t>(g.n), kNone);
  out.order.reserve(static_cast<std::size_t>(g.n));
  out.order.push_back(start);
  out.level[static_cast<std::size_t>(start)] = 0;
  std::size_t head = 0;
  while (head < out.order.size()) {
    const idx_t v = out.order[head++];
    const idx_t lv = out.level[static_cast<std::size_t>(v)];
    for (const idx_t* w = g.adj_begin(v); w != g.adj_end(v); ++w) {
      if (!in_mask(mask, *w) || out.level[static_cast<std::size_t>(*w)] != kNone)
        continue;
      out.level[static_cast<std::size_t>(*w)] = lv + 1;
      out.order.push_back(*w);
    }
  }
  out.num_levels = out.level[static_cast<std::size_t>(out.order.back())] + 1;
  return out;
}

idx_t pseudo_peripheral(const Graph& g, idx_t start, const std::vector<char>& mask) {
  idx_t best = start;
  idx_t best_depth = -1;
  // A handful of sweeps converges in practice (George-Liu heuristic).
  for (int sweep = 0; sweep < 6; ++sweep) {
    const BfsLevels levels = bfs_levels(g, best, mask);
    if (levels.num_levels <= best_depth) break;
    best_depth = levels.num_levels;
    // Pick a minimum-degree vertex in the last level.
    idx_t candidate = levels.order.back();
    for (auto it = levels.order.rbegin(); it != levels.order.rend(); ++it) {
      if (levels.level[static_cast<std::size_t>(*it)] != best_depth - 1) break;
      if (g.degree(*it) < g.degree(candidate)) candidate = *it;
    }
    best = candidate;
  }
  return best;
}

idx_t connected_components(const Graph& g, const std::vector<char>& mask,
                           std::vector<idx_t>& comp) {
  comp.assign(static_cast<std::size_t>(g.n), kNone);
  idx_t ncomp = 0;
  std::vector<idx_t> stack;
  for (idx_t s = 0; s < g.n; ++s) {
    if (!in_mask(mask, s) || comp[static_cast<std::size_t>(s)] != kNone) continue;
    stack.push_back(s);
    comp[static_cast<std::size_t>(s)] = ncomp;
    while (!stack.empty()) {
      const idx_t v = stack.back();
      stack.pop_back();
      for (const idx_t* w = g.adj_begin(v); w != g.adj_end(v); ++w)
        if (in_mask(mask, *w) && comp[static_cast<std::size_t>(*w)] == kNone) {
          comp[static_cast<std::size_t>(*w)] = ncomp;
          stack.push_back(*w);
        }
    }
    ++ncomp;
  }
  return ncomp;
}

Subgraph extract_subgraph(const Graph& g, const std::vector<idx_t>& vertices,
                          bool with_halo) {
  Subgraph out;
  out.num_interior = static_cast<idx_t>(vertices.size());

  std::vector<idx_t> local(static_cast<std::size_t>(g.n), kNone);
  out.orig = vertices;
  for (idx_t l = 0; l < out.num_interior; ++l)
    local[static_cast<std::size_t>(vertices[static_cast<std::size_t>(l)])] = l;

  if (with_halo) {
    for (const idx_t v : vertices)
      for (const idx_t* w = g.adj_begin(v); w != g.adj_end(v); ++w)
        if (local[static_cast<std::size_t>(*w)] == kNone) {
          local[static_cast<std::size_t>(*w)] = static_cast<idx_t>(out.orig.size());
          out.orig.push_back(*w);
        }
  }

  const idx_t nloc = static_cast<idx_t>(out.orig.size());
  out.g.n = nloc;
  out.g.xadj.assign(static_cast<std::size_t>(nloc) + 1, 0);
  // Interior vertices keep all their (mapped) neighbours; halo vertices only
  // keep edges back into the interior (halo-halo edges do not influence the
  // minimum-degree behaviour of interior eliminations at first order, and
  // dropping them keeps extraction linear in the interior size).
  auto keep = [&](idx_t lu, idx_t lv) {
    return lu < out.num_interior || lv < out.num_interior;
  };
  for (idx_t lu = 0; lu < nloc; ++lu) {
    const idx_t u = out.orig[static_cast<std::size_t>(lu)];
    for (const idx_t* w = g.adj_begin(u); w != g.adj_end(u); ++w) {
      const idx_t lv = local[static_cast<std::size_t>(*w)];
      if (lv != kNone && keep(lu, lv))
        out.g.xadj[static_cast<std::size_t>(lu) + 1]++;
    }
  }
  for (idx_t v = 0; v < nloc; ++v)
    out.g.xadj[static_cast<std::size_t>(v) + 1] +=
        out.g.xadj[static_cast<std::size_t>(v)];
  out.g.adjncy.resize(static_cast<std::size_t>(out.g.xadj[nloc]));
  std::vector<idx_t> cursor(out.g.xadj.begin(), out.g.xadj.end() - 1);
  for (idx_t lu = 0; lu < nloc; ++lu) {
    const idx_t u = out.orig[static_cast<std::size_t>(lu)];
    for (const idx_t* w = g.adj_begin(u); w != g.adj_end(u); ++w) {
      const idx_t lv = local[static_cast<std::size_t>(*w)];
      if (lv != kNone && keep(lu, lv))
        out.g.adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(lu)]++)] = lv;
    }
  }
  return out;
}

} // namespace pastix
