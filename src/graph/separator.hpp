#pragma once
//
// Vertex separator computation for nested dissection.
//
// Pipeline (a compact version of what Scotch does for ND):
//   1. pseudo-peripheral BFS level structure -> initial balanced bisection,
//   2. Fiduccia-Mattheyses-style passes refining the edge cut under a
//      balance constraint,
//   3. vertex separator extracted from the edge cut (boundary of the side
//      with the smaller boundary), then greedily minimized (separator
//      vertices with all neighbours on one side are given back).
//
#include <vector>

#include "graph/graph.hpp"

namespace pastix {

struct SeparatorOptions {
  double balance_tolerance = 0.2;  ///< |A|,|B| within (1 +- tol) * n/2
  int fm_passes = 8;               ///< max refinement passes
  std::uint64_t seed = 1;          ///< tie-break randomization
  /// Use multilevel (heavy-edge matching) bisection above this subdomain
  /// size; below it a single BFS + FM pass is both faster and good enough.
  bool multilevel = true;
  idx_t multilevel_threshold = 400;
};

/// Result of a bisection: part[v] in {0, 1} for the two sides, 2 for the
/// separator.  Only masked vertices are assigned; others keep kNone.
struct SeparatorResult {
  std::vector<signed char> part;  ///< size n; 0/1/2 or -1 (not in mask)
  idx_t size_a = 0, size_b = 0, size_sep = 0;
};

/// Split the masked subgraph with a vertex separator.  The mask selects the
/// current ND subdomain inside the full graph (empty mask = whole graph).
/// The masked subgraph must be connected (callers split components first).
SeparatorResult find_vertex_separator(const Graph& g,
                                      const std::vector<char>& mask,
                                      const std::vector<idx_t>& vertices,
                                      const SeparatorOptions& opt);

} // namespace pastix
