#include "graph/separator.hpp"

#include "graph/multilevel.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace pastix {

namespace {

// Gain of moving v to the other side = (external - internal) edges.
idx_t move_gain(const Graph& g, const std::vector<signed char>& part, idx_t v) {
  const signed char side = part[static_cast<std::size_t>(v)];
  idx_t gain = 0;
  for (const idx_t* w = g.adj_begin(v); w != g.adj_end(v); ++w) {
    const signed char pw = part[static_cast<std::size_t>(*w)];
    if (pw < 0) continue;
    gain += (pw != side) ? 1 : -1;
  }
  return gain;
}

} // namespace

SeparatorResult find_vertex_separator(const Graph& g,
                                      const std::vector<char>& mask,
                                      const std::vector<idx_t>& vertices,
                                      const SeparatorOptions& opt) {
  PASTIX_CHECK(!vertices.empty(), "empty subdomain");
  const idx_t nsub = static_cast<idx_t>(vertices.size());

  SeparatorResult res;
  res.part.assign(static_cast<std::size_t>(g.n), -1);

  if (opt.multilevel && nsub > opt.multilevel_threshold) {
    // --- 1a. Multilevel edge bisection (Scotch-style). ----------------------
    MultilevelOptions mopt;
    mopt.balance_tolerance = opt.balance_tolerance;
    mopt.refine_passes = opt.fm_passes;
    mopt.seed = opt.seed;
    const WeightedGraph wg = weighted_from_subgraph(g, vertices);
    const std::vector<signed char> part = multilevel_bisection(wg, mopt);
    for (idx_t l = 0; l < nsub; ++l)
      res.part[static_cast<std::size_t>(vertices[static_cast<std::size_t>(l)])] =
          part[static_cast<std::size_t>(l)];
  } else {
    // --- 1b. BFS level structure + flat FM (small subdomains). --------------
    const idx_t source = pseudo_peripheral(g, vertices.front(), mask);
    const BfsLevels levels = bfs_levels(g, source, mask);
    PASTIX_CHECK(static_cast<idx_t>(levels.order.size()) == nsub,
                 "subdomain must be connected");
    for (idx_t k = 0; k < nsub; ++k)
      res.part[static_cast<std::size_t>(
          levels.order[static_cast<std::size_t>(k)])] = (k < nsub / 2) ? 0 : 1;

    const idx_t max_side =
        static_cast<idx_t>((1.0 + opt.balance_tolerance) * nsub / 2.0) + 1;
    idx_t size0 = nsub / 2, size1 = nsub - size0;
    Rng rng(opt.seed);

    for (int pass = 0; pass < opt.fm_passes; ++pass) {
      bool improved = false;
      // Visit vertices in a randomized order; hill-climb only (strictly
      // positive gain, or zero-gain moves that improve balance).
      std::vector<idx_t> order(vertices);
      for (std::size_t k = order.size(); k > 1; --k)
        std::swap(order[k - 1], order[rng.next_below(k)]);
      for (const idx_t v : order) {
        const signed char side = res.part[static_cast<std::size_t>(v)];
        idx_t& from = (side == 0) ? size0 : size1;
        idx_t& to = (side == 0) ? size1 : size0;
        if (to + 1 > max_side || from - 1 <= 0) continue;
        const idx_t gain = move_gain(g, res.part, v);
        const bool balance_move = (gain == 0 && from > to + 1);
        if (gain > 0 || balance_move) {
          res.part[static_cast<std::size_t>(v)] =
              static_cast<signed char>(1 - side);
          --from;
          ++to;
          if (gain > 0) improved = true;
        }
      }
      if (!improved) break;
    }
  }

  // --- 3. Vertex separator from the edge cut. -------------------------------
  // Boundary of side s = vertices of s with a neighbour in 1-s.  Take the
  // smaller boundary as separator.
  std::vector<idx_t> boundary[2];
  for (const idx_t v : vertices) {
    const signed char side = res.part[static_cast<std::size_t>(v)];
    for (const idx_t* w = g.adj_begin(v); w != g.adj_end(v); ++w) {
      const signed char pw = res.part[static_cast<std::size_t>(*w)];
      if (pw >= 0 && pw != side && pw != 2) {
        boundary[side].push_back(v);
        break;
      }
    }
  }
  const int sep_side = (boundary[0].size() <= boundary[1].size()) ? 0 : 1;
  for (const idx_t v : boundary[sep_side])
    res.part[static_cast<std::size_t>(v)] = 2;

  // Minimize: a separator vertex whose neighbours all lie in the separator
  // or one single side can be returned to that side.
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (const idx_t v : boundary[sep_side]) {
      if (res.part[static_cast<std::size_t>(v)] != 2) continue;
      bool touches[2] = {false, false};
      for (const idx_t* w = g.adj_begin(v); w != g.adj_end(v); ++w) {
        const signed char pw = res.part[static_cast<std::size_t>(*w)];
        if (pw == 0) touches[0] = true;
        if (pw == 1) touches[1] = true;
      }
      if (!(touches[0] && touches[1])) {
        res.part[static_cast<std::size_t>(v)] =
            touches[1] ? 1 : 0;  // isolated-in-sep vertices go to side 0
        shrunk = true;
      }
    }
  }

  for (const idx_t v : vertices) {
    switch (res.part[static_cast<std::size_t>(v)]) {
      case 0: res.size_a++; break;
      case 1: res.size_b++; break;
      default: res.size_sep++; break;
    }
  }
  return res;
}

} // namespace pastix
