#pragma once
//
// Symmetric permutation of sparse matrices: B = P A P^t.
//
// Convention used everywhere in this library:
//   perm[old]  = new index of old vertex `old`
//   invp[new]  = old vertex sitting at new position `new`
//
#include <numeric>
#include <vector>

#include "sparse/coo_builder.hpp"
#include "sparse/sym_sparse.hpp"

namespace pastix {

/// A permutation with both directions kept consistent.
struct Permutation {
  std::vector<idx_t> perm;  ///< old -> new
  std::vector<idx_t> invp;  ///< new -> old

  [[nodiscard]] idx_t n() const { return static_cast<idx_t>(perm.size()); }

  static Permutation identity(idx_t n) {
    Permutation p;
    p.perm.resize(static_cast<std::size_t>(n));
    std::iota(p.perm.begin(), p.perm.end(), 0);
    p.invp = p.perm;
    return p;
  }

  /// Build from a perm (old -> new) vector, deriving invp; validates bijection.
  static Permutation from_perm(std::vector<idx_t> perm) {
    Permutation p;
    const idx_t n = static_cast<idx_t>(perm.size());
    p.invp.assign(static_cast<std::size_t>(n), kNone);
    for (idx_t i = 0; i < n; ++i) {
      const idx_t t = perm[static_cast<std::size_t>(i)];
      PASTIX_CHECK(t >= 0 && t < n, "perm target out of range");
      PASTIX_CHECK(p.invp[static_cast<std::size_t>(t)] == kNone,
                   "perm is not injective");
      p.invp[static_cast<std::size_t>(t)] = i;
    }
    p.perm = std::move(perm);
    return p;
  }

  /// Compose: result maps old -> this(other(old)).
  [[nodiscard]] Permutation after(const Permutation& other) const {
    PASTIX_CHECK(n() == other.n(), "composing permutations of different size");
    std::vector<idx_t> composed(perm.size());
    for (idx_t i = 0; i < n(); ++i)
      composed[static_cast<std::size_t>(i)] =
          perm[static_cast<std::size_t>(other.perm[static_cast<std::size_t>(i)])];
    return from_perm(std::move(composed));
  }
};

/// Apply a symmetric permutation: result(perm[i], perm[j]) = a(i, j).
template <class T>
SymSparse<T> permute(const SymSparse<T>& a, const Permutation& p) {
  PASTIX_CHECK(p.n() == a.n(), "permutation size mismatch");
  CooBuilder<T> b(a.n());
  for (idx_t i = 0; i < a.n(); ++i)
    b.add(p.perm[static_cast<std::size_t>(i)], p.perm[static_cast<std::size_t>(i)],
          a.diag[static_cast<std::size_t>(i)]);
  for (idx_t j = 0; j < a.n(); ++j)
    for (idx_t q = a.pattern.colptr[j]; q < a.pattern.colptr[j + 1]; ++q)
      b.add(p.perm[static_cast<std::size_t>(a.pattern.rowind[q])],
            p.perm[static_cast<std::size_t>(j)], a.val[q]);
  return b.build();
}

/// Permute a vector into the new numbering: out[perm[i]] = in[i].
/// Buffer-reusing variant for batched solves; `out` must not alias `in`.
template <class T>
void permute_vector_into(const std::vector<T>& in, const Permutation& p,
                         std::vector<T>& out) {
  PASTIX_CHECK(in.size() == p.perm.size(), "vector size mismatch");
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i)
    out[static_cast<std::size_t>(p.perm[i])] = in[i];
}

template <class T>
std::vector<T> permute_vector(const std::vector<T>& in, const Permutation& p) {
  std::vector<T> out;
  permute_vector_into(in, p, out);
  return out;
}

/// Inverse of permute_vector: out[i] = in[perm[i]]; `out` must not alias `in`.
template <class T>
void unpermute_vector_into(const std::vector<T>& in, const Permutation& p,
                           std::vector<T>& out) {
  PASTIX_CHECK(in.size() == p.perm.size(), "vector size mismatch");
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i)
    out[i] = in[static_cast<std::size_t>(p.perm[i])];
}

template <class T>
std::vector<T> unpermute_vector(const std::vector<T>& in, const Permutation& p) {
  std::vector<T> out;
  unpermute_vector_into(in, p, out);
  return out;
}

} // namespace pastix
