#include "sparse/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "sparse/coo_builder.hpp"

namespace pastix {

namespace {

struct MmHeader {
  bool complex_field = false;
  idx_t rows = 0, cols = 0;
  big_t entries = 0;
};

MmHeader parse_header(std::istream& is) {
  std::string line;
  PASTIX_CHECK(static_cast<bool>(std::getline(is, line)), "empty stream");
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  PASTIX_CHECK(tag == "%%MatrixMarket", "missing MatrixMarket banner");
  PASTIX_CHECK(object == "matrix" && format == "coordinate",
               "only coordinate matrices are supported");
  PASTIX_CHECK(symmetry == "symmetric", "only symmetric matrices are supported");
  PASTIX_CHECK(field == "real" || field == "complex",
               "only real/complex fields are supported");

  MmHeader h;
  h.complex_field = (field == "complex");
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream sizes(line);
    big_t rows = 0, cols = 0;
    sizes >> rows >> cols >> h.entries;
    PASTIX_CHECK(!sizes.fail(), "malformed size line");
    PASTIX_CHECK(rows == cols, "matrix is not square");
    h.rows = static_cast<idx_t>(rows);
    h.cols = static_cast<idx_t>(cols);
    return h;
  }
  throw Error("missing size line");
}

template <class T>
void write_impl(std::ostream& os, const SymSparse<T>& a, const char* field) {
  big_t entries = a.nnz_offdiag() + a.n();
  os << "%%MatrixMarket matrix coordinate " << field << " symmetric\n";
  os << "% written by the pastix-repro library\n";
  os << a.n() << " " << a.n() << " " << entries << "\n";
  os << std::setprecision(17);
  auto emit = [&os](idx_t i, idx_t j, const T& v) {
    os << (i + 1) << " " << (j + 1) << " ";
    if constexpr (std::is_same_v<T, double>) {
      os << v << "\n";
    } else {
      os << v.real() << " " << v.imag() << "\n";
    }
  };
  for (idx_t j = 0; j < a.n(); ++j) {
    emit(j, j, a.diag[static_cast<std::size_t>(j)]);
    for (idx_t p = a.pattern.colptr[j]; p < a.pattern.colptr[j + 1]; ++p)
      emit(a.pattern.rowind[p], j, a.val[p]);
  }
}

template <class T>
SymSparse<T> read_impl(std::istream& is, bool want_complex) {
  const MmHeader h = parse_header(is);
  PASTIX_CHECK(h.complex_field == want_complex,
               "field of stream does not match requested scalar type");
  CooBuilder<T> b(h.rows);
  for (big_t e = 0; e < h.entries; ++e) {
    big_t i = 0, j = 0;
    double re = 0, im = 0;
    is >> i >> j >> re;
    if (want_complex) is >> im;
    PASTIX_CHECK(!is.fail(), "truncated or malformed entry");
    if constexpr (std::is_same_v<T, double>) {
      b.add(static_cast<idx_t>(i - 1), static_cast<idx_t>(j - 1), re);
    } else {
      b.add(static_cast<idx_t>(i - 1), static_cast<idx_t>(j - 1), T(re, im));
    }
  }
  return b.build();
}

} // namespace

void write_matrix_market(std::ostream& os, const SymSparse<double>& a) {
  write_impl(os, a, "real");
}

void write_matrix_market(std::ostream& os,
                         const SymSparse<std::complex<double>>& a) {
  write_impl(os, a, "complex");
}

SymSparse<double> read_matrix_market(std::istream& is) {
  return read_impl<double>(is, /*want_complex=*/false);
}

SymSparse<std::complex<double>> read_matrix_market_complex(std::istream& is) {
  return read_impl<std::complex<double>>(is, /*want_complex=*/true);
}

void save_matrix_market(const std::string& path, const SymSparse<double>& a) {
  std::ofstream os(path);
  PASTIX_CHECK(os.good(), "cannot open for writing: " + path);
  write_matrix_market(os, a);
}

SymSparse<double> load_matrix_market(const std::string& path) {
  std::ifstream is(path);
  PASTIX_CHECK(is.good(), "cannot open for reading: " + path);
  return read_matrix_market(is);
}

} // namespace pastix
