#include "sparse/suite.hpp"

#include "support/check.hpp"

namespace pastix {

const std::vector<SuiteProblem>& paper_suite() {
  // Mesh families follow the original matrices:
  //   B5TUER / BMWCRA1 / X104 : 3D solids (automotive / generic blocks)
  //   MT1 / THREAD            : rods (THREAD's factor is unusually dense,
  //                             hence the larger coupling radius)
  //   OILPAN / SHIP* / QUER   : thin shells and plates
  // FeMeshSpec fields: {nx, ny, nz, dof, radius, seed}.
  static const std::vector<SuiteProblem> suite = {
      {"B5TUER",   "solid", {14, 14, 14, 3, 1, 0xb5701}},
      {"BMWCRA1",  "solid", {16, 16, 16, 3, 1, 0xb301a}},
      {"MT1",      "rod",   {56, 9, 9, 3, 1, 0x301}},
      {"OILPAN",   "shell", {34, 34, 3, 3, 1, 0x011a}},
      {"QUER",     "plate", {52, 52, 1, 3, 1, 0x40e8}},
      {"SHIP001",  "shell", {24, 24, 4, 3, 1, 0x5001}},
      {"SHIP003",  "shell", {36, 36, 3, 3, 1, 0x5003}},
      {"SHIPSEC5", "shell", {28, 28, 6, 3, 1, 0x5ec5}},
      {"THREAD",   "rod",   {40, 5, 5, 4, 2, 0x7423}},
      {"X104",     "solid", {15, 15, 15, 3, 1, 0x104}},
  };
  return suite;
}

const SuiteProblem& suite_problem(const std::string& name) {
  for (const auto& p : paper_suite())
    if (p.name == name) return p;
  throw Error("unknown suite problem: " + name);
}

SymSparse<double> make_suite_matrix(const SuiteProblem& p) {
  return gen_fe_mesh(p.spec);
}

const std::vector<SuiteProblem>& paper_suite_fullsize() {
  // Column counts track the original PARASOL matrices (B5TUER 162k,
  // BMWCRA1 149k, MT1 98k, OILPAN 74k, QUER 59k, SHIP001 35k, SHIP003
  // 121k, SHIPSEC5 180k, THREAD 30k, X104 108k).
  static const std::vector<SuiteProblem> suite = {
      {"B5TUER",   "solid", {38, 38, 38, 3, 1, 0xb5701}},   // 164k
      {"BMWCRA1",  "solid", {37, 37, 37, 3, 1, 0xb301a}},   // 152k
      {"MT1",      "rod",   {180, 14, 13, 3, 1, 0x301}},    // 98k
      {"OILPAN",   "shell", {91, 91, 3, 3, 1, 0x011a}},     // 75k
      {"QUER",     "plate", {140, 140, 1, 3, 1, 0x40e8}},   // 59k
      {"SHIP001",  "shell", {54, 54, 4, 3, 1, 0x5001}},     // 35k
      {"SHIP003",  "shell", {116, 116, 3, 3, 1, 0x5003}},   // 121k
      {"SHIPSEC5", "shell", {100, 100, 6, 3, 1, 0x5ec5}},   // 180k
      {"THREAD",   "rod",   {78, 10, 10, 4, 2, 0x7423}},    // 31k
      {"X104",     "solid", {33, 33, 33, 3, 1, 0x104}},     // 108k
  };
  return suite;
}

const std::vector<SuiteProblem>& small_suite() {
  static const std::vector<SuiteProblem> suite = {
      suite_problem("THREAD"),   // small, dense factor
      suite_problem("OILPAN"),   // medium shell
      suite_problem("BMWCRA1"),  // large solid
  };
  return suite;
}

} // namespace pastix
