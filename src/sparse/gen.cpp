#include "sparse/gen.hpp"

#include <cmath>

#include "sparse/coo_builder.hpp"

namespace pastix {

namespace {

// Symmetric jitter in [0.5, 1.5) so couplings differ but stay bounded.
double jitter(Rng& rng) { return 0.5 + rng.next_double(); }

} // namespace

SymSparse<double> gen_fe_mesh(const FeMeshSpec& spec) {
  PASTIX_CHECK(spec.nx > 0 && spec.ny > 0 && spec.nz > 0, "empty grid");
  PASTIX_CHECK(spec.dof >= 1 && spec.radius >= 1, "bad dof/radius");
  const idx_t nx = spec.nx, ny = spec.ny, nz = spec.nz;
  const int d = spec.dof, r = spec.radius;
  const idx_t nnode = nx * ny * nz;
  const idx_t n = nnode * d;
  Rng rng(spec.seed);

  CooBuilder<double> b(n);
  auto node = [&](idx_t x, idx_t y, idx_t z) { return (z * ny + y) * nx + x; };

  // Track per-unknown accumulated off-diagonal mass to set a dominant diagonal.
  std::vector<double> rowsum(static_cast<std::size_t>(n), 0.0);
  auto couple = [&](idx_t u, idx_t v) {
    // Dense dof x dof symmetric negative coupling between nodes u < v,
    // plus intra-node coupling when u == v.
    for (int a = 0; a < d; ++a) {
      const int bstart = (u == v) ? a + 1 : 0;
      for (int c = bstart; c < d; ++c) {
        const idx_t i = u * d + a, j = v * d + c;
        const double w = -jitter(rng);
        b.add(i, j, w);
        rowsum[static_cast<std::size_t>(i)] += std::abs(w);
        rowsum[static_cast<std::size_t>(j)] += std::abs(w);
      }
    }
  };

  for (idx_t z = 0; z < nz; ++z)
    for (idx_t y = 0; y < ny; ++y)
      for (idx_t x = 0; x < nx; ++x) {
        const idx_t u = node(x, y, z);
        if (d > 1) couple(u, u);
        // Enumerate each neighbour pair once: strictly "later" nodes in
        // lexicographic (z, y, x) order within the coupling radius.
        for (idx_t dz = 0; dz <= r; ++dz)
          for (idx_t dy = -r; dy <= r; ++dy)
            for (idx_t dx = -r; dx <= r; ++dx) {
              if (dz == 0 && (dy < 0 || (dy == 0 && dx <= 0))) continue;
              const idx_t x2 = x + dx, y2 = y + dy, z2 = z + dz;
              if (x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny || z2 < 0 || z2 >= nz)
                continue;
              couple(u, node(x2, y2, z2));
            }
      }

  for (idx_t i = 0; i < n; ++i)
    b.add(i, i, rowsum[static_cast<std::size_t>(i)] + 1.0 + rng.next_double());
  return b.build();
}

SymSparse<double> gen_grid_laplacian(idx_t nx, idx_t ny, idx_t nz) {
  PASTIX_CHECK(nx > 0 && ny > 0 && nz > 0, "empty grid");
  const idx_t n = nx * ny * nz;
  CooBuilder<double> b(n);
  auto node = [&](idx_t x, idx_t y, idx_t z) { return (z * ny + y) * nx + x; };
  for (idx_t z = 0; z < nz; ++z)
    for (idx_t y = 0; y < ny; ++y)
      for (idx_t x = 0; x < nx; ++x) {
        const idx_t u = node(x, y, z);
        b.add(u, u, (nz > 1 ? 6.0 : 4.0) + 1.0);  // +1: strictly SPD
        if (x + 1 < nx) b.add(u, node(x + 1, y, z), -1.0);
        if (y + 1 < ny) b.add(u, node(x, y + 1, z), -1.0);
        if (z + 1 < nz) b.add(u, node(x, y, z + 1), -1.0);
      }
  return b.build();
}

SymSparse<double> gen_random_spd(idx_t n, int avg_degree, std::uint64_t seed) {
  PASTIX_CHECK(n > 0 && avg_degree >= 0, "bad random matrix parameters");
  Rng rng(seed);
  CooBuilder<double> b(n);
  std::vector<double> rowsum(static_cast<std::size_t>(n), 0.0);
  const big_t nedges = static_cast<big_t>(n) * avg_degree / 2;
  for (big_t e = 0; e < nedges; ++e) {
    const idx_t i = static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    const idx_t j = static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (i == j) continue;
    const double w = -jitter(rng);
    b.add(i, j, w);
    rowsum[static_cast<std::size_t>(i)] += std::abs(w);
    rowsum[static_cast<std::size_t>(j)] += std::abs(w);
  }
  for (idx_t i = 0; i < n; ++i)
    b.add(i, i, rowsum[static_cast<std::size_t>(i)] + 1.0 + rng.next_double());
  return b.build();
}

SymSparse<std::complex<double>> to_complex_symmetric(const SymSparse<double>& a,
                                                     double imag_scale,
                                                     std::uint64_t seed) {
  PASTIX_CHECK(imag_scale >= 0.0 && imag_scale < 1.0,
               "imag_scale must stay below 1 to preserve dominance");
  Rng rng(seed);
  SymSparse<std::complex<double>> c;
  c.pattern = a.pattern;
  c.val.reserve(a.val.size());
  for (const double v : a.val)
    c.val.emplace_back(v, imag_scale * v * (2.0 * rng.next_double() - 1.0));
  c.diag.reserve(a.diag.size());
  for (const double v : a.diag) c.diag.emplace_back(v, 0.0);
  return c;
}

} // namespace pastix
