#pragma once
//
// Synthetic problem generators.
//
// The paper's test suite (B5TUER, SHIP003, OILPAN, ...) consists of
// proprietary PARASOL structural-mechanics matrices that are not freely
// redistributable.  These generators build finite-element-style symmetric
// positive definite matrices over 3D node grids with a configurable number
// of degrees of freedom per node and stencil radius, which reproduces the
// structural properties that matter for the solver: mesh topology
// (solid / shell / rod), separator sizes, supernode width distribution and
// the fill/ops ratios of the original suite.
//
#include <complex>

#include "sparse/sym_sparse.hpp"
#include "support/rng.hpp"

namespace pastix {

/// Parameters of a finite-element-style grid problem.
struct FeMeshSpec {
  idx_t nx = 8, ny = 8, nz = 8;  ///< nodes per dimension (nz==1 -> plate)
  int dof = 1;                   ///< unknowns per node (3 ~ elasticity)
  int radius = 1;                ///< node coupling radius (Chebyshev distance)
  std::uint64_t seed = 42;       ///< value jitter seed

  [[nodiscard]] idx_t num_unknowns() const {
    return nx * ny * nz * static_cast<idx_t>(dof);
  }
};

/// FE-style SPD matrix on an nx*ny*nz node grid.  Every pair of nodes within
/// Chebyshev distance `radius` is coupled by a dense dof x dof symmetric
/// block with small random entries; diagonal dominance guarantees SPD.
SymSparse<double> gen_fe_mesh(const FeMeshSpec& spec);

/// Classic 5/7-point Laplacian on a grid (nz == 1 gives the 2D version).
SymSparse<double> gen_grid_laplacian(idx_t nx, idx_t ny, idx_t nz = 1);

/// Random sparse SPD matrix: n vertices, ~avg_degree random neighbours each
/// (symmetrized), random values, diagonally dominant.  For property tests.
SymSparse<double> gen_random_spd(idx_t n, int avg_degree, std::uint64_t seed);

/// Lift a real SPD matrix to a complex *symmetric* diagonally dominant one
/// with the same pattern: off-diagonals get a random imaginary part of
/// magnitude <= imag_scale * |real part|; this exercises the LDL^t-with-
/// complex-coefficients path that motivates the paper's choice of LDL^t.
SymSparse<std::complex<double>> to_complex_symmetric(const SymSparse<double>& a,
                                                     double imag_scale,
                                                     std::uint64_t seed);

/// Deterministic right-hand side such that the exact solution is
/// x[i] = 1 + i / n (used by tests and examples): b = A x.
template <class T>
std::vector<T> reference_rhs(const SymSparse<T>& a, std::vector<T>* x_out = nullptr) {
  const idx_t n = a.n();
  std::vector<T> x(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] =
        T(1.0 + static_cast<double>(i) / static_cast<double>(n));
  std::vector<T> b(static_cast<std::size_t>(n));
  spmv(a, x.data(), b.data());
  if (x_out) *x_out = std::move(x);
  return b;
}

} // namespace pastix
