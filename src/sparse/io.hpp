#pragma once
//
// Matrix-Market I/O for symmetric matrices.
//
// The paper reads Harwell-Boeing RSA files; Matrix Market is the modern
// plain-text equivalent and serves as our interchange format (`symmetric
// real/complex coordinate` headers only).
//
#include <complex>
#include <iosfwd>
#include <string>

#include "sparse/sym_sparse.hpp"

namespace pastix {

/// Write `a` as a MatrixMarket "coordinate real symmetric" file.
void write_matrix_market(std::ostream& os, const SymSparse<double>& a);
void write_matrix_market(std::ostream& os,
                         const SymSparse<std::complex<double>>& a);

/// Parse a MatrixMarket symmetric coordinate stream.  Throws pastix::Error on
/// malformed input or on an unsymmetric/array header.
SymSparse<double> read_matrix_market(std::istream& is);
SymSparse<std::complex<double>> read_matrix_market_complex(std::istream& is);

/// File-path conveniences.
void save_matrix_market(const std::string& path, const SymSparse<double>& a);
SymSparse<double> load_matrix_market(const std::string& path);

} // namespace pastix
