#include "sparse/hb_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "sparse/coo_builder.hpp"

namespace pastix {

FortranFormat parse_fortran_format(const std::string& descriptor) {
  // Accepted shapes: "(10I8)", "(4E20.12)", "(1P4D20.12)", "(8F10.3)".
  // A leading scale factor like "1P" is skipped; the mantissa part after
  // '.' is irrelevant for fixed-width reading.
  FortranFormat f;
  std::string s;
  for (const char c : descriptor)
    if (!std::isspace(static_cast<unsigned char>(c)))
      s += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  PASTIX_CHECK(s.size() >= 4 && s.front() == '(' && s.back() == ')',
               "malformed FORTRAN format: " + descriptor);
  s = s.substr(1, s.size() - 2);

  std::size_t i = 0;
  auto read_int = [&](int fallback) {
    int v = 0;
    bool any = false;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      v = v * 10 + (s[i++] - '0');
      any = true;
    }
    return any ? v : fallback;
  };

  int first = read_int(1);
  if (i < s.size() && s[i] == 'P') {  // scale factor "1P": skip, re-read
    ++i;
    first = read_int(1);
  }
  PASTIX_CHECK(i < s.size(), "truncated FORTRAN format: " + descriptor);
  f.kind = s[i];
  PASTIX_CHECK(f.kind == 'I' || f.kind == 'E' || f.kind == 'D' ||
                   f.kind == 'F' || f.kind == 'G',
               "unsupported FORTRAN edit kind in: " + descriptor);
  ++i;
  f.per_line = first;
  f.width = read_int(0);
  PASTIX_CHECK(f.per_line > 0 && f.width > 0,
               "bad FORTRAN repeat/width in: " + descriptor);
  return f;
}

namespace {

/// Reads `count` fixed-width numbers laid out `fmt.per_line` per card.
template <class Out>
void read_fixed(std::istream& is, const FortranFormat& fmt, big_t count,
                std::vector<Out>& out) {
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  std::string line;
  while (static_cast<big_t>(out.size()) < count) {
    PASTIX_CHECK(static_cast<bool>(std::getline(is, line)),
                 "unexpected end of Harwell-Boeing data section");
    for (int v = 0; v < fmt.per_line &&
                    static_cast<big_t>(out.size()) < count;
         ++v) {
      const std::size_t pos = static_cast<std::size_t>(v) * fmt.width;
      if (pos >= line.size()) break;
      std::string field = line.substr(pos, static_cast<std::size_t>(fmt.width));
      // FORTRAN D exponents are not understood by strtod.
      std::replace(field.begin(), field.end(), 'D', 'E');
      std::replace(field.begin(), field.end(), 'd', 'e');
      std::istringstream fs(field);
      Out value{};
      fs >> value;
      PASTIX_CHECK(!fs.fail(), "bad numeric field: '" + field + "'");
      out.push_back(value);
    }
  }
}

struct HbHeader {
  std::string title, key, mxtype;
  big_t ptrcrd = 0, indcrd = 0, valcrd = 0, rhscrd = 0;
  idx_t nrow = 0, ncol = 0;
  big_t nnzero = 0;
  FortranFormat ptrfmt, indfmt, valfmt;
};

HbHeader read_header(std::istream& is) {
  HbHeader h;
  std::string line;
  PASTIX_CHECK(static_cast<bool>(std::getline(is, line)), "empty HB stream");
  h.title = line.substr(0, std::min<std::size_t>(72, line.size()));
  if (line.size() > 72) h.key = line.substr(72);

  PASTIX_CHECK(static_cast<bool>(std::getline(is, line)), "missing counts card");
  {
    std::istringstream ss(line);
    big_t totcrd = 0;
    ss >> totcrd >> h.ptrcrd >> h.indcrd >> h.valcrd >> h.rhscrd;
    PASTIX_CHECK(!ss.fail() || h.valcrd >= 0, "malformed counts card");
  }

  PASTIX_CHECK(static_cast<bool>(std::getline(is, line)), "missing type card");
  {
    std::istringstream ss(line);
    big_t nrow = 0, ncol = 0, neltvl = 0;
    ss >> h.mxtype >> nrow >> ncol >> h.nnzero >> neltvl;
    PASTIX_CHECK(!ss.fail() || h.nnzero > 0, "malformed type card");
    h.nrow = static_cast<idx_t>(nrow);
    h.ncol = static_cast<idx_t>(ncol);
    PASTIX_CHECK(h.nrow == h.ncol, "matrix is not square");
  }

  PASTIX_CHECK(static_cast<bool>(std::getline(is, line)), "missing format card");
  {
    std::istringstream ss(line);
    std::string pf, inf, vf;
    ss >> pf >> inf >> vf;
    PASTIX_CHECK(!ss.fail() || !vf.empty(), "malformed format card");
    h.ptrfmt = parse_fortran_format(pf);
    h.indfmt = parse_fortran_format(inf);
    h.valfmt = parse_fortran_format(vf);
  }
  if (h.rhscrd > 0) {
    // Skip the RHS format card; right-hand sides are not read.
    PASTIX_CHECK(static_cast<bool>(std::getline(is, line)), "missing rhs card");
  }
  return h;
}

template <class T>
SymSparse<T> read_impl(std::istream& is, char expected_type) {
  const HbHeader h = read_header(is);
  PASTIX_CHECK(h.mxtype.size() >= 3, "bad MXTYPE");
  const char vtype =
      static_cast<char>(std::toupper(static_cast<unsigned char>(h.mxtype[0])));
  const char stype =
      static_cast<char>(std::toupper(static_cast<unsigned char>(h.mxtype[1])));
  PASTIX_CHECK(vtype == expected_type,
               std::string("expected value type ") + expected_type +
                   ", file has " + vtype);
  PASTIX_CHECK(stype == 'S', "only symmetric (xSA) matrices are supported");

  std::vector<big_t> colptr, rowind;
  read_fixed(is, h.ptrfmt, h.ncol + 1, colptr);
  read_fixed(is, h.indfmt, h.nnzero, rowind);
  std::vector<double> values;
  const big_t nval = expected_type == 'C' ? 2 * h.nnzero : h.nnzero;
  read_fixed(is, h.valfmt, nval, values);

  CooBuilder<T> b(h.ncol);
  for (idx_t j = 0; j < h.ncol; ++j) {
    for (big_t q = colptr[static_cast<std::size_t>(j)] - 1;
         q < colptr[static_cast<std::size_t>(j) + 1] - 1; ++q) {
      const idx_t i = static_cast<idx_t>(rowind[static_cast<std::size_t>(q)] - 1);
      PASTIX_CHECK(i >= j, "RSA stores the lower triangle; found upper entry");
      if constexpr (std::is_same_v<T, double>) {
        b.add(i, j, values[static_cast<std::size_t>(q)]);
      } else {
        b.add(i, j,
              T(values[static_cast<std::size_t>(2 * q)],
                values[static_cast<std::size_t>(2 * q + 1)]));
      }
    }
  }
  return b.build();
}

template <class T>
void write_impl(std::ostream& os, const SymSparse<T>& a,
                const std::string& title, const std::string& key,
                const char* mxtype) {
  constexpr bool kComplex = !std::is_same_v<T, double>;
  const idx_t n = a.n();
  const big_t nnz = a.nnz_offdiag() + n;  // lower triangle incl. diagonal
  const int ptr_per = 8, ind_per = 8, val_per = kComplex ? 2 : 4;
  const big_t ptrcrd = (n + 1 + ptr_per - 1) / ptr_per;
  const big_t indcrd = (nnz + ind_per - 1) / ind_per;
  const big_t nval = kComplex ? 2 * nnz : nnz;
  const big_t valcrd = (nval + val_per - 1) / val_per;

  os << std::left << std::setw(72) << title.substr(0, 72) << std::setw(8)
     << key.substr(0, 8) << "\n";
  os << std::right << std::setw(14) << (ptrcrd + indcrd + valcrd)
     << std::setw(14) << ptrcrd << std::setw(14) << indcrd << std::setw(14)
     << valcrd << std::setw(14) << 0 << "\n";
  os << std::left << std::setw(14) << mxtype << std::right << std::setw(14)
     << n << std::setw(14) << n << std::setw(14) << nnz << std::setw(14) << 0
     << "\n";
  os << std::left << std::setw(16) << "(8I10)" << std::setw(16) << "(8I10)"
     << std::setw(20) << (kComplex ? "(2E20.12)" : "(4E20.12)") << std::setw(20)
     << " " << "\n";

  // Column pointers (1-based, diagonal first in every column).
  auto emit_ints = [&os](const std::vector<big_t>& v, int per) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      os << std::right << std::setw(10) << v[i];
      if ((i + 1) % static_cast<std::size_t>(per) == 0 || i + 1 == v.size())
        os << "\n";
    }
  };
  std::vector<big_t> colptr(static_cast<std::size_t>(n) + 1);
  colptr[0] = 1;
  for (idx_t j = 0; j < n; ++j)
    colptr[static_cast<std::size_t>(j) + 1] =
        colptr[static_cast<std::size_t>(j)] + 1 +
        (a.pattern.colptr[j + 1] - a.pattern.colptr[j]);
  emit_ints(colptr, ptr_per);

  std::vector<big_t> rows;
  rows.reserve(static_cast<std::size_t>(nnz));
  for (idx_t j = 0; j < n; ++j) {
    rows.push_back(j + 1);
    for (idx_t q = a.pattern.colptr[j]; q < a.pattern.colptr[j + 1]; ++q)
      rows.push_back(a.pattern.rowind[q] + 1);
  }
  emit_ints(rows, ind_per);

  os << std::scientific << std::setprecision(12);
  big_t emitted = 0;
  auto emit_val = [&](double v) {
    os << std::setw(20) << v;
    if (++emitted % val_per == 0 || emitted == nval) os << "\n";
  };
  for (idx_t j = 0; j < n; ++j) {
    if constexpr (kComplex) {
      emit_val(a.diag[static_cast<std::size_t>(j)].real());
      emit_val(a.diag[static_cast<std::size_t>(j)].imag());
      for (idx_t q = a.pattern.colptr[j]; q < a.pattern.colptr[j + 1]; ++q) {
        emit_val(a.val[q].real());
        emit_val(a.val[q].imag());
      }
    } else {
      emit_val(a.diag[static_cast<std::size_t>(j)]);
      for (idx_t q = a.pattern.colptr[j]; q < a.pattern.colptr[j + 1]; ++q)
        emit_val(a.val[q]);
    }
  }
}

} // namespace

void write_harwell_boeing(std::ostream& os, const SymSparse<double>& a,
                          const std::string& title, const std::string& key) {
  write_impl(os, a, title, key, "RSA");
}

void write_harwell_boeing(std::ostream& os,
                          const SymSparse<std::complex<double>>& a,
                          const std::string& title, const std::string& key) {
  write_impl(os, a, title, key, "CSA");
}

SymSparse<double> read_harwell_boeing(std::istream& is) {
  return read_impl<double>(is, 'R');
}

SymSparse<std::complex<double>> read_harwell_boeing_complex(std::istream& is) {
  return read_impl<std::complex<double>>(is, 'C');
}

void save_harwell_boeing(const std::string& path, const SymSparse<double>& a) {
  std::ofstream os(path);
  PASTIX_CHECK(os.good(), "cannot open for writing: " + path);
  write_harwell_boeing(os, a);
}

SymSparse<double> load_harwell_boeing(const std::string& path) {
  std::ifstream is(path);
  PASTIX_CHECK(is.good(), "cannot open for reading: " + path);
  return read_harwell_boeing(is);
}

} // namespace pastix
