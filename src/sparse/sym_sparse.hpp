#pragma once
//
// Symmetric sparse matrix storage.
//
// The whole library works on symmetric matrices (real SPD or complex
// symmetric), so only the strict lower triangle is stored, in compressed
// sparse column (CSC) form with sorted row indices, plus a separate dense
// diagonal.  This mirrors the RSA/Harwell-Boeing convention used by the
// paper ("NNZ_A is the number of off-diagonal terms in the triangular part").
//
#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "support/check.hpp"
#include "support/scalar.hpp"
#include "support/types.hpp"

namespace pastix {

/// Structure-only view of a symmetric matrix: strict lower triangle, CSC,
/// row indices sorted increasingly within each column.
struct SparsePattern {
  idx_t n = 0;                 ///< order of the matrix
  std::vector<idx_t> colptr;   ///< size n+1
  std::vector<idx_t> rowind;   ///< size colptr[n]; entries are > column index

  [[nodiscard]] big_t nnz_offdiag() const {
    return colptr.empty() ? 0 : static_cast<big_t>(colptr[n]);
  }

  /// Validate all structural invariants (sorted, strict lower, in range).
  void validate() const {
    PASTIX_CHECK(static_cast<idx_t>(colptr.size()) == n + 1, "bad colptr size");
    PASTIX_CHECK(colptr[0] == 0, "colptr[0] != 0");
    for (idx_t j = 0; j < n; ++j) {
      PASTIX_CHECK(colptr[j] <= colptr[j + 1], "colptr not monotone");
      for (idx_t p = colptr[j]; p < colptr[j + 1]; ++p) {
        PASTIX_CHECK(rowind[p] > j && rowind[p] < n, "entry not strict lower");
        if (p > colptr[j])
          PASTIX_CHECK(rowind[p] > rowind[p - 1], "rows not sorted/unique");
      }
    }
  }
};

/// Symmetric sparse matrix: pattern + strict-lower values + dense diagonal.
/// T is `double` or `std::complex<double>` (complex *symmetric*, i.e. the
/// LDL^t path never conjugates).
template <class T>
struct SymSparse {
  SparsePattern pattern;
  std::vector<T> val;   ///< aligned with pattern.rowind
  std::vector<T> diag;  ///< size n

  [[nodiscard]] idx_t n() const { return pattern.n; }
  [[nodiscard]] big_t nnz_offdiag() const { return pattern.nnz_offdiag(); }

  void validate() const {
    pattern.validate();
    PASTIX_CHECK(val.size() == pattern.rowind.size(), "values/pattern mismatch");
    PASTIX_CHECK(static_cast<idx_t>(diag.size()) == pattern.n, "bad diag size");
  }
};

/// Symmetric sparse matrix-vector product y = A x (A given as lower+diag).
template <class T>
void spmv(const SymSparse<T>& a, const T* x, T* y) {
  const idx_t n = a.n();
  for (idx_t i = 0; i < n; ++i) y[i] = a.diag[i] * x[i];
  for (idx_t j = 0; j < n; ++j) {
    const T xj = x[j];
    T acc{};
    for (idx_t p = a.pattern.colptr[j]; p < a.pattern.colptr[j + 1]; ++p) {
      const idx_t i = a.pattern.rowind[p];
      y[i] += a.val[p] * xj;   // lower part
      acc += a.val[p] * x[i];  // mirrored upper part
    }
    y[j] += acc;
  }
}

/// Componentwise backward error  max_i |Ax - b|_i / (|A| |x| + |b|)_i —
/// the Oettli–Prager measure iterative refinement drives down.  Rows where
/// the denominator underflows to zero (possible only when row i of A and
/// b_i are both zero) fall back to the absolute residual |r_i| scaled by
/// the largest denominator, so a singular row cannot fake convergence.
/// This overload takes the residual r = b - Ax precomputed, so refinement
/// loops that already hold the residual don't pay a second spmv.
template <class T>
double componentwise_backward_error(const SymSparse<T>& a,
                                    const std::vector<T>& x,
                                    const std::vector<T>& b,
                                    const std::vector<T>& r) {
  const idx_t n = a.n();
  PASTIX_CHECK(static_cast<idx_t>(x.size()) == n &&
                   static_cast<idx_t>(b.size()) == n &&
                   static_cast<idx_t>(r.size()) == n,
               "size mismatch");
  // |A| |x| + |b| via the same symmetric traversal as spmv.
  std::vector<double> den(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i)
    den[static_cast<std::size_t>(i)] =
        std::sqrt(abs2(a.diag[i])) * std::sqrt(abs2(x[i])) +
        std::sqrt(abs2(b[i]));
  for (idx_t j = 0; j < n; ++j) {
    const double xj = std::sqrt(abs2(x[j]));
    double acc = 0;
    for (idx_t p = a.pattern.colptr[j]; p < a.pattern.colptr[j + 1]; ++p) {
      const idx_t i = a.pattern.rowind[p];
      const double v = std::sqrt(abs2(a.val[p]));
      den[static_cast<std::size_t>(i)] += v * xj;
      acc += v * std::sqrt(abs2(x[i]));
    }
    den[static_cast<std::size_t>(j)] += acc;
  }
  double den_max = 0;
  for (idx_t i = 0; i < n; ++i) den_max = std::max(den_max, den[i]);
  double berr = 0;
  for (idx_t i = 0; i < n; ++i) {
    const double ri = std::sqrt(abs2(r[static_cast<std::size_t>(i)]));
    const double d = den[static_cast<std::size_t>(i)] > 0
                         ? den[static_cast<std::size_t>(i)]
                         : den_max;
    berr = std::max(berr, d > 0 ? ri / d : ri);
  }
  return berr;
}

template <class T>
double componentwise_backward_error(const SymSparse<T>& a,
                                    const std::vector<T>& x,
                                    const std::vector<T>& b) {
  const idx_t n = a.n();
  PASTIX_CHECK(static_cast<idx_t>(x.size()) == n &&
                   static_cast<idx_t>(b.size()) == n,
               "size mismatch");
  std::vector<T> r(static_cast<std::size_t>(n));
  spmv(a, x.data(), r.data());
  for (idx_t i = 0; i < n; ++i)
    r[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)] -
                                     r[static_cast<std::size_t>(i)];
  return componentwise_backward_error(a, x, b, r);
}

/// ||A x - b||_2 / ||b||_2 — the residual check used by all solver tests.
template <class T>
double relative_residual(const SymSparse<T>& a, const std::vector<T>& x,
                         const std::vector<T>& b) {
  PASTIX_CHECK(static_cast<idx_t>(x.size()) == a.n() &&
                   static_cast<idx_t>(b.size()) == a.n(),
               "size mismatch");
  std::vector<T> ax(a.n());
  spmv(a, x.data(), ax.data());
  double num = 0, den = 0;
  for (idx_t i = 0; i < a.n(); ++i) {
    num += abs2(ax[i] - b[i]);
    den += abs2(b[i]);
  }
  return den == 0 ? std::sqrt(num) : std::sqrt(num / den);
}

} // namespace pastix
