#pragma once
//
// The experiment matrix suite: one synthetic analog per matrix of the
// paper's Table 1 (the original PARASOL structural matrices are not freely
// redistributable; see DESIGN.md for the substitution rationale).
//
// Sizes are scaled down (~4-15k unknowns instead of 30-180k) so that the
// full Table 2 sweep runs in minutes on a single host core; the mesh family
// of each analog (3D solid / shell / rod) matches the original so that the
// structural phenomena the paper reports are preserved.
//
#include <string>
#include <vector>

#include "sparse/gen.hpp"

namespace pastix {

/// One named problem of the suite.
struct SuiteProblem {
  std::string name;     ///< paper matrix name this problem stands in for
  std::string family;   ///< "solid", "shell", "rod", "plate"
  FeMeshSpec spec;      ///< generator parameters
};

/// The ten problems of the paper's Table 1, in paper order.
const std::vector<SuiteProblem>& paper_suite();

/// Look up one suite problem by (case-sensitive) name; throws if unknown.
const SuiteProblem& suite_problem(const std::string& name);

/// Generate the matrix of a suite problem.
SymSparse<double> make_suite_matrix(const SuiteProblem& p);

/// A reduced suite (a small / medium / large subset) for quick experiments.
const std::vector<SuiteProblem>& small_suite();

/// Paper-scale variants: meshes sized to the original matrices' column
/// counts (28k-180k unknowns, OPC up to ~4e10).  Factoring these needs
/// minutes per matrix on one core — intended for users with real machines,
/// and for exporting comparison inputs with examples/gen_matrix.
const std::vector<SuiteProblem>& paper_suite_fullsize();

} // namespace pastix
