#pragma once
//
// Incremental builder for symmetric sparse matrices.
//
// Accepts (i, j, v) triplets in any order, from either triangle, with
// duplicates (finite-element assembly style: duplicates are summed), and
// produces a canonical SymSparse.
//
#include <algorithm>
#include <vector>

#include "sparse/sym_sparse.hpp"

namespace pastix {

template <class T>
class CooBuilder {
public:
  explicit CooBuilder(idx_t n) : n_(n), diag_(static_cast<std::size_t>(n), T{}) {
    PASTIX_CHECK(n >= 0, "negative matrix order");
  }

  /// Add v to entry (i, j) (and by symmetry (j, i)).
  void add(idx_t i, idx_t j, T v) {
    PASTIX_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_, "entry out of range");
    if (i == j) {
      diag_[static_cast<std::size_t>(i)] += v;
    } else {
      if (i < j) std::swap(i, j);  // canonicalize to strict lower
      entries_.push_back({i, j, v});
    }
  }

  [[nodiscard]] idx_t n() const { return n_; }

  /// Assemble the canonical matrix.  The builder can be reused afterwards.
  [[nodiscard]] SymSparse<T> build() const {
    // Sort by (column, row) then compress duplicates.
    std::vector<Entry> sorted(entries_);
    std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
      return a.col != b.col ? a.col < b.col : a.row < b.row;
    });

    SymSparse<T> m;
    m.pattern.n = n_;
    m.pattern.colptr.assign(static_cast<std::size_t>(n_) + 1, 0);
    m.diag = diag_;
    m.pattern.rowind.reserve(sorted.size());
    m.val.reserve(sorted.size());

    std::size_t k = 0;
    while (k < sorted.size()) {
      const idx_t col = sorted[k].col, row = sorted[k].row;
      T sum{};
      while (k < sorted.size() && sorted[k].col == col && sorted[k].row == row)
        sum += sorted[k++].v;
      m.pattern.rowind.push_back(row);
      m.val.push_back(sum);
      m.pattern.colptr[static_cast<std::size_t>(col) + 1]++;
    }
    for (idx_t j = 0; j < n_; ++j)
      m.pattern.colptr[static_cast<std::size_t>(j) + 1] +=
          m.pattern.colptr[static_cast<std::size_t>(j)];
    m.validate();
    return m;
  }

private:
  struct Entry {
    idx_t row, col;
    T v;
  };
  idx_t n_;
  std::vector<T> diag_;
  std::vector<Entry> entries_;
};

} // namespace pastix
