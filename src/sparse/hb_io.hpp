#pragma once
//
// Harwell-Boeing (RSA) format I/O — the format the paper's experiments
// read ("a collection of sparse matrices in the RSA format").
//
// Supported matrix types: RSA (real symmetric assembled) and CSA (complex
// symmetric assembled).  The reader parses the fixed-card FORTRAN layout
// (title card, counts card, type/dimensions card, format card) and honours
// the embedded FORTRAN edit descriptors (e.g. "(10I8)", "(4E20.12)"); the
// writer emits standard descriptors.  Values are stored column-wise, lower
// triangle including the diagonal, 1-based — converted to/from this
// library's strict-lower + separate-diagonal representation.
//
#include <complex>
#include <iosfwd>
#include <string>

#include "sparse/sym_sparse.hpp"

namespace pastix {

/// Parse one FORTRAN edit descriptor, e.g. "(10I8)", "(4E20.12)",
/// "(1P4D20.12)".  Returns per-line repeat count and field width.
struct FortranFormat {
  int per_line = 0;   ///< values per card
  int width = 0;      ///< character width per value
  char kind = 'I';    ///< I, E, D, F or G
};
FortranFormat parse_fortran_format(const std::string& descriptor);

/// Write `a` as an RSA Harwell-Boeing file with the given title/key.
void write_harwell_boeing(std::ostream& os, const SymSparse<double>& a,
                          const std::string& title = "pastix-repro matrix",
                          const std::string& key = "PASTIX");
void write_harwell_boeing(std::ostream& os,
                          const SymSparse<std::complex<double>>& a,
                          const std::string& title = "pastix-repro matrix",
                          const std::string& key = "PASTIX");

/// Read an RSA file.  Throws pastix::Error on malformed input, a
/// non-symmetric type, or a pattern-only (PSA) matrix.
SymSparse<double> read_harwell_boeing(std::istream& is);
/// Read a CSA (complex symmetric assembled) file.
SymSparse<std::complex<double>> read_harwell_boeing_complex(std::istream& is);

/// File-path conveniences.
void save_harwell_boeing(const std::string& path, const SymSparse<double>& a);
SymSparse<double> load_harwell_boeing(const std::string& path);

} // namespace pastix
