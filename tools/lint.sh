#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the analysis
# and runtime layers.  Needs a compile database: configure with
#   cmake -B build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# Usage: tools/lint.sh [--fix] [build-dir] [paths...]
# Defaults: build dir ./build, paths = the layers the lint profile targets.
# --fix is passed through to clang-tidy (apply suggested fixes in place).
# Exits 0 with a notice when clang-tidy is not installed (containers that
# ship only gcc), so CI lanes can include it unconditionally — the notice
# lists exactly which checks and files the lane skipped, so a green run
# without clang-tidy is distinguishable from a green lint.
set -euo pipefail

cd "$(dirname "$0")/.."

tidy_args=()
args=()
for a in "$@"; do
  case "$a" in
    --fix) tidy_args+=(--fix) ;;
    *) args+=("$a") ;;
  esac
done

build_dir="${args[0]:-build}"
paths=("${args[@]:1}")
if [ ${#paths[@]} -eq 0 ]; then
  paths=(src/support src/rt src/map src/verify src/solver src/simul
         src/service src/core)
fi

files=()
while IFS= read -r f; do files+=("$f"); done \
  < <(find "${paths[@]}" -name '*.cpp' | sort)

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found on PATH; skipping (install clang-tools to enable)"
  echo "lint: would have run the .clang-tidy profile over ${#files[@]} file(s) in: ${paths[*]}"
  if [ -f .clang-tidy ]; then
    # Checks: may be a YAML folded block — gather its continuation lines.
    checks=$(awk '/^Checks:/ {grab=1; sub(/^Checks:[[:space:]]*>?[[:space:]]*/, ""); if ($0 != "") printf "%s ", $0; next}
                  grab && /^[[:space:]]/ {gsub(/^[[:space:]]+|,[[:space:]]*$/, ""); printf "%s ", $0; next}
                  grab {exit}' .clang-tidy)
    [ -n "${checks// /}" ] && echo "lint: would have enabled checks: ${checks}"
  fi
  for f in "${files[@]}"; do
    echo "lint:   (skipped) ${f}"
  done
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint: ${build_dir}/compile_commands.json missing" >&2
  echo "      configure with: cmake -B ${build_dir} -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

echo "lint: clang-tidy over ${#files[@]} file(s): ${paths[*]}"
status=0
for f in "${files[@]}"; do
  clang-tidy -p "${build_dir}" --quiet "${tidy_args[@]}" "$f" || status=1
done
exit "$status"
