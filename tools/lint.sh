#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the analysis
# and runtime layers.  Needs a compile database: configure with
#   cmake -B build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# Usage: tools/lint.sh [build-dir] [paths...]
# Defaults: build dir ./build, paths = the layers the lint profile targets.
# Exits 0 with a notice when clang-tidy is not installed (containers that
# ship only gcc), so CI lanes can include it unconditionally.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found on PATH; skipping (install clang-tools to enable)"
  exit 0
fi

build_dir="${1:-build}"
shift || true
if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint: ${build_dir}/compile_commands.json missing" >&2
  echo "      configure with: cmake -B ${build_dir} -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

paths=("$@")
if [ ${#paths[@]} -eq 0 ]; then
  paths=(src/support src/rt src/map src/verify)
fi

files=()
while IFS= read -r f; do files+=("$f"); done \
  < <(find "${paths[@]}" -name '*.cpp' | sort)

echo "lint: clang-tidy over ${#files[@]} file(s): ${paths[*]}"
status=0
for f in "${files[@]}"; do
  clang-tidy -p "${build_dir}" --quiet "$f" || status=1
done
exit "$status"
