#!/usr/bin/env bash
# The full CI gate, runnable locally or from .github/workflows/ci.yml.
#
# Lanes (select with arguments; default runs all):
#   tier1  — default preset build + the tier-1 regression suite, which now
#            includes the `verify` label (static plan verifier mutation
#            harness + plan-file hostile-input tests) in the default lane
#   bench  — smoke-sized benchmark runs (includes the verifier <=5% budget)
#   lint   — clang-tidy profile over src/support, src/rt, src/map,
#            src/verify, src/solver, src/simul, src/service, src/core
#            (skips cleanly when clang-tidy is absent)
#   service— multi-tenant service suite (admission/cache/retry/chaos) on
#            the default preset, plus the chaos storms under TSan
#   solve  — solve-phase suite (panel solve, solve-plan verifier mutations,
#            chaos delivery through the scheduled solve) plus the multi-RHS
#            throughput bench with its >= 2x acceptance bar
#   hybrid — hybrid static/dynamic execution suite (determinism sweep,
#            relaxed trace replay, chaos + rank-kill recovery) plus the
#            tail-vs-static makespan bench with its never-slower / >= 10%
#            acceptance bar, then the Hybrid* suites again under TSan
#   integrity — data-integrity suite (message/checkpoint/factor/plan
#            checksums, the seeded SDC chaos battery at 1/2/4 ranks) on
#            the default preset, then the SDC battery again under ASan
#   mc     — concurrency model checker: -DPASTIX_MC=ON preset build, then
#            the `mc` ctest label (schedule-exploration smoke suite plus
#            the full runtime-protocol battery; DESIGN.md §16)
#   ubsan  — UndefinedBehaviorSanitizer preset + verifier/comm/solver tests
#   asan   — Address+UB sanitizer preset, runtime-focused test filter
#   tsan   — ThreadSanitizer preset, runtime-focused test filter (includes
#            the Service* suites)
#
# Usage: tools/ci.sh [lane ...]
set -euo pipefail

cd "$(dirname "$0")/.."

lanes=("$@")
if [ ${#lanes[@]} -eq 0 ]; then
  lanes=(tier1 bench service solve hybrid integrity mc lint ubsan asan tsan)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

run_lane() {
  echo
  echo "=== ci lane: $1 ==="
  case "$1" in
    tier1)
      cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
      cmake --build build -j "${jobs}"
      ctest --test-dir build -L tier1 -j "${jobs}" --output-on-failure
      ;;
    bench)
      cmake --preset default
      cmake --build build -j "${jobs}"
      ctest --test-dir build -L bench --output-on-failure
      ;;
    service)
      cmake --preset default
      cmake --build build -j "${jobs}"
      ctest --test-dir build -L service -j "${jobs}" --output-on-failure
      cmake --preset tsan
      cmake --build build-tsan -j "${jobs}"
      ctest --test-dir build-tsan -R "ServiceChaos" -j "${jobs}" \
            --output-on-failure
      ;;
    solve)
      cmake --preset default
      cmake --build build -j "${jobs}"
      ctest --test-dir build -L solve -j "${jobs}" --output-on-failure
      ;;
    hybrid)
      cmake --preset default
      cmake --build build -j "${jobs}"
      ctest --test-dir build -L hybrid -j "${jobs}" --output-on-failure
      cmake --preset tsan
      cmake --build build-tsan -j "${jobs}"
      ctest --test-dir build-tsan -R "Hybrid" -j "${jobs}" \
            --output-on-failure
      ;;
    integrity)
      cmake --preset default
      cmake --build build -j "${jobs}"
      ctest --test-dir build -L integrity -j "${jobs}" --output-on-failure
      cmake --preset asan
      cmake --build build-asan -j "${jobs}"
      ctest --test-dir build-asan -R "Sdc|Integrity" -j "${jobs}" \
            --output-on-failure
      ;;
    mc)
      cmake --preset mc
      cmake --build build-mc -j "${jobs}"
      # The mc tests are RUN_SERIAL (the explorer is a process-wide
      # singleton); -j only parallelizes discovery around them.
      ctest --test-dir build-mc -L mc -j "${jobs}" --output-on-failure
      ;;
    lint)
      cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
      tools/lint.sh build
      ;;
    ubsan)
      cmake --preset ubsan
      cmake --build build-ubsan -j "${jobs}"
      ctest --preset ubsan -j "${jobs}" --output-on-failure
      ;;
    asan)
      cmake --preset asan
      cmake --build build-asan -j "${jobs}"
      ctest --preset asan -j "${jobs}" --output-on-failure
      ;;
    tsan)
      cmake --preset tsan
      cmake --build build-tsan -j "${jobs}"
      ctest --preset tsan -j "${jobs}" --output-on-failure
      ;;
    *)
      echo "ci: unknown lane '$1' (tier1|bench|service|solve|hybrid|integrity|mc|lint|ubsan|asan|tsan)" >&2
      exit 2
      ;;
  esac
}

for lane in "${lanes[@]}"; do
  run_lane "${lane}"
done
echo
echo "ci: all lanes passed (${lanes[*]})"
