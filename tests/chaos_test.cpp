// Chaos / graceful-degradation harness: drive adversarial inputs and
// adversarial message delivery through the full analyze -> factorize ->
// solve pipeline at 1-8 ranks, and assert that every run ends in one of the
// two sanctioned outcomes — a structured FactorStatus / pastix::Error, or a
// perturb+refine recovery with a small backward error.  No hang, no bare
// crash, no silent NaN.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <thread>

#include "core/pastix.hpp"
#include "simul/runtime_trace.hpp"
#include "sparse/coo_builder.hpp"
#include "sparse/gen.hpp"
#include "support/rng.hpp"

namespace pastix {
namespace {

using namespace std::chrono_literals;

// Backstop: any blocked recv turns into a diagnostic error instead of a
// hang, so a protocol bug fails the test instead of timing it out.
constexpr auto kDeadline = 10000ms;

// ------------------------------------------------------------ generators --

/// Diagonally dominant but *indefinite*: random SPD with a random subset of
/// diagonal signs flipped.  LDL^t without pivoting stays stable (no pivot
/// can come near zero), so this must factor cleanly and solve accurately.
SymSparse<double> gen_indefinite(idx_t n, int degree, std::uint64_t seed) {
  SymSparse<double> a = gen_random_spd(n, degree, seed);
  Rng rng(seed ^ 0xdefaced);
  for (idx_t i = 0; i < n; ++i)
    if (rng.next_double() < 0.4) a.diag[static_cast<std::size_t>(i)] *= -1.0;
  return a;
}

/// Exactly singular: one vertex's row/column (including the diagonal) is
/// zeroed out — the pivot at that unknown is bit-exact zero.
SymSparse<double> gen_singular_zero_row(idx_t n, int degree,
                                        std::uint64_t seed) {
  const SymSparse<double> s = gen_random_spd(n, degree, seed);
  const idx_t dead = static_cast<idx_t>(seed % static_cast<std::uint64_t>(n));
  CooBuilder<double> b(n);
  for (idx_t j = 0; j < n; ++j) {
    if (j != dead) b.add(j, j, s.diag[static_cast<std::size_t>(j)]);
    for (idx_t q = s.pattern.colptr[j]; q < s.pattern.colptr[j + 1]; ++q) {
      const idx_t i = s.pattern.rowind[q];
      if (i == dead || j == dead) continue;
      b.add(i, j, s.val[q]);
    }
  }
  return b.build();
}

/// Near-singular: a few diagonal entries scaled down to ~1e-16 of the
/// matrix norm, producing pivots below the admission threshold's magnitude
/// neighbourhood without exact zeros.
SymSparse<double> gen_near_singular(idx_t n, int degree, std::uint64_t seed) {
  SymSparse<double> a = gen_random_spd(n, degree, seed);
  Rng rng(seed ^ 0xabcdef);
  for (int hits = 0; hits < 3; ++hits) {
    const idx_t i = static_cast<idx_t>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    a.diag[static_cast<std::size_t>(i)] *= 1e-16;
  }
  return a;
}

/// Duplicate-entry assembly: every structural entry added twice with half
/// the value (finite-element style), must be bit-identical to the clean
/// build after CooBuilder compression.
SymSparse<double> gen_duplicate_entries(idx_t n, int degree,
                                        std::uint64_t seed) {
  const SymSparse<double> s = gen_random_spd(n, degree, seed);
  CooBuilder<double> b(n);
  for (idx_t j = 0; j < n; ++j) {
    b.add(j, j, s.diag[static_cast<std::size_t>(j)] / 2);
    b.add(j, j, s.diag[static_cast<std::size_t>(j)] / 2);
    for (idx_t q = s.pattern.colptr[j]; q < s.pattern.colptr[j + 1]; ++q) {
      // Add from both triangles — CooBuilder canonicalizes.
      b.add(s.pattern.rowind[q], j, s.val[q] / 2);
      b.add(j, s.pattern.rowind[q], s.val[q] / 2);
    }
  }
  return b.build();
}

// ------------------------------------------------------- property sweep ---

enum class Scenario { kIndefinite, kSingular, kNearSingular, kDuplicates };

struct ChaosCase {
  const char* name;
  Scenario scenario;
  idx_t n;
  int degree;
  idx_t nprocs;
  std::uint64_t seed;
};

class ChaosPipeline : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosPipeline, StructuredOutcomeOrRecovery) {
  const ChaosCase& cc = GetParam();
  SymSparse<double> a;
  switch (cc.scenario) {
    case Scenario::kIndefinite:
      a = gen_indefinite(cc.n, cc.degree, cc.seed);
      break;
    case Scenario::kSingular:
      a = gen_singular_zero_row(cc.n, cc.degree, cc.seed);
      break;
    case Scenario::kNearSingular:
      a = gen_near_singular(cc.n, cc.degree, cc.seed);
      break;
    case Scenario::kDuplicates:
      a = gen_duplicate_entries(cc.n, cc.degree, cc.seed);
      break;
  }

  SolverOptions opt;
  opt.nprocs = cc.nprocs;
  Solver<double> solver(opt);
  solver.analyze(a);
  solver.comm().set_recv_deadline(kDeadline);

  try {
    solver.factorize();
  } catch (const Error& e) {
    // Sanctioned outcome 1: a structured error (located breakdown), never a
    // hang — reaching this catch at all proves every rank unwound.
    EXPECT_NE(solver.stats().factor_status.first_breakdown, kNone)
        << cc.name << ": error without a located breakdown: " << e.what();
    return;
  }

  const FactorStatus& fs = solver.stats().factor_status;
  const std::vector<double> b = reference_rhs(a);
  const auto res = solver.solve_adaptive(b, 1e-12);

  if (res.converged) {
    // Sanctioned outcome 2: recovery — clean or perturbed+refined — with a
    // small backward error.
    EXPECT_LE(res.backward_error, 1e-10) << cc.name;
  } else {
    // Sanctioned outcome 1 again, in report form: refinement could not
    // reach the target (e.g. truly singular A), so the factorization must
    // say why — perturbed pivots on record.
    EXPECT_FALSE(fs.clean())
        << cc.name << ": refinement stalled at backward error "
        << res.backward_error << " but the factorization claims it was clean";
  }

  // Scenario-specific structure of the report.
  if (cc.scenario == Scenario::kSingular) {
    EXPECT_GE(fs.perturbations, 1) << cc.name;
    EXPECT_NE(fs.first_breakdown, kNone) << cc.name;
    EXPECT_LE(fs.min_pivot_abs, solver.numeric().pivot_threshold()) << cc.name;
  }
  if (cc.scenario == Scenario::kIndefinite ||
      cc.scenario == Scenario::kDuplicates) {
    EXPECT_TRUE(fs.clean()) << cc.name << ": " << fs.to_string();
    EXPECT_TRUE(res.converged) << cc.name << ": backward error "
                               << res.backward_error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Degradation, ChaosPipeline,
    ::testing::Values(
        ChaosCase{"indefinite_p1", Scenario::kIndefinite, 120, 5, 1, 21},
        ChaosCase{"indefinite_p3", Scenario::kIndefinite, 150, 6, 3, 22},
        ChaosCase{"indefinite_p8", Scenario::kIndefinite, 200, 5, 8, 23},
        ChaosCase{"singular_p1", Scenario::kSingular, 90, 5, 1, 31},
        ChaosCase{"singular_p2", Scenario::kSingular, 120, 4, 2, 32},
        ChaosCase{"singular_p5", Scenario::kSingular, 150, 6, 5, 33},
        ChaosCase{"singular_p8", Scenario::kSingular, 170, 5, 8, 34},
        ChaosCase{"near_singular_p1", Scenario::kNearSingular, 100, 5, 1, 41},
        ChaosCase{"near_singular_p4", Scenario::kNearSingular, 140, 5, 4, 42},
        ChaosCase{"near_singular_p7", Scenario::kNearSingular, 160, 4, 7, 43},
        ChaosCase{"duplicates_p1", Scenario::kDuplicates, 110, 5, 1, 51},
        ChaosCase{"duplicates_p6", Scenario::kDuplicates, 130, 5, 6, 52}),
    [](const auto& info) { return info.param.name; });

// --------------------------------------------- fault-injected deliveries --

// The static communication plan must tolerate adversarial delivery order:
// delayed and front-inserted messages exercise the out-of-order tag
// matching on every (source, tag) stream of the real pipeline.
TEST(ChaosComm, PipelineSurvivesDelayAndReorderInjection) {
  const SymSparse<double> a = gen_fe_mesh({8, 8, 3, 1, 1, 77});
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SolverOptions opt;
    opt.nprocs = 4;
    Solver<double> solver(opt);
    solver.analyze(a);
    solver.comm().set_recv_deadline(kDeadline);
    rt::FaultInjection faults;
    faults.seed = seed;
    faults.delay_prob = 0.15;
    faults.reorder_prob = 0.25;
    solver.comm().set_fault_injection(faults);
    solver.factorize();
    EXPECT_TRUE(solver.stats().factor_status.clean());
    const std::vector<double> b = reference_rhs(a);
    const auto x = solver.solve(b);
    EXPECT_LT(relative_residual(a, x, b), 1e-10) << "seed " << seed;
  }
}

// Fan-Both partial aggregation under chaos: with partial_chunk > 0 a
// sender flushes several partial AUB messages per target, so adversarial
// delivery order exercises the multi-message-per-(source, tag) matching
// that total aggregation never produces.  Sweep the flush cadence across
// both rank counts the recovery tests use.
TEST(ChaosComm, FanBothPartialAggregationSurvivesInjection) {
  const SymSparse<double> a = gen_fe_mesh({8, 8, 3, 1, 1, 77});
  const std::vector<double> b = reference_rhs(a);
  for (const idx_t chunk : {idx_t{1}, idx_t{2}, idx_t{4}}) {
    for (const idx_t nprocs : {idx_t{2}, idx_t{4}}) {
      SolverOptions opt;
      opt.nprocs = nprocs;
      opt.fanin.partial_chunk = chunk;
      Solver<double> solver(opt);
      solver.analyze(a);
      solver.comm().set_recv_deadline(kDeadline);
      rt::FaultInjection faults;
      faults.seed = 7 * static_cast<std::uint64_t>(chunk) +
                    static_cast<std::uint64_t>(nprocs);
      faults.delay_prob = 0.15;
      faults.reorder_prob = 0.25;
      solver.comm().set_fault_injection(faults);
      solver.factorize();
      EXPECT_TRUE(solver.stats().factor_status.clean())
          << "chunk " << chunk << " nprocs " << nprocs;
      const auto x = solver.solve(b);
      EXPECT_LT(relative_residual(a, x, b), 1e-10)
          << "chunk " << chunk << " nprocs " << nprocs;
    }
  }
}

// Tracing under chaos: fault-injected deliveries must not change what the
// trace *records* — the event stream is protocol-determined.  Per-tag
// send/recv counts and bytes are identical to a clean run, the timeline
// invariants hold, the K_p execution order is exact, and the whole thing is
// deterministic under a fixed seed.
TEST(ChaosTrace, FaultInjectedRunsStillPassTraceValidation) {
  const SymSparse<double> a = gen_fe_mesh({8, 8, 3, 1, 1, 77});

  // Per-tag (sends, recvs, send_bytes, recv_bytes) signature of one run.
  using TagSig = std::map<std::uint64_t, std::array<std::uint64_t, 4>>;
  const auto traced_run = [&](std::uint64_t seed) {
    SolverOptions opt;
    opt.nprocs = 4;
    Solver<double> solver(opt);
    solver.analyze(a);
    solver.comm().set_recv_deadline(kDeadline);
    if (seed != 0) {
      rt::FaultInjection faults;
      faults.seed = seed;
      faults.delay_prob = 0.15;
      faults.reorder_prob = 0.25;
      solver.comm().set_fault_injection(faults);
    }
    solver.enable_tracing(true);
    solver.factorize();
    EXPECT_TRUE(solver.stats().factor_status.clean());

    const RuntimeTrace tr = solver.runtime_trace();
    EXPECT_NO_THROW(tr.validate_against(solver.schedule())) << "seed " << seed;
    EXPECT_TRUE(solver.stats().trace.task_sets_match) << "seed " << seed;

    TagSig sig;
    for (const auto& e : tr.comm) {
      auto& s = sig[e.tag];
      s[e.is_send ? 0 : 1]++;
      s[e.is_send ? 2 : 3] += e.bytes;
    }
    for (const auto& [tag, s] : sig) {
      EXPECT_EQ(s[0], s[1]) << rt::describe_tag(tag) << " seed " << seed;
      EXPECT_EQ(s[2], s[3]) << rt::describe_tag(tag) << " seed " << seed;
    }

    // The numbers must still be right under injected chaos.
    const std::vector<double> b = reference_rhs(a);
    const auto x = solver.solve(b);
    EXPECT_LT(relative_residual(a, x, b), 1e-10) << "seed " << seed;
    return sig;
  };

  const TagSig clean = traced_run(0);
  const TagSig faulted = traced_run(7);
  const TagSig faulted_again = traced_run(7);
  EXPECT_EQ(faulted, faulted_again);  // deterministic under a fixed seed
  EXPECT_EQ(clean, faulted);          // protocol-determined, fault-free view
}

// Duplicate injection copies messages at *delivery*; the send side is
// untouched and every recv() still consumes exactly one copy, so the traced
// event stream stays protocol-shaped: one send record, one recv record per
// recv() call.
TEST(ChaosTrace, DuplicateInjectionKeepsEventStreamProtocolShaped) {
  rt::Comm comm(2);
  rt::TraceRecorder rec(2);
  rec.set_enabled(true);
  comm.set_tracer(&rec);
  rt::FaultInjection f;
  f.seed = 3;
  f.duplicate_prob = 1.0;
  comm.set_fault_injection(f);

  const auto tag = rt::make_tag(rt::MsgKind::kDiag, 9);
  const double v = 2.25;
  comm.send_array(1, 0, tag, &v, 1);
  EXPECT_EQ(comm.pending(0), 2u);  // two delivered copies of one send
  (void)comm.recv(0, tag);

  idx_t sends = 0;
  for (const auto& r : rec.events(1))
    if (r.kind == rt::TraceKind::kSend) ++sends;
  idx_t recvs = 0;
  for (const auto& r : rec.events(0))
    if (r.kind == rt::TraceKind::kRecv) ++recvs;
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);
}

// Injected delivery delay shows up where the schedule comparison reports
// it: as receive-blocked time attributed to the waiting task, not as task
// work.  A sender that stalls 50 ms pins the lower bound.
TEST(ChaosTrace, InjectedDelayIsAttributedToRecvBlockedTime) {
  rt::Comm comm(2);
  rt::TraceRecorder rec(2);
  rec.set_enabled(true);
  comm.set_tracer(&rec);
  rt::FaultInjection f;
  f.seed = 5;
  f.delay_prob = 1.0;  // every delivery is stashed until the receiver blocks
  comm.set_fault_injection(f);

  const auto tag = rt::make_tag(rt::MsgKind::kAub, 3);
  rt::run_ranks(comm, 2, [&](int rank) {
    if (rank == 1) {
      std::this_thread::sleep_for(50ms);
      const double v = 1.0;
      comm.send_array(1, 0, tag, &v, 1);
    } else {
      rt::TraceRecord task;
      task.kind = rt::TraceKind::kTask;
      task.id1 = 0;
      task.id2 = 0;
      const rt::ScopedSpan span(&rec, 0, task);
      (void)comm.recv(0, tag);
    }
  });

  const RuntimeTrace tr = build_runtime_trace(rec);
  ASSERT_EQ(tr.tasks.size(), 1u);
  EXPECT_GE(tr.tasks[0].recv_wait_seconds, 0.040);
  // The wait is carved out of the span, not double-counted as work.
  EXPECT_LE(tr.tasks[0].work_seconds(),
            (tr.tasks[0].end - tr.tasks[0].start) -
                tr.tasks[0].recv_wait_seconds + 1e-9);
}

// A deliberately failing rank must unblock every peer within the receive
// deadline, and the *root cause* must be what the caller sees.
TEST(ChaosComm, FailingRankUnblocksPeersWithRootCause) {
  rt::Comm comm(4);
  comm.set_recv_deadline(kDeadline);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    rt::run_ranks(comm, 4, [&](int rank) {
      if (rank == 2) throw Error("deliberate failure on rank 2");
      // Everyone else blocks on a message that will never come.
      (void)comm.recv(rank, rt::make_tag(rt::MsgKind::kDiag, 7));
    });
    FAIL() << "run_ranks must rethrow";
  } catch (const rt::AbortError&) {
    FAIL() << "secondary abort wakeup must not mask the root cause";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deliberate failure"),
              std::string::npos);
  }
  // Peers unblocked via abort(), far before the recv deadline.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, kDeadline);
}

// A receive that can never be satisfied must turn into a diagnostic listing
// the wanted tag and the pending (source, tag) pairs — not a hang.
TEST(ChaosComm, RecvDeadlineReportsPendingTags) {
  rt::Comm comm(2);
  comm.set_recv_deadline(200ms);
  // Queue something unrelated first so the diagnostic has a pending entry;
  // single-threaded on purpose — the send is in the box before the recv.
  const double v = 1.0;
  comm.send_array(1, 0, rt::make_tag(rt::MsgKind::kPanel, 3, 4), &v, 1);
  std::string diag;
  try {
    (void)comm.recv(0, rt::make_tag(rt::MsgKind::kDiag, 42));
    FAIL() << "recv must not succeed";
  } catch (const Error& e) {
    diag = e.what();
  }
  EXPECT_NE(diag.find("deadline"), std::string::npos) << diag;
  EXPECT_NE(diag.find("DIAG(42)"), std::string::npos) << diag;      // wanted
  EXPECT_NE(diag.find("PANEL(3, 4)"), std::string::npos) << diag;   // pending
  EXPECT_NE(diag.find("from 1"), std::string::npos) << diag;        // source
}

// NaN input must be caught at a panel boundary with a located, structured
// error on every rank count — never propagated into the factor or hung on.
TEST(ChaosPipelineNonFinite, NanInputIsCaughtStructurally) {
  for (const idx_t nprocs : {1, 3, 6}) {
    SymSparse<double> a = gen_random_spd(80, 5, 99);
    a.diag[17] = std::numeric_limits<double>::quiet_NaN();
    SolverOptions opt;
    opt.nprocs = nprocs;
    Solver<double> solver(opt);
    solver.analyze(a);
    solver.comm().set_recv_deadline(kDeadline);
    try {
      solver.factorize();
      FAIL() << "NaN input must not factor";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
          << e.what();
    }
    EXPECT_NE(solver.stats().factor_status.nonfinite_at, kNone);
  }
}

// solve_adaptive on a clean SPD problem: converged, tiny backward error,
// and the step count stays modest (no perturbation means no escalation).
TEST(AdaptiveSolve, CleanProblemConvergesFast) {
  const SymSparse<double> a = gen_fe_mesh({10, 10, 2, 2, 1, 5});
  SolverOptions opt;
  opt.nprocs = 3;
  Solver<double> solver(opt);
  solver.analyze(a);
  solver.factorize();
  EXPECT_TRUE(solver.stats().factor_status.clean());
  const std::vector<double> b = reference_rhs(a);
  const auto res = solver.solve_adaptive(b);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.backward_error, 1e-12);
  EXPECT_LE(res.steps, 8);
  EXPECT_FALSE(res.diverged);
  EXPECT_LT(relative_residual(a, res.x, b), 1e-12);
}

} // namespace
} // namespace pastix
