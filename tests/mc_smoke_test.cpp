//
// Model-checker smoke suite (ctest label `mc`, RUN_SERIAL).
//
// Explores the instrumented sim:: primitives directly, so it validates the
// scheduler, the sleep-set and PCT explorers, the vector-clock race detector
// and the blocked-state classifier in EVERY build configuration — the
// PASTIX_MC option only changes what the mc:: aliases in sync.hpp name, not
// whether these types exist.
//
#include "mc/explore.hpp"
#include "mc/sim.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

namespace sim = pastix::mc::sim;
using pastix::mc::Diag;
using pastix::mc::Options;
using pastix::mc::Result;

namespace {

Options exhaustive() {
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  return opt;
}

Options pct(int schedules, std::uint64_t seed = 0x5eedULL) {
  Options opt;
  opt.mode = Options::Mode::kPct;
  opt.max_schedules = schedules;
  opt.seed = seed;
  return opt;
}

} // namespace

// The satellite smoke pair: one exhaustive and one seeded-PCT exploration of
// a clean two-thread protocol, both race-free.
TEST(McSmoke, ExhaustiveCleanCounterIsRaceFree) {
  sim::Mutex mu;
  int counter = 0;
  const Result res = pastix::mc::explore(exhaustive(), [&] {
    counter = 0;
    auto inc = [&] {
      std::unique_lock<sim::Mutex> lock(mu);
      sim::race_write(&counter, "smoke counter");
      ++counter;
    };
    sim::Thread a(inc);
    sim::Thread b(inc);
    a.join();
    b.join();
    pastix::mc::require(counter == 2, "smoke.counter-total");
  });
  ASSERT_TRUE(res.ok) << res.failure->format();
  EXPECT_TRUE(res.complete);
  EXPECT_GE(res.schedules, 2);  // the two lock orders at minimum
  EXPECT_EQ(counter, 2);
}

TEST(McSmoke, SeededPctCleanCounterIsRaceFree) {
  sim::Mutex mu;
  int counter = 0;
  const Result res = pastix::mc::explore(pct(25), [&] {
    counter = 0;
    auto inc = [&] {
      std::unique_lock<sim::Mutex> lock(mu);
      sim::race_write(&counter, "smoke counter");
      ++counter;
    };
    sim::Thread a(inc);
    sim::Thread b(inc);
    a.join();
    b.join();
  });
  ASSERT_TRUE(res.ok) << res.failure->format();
  EXPECT_EQ(res.schedules, 25);
  EXPECT_EQ(counter, 2);
}

TEST(McSmoke, UnlockedCounterIsADataRaceAndReplays) {
  int counter = 0;
  auto body = [&] {
    counter = 0;
    auto inc = [&] {
      sim::race_write(&counter, "smoke counter");
      ++counter;
    };
    sim::Thread a(inc);
    sim::Thread b(inc);
    a.join();
    b.join();
  };
  const Result res = pastix::mc::explore(exhaustive(), body);
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure->diag, Diag::kDataRace);
  EXPECT_EQ(res.failure->label, "smoke counter");
  EXPECT_FALSE(res.failure->trace.empty());

  // The printed token replays the exact interleaving deterministically.
  const Result again = pastix::mc::replay(res.failure->replay_token(), body);
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(again.failure->diag, Diag::kDataRace);
  EXPECT_EQ(again.failure->label, "smoke counter");
  EXPECT_EQ(again.schedules, 1);
}

TEST(McSmoke, AtomicCounterIsRaceFree) {
  sim::Atomic<int> counter{0};
  const Result res = pastix::mc::explore(exhaustive(), [&] {
    counter.store(0);
    auto inc = [&] { counter.fetch_add(1); };
    sim::Thread a(inc);
    sim::Thread b(inc);
    a.join();
    b.join();
    pastix::mc::require(counter.load() == 2, "smoke.atomic-total");
  });
  ASSERT_TRUE(res.ok) << res.failure->format();
  EXPECT_TRUE(res.complete);
}

TEST(McSmoke, AbbaLockOrderIsADeadlock) {
  sim::Mutex a, b;
  const Result res = pastix::mc::explore(exhaustive(), [&] {
    sim::Thread t1([&] {
      std::unique_lock<sim::Mutex> la(a);
      std::unique_lock<sim::Mutex> lb(b);
    });
    sim::Thread t2([&] {
      std::unique_lock<sim::Mutex> lb(b);
      std::unique_lock<sim::Mutex> la(a);
    });
    t1.join();
    t2.join();
  });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure->diag, Diag::kDeadlock);
  EXPECT_NE(res.failure->message.find("blocked"), std::string::npos);
}

TEST(McSmoke, ForgottenNotifyIsALostWakeup) {
  sim::Mutex mu;
  sim::CondVar cv;
  bool flag = false;
  const Result res = pastix::mc::explore(exhaustive(), [&] {
    flag = false;
    sim::Thread waiter([&] {
      std::unique_lock<sim::Mutex> lock(mu);
      cv.wait(lock, [&] { return flag; });
    });
    sim::Thread setter([&] {
      std::unique_lock<sim::Mutex> lock(mu);
      flag = true;
      // BUG under test: no cv.notify_all() after publishing the state.
    });
    waiter.join();
    setter.join();
  });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure->diag, Diag::kLostWakeup);
}

TEST(McSmoke, TimedWaitRescuesTheForgottenNotify) {
  // Same protocol, but the waiter polls with a timeout: virtual time
  // advances when everything blocks, so every schedule terminates cleanly.
  sim::Mutex mu;
  sim::CondVar cv;
  bool flag = false;
  const Result res = pastix::mc::explore(exhaustive(), [&] {
    flag = false;
    sim::Thread waiter([&] {
      std::unique_lock<sim::Mutex> lock(mu);
      while (!flag)
        cv.wait_for(lock, std::chrono::milliseconds(1));
    });
    sim::Thread setter([&] {
      std::unique_lock<sim::Mutex> lock(mu);
      flag = true;
    });
    waiter.join();
    setter.join();
  });
  ASSERT_TRUE(res.ok) << res.failure->format();
}

TEST(McSmoke, SleepersWakeThroughVirtualTime) {
  int done = 0;
  const Result res = pastix::mc::explore(exhaustive(), [&] {
    done = 0;
    sim::Thread t([&] {
      sim::sleep_for(std::chrono::milliseconds(5));
      done = 1;
    });
    t.join();
    pastix::mc::require(done == 1, "smoke.sleeper-finished");
  });
  ASSERT_TRUE(res.ok) << res.failure->format();
}

TEST(McSmoke, UnpairedUnlockIsADoubleRelease) {
  sim::Mutex mu;
  const Result res = pastix::mc::explore(exhaustive(), [&] { mu.unlock(); });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure->diag, Diag::kDoubleRelease);
}

TEST(McSmoke, JoinOfUnstartedThreadIsInvalid) {
  const Result res = pastix::mc::explore(exhaustive(), [] {
    sim::Thread never_started;
    never_started.join();
  });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure->diag, Diag::kInvalidJoin);
}

TEST(McSmoke, OrderSensitiveAssertIsFoundWithItsLabel) {
  sim::Mutex mu;
  int last = 0;
  const Result res = pastix::mc::explore(exhaustive(), [&] {
    last = 0;
    auto write = [&](int v) {
      return [&, v] {
        std::unique_lock<sim::Mutex> lock(mu);
        sim::race_write(&last, "smoke last-writer");
        last = v;
      };
    };
    sim::Thread a(write(1));
    sim::Thread b(write(2));
    a.join();
    b.join();
    pastix::mc::require(last == 2, "smoke.lost-update");
  });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure->diag, Diag::kAssertFailed);
  EXPECT_EQ(res.failure->label, "smoke.lost-update");
  // ...and the failing interleaving replays to the same verdict.
  const Result again = pastix::mc::replay(res.failure->replay_token(), [&] {
    last = 0;
    auto write = [&](int v) {
      return [&, v] {
        std::unique_lock<sim::Mutex> lock(mu);
        sim::race_write(&last, "smoke last-writer");
        last = v;
      };
    };
    sim::Thread a(write(1));
    sim::Thread b(write(2));
    a.join();
    b.join();
    pastix::mc::require(last == 2, "smoke.lost-update");
  });
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(again.failure->diag, Diag::kAssertFailed);
}

TEST(McSmoke, UncaughtExceptionIsReported) {
  const Result res = pastix::mc::explore(exhaustive(), [] {
    sim::Thread t([] { throw std::runtime_error("boom in a checked thread"); });
    t.join();
  });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure->diag, Diag::kException);
  EXPECT_NE(res.failure->message.find("boom"), std::string::npos);
}

TEST(McSmoke, ReplayTokenRoundTrip) {
  const auto ok = pastix::mc::parse_replay_token("mc:v1:0.1.0.2");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->size(), 4u);
  EXPECT_EQ((*ok)[3], 2);
  EXPECT_FALSE(pastix::mc::parse_replay_token("mc:v2:0.1").has_value());
  EXPECT_FALSE(pastix::mc::parse_replay_token("mc:v1:0..1").has_value());
  EXPECT_FALSE(pastix::mc::parse_replay_token("nonsense").has_value());
}

TEST(McSmoke, SleepSetReductionPrunesCommutingSchedules) {
  // Two threads touching DIFFERENT mutexes commute everywhere: the reduced
  // exhaustive space must be much smaller than the unreduced interleaving
  // count, and still complete.
  sim::Mutex ma, mb;
  int a = 0, b = 0;
  const Result res = pastix::mc::explore(exhaustive(), [&] {
    a = b = 0;
    sim::Thread ta([&] {
      std::unique_lock<sim::Mutex> lock(ma);
      sim::race_write(&a, "independent a");
      ++a;
    });
    sim::Thread tb([&] {
      std::unique_lock<sim::Mutex> lock(mb);
      sim::race_write(&b, "independent b");
      ++b;
    });
    ta.join();
    tb.join();
  });
  ASSERT_TRUE(res.ok) << res.failure->format();
  EXPECT_TRUE(res.complete);
  // Unreduced, two 4-op threads interleave in C(8,4) = 70 ways; sleep sets
  // collapse independent permutations to a handful of schedules.
  EXPECT_LE(res.schedules, 16);
}

TEST(McSmoke, FallbackModeWorksWithoutAnExplorer) {
  // Outside explore() the sim types degrade to plain std-backed primitives.
  sim::Mutex mu;
  sim::CondVar cv;
  sim::Atomic<int> ticket{0};
  bool ready = false;
  sim::Thread t([&] {
    std::unique_lock<sim::Mutex> lock(mu);
    ready = true;
    ticket.fetch_add(1);
    cv.notify_all();
  });
  {
    std::unique_lock<sim::Mutex> lock(mu);
    cv.wait(lock, [&] { return ready; });
  }
  t.join();
  EXPECT_EQ(ticket.load(), 1);
  EXPECT_FALSE(pastix::mc::under_exploration());
}
