// Tests for the blocked dense factorizations: bit-level agreement with the
// unblocked kernels is not required (different summation order), but
// reconstruction accuracy must match at every size, including non-multiples
// of the panel width and the dispatch cutover.
#include <gtest/gtest.h>

#include "dkernel/blocked_factor.hpp"
#include "dkernel/dense_matrix.hpp"
#include "support/rng.hpp"

namespace pastix {
namespace {

using C = std::complex<double>;

template <class T>
DenseMatrix<T> random_spd(idx_t n, std::uint64_t seed) {
  DenseMatrix<T> a(n, n);
  Rng rng(seed);
  for (idx_t j = 0; j < n; ++j)
    for (idx_t i = 0; i <= j; ++i) {
      const double v = rng.next_double() - 0.5;
      a(j, i) = T(v);
      a(i, j) = T(v);
    }
  for (idx_t i = 0; i < n; ++i) a(i, i) = T(4.0 * n);
  return a;
}

template <class T>
double ldlt_reconstruction_error(const DenseMatrix<T>& a,
                                 const DenseMatrix<T>& f) {
  const idx_t n = a.rows();
  double err = 0;
  for (idx_t j = 0; j < n; ++j)
    for (idx_t i = j; i < n; ++i) {
      T acc{};
      for (idx_t p = 0; p <= j; ++p) {
        const T lip = (i == p) ? T(1) : (i > p ? f(i, p) : T(0));
        const T ljp = (j == p) ? T(1) : (j > p ? f(j, p) : T(0));
        acc += lip * f(p, p) * ljp;
      }
      err = std::max(err, std::sqrt(abs2(acc - a(i, j))));
    }
  return err;
}

template <class T>
double llt_reconstruction_error(const DenseMatrix<T>& a,
                                const DenseMatrix<T>& f) {
  const idx_t n = a.rows();
  double err = 0;
  for (idx_t j = 0; j < n; ++j)
    for (idx_t i = j; i < n; ++i) {
      T acc{};
      for (idx_t p = 0; p <= j; ++p) acc += f(i, p) * f(j, p);
      err = std::max(err, std::sqrt(abs2(acc - a(i, j))));
    }
  return err;
}

class BlockedSizes : public ::testing::TestWithParam<idx_t> {};

TEST_P(BlockedSizes, LdltBlockedReconstructs) {
  const idx_t n = GetParam();
  const auto a = random_spd<double>(n, 11);
  DenseMatrix<double> f = a;
  dense_ldlt_blocked(n, f.data(), f.ld());
  EXPECT_LT(ldlt_reconstruction_error(a, f), 1e-9 * n);
}

TEST_P(BlockedSizes, LltBlockedReconstructs) {
  const idx_t n = GetParam();
  const auto a = random_spd<double>(n, 12);
  DenseMatrix<double> f = a;
  dense_llt_blocked(n, f.data(), f.ld());
  EXPECT_LT(llt_reconstruction_error(a, f), 1e-9 * n);
}

TEST_P(BlockedSizes, BlockedAgreesWithUnblockedToRounding) {
  const idx_t n = GetParam();
  const auto a = random_spd<double>(n, 13);
  DenseMatrix<double> f1 = a, f2 = a;
  dense_ldlt(n, f1.data(), f1.ld());
  dense_ldlt_blocked(n, f2.data(), f2.ld());
  double err = 0;
  for (idx_t j = 0; j < n; ++j)
    for (idx_t i = j; i < n; ++i) err = std::max(err, std::abs(f1(i, j) - f2(i, j)));
  EXPECT_LT(err, 1e-10);
}

// Sizes straddle panel boundaries (48), the cutover (128) and ragged tails.
INSTANTIATE_TEST_SUITE_P(PanelBoundaries, BlockedSizes,
                         ::testing::Values(1, 5, 47, 48, 49, 96, 100, 127, 128,
                                           129, 200, 256));

TEST(BlockedFactor, ComplexSymmetricBlockedWorks) {
  const idx_t n = 150;
  auto a = random_spd<C>(n, 14);
  DenseMatrix<C> f = a;
  dense_ldlt_blocked(n, f.data(), f.ld());
  EXPECT_LT(ldlt_reconstruction_error(a, f), 1e-8 * n);
}

TEST(BlockedFactor, AutoDispatchIsTransparent) {
  for (const idx_t n : {64, 200}) {
    const auto a = random_spd<double>(n, 15);
    DenseMatrix<double> f = a;
    dense_ldlt_auto(n, f.data(), f.ld());
    EXPECT_LT(ldlt_reconstruction_error(a, f), 1e-9 * n) << n;
    DenseMatrix<double> g = a;
    dense_llt_auto(n, g.data(), g.ld());
    EXPECT_LT(llt_reconstruction_error(a, g), 1e-9 * n) << n;
  }
}

} // namespace
} // namespace pastix
