// Unit tests for the sparse-matrix substrate: COO assembly, SpMV, symmetric
// permutation, MatrixMarket round trips, generators and the named suite.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/coo_builder.hpp"
#include "sparse/gen.hpp"
#include "sparse/io.hpp"
#include "sparse/permute.hpp"
#include "sparse/suite.hpp"

namespace pastix {
namespace {

TEST(CooBuilder, AssemblesCanonicalLowerTriangle) {
  CooBuilder<double> b(4);
  b.add(0, 0, 2.0);
  b.add(1, 1, 3.0);
  b.add(2, 2, 4.0);
  b.add(3, 3, 5.0);
  b.add(0, 2, -1.0);  // upper entry, must be mirrored to (2,0)
  b.add(3, 1, -2.0);
  const auto m = b.build();
  EXPECT_EQ(m.n(), 4);
  EXPECT_EQ(m.nnz_offdiag(), 2);
  EXPECT_EQ(m.pattern.rowind[m.pattern.colptr[0]], 2);
  EXPECT_DOUBLE_EQ(m.val[m.pattern.colptr[0]], -1.0);
  EXPECT_EQ(m.pattern.rowind[m.pattern.colptr[1]], 3);
  EXPECT_DOUBLE_EQ(m.diag[2], 4.0);
}

TEST(CooBuilder, SumsDuplicates) {
  CooBuilder<double> b(3);
  b.add(1, 0, 1.0);
  b.add(0, 1, 2.5);  // same symmetric entry
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  const auto m = b.build();
  EXPECT_EQ(m.nnz_offdiag(), 1);
  EXPECT_DOUBLE_EQ(m.val[0], 3.5);
  EXPECT_DOUBLE_EQ(m.diag[0], 3.0);
}

TEST(CooBuilder, RejectsOutOfRange) {
  CooBuilder<double> b(3);
  EXPECT_THROW(b.add(3, 0, 1.0), Error);
  EXPECT_THROW(b.add(0, -1, 1.0), Error);
}

TEST(Spmv, MatchesDenseReference) {
  CooBuilder<double> b(3);
  b.add(0, 0, 4.0);
  b.add(1, 1, 5.0);
  b.add(2, 2, 6.0);
  b.add(1, 0, 1.0);
  b.add(2, 0, 2.0);
  b.add(2, 1, 3.0);
  const auto m = b.build();
  // Dense: [4 1 2; 1 5 3; 2 3 6] * [1 2 3]^t = [12, 20, 26]
  const std::vector<double> x = {1, 2, 3};
  std::vector<double> y(3);
  spmv(m, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 20.0);
  EXPECT_DOUBLE_EQ(y[2], 26.0);
}

TEST(Spmv, ComplexSymmetricDoesNotConjugate) {
  using C = std::complex<double>;
  CooBuilder<C> b(2);
  b.add(0, 0, C(1, 0));
  b.add(1, 1, C(1, 0));
  b.add(1, 0, C(0, 1));  // A(0,1) = A(1,0) = i, not -i
  const auto m = b.build();
  const std::vector<C> x = {C(1, 0), C(0, 0)};
  std::vector<C> y(2);
  spmv(m, x.data(), y.data());
  EXPECT_EQ(y[1], C(0, 1));
}

TEST(Permutation, RoundTripsAndComposes) {
  const auto p = Permutation::from_perm({2, 0, 1});
  EXPECT_EQ(p.invp[2], 0);
  EXPECT_EQ(p.invp[0], 1);
  const auto id = p.after(Permutation::from_perm({1, 2, 0}));
  // id(old) = p(other(old)): other(0)=1 -> p(1)=0, so id(0)=0 etc.
  EXPECT_EQ(id.perm[0], 0);
  EXPECT_EQ(id.perm[1], 1);
  EXPECT_EQ(id.perm[2], 2);
}

TEST(Permutation, RejectsNonBijection) {
  EXPECT_THROW(Permutation::from_perm({0, 0, 1}), Error);
  EXPECT_THROW(Permutation::from_perm({0, 3, 1}), Error);
}

TEST(Permute, PreservesSpmv) {
  const auto a = gen_random_spd(50, 6, 7);
  const auto p = Permutation::from_perm([] {
    std::vector<idx_t> v(50);
    for (idx_t i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = (i * 7) % 50;
    return v;
  }());
  const auto b = permute(a, p);
  std::vector<double> x(50), ax(50), bx(50);
  for (idx_t i = 0; i < 50; ++i) x[static_cast<std::size_t>(i)] = 1.0 + i;
  spmv(a, x.data(), ax.data());
  const auto px = permute_vector(x, p);
  spmv(b, px.data(), bx.data());
  const auto back = unpermute_vector(bx, p);
  for (idx_t i = 0; i < 50; ++i)
    EXPECT_NEAR(back[static_cast<std::size_t>(i)], ax[static_cast<std::size_t>(i)],
                1e-12);
}

TEST(Generators, GridLaplacianShape) {
  const auto a = gen_grid_laplacian(4, 4, 1);
  EXPECT_EQ(a.n(), 16);
  // 2D 4x4 grid: 2*4*3 = 24 edges.
  EXPECT_EQ(a.nnz_offdiag(), 24);
  EXPECT_DOUBLE_EQ(a.diag[0], 5.0);
}

TEST(Generators, FeMeshIsDiagonallyDominant) {
  FeMeshSpec spec;
  spec.nx = 4;
  spec.ny = 3;
  spec.nz = 2;
  spec.dof = 3;
  const auto a = gen_fe_mesh(spec);
  EXPECT_EQ(a.n(), spec.num_unknowns());
  std::vector<double> offsum(static_cast<std::size_t>(a.n()), 0.0);
  for (idx_t j = 0; j < a.n(); ++j)
    for (idx_t q = a.pattern.colptr[j]; q < a.pattern.colptr[j + 1]; ++q) {
      offsum[static_cast<std::size_t>(j)] += std::abs(a.val[q]);
      offsum[static_cast<std::size_t>(a.pattern.rowind[q])] += std::abs(a.val[q]);
    }
  for (idx_t i = 0; i < a.n(); ++i)
    EXPECT_GT(a.diag[static_cast<std::size_t>(i)],
              offsum[static_cast<std::size_t>(i)]);
}

TEST(Generators, DeterministicForFixedSeed) {
  FeMeshSpec spec;
  spec.seed = 123;
  const auto a = gen_fe_mesh(spec);
  const auto b = gen_fe_mesh(spec);
  EXPECT_EQ(a.val, b.val);
  EXPECT_EQ(a.pattern.rowind, b.pattern.rowind);
}

TEST(Generators, ComplexLiftKeepsPatternAndDominance) {
  const auto a = gen_random_spd(40, 5, 3);
  const auto c = to_complex_symmetric(a, 0.3, 9);
  EXPECT_EQ(c.pattern.rowind, a.pattern.rowind);
  for (std::size_t k = 0; k < c.val.size(); ++k)
    EXPECT_LE(std::abs(c.val[k].imag()), 0.3 * std::abs(c.val[k].real()) + 1e-15);
}

TEST(MatrixMarket, RealRoundTrip) {
  const auto a = gen_random_spd(30, 4, 11);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const auto b = read_matrix_market(ss);
  EXPECT_EQ(a.pattern.colptr, b.pattern.colptr);
  EXPECT_EQ(a.pattern.rowind, b.pattern.rowind);
  for (std::size_t k = 0; k < a.val.size(); ++k)
    EXPECT_DOUBLE_EQ(a.val[k], b.val[k]);
}

TEST(MatrixMarket, ComplexRoundTrip) {
  const auto a = to_complex_symmetric(gen_random_spd(20, 4, 5), 0.2, 6);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const auto b = read_matrix_market_complex(ss);
  for (std::size_t k = 0; k < a.val.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.val[k].real(), b.val[k].real());
    EXPECT_DOUBLE_EQ(a.val[k].imag(), b.val[k].imag());
  }
}

TEST(MatrixMarket, RejectsGarbage) {
  std::stringstream ss("%%MatrixMarket matrix array real general\n1 1\n1.0\n");
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(Suite, AllProblemsGenerateAndValidate) {
  for (const auto& p : paper_suite()) {
    const auto a = make_suite_matrix(p);
    EXPECT_GT(a.n(), 1000) << p.name;
    EXPECT_NO_THROW(a.validate()) << p.name;
  }
}

TEST(Suite, LookupByName) {
  EXPECT_EQ(suite_problem("OILPAN").family, "shell");
  EXPECT_THROW(suite_problem("NOPE"), Error);
}


TEST(Suite, FullsizeSpecsMatchPaperColumnCounts) {
  // Column counts of the paper's matrices, same order as the suite.
  const idx_t paper_cols[] = {162610, 148770, 97578, 73752, 59122,
                              34920,  121728, 179860, 29736, 108384};
  const auto& suite = paper_suite_fullsize();
  ASSERT_EQ(suite.size(), 10u);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const double ours = suite[i].spec.num_unknowns();
    const double target = paper_cols[i];
    EXPECT_GT(ours, 0.85 * target) << suite[i].name;
    EXPECT_LT(ours, 1.15 * target) << suite[i].name;
  }
}

TEST(ReferenceRhs, ResidualOfExactSolutionIsZero) {
  const auto a = gen_grid_laplacian(6, 6);
  std::vector<double> x;
  const auto b = reference_rhs(a, &x);
  EXPECT_LT(relative_residual(a, x, b), 1e-14);
}

} // namespace
} // namespace pastix
