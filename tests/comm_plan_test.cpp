// Direct tests of the static communication plan: AUB expectations match the
// countdown bookkeeping, destination sets point at real consumers, and the
// solve-phase ownership sets are mutually consistent.
#include <gtest/gtest.h>

#include <set>

#include "order/ordering.hpp"
#include "solver/comm_plan.hpp"
#include "sparse/gen.hpp"
#include "symbolic/split.hpp"

namespace pastix {
namespace {

struct Pipeline {
  OrderingResult order;
  SymbolMatrix symbol;
  CostModel model = default_cost_model();
  CandidateMapping cand;
  TaskGraph tg;
  Schedule sched;
};

Pipeline run(idx_t nprocs, DistPolicy policy = DistPolicy::kMixed) {
  Pipeline pl;
  const auto a = gen_fe_mesh({9, 9, 4, 2, 1, 13});
  pl.order = compute_ordering(a.pattern);
  SplitOptions sopt;
  sopt.block_size = 24;
  pl.symbol = split_symbol(
      block_symbolic_factorization(pl.order.permuted, pl.order.rangtab), sopt);
  MappingOptions mopt;
  mopt.nprocs = nprocs;
  mopt.policy = policy;
  mopt.min_width_2d = 12;
  pl.cand = proportional_mapping(pl.symbol, pl.model, mopt);
  pl.tg = build_task_graph(pl.symbol, pl.cand, pl.model);
  pl.sched = static_schedule(pl.tg, pl.cand, pl.model, nprocs);
  return pl;
}

TEST(CommPlan, ExpectationsMatchCountdowns) {
  const auto pl = run(6);
  const auto plan = build_comm_plan(pl.symbol, pl.tg, pl.sched);
  for (idx_t sigma = 0; sigma < pl.tg.ntask(); ++sigma) {
    // One AUB per contributing remote proc under pure fan-in.
    EXPECT_EQ(plan.expect_aub[static_cast<std::size_t>(sigma)],
              static_cast<idx_t>(
                  plan.aub_countdown[static_cast<std::size_t>(sigma)].size()));
    for (const auto& [q, count] :
         plan.aub_countdown[static_cast<std::size_t>(sigma)]) {
      EXPECT_NE(q, pl.sched.proc[static_cast<std::size_t>(sigma)])
          << "local contributions must not appear in the countdown";
      EXPECT_GT(count, 0);
    }
  }
}

TEST(CommPlan, AubAfterListsAreConsistentWithCountdowns) {
  const auto pl = run(5);
  const auto plan = build_comm_plan(pl.symbol, pl.tg, pl.sched);
  // Sum of per-proc countdowns for sigma == number of (source task -> sigma)
  // entries across all aub_after lists.
  std::vector<idx_t> seen(static_cast<std::size_t>(pl.tg.ntask()), 0);
  for (idx_t t = 0; t < pl.tg.ntask(); ++t)
    for (const idx_t sigma : plan.aub_after[static_cast<std::size_t>(t)])
      seen[static_cast<std::size_t>(sigma)]++;
  for (idx_t sigma = 0; sigma < pl.tg.ntask(); ++sigma) {
    idx_t total = 0;
    for (const auto& [q, count] :
         plan.aub_countdown[static_cast<std::size_t>(sigma)])
      total += count;
    EXPECT_EQ(seen[static_cast<std::size_t>(sigma)], total) << sigma;
  }
}

TEST(CommPlan, PartialChunkScalesExpectations) {
  const auto pl = run(6);
  const auto fanin = build_comm_plan(pl.symbol, pl.tg, pl.sched, 0);
  const auto eager = build_comm_plan(pl.symbol, pl.tg, pl.sched, 1);
  idx_t fanin_total = 0, eager_total = 0;
  for (idx_t t = 0; t < pl.tg.ntask(); ++t) {
    fanin_total += fanin.expect_aub[static_cast<std::size_t>(t)];
    eager_total += eager.expect_aub[static_cast<std::size_t>(t)];
    EXPECT_GE(eager.expect_aub[static_cast<std::size_t>(t)],
              fanin.expect_aub[static_cast<std::size_t>(t)]);
  }
  EXPECT_GT(eager_total, fanin_total);
}

TEST(CommPlan, DiagAndPanelDestinationsAreRealConsumers) {
  const auto pl = run(8, DistPolicy::kAll2D);
  const auto plan = build_comm_plan(pl.symbol, pl.tg, pl.sched);
  for (idx_t t = 0; t < pl.tg.ntask(); ++t) {
    const Task& task = pl.tg.tasks[static_cast<std::size_t>(t)];
    const idx_t p = pl.sched.proc[static_cast<std::size_t>(t)];
    if (task.type == TaskType::kFactor) {
      // Every dest owns at least one off-diagonal blok of this cblk.
      for (const idx_t q : plan.diag_dests[static_cast<std::size_t>(t)]) {
        EXPECT_NE(q, p);
        bool owns = false;
        for (idx_t b = pl.symbol.cblks[static_cast<std::size_t>(task.cblk)]
                           .bloknum + 1;
             b < pl.symbol.cblks[static_cast<std::size_t>(task.cblk) + 1]
                     .bloknum;
             ++b)
          owns |= (plan.blok_owner[static_cast<std::size_t>(b)] == q);
        EXPECT_TRUE(owns);
      }
    } else if (task.type == TaskType::kBdiv) {
      for (const idx_t q : plan.panel_dests[static_cast<std::size_t>(t)])
        EXPECT_NE(q, p);
    }
  }
}

TEST(CommPlan, SolveSetsAreDisjointLocalVsRemote) {
  const auto pl = run(7);
  const auto plan = build_comm_plan(pl.symbol, pl.tg, pl.sched);
  for (idx_t k = 0; k < pl.symbol.ncblk; ++k) {
    const idx_t owner = plan.diag_owner[static_cast<std::size_t>(k)];
    for (const idx_t b : plan.fwd_remote_bloks[static_cast<std::size_t>(k)])
      EXPECT_NE(plan.blok_owner[static_cast<std::size_t>(b)], owner);
    for (const idx_t b : plan.bwd_remote_bloks[static_cast<std::size_t>(k)]) {
      EXPECT_NE(plan.blok_owner[static_cast<std::size_t>(b)], owner);
      EXPECT_EQ(pl.symbol.bloks[static_cast<std::size_t>(b)].lcblknm, k);
    }
    for (const idx_t q : plan.yseg_dests[static_cast<std::size_t>(k)])
      EXPECT_NE(q, owner);
    for (const idx_t q : plan.xseg_dests[static_cast<std::size_t>(k)])
      EXPECT_NE(q, owner);
  }
}

TEST(CommPlan, SingleProcPlanIsEmpty) {
  const auto pl = run(1);
  const auto plan = build_comm_plan(pl.symbol, pl.tg, pl.sched);
  for (idx_t t = 0; t < pl.tg.ntask(); ++t) {
    EXPECT_EQ(plan.expect_aub[static_cast<std::size_t>(t)], 0);
    EXPECT_TRUE(plan.aub_after[static_cast<std::size_t>(t)].empty());
    EXPECT_TRUE(plan.diag_dests[static_cast<std::size_t>(t)].empty());
    EXPECT_TRUE(plan.panel_dests[static_cast<std::size_t>(t)].empty());
  }
  for (idx_t k = 0; k < pl.symbol.ncblk; ++k) {
    EXPECT_TRUE(plan.fwd_remote_bloks[static_cast<std::size_t>(k)].empty());
    EXPECT_TRUE(plan.yseg_dests[static_cast<std::size_t>(k)].empty());
  }
}

} // namespace
} // namespace pastix
