// Tests for the Harwell-Boeing (RSA/CSA) reader and writer: FORTRAN format
// descriptor parsing, round trips, a hand-written fixture file, and error
// handling.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/gen.hpp"
#include "sparse/hb_io.hpp"

namespace pastix {
namespace {

TEST(FortranFormat, ParsesCommonDescriptors) {
  auto f = parse_fortran_format("(10I8)");
  EXPECT_EQ(f.per_line, 10);
  EXPECT_EQ(f.width, 8);
  EXPECT_EQ(f.kind, 'I');

  f = parse_fortran_format("(4E20.12)");
  EXPECT_EQ(f.per_line, 4);
  EXPECT_EQ(f.width, 20);
  EXPECT_EQ(f.kind, 'E');

  f = parse_fortran_format("(1P4D20.12)");  // scale factor + D exponent
  EXPECT_EQ(f.per_line, 4);
  EXPECT_EQ(f.width, 20);
  EXPECT_EQ(f.kind, 'D');

  f = parse_fortran_format("(E25.16)");  // implicit repeat of 1
  EXPECT_EQ(f.per_line, 1);
  EXPECT_EQ(f.width, 25);
}

TEST(FortranFormat, RejectsGarbage) {
  EXPECT_THROW(parse_fortran_format("10I8"), Error);
  EXPECT_THROW(parse_fortran_format("(10X8)"), Error);
  EXPECT_THROW(parse_fortran_format("(I)"), Error);
}

TEST(HarwellBoeing, RealRoundTrip) {
  const auto a = gen_random_spd(60, 5, 17);
  std::stringstream ss;
  write_harwell_boeing(ss, a, "round trip test", "RT");
  const auto b = read_harwell_boeing(ss);
  ASSERT_EQ(b.n(), a.n());
  EXPECT_EQ(a.pattern.colptr, b.pattern.colptr);
  EXPECT_EQ(a.pattern.rowind, b.pattern.rowind);
  for (std::size_t k = 0; k < a.val.size(); ++k)
    EXPECT_NEAR(a.val[k], b.val[k], 1e-11 * std::abs(a.val[k]) + 1e-14);
  for (idx_t i = 0; i < a.n(); ++i)
    EXPECT_NEAR(a.diag[static_cast<std::size_t>(i)],
                b.diag[static_cast<std::size_t>(i)], 1e-9);
}

TEST(HarwellBoeing, ComplexRoundTrip) {
  const auto a = to_complex_symmetric(gen_random_spd(30, 4, 9), 0.25, 3);
  std::stringstream ss;
  write_harwell_boeing(ss, a);
  const auto b = read_harwell_boeing_complex(ss);
  for (std::size_t k = 0; k < a.val.size(); ++k) {
    EXPECT_NEAR(a.val[k].real(), b.val[k].real(), 1e-12);
    EXPECT_NEAR(a.val[k].imag(), b.val[k].imag(), 1e-12);
  }
}

TEST(HarwellBoeing, ParsesHandWrittenFixture) {
  // 3x3 SPD matrix [4 1 0; 1 5 2; 0 2 6], lower triangle column-wise with
  // D-style exponents, as a 1970s FORTRAN code would have punched it.
  const std::string fixture =
      "Tiny fixture matrix                                                     "
      "FIX     \n"
      "             6             1             1             4             0\n"
      "RSA                       3             3             5             0\n"
      "(8I10)          (8I10)          (4D20.12)           \n"
      "         1         3         5         6\n"
      "         1         2         2         3         3\n"
      "  0.400000000000D+01  0.100000000000D+01  0.500000000000D+01"
      "  0.200000000000D+01\n"
      "  0.600000000000D+01\n";
  std::stringstream ss(fixture);
  const auto a = read_harwell_boeing(ss);
  ASSERT_EQ(a.n(), 3);
  EXPECT_DOUBLE_EQ(a.diag[0], 4.0);
  EXPECT_DOUBLE_EQ(a.diag[1], 5.0);
  EXPECT_DOUBLE_EQ(a.diag[2], 6.0);
  EXPECT_EQ(a.nnz_offdiag(), 2);
  EXPECT_DOUBLE_EQ(a.val[0], 1.0);  // (1,0)
  EXPECT_DOUBLE_EQ(a.val[1], 2.0);  // (2,1)
}

TEST(HarwellBoeing, RejectsUnsymmetricType) {
  std::string fixture =
      "x\n"
      "             3             1             1             1             0\n"
      "RUA                       2             2             1             0\n"
      "(8I10)          (8I10)          (4E20.12)           \n";
  std::stringstream ss(fixture);
  EXPECT_THROW(read_harwell_boeing(ss), Error);
}

TEST(HarwellBoeing, RejectsTypeMismatch) {
  const auto a = gen_random_spd(10, 3, 1);
  std::stringstream ss;
  write_harwell_boeing(ss, a);  // RSA
  EXPECT_THROW(read_harwell_boeing_complex(ss), Error);
}

TEST(HarwellBoeing, FileRoundTripAndSolve) {
  // End-to-end: write a mesh to RSA, read it back, verify SpMV agreement.
  const auto a = gen_fe_mesh({5, 5, 2, 2, 1, 7});
  const std::string path = "/tmp/pastix_hb_test.rsa";
  save_harwell_boeing(path, a);
  const auto b = load_harwell_boeing(path);
  std::vector<double> x(static_cast<std::size_t>(a.n()), 1.0);
  std::vector<double> ya(static_cast<std::size_t>(a.n()));
  std::vector<double> yb(static_cast<std::size_t>(a.n()));
  spmv(a, x.data(), ya.data());
  spmv(b, x.data(), yb.data());
  for (idx_t i = 0; i < a.n(); ++i)
    EXPECT_NEAR(ya[static_cast<std::size_t>(i)], yb[static_cast<std::size_t>(i)],
                1e-9);
  std::remove(path.c_str());
}

} // namespace
} // namespace pastix
