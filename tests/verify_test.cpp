// Mutation harness for the static plan verifier (DESIGN.md §11): fault-free
// plans verify clean at 1/2/4 ranks (2D root distributions and Fan-Both
// partial aggregation included), the static per-rank AUB peak equals the
// runtime's accounting bit-for-bit, and ~15 seeded classes of plan
// corruption are each caught with the expected diagnostic code.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/pastix.hpp"
#include "core/plan_io.hpp"
#include "sparse/gen.hpp"
#include "verify/verify.hpp"

namespace pastix {
namespace {

using verify::Code;

/// Mesh with a wide enough root separator that nprocs=4 produces 2D
/// supernodes (the distribution the 2D-specific checks exercise).
SymSparse<double> mesh() { return gen_fe_mesh({12, 12, 4, 2, 1, 1}); }

PlanPtr analyze_mesh(idx_t nprocs, idx_t partial_chunk = 0) {
  SolverOptions opt;
  opt.nprocs = nprocs;
  opt.fanin.partial_chunk = partial_chunk;
  return analyze(mesh().pattern, opt);
}

/// Mutable copy of a (shared, immutable) plan for corruption.
AnalysisPlan mutate_copy(const PlanPtr& plan) { return *plan; }

verify::Report check(const AnalysisPlan& p) { return verify::check_plan(p); }

idx_t task_on_other_rank(const AnalysisPlan& p, idx_t t) {
  return (p.sched.proc[static_cast<std::size_t>(t)] + 1) % p.sched.nprocs;
}

/// Remove task t from its rank's K_p (helper for consistent proc moves).
void kp_erase(AnalysisPlan& p, idx_t t) {
  auto& order = p.sched.kp[static_cast<std::size_t>(
      p.sched.proc[static_cast<std::size_t>(t)])];
  order.erase(std::find(order.begin(), order.end(), t));
}

// ---------------------------------------------------------------- clean ----

class VerifyCleanNprocs : public testing::TestWithParam<idx_t> {};

TEST_P(VerifyCleanNprocs, FaultFreePlanVerifiesClean) {
  const PlanPtr plan = analyze_mesh(GetParam());
  const auto rep = check(*plan);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_TRUE(rep.diagnostics.empty()) << rep.to_string();
  EXPECT_EQ(rep.rank_peak_aub_entries.size(),
            static_cast<std::size_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Ranks, VerifyCleanNprocs, testing::Values(1, 2, 4));

TEST(VerifyClean, TwoDimensionalRootDistributionCovered) {
  const PlanPtr plan = analyze_mesh(4);
  EXPECT_GT(plan->stats.n_2d_cblks, 0) << "mesh must exercise 2D supernodes";
  EXPECT_TRUE(check(*plan).ok());
}

TEST(VerifyClean, FanBothPartialAggregationVerifiesClean) {
  const PlanPtr plan = analyze_mesh(4, /*partial_chunk=*/2);
  const auto rep = check(*plan);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(VerifyClean, StrictModeAnalyzeAndAdoptSucceed) {
  SolverOptions opt;
  opt.nprocs = 2;
  opt.verify_plan = true;
  const auto a = mesh();
  Solver<double> s1(opt);
  s1.analyze(a);  // strict fresh analysis
  Solver<double> s2(opt);
  s2.analyze(a, s1.plan());  // strict adoption
  s2.factorize();
  const auto x = s2.solve(std::vector<double>(
      static_cast<std::size_t>(a.n()), 1.0));
  EXPECT_EQ(static_cast<idx_t>(x.size()), a.n());
}

// ------------------------------------------------- static memory bound ----

class VerifyMemoryNprocs : public testing::TestWithParam<idx_t> {};

TEST_P(VerifyMemoryNprocs, StaticAubPeakEqualsRuntimeAccounting) {
  SolverOptions opt;
  opt.nprocs = GetParam();
  const auto a = mesh();
  Solver<double> solver(opt);
  solver.analyze(a);
  const auto rep = check(*solver.plan());
  ASSERT_TRUE(rep.ok()) << rep.to_string();
  solver.factorize();
  for (idx_t p = 0; p < opt.nprocs; ++p) {
    const big_t runtime = solver.numeric().memory_stats(p).aub_peak_bytes;
    const big_t statically =
        rep.rank_peak_aub_entries[static_cast<std::size_t>(p)] *
        static_cast<big_t>(sizeof(double));
    EXPECT_EQ(statically, runtime) << "rank " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, VerifyMemoryNprocs, testing::Values(1, 2, 4));

TEST(VerifyMemory, FanBothPartialAggregationPeakMatches) {
  SolverOptions opt;
  opt.nprocs = 4;
  opt.fanin.partial_chunk = 2;
  const auto a = mesh();
  Solver<double> solver(opt);
  solver.analyze(a);
  const auto rep = check(*solver.plan());
  ASSERT_TRUE(rep.ok()) << rep.to_string();
  solver.factorize();
  for (idx_t p = 0; p < opt.nprocs; ++p)
    EXPECT_EQ(rep.rank_peak_aub_entries[static_cast<std::size_t>(p)] *
                  static_cast<big_t>(sizeof(double)),
              solver.numeric().memory_stats(p).aub_peak_bytes)
        << "rank " << p;
}

// --------------------------------------------------- mutation classes ----

class VerifyMutation : public testing::Test {
protected:
  void SetUp() override { plan_ = analyze_mesh(4); }
  PlanPtr plan_;
};

// 1. Supernode partition gap.
TEST_F(VerifyMutation, PartitionGapDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  m.symbol.cblks[1].fcolnum += 1;
  EXPECT_TRUE(check(m).has(Code::kPartitionGap)) << check(m).to_string();
}

// 2. Supernode partition overlap.
TEST_F(VerifyMutation, PartitionOverlapDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  m.symbol.cblks[1].fcolnum -= 1;
  EXPECT_TRUE(check(m).has(Code::kPartitionOverlap));
}

// 3. Block overlap / row-range corruption inside a cblk.
TEST_F(VerifyMutation, BlokRowOverflowDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  // Grow an off-diagonal blok one row past its facing cblk's last column.
  bool mutated = false;
  for (idx_t k = 0; k < m.symbol.ncblk && !mutated; ++k) {
    const idx_t first = m.symbol.cblks[static_cast<std::size_t>(k)].bloknum;
    const idx_t last = m.symbol.cblks[static_cast<std::size_t>(k) + 1].bloknum;
    for (idx_t b = first + 1; b < last; ++b) {
      auto& blok = m.symbol.bloks[static_cast<std::size_t>(b)];
      const auto& face = m.symbol.cblks[static_cast<std::size_t>(blok.fcblknm)];
      if (blok.lrownum == face.lcolnum) {
        blok.lrownum += 1;
        mutated = true;
        break;
      }
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_TRUE(check(m).has(Code::kBlokOutsideFacing));
}

// 4. struct(L) no longer contains struct(PAP^t).
TEST_F(VerifyMutation, StructMissingEntryDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  // Insert a pattern entry (i, j) that no factor blok covers: pick a column
  // of a cblk and a row strictly below its diagonal that none of its bloks
  // reach.
  idx_t jcol = kNone, irow = kNone;
  const auto& s = m.symbol;
  for (idx_t k = 0; k < s.ncblk && jcol == kNone; ++k) {
    const idx_t first = s.cblks[static_cast<std::size_t>(k)].bloknum;
    const idx_t last = s.cblks[static_cast<std::size_t>(k) + 1].bloknum;
    for (idx_t i = s.cblks[static_cast<std::size_t>(k)].lcolnum + 1;
         i < s.n && jcol == kNone; ++i) {
      bool covered = false;
      for (idx_t b = first; b < last; ++b)
        if (s.bloks[static_cast<std::size_t>(b)].frownum <= i &&
            i <= s.bloks[static_cast<std::size_t>(b)].lrownum)
          covered = true;
      if (!covered) {
        jcol = s.cblks[static_cast<std::size_t>(k)].fcolnum;
        irow = i;
      }
    }
  }
  ASSERT_NE(jcol, kNone) << "mesh has no uncovered row below a supernode";
  auto& pat = m.order.permuted;
  const auto at = pat.colptr[static_cast<std::size_t>(jcol) + 1];
  pat.rowind.insert(pat.rowind.begin() + at, irow);
  for (std::size_t c = static_cast<std::size_t>(jcol) + 1;
       c < pat.colptr.size(); ++c)
    pat.colptr[c] += 1;
  std::sort(pat.rowind.begin() +
                pat.colptr[static_cast<std::size_t>(jcol)],
            pat.rowind.begin() +
                pat.colptr[static_cast<std::size_t>(jcol) + 1]);
  EXPECT_TRUE(check(m).has(Code::kStructMissing)) << check(m).to_string();
}

// 5. Dropped contribution edge (an update the runtime would never apply).
TEST_F(VerifyMutation, DroppedInputEdgeDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  for (idx_t t = 0; t < m.tg.ntask(); ++t)
    if (!m.tg.inputs[static_cast<std::size_t>(t)].empty()) {
      m.tg.inputs[static_cast<std::size_t>(t)].pop_back();
      break;
    }
  EXPECT_TRUE(check(m).has(Code::kDependencyMissing));
}

// 6. Spurious contribution edge (no producer in the block structure).
TEST_F(VerifyMutation, SpuriousInputEdgeDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  for (idx_t t = 0; t < m.tg.ntask(); ++t)
    if (!m.tg.inputs[static_cast<std::size_t>(t)].empty()) {
      auto c = m.tg.inputs[static_cast<std::size_t>(t)].back();
      c.entries += 1.0;  // not derivable from any blok geometry
      m.tg.inputs[static_cast<std::size_t>(t)].push_back(c);
      break;
    }
  EXPECT_TRUE(check(m).has(Code::kDependencySpurious));
}

// 7. Dropped precedence edge (FACTOR -> BDIV).
TEST_F(VerifyMutation, DroppedPrecedenceEdgeDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  bool mutated = false;
  for (idx_t t = 0; t < m.tg.ntask() && !mutated; ++t)
    if (m.tg.tasks[static_cast<std::size_t>(t)].type == TaskType::kBdiv) {
      ASSERT_FALSE(m.tg.prec[static_cast<std::size_t>(t)].empty());
      m.tg.prec[static_cast<std::size_t>(t)].clear();
      mutated = true;
    }
  ASSERT_TRUE(mutated) << "plan has no BDIV task (no 2D cblk?)";
  EXPECT_TRUE(check(m).has(Code::kDependencyMissing));
}

// 8. Dependency cycle in the task graph.
TEST_F(VerifyMutation, GraphCycleDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  // A task contributing to itself is the smallest cycle.
  m.tg.inputs[0].push_back({0, 4.0});
  EXPECT_TRUE(check(m).has(Code::kGraphCycle));
}

// 9. Swapped K_p entries: producer ordered after its same-rank consumer.
TEST_F(VerifyMutation, SwappedKpEntriesDetectedAsRace) {
  AnalysisPlan m = mutate_copy(plan_);
  bool mutated = false;
  for (idx_t t = 0; t < m.tg.ntask() && !mutated; ++t)
    for (const auto& c : m.tg.inputs[static_cast<std::size_t>(t)]) {
      const idx_t src = c.source;
      if (m.sched.proc[static_cast<std::size_t>(src)] !=
          m.sched.proc[static_cast<std::size_t>(t)])
        continue;
      auto& order = m.sched.kp[static_cast<std::size_t>(
          m.sched.proc[static_cast<std::size_t>(t)])];
      auto si = std::find(order.begin(), order.end(), src);
      auto ti = std::find(order.begin(), order.end(), t);
      std::iter_swap(si, ti);
      mutated = true;
      break;
    }
  ASSERT_TRUE(mutated);
  const auto rep = check(m);
  EXPECT_TRUE(rep.has(Code::kUnorderedWrite)) << rep.to_string();
}

// 10. Duplicated K_p entry (and the task it displaced goes missing).
TEST_F(VerifyMutation, DuplicateKpEntryDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  auto& order = m.sched.kp[0];
  ASSERT_GE(order.size(), 2u);
  order[1] = order[0];
  EXPECT_TRUE(check(m).has(Code::kScheduleInvalid));
}

// 11. Task moved into another rank's K_p without updating proc[].
TEST_F(VerifyMutation, CrossRankKpMoveDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  ASSERT_FALSE(m.sched.kp[0].empty());
  const idx_t t = m.sched.kp[0].front();
  m.sched.kp[0].erase(m.sched.kp[0].begin());
  m.sched.kp[1].push_back(t);
  EXPECT_TRUE(check(m).has(Code::kScheduleInvalid));
}

// 12. Task mapped off its candidate processor interval.
TEST_F(VerifyMutation, TaskOutsideCandidatesDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  bool mutated = false;
  for (idx_t t = 0; t < m.tg.ntask() && !mutated; ++t) {
    const Task& task = m.tg.tasks[static_cast<std::size_t>(t)];
    if (task.type == TaskType::kBmod) continue;
    const auto& cand =
        m.cand.cblk[static_cast<std::size_t>(task.cblk)];
    if (cand.lproc - cand.fproc + 1 >= m.sched.nprocs) continue;
    const idx_t off = cand.lproc + 1 < m.sched.nprocs ? cand.lproc + 1
                                                      : cand.fproc - 1;
    kp_erase(m, t);
    m.sched.proc[static_cast<std::size_t>(t)] = off;
    m.sched.kp[static_cast<std::size_t>(off)].insert(
        m.sched.kp[static_cast<std::size_t>(off)].begin(), t);
    mutated = true;
  }
  ASSERT_TRUE(mutated) << "every task has the full machine as candidates";
  EXPECT_TRUE(check(m).has(Code::kTaskOutsideCandidates));
}

// 13. BMOD separated from the rank holding its BDIV(i) panel.
TEST_F(VerifyMutation, BmodColocationViolationDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  bool mutated = false;
  for (idx_t t = 0; t < m.tg.ntask() && !mutated; ++t)
    if (m.tg.tasks[static_cast<std::size_t>(t)].type == TaskType::kBmod) {
      const idx_t off = task_on_other_rank(m, t);
      kp_erase(m, t);
      m.sched.proc[static_cast<std::size_t>(t)] = off;
      m.sched.kp[static_cast<std::size_t>(off)].push_back(t);
      mutated = true;
    }
  ASSERT_TRUE(mutated);
  EXPECT_TRUE(check(m).has(Code::kTaskOutsideCandidates));
}

// 14. AUB receive count corrupted: the receiver would block forever (or
// start early).
TEST_F(VerifyMutation, ExpectAubCorruptionDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  bool mutated = false;
  for (idx_t t = 0; t < m.tg.ntask(); ++t)
    if (m.comm.expect_aub[static_cast<std::size_t>(t)] > 0) {
      m.comm.expect_aub[static_cast<std::size_t>(t)] += 1;
      mutated = true;
      break;
    }
  ASSERT_TRUE(mutated);
  EXPECT_TRUE(check(m).has(Code::kAubCountMismatch));
}

// 15. Sender-side flush list loses a target: starved receive.
TEST_F(VerifyMutation, DroppedAubAfterDetectedAsStarvedReceive) {
  AnalysisPlan m = mutate_copy(plan_);
  bool mutated = false;
  for (idx_t t = 0; t < m.tg.ntask(); ++t)
    if (!m.comm.aub_after[static_cast<std::size_t>(t)].empty()) {
      m.comm.aub_after[static_cast<std::size_t>(t)].pop_back();
      mutated = true;
      break;
    }
  ASSERT_TRUE(mutated);
  EXPECT_TRUE(check(m).has(Code::kStarvedReceive));
}

// 16. Sender-side flush list gains a target: orphan send.
TEST_F(VerifyMutation, SpuriousAubAfterDetectedAsOrphanSend) {
  AnalysisPlan m = mutate_copy(plan_);
  bool mutated = false;
  for (idx_t t = 0; t < m.tg.ntask() && !mutated; ++t) {
    // A target on another rank that t does not contribute to.
    for (idx_t sigma = 0; sigma < m.tg.ntask(); ++sigma) {
      if (m.sched.proc[static_cast<std::size_t>(sigma)] ==
          m.sched.proc[static_cast<std::size_t>(t)])
        continue;
      if (m.tg.tasks[static_cast<std::size_t>(sigma)].type == TaskType::kBmod)
        continue;
      auto& after = m.comm.aub_after[static_cast<std::size_t>(t)];
      if (std::find(after.begin(), after.end(), sigma) != after.end())
        continue;
      after.push_back(sigma);
      std::sort(after.begin(), after.end());
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_TRUE(check(m).has(Code::kOrphanSend));
}

// 17. Per-rank countdown corrupted.
TEST_F(VerifyMutation, CountdownCorruptionDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  bool mutated = false;
  for (idx_t t = 0; t < m.tg.ntask(); ++t)
    if (!m.comm.aub_countdown[static_cast<std::size_t>(t)].empty()) {
      m.comm.aub_countdown[static_cast<std::size_t>(t)][0].second += 1;
      mutated = true;
      break;
    }
  ASSERT_TRUE(mutated);
  EXPECT_TRUE(check(m).has(Code::kAubCountMismatch));
}

// 18. A diag/panel destination list loses a rank: the remote BDIV or BMOD
// that was counting on that broadcast starves.  The fixture mesh co-locates
// every 2D supernode on one rank, so this uses a taller mesh whose root
// separator genuinely splits 2D work across ranks.
TEST_F(VerifyMutation, DroppedDiagAndPanelDestsDetected) {
  SolverOptions opt;
  opt.nprocs = 4;
  const PlanPtr plan =
      analyze(gen_fe_mesh({16, 16, 6, 2, 1, 3}).pattern, opt);
  ASSERT_TRUE(check(*plan).ok());
  bool found_diag = false, found_panel = false;
  {
    AnalysisPlan m = *plan;
    for (idx_t t = 0; t < m.tg.ntask() && !found_diag; ++t)
      if (!m.comm.diag_dests[static_cast<std::size_t>(t)].empty()) {
        m.comm.diag_dests[static_cast<std::size_t>(t)].pop_back();
        found_diag = true;
      }
    ASSERT_TRUE(found_diag) << "mesh has no remote diag consumers";
    EXPECT_TRUE(check(m).has(Code::kStarvedReceive));
  }
  {
    AnalysisPlan m = *plan;
    for (idx_t t = 0; t < m.tg.ntask() && !found_panel; ++t)
      if (!m.comm.panel_dests[static_cast<std::size_t>(t)].empty()) {
        m.comm.panel_dests[static_cast<std::size_t>(t)].pop_back();
        found_panel = true;
      }
    ASSERT_TRUE(found_panel) << "mesh has no remote panel consumers";
    EXPECT_TRUE(check(m).has(Code::kStarvedReceive));
  }
}

// 19. Panel destination list gains a rank nobody scheduled a receive on.
TEST_F(VerifyMutation, SpuriousPanelDestDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  bool mutated = false;
  for (idx_t t = 0; t < m.tg.ntask() && !mutated; ++t) {
    if (m.tg.tasks[static_cast<std::size_t>(t)].type != TaskType::kBdiv)
      continue;
    auto& dests = m.comm.panel_dests[static_cast<std::size_t>(t)];
    for (idx_t q = 0; q < m.sched.nprocs; ++q)
      if (q != m.sched.proc[static_cast<std::size_t>(t)] &&
          std::find(dests.begin(), dests.end(), q) == dests.end()) {
        dests.push_back(q);
        std::sort(dests.begin(), dests.end());
        mutated = true;
        break;
      }
  }
  ASSERT_TRUE(mutated);
  EXPECT_TRUE(check(m).has(Code::kOrphanSend));
}

// 20. Wrong owner in the solve-phase tables.
TEST_F(VerifyMutation, WrongBlokOwnerDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  m.comm.blok_owner[0] = (m.comm.blok_owner[0] + 1) % m.sched.nprocs;
  EXPECT_TRUE(check(m).has(Code::kOwnerMismatch));
}

// 21. Duplicated message tag: two BDIV tasks sending one (kPanel,cblk,blok).
TEST_F(VerifyMutation, DuplicatedPanelTagDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  idx_t b1 = kNone, b2 = kNone;
  for (idx_t k = 0; k < m.symbol.ncblk; ++k) {
    if (m.cand.cblk[static_cast<std::size_t>(k)].dist != DistType::k2D)
      continue;
    const idx_t first = m.symbol.cblks[static_cast<std::size_t>(k)].bloknum;
    const idx_t last = m.symbol.cblks[static_cast<std::size_t>(k) + 1].bloknum;
    if (last - first >= 3) {  // diagonal + two off-diagonal bloks
      b1 = first + 1;
      b2 = first + 2;
      break;
    }
  }
  ASSERT_NE(b1, kNone) << "no 2D cblk with two off-diagonal bloks";
  const idx_t t1 = m.tg.blok_task[static_cast<std::size_t>(b1)];
  const idx_t t2 = m.tg.blok_task[static_cast<std::size_t>(b2)];
  // Retarget BDIV(b2) at b1: two senders for (kPanel, cblk, b1).
  m.tg.tasks[static_cast<std::size_t>(t2)].blok = b1;
  m.tg.blok_task[static_cast<std::size_t>(b2)] = t1;
  EXPECT_TRUE(check(m).has(Code::kTagCollision)) << check(m).to_string();
}

// 22. Truncated comm plan.
TEST_F(VerifyMutation, TruncatedCommPlanDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  m.comm.expect_aub.resize(m.comm.expect_aub.size() - 1);
  EXPECT_TRUE(check(m).has(Code::kShapeMismatch));
}

// 23. Engineered cross-rank waiting cycle: provably deadlocks.
TEST_F(VerifyMutation, CrossRankDeadlockDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  // Collect cross-rank message edges (u -> sigma): AUB flushes plus the
  // diag/panel transfers, exactly the verifier's happens-before edges.
  std::vector<std::pair<idx_t, idx_t>> edges;
  for (idx_t t = 0; t < m.tg.ntask(); ++t) {
    for (const idx_t sigma : m.comm.aub_after[static_cast<std::size_t>(t)])
      edges.emplace_back(t, sigma);
    const Task& task = m.tg.tasks[static_cast<std::size_t>(t)];
    if (task.type == TaskType::kBdiv)
      edges.emplace_back(
          m.tg.cblk_task[static_cast<std::size_t>(task.cblk)], t);
    if (task.type == TaskType::kBmod)
      edges.emplace_back(
          m.tg.blok_task[static_cast<std::size_t>(task.blok2)], t);
  }
  auto rank = [&](idx_t t) {
    return m.sched.proc[static_cast<std::size_t>(t)];
  };
  // Opposite-direction pair between two ranks.
  idx_t sigma = kNone, tau = kNone;
  for (const auto& [u, s1] : edges) {
    if (rank(u) == rank(s1)) continue;
    for (const auto& [v, s2] : edges) {
      if (rank(v) != rank(s1) || rank(s2) != rank(u)) continue;
      if (s2 == u || s1 == v) continue;
      sigma = s1;
      tau = s2;
      break;
    }
    if (sigma != kNone) break;
  }
  ASSERT_NE(sigma, kNone) << "no opposite cross-rank message pair at 4 ranks";
  // Receivers jump to the front of their K_p: each now blocks before the
  // task that would unblock the other rank has run.
  for (const idx_t t : {sigma, tau}) {
    auto& order = m.sched.kp[static_cast<std::size_t>(rank(t))];
    order.erase(std::find(order.begin(), order.end(), t));
    order.insert(order.begin(), t);
  }
  const auto rep = check(m);
  EXPECT_TRUE(rep.has(Code::kHappensBeforeCycle)) << rep.to_string();
}

// 24. Plan contradicts its own options.
TEST_F(VerifyMutation, PartialChunkMismatchDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  m.comm.partial_chunk = 3;
  EXPECT_TRUE(check(m).has(Code::kOptionsMismatch));
}

// 25. Stale summary stats are a warning, not an error.
TEST_F(VerifyMutation, StaleStatsIsWarningOnly) {
  AnalysisPlan m = mutate_copy(plan_);
  m.stats.ntask += 1;
  const auto rep = check(m);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.has(Code::kStatsStale));
  EXPECT_EQ(rep.warnings(), 1u);
}

// ------------------------------------------------------------- wiring ----

TEST_F(VerifyMutation, RequireValidThrowsWithCodeName) {
  AnalysisPlan m = mutate_copy(plan_);
  m.comm.expect_aub[0] += 1;
  try {
    verify::require_valid(m, "test");
    FAIL() << "require_valid accepted a corrupt plan";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("aub-count-mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(VerifyMutation, StrictAdoptionRejectsCorruptPlan) {
  auto corrupt = std::make_shared<AnalysisPlan>(*plan_);
  corrupt->sched.kp[0].pop_back();
  SolverOptions opt;
  opt.nprocs = 4;
  opt.verify_plan = true;
  Solver<double> solver(opt);
  EXPECT_THROW(solver.analyze(mesh(), corrupt), Error);
  // Same plan, strict mode off: adoption is the caller's responsibility.
  opt.verify_plan = false;
  Solver<double> lax(opt);
  EXPECT_NO_THROW(lax.analyze(mesh(), plan_));
}

// ------------------------------------- hybrid prefix/tail mutations ----
//
// The relaxed-verification phase (DESIGN.md §14) must prove the hybrid
// schedule safe under ANY linearization the work-stealing pool can produce.
// Each engineered corruption below breaks exactly one of its guarantees
// and must be caught with the named diagnostic code.

std::size_t z(idx_t v) { return static_cast<std::size_t>(v); }

PlanPtr analyze_hybrid(idx_t nprocs, idx_t partial_chunk = 0,
                       double tail_fraction = 0.35) {
  SolverOptions opt;
  opt.nprocs = nprocs;
  opt.fanin.partial_chunk = partial_chunk;
  opt.fanin.hybrid.enabled = true;
  opt.fanin.hybrid.tail_fraction = tail_fraction;
  return analyze(mesh().pattern, opt);
}

/// Per task: its position in its rank's K_p.
std::vector<idx_t> kp_positions(const Schedule& sc) {
  std::vector<idx_t> pos(sc.proc.size(), 0);
  for (const auto& order : sc.kp)
    for (std::size_t i = 0; i < order.size(); ++i)
      pos[z(order[i])] = static_cast<idx_t>(i);
  return pos;
}

/// Drop every direct edge source -> t from the plan's task graph.
void erase_edges(AnalysisPlan& m, idx_t t, idx_t source) {
  const auto drop = [&](std::vector<Contribution>& v) {
    std::erase_if(v, [&](const Contribution& c) { return c.source == source; });
  };
  drop(m.tg.inputs[z(t)]);
  drop(m.tg.prec[z(t)]);
}

class HybridVerifyMutation : public testing::Test {
protected:
  void SetUp() override {
    plan_ = analyze_hybrid(4);
    ASSERT_TRUE(plan_->sched.hybrid()) << "mesh produced no dynamic tail";
  }
  PlanPtr plan_;
};

TEST(HybridVerifyClean, FaultFreeHybridPlanVerifiesClean) {
  for (const idx_t nprocs : {1, 2, 4}) {
    const PlanPtr plan = analyze_hybrid(nprocs);
    const auto rep = check(*plan);
    EXPECT_TRUE(rep.ok()) << "nprocs " << nprocs << "\n" << rep.to_string();
    EXPECT_TRUE(rep.diagnostics.empty()) << rep.to_string();
  }
  // Fan-Both partial aggregation under a hybrid schedule.
  const PlanPtr fb = analyze_hybrid(4, /*partial_chunk=*/2);
  EXPECT_TRUE(check(*fb).ok()) << check(*fb).to_string();
}

TEST(HybridVerifyClean, PlanFileRoundtripPreservesSplitPoints) {
  const PlanPtr plan = analyze_hybrid(4);
  std::stringstream buf;
  save_plan(*plan, buf);
  const PlanPtr back = load_plan(buf);
  EXPECT_EQ(back->sched.split, plan->sched.split);
  EXPECT_TRUE(back->sched.hybrid());
  EXPECT_TRUE(check(*back).ok()) << check(*back).to_string();
}

// H1. Split vector of the wrong length.
TEST_F(HybridVerifyMutation, SplitCountMismatchDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  m.sched.split.pop_back();
  EXPECT_TRUE(check(m).has(Code::kSplitInvalid)) << check(m).to_string();
}

// H2. Split point outside its rank's K_p.
TEST_F(HybridVerifyMutation, SplitOutOfBoundsDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  m.sched.split[0] = static_cast<idx_t>(m.sched.kp[0].size()) + 3;
  EXPECT_TRUE(check(m).has(Code::kSplitInvalid));
  AnalysisPlan neg = mutate_copy(plan_);
  neg.sched.split[1] = -1;
  EXPECT_TRUE(check(neg).has(Code::kSplitInvalid));
}

// H3. Options promise hybrid execution but the schedule carries no split.
TEST_F(HybridVerifyMutation, HybridOptionsWithoutSplitDetected) {
  AnalysisPlan m = mutate_copy(plan_);
  m.sched.split.clear();
  EXPECT_TRUE(check(m).has(Code::kOptionsMismatch)) << check(m).to_string();
}

// H4. Tail task with a missing dependency edge: a steal may run the
// consumer's compute before its producer committed.
TEST_F(HybridVerifyMutation, MissingTailDependencyEdgeDetected) {
  const Schedule& sc = plan_->sched;
  const auto pos = kp_positions(sc);
  bool detected = false;
  int attempts = 0;
  for (idx_t p = 0; p < sc.nprocs && !detected; ++p) {
    const auto& order = sc.kp[z(p)];
    for (std::size_t i = z(sc.split[z(p)]);
         i < order.size() && !detected && attempts < 12; ++i) {
      const idx_t t = order[i];
      // The *latest* same-rank tail producer: erasing it leaves no
      // alternative commit-chain path into this compute.
      idx_t s = kNone;
      idx_t best = -1;
      const auto consider = [&](idx_t src) {
        if (sc.proc[z(src)] != p || pos[z(src)] < sc.split[z(p)]) return;
        if (pos[z(src)] > best) {
          best = pos[z(src)];
          s = src;
        }
      };
      for (const auto& c : plan_->tg.inputs[z(t)]) consider(c.source);
      for (const auto& c : plan_->tg.prec[z(t)]) consider(c.source);
      if (s == kNone) continue;
      ++attempts;
      AnalysisPlan m = mutate_copy(plan_);
      erase_edges(m, t, s);
      if (check(m).has(Code::kTailDependencyMissing)) detected = true;
    }
  }
  EXPECT_TRUE(detected)
      << "no erased tail dependency was caught as tail-dependency-missing";
}

// H5. Steal crossing an unordered read/write: drop the ordering between a
// tail BMOD and the tail BDIV whose panel it reads.
TEST_F(HybridVerifyMutation, StolenReadWriteRaceDetected) {
  const Schedule& sc = plan_->sched;
  const TaskGraph& tg = plan_->tg;
  const auto pos = kp_positions(sc);
  const auto in_tail = [&](idx_t t) {
    return pos[z(t)] >= sc.split[z(sc.proc[z(t)])];
  };
  bool detected = false;
  int attempts = 0;
  for (idx_t t = 0; t < tg.ntask() && !detected && attempts < 12; ++t) {
    const Task& task = tg.tasks[z(t)];
    if (task.type != TaskType::kBmod || !in_tail(t)) continue;
    for (const idx_t b : {task.blok, task.blok2}) {
      const idx_t w = tg.blok_task[z(b)];
      if (sc.proc[z(w)] != sc.proc[z(t)] || !in_tail(w)) continue;
      ++attempts;
      AnalysisPlan m = mutate_copy(plan_);
      erase_edges(m, t, w);
      if (check(m).has(Code::kTailRace)) {
        detected = true;
        break;
      }
    }
  }
  EXPECT_TRUE(detected) << "no unordered tail read/write was caught as "
                           "tail-race";
}

// H6. Starved receive at the prefix/tail boundary: shrink a sender's split
// so a message consumed by another rank's *prefix* is produced by a tail.
TEST_F(HybridVerifyMutation, StarvedPrefixReceiveDetected) {
  const Schedule& sc = plan_->sched;
  const TaskGraph& tg = plan_->tg;
  const auto pos = kp_positions(sc);
  idx_t u = kNone, v = kNone;
  const auto consider = [&](idx_t src, idx_t dst) {
    if (u != kNone || sc.proc[z(src)] == sc.proc[z(dst)]) return;
    if (pos[z(dst)] < sc.split[z(sc.proc[z(dst)])]) {
      u = src;
      v = dst;
    }
  };
  for (idx_t t = 0; t < tg.ntask() && u == kNone; ++t) {
    for (const idx_t sigma : plan_->comm.aub_after[z(t)]) consider(t, sigma);
    const Task& task = tg.tasks[z(t)];
    if (task.type == TaskType::kBdiv)
      consider(tg.cblk_task[z(task.cblk)], t);
    else if (task.type == TaskType::kBmod)
      consider(tg.blok_task[z(task.blok2)], t);
  }
  ASSERT_NE(u, kNone) << "no cross-rank message with a prefix consumer";
  AnalysisPlan m = mutate_copy(plan_);
  auto& split = m.sched.split[z(sc.proc[z(u)])];
  split = std::min(split, pos[z(u)]);
  EXPECT_TRUE(check(m).has(Code::kTailStarvedReceive))
      << "producer " << u << " consumer " << v << "\n" << check(m).to_string();
}

// H7. Cyclic tail precedence: a backward edge between two same-rank tail
// tasks deadlocks some steal interleavings (compute waits on a commit that
// waits, through the K_p commit chain, on that compute).
TEST_F(HybridVerifyMutation, CyclicTailPrecedenceDetected) {
  const Schedule& sc = plan_->sched;
  bool detected = false;
  int attempts = 0;
  for (idx_t p = 0; p < sc.nprocs && !detected; ++p) {
    const auto& order = sc.kp[z(p)];
    const std::size_t split = z(sc.split[z(p)]);
    for (std::size_t j = split + 1;
         j < order.size() && !detected && attempts < 8; ++j) {
      ++attempts;
      AnalysisPlan m = mutate_copy(plan_);
      // order[j] becomes a producer of the *earlier* tail task order[split].
      m.tg.prec[z(order[split])].push_back({order[j], 0.0});
      if (check(m).has(Code::kTailHappensBeforeCycle)) detected = true;
    }
  }
  EXPECT_TRUE(detected)
      << "no cyclic tail precedence was caught as tail-happens-before-cycle";
}

// H8. Dependent tail tasks swapped in K_p: the commit chain now runs
// against the dependency, so the relaxed happens-before graph is cyclic.
TEST_F(HybridVerifyMutation, SwappedDependentTailTasksDetected) {
  const Schedule& sc = plan_->sched;
  const auto pos = kp_positions(sc);
  bool detected = false;
  int attempts = 0;
  for (idx_t p = 0; p < sc.nprocs && !detected; ++p) {
    const auto& order = sc.kp[z(p)];
    for (std::size_t j = z(sc.split[z(p)]);
         j < order.size() && !detected && attempts < 8; ++j) {
      const idx_t t = order[j];
      const auto try_swap = [&](idx_t s) {
        if (detected || sc.proc[z(s)] != p) return;
        const idx_t i = pos[z(s)];
        if (i < sc.split[z(p)] || i >= static_cast<idx_t>(j)) return;
        ++attempts;
        AnalysisPlan m = mutate_copy(plan_);
        std::swap(m.sched.kp[z(p)][z(i)], m.sched.kp[z(p)][j]);
        if (check(m).has(Code::kTailHappensBeforeCycle)) detected = true;
      };
      for (const auto& c : plan_->tg.inputs[z(t)]) try_swap(c.source);
      for (const auto& c : plan_->tg.prec[z(t)]) try_swap(c.source);
    }
  }
  EXPECT_TRUE(detected)
      << "no swapped dependent tail pair was caught as a relaxed HB cycle";
}

TEST_F(VerifyMutation, LoadPlanRejectsCorruptPayloadWithDiagnostic) {
  std::stringstream buf;
  save_plan(*plan_, buf);
  std::string bytes = buf.str();
  // Since plan format v5, *every* byte flip dies at the CRC32C footer gate
  // before the parser or verifier sees a single field — the earliest named
  // diagnostic there is.  (The defense in depth behind the gate — parser
  // byte budgets, then the static verifier — is exercised separately by
  // plan_io_fuzz_test, which re-footers its corrupt bytes so they sail
  // past the checksum by construction.)
  for (std::size_t off = bytes.size() / 2; off < bytes.size(); off += 97) {
    std::string corrupt = bytes;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0x3f);
    std::istringstream in(corrupt);
    try {
      PlanPtr p = load_plan(in);
      FAIL() << "flip at offset " << off << " loaded cleanly";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("plan file corruption"),
                std::string::npos)
          << "flip at offset " << off << " raised: " << e.what();
    }
  }
}

} // namespace
} // namespace pastix
